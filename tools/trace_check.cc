// Replays JSONL run traces (EngineParams::trace / ObsOptions::trace_path)
// and validates the engine's observable invariants: per-query lifecycle
// (every admit reaches exactly one terminal outcome), Eq. 1 freshness
// accounting (freshness = 1/(1 + Udrop), success iff freshness meets the
// requirement), the Fig. 2 dominant-penalty rule behind every LBC signal,
// and update/period-change sanity. CI pipes freshly generated traces
// through this binary; exit status 1 flags any violation (or parse error,
// which usually means writer/checker schema drift).
//
// Usage: trace_check FILE [FILE...]

#include <cstdio>

#include "unit/obs/trace_check.h"
#include "unit/obs/trace_reader.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE [FILE...]\n", argv[0]);
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    auto events = unitdb::ReadTraceFile(argv[i]);
    if (!events.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   events.status().ToString().c_str());
      all_ok = false;
      continue;
    }
    const unitdb::TraceCheckResult result = unitdb::CheckTrace(*events);
    std::printf("%s: %s\n", argv[i],
                unitdb::TraceCheckSummary(result).c_str());
    if (!result.ok()) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
