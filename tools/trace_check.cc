// Replays JSONL run traces (EngineParams::trace / ObsOptions::trace_path)
// and validates the engine's observable invariants: per-query lifecycle
// (every admit reaches exactly one terminal outcome), Eq. 1 freshness
// accounting (freshness = 1/(1 + Udrop), success iff freshness meets the
// requirement), the Fig. 2 dominant-penalty rule behind every LBC signal,
// and update/period-change sanity. CI pipes freshly generated traces
// through this binary.
//
// Usage: trace_check FILE [FILE...]
//
// Exit codes (distinct per violated invariant; see obs/trace_check.h):
//   0    every invariant holds in every file
//   1-8  number of the lowest violated invariant across all files
//          1 timestamps non-decreasing
//          2 per-query lifecycle
//          3 Eq. 1 freshness accounting
//          4 LBC dominant-penalty rule / knob movement
//          5 update & period-change sanity
//          6 fault-window pairing & response direction
//          7 closed-loop session discipline (retry pairing, backoff
//            monotonicity, shed watermark)
//          8 result-cache discipline (hit freshness/Udrop vs the item's
//            update history, active capacity, invalidate pairing)
//   9    trace file unreadable or parse error (writer/checker schema drift)
//   64   usage error

#include <cstdio>

#include "unit/obs/trace_check.h"
#include "unit/obs/trace_reader.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE [FILE...]\n", argv[0]);
    return 64;
  }
  int worst_invariant = 0;  // lowest violated invariant number, 0 = none
  bool read_error = false;
  for (int i = 1; i < argc; ++i) {
    auto events = unitdb::ReadTraceFile(argv[i]);
    if (!events.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i],
                   events.status().ToString().c_str());
      read_error = true;
      continue;
    }
    const unitdb::TraceCheckResult result = unitdb::CheckTrace(*events);
    std::printf("%s: %s\n", argv[i],
                unitdb::TraceCheckSummary(result).c_str());
    const int code = unitdb::TraceCheckExitCode(result);
    if (code > 0 && (worst_invariant == 0 || code < worst_invariant)) {
      worst_invariant = code;
    }
  }
  if (worst_invariant > 0) return worst_invariant;
  return read_error ? 9 : 0;
}
