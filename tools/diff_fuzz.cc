// Differential fuzzer: generates seed-derived random workloads + fault
// scenarios (model/gen.h), runs each through the optimized engine and the
// naive reference model, and compares semantic metrics, per-query outcomes,
// and window series bit-for-bit (model/diff.h). A linear case sweep rotates
// through {policy x use_admission_index x compact_events x faults on/off}.
// On divergence the case is shrunk (ddmin-lite) and a replayable
// "seed=S case=I ..." line is printed.
//
// Usage: diff_fuzz [cases=N] [seed=S] [case=I] [series=0|1] [stream=0|1]
//                  [shards=K] [sessions=N] [shed=W] [cache=C]
//                  [perturb=none|cflex|admit|dropretry]
//                  [expect_divergence=0|1]
//
//   cases=N              number of generated cases to run (default 100)
//   seed=S               base fuzz seed (default 1)
//   case=I               replay exactly one generated case index
//   series=0             skip the window-series comparison
//   stream=0|1           force the optimized side's streaming-workload path
//                        off/on for every case (default: gen.h's rotation,
//                        which streams every other 32-case block)
//   shards=K             force the sharded dimension for every case: 0 =
//                        monolithic diff, 1 = sharded-vs-monolithic
//                        identity, >1 = sharded-vs-sharded-reference
//                        (default: gen.h's rotation over {0,1,2,3})
//   sessions=N           force the closed-loop session count for every
//                        case: 0 = open-loop, N > 0 attaches N user
//                        sessions with the generator's retry/backoff knobs
//                        when the case drew them, defaults otherwise
//                        (default: gen.h's rotation, sessions every other
//                        256-case block)
//   shed=W               force the overload-shedding watermark for every
//                        case: 0 = shedding off, W > 0 = drop-oldest above
//                        a ready depth of W (default: gen.h's rotation)
//   cache=C              force the result-cache capacity for every case:
//                        0 = cache off, C > 0 = C item entries per engine
//                        (default: gen.h's rotation, cache every other
//                        1024-case block)
//   perturb=...          inject a known defect into the optimized side
//                        (harness self-test); dropretry needs a closed
//                        loop, so it forces sessions on for cases without
//                        them
//   expect_divergence=1  invert success: exit 0 only if a divergence was
//                        found, caught, and shrunk (self-test mode)
//
// Exit codes: 0 success, 1 divergence found (or, with expect_divergence=1,
// none found), 2 usage error, 3 case setup error (scenario failed to
// compile / unknown policy).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "unit/model/diff.h"
#include "unit/model/gen.h"

namespace {

bool ParseU64(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [cases=N] [seed=S] [case=I] [series=0|1]\n"
               "          [stream=0|1] [shards=K] [sessions=N] [shed=W]\n"
               "          [cache=C] [perturb=none|cflex|admit|dropretry]\n"
               "          [expect_divergence=0|1]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t cases = 100;
  uint64_t seed = 1;
  int64_t only_case = -1;
  int stream_override = -1;    // -1: keep the generator's rotation
  int shards_override = -1;    // -1: keep the generator's rotation
  int sessions_override = -1;  // -1: keep the generator's rotation
  int shed_override = -1;      // -1: keep the generator's rotation
  int cache_override = -1;     // -1: keep the generator's rotation
  unitdb::DiffOptions opts;
  bool expect_divergence = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) return Usage(argv[0]);
    const std::string key(arg, eq - arg);
    const char* val = eq + 1;
    uint64_t num = 0;
    if (key == "cases" && ParseU64(val, &num)) {
      cases = num;
    } else if (key == "seed" && ParseU64(val, &num)) {
      seed = num;
    } else if (key == "case" && ParseU64(val, &num)) {
      only_case = static_cast<int64_t>(num);
    } else if (key == "series" && ParseU64(val, &num)) {
      opts.compare_series = num != 0;
    } else if (key == "stream" && ParseU64(val, &num)) {
      stream_override = num != 0 ? 1 : 0;
    } else if (key == "shards" && ParseU64(val, &num)) {
      shards_override = static_cast<int>(num);
    } else if (key == "sessions" && ParseU64(val, &num)) {
      sessions_override = static_cast<int>(num);
    } else if (key == "shed" && ParseU64(val, &num)) {
      shed_override = static_cast<int>(num);
    } else if (key == "cache" && ParseU64(val, &num)) {
      cache_override = static_cast<int>(num);
    } else if (key == "expect_divergence" && ParseU64(val, &num)) {
      expect_divergence = num != 0;
    } else if (key == "perturb") {
      if (std::strcmp(val, "none") == 0) {
        opts.perturb = unitdb::Perturbation::kNone;
      } else if (std::strcmp(val, "cflex") == 0) {
        opts.perturb = unitdb::Perturbation::kCFlexStep;
      } else if (std::strcmp(val, "admit") == 0) {
        opts.perturb = unitdb::Perturbation::kAdmitOffByOne;
      } else if (std::strcmp(val, "dropretry") == 0) {
        opts.perturb = unitdb::Perturbation::kDropRetry;
      } else {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }

  const int64_t begin = only_case >= 0 ? only_case : 0;
  const int64_t end =
      only_case >= 0 ? only_case + 1 : static_cast<int64_t>(cases);

  int64_t divergent = 0;
  for (int64_t i = begin; i < end; ++i) {
    unitdb::DiffCase c = unitdb::GenerateCase(seed, i);
    if (stream_override >= 0) c.stream_queries = stream_override == 1;
    if (shards_override >= 0) c.shards = shards_override;
    if (sessions_override >= 0) c.engine.session.sessions = sessions_override;
    if (shed_override >= 0) c.engine.shed_watermark = shed_override;
    if (cache_override >= 0) c.engine.cache.capacity = cache_override;
    if (opts.perturb == unitdb::Perturbation::kDropRetry &&
        c.engine.session.sessions == 0) {
      c.engine.session.sessions = 4;  // the defect needs a closed loop
    }
    const auto result = unitdb::RunDiff(c, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "SETUP-ERROR %s: %s\n",
                   unitdb::DescribeCase(c).c_str(),
                   result.status().ToString().c_str());
      return 3;
    }
    if (result->equivalent) continue;

    ++divergent;
    std::printf("DIVERGENCE %s (%lld mismatched fields)\n",
                unitdb::DescribeCase(c).c_str(),
                static_cast<long long>(result->divergence_count));
    for (const std::string& msg : result->divergences) {
      std::printf("  %s\n", msg.c_str());
    }
    const unitdb::DiffCase shrunk = unitdb::ShrinkCase(c, opts);
    std::printf("  shrunk: %s\n", unitdb::DescribeCase(shrunk).c_str());
    std::printf("  replay: diff_fuzz seed=%llu case=%lld\n",
                static_cast<unsigned long long>(c.gen_seed),
                static_cast<long long>(c.gen_index));
    if (expect_divergence) break;  // self-test satisfied; stop early
  }

  const int64_t total = end - begin;
  std::printf("diff_fuzz: %lld/%lld cases divergent (seed=%llu%s)\n",
              static_cast<long long>(divergent),
              static_cast<long long>(total),
              static_cast<unsigned long long>(seed),
              opts.perturb == unitdb::Perturbation::kNone ? ""
                                                          : ", perturbed");
  if (expect_divergence) return divergent > 0 ? 0 : 1;
  return divergent == 0 ? 0 : 1;
}
