#!/usr/bin/env python3
"""Checks relative markdown links in the repo's *.md files.

Scans the given files (or, with no arguments, every tracked-looking *.md
under the current directory, docs/, bench/, and tools/) for inline links
and validates the local ones:

  * `[text](path)` and `[text](path#anchor)` must point at an existing file
    or directory, resolved relative to the file containing the link;
  * bare intra-file anchors `[text](#anchor)` and external schemes
    (http/https/mailto) are skipped — this is a file-existence checker,
    not a network crawler or a heading parser;
  * fenced code blocks are skipped, so shell snippets mentioning
    `foo(bar)` never false-positive.

Stdlib only. Exit codes: 0 all links resolve, 1 at least one broken link.

Usage: check_md_links.py [FILE.md ...]
"""

import glob
import os
import re
import sys

# Inline markdown link: [text](target). Images ![alt](target) match too via
# the leading [. Nested brackets in the text are out of scope.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def iter_links(path):
    """Yields (line_number, target) for links outside fenced code blocks."""
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def check_file(path):
    broken = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in iter_links(path):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        local = target.split("#", 1)[0]
        if not local:
            continue
        resolved = os.path.normpath(os.path.join(base, local))
        if not os.path.exists(resolved):
            broken.append((lineno, target, resolved))
    return broken


def main(argv):
    files = argv[1:]
    if not files:
        patterns = ["*.md", "docs/*.md", "bench/*.md", "tools/*.md"]
        files = sorted(p for pat in patterns for p in glob.glob(pat))
    if not files:
        print("check_md_links: no markdown files found")
        return 1

    total_links = 0
    failures = 0
    for path in files:
        broken = check_file(path)
        total_links += sum(1 for _ in iter_links(path))
        for lineno, target, resolved in broken:
            print(f"{path}:{lineno}: broken link '{target}' "
                  f"(resolved to {resolved})")
            failures += 1
    status = "ok" if failures == 0 else f"{failures} broken"
    print(f"check_md_links: {len(files)} files, {total_links} links, {status}")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
