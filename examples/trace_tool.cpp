// trace_tool — generate, inspect, and replay workload traces from the
// command line. The archival format is the CSV round-trip of
// unit/workload/trace_io.h, so a generated trace can be shared, diffed,
// and replayed bit-exactly.
//
//   trace_tool mode=generate out=trace.csv [volume=med] [dist=unif]
//              [scale=1.0] [seed=42] [classes=1]
//   trace_tool mode=inspect in=trace.csv
//   trace_tool mode=replay in=trace.csv [policy=unit] [c_r=0] [c_fm=0]
//              [c_fs=0]

#include <algorithm>
#include <iostream>
#include <string>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"
#include "unit/workload/trace_io.h"

namespace {

using namespace unitdb;

UpdateVolume ParseVolume(const std::string& s) {
  if (s == "low") return UpdateVolume::kLow;
  if (s == "high") return UpdateVolume::kHigh;
  return UpdateVolume::kMedium;
}

UpdateDistribution ParseDist(const std::string& s) {
  if (s == "pos") return UpdateDistribution::kPositive;
  if (s == "neg") return UpdateDistribution::kNegative;
  return UpdateDistribution::kUniform;
}

int Generate(const Config& config) {
  const std::string out = config.GetString("out");
  if (out.empty()) {
    std::cerr << "mode=generate requires out=<path>\n";
    return 1;
  }
  QueryTraceParams qp;
  qp.duration = static_cast<SimDuration>(
      static_cast<double>(qp.duration) * config.GetDouble("scale", 1.0));
  qp.seed = config.GetInt("seed", 42);
  qp.num_preference_classes =
      static_cast<int>(config.GetInt("classes", 1));
  auto workload = GenerateQueryTrace(qp);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  UpdateTraceParams up;
  up.volume = ParseVolume(config.GetString("volume", "med"));
  up.distribution = ParseDist(config.GetString("dist", "unif"));
  up.seed = qp.seed + 1;
  if (Status s = GenerateUpdateTrace(up, *workload); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  if (Status s = SaveWorkload(*workload, out); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << out << ": " << workload->queries.size()
            << " queries, " << workload->updates.size() << " update sources ("
            << workload->update_trace_name << ")\n";
  return 0;
}

int Inspect(const Config& config) {
  const std::string in = config.GetString("in");
  auto workload = LoadWorkload(in);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  const Workload& w = *workload;
  std::cout << "trace: " << w.query_trace_name << " + "
            << w.update_trace_name << "\n";
  TextTable table;
  table.AddRow({"items", std::to_string(w.num_items)});
  table.AddRow({"duration (s)", Fmt(SimToSeconds(w.duration), 1)});
  table.AddRow({"queries", std::to_string(w.queries.size())});
  table.AddRow({"query utilization", FmtPercent(w.QueryUtilization())});
  table.AddRow({"update sources", std::to_string(w.updates.size())});
  table.AddRow({"source updates", std::to_string(w.TotalSourceUpdates())});
  table.AddRow({"update utilization", FmtPercent(w.UpdateUtilization())});
  int max_class = 0;
  double mean_deadline_s = 0.0, mean_items = 0.0;
  for (const auto& q : w.queries) {
    max_class = std::max(max_class, q.preference_class);
    mean_deadline_s += SimToSeconds(q.relative_deadline);
    mean_items += static_cast<double>(q.items.size());
  }
  if (!w.queries.empty()) {
    mean_deadline_s /= static_cast<double>(w.queries.size());
    mean_items /= static_cast<double>(w.queries.size());
  }
  table.AddRow({"preference classes", std::to_string(max_class + 1)});
  table.AddRow({"mean deadline (s)", Fmt(mean_deadline_s, 2)});
  table.AddRow({"mean read-set size", Fmt(mean_items, 2)});
  table.Print(std::cout);
  return 0;
}

int Replay(const Config& config) {
  auto workload = LoadWorkload(config.GetString("in"));
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  UsmWeights weights;
  weights.c_r = config.GetDouble("c_r", 0.0);
  weights.c_fm = config.GetDouble("c_fm", 0.0);
  weights.c_fs = config.GetDouble("c_fs", 0.0);
  const std::string policy = config.GetString("policy", "unit");
  auto r = RunExperiment(*workload, policy, weights);
  if (!r.ok()) {
    std::cerr << r.status().ToString() << "\n";
    return 1;
  }
  const auto& c = r->metrics.counts;
  std::cout << policy << " on " << r->trace << ": USM=" << Fmt(r->usm, 4)
            << " success=" << FmtPercent(c.SuccessRatio())
            << " rejected=" << FmtPercent(c.RejectionRatio())
            << " dmf=" << FmtPercent(c.DmfRatio())
            << " dsf=" << FmtPercent(c.DsfRatio())
            << " cpu=" << FmtPercent(r->metrics.Utilization()) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const std::string mode = config->GetString("mode");
  if (mode == "generate") return Generate(*config);
  if (mode == "inspect") return Inspect(*config);
  if (mode == "replay") return Replay(*config);
  std::cerr << "usage: trace_tool mode=generate|inspect|replay ...\n"
            << "  generate: out=<path> [volume] [dist] [scale] [seed] "
               "[classes]\n"
            << "  inspect:  in=<path>\n"
            << "  replay:   in=<path> [policy] [c_r] [c_fm] [c_fs]\n";
  return 2;
}
