// Implementing your own transaction-management policy against the public
// Policy interface. Two custom schemes are built here:
//
//  1. DeadlinePassPolicy — admission by a plain laxity check (no USM
//     reasoning), periodic updates untouched. A minimal useful policy in
//     ~20 lines.
//  2. MarkingHybrid — a from-scratch re-build of the library's
//     unit-hybrid policy (UNIT + ODU-style pre-read repair), showing how
//     to extend a built-in policy by overriding one hook.
//
// Both are compared against the built-ins on the standard med-unif trace.
//
// Usage: custom_policy [scale=0.5] [seed=42]

#include <iostream>
#include <memory>

#include "unit/common/config.h"
#include "unit/core/policies/unit_policy.h"
#include "unit/core/policy.h"
#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace {

using namespace unitdb;

// 1. A plain laxity-based admission controller.
class DeadlinePassPolicy : public Policy {
 public:
  std::string name() const override { return "laxity"; }

  bool AdmitQuery(EngineContext& engine, const Transaction& query) override {
    // Admit iff the query could start right after the current backlog and
    // still meet its deadline (C_flex == 1, no USM check).
    SimDuration earlier = 0;
    engine.ForEachReadyQuery([&](const Transaction& q) {
      if (q.absolute_deadline() <= query.absolute_deadline()) {
        earlier += q.remaining();
      }
    });
    const SimDuration est =
        engine.RunningRemaining() + engine.QueuedUpdateWork() + earlier;
    return est + query.estimate() <
           query.absolute_deadline() - engine.now();
  }
};

// 2. UNIT + on-demand repair of shed items before the query reads them
// (the library ships this as "unit-hybrid"; rebuilt here as a demo).
class MarkingHybrid : public UnitPolicy {
 public:
  explicit MarkingHybrid(const UsmWeights& weights) : UnitPolicy(weights) {}

  std::string name() const override { return "marking-hybrid"; }

  bool BeforeQueryDispatch(EngineContext& engine, Transaction& query) override {
    if (query.refresh_rounds() >= engine.params().max_refresh_rounds) {
      return true;
    }
    bool issued = false;
    for (ItemId item : query.items()) {
      if (engine.db().Freshness(item, engine.now()) <
              query.freshness_req() &&
          engine.PendingUpdatesForItem(item) == 0) {
        engine.IssueOnDemandUpdate(item);  // apply the buffered feed value
        issued = true;
      }
    }
    if (issued) query.IncrementRefreshRounds();
    return !issued;
  }
};

RunMetrics RunWith(const Workload& w, Policy& policy) {
  Engine engine(w, &policy, {});
  return engine.Run();
}

}  // namespace

int main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 0.5);
  const uint64_t seed = config->GetInt("seed", 42);

  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, scale, seed);
  if (!w.ok()) {
    std::cerr << w.status().ToString() << "\n";
    return 1;
  }
  std::cout << "custom policies on " << w->update_trace_name << " ("
            << w->queries.size() << " queries)\n\n";

  TextTable table;
  table.SetHeader({"policy", "USM", "success", "rejected", "dmf", "dsf"});
  auto add = [&table](const std::string& name, const RunMetrics& m) {
    const auto& c = m.counts;
    table.AddRow({name, Fmt(UsmAverage(c, UsmWeights{})),
                  FmtPercent(c.SuccessRatio()),
                  FmtPercent(c.RejectionRatio()), FmtPercent(c.DmfRatio()),
                  FmtPercent(c.DsfRatio())});
  };

  DeadlinePassPolicy laxity;
  add("laxity", RunWith(*w, laxity));
  MarkingHybrid hybrid((UsmWeights()));
  add("marking-hybrid", RunWith(*w, hybrid));
  for (const char* builtin : {"unit", "unit-hybrid", "imu", "odu", "qmf"}) {
    auto r = RunExperiment(*w, builtin, UsmWeights{});
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    add(builtin, r->metrics);
  }
  table.Print(std::cout);
  std::cout << "\nunit-hybrid layers ODU's just-in-time repair on UNIT's "
               "shedding — the\n'future work' combination DESIGN.md "
               "discusses.\n";
  return 0;
}
