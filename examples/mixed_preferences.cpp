// Multiple user preference classes — the extension the paper sketches in
// Section 3.1 ("we believe that our framework can be easily extended to
// support multiple preferences").
//
// Two user populations share one web-database server:
//   class 0, "traders":  a late answer is worst        (C_fm = 4)
//   class 1, "analysts": a stale answer is worst       (C_fs = 4)
// UNIT values each class's failures with its own penalties, both in
// admission control and in the Load Balancing Controller; the run reports
// the per-class outcome mixes and compares the multi-class controller
// against running UNIT with either single preference applied to everyone.
//
// Usage: mixed_preferences [scale=1.0] [seed=42]

#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/core/policies/unit_policy.h"
#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

int main(int argc, char** argv) {
  using namespace unitdb;
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);

  // Two preference classes, assigned uniformly by the generator.
  QueryTraceParams qp;
  qp.num_preference_classes = 2;
  qp.duration = static_cast<SimDuration>(
      static_cast<double>(qp.duration) * scale);
  qp.seed = seed;
  auto workload = GenerateQueryTrace(qp);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  UpdateTraceParams up;
  up.volume = UpdateVolume::kMedium;
  up.seed = seed + 1;
  if (Status s = GenerateUpdateTrace(up, *workload); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const UsmWeights trader{1.0, 2.0, 4.0, 2.0};   // hates lateness
  const UsmWeights analyst{1.0, 2.0, 2.0, 4.0};  // hates staleness
  const std::vector<UsmWeights> mixed = {trader, analyst};

  std::cout << "mixed preferences on " << workload->update_trace_name << " ("
            << workload->queries.size() << " queries, 2 classes)\n\n";

  TextTable table;
  table.SetHeader({"controller", "multi-USM", "class", "success", "rejected",
                   "late", "stale"});
  struct Variant {
    const char* name;
    std::vector<UsmWeights> weights;
  };
  for (const Variant& v :
       {Variant{"per-class weights", mixed},
        Variant{"all-trader weights", {trader}},
        Variant{"all-analyst weights", {analyst}}}) {
    UnitPolicy policy(v.weights);
    Engine engine(*workload, &policy, {});
    RunMetrics m = engine.Run();
    // Always *evaluate* with the true per-class preferences.
    const double usm = UsmAverageMulti(m.per_class_counts, mixed);
    for (size_t c = 0; c < m.per_class_counts.size(); ++c) {
      const OutcomeCounts& counts = m.per_class_counts[c];
      table.AddRow({c == 0 ? v.name : "", c == 0 ? Fmt(usm, 3) : "",
                    c == 0 ? "traders" : "analysts",
                    FmtPercent(counts.SuccessRatio()),
                    FmtPercent(counts.RejectionRatio()),
                    FmtPercent(counts.DmfRatio()),
                    FmtPercent(counts.DsfRatio())});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\nThe per-class controller values each user's failures by "
               "their own penalties;\nthe single-preference variants "
               "optimize the wrong objective for half the users.\n";
  return 0;
}
