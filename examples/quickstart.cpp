// Quickstart: generate the paper's standard workload (cello-like query trace
// + a Table-1 update trace), run all four policies, and print the outcome
// decomposition and USM — the 60-second tour of the library.
//
// Usage: quickstart [scale=0.25] [volume=med] [dist=unif] [seed=42]
//        [c_r=0] [c_fm=0] [c_fs=0]

#include <cstdio>
#include <iostream>
#include <string>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace {

unitdb::UpdateVolume ParseVolume(const std::string& s) {
  if (s == "low") return unitdb::UpdateVolume::kLow;
  if (s == "high") return unitdb::UpdateVolume::kHigh;
  return unitdb::UpdateVolume::kMedium;
}

unitdb::UpdateDistribution ParseDist(const std::string& s) {
  if (s == "pos") return unitdb::UpdateDistribution::kPositive;
  if (s == "neg") return unitdb::UpdateDistribution::kNegative;
  return unitdb::UpdateDistribution::kUniform;
}

}  // namespace

int main(int argc, char** argv) {
  auto config = unitdb::Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 0.25);
  const auto volume = ParseVolume(config->GetString("volume", "med"));
  const auto dist = ParseDist(config->GetString("dist", "unif"));
  const uint64_t seed = config->GetInt("seed", 42);

  unitdb::UsmWeights weights;
  weights.c_r = config->GetDouble("c_r", 0.0);
  weights.c_fm = config->GetDouble("c_fm", 0.0);
  weights.c_fs = config->GetDouble("c_fs", 0.0);

  auto workload = unitdb::MakeStandardWorkload(volume, dist, scale, seed);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  std::printf(
      "workload: %s | %zu queries over %.0f s | %lld source updates "
      "(update util %.0f%%, query util %.0f%%)\n\n",
      workload->update_trace_name.c_str(), workload->queries.size(),
      unitdb::SimToSeconds(workload->duration),
      static_cast<long long>(workload->TotalSourceUpdates()),
      100.0 * workload->UpdateUtilization(),
      100.0 * workload->QueryUtilization());

  auto results =
      unitdb::RunPolicies(*workload, {"unit", "imu", "odu", "qmf"}, weights);
  if (!results.ok()) {
    std::cerr << results.status().ToString() << "\n";
    return 1;
  }

  unitdb::TextTable table;
  table.SetHeader({"policy", "USM", "success", "rejected", "dmf", "dsf",
                   "cpu util", "mean RT(s)", "updates applied"});
  for (const auto& r : *results) {
    const auto& c = r.metrics.counts;
    table.AddRow({r.policy, unitdb::Fmt(r.usm),
                  unitdb::FmtPercent(c.SuccessRatio()),
                  unitdb::FmtPercent(c.RejectionRatio()),
                  unitdb::FmtPercent(c.DmfRatio()),
                  unitdb::FmtPercent(c.DsfRatio()),
                  unitdb::FmtPercent(r.metrics.Utilization()),
                  unitdb::Fmt(r.metrics.query_response_s.mean(), 3),
                  std::to_string(r.metrics.update_commits)});
  }
  table.Print(std::cout);
  std::cout << "\nUNIT balances the three failure modes the paper names "
               "(rejections, deadline\nmisses, freshness misses) via "
               "admission control + update frequency modulation.\n";
  return 0;
}
