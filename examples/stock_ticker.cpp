// Stock ticker scenario — the paper's motivating example (Section 1): a
// web-database server ingesting periodic stock ticks while users query
// moving averages of their portfolios under response-time guarantees
// ("modern stock trading web sites offer guarantees, e.g. 2 seconds").
//
// We build the workload by hand rather than with the trace generator:
//  * 400 symbols; the "S&P-40" head tick every 1-3 s, the tail every 10-60 s
//  * portfolio queries read 1-6 symbols, deadline fixed at 2 s (the E*Trade
//    guarantee), freshness requirement 0.9
//  * a market-open flash crowd multiplies the query rate 20x for 30 s
//
// Compares UNIT with the baselines, then reruns UNIT with user preferences
// saying "a late answer is worse than a rejection" (high C_fm).
//
// Usage: stock_ticker [duration_s=600] [seed=17]

#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/common/rng.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace {

using namespace unitdb;

Workload BuildMarket(double duration_s, uint64_t seed) {
  Workload w;
  w.num_items = 400;
  w.duration = SecondsToSim(duration_s);
  w.query_trace_name = "stock-portfolios";
  w.update_trace_name = "stock-ticks";

  Rng rng(seed);
  Rng tick_rng = rng.Fork();
  Rng query_rng = rng.Fork();

  // Tick feeds: hot symbols update fast, the tail slowly. Applying a tick
  // re-computes the symbol's derived views (moving averages): 5-20 ms.
  for (ItemId s = 0; s < w.num_items; ++s) {
    ItemUpdateSpec spec;
    spec.item = s;
    const double period_s = s < 40 ? tick_rng.Uniform(1.0, 3.0)
                                   : tick_rng.Uniform(10.0, 60.0);
    spec.ideal_period = SecondsToSim(period_s);
    spec.update_exec = MillisToSim(tick_rng.Uniform(5.0, 20.0));
    spec.phase = static_cast<SimTime>(
        tick_rng.Uniform(0.0, static_cast<double>(spec.ideal_period)));
    w.updates.push_back(spec);
  }

  // Portfolio queries: Poisson base rate 10/s; market-open flash crowd
  // (20x) during [60s, 90s). Deadline fixed at the 2-second guarantee.
  const ZipfSampler popularity(w.num_items, 1.0);
  double t = 0.0;
  TxnId id = 0;
  while (t < duration_s) {
    const bool crowd = t >= 60.0 && t < 90.0;
    t += query_rng.Exponential(1.0 / (crowd ? 200.0 : 10.0));
    if (t >= duration_s) break;
    QueryRequest q;
    q.id = id++;
    q.arrival = SecondsToSim(t);
    q.exec = MillisToSim(query_rng.Uniform(5.0, 40.0));
    q.relative_deadline = SecondsToSim(2.0);
    q.freshness_req = 0.9;
    const int positions = 1 + static_cast<int>(query_rng.UniformInt(0, 5));
    for (int k = 0; k < positions; ++k) {
      const ItemId sym = popularity.Sample(query_rng);
      if (std::find(q.items.begin(), q.items.end(), sym) == q.items.end()) {
        q.items.push_back(sym);
      }
    }
    w.queries.push_back(std::move(q));
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double duration_s = config->GetDouble("duration_s", 600.0);
  const uint64_t seed = config->GetInt("seed", 17);

  Workload market = BuildMarket(duration_s, seed);
  std::cout << "stock ticker: " << market.queries.size() << " portfolio "
            << "queries, " << market.TotalSourceUpdates() << " ticks ("
            << FmtPercent(market.UpdateUtilization()) << " update CPU, "
            << FmtPercent(market.QueryUtilization()) << " query CPU), "
            << "2s deadline guarantee, flash crowd at t=60s\n\n";

  auto results =
      RunPolicies(market, {"unit", "imu", "odu", "qmf"}, UsmWeights{});
  if (!results.ok()) {
    std::cerr << results.status().ToString() << "\n";
    return 1;
  }
  TextTable table;
  table.SetHeader({"policy", "USM", "success", "rejected", "late", "stale",
                   "p95 RT(s)... mean", "ticks applied"});
  for (const auto& r : *results) {
    const auto& c = r.metrics.counts;
    table.AddRow({r.policy, Fmt(r.usm), FmtPercent(c.SuccessRatio()),
                  FmtPercent(c.RejectionRatio()), FmtPercent(c.DmfRatio()),
                  FmtPercent(c.DsfRatio()),
                  Fmt(r.metrics.query_response_s.mean(), 3),
                  std::to_string(r.metrics.update_commits)});
  }
  table.Print(std::cout);

  // Traders hate late fills more than polite rejections: high C_fm.
  std::cout << "\nwith trader preferences (C_fm=4 > C_r=2, C_fs=2):\n";
  const UsmWeights trader{1.0, 2.0, 4.0, 2.0};
  auto tuned = RunPolicies(market, {"unit", "imu", "odu", "qmf"}, trader);
  if (!tuned.ok()) {
    std::cerr << tuned.status().ToString() << "\n";
    return 1;
  }
  TextTable t2;
  t2.SetHeader({"policy", "USM", "success", "rejected", "late", "stale"});
  for (const auto& r : *tuned) {
    const auto& c = r.metrics.counts;
    t2.AddRow({r.policy, Fmt(r.usm), FmtPercent(c.SuccessRatio()),
               FmtPercent(c.RejectionRatio()), FmtPercent(c.DmfRatio()),
               FmtPercent(c.DsfRatio())});
  }
  t2.Print(std::cout);
  return 0;
}
