// Network monitoring scenario (one of the paper's motivating applications):
// an intrusion-detection dashboard over per-host flow summaries. Sensors
// push per-host updates at very different rates (a negative correlation:
// chatty hosts are rarely the ones analysts look at), while analysts run
// dashboard queries with mixed urgency — interactive drill-downs with tight
// deadlines and background sweeps with loose ones.
//
// Demonstrates: building a workload with the generator's knobs (negative
// correlation, custom utilization), replaying it through UNIT, and saving
// the trace to CSV for archival.
//
// Usage: network_monitor [duration_s=400] [hosts=512] [seed=23]
//        [save=] (optional path to dump the trace CSV)

#include <iostream>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"
#include "unit/workload/trace_io.h"

int main(int argc, char** argv) {
  using namespace unitdb;
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double duration_s = config->GetDouble("duration_s", 400.0);
  const int hosts = static_cast<int>(config->GetInt("hosts", 512));
  const uint64_t seed = config->GetInt("seed", 23);

  // Analyst queries: bursty (incident response!), strongly skewed toward
  // the hosts under investigation, mixed deadlines.
  QueryTraceParams qp;
  qp.num_items = hosts;
  qp.duration = SecondsToSim(duration_s);
  qp.base_rate_hz = 6.0;
  qp.burst_rate_multiplier = 20.0;  // incident: everyone looks at once
  qp.mean_normal_sojourn_s = 60.0;
  qp.mean_burst_sojourn_s = 5.0;
  qp.zipf_s = 1.2;
  qp.deadline_lo_factor = 2.0;
  qp.deadline_hi_factor = 8.0;
  qp.seed = seed;
  auto workload = GenerateQueryTrace(qp);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }

  // Sensor updates: negatively correlated with analyst attention, heavy
  // aggregate load (flow summaries are expensive to fold in).
  UpdateTraceParams up;
  up.distribution = UpdateDistribution::kNegative;
  up.utilization_override = 0.9;
  up.exec_lo_ms = 20.0;
  up.exec_hi_ms = 120.0;
  up.seed = seed + 1;
  if (Status s = GenerateUpdateTrace(up, *workload); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  std::cout << "network monitor: " << workload->queries.size()
            << " analyst queries over " << duration_s << "s, "
            << workload->TotalSourceUpdates() << " sensor updates ("
            << FmtPercent(workload->UpdateUtilization()) << " CPU if all "
            << "applied)\n\n";

  // Analysts prefer a clear "try again" over stale intel: C_fs dominant.
  const UsmWeights analyst{1.0, 0.2, 0.4, 0.8};
  auto results =
      RunPolicies(*workload, {"unit", "imu", "odu", "qmf"}, analyst);
  if (!results.ok()) {
    std::cerr << results.status().ToString() << "\n";
    return 1;
  }
  TextTable table;
  table.SetHeader({"policy", "USM", "success", "rejected", "late", "stale",
                   "sensor updates applied"});
  for (const auto& r : *results) {
    const auto& c = r.metrics.counts;
    table.AddRow({r.policy, Fmt(r.usm), FmtPercent(c.SuccessRatio()),
                  FmtPercent(c.RejectionRatio()), FmtPercent(c.DmfRatio()),
                  FmtPercent(c.DsfRatio()),
                  std::to_string(r.metrics.update_commits)});
  }
  table.Print(std::cout);

  const std::string save = config->GetString("save");
  if (!save.empty()) {
    if (Status s = SaveWorkload(*workload, save); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    std::cout << "\ntrace saved to " << save << " (replay with LoadWorkload)"
              << "\n";
  }
  return 0;
}
