#include "unit/obs/trace_check.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "unit/faults/scenario.h"

namespace unitdb {

namespace {

// Eq. 1 tolerance. Values round-trip bit-exactly through %.17g, so this only
// absorbs the divide in 1/(1 + Udrop) being re-done here.
constexpr double kFreshnessEps = 1e-12;

enum class TxnPhase { kArrived, kAdmitted, kDone };

class Checker {
 public:
  TraceCheckResult Run(const std::vector<TraceEvent>& events) {
    for (size_t pos = 0; pos < events.size(); ++pos) {
      const TraceEvent& e = events[pos];
      ++result_.events;
      CheckTime(e);
      switch (e.type) {
        case TraceEventType::kQueryArrival:
          ++result_.arrivals;
          OnArrival(e);
          break;
        case TraceEventType::kAdmit:
          ++result_.admits;
          OnAdmit(e);
          break;
        case TraceEventType::kReject:
          ++result_.rejects;
          OnReject(e);
          break;
        case TraceEventType::kPreempt:
        case TraceEventType::kLockRestart:
          RequireAdmitted(e, e.type == TraceEventType::kPreempt
                                 ? "preempt"
                                 : "lock-restart");
          break;
        case TraceEventType::kCommit:
          ++result_.commits;
          OnCommit(e);
          break;
        case TraceEventType::kDeadlineMiss:
          ++result_.deadline_misses;
          OnDeadlineMiss(e);
          break;
        case TraceEventType::kUpdateArrival:
          ++result_.update_arrivals;
          arrivals_[e.item].push_back(e.time);
          break;
        case TraceEventType::kUpdateDrop:
          ++result_.update_drops;
          break;
        case TraceEventType::kUpdateApply:
          ++result_.update_applies;
          if (e.lag < 0) Violation(5, e, "update-apply with negative lag");
          applies_[e.item].emplace_back(static_cast<int64_t>(pos),
                                        e.time - e.lag);
          last_apply_[e.item] = {e.time, e.txn};
          break;
        case TraceEventType::kPeriodChange:
          OnPeriodChange(e);
          break;
        case TraceEventType::kLbcSignal:
          ++result_.lbc_signals;
          OnLbcSignal(e);
          break;
        case TraceEventType::kFaultStart:
          ++result_.fault_starts;
          OnFaultStart(e);
          break;
        case TraceEventType::kFaultStop:
          ++result_.fault_stops;
          OnFaultStop(e);
          break;
        case TraceEventType::kSessionRetry:
          ++result_.session_retries;
          OnSessionRetry(e);
          break;
        case TraceEventType::kSessionAbandon:
          ++result_.session_abandons;
          OnSessionAbandon(e);
          break;
        case TraceEventType::kShed:
          ++result_.sheds;
          OnShed(e);
          break;
        case TraceEventType::kCacheHit:
          ++result_.cache_hits;
          OnCacheHit(e, static_cast<int64_t>(pos));
          break;
        case TraceEventType::kCacheInvalidate:
          ++result_.cache_invalidations;
          OnCacheInvalidate(e);
          break;
      }
    }
    // Invariant 2 epilogue: nothing admitted may be left without a terminal
    // outcome — firm deadlines guarantee every admitted query resolves.
    for (const auto& [txn, phase] : txns_) {
      if (phase == TxnPhase::kAdmitted) {
        Record(2, "txn " + std::to_string(txn) +
                      " admitted but has no terminal outcome");
      }
    }
    // Invariant 6 epilogue: every fault window closes before the trace ends
    // (the schedule compiler clamps stop edges to the run duration).
    for (const auto& [fault, kind] : active_faults_) {
      Record(6, "fault " + std::to_string(fault) + " (" + kind +
                    ") started but never stopped");
    }
    // Invariant 8 epilogue (staleness leg): re-derive each hit's Udrop from
    // the item's update history. Deferred to the end so same-instant grid
    // arrivals serialized after the hit still count (the engine's
    // generation-at-time is analytic, independent of event order), while
    // applies are replayed in trace order, which IS engine order. The model
    // is exact only for fault-free traces with periodic arrivals — bursts
    // and outages skew the grid, and on-demand-only runs emit no arrival
    // events — so other traces skip this leg.
    if (!saw_fault_ && result_.update_arrivals > 0) {
      for (const HitCheck& h : hits_) {
        const int64_t expected = ModelUdrop(h);
        if (expected != h.udrop) {
          Record(8, "t=" + std::to_string(h.time) + " cache-hit: udrop " +
                        std::to_string(h.udrop) + " for item " +
                        std::to_string(h.item) +
                        " contradicts the item's update history (expected " +
                        std::to_string(expected) + ")");
        }
      }
    }
    return result_;
  }

 private:
  void Record(int invariant, std::string what) {
    ++result_.violation_count;
    ++result_.invariant_violations[invariant];
    if (result_.violation_count <= TraceCheckResult::kMaxRecordedViolations) {
      result_.violations.push_back("[invariant " + std::to_string(invariant) +
                                   "] " + std::move(what));
    }
  }

  void Violation(int invariant, const TraceEvent& e,
                 const std::string& what) {
    Record(invariant, "t=" + std::to_string(e.time) + " " +
                          TraceEventTypeName(e.type) + ": " + what);
  }

  void CheckTime(const TraceEvent& e) {
    if (e.time < last_time_) Violation(1, e, "timestamp went backwards");
    last_time_ = e.time;
  }

  TxnPhase* Find(const TraceEvent& e, const char* what) {
    auto it = txns_.find(e.txn);
    if (it == txns_.end()) {
      Violation(2, e, std::string(what) + " for unknown txn " +
                       std::to_string(e.txn));
      return nullptr;
    }
    return &it->second;
  }

  void OnArrival(const TraceEvent& e) {
    if (!txns_.emplace(e.txn, TxnPhase::kArrived).second) {
      Violation(2, e, "duplicate arrival for txn " + std::to_string(e.txn));
    }
  }

  void OnAdmit(const TraceEvent& e) {
    TxnPhase* phase = Find(e, "admit");
    if (phase == nullptr) return;
    if (*phase != TxnPhase::kArrived) {
      Violation(2, e, "admit out of order for txn " + std::to_string(e.txn));
    }
    *phase = TxnPhase::kAdmitted;
  }

  void OnReject(const TraceEvent& e) {
    TxnPhase* phase = Find(e, "reject");
    if (phase == nullptr) return;
    if (*phase != TxnPhase::kArrived) {
      Violation(2, e, "reject of a non-pending txn " + std::to_string(e.txn));
    }
    *phase = TxnPhase::kDone;
    failed_txns_.insert(e.txn);
  }

  void RequireAdmitted(const TraceEvent& e, const char* what) {
    TxnPhase* phase = Find(e, what);
    if (phase != nullptr && *phase != TxnPhase::kAdmitted) {
      Violation(2, e, std::string(what) + " of a txn that is not running");
    }
  }

  void OnCommit(const TraceEvent& e) {
    RequireAdmitted(e, "commit");
    auto it = txns_.find(e.txn);
    if (it != txns_.end()) it->second = TxnPhase::kDone;

    const bool is_success = std::strcmp(e.reason, "success") == 0;
    const bool is_stale = std::strcmp(e.reason, "dsf") == 0;
    if (is_success) ++result_.success;
    if (is_stale) ++result_.stale;
    if (!is_success && !is_stale) {
      Violation(3, e, std::string("unknown commit outcome \"") + e.reason + "\"");
      return;
    }
    // Invariant 3: Eq. 1 freshness accounting. The committed freshness must
    // equal 1/(1 + Udrop) for the staleness-dominant item, and the outcome
    // must follow from the freshness requirement.
    if (e.udrop < 0) {
      Violation(3, e, "commit without Udrop accounting");
      return;
    }
    const double expected = 1.0 / (1.0 + static_cast<double>(e.udrop));
    if (std::fabs(e.freshness - expected) > kFreshnessEps) {
      Violation(3, e, "freshness " + std::to_string(e.freshness) +
                       " != 1/(1+Udrop) = " + std::to_string(expected));
    }
    const bool should_succeed = e.freshness >= e.freshness_req;
    if (is_success != should_succeed) {
      Violation(3, e, "outcome " + std::string(e.reason) +
                       " contradicts freshness " + std::to_string(e.freshness) +
                       " vs required " + std::to_string(e.freshness_req));
    }
  }

  void OnDeadlineMiss(const TraceEvent& e) {
    RequireAdmitted(e, "deadline-miss");
    auto it = txns_.find(e.txn);
    if (it != txns_.end()) it->second = TxnPhase::kDone;
    failed_txns_.insert(e.txn);
  }

  /// Invariant 7 (shed leg): overload shedding evicts an *admitted* ready
  /// query (it is a terminal outcome for invariant 2), the watermark must be
  /// active (>= 1), and the pre-eviction ready depth must strictly exceed it
  /// — shedding below or at the watermark is forbidden.
  void OnShed(const TraceEvent& e) {
    RequireAdmitted(e, "shed");
    auto it = txns_.find(e.txn);
    if (it != txns_.end()) it->second = TxnPhase::kDone;
    failed_txns_.insert(e.txn);
    const int64_t watermark = static_cast<int64_t>(e.magnitude);
    if (watermark < 1) {
      Violation(7, e, "shed with inactive watermark " +
                       std::to_string(watermark));
    } else if (e.resolved <= watermark) {
      Violation(7, e, "shed at ready depth " + std::to_string(e.resolved) +
                       " <= watermark " + std::to_string(watermark));
    }
  }

  /// Invariant 7 (retry leg): a retry is only scheduled in reaction to a
  /// failed attempt, so its txn must already have a reject / deadline-miss /
  /// shed on record; per request chain the attempt counter increments from 1
  /// and the backoff delay never shrinks.
  void OnSessionRetry(const TraceEvent& e) {
    if (failed_txns_.find(e.txn) == failed_txns_.end()) {
      Violation(7, e, "retry without a prior reject/miss/shed for txn " +
                       std::to_string(e.txn));
    }
    ChainState& c = chains_[e.request];
    if (e.resolved != c.last_attempt + 1) {
      Violation(7, e, "request " + std::to_string(e.request) +
                       " retry attempt " + std::to_string(e.resolved) +
                       " does not follow attempt " +
                       std::to_string(c.last_attempt));
    }
    if (e.lag < 1) {
      Violation(7, e, "retry with non-positive delay " +
                       std::to_string(e.lag));
    } else if (e.lag < c.last_delay) {
      Violation(7, e, "request " + std::to_string(e.request) +
                       " backoff delay shrank from " +
                       std::to_string(c.last_delay) + " to " +
                       std::to_string(e.lag));
    }
    c.last_attempt = e.resolved;
    c.last_delay = e.lag;
  }

  /// Invariant 7 (abandon leg): abandonment is also a reaction to a failed
  /// attempt and must be the chain's next attempt number.
  void OnSessionAbandon(const TraceEvent& e) {
    if (failed_txns_.find(e.txn) == failed_txns_.end()) {
      Violation(7, e, "abandon without a prior reject/miss/shed for txn " +
                       std::to_string(e.txn));
    }
    auto it = chains_.find(e.request);
    const int last_attempt = it == chains_.end() ? 0 : it->second.last_attempt;
    if (e.resolved != last_attempt + 1) {
      Violation(7, e, "request " + std::to_string(e.request) +
                       " abandoned at attempt " + std::to_string(e.resolved) +
                       " after attempt " + std::to_string(last_attempt));
    }
    if (it != chains_.end()) chains_.erase(it);
  }

  /// One cache hit queued for the invariant 8 history epilogue.
  struct HitCheck {
    int64_t pos = 0;  ///< trace position (applies before it are installed)
    SimTime time = 0;
    ItemId item = kInvalidItem;
    int64_t udrop = 0;
  };

  /// Invariant 8 (hit leg): a hit is served on arrival, before admission —
  /// the terminal outcome of a still-pending txn (lifecycle itself is
  /// invariant 2, matching kShed). The hit must carry an active capacity, a
  /// "success" outcome, Eq. 1-consistent freshness, and freshness meeting
  /// the requirement; its Udrop claim is deferred to the history epilogue.
  void OnCacheHit(const TraceEvent& e, int64_t pos) {
    TxnPhase* phase = Find(e, "cache-hit");
    if (phase != nullptr) {
      if (*phase != TxnPhase::kArrived) {
        Violation(2, e, "cache-hit of a non-pending txn " +
                         std::to_string(e.txn));
      }
      *phase = TxnPhase::kDone;
    }
    if (e.resolved < 1) {
      Violation(8, e, "cache hit with the cache disabled (capacity " +
                       std::to_string(e.resolved) + ")");
    }
    if (std::strcmp(e.reason, "success") != 0) {
      Violation(8, e, std::string("cache hit with outcome \"") + e.reason +
                       "\" (hits are only ever served as success)");
      return;
    }
    if (e.udrop < 0) {
      Violation(8, e, "cache hit without Udrop accounting");
      return;
    }
    const double expected = 1.0 / (1.0 + static_cast<double>(e.udrop));
    if (std::fabs(e.freshness - expected) > kFreshnessEps) {
      Violation(8, e, "hit freshness " + std::to_string(e.freshness) +
                       " != 1/(1+Udrop) = " + std::to_string(expected));
    }
    if (e.freshness < e.freshness_req) {
      Violation(8, e, "hit served below the required freshness (" +
                       std::to_string(e.freshness) + " < " +
                       std::to_string(e.freshness_req) + ")");
    }
    if (e.item >= 0) {
      hits_.push_back({pos, e.time, e.item, e.udrop});
    }
  }

  /// Invariant 8 (invalidate leg): an entry is only erased by the update
  /// install that supersedes it — the same-instant apply of the same txn on
  /// the same item, which the engine emits immediately before.
  void OnCacheInvalidate(const TraceEvent& e) {
    auto it = last_apply_.find(e.item);
    if (it == last_apply_.end() || it->second.first != e.time ||
        it->second.second != e.txn) {
      Violation(8, e, "cache-invalidate of item " + std::to_string(e.item) +
                       " not paired with the update-apply installing it");
    }
  }

  /// Highest generation of `item` at or before `t` under the grid model:
  /// the n-th update arrival is generation n - 1 (-1 before the first).
  int64_t GenerationAt(ItemId item, SimTime t) const {
    auto it = arrivals_.find(item);
    if (it == arrivals_.end()) return -1;
    const std::vector<SimTime>& a = it->second;
    return static_cast<int64_t>(std::upper_bound(a.begin(), a.end(), t) -
                                a.begin()) -
           1;
  }

  /// The Udrop the database would report for the hit's item at hit time:
  /// generation at hit time minus the highest generation installed by the
  /// applies that precede the hit in trace order.
  int64_t ModelUdrop(const HitCheck& h) const {
    int64_t installed = -1;
    auto it = applies_.find(h.item);
    if (it != applies_.end()) {
      for (const auto& [pos, value_time] : it->second) {
        if (pos >= h.pos) break;  // applies are recorded in trace order
        installed = std::max(installed, GenerationAt(h.item, value_time));
      }
    }
    return std::max<int64_t>(0, GenerationAt(h.item, h.time) - installed);
  }

  void OnPeriodChange(const TraceEvent& e) {
    if (std::strcmp(e.reason, "degrade") == 0) {
      if (e.period_to <= e.period_from) {
        Violation(5, e, "degrade did not stretch the period");
      }
    } else if (std::strcmp(e.reason, "upgrade") == 0) {
      if (e.period_to >= e.period_from) {
        Violation(5, e, "upgrade did not shrink the period");
      }
    } else {
      Violation(5, e, std::string("unknown period-change reason \"") + e.reason +
                       "\"");
    }
  }

  void OnLbcSignal(const TraceEvent& e) {
    // Invariant 4: the Fig. 2 dominant-penalty rule. The event carries the
    // post-floor weighted ratios the controller chose between; the chosen
    // signal must target the (possibly tied) maximum, and the quiescent
    // signals require all ratios to have been floored to zero.
    const char* s = e.reason;
    bool rule_ok = true;
    if (std::strcmp(s, "loosen-ac") == 0) {
      rule_ok = e.r > 0.0 && e.r >= e.fm && e.r >= e.fs;
    } else if (std::strcmp(s, "degrade+tighten") == 0) {
      rule_ok = e.fm > 0.0 && e.fm >= e.r && e.fm >= e.fs;
    } else if (std::strcmp(s, "upgrade") == 0) {
      rule_ok = e.fs > 0.0 && e.fs >= e.r && e.fs >= e.fm;
    } else if (std::strcmp(s, "preventive-degrade") == 0 ||
               std::strcmp(s, "none") == 0) {
      rule_ok = e.r <= 0.0 && e.fm <= 0.0 && e.fs <= 0.0;
    } else {
      Violation(4, e, std::string("unknown LBC signal \"") + s + "\"");
      return;
    }
    if (!rule_ok) {
      Violation(4, e, std::string("signal ") + s + " violates dominant-penalty" +
                       " rule (r=" + std::to_string(e.r) +
                       " fm=" + std::to_string(e.fm) +
                       " fs=" + std::to_string(e.fs) + ")");
    }
    // Knob movement (only meaningful when the policy has an AC knob; both
    // fields are NaN otherwise). The knob is C_flex — larger is *tighter* —
    // so loosen-ac must not raise it and degrade+tighten must not lower it.
    // Either may saturate at its bound, so direction is checked, not strict
    // movement.
    if (!std::isnan(e.knob_before) && !std::isnan(e.knob)) {
      if (std::strcmp(s, "loosen-ac") == 0) {
        if (e.knob > e.knob_before) {
          Violation(4, e, "loosen-ac tightened the knob");
        }
      } else if (std::strcmp(s, "degrade+tighten") == 0) {
        if (e.knob < e.knob_before) {
          Violation(4, e, "degrade+tighten loosened the knob");
        }
      } else if (e.knob != e.knob_before) {
        Violation(4, e, std::string("signal ") + s + " moved the admission knob");
      }
    }
    CheckFaultResponse(e);
  }

  /// Invariant 6 response direction: while open fault windows unanimously
  /// pressure one penalty axis and the event shows that ratio as the strict
  /// (unique, positive) maximum, the controller must pick the relieving
  /// action. Scoped to strict maxima because the engine's LBC breaks ties
  /// among equal maximal ratios randomly — non-strict dominance carries no
  /// direction obligation.
  void CheckFaultResponse(const TraceEvent& e) {
    if (active_faults_.empty()) return;
    ++result_.fault_window_lbc_signals;
    const char* expected = nullptr;
    if (fs_pressure_ > 0 && fm_pressure_ == 0) {
      if (e.fs > e.r && e.fs > e.fm && e.fs > 0.0) expected = "upgrade";
    } else if (fm_pressure_ > 0 && fs_pressure_ == 0) {
      if (e.fm > e.r && e.fm > e.fs && e.fm > 0.0) expected = "degrade+tighten";
    }
    if (expected == nullptr) return;
    if (std::strcmp(e.reason, expected) == 0) {
      ++result_.fault_window_relief_signals;
    } else {
      Violation(6, e, std::string("LBC response \"") + e.reason +
                       "\" during a fault window pressuring the dominant "
                       "penalty; expected \"" + expected +
                       "\" (r=" + std::to_string(e.r) +
                       " fm=" + std::to_string(e.fm) +
                       " fs=" + std::to_string(e.fs) + ")");
    }
  }

  /// Which penalty axis `kind` pressures; updates the open-window tallies.
  void AdjustPressure(FaultKind kind, int delta) {
    switch (kind) {
      case FaultKind::kUpdateOutage:
      case FaultKind::kFreshnessShift:
        fs_pressure_ += delta;
        break;
      case FaultKind::kUpdateBurst:
      case FaultKind::kServiceSlowdown:
        fm_pressure_ += delta;
        break;
      case FaultKind::kLoadStep:
      case FaultKind::kRetryStorm:
        // Pressures R and Fm together — no single relieving action, so a
        // load-step / retry-storm window suspends the direction check via
        // neither tally.
        fs_pressure_ += delta;
        fm_pressure_ += delta;
        break;
    }
  }

  void OnFaultStart(const TraceEvent& e) {
    saw_fault_ = true;
    FaultKind kind;
    if (!FaultKindFromName(e.reason, &kind)) {
      Violation(6, e, std::string("unknown fault kind \"") + e.reason + "\"");
      return;
    }
    if (!active_faults_.emplace(e.txn, e.reason).second) {
      Violation(6, e, "duplicate start for fault " + std::to_string(e.txn));
      return;
    }
    const bool item_scoped = kind == FaultKind::kUpdateOutage ||
                             kind == FaultKind::kUpdateBurst;
    if (item_scoped && e.resolved <= 0) {
      Violation(6, e, "item-scoped fault with no affected items");
    }
    if (!item_scoped && e.resolved != 0) {
      Violation(6, e, "global fault carries an item span");
    }
    if (kind != FaultKind::kUpdateOutage && e.magnitude == 0.0) {
      Violation(6, e, "zero magnitude for kind \"" + std::string(e.reason) +
                       "\"");
    }
    AdjustPressure(kind, +1);
  }

  void OnFaultStop(const TraceEvent& e) {
    saw_fault_ = true;
    auto it = active_faults_.find(e.txn);
    if (it == active_faults_.end()) {
      Violation(6, e, "stop without start for fault " + std::to_string(e.txn));
      return;
    }
    if (it->second != e.reason) {
      Violation(6, e, "fault " + std::to_string(e.txn) + " started as \"" +
                       it->second + "\" but stopped as \"" + e.reason + "\"");
    }
    FaultKind kind;
    if (FaultKindFromName(it->second.c_str(), &kind)) {
      AdjustPressure(kind, -1);
    }
    active_faults_.erase(it);
  }

  /// Per-request retry-chain state for invariant 7.
  struct ChainState {
    int64_t last_attempt = 0;
    SimDuration last_delay = 0;
  };

  TraceCheckResult result_;
  SimTime last_time_ = 0;
  std::unordered_map<TxnId, TxnPhase> txns_;
  /// Txns with a recorded failure terminal (reject / deadline-miss / shed);
  /// retries and abandons must reference one of these.
  std::unordered_set<TxnId> failed_txns_;
  std::unordered_map<TxnId, ChainState> chains_;
  /// Open fault windows: fault id -> kind name (ordered so the unclosed-
  /// window epilogue reports deterministically).
  std::map<int64_t, std::string> active_faults_;
  int fs_pressure_ = 0;
  int fm_pressure_ = 0;

  // Invariant 8 state: per-item update-arrival grid and apply history
  // ((trace position, value time) pairs), the most recent apply per item
  // (for invalidate pairing), the queued hits, and whether any fault event
  // was seen (which disables the history leg).
  std::unordered_map<ItemId, std::vector<SimTime>> arrivals_;
  std::unordered_map<ItemId, std::vector<std::pair<int64_t, SimTime>>>
      applies_;
  std::unordered_map<ItemId, std::pair<SimTime, TxnId>> last_apply_;
  std::vector<HitCheck> hits_;
  bool saw_fault_ = false;
};

}  // namespace

TraceCheckResult CheckTrace(const std::vector<TraceEvent>& events) {
  return Checker().Run(events);
}

int TraceCheckExitCode(const TraceCheckResult& result) {
  return result.FirstViolatedInvariant();
}

std::string TraceCheckSummary(const TraceCheckResult& r) {
  std::string out = std::to_string(r.events) + " events (" +
                    std::to_string(r.arrivals) + " arrivals, " +
                    std::to_string(r.admits) + " admits, " +
                    std::to_string(r.rejects) + " rejects, " +
                    std::to_string(r.commits) + " commits, " +
                    std::to_string(r.deadline_misses) + " deadline misses, " +
                    std::to_string(r.update_applies) + " update applies, " +
                    std::to_string(r.update_drops) + " update drops, " +
                    std::to_string(r.lbc_signals) + " lbc signals, " +
                    std::to_string(r.fault_starts) + " fault windows): ";
  if (r.ok()) {
    out += "all invariants hold";
    return out;
  }
  out += std::to_string(r.violation_count) + " violation(s)";
  out += " [per invariant:";
  for (int i = 1; i <= 8; ++i) {
    if (r.invariant_violations[i] > 0) {
      out += " " + std::to_string(i) + "x" +
             std::to_string(r.invariant_violations[i]);
    }
  }
  out += "]";
  const size_t show = r.violations.size() < 5 ? r.violations.size() : 5;
  for (size_t i = 0; i < show; ++i) {
    out += "\n  - " + r.violations[i];
  }
  if (r.violation_count > static_cast<int64_t>(show)) {
    out += "\n  ... and " + std::to_string(r.violation_count - show) + " more";
  }
  return out;
}

}  // namespace unitdb
