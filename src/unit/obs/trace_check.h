#ifndef UNIT_OBS_TRACE_CHECK_H_
#define UNIT_OBS_TRACE_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "unit/obs/trace_event.h"

namespace unitdb {

/// Aggregate result of replaying a trace through the invariant checker.
/// `violations` holds human-readable descriptions (capped at
/// kMaxRecordedViolations; `violation_count` is the true total).
struct TraceCheckResult {
  static constexpr int64_t kMaxRecordedViolations = 50;

  int64_t events = 0;
  int64_t arrivals = 0;
  int64_t admits = 0;
  int64_t rejects = 0;
  int64_t commits = 0;
  int64_t success = 0;
  int64_t stale = 0;
  int64_t deadline_misses = 0;
  int64_t update_arrivals = 0;
  int64_t update_drops = 0;
  int64_t update_applies = 0;
  int64_t lbc_signals = 0;
  int64_t fault_starts = 0;
  int64_t fault_stops = 0;
  int64_t session_retries = 0;
  int64_t session_abandons = 0;
  int64_t sheds = 0;
  int64_t cache_hits = 0;
  int64_t cache_invalidations = 0;
  /// LBC evaluations that fired while at least one fault window was open,
  /// and how many of those chose the action relieving the pressured
  /// penalty — the adaptivity tests assert the controller actually
  /// responded (> 0), not merely that nothing contradicted Fig. 2.
  int64_t fault_window_lbc_signals = 0;
  int64_t fault_window_relief_signals = 0;

  int64_t violation_count = 0;
  std::vector<std::string> violations;

  /// Violations per numbered invariant (index 1..8 of the list below;
  /// index 0 unused). Sums to violation_count.
  int64_t invariant_violations[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};

  bool ok() const { return violation_count == 0; }

  /// Lowest-numbered violated invariant (1..8), or 0 when ok() — the
  /// per-invariant exit code tools/trace_check reports.
  int FirstViolatedInvariant() const {
    for (int i = 1; i <= 8; ++i) {
      if (invariant_violations[i] > 0) return i;
    }
    return 0;
  }
};

/// Replays `events` (chronological, as read from one run's trace) and checks
/// the engine's observable invariants:
///
///  1. Timestamps are non-decreasing.
///  2. Per-query lifecycle: arrival -> (admit | reject); admit -> exactly one
///     terminal outcome (commit or deadline-miss); preempt / lock-restart
///     only while admitted and live; no event for an unknown transaction.
///  3. Commit freshness accounting matches Eq. 1: freshness = 1/(1 + Udrop),
///     and outcome is "success" iff freshness >= required freshness (values
///     round-trip bit-exactly through the %.17g wire format).
///  4. Every LBC signal obeys the Fig. 2 dominant-penalty rule given the
///     post-floor weighted ratios carried on the event, and "loosen-ac" /
///     "preventive-degrade" signals move the admission knob while "none"
///     leaves it alone.
///  5. Update sanity: apply lag >= 0, period changes actually change the
///     period ("degrade" stretches, "upgrade" shrinks).
///  6. Fault windows: start/stop edges pair up per fault id with a known
///     kind and a sane magnitude, every window is closed by end of trace,
///     and — the response-direction check — while the open windows all
///     pressure one penalty axis (update-outage / freshness-shift -> Fs;
///     update-burst / service-slowdown -> Fm), an LBC evaluation whose
///     pressured ratio is the strict maximum must emit the signal that
///     relieves it ("upgrade" for Fs, "degrade+tighten" for Fm).
///  7. Closed-loop session discipline: every session-retry / session-abandon
///     pairs with a prior reject, deadline-miss, or shed of the same
///     attempt's transaction; per request chain, attempt numbers increment
///     from 1 and retry delays are non-decreasing; shed events carry an
///     active watermark (>= 1) and a pre-eviction depth strictly above it.
///     (Applies to single-engine traces; a merged sharded trace interleaves
///     per-shard id spaces and is validated per shard file instead.)
///  8. Result-cache discipline: a cache-hit happens on arrival (its txn must
///     be pending, never admitted) and is only ever served as "success" with
///     an active capacity (>= 1), Eq. 1-consistent freshness, and freshness
///     meeting the query's requirement; every cache-invalidate pairs with
///     the same-instant update-apply of the same txn on the same item; and
///     — the staleness leg — each hit's reported Udrop is re-derived from
///     the item's own update history (arrivals lie on the ideal grid, so
///     generation-at-time is the count of arrivals at or before that time,
///     and an apply installs the generation of its value time). The history
///     model is exact only for fault-free traces with periodic update
///     arrivals; traces with fault windows or no arrival events skip that
///     one leg (the other cache checks still apply). Like invariant 7, this
///     applies to single-engine traces.
TraceCheckResult CheckTrace(const std::vector<TraceEvent>& events);

/// One-paragraph summary ("N events, M violations" + the first few) used by
/// tools/trace_check's report output.
std::string TraceCheckSummary(const TraceCheckResult& result);

/// Process exit code for a checked trace: 0 when every invariant holds,
/// otherwise the number (1..8) of the lowest violated invariant. Shared by
/// tools/trace_check so scripts can tell a lifecycle leak (2) from an Eq. 1
/// accounting bug (3) without parsing the report.
int TraceCheckExitCode(const TraceCheckResult& result);

}  // namespace unitdb

#endif  // UNIT_OBS_TRACE_CHECK_H_
