#ifndef UNIT_OBS_TIMESERIES_H_
#define UNIT_OBS_TIMESERIES_H_

#include <string>
#include <vector>

#include "unit/common/status.h"
#include "unit/core/usm.h"
#include "unit/txn/outcome.h"

namespace unitdb {

/// One window of engine telemetry, sampled at every control tick (the LBC
/// window) plus once at end of run for the trailing partial window. The
/// engine fills the raw fields; the recorder derives the USM decomposition
/// from `window` under its weights.
struct WindowSample {
  double t_s = 0.0;          ///< window end, simulated seconds
  OutcomeCounts window;      ///< outcome diff over the window
  UsmBreakdown usm;          ///< per-window Eq. 5 terms (S, R, F_m, F_s)
  double utilization = 0.0;  ///< CPU utilization over the window
  int ready_queries = 0;     ///< ready-queue depth at the sample instant
  int ready_updates = 0;
  double udrop_p50 = 0.0;    ///< Udrop percentiles over all data items
  double udrop_p90 = 0.0;
  int64_t udrop_max = 0;
  double admission_knob = 0.0;  ///< C_flex (NaN: policy has no AC knob)
  int degraded_items = 0;       ///< items with current period > ideal
  // Closed-loop session activity over the window (all 0 when the session
  // layer and shedding are off).
  int64_t retries = 0;   ///< session resubmissions scheduled
  int64_t abandons = 0;  ///< requests abandoned by their session
  int64_t shed = 0;      ///< ready queries evicted by overload shedding
  // Result-cache activity over the window (all 0 when the cache is off).
  int64_t cache_hits = 0;           ///< queries answered from cache
  int64_t cache_invalidations = 0;  ///< entries erased by update installs
};

/// Collects WindowSamples during a run (EngineParams::series) and exports
/// them as CSV or JSON. Column set and order are stable — plotting scripts
/// and the DESIGN.md §8 schema table key off ColumnNames().
class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(const UsmWeights& weights = {});

  /// Called by the engine once per window; fills `usm` from `window`.
  void Record(WindowSample sample);

  const std::vector<WindowSample>& samples() const { return samples_; }
  const UsmWeights& weights() const { return weights_; }

  /// Stable CSV/JSON column names, in emission order.
  static const std::vector<std::string>& ColumnNames();

  std::string ToCsv() const;
  std::string ToJson() const;
  Status WriteCsv(const std::string& path) const;
  Status WriteJson(const std::string& path) const;

 private:
  UsmWeights weights_;
  std::vector<WindowSample> samples_;
};

}  // namespace unitdb

#endif  // UNIT_OBS_TIMESERIES_H_
