#ifndef UNIT_OBS_COUNTERS_H_
#define UNIT_OBS_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace unitdb {

/// Named counter/gauge registry for the observability layer. Components
/// register a counter once (Counter returns a stable reference — std::map
/// nodes never move) and bump it through the reference on the hot path, so
/// steady-state emission costs one increment and zero lookups/allocations.
/// Engine::Run snapshots the registry into RunMetrics at the end of a run.
///
/// Nothing registers anything unless a sink or recorder is attached, so a
/// run with tracing off leaves the registry — and the snapshot — empty;
/// the trace-off overhead test keys off exactly that.
class CounterRegistry {
 public:
  /// Monotonic int64 counter; created zero-initialized on first use.
  int64_t& Counter(const std::string& name);

  /// Last-write-wins double gauge; created zero-initialized on first use.
  double& Gauge(const std::string& name);

  /// Value lookups for tests/reporting; 0 when absent.
  int64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;

  bool empty() const { return counters_.empty() && gauges_.empty(); }

  /// Sorted (name, value) snapshots.
  std::vector<std::pair<std::string, int64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace unitdb

#endif  // UNIT_OBS_COUNTERS_H_
