#include "unit/obs/trace_reader.h"

#include <cstdlib>
#include <cstring>
#include <fstream>

namespace unitdb {

namespace {

/// Minimal cursor over one flat JSON object: {"key":value,...} with string
/// or numeric values, no nesting, no escapes (the writer never emits any).
class LineCursor {
 public:
  explicit LineCursor(const std::string& line) : s_(line.c_str()) {}

  Status Fail(const std::string& what) const {
    return Status(StatusCode::kInvalidArgument,
                  what + " at offset " + std::to_string(pos_));
  }

  bool Consume(char c) {
    if (s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  char Peek() const { return s_[pos_]; }

  /// Reads a "quoted" string into `out` (bounded by `cap`, truncating).
  Status QuotedString(char* out, size_t cap) {
    if (!Consume('"')) return Fail("expected '\"'");
    size_t n = 0;
    while (s_[pos_] != '"') {
      if (s_[pos_] == '\0') return Fail("unterminated string");
      if (n + 1 < cap) out[n++] = s_[pos_];
      ++pos_;
    }
    ++pos_;  // closing quote
    out[n] = '\0';
    return Status::Ok();
  }

  /// Reads a JSON number as both int64 and double; `is_int` reports whether
  /// the text was a pure integer (no '.', 'e', "nan", "inf").
  Status Number(int64_t* as_int, double* as_double, bool* is_int) {
    const char* start = s_ + pos_;
    char* end = nullptr;
    *as_double = std::strtod(start, &end);
    if (end == start) return Fail("expected number");
    *is_int = true;
    for (const char* p = start; p != end; ++p) {
      if (*p == '.' || *p == 'e' || *p == 'E' || *p == 'n' || *p == 'i') {
        *is_int = false;
        break;
      }
    }
    if (*is_int) *as_int = std::strtoll(start, nullptr, 10);
    pos_ += static_cast<size_t>(end - start);
    return Status::Ok();
  }

 private:
  const char* s_;
  size_t pos_ = 0;
};

Status SetField(TraceEvent* e, const char* key, LineCursor& cur) {
  // String-valued fields. "reason", "outcome", and "signal" all land in
  // e->reason — the writer picks the wire key by event type.
  if (std::strcmp(key, "ev") == 0) {
    char name[32];
    Status st = cur.QuotedString(name, sizeof(name));
    if (!st.ok()) return st;
    if (!TraceEventTypeFromName(name, &e->type)) {
      return Status(StatusCode::kInvalidArgument,
                    std::string("unknown event type \"") + name + "\"");
    }
    return Status::Ok();
  }
  if (std::strcmp(key, "reason") == 0 || std::strcmp(key, "outcome") == 0 ||
      std::strcmp(key, "signal") == 0 || std::strcmp(key, "kind") == 0) {
    return cur.QuotedString(e->reason, sizeof(e->reason));
  }

  int64_t iv = 0;
  double dv = 0.0;
  bool is_int = false;
  Status st = cur.Number(&iv, &dv, &is_int);
  if (!st.ok()) return st;

  if (std::strcmp(key, "t") == 0) e->time = iv;
  else if (std::strcmp(key, "txn") == 0) e->txn = static_cast<TxnId>(iv);
  else if (std::strcmp(key, "fault") == 0) e->txn = static_cast<TxnId>(iv);
  else if (std::strcmp(key, "items") == 0) e->resolved = iv;
  else if (std::strcmp(key, "mag") == 0) e->magnitude = dv;
  else if (std::strcmp(key, "item") == 0) e->item = static_cast<ItemId>(iv);
  else if (std::strcmp(key, "class") == 0) e->pref_class = static_cast<int>(iv);
  else if (std::strcmp(key, "deadline") == 0) e->deadline = iv;
  else if (std::strcmp(key, "est") == 0) e->estimate = iv;
  else if (std::strcmp(key, "lag") == 0) e->lag = iv;
  else if (std::strcmp(key, "from") == 0) e->period_from = iv;
  else if (std::strcmp(key, "to") == 0) e->period_to = iv;
  else if (std::strcmp(key, "udrop") == 0) e->udrop = iv;
  else if (std::strcmp(key, "resolved") == 0) e->resolved = iv;
  else if (std::strcmp(key, "drop") == 0) e->drop_trigger = iv != 0;
  else if (std::strcmp(key, "freshness") == 0) e->freshness = dv;
  else if (std::strcmp(key, "freq") == 0) e->freshness_req = dv;
  else if (std::strcmp(key, "r") == 0) e->r = dv;
  else if (std::strcmp(key, "fm") == 0) e->fm = dv;
  else if (std::strcmp(key, "fs") == 0) e->fs = dv;
  else if (std::strcmp(key, "util") == 0) e->utilization = dv;
  else if (std::strcmp(key, "knob0") == 0) e->knob_before = dv;
  else if (std::strcmp(key, "knob") == 0) e->knob = dv;
  else if (std::strcmp(key, "session") == 0) e->session = iv;
  else if (std::strcmp(key, "request") == 0) e->request = static_cast<TxnId>(iv);
  else if (std::strcmp(key, "attempt") == 0) e->resolved = iv;
  else if (std::strcmp(key, "delay") == 0) e->lag = iv;
  else if (std::strcmp(key, "depth") == 0) e->resolved = iv;
  else if (std::strcmp(key, "capacity") == 0) e->resolved = iv;
  else if (std::strcmp(key, "watermark") == 0) e->magnitude = static_cast<double>(iv);
  else {
    return Status(StatusCode::kInvalidArgument,
                  std::string("unknown trace key \"") + key + "\"");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<TraceEvent> ParseTraceLine(const std::string& line) {
  LineCursor cur(line);
  if (!cur.Consume('{')) return cur.Fail("expected '{'");
  TraceEvent e;
  bool saw_type = false;
  bool first = true;
  while (!cur.Consume('}')) {
    if (!first && !cur.Consume(',')) return cur.Fail("expected ','");
    first = false;
    char key[32];
    Status st = cur.QuotedString(key, sizeof(key));
    if (!st.ok()) return st;
    if (!cur.Consume(':')) return cur.Fail("expected ':'");
    st = SetField(&e, key, cur);
    if (!st.ok()) return st;
    if (std::strcmp(key, "ev") == 0) saw_type = true;
  }
  if (cur.Peek() != '\0') return cur.Fail("trailing characters");
  if (!saw_type) {
    return Status(StatusCode::kInvalidArgument, "missing \"ev\" field");
  }
  return e;
}

StatusOr<std::vector<TraceEvent>> ReadTrace(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  int64_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    StatusOr<TraceEvent> e = ParseTraceLine(line);
    if (!e.ok()) {
      return Status(e.status().code(), "line " + std::to_string(lineno) +
                                           ": " + e.status().message());
    }
    events.push_back(*e);
  }
  return events;
}

StatusOr<std::vector<TraceEvent>> ReadTraceFile(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status(StatusCode::kIoError, "cannot open trace file " + path);
  }
  return ReadTrace(f);
}

}  // namespace unitdb
