#include "unit/obs/timeseries.h"

#include <cstdio>
#include <fstream>

namespace unitdb {

namespace {

std::string FmtG(double v) {
  char tmp[40];
  std::snprintf(tmp, sizeof(tmp), "%.17g", v);
  return tmp;
}

void AppendRowValues(const WindowSample& s, std::vector<std::string>& out) {
  out.push_back(FmtG(s.t_s));
  out.push_back(std::to_string(s.window.submitted));
  out.push_back(std::to_string(s.window.success));
  out.push_back(std::to_string(s.window.rejected));
  out.push_back(std::to_string(s.window.dmf));
  out.push_back(std::to_string(s.window.dsf));
  out.push_back(FmtG(s.usm.s));
  out.push_back(FmtG(s.usm.r));
  out.push_back(FmtG(s.usm.fm));
  out.push_back(FmtG(s.usm.fs));
  out.push_back(FmtG(s.utilization));
  out.push_back(std::to_string(s.ready_queries));
  out.push_back(std::to_string(s.ready_updates));
  out.push_back(FmtG(s.udrop_p50));
  out.push_back(FmtG(s.udrop_p90));
  out.push_back(std::to_string(s.udrop_max));
  out.push_back(FmtG(s.admission_knob));
  out.push_back(std::to_string(s.degraded_items));
  out.push_back(std::to_string(s.retries));
  out.push_back(std::to_string(s.abandons));
  out.push_back(std::to_string(s.shed));
  out.push_back(std::to_string(s.cache_hits));
  out.push_back(std::to_string(s.cache_invalidations));
}

Status WriteStringToFile(const std::string& text, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f.is_open()) {
    return Status(StatusCode::kIoError, "cannot open " + path);
  }
  f << text;
  if (!f.good()) return Status(StatusCode::kIoError, "write failed " + path);
  return Status::Ok();
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(const UsmWeights& weights)
    : weights_(weights) {}

void TimeSeriesRecorder::Record(WindowSample sample) {
  sample.usm = UsmDecompose(sample.window, weights_);
  samples_.push_back(sample);
}

const std::vector<std::string>& TimeSeriesRecorder::ColumnNames() {
  static const std::vector<std::string> kColumns = {
      "t_s",         "submitted",     "success",       "rejected",
      "dmf",         "dsf",           "usm_s",         "usm_r",
      "usm_fm",      "usm_fs",        "utilization",   "ready_queries",
      "ready_updates", "udrop_p50",   "udrop_p90",     "udrop_max",
      "c_flex",      "degraded_items", "retries",      "abandons",
      "shed",        "cache_hits",    "cache_inval"};
  return kColumns;
}

std::string TimeSeriesRecorder::ToCsv() const {
  std::string out;
  const auto& cols = ColumnNames();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ',';
    out += cols[i];
  }
  out += '\n';
  std::vector<std::string> row;
  for (const WindowSample& s : samples_) {
    row.clear();
    AppendRowValues(s, row);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += row[i];
    }
    out += '\n';
  }
  return out;
}

std::string TimeSeriesRecorder::ToJson() const {
  const auto& cols = ColumnNames();
  std::string out = "[\n";
  std::vector<std::string> row;
  for (size_t r = 0; r < samples_.size(); ++r) {
    row.clear();
    AppendRowValues(samples_[r], row);
    out += "  {";
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"';
      out += cols[i];
      out += "\": ";
      // NaN (no admission knob) is not valid JSON; emit null instead.
      out += row[i] == "nan" || row[i] == "-nan" ? "null" : row[i];
    }
    out += r + 1 < samples_.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

Status TimeSeriesRecorder::WriteCsv(const std::string& path) const {
  return WriteStringToFile(ToCsv(), path);
}

Status TimeSeriesRecorder::WriteJson(const std::string& path) const {
  return WriteStringToFile(ToJson(), path);
}

}  // namespace unitdb
