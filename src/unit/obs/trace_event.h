#ifndef UNIT_OBS_TRACE_EVENT_H_
#define UNIT_OBS_TRACE_EVENT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "unit/common/types.h"

namespace unitdb {

/// Typed events the engine and its controllers emit when a TraceSink is
/// attached (EngineParams::trace). One flat POD struct carries every event
/// kind so sinks never allocate per event; unused fields keep their
/// defaults and are omitted from the serialized form.
enum class TraceEventType : uint8_t {
  kQueryArrival = 0,  ///< user query entered the system
  kAdmit,             ///< admission control accepted the query
  kReject,            ///< query turned away (reason: deadline / usm / policy)
  kPreempt,           ///< running transaction displaced by a higher priority
  kLockRestart,       ///< 2PL-HP restart of a lock-holding query
  kCommit,            ///< query committed (outcome: success / dsf)
  kDeadlineMiss,      ///< admitted query aborted at its firm deadline (DMF)
  kUpdateArrival,     ///< update message arrived from the source
  kUpdateDrop,        ///< arrival shed by update frequency modulation
  kUpdateApply,       ///< update transaction committed (value installed)
  kPeriodChange,      ///< modulation stretched/restored an item's period
  kLbcSignal,         ///< LBC adaptive-allocation evaluation + its signal
  kFaultStart,        ///< a fault-schedule disturbance window opened
  kFaultStop,         ///< the window closed (effects restored)
  kSessionRetry,      ///< a user session scheduled a resubmission
  kSessionAbandon,    ///< a user session gave up on a request
  kShed,              ///< ready query evicted by overload shedding
  kCacheHit,          ///< query answered from the result cache on arrival
  kCacheInvalidate,   ///< cache entry erased by an update install
};

/// Stable wire name of an event type ("query-arrival", "admit", ...).
const char* TraceEventTypeName(TraceEventType t);

/// Inverse of TraceEventTypeName; returns false on an unknown name.
bool TraceEventTypeFromName(const char* name, TraceEventType* out);

/// One trace record. POD (fixed-size reason buffer, no heap members) so the
/// ring-buffer sink and the JSONL formatter are allocation-free per event.
struct TraceEvent {
  SimTime time = 0;
  TraceEventType type = TraceEventType::kQueryArrival;
  TxnId txn = kInvalidTxn;
  ItemId item = kInvalidItem;
  int pref_class = 0;

  SimTime deadline = 0;          ///< absolute deadline (query-arrival)
  SimDuration estimate = 0;      ///< admission estimate qe (query-arrival)
  SimDuration lag = 0;           ///< arrival-to-commit latency (update-apply)
  SimDuration period_from = 0;   ///< period before a change (period-change)
  SimDuration period_to = 0;     ///< period after a change (period-change)

  /// Reject reason / commit outcome / period-change cause / LBC signal name.
  char reason[24] = {0};

  double freshness = -1.0;       ///< observed read-set freshness (commit)
  double freshness_req = -1.0;   ///< required freshness (commit)
  int64_t udrop = -1;            ///< max Udrop over the read set (commit)

  // LBC evaluation fields (kLbcSignal): post-floor penalty-weighted failure
  // ratios the Fig. 2 rule chose between, the utilization EWMA the decision
  // saw, the cohort size, and the admission knob before/after the signal.
  double r = 0.0, fm = 0.0, fs = 0.0;
  double utilization = 0.0;
  int64_t resolved = 0;
  bool drop_trigger = false;
  double knob_before = 0.0, knob = 0.0;

  // Fault edges (kFaultStart / kFaultStop): txn carries the fault index,
  // reason the kind name, item the first affected item (kInvalidItem for
  // global kinds), resolved the affected-item count, and magnitude the
  // kind's scalar (factor / delta / rate_hz; 0 for outages).
  double magnitude = 0.0;

  /// Shard that emitted the event (shard/sharded.h tagging sink); -1 in a
  /// monolithic run, and the field is omitted from the serialized form so
  /// non-sharded goldens are unchanged.
  int32_t shard = -1;

  // Closed-loop session fields (kSessionRetry / kSessionAbandon): the home
  // session and the trace-level request id the retried/abandoned attempt
  // belonged to. `resolved` carries the attempt number, and `lag` the retry
  // delay (kSessionRetry only). Emitted only for session event kinds, so
  // pre-session goldens are unchanged.
  int64_t session = -1;
  TxnId request = kInvalidTxn;

  void set_reason(const char* s) {
    // Truncation to the fixed buffer is deliberate; memcpy with an explicit
    // clamped length (rather than strncpy) keeps -Wstringop-truncation quiet.
    size_t n = s == nullptr ? 0 : std::strlen(s);
    if (n > sizeof(reason) - 1) n = sizeof(reason) - 1;
    if (n > 0) std::memcpy(reason, s, n);
    reason[n] = '\0';
  }
};

/// Serializes one event as a single JSON line (no trailing newline) into
/// `buf`; returns the number of characters written (truncated at cap - 1,
/// which no well-formed event reaches). Doubles use %.17g so parsed values
/// round-trip bit-exactly — trace_check re-evaluates producer comparisons.
size_t FormatJsonl(const TraceEvent& e, char* buf, size_t cap);

}  // namespace unitdb

#endif  // UNIT_OBS_TRACE_EVENT_H_
