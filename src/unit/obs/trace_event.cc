#include "unit/obs/trace_event.h"

#include <cinttypes>
#include <cstdio>

namespace unitdb {

namespace {

struct TypeName {
  TraceEventType type;
  const char* name;
};

constexpr TypeName kTypeNames[] = {
    {TraceEventType::kQueryArrival, "query-arrival"},
    {TraceEventType::kAdmit, "admit"},
    {TraceEventType::kReject, "reject"},
    {TraceEventType::kPreempt, "preempt"},
    {TraceEventType::kLockRestart, "lock-restart"},
    {TraceEventType::kCommit, "commit"},
    {TraceEventType::kDeadlineMiss, "deadline-miss"},
    {TraceEventType::kUpdateArrival, "update-arrival"},
    {TraceEventType::kUpdateDrop, "update-drop"},
    {TraceEventType::kUpdateApply, "update-apply"},
    {TraceEventType::kPeriodChange, "period-change"},
    {TraceEventType::kLbcSignal, "lbc"},
    {TraceEventType::kFaultStart, "fault-start"},
    {TraceEventType::kFaultStop, "fault-stop"},
    {TraceEventType::kSessionRetry, "session-retry"},
    {TraceEventType::kSessionAbandon, "session-abandon"},
    {TraceEventType::kShed, "shed"},
    {TraceEventType::kCacheHit, "cache-hit"},
    {TraceEventType::kCacheInvalidate, "cache-invalidate"},
};

}  // namespace

const char* TraceEventTypeName(TraceEventType t) {
  for (const TypeName& tn : kTypeNames) {
    if (tn.type == t) return tn.name;
  }
  return "?";
}

bool TraceEventTypeFromName(const char* name, TraceEventType* out) {
  for (const TypeName& tn : kTypeNames) {
    if (std::strcmp(tn.name, name) == 0) {
      *out = tn.type;
      return true;
    }
  }
  return false;
}

namespace {

/// Bounded appender over the caller's buffer; silently truncates at cap - 1
/// (well-formed events never get close).
class Appender {
 public:
  Appender(char* buf, size_t cap) : buf_(buf), cap_(cap) {}

  void Raw(const char* s) {
    while (*s != '\0' && len_ + 1 < cap_) buf_[len_++] = *s++;
  }

  void Int(const char* key, int64_t v) {
    Key(key);
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%" PRId64, v);
    Raw(tmp);
  }

  void Double(const char* key, double v) {
    Key(key);
    char tmp[40];
    std::snprintf(tmp, sizeof(tmp), "%.17g", v);
    Raw(tmp);
  }

  void Str(const char* key, const char* v) {
    Key(key);
    Raw("\"");
    Raw(v);  // reasons/outcomes are fixed identifiers; nothing to escape
    Raw("\"");
  }

  size_t Finish() {
    Raw("}");
    buf_[len_] = '\0';
    return len_;
  }

 private:
  void Key(const char* key) {
    Raw(len_ == 1 ? "\"" : ",\"");  // len_ == 1: only '{' written so far
    Raw(key);
    Raw("\":");
  }

  char* buf_;
  size_t cap_;
  size_t len_ = 0;
};

}  // namespace

size_t FormatJsonl(const TraceEvent& e, char* buf, size_t cap) {
  Appender a(buf, cap);
  a.Raw("{");
  a.Int("t", e.time);
  a.Str("ev", TraceEventTypeName(e.type));
  // Emitted only for shard-tagged events so pre-sharding goldens (and the
  // monolithic trace_check corpus) stay byte-identical.
  if (e.shard >= 0) a.Int("shard", e.shard);
  switch (e.type) {
    case TraceEventType::kQueryArrival:
      a.Int("txn", e.txn);
      a.Int("class", e.pref_class);
      a.Int("deadline", e.deadline);
      a.Int("est", e.estimate);
      break;
    case TraceEventType::kAdmit:
    case TraceEventType::kPreempt:
    case TraceEventType::kLockRestart:
    case TraceEventType::kDeadlineMiss:
      a.Int("txn", e.txn);
      break;
    case TraceEventType::kReject:
      a.Int("txn", e.txn);
      a.Str("reason", e.reason);
      break;
    case TraceEventType::kCommit:
      a.Int("txn", e.txn);
      a.Str("outcome", e.reason);
      a.Double("freshness", e.freshness);
      a.Double("freq", e.freshness_req);
      a.Int("udrop", e.udrop);
      break;
    case TraceEventType::kUpdateArrival:
    case TraceEventType::kUpdateDrop:
      a.Int("item", e.item);
      break;
    case TraceEventType::kUpdateApply:
      a.Int("txn", e.txn);
      a.Int("item", e.item);
      a.Int("lag", e.lag);
      a.Str("reason", e.reason);
      break;
    case TraceEventType::kPeriodChange:
      a.Int("item", e.item);
      a.Int("from", e.period_from);
      a.Int("to", e.period_to);
      a.Str("reason", e.reason);
      break;
    case TraceEventType::kLbcSignal:
      a.Str("signal", e.reason);
      a.Double("r", e.r);
      a.Double("fm", e.fm);
      a.Double("fs", e.fs);
      a.Double("util", e.utilization);
      a.Int("resolved", e.resolved);
      a.Int("drop", e.drop_trigger ? 1 : 0);
      a.Double("knob0", e.knob_before);
      a.Double("knob", e.knob);
      break;
    case TraceEventType::kFaultStart:
    case TraceEventType::kFaultStop:
      a.Int("fault", e.txn);
      a.Str("kind", e.reason);
      a.Int("item", e.item);
      a.Int("items", e.resolved);
      a.Double("mag", e.magnitude);
      break;
    case TraceEventType::kSessionRetry:
      a.Int("txn", e.txn);
      a.Int("session", e.session);
      a.Int("request", e.request);
      a.Int("attempt", e.resolved);
      a.Int("delay", e.lag);
      break;
    case TraceEventType::kSessionAbandon:
      a.Int("txn", e.txn);
      a.Int("session", e.session);
      a.Int("request", e.request);
      a.Int("attempt", e.resolved);
      break;
    case TraceEventType::kShed:
      a.Int("txn", e.txn);
      a.Int("depth", e.resolved);
      a.Int("watermark", static_cast<int64_t>(e.magnitude));
      break;
    case TraceEventType::kCacheHit:
      // `item` is the staleness-dominant read-set item (the arg max of
      // Udrop — the item whose history the checker verifies `udrop`
      // against), and `capacity` the active cache capacity, so a hit
      // emitted with the cache off is checkable as a violation.
      a.Int("txn", e.txn);
      a.Str("outcome", e.reason);
      a.Double("freshness", e.freshness);
      a.Double("freq", e.freshness_req);
      a.Int("udrop", e.udrop);
      a.Int("item", e.item);
      a.Int("capacity", e.resolved);
      break;
    case TraceEventType::kCacheInvalidate:
      a.Int("item", e.item);
      a.Int("txn", e.txn);
      break;
  }
  return a.Finish();
}

}  // namespace unitdb
