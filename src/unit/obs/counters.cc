#include "unit/obs/counters.h"

namespace unitdb {

int64_t& CounterRegistry::Counter(const std::string& name) {
  return counters_.try_emplace(name, 0).first->second;
}

double& CounterRegistry::Gauge(const std::string& name) {
  return gauges_.try_emplace(name, 0.0).first->second;
}

int64_t CounterRegistry::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double CounterRegistry::GaugeValue(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, int64_t>> CounterRegistry::CounterSnapshot()
    const {
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> CounterRegistry::GaugeSnapshot()
    const {
  return {gauges_.begin(), gauges_.end()};
}

}  // namespace unitdb
