#include "unit/obs/trace_sink.h"

#include <algorithm>

namespace unitdb {

TraceSink::~TraceSink() = default;

// --- JsonlTraceSink -------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(std::ostream& os, CounterRegistry* counters)
    : os_(&os) {
  if (counters != nullptr) {
    c_events_ = &counters->Counter("sink.jsonl.events");
    c_bytes_ = &counters->Counter("sink.jsonl.bytes");
  }
}

StatusOr<std::unique_ptr<JsonlTraceSink>> JsonlTraceSink::Open(
    const std::string& path, CounterRegistry* counters) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!file->is_open()) {
    return Status(StatusCode::kIoError, "cannot open trace file " + path);
  }
  auto sink = std::unique_ptr<JsonlTraceSink>(
      new JsonlTraceSink(*file, counters));
  sink->owned_ = std::move(file);
  return sink;
}

void JsonlTraceSink::Emit(const TraceEvent& e) {
  char line[640];
  const size_t n = FormatJsonl(e, line, sizeof(line));
  os_->write(line, static_cast<std::streamsize>(n));
  os_->put('\n');
  ++emitted_;
  if (c_events_ != nullptr) {
    ++*c_events_;
    *c_bytes_ += static_cast<int64_t>(n) + 1;
  }
}

void JsonlTraceSink::Flush() { os_->flush(); }

// --- RingBufferTraceSink --------------------------------------------------

RingBufferTraceSink::RingBufferTraceSink(size_t capacity,
                                         CounterRegistry* counters)
    : buf_(std::max<size_t>(capacity, 1)) {
  if (counters != nullptr) {
    c_events_ = &counters->Counter("sink.ring.events");
    c_overwrites_ = &counters->Counter("sink.ring.overwrites");
  }
}

void RingBufferTraceSink::Emit(const TraceEvent& e) {
  if (size_ < buf_.size()) {
    buf_[(head_ + size_) % buf_.size()] = e;
    ++size_;
  } else {
    buf_[head_] = e;  // overwrite the oldest
    head_ = (head_ + 1) % buf_.size();
    if (c_overwrites_ != nullptr) ++*c_overwrites_;
  }
  ++emitted_;
  if (c_events_ != nullptr) ++*c_events_;
}

std::vector<TraceEvent> RingBufferTraceSink::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(at(i));
  return out;
}

}  // namespace unitdb
