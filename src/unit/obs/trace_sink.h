#ifndef UNIT_OBS_TRACE_SINK_H_
#define UNIT_OBS_TRACE_SINK_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "unit/common/status.h"
#include "unit/obs/counters.h"
#include "unit/obs/trace_event.h"

namespace unitdb {

/// Destination for engine trace events (EngineParams::trace). Emission is
/// synchronous on the simulation thread; sinks must not call back into the
/// engine. Implementations are expected to be allocation-free per event so
/// that tracing perturbs timing, not behavior.
class TraceSink {
 public:
  virtual ~TraceSink();
  virtual void Emit(const TraceEvent& e) = 0;
  virtual void Flush() {}
};

/// Writes one JSON object per event (JSONL) to a stream or file. Formats
/// into a fixed stack buffer — no per-event allocation. Registers
/// "sink.jsonl.events" / "sink.jsonl.bytes" when a registry is supplied.
class JsonlTraceSink : public TraceSink {
 public:
  /// Non-owning stream variant (tests, stringstream goldens).
  explicit JsonlTraceSink(std::ostream& os, CounterRegistry* counters = nullptr);

  /// Opens `path` for writing (truncating); fails on I/O error.
  static StatusOr<std::unique_ptr<JsonlTraceSink>> Open(
      const std::string& path, CounterRegistry* counters = nullptr);

  void Emit(const TraceEvent& e) override;
  void Flush() override;

  int64_t emitted() const { return emitted_; }

 private:
  std::unique_ptr<std::ofstream> owned_;  ///< set by Open
  std::ostream* os_;
  int64_t emitted_ = 0;
  int64_t* c_events_ = nullptr;
  int64_t* c_bytes_ = nullptr;
};

/// Fixed-capacity in-memory ring: keeps the newest `capacity` events,
/// overwriting the oldest. All storage is preallocated at construction, so
/// emission never allocates — the always-on flight-recorder sink. Registers
/// "sink.ring.events" / "sink.ring.overwrites" when a registry is supplied.
class RingBufferTraceSink : public TraceSink {
 public:
  explicit RingBufferTraceSink(size_t capacity,
                               CounterRegistry* counters = nullptr);

  void Emit(const TraceEvent& e) override;

  size_t capacity() const { return buf_.size(); }
  size_t size() const { return size_; }
  int64_t emitted() const { return emitted_; }
  /// Events lost to overwriting (= emitted - size).
  int64_t overwritten() const { return emitted_ - static_cast<int64_t>(size_); }

  /// i-th retained event in chronological order (0 = oldest).
  const TraceEvent& at(size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Chronological copy of the retained events.
  std::vector<TraceEvent> Events() const;

 private:
  std::vector<TraceEvent> buf_;
  size_t head_ = 0;  ///< index of the oldest retained event
  size_t size_ = 0;
  int64_t emitted_ = 0;
  int64_t* c_events_ = nullptr;
  int64_t* c_overwrites_ = nullptr;
};

}  // namespace unitdb

#endif  // UNIT_OBS_TRACE_SINK_H_
