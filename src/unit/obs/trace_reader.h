#ifndef UNIT_OBS_TRACE_READER_H_
#define UNIT_OBS_TRACE_READER_H_

#include <istream>
#include <string>
#include <vector>

#include "unit/common/status.h"
#include "unit/obs/trace_event.h"

namespace unitdb {

/// Parses one JSONL trace line (as produced by FormatJsonl) back into a
/// TraceEvent. Only accepts the flat {"key":value} shape this repo emits —
/// this is a trace reader, not a general JSON parser. Unknown keys are an
/// error so schema drift between writer and checker is caught immediately.
StatusOr<TraceEvent> ParseTraceLine(const std::string& line);

/// Reads every non-empty line of a JSONL stream. Fails on the first bad
/// line, reporting its 1-based line number.
StatusOr<std::vector<TraceEvent>> ReadTrace(std::istream& is);

/// Opens `path` and reads it with ReadTrace.
StatusOr<std::vector<TraceEvent>> ReadTraceFile(const std::string& path);

}  // namespace unitdb

#endif  // UNIT_OBS_TRACE_READER_H_
