#include "unit/faults/settling.h"

#include <algorithm>
#include <cmath>

#include "unit/faults/schedule.h"

namespace unitdb {

namespace {

/// Trailing moving-average width: wide enough to tame the per-window USM
/// noise (single windows swing by several units even in steady state), but
/// never wider than a quarter of the pre-fault history so the baseline
/// regime still fits several independent smoothed points.
int SmoothingWindows(int baseline_n) {
  return std::clamp(baseline_n / 4, 5, 50);
}

}  // namespace

DisturbanceReport ComputeDisturbance(const std::vector<WindowSample>& series,
                                     double fault_start_s, double fault_end_s,
                                     double epsilon) {
  DisturbanceReport report;
  report.fault_start_s = fault_start_s;
  report.fault_end_s = fault_end_s;
  report.epsilon = epsilon;

  double baseline_sum = 0.0;
  int baseline_n = 0;
  for (const WindowSample& w : series) {
    if (w.t_s > fault_start_s) break;
    baseline_sum += w.usm.Value();
    ++baseline_n;
  }

  // Smooth the raw window USM with a trailing moving average: single
  // windows resolve only a handful of queries, so the raw signal is far too
  // noisy to measure dip or settling against.
  const int k = SmoothingWindows(baseline_n);
  std::vector<double> smooth(series.size(), 0.0);
  double rolling = 0.0;
  for (size_t i = 0; i < series.size(); ++i) {
    rolling += series[i].usm.Value();
    if (i >= static_cast<size_t>(k)) {
      rolling -= series[i - static_cast<size_t>(k)].usm.Value();
    }
    const int denom = std::min<int>(static_cast<int>(i) + 1, k);
    smooth[i] = rolling / denom;
  }

  bool have_min = false;
  for (size_t i = 0; i < series.size(); ++i) {
    const WindowSample& w = series[i];
    if (w.t_s <= fault_start_s || w.t_s > fault_end_s) continue;
    DisturbanceWindow d;
    d.t_s = w.t_s;
    d.usm = smooth[i];
    d.r = w.usm.r;
    d.fm = w.usm.fm;
    d.fs = w.usm.fs;
    report.during.push_back(d);
    if (!have_min || smooth[i] < report.min_usm) {
      report.min_usm = smooth[i];
      have_min = true;
    }
  }
  // Without an undisturbed window to measure against (or any window inside
  // the envelope), dip and recovery are undefined.
  if (baseline_n == 0 || !have_min) return report;
  report.valid = true;
  report.baseline_usm = baseline_sum / baseline_n;
  report.dip_depth = report.baseline_usm - report.min_usm;
  // The rolling sum leaves ~1e-15 of float dust even on a perfectly flat
  // series; a dip that small is measurement noise, not a disturbance, and
  // must not poison the settling threshold below.
  const double dust =
      1e-9 * std::max(1.0, std::abs(report.baseline_usm));
  if (report.dip_depth < dust) report.dip_depth = 0.0;

  // Settling time, control-style: recovered once the smoothed USM is back
  // within epsilon * dip of the baseline *for good* (the last sub-threshold
  // window decides). No dip, nothing to recover from.
  if (report.dip_depth == 0.0) {
    report.recover_s = 0.0;
    return report;
  }
  const double threshold =
      report.baseline_usm - epsilon * report.dip_depth;
  report.recover_s = 0.0;
  bool last_below = false;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i].t_s <= fault_end_s) continue;
    last_below = smooth[i] < threshold;
    if (last_below) report.recover_s = series[i].t_s - fault_end_s;
  }
  if (last_below) report.recover_s = -1.0;  // never settled within the run
  return report;
}

DisturbanceReport ComputeDisturbance(const std::vector<WindowSample>& series,
                                     const FaultSchedule& schedule,
                                     double epsilon) {
  if (schedule.empty()) return DisturbanceReport{};
  return ComputeDisturbance(series, SimToSeconds(schedule.envelope_start()),
                            SimToSeconds(schedule.envelope_end()), epsilon);
}

}  // namespace unitdb
