#ifndef UNIT_FAULTS_SETTLING_H_
#define UNIT_FAULTS_SETTLING_H_

#include <vector>

#include "unit/obs/timeseries.h"

namespace unitdb {

class FaultSchedule;

/// One control window inside the fault envelope: the per-window USM
/// decomposition the disturbance report keeps for Fig. 7-style plots.
/// `usm` carries the *smoothed* signal the dip is measured on; r/fm/fs stay
/// raw so the plots can attribute the dip to one penalty.
struct DisturbanceWindow {
  double t_s = 0.0;  ///< window end, simulated seconds
  double usm = 0.0;  ///< smoothed window USM (trailing moving average)
  double r = 0.0;    ///< rejection cost term (raw)
  double fm = 0.0;   ///< deadline-miss cost term (raw)
  double fs = 0.0;   ///< staleness cost term (raw)
};

/// Dynamic-response summary of one faulted run, computed post hoc from the
/// per-control-window time series (EngineParams::series) and the fault
/// envelope. Single windows resolve only a handful of queries, so the raw
/// per-window USM swings by whole units even in steady state; dip and
/// settling are therefore measured on a trailing moving average (width
/// auto-picked from the pre-fault history, 5..50 windows):
///
///  - baseline_usm: mean raw window USM over windows entirely before the
///    fault;
///  - dip_depth: baseline_usm minus the minimum *smoothed* window USM
///    inside the envelope (clamped at 0 — no dip, no depth);
///  - recover_s: settling time, control-style — seconds after the envelope
///    ends until the smoothed USM is back within `epsilon * dip_depth` of
///    the baseline *for good* (the last sub-threshold window decides).
///    0 when the run never leaves the band after the fault; -1 when it
///    never settles before the run ends.
struct DisturbanceReport {
  bool valid = false;  ///< false: no series or no pre-fault window
  double fault_start_s = 0.0;  ///< envelope start
  double fault_end_s = 0.0;    ///< envelope end
  double epsilon = 0.0;        ///< settling band, as a fraction of the dip

  double baseline_usm = 0.0;
  double min_usm = 0.0;  ///< minimum smoothed window USM inside the envelope
  double dip_depth = 0.0;
  double recover_s = -1.0;

  std::vector<DisturbanceWindow> during;  ///< windows inside the envelope
};

/// Computes the report from a recorded series and an explicit envelope.
/// Windows are attributed by their end time t_s: pre-fault means
/// t_s <= fault_start_s, inside means fault_start_s < t_s <= fault_end_s.
DisturbanceReport ComputeDisturbance(const std::vector<WindowSample>& series,
                                     double fault_start_s, double fault_end_s,
                                     double epsilon = 0.25);

/// Convenience overload taking the envelope from a compiled schedule;
/// returns an invalid report for an empty schedule.
DisturbanceReport ComputeDisturbance(const std::vector<WindowSample>& series,
                                     const FaultSchedule& schedule,
                                     double epsilon = 0.25);

}  // namespace unitdb

#endif  // UNIT_FAULTS_SETTLING_H_
