#include "unit/faults/schedule.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "unit/common/rng.h"
#include "unit/db/data_item.h"

namespace unitdb {

namespace {

Status CompileError(size_t index, const std::string& what) {
  return Status::InvalidArgument("fault" + std::to_string(index) + ": " +
                                 what);
}

/// Parses one item selector token ("a" or "a-b") and appends the ids.
Status AppendItemToken(const std::string& token, int num_items, size_t index,
                       std::vector<ItemId>* out) {
  const size_t dash = token.find('-');
  char* end = nullptr;
  const long lo = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str()) {
    return CompileError(index, "bad item selector '" + token + "'");
  }
  long hi = lo;
  if (dash != std::string::npos) {
    const char* hs = token.c_str() + dash + 1;
    hi = std::strtol(hs, &end, 10);
    if (end == hs) {
      return CompileError(index, "bad item selector '" + token + "'");
    }
  }
  if (lo < 0 || hi < lo || hi >= num_items) {
    return CompileError(index, "item selector '" + token +
                                   "' out of range (num_items = " +
                                   std::to_string(num_items) + ")");
  }
  for (long id = lo; id <= hi; ++id) out->push_back(static_cast<ItemId>(id));
  return Status::Ok();
}

/// Resolves a FaultSpec's item selection ("a-b", "a,b,c", "*") against the
/// workload; every resolved item must have an update source, since an
/// outage/burst on a never-updated item would be a silent no-op.
Status ResolveItems(const FaultSpec& fault, size_t index,
                    const Workload& workload,
                    const std::vector<char>& has_source,
                    std::vector<ItemId>* out) {
  if (fault.items == "*") {
    for (ItemId id = 0; id < workload.num_items; ++id) {
      if (has_source[id]) out->push_back(id);
    }
    if (out->empty()) {
      return CompileError(index, "'*' matched no item with an update source");
    }
    return Status::Ok();
  }
  size_t pos = 0;
  while (pos <= fault.items.size()) {
    size_t comma = fault.items.find(',', pos);
    if (comma == std::string::npos) comma = fault.items.size();
    const std::string token = fault.items.substr(pos, comma - pos);
    if (token.empty()) {
      return CompileError(index, "empty item selector token");
    }
    Status s = AppendItemToken(token, workload.num_items, index, out);
    if (!s.ok()) return s;
    pos = comma + 1;
    if (comma == fault.items.size()) break;
  }
  for (ItemId id : *out) {
    if (!has_source[id]) {
      return CompileError(index, "item " + std::to_string(id) +
                                     " has no update source");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<FaultSchedule> FaultSchedule::Compile(const FaultScenarioSpec& spec,
                                               const Workload& workload,
                                               uint64_t workload_seed) {
  FaultSchedule schedule;
  schedule.spec_ = spec;
  if (spec.faults.empty()) return schedule;

  std::vector<char> has_source(workload.num_items, 0);
  for (const auto& u : workload.updates) {
    if (u.ideal_period <= 0 || u.ideal_period >= kNoUpdates) continue;
    if (u.item >= 0 && u.item < workload.num_items) has_source[u.item] = 1;
  }

  // Decorrelate injection streams across replications without consuming the
  // workload's own RNG: each fault forks one stream from the (scenario
  // seed, workload seed) mix.
  const uint64_t mixed = SplitMix64(spec.seed ^ SplitMix64(workload_seed));

  schedule.envelope_start_ = workload.duration;
  schedule.envelope_end_ = 0;
  for (size_t i = 0; i < spec.faults.size(); ++i) {
    const FaultSpec& fault = spec.faults[i];
    const SimTime start =
        std::max<SimTime>(0, SecondsToSim(fault.start_s));
    const SimTime end =
        std::min<SimTime>(workload.duration, SecondsToSim(fault.end_s));
    if (start >= workload.duration || end <= 0 || start >= end) {
      return CompileError(i, "window [" + std::to_string(fault.start_s) +
                                 ", " + std::to_string(fault.end_s) +
                                 ")s lies outside the run");
    }
    schedule.envelope_start_ = std::min(schedule.envelope_start_, start);
    schedule.envelope_end_ = std::max(schedule.envelope_end_, end);

    FaultEdge edge;
    edge.fault = static_cast<int32_t>(i);
    edge.kind = fault.kind;
    switch (fault.kind) {
      case FaultKind::kUpdateBurst:
      case FaultKind::kLoadStep:
      case FaultKind::kRetryStorm:
        edge.magnitude = fault.rate_hz;
        break;
      case FaultKind::kServiceSlowdown:
        edge.magnitude = fault.factor;
        break;
      case FaultKind::kFreshnessShift:
        edge.magnitude = fault.delta;
        break;
      case FaultKind::kUpdateOutage:
        break;
    }

    if (fault.kind == FaultKind::kUpdateOutage ||
        fault.kind == FaultKind::kUpdateBurst) {
      std::vector<ItemId> items;
      Status s = ResolveItems(fault, i, workload, has_source, &items);
      if (!s.ok()) return s;
      edge.item_begin = static_cast<int32_t>(schedule.items_.size());
      edge.item_count = static_cast<int32_t>(items.size());
      schedule.items_.insert(schedule.items_.end(), items.begin(),
                             items.end());
    }

    Rng rng(SplitMix64(mixed + static_cast<uint64_t>(i) + 1));
    if (fault.kind == FaultKind::kLoadStep ||
        fault.kind == FaultKind::kRetryStorm) {
      if (workload.queries.empty()) {
        return CompileError(i, std::string(FaultKindName(fault.kind)) +
                                   " needs a non-empty query trace");
      }
      const double mean_gap_s = 1.0 / fault.rate_hz;
      SimTime t = start;
      while (true) {
        t += std::max<SimDuration>(
            1, SecondsToSim(rng.Exponential(mean_gap_s)));
        if (t >= end) break;
        const size_t pick = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(workload.queries.size()) - 1));
        QueryRequest q = workload.queries[pick];
        q.id = kInvalidTxn;
        q.arrival = t;
        if (fault.kind == FaultKind::kRetryStorm) {
          // Near-certain misses: an eighth of the template's deadline. The
          // injected queries themselves are never retried (no trace id);
          // their contribution is the load spike that makes *session*
          // queries miss and re-enter.
          q.relative_deadline =
              std::max<SimDuration>(1, q.relative_deadline / 8);
        }
        schedule.injected_queries_.push_back(std::move(q));
      }
    } else if (fault.kind == FaultKind::kUpdateBurst) {
      const SimDuration step =
          std::max<SimDuration>(1, SecondsToSim(1.0 / fault.rate_hz));
      for (int32_t k = 0; k < edge.item_count; ++k) {
        const ItemId item = schedule.items_[edge.item_begin + k];
        // Per-item phase so the forced deliveries of a many-item burst
        // don't all land on the same instants.
        SimTime t = start + rng.UniformInt(0, step - 1);
        while (t < end) {
          schedule.injected_updates_.push_back({t, item});
          t += step;
        }
      }
    }

    edge.start = true;
    edge.time = start;
    schedule.edges_.push_back(edge);
    edge.start = false;
    edge.time = end;
    schedule.edges_.push_back(edge);
  }

  // Stops sort before starts at equal times so back-to-back windows of a
  // scalar kind restore-then-apply rather than the reverse.
  std::sort(schedule.edges_.begin(), schedule.edges_.end(),
            [](const FaultEdge& a, const FaultEdge& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.start != b.start) return !a.start;
              return a.fault < b.fault;
            });
  std::stable_sort(schedule.injected_queries_.begin(),
                   schedule.injected_queries_.end(),
                   [](const QueryRequest& a, const QueryRequest& b) {
                     return a.arrival < b.arrival;
                   });
  std::sort(schedule.injected_updates_.begin(),
            schedule.injected_updates_.end(),
            [](const InjectedUpdate& a, const InjectedUpdate& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.item < b.item;
            });
  return schedule;
}

}  // namespace unitdb
