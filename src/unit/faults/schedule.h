#ifndef UNIT_FAULTS_SCHEDULE_H_
#define UNIT_FAULTS_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "unit/common/status.h"
#include "unit/common/types.h"
#include "unit/faults/scenario.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// One compiled fault boundary: the engine flips the fault's effect on at
/// the start edge and off at the stop edge. Item-scoped faults carry a span
/// into FaultSchedule::items(); scalar faults carry their magnitude.
struct FaultEdge {
  SimTime time = 0;
  int32_t fault = 0;  ///< index into the source spec's fault list
  FaultKind kind = FaultKind::kUpdateOutage;
  bool start = false;
  /// factor (slowdown), delta (freshness-shift), rate_hz (burst/load-step);
  /// 0 for outages.
  double magnitude = 0.0;
  int32_t item_begin = 0;  ///< span into FaultSchedule::items()
  int32_t item_count = 0;  ///< 0 for non-item-scoped kinds
};

/// One pre-materialized forced update delivery (kUpdateBurst).
struct InjectedUpdate {
  SimTime time = 0;
  ItemId item = kInvalidItem;
};

/// A FaultScenarioSpec compiled against one concrete workload and one
/// injection seed: every edge, every injected query arrival (kLoadStep),
/// and every forced update delivery (kUpdateBurst) is materialized up
/// front, so the engine's fault hooks are allocation-free and RNG-free —
/// attaching a schedule (even an empty one) never perturbs the engine's
/// own random streams, and a given (spec, workload, seed) triple always
/// compiles to the bit-identical schedule.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Compiles `spec` for `workload`. `workload_seed` is the run's workload
  /// seed (ReplicationSeed(base, i) for replication i); it is mixed with
  /// spec.seed so every replication draws its own injection stream while
  /// staying reproducible. Fails when an item selection names an item
  /// without an update source (outage/burst would be silent no-ops) or a
  /// window lies entirely outside [0, duration); windows are otherwise
  /// clamped to the run.
  static StatusOr<FaultSchedule> Compile(const FaultScenarioSpec& spec,
                                         const Workload& workload,
                                         uint64_t workload_seed);

  const FaultScenarioSpec& spec() const { return spec_; }
  bool empty() const { return edges_.empty(); }

  /// All edges, sorted by (time, fault index); starts precede stops at
  /// equal times only via that fault-index order — windows of one fault
  /// never collapse because end_s > start_s is validated.
  const std::vector<FaultEdge>& edges() const { return edges_; }

  /// Backing store for the per-edge item spans.
  const std::vector<ItemId>& items() const { return items_; }

  /// Load-step query arrivals, sorted by arrival (stable: ties keep
  /// generation order). `id` is kInvalidTxn — the engine assigns txn ids.
  const std::vector<QueryRequest>& injected_queries() const {
    return injected_queries_;
  }

  /// Burst deliveries, sorted by (time, item).
  const std::vector<InjectedUpdate>& injected_updates() const {
    return injected_updates_;
  }

  /// Envelope of every fault window (clamped to the run); both 0 when the
  /// schedule is empty. The settling-time metrics measure dip inside and
  /// recovery after this envelope.
  SimTime envelope_start() const { return envelope_start_; }
  SimTime envelope_end() const { return envelope_end_; }

 private:
  FaultScenarioSpec spec_;
  std::vector<FaultEdge> edges_;
  std::vector<ItemId> items_;
  std::vector<QueryRequest> injected_queries_;
  std::vector<InjectedUpdate> injected_updates_;
  SimTime envelope_start_ = 0;
  SimTime envelope_end_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_FAULTS_SCHEDULE_H_
