#ifndef UNIT_FAULTS_SCENARIO_H_
#define UNIT_FAULTS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "unit/common/config.h"
#include "unit/common/status.h"

namespace unitdb {

/// Kinds of disturbance the fault layer can inject into a running
/// experiment. Each perturbs exactly one side of the feedback loop the
/// paper's LBC balances, so the adaptivity benches can attribute a USM dip
/// to one cause:
///
///  - kUpdateOutage: the update sources of chosen items stop delivering
///    messages for the window; installed values decay (Udrop grows) and the
///    staleness penalty Fs rises.
///  - kUpdateBurst: the sources of chosen items push extra versions at
///    `rate_hz` per item on top of the periodic stream; the server must
///    ingest them (they bypass frequency modulation's due-check), raising
///    update load and the miss penalty Fm.
///  - kLoadStep: extra query arrivals at `rate_hz` (seeded Poisson process,
///    templates drawn from the workload's own trace), raising R and Fm.
///  - kServiceSlowdown: service demand of every transaction *created*
///    during the window is multiplied by `factor` (server degradation).
///  - kFreshnessShift: `delta` is added to the freshness requirement of
///    queries arriving during the window (clamped to [0, 1]).
///  - kRetryStorm: extra query arrivals at `rate_hz` (seeded Poisson,
///    templates from the workload's own trace) with deadlines tightened to
///    an eighth of the template's — near-certain misses that, under a
///    closed loop (EngineParams::session), provoke organic retry waves from
///    real sessions on top of the injected load. Raises R and Fm.
enum class FaultKind : uint8_t {
  kUpdateOutage = 0,
  kUpdateBurst,
  kLoadStep,
  kServiceSlowdown,
  kFreshnessShift,
  kRetryStorm,
};

/// Stable wire/spec name ("update-outage", "load-step", ...).
const char* FaultKindName(FaultKind k);

/// Inverse of FaultKindName; returns false on an unknown name.
bool FaultKindFromName(const std::string& name, FaultKind* out);

/// One timed disturbance of a scenario. Which optional fields are required
/// (and which are forbidden) depends on the kind; FaultScenarioSpec
/// validation enforces it so a typo'd spec fails loudly.
struct FaultSpec {
  FaultKind kind = FaultKind::kUpdateOutage;
  double start_s = 0.0;  ///< window start, seconds from run start
  double end_s = 0.0;    ///< window end (exclusive), must be > start_s

  /// Item selection for kUpdateOutage / kUpdateBurst: "a-b" (inclusive
  /// range), "a,b,c" (list), or "*" (every item with an update source).
  std::string items;

  double rate_hz = 0.0;  ///< kUpdateBurst: extra versions per item per
                         ///< second; kLoadStep: extra query arrivals per
                         ///< second
  double factor = 0.0;   ///< kServiceSlowdown: service-demand multiplier > 0
  double delta = 0.0;    ///< kFreshnessShift: freshness_req addend, != 0
};

/// A named, seeded set of FaultSpecs — everything needed to compile a
/// deterministic FaultSchedule against a concrete workload.
///
/// Spec grammar (Config key=value lines, '#' comments):
///
///   name   = outage-demo          # optional scenario name
///   seed   = 7                    # optional injection seed
///   fault0.kind    = update-outage
///   fault0.start_s = 200
///   fault0.end_s   = 350
///   fault0.items   = 0-63
///   fault1.kind    = load-step
///   fault1.start_s = 200
///   fault1.end_s   = 300
///   fault1.rate_hz = 20
///
/// Fault indices must be dense from 0. Unknown keys are rejected via
/// Config::ExpectKeys.
struct FaultScenarioSpec {
  std::string name = "scenario";
  /// Scenario-level injection seed. Mixed (SplitMix64) with the per-run
  /// workload seed at compile time, so replications draw decorrelated
  /// injection streams while staying bit-identical for a fixed pair.
  uint64_t seed = 7;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }

  /// Builds and validates a scenario from a parsed Config (rejecting
  /// unknown keys, unknown kinds, empty/inverted windows, missing or
  /// extraneous kind-specific fields, and overlapping windows of the same
  /// scalar kind).
  static StatusOr<FaultScenarioSpec> FromConfig(const Config& config);

  /// FromConfig over Config::ParseString(text).
  static StatusOr<FaultScenarioSpec> Parse(const std::string& text);

  /// FromConfig over the contents of the file at `path`.
  static StatusOr<FaultScenarioSpec> Load(const std::string& path);
};

}  // namespace unitdb

#endif  // UNIT_FAULTS_SCENARIO_H_
