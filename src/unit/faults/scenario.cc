#include "unit/faults/scenario.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

namespace unitdb {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kUpdateOutage, "update-outage"},
    {FaultKind::kUpdateBurst, "update-burst"},
    {FaultKind::kLoadStep, "load-step"},
    {FaultKind::kServiceSlowdown, "service-slowdown"},
    {FaultKind::kFreshnessShift, "freshness-shift"},
    {FaultKind::kRetryStorm, "retry-storm"},
};

std::string FaultPrefix(size_t index) {
  return "fault" + std::to_string(index) + ".";
}

Status SpecError(size_t index, const std::string& what) {
  return Status::InvalidArgument("fault" + std::to_string(index) + ": " +
                                 what);
}

/// Per-kind field requirements: which optional keys the kind consumes.
/// Everything not consumed is forbidden, so a stray `factor=` on an outage
/// fails instead of being silently ignored.
struct KindFields {
  bool items = false;
  bool rate_hz = false;
  bool factor = false;
  bool delta = false;
};

KindFields FieldsOf(FaultKind kind) {
  KindFields f;
  switch (kind) {
    case FaultKind::kUpdateOutage:
      f.items = true;
      break;
    case FaultKind::kUpdateBurst:
      f.items = true;
      f.rate_hz = true;
      break;
    case FaultKind::kLoadStep:
    case FaultKind::kRetryStorm:
      f.rate_hz = true;
      break;
    case FaultKind::kServiceSlowdown:
      f.factor = true;
      break;
    case FaultKind::kFreshnessShift:
      f.delta = true;
      break;
  }
  return f;
}

Status ValidateFault(const FaultSpec& fault, size_t index) {
  if (fault.start_s < 0.0) return SpecError(index, "start_s < 0");
  if (fault.end_s <= fault.start_s) {
    return SpecError(index, "end_s must be > start_s");
  }
  const KindFields fields = FieldsOf(fault.kind);
  if (fields.items && fault.items.empty()) {
    return SpecError(index, std::string(FaultKindName(fault.kind)) +
                                " requires items=");
  }
  if (fields.rate_hz && fault.rate_hz <= 0.0) {
    return SpecError(index, std::string(FaultKindName(fault.kind)) +
                                " requires rate_hz > 0");
  }
  if (fields.factor && fault.factor <= 0.0) {
    return SpecError(index, "service-slowdown requires factor > 0");
  }
  if (fields.delta && fault.delta == 0.0) {
    return SpecError(index, "freshness-shift requires delta != 0");
  }
  return Status::Ok();
}

}  // namespace

const char* FaultKindName(FaultKind k) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == k) return kn.name;
  }
  return "?";
}

bool FaultKindFromName(const std::string& name, FaultKind* out) {
  for (const KindName& kn : kKindNames) {
    if (name == kn.name) {
      *out = kn.kind;
      return true;
    }
  }
  return false;
}

StatusOr<FaultScenarioSpec> FaultScenarioSpec::FromConfig(
    const Config& config) {
  // Count the dense fault<N>. blocks first: N is dense from 0, and every
  // present block must carry a kind.
  size_t count = 0;
  while (config.Has(FaultPrefix(count) + "kind")) ++count;

  // Reject unknown keys against the full accepted set for the blocks found.
  std::vector<std::string> allowed = {"name", "seed"};
  for (size_t i = 0; i < count; ++i) {
    const std::string p = FaultPrefix(i);
    for (const char* field :
         {"kind", "start_s", "end_s", "items", "rate_hz", "factor", "delta"}) {
      allowed.push_back(p + field);
    }
  }
  Status s = config.ExpectKeys(allowed);
  if (!s.ok()) return s;

  FaultScenarioSpec spec;
  spec.name = config.GetString("name", "scenario");
  spec.seed = static_cast<uint64_t>(config.GetInt("seed", 7));
  spec.faults.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const std::string p = FaultPrefix(i);
    FaultSpec fault;
    const std::string kind_name = config.GetString(p + "kind");
    if (!FaultKindFromName(kind_name, &fault.kind)) {
      return SpecError(i, "unknown kind '" + kind_name + "'");
    }
    if (!config.Has(p + "start_s") || !config.Has(p + "end_s")) {
      return SpecError(i, "missing start_s/end_s");
    }
    fault.start_s = config.GetDouble(p + "start_s", 0.0);
    fault.end_s = config.GetDouble(p + "end_s", 0.0);
    fault.items = config.GetString(p + "items");
    fault.rate_hz = config.GetDouble(p + "rate_hz", 0.0);
    fault.factor = config.GetDouble(p + "factor", 0.0);
    fault.delta = config.GetDouble(p + "delta", 0.0);

    // Fields the kind does not consume must be absent.
    const KindFields fields = FieldsOf(fault.kind);
    if (!fields.items && config.Has(p + "items")) {
      return SpecError(i, std::string(FaultKindName(fault.kind)) +
                              " does not take items=");
    }
    if (!fields.rate_hz && config.Has(p + "rate_hz")) {
      return SpecError(i, std::string(FaultKindName(fault.kind)) +
                              " does not take rate_hz=");
    }
    if (!fields.factor && config.Has(p + "factor")) {
      return SpecError(i, std::string(FaultKindName(fault.kind)) +
                              " does not take factor=");
    }
    if (!fields.delta && config.Has(p + "delta")) {
      return SpecError(i, std::string(FaultKindName(fault.kind)) +
                              " does not take delta=");
    }
    s = ValidateFault(fault, i);
    if (!s.ok()) return s;
    spec.faults.push_back(std::move(fault));
  }

  // Scalar kinds (one global engine knob each) must not overlap themselves:
  // the engine restores the baseline value at a stop edge, so two active
  // windows of the same scalar kind would not compose.
  for (FaultKind kind :
       {FaultKind::kServiceSlowdown, FaultKind::kFreshnessShift}) {
    for (size_t i = 0; i < spec.faults.size(); ++i) {
      if (spec.faults[i].kind != kind) continue;
      for (size_t j = i + 1; j < spec.faults.size(); ++j) {
        if (spec.faults[j].kind != kind) continue;
        if (spec.faults[i].start_s < spec.faults[j].end_s &&
            spec.faults[j].start_s < spec.faults[i].end_s) {
          return SpecError(j, std::string("overlaps fault") +
                                  std::to_string(i) + " of scalar kind " +
                                  FaultKindName(kind));
        }
      }
    }
  }
  return spec;
}

StatusOr<FaultScenarioSpec> FaultScenarioSpec::Parse(const std::string& text) {
  auto config = Config::ParseString(text);
  if (!config.ok()) return config.status();
  return FromConfig(*config);
}

StatusOr<FaultScenarioSpec> FaultScenarioSpec::Load(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status(StatusCode::kIoError, "cannot open scenario file " + path);
  }
  std::ostringstream text;
  text << f.rdbuf();
  return Parse(text.str());
}

}  // namespace unitdb
