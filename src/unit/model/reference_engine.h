#ifndef UNIT_MODEL_REFERENCE_ENGINE_H_
#define UNIT_MODEL_REFERENCE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "unit/common/rng.h"
#include "unit/common/types.h"
#include "unit/core/admission.h"
#include "unit/core/policy.h"
#include "unit/db/database.h"
#include "unit/db/lock_manager.h"
#include "unit/sched/engine_context.h"
#include "unit/sched/event_queue.h"
#include "unit/sched/metrics.h"
#include "unit/sched/ready_queue.h"
#include "unit/session/session.h"
#include "unit/txn/transaction.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// Deliberately naive, obviously-correct reference implementation of the
/// engine semantics (the executable specification the differential harness
/// in model/diff.h checks the optimized engine against). It replays the
/// same workload + fault schedule and produces bit-identical semantic
/// RunMetrics, per-query outcomes, and window series, but swaps every
/// optimized structure for the simplest possible one:
///
///  - event queue: a flat vector, popped by a linear scan for the minimum
///    (time, seq) element; events invalidated by preemption/abort/commit
///    are eagerly erased instead of lazily tombstoned and compacted;
///  - ready queue: a flat vector, dispatched by a linear scan with the
///    same strict (class, deadline, id) priority order; queued-update work
///    and queue depths are recomputed by full sums/counts on every call;
///  - admission: the AdmissionIndex member is never initialized, so the
///    shared AdmissionController always takes its naive O(N_rq)
///    ready-queue-scan path (no Fenwick tree, no segment tree);
///  - closed-loop sessions: the optimized engine's SessionPool (hash-map
///    retry chains) is mirrored with a flat vector scanned linearly per
///    outcome, reusing only the pure SessionOf / RetryDelay helpers — the
///    spec-level arithmetic — so the differential harness cross-checks the
///    session state machine itself, not a shared implementation;
///  - overload shedding: the eviction victim (minimum (arrival, id) ready
///    query) is found by a full scan of the ready vector;
///  - result cache: the optimized engine's indexed ResultCache (hash map +
///    FIFO stamp deque with lazy tombstones) is mirrored with a flat vector
///    kept in first-population order and scanned linearly for coverage,
///    eviction, and invalidation — identical hit/miss/evict/skip decisions
///    from the simplest possible representation.
///
/// Determinism contract with the optimized engine: both push the same
/// events in the same order (so FIFO tie-breaks at equal timestamps
/// agree), both draw from the engine RNG at the same single site (estimate
/// noise at query-transaction creation), and both accumulate busy seconds
/// and window statistics with the same floating-point operation order.
///
/// Tracing (EngineParams::trace) is not supported and is ignored; series
/// and counters hooks work as in the optimized engine. The implementation
/// knobs use_admission_index / compact_events are ignored by construction.
class ReferenceEngine final : public EngineContext {
 public:
  /// `workload` and `policy` must outlive the engine; neither is owned.
  ReferenceEngine(const Workload& workload, Policy* policy,
                  EngineParams params);

  ReferenceEngine(const ReferenceEngine&) = delete;
  ReferenceEngine& operator=(const ReferenceEngine&) = delete;

  /// Runs the whole workload to completion and returns the collected
  /// metrics. Call at most once.
  RunMetrics Run();

  // --- EngineContext ---

  SimTime now() const override { return now_; }
  const Workload& workload() const override { return workload_; }
  Database& db() override { return db_; }
  const Database& db() const override { return db_; }
  Rng& rng() override { return rng_; }
  const EngineParams& params() const override { return params_; }
  const OutcomeCounts& counts() const override { return metrics_.counts; }
  const std::vector<OutcomeCounts>& per_class_counts() const override {
    return metrics_.per_class_counts;
  }
  double BusySeconds() const override {
    double busy = metrics_.busy_s;
    if (running_ != nullptr) busy += SimToSeconds(now_ - run_start_);
    return busy;
  }
  SimDuration RunningRemaining() const override;
  bool RunningIsUpdate() const override {
    return running_ != nullptr && running_->is_update();
  }
  SimDuration QueuedUpdateWork() const override;
  int ReadyQueryCount() const override;
  int ReadyUpdateCount() const override;
  /// Always disabled: routes the shared AdmissionController to its naive
  /// ready-queue-scan path.
  const AdmissionIndex& admission_index() const override {
    return disabled_index_;
  }
  int64_t PendingUpdatesForItem(ItemId item) const override {
    return pending_updates_per_item_[item];
  }
  TxnId IssueOnDemandUpdate(ItemId item) override;
  void ReportRejectReason(const char* reason) override { (void)reason; }
  void ForEachReadyQueryRaw(ReadyQueryVisitor visit,
                            void* ctx) const override;

  /// Exposed for tests: the live transaction table.
  const Transaction& txn(TxnId id) const { return txns_[id]; }

 private:
  /// The query trace as a vector. A streamed workload is materialized up
  /// front in the constructor — deliberately: the reference stays the naive
  /// O(total transactions) implementation so the differential harness
  /// cross-checks the optimized engine's streaming + slab-recycling paths
  /// against the simplest possible representation.
  const std::vector<QueryRequest>& Queries() const {
    return workload_.query_source != nullptr ? materialized_queries_
                                             : workload_.queries;
  }
  /// One scheduled event. Unlike the optimized queue there is no lazy
  /// generation check: events that can no longer fire are erased eagerly.
  struct RefEvent {
    SimTime time = 0;
    uint64_t seq = 0;  ///< FIFO tie-break at equal timestamps
    EventType type = EventType::kQueryArrival;
    int64_t payload = 0;
  };

  void Push(SimTime time, EventType type, int64_t payload);
  /// Pops the minimum (time, seq) event by a full linear scan.
  RefEvent PopNext();
  /// Eagerly erases the pending event of `type` for transaction `id`.
  void CancelEvent(EventType type, TxnId id);

  /// Strict (deadline, id) / (id) order within one priority class.
  bool Before(const Transaction& a, const Transaction& b) const;
  /// Dual-priority order: updates always outrank queries.
  bool HigherPriority(const Transaction& a, const Transaction& b) const;
  Transaction* ReadyTop() const;
  void ReadyInsert(Transaction* t);
  void ReadyRemove(Transaction* t);

  Transaction* NewQueryTxn(const QueryRequest& request);
  Transaction* NewUpdateTxn(ItemId item, SimDuration relative_deadline,
                            bool on_demand);

  void ScheduleInitialEvents();
  void HandleQueryArrival(int64_t query_index);
  void HandleUpdateArrival(ItemId item);
  void HandleCompletion(TxnId id);
  void HandleQueryDeadline(TxnId id);
  void HandleControlTick();
  void HandleFaultEdge(int64_t edge_index);
  void HandleFaultQueryArrival(int64_t injected_index);
  void HandleFaultUpdateArrival(int64_t injected_index);
  void HandleClientResubmit(int64_t resubmit_index);
  void AdmitArrivedQuery(const QueryRequest& request, bool resubmit = false);
  /// Drop-oldest overload shedding (EngineParams::shed_watermark).
  void MaybeShed();
  /// Naive mirror of the result-cache hit path (cache/result_cache.h): the
  /// flat vector is kept in first-population order, so erase-front eviction
  /// and linear membership scans reproduce the optimized cache's decisions
  /// exactly.
  bool TryServeFromCache(Transaction* t);
  bool RefCacheCovers(const Transaction& t) const;
  void RefCachePopulate(ItemId item);
  bool RefCacheInvalidate(ItemId item);
  /// Naive mirror of SessionPool::OnOutcome over the flat chain vector.
  void OnSessionOutcome(Transaction* t, Outcome outcome);

  void TryDispatch();
  void StartRunning(Transaction* t);
  void PreemptRunning();
  void CompleteRunning(Transaction* t);
  bool AcquireLocks(Transaction* t);
  void BlockOnLocks(Transaction* t);
  void UnblockAll();
  void RestartQuery(Transaction* t);
  void AbortQuery(Transaction* t, Outcome outcome);
  void ResolveQuery(Transaction* t, Outcome outcome);
  void ReleaseLocksOf(Transaction* t);

  void RecordWindowSample();
  void FinalizeObservability();

  const Workload& workload_;
  Policy* policy_;
  EngineParams params_;
  std::vector<QueryRequest> materialized_queries_;  ///< see Queries()

  Database db_;
  LockManager locks_;
  Rng rng_;
  AdmissionIndex disabled_index_;  ///< never Init'ed; enabled() == false

  std::vector<RefEvent> events_;
  uint64_t next_seq_ = 0;
  std::vector<Transaction*> ready_;

  std::deque<Transaction> txns_;  ///< id == index; stable addresses
  std::vector<Transaction*> blocked_;
  std::vector<int64_t> pending_updates_per_item_;

  Transaction* running_ = nullptr;
  SimTime run_start_ = 0;
  SimTime now_ = 0;
  bool ran_ = false;

  std::vector<int32_t> item_outage_;
  double fault_exec_scale_ = 1.0;
  double fault_freshness_shift_ = 0.0;

  /// One in-flight session retry chain (naive counterpart of
  /// SessionPool::Chain; found by linear scan on trace id).
  struct RefChain {
    TxnId trace_id = kInvalidTxn;
    QueryRequest request;
    int retries = 0;
    SimDuration prev_delay = 0;
  };
  std::vector<RefChain> chains_;
  std::vector<SimDuration> session_patience_;
  int64_t retry_decisions_ = 0;
  std::vector<SessionAttempt> resubmits_;

  OutcomeCounts series_last_counts_;
  double series_last_busy_ = 0.0;
  SimTime series_last_sample_ = 0;
  int64_t series_last_retries_ = 0;
  int64_t series_last_abandons_ = 0;
  int64_t series_last_shed_ = 0;
  int64_t series_last_cache_hits_ = 0;
  int64_t series_last_cache_invalidations_ = 0;
  std::vector<int64_t> udrop_scratch_;

  /// Naive result cache: item ids in first-population order (front oldest).
  std::vector<ItemId> cache_items_;

  RunMetrics metrics_;
};

}  // namespace unitdb

#endif  // UNIT_MODEL_REFERENCE_ENGINE_H_
