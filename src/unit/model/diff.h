#ifndef UNIT_MODEL_DIFF_H_
#define UNIT_MODEL_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "unit/common/status.h"
#include "unit/core/usm.h"
#include "unit/faults/scenario.h"
#include "unit/obs/timeseries.h"
#include "unit/sched/engine_context.h"
#include "unit/sched/metrics.h"
#include "unit/sim/server.h"
#include "unit/txn/outcome.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// One differential-test input: everything needed to run the optimized
/// engine and the reference model on identical inputs. The observability
/// and fault pointers inside `engine` are ignored — the harness wires its
/// own series recorders and compiles `scenario` itself.
struct DiffCase {
  Workload workload;
  /// Fault scenario; empty() means no fault layer is attached at all.
  FaultScenarioSpec scenario;
  /// Run seed mixed into FaultSchedule::Compile (the replication seed).
  uint64_t workload_seed = 42;

  std::string policy = "unit";
  UsmWeights weights;
  /// Engine tunables, including the closed-loop dimension: a case runs with
  /// user sessions attached when `engine.session.sessions > 0` and with
  /// overload shedding when `engine.shed_watermark > 0`. The harness pins
  /// `engine.session.drop_retry_at` itself (see Perturbation::kDropRetry),
  /// so cases need not set it.
  EngineParams engine;
  PolicyOptions options;

  /// Run the *optimized* side with the query trace wrapped in a streaming
  /// QuerySource (the reference side always materializes), so the engine's
  /// lazy-arrival + slab-recycling paths are cross-checked against the
  /// naive upfront schedule. Fault scenarios are compiled against the
  /// materialized trace first, so load-step templates are identical.
  bool stream_queries = false;

  /// Sharded-execution dimension (shard/sharded.h). 0 = the ordinary
  /// monolithic diff (optimized engine vs reference model). 1 = the sharded
  /// runner at shards=1 on the optimized side vs the monolithic reference
  /// model — pinning "sharding at N=1 is the identity", bit-for-bit. > 1 =
  /// the optimized sharded stack vs a reference-engine sharded stack
  /// (jobs=1), bit-for-bit at the merged parent level, plus the cross-shard
  /// USM accounting cross-checks (naive per-outcome enumeration over parent
  /// records, sub-query conservation).
  int shards = 0;
  /// Worker threads for the optimized sharded side (shards >= 1 only); the
  /// comparison must hold for any value.
  int shard_jobs = 1;

  /// Provenance for replay lines (filled by gen.h; -1 = hand-built case).
  uint64_t gen_seed = 0;
  int64_t gen_index = -1;
};

/// Intentional defect injected into the *optimized* side only, for harness
/// self-tests: a real divergence the differential comparison must catch.
enum class Perturbation {
  kNone = 0,
  /// Off-by-one C_flex adjustment step: admission control's TAC/LAC
  /// feedback tightens/loosens by 11% instead of 10%, so the admitted set
  /// drifts after the first control signal.
  kCFlexStep,
  /// Admission off-by-one: the optimized side's policy wrapper rejects one
  /// query the policy admitted (the 8th admitted query of the run). A
  /// guaranteed, policy-independent divergence for any case with enough
  /// queries — the robust self-test that shrinking has something to chew on.
  kAdmitOffByOne,
  /// Closed-loop retry drop: the optimized side's session layer silently
  /// discards the first retry decision of the run (the harness sets
  /// SessionParams::drop_retry_at = 1 on the optimized engine only), so one
  /// chain ends without a success or an abandon. Caught by the session
  /// conservation cross-check and, wherever the reference chain retries on,
  /// by per-query outcome divergence. Needs a case with sessions attached
  /// and at least one reject/miss; diff_fuzz forces sessions on for this
  /// perturbation.
  kDropRetry,
};

/// Per-query observation recorded on both sides and compared field by field.
struct QueryRecord {
  TxnId id = kInvalidTxn;
  Outcome outcome = Outcome::kPending;
  double observed_freshness = 0.0;  ///< compared bit-for-bit
  SimTime commit_time = 0;
  int restarts = 0;
  int preference_class = 0;
  /// QueryRequest::id the transaction was built from (kInvalidTxn for
  /// fault-injected queries). Sharded diffs remap both sides' `id` to the
  /// parent trace position through this, so sub-query joins are compared
  /// parent-by-parent.
  TxnId trace_id = kInvalidTxn;
};

/// One side's full observable output.
struct DiffRun {
  RunMetrics metrics;
  std::vector<QueryRecord> queries;     ///< in resolution order
  std::vector<WindowSample> series;     ///< control-window telemetry
};

struct DiffOptions {
  /// Also compare the per-window time series (bit-for-bit) and cross-check
  /// each window's USM decomposition against the naive re-derivation.
  bool compare_series = true;
  /// Defect injected into the optimized side (self-test support).
  Perturbation perturb = Perturbation::kNone;
  /// Cap on recorded divergence messages (the count is not capped).
  int max_divergence_messages = 8;
};

struct DiffResult {
  bool equivalent = false;
  int64_t divergence_count = 0;
  /// Human-readable "field: optimized=... reference=..." lines, capped at
  /// DiffOptions::max_divergence_messages.
  std::vector<std::string> divergences;
  DiffRun optimized;
  DiffRun reference;
};

/// Runs the optimized engine and the naive reference model on `c` and
/// compares semantic RunMetrics fields, per-query outcomes, and (optionally)
/// window series bit-for-bit. Hot-path telemetry (events_*, compactions,
/// peak depths, obs_* snapshots) is excluded — it legitimately differs
/// between implementations. Fails (Status) only on setup errors: unknown
/// policy or a fault scenario that does not compile against the workload.
StatusOr<DiffResult> RunDiff(const DiffCase& c, const DiffOptions& opts = {});

/// ddmin-lite shrink: repeatedly halves the query-arrival list and the
/// fault list (and finally tries dropping the fault layer whole) while the
/// case still diverges under `opts`. Returns the smallest still-failing
/// case found; returns `c` unchanged if it does not diverge. Deterministic.
DiffCase ShrinkCase(const DiffCase& c, const DiffOptions& opts = {});

/// One-line replayable description: "seed=S case=I policy=P index=0|1
/// compact=0|1 faults=0|1 stream=0|1 shards=K sjobs=J sessions=N shed=W
/// cache=C queries=N" — paste the seed/case pair into tools/diff_fuzz to
/// reproduce.
std::string DescribeCase(const DiffCase& c);

}  // namespace unitdb

#endif  // UNIT_MODEL_DIFF_H_
