#include "unit/model/reference_usm.h"

namespace unitdb {

double ReferenceUsmValue(Outcome outcome, const UsmWeights& w) {
  switch (outcome) {
    case Outcome::kSuccess:
      return w.gain;
    case Outcome::kRejected:
      return -w.c_r;
    case Outcome::kDeadlineMiss:
      return -w.c_fm;
    case Outcome::kDataStale:
      return -w.c_fs;
    case Outcome::kPending:
      break;
  }
  return 0.0;
}

double ReferenceUsmTotalFromOutcomes(const std::vector<Outcome>& outcomes,
                                     const UsmWeights& w) {
  double total = 0.0;
  for (Outcome o : outcomes) total += ReferenceUsmValue(o, w);
  return total;
}

double ReferenceUsmTotal(const OutcomeCounts& c, const UsmWeights& w) {
  double total = 0.0;
  for (int64_t i = 0; i < c.success; ++i) total += w.gain;
  for (int64_t i = 0; i < c.rejected; ++i) total -= w.c_r;
  for (int64_t i = 0; i < c.dmf; ++i) total -= w.c_fm;
  for (int64_t i = 0; i < c.dsf; ++i) total -= w.c_fs;
  return total;
}

double ReferenceUsmAverage(const OutcomeCounts& c, const UsmWeights& w) {
  if (c.submitted <= 0) return 0.0;
  return ReferenceUsmTotal(c, w) / static_cast<double>(c.submitted);
}

UsmBreakdown ReferenceUsmDecompose(const OutcomeCounts& c,
                                   const UsmWeights& w) {
  UsmBreakdown b;
  if (c.submitted <= 0) return b;
  const double n = static_cast<double>(c.submitted);
  double s = 0.0, r = 0.0, fm = 0.0, fs = 0.0;
  for (int64_t i = 0; i < c.success; ++i) s += w.gain;
  for (int64_t i = 0; i < c.rejected; ++i) r += w.c_r;
  for (int64_t i = 0; i < c.dmf; ++i) fm += w.c_fm;
  for (int64_t i = 0; i < c.dsf; ++i) fs += w.c_fs;
  b.s = s / n;
  b.r = r / n;
  b.fm = fm / n;
  b.fs = fs / n;
  return b;
}

double ReferenceUsmAverageMulti(
    const std::vector<OutcomeCounts>& per_class_counts,
    const std::vector<UsmWeights>& class_weights) {
  double total = 0.0;
  int64_t submitted = 0;
  for (size_t cls = 0; cls < per_class_counts.size(); ++cls) {
    const UsmWeights& w =
        WeightsForClass(class_weights, static_cast<int>(cls));
    total += ReferenceUsmTotal(per_class_counts[cls], w);
    submitted += per_class_counts[cls].submitted;
  }
  if (submitted <= 0) return 0.0;
  return total / static_cast<double>(submitted);
}

}  // namespace unitdb
