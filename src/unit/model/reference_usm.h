#ifndef UNIT_MODEL_REFERENCE_USM_H_
#define UNIT_MODEL_REFERENCE_USM_H_

#include <vector>

#include "unit/core/usm.h"
#include "unit/txn/outcome.h"

namespace unitdb {

/// Straight-line re-derivations of the paper's USM accounting (Eq. 4/5),
/// computed the most obvious way possible: enumerate outcomes one at a time
/// and accumulate each one's gain or penalty. The production formulas in
/// core/usm.cc multiply counters instead; the differential harness checks
/// the two agree (within floating-point accumulation error) on every run
/// and every window sample, which pins both the formulas and the outcome
/// counters themselves.

/// USM contribution of a single resolved query: +G_s on success, -C_r /
/// -C_fm / -C_fs on rejection / deadline miss / stale data. kPending is a
/// programming error and contributes 0.
double ReferenceUsmValue(Outcome outcome, const UsmWeights& weights);

/// Eq. 4 by enumeration over per-query outcomes.
double ReferenceUsmTotalFromOutcomes(const std::vector<Outcome>& outcomes,
                                     const UsmWeights& weights);

/// Eq. 4 by one-at-a-time accumulation over the counters.
double ReferenceUsmTotal(const OutcomeCounts& counts,
                         const UsmWeights& weights);

/// Eq. 5: average per submitted query; 0 with no queries.
double ReferenceUsmAverage(const OutcomeCounts& counts,
                           const UsmWeights& weights);

/// Eq. 5 decomposition (USM = S - R - Fm - Fs), accumulated term by term.
UsmBreakdown ReferenceUsmDecompose(const OutcomeCounts& counts,
                                   const UsmWeights& weights);

/// Multi-class average USM by per-class enumeration (the fallback rule for
/// missing class weights matches WeightsForClass).
double ReferenceUsmAverageMulti(
    const std::vector<OutcomeCounts>& per_class_counts,
    const std::vector<UsmWeights>& class_weights);

}  // namespace unitdb

#endif  // UNIT_MODEL_REFERENCE_USM_H_
