#include "unit/model/diff.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "unit/core/policy.h"
#include "unit/faults/schedule.h"
#include "unit/model/reference_engine.h"
#include "unit/model/reference_usm.h"
#include "unit/sched/engine.h"
#include "unit/shard/sharded.h"
#include "unit/workload/query_source.h"

namespace unitdb {
namespace {

/// Tolerance for the naive-USM cross-checks (different floating-point
/// accumulation orders; everything else is compared bit-for-bit).
constexpr double kUsmEps = 1e-9;

/// Forwards every hook to the wrapped policy, records one QueryRecord per
/// resolved query, and (for self-tests) injects the kAdmitOffByOne defect.
class RecordingPolicy final : public Policy {
 public:
  RecordingPolicy(Policy* inner, Perturbation perturb)
      : inner_(inner), perturb_(perturb) {}

  std::string name() const override { return inner_->name(); }
  void Attach(EngineContext& engine) override { inner_->Attach(engine); }

  bool AdmitQuery(EngineContext& engine, const Transaction& query) override {
    const bool admit = inner_->AdmitQuery(engine, query);
    if (admit && perturb_ == Perturbation::kAdmitOffByOne &&
        ++admitted_ == 8) {
      return false;  // the injected defect: shed one admitted query
    }
    return admit;
  }

  bool BeforeQueryDispatch(EngineContext& engine,
                           Transaction& query) override {
    return inner_->BeforeQueryDispatch(engine, query);
  }

  void OnQueryResolved(EngineContext& engine, const Transaction& query,
                       Outcome outcome) override {
    QueryRecord r;
    r.id = query.id();
    r.outcome = outcome;
    r.observed_freshness = query.observed_freshness();
    r.commit_time = query.commit_time();
    r.restarts = query.restarts();
    r.preference_class = query.preference_class();
    r.trace_id = query.trace_id();
    records.push_back(r);
    inner_->OnQueryResolved(engine, query, outcome);
  }

  void OnUpdateCommit(EngineContext& engine,
                      const Transaction& update) override {
    inner_->OnUpdateCommit(engine, update);
  }

  void OnUpdateSourceArrival(EngineContext& engine, ItemId item) override {
    inner_->OnUpdateSourceArrival(engine, item);
  }

  void OnControlTick(EngineContext& engine) override {
    inner_->OnControlTick(engine);
  }

  double AdmissionKnob() const override { return inner_->AdmissionKnob(); }
  bool UsesPeriodicUpdates() const override {
    return inner_->UsesPeriodicUpdates();
  }

  std::vector<QueryRecord> records;

 private:
  Policy* inner_;
  Perturbation perturb_;
  int admitted_ = 0;
};

PolicyOptions PerturbedOptions(const PolicyOptions& options,
                               Perturbation perturb) {
  PolicyOptions out = options;
  if (perturb == Perturbation::kCFlexStep) {
    out.unit.admission.adjust_step += 0.01;
  }
  return out;
}

bool BitEqual(double a, double b) {
  uint64_t x = 0, y = 0;
  std::memcpy(&x, &a, sizeof(a));
  std::memcpy(&y, &b, sizeof(b));
  return x == y;
}

class Comparer {
 public:
  Comparer(DiffResult* result, const DiffOptions& opts)
      : result_(result), opts_(opts) {}

  template <typename T>
  void Eq(const std::string& field, const T& a, const T& b) {
    if (a == b) return;
    std::ostringstream os;
    os << field << ": optimized=" << a << " reference=" << b;
    Mismatch(os.str());
  }

  void EqBits(const std::string& field, double a, double b) {
    if (BitEqual(a, b)) return;
    std::ostringstream os;
    os.precision(17);
    os << field << ": optimized=" << a << " reference=" << b;
    Mismatch(os.str());
  }

  void Near(const std::string& field, double a, double b, double eps) {
    if (std::abs(a - b) <= eps) return;
    std::ostringstream os;
    os.precision(17);
    os << field << ": value=" << a << " naive-model=" << b;
    Mismatch(os.str());
  }

  void Mismatch(std::string msg) {
    ++result_->divergence_count;
    if (static_cast<int>(result_->divergences.size()) <
        opts_.max_divergence_messages) {
      result_->divergences.push_back(std::move(msg));
    }
  }

  void Counts(const std::string& prefix, const OutcomeCounts& a,
              const OutcomeCounts& b) {
    Eq(prefix + ".submitted", a.submitted, b.submitted);
    Eq(prefix + ".success", a.success, b.success);
    Eq(prefix + ".rejected", a.rejected, b.rejected);
    Eq(prefix + ".dmf", a.dmf, b.dmf);
    Eq(prefix + ".dsf", a.dsf, b.dsf);
  }

  void Stat(const std::string& prefix, const RunningStat& a,
            const RunningStat& b) {
    Eq(prefix + ".count", a.count(), b.count());
    EqBits(prefix + ".sum", a.sum(), b.sum());
    EqBits(prefix + ".mean", a.mean(), b.mean());
    EqBits(prefix + ".variance", a.variance(), b.variance());
    EqBits(prefix + ".min", a.min(), b.min());
    EqBits(prefix + ".max", a.max(), b.max());
  }

 private:
  DiffResult* result_;
  const DiffOptions& opts_;
};

std::string Idx(const char* base, size_t i, const char* field) {
  std::ostringstream os;
  os << base << "[" << i << "]." << field;
  return os.str();
}

void Compare(const DiffCase& c, const DiffOptions& opts, DiffResult* out) {
  Comparer cmp(out, opts);
  const RunMetrics& a = out->optimized.metrics;
  const RunMetrics& b = out->reference.metrics;

  // Final semantic metrics. Hot-path telemetry (events_processed,
  // events_cancelled, event_compactions, events_compacted,
  // peak_ready_depth, obs_*) is implementation-specific and excluded.
  cmp.Counts("counts", a.counts, b.counts);
  cmp.Eq("per_class_counts.size", a.per_class_counts.size(),
         b.per_class_counts.size());
  const size_t classes =
      std::min(a.per_class_counts.size(), b.per_class_counts.size());
  for (size_t i = 0; i < classes; ++i) {
    cmp.Counts(Idx("per_class_counts", i, "counts"), a.per_class_counts[i],
               b.per_class_counts[i]);
  }
  cmp.Stat("query_response_s", a.query_response_s, b.query_response_s);
  cmp.Stat("query_freshness", a.query_freshness, b.query_freshness);
  cmp.Stat("update_latency_s", a.update_latency_s, b.update_latency_s);
  cmp.EqBits("duration_s", a.duration_s, b.duration_s);
  cmp.EqBits("busy_s", a.busy_s, b.busy_s);
  cmp.Eq("preemptions", a.preemptions, b.preemptions);
  cmp.Eq("lock_restarts", a.lock_restarts, b.lock_restarts);
  cmp.Eq("update_commits", a.update_commits, b.update_commits);
  cmp.Eq("on_demand_updates", a.on_demand_updates, b.on_demand_updates);
  cmp.Eq("updates_generated", a.updates_generated, b.updates_generated);
  cmp.Eq("updates_dropped", a.updates_dropped, b.updates_dropped);
  cmp.Eq("fault_edges", a.fault_edges, b.fault_edges);
  cmp.Eq("fault_injected_queries", a.fault_injected_queries,
         b.fault_injected_queries);
  cmp.Eq("fault_injected_updates", a.fault_injected_updates,
         b.fault_injected_updates);
  cmp.Eq("fault_suppressed_updates", a.fault_suppressed_updates,
         b.fault_suppressed_updates);
  cmp.Eq("session_requests", a.session_requests, b.session_requests);
  cmp.Eq("session_retries", a.session_retries, b.session_retries);
  cmp.Eq("session_successes", a.session_successes, b.session_successes);
  cmp.Eq("session_abandons", a.session_abandons, b.session_abandons);
  cmp.Eq("queries_shed", a.queries_shed, b.queries_shed);
  cmp.Stat("session_retry_delay_s", a.session_retry_delay_s,
           b.session_retry_delay_s);
  cmp.Eq("cache_hits", a.cache_hits, b.cache_hits);
  cmp.Eq("cache_misses", a.cache_misses, b.cache_misses);
  cmp.Eq("cache_invalidations", a.cache_invalidations, b.cache_invalidations);
  cmp.Eq("cache_stale_skips", a.cache_stale_skips, b.cache_stale_skips);

  // Closed-loop conservation: every session request resolves to exactly one
  // terminal outcome, and no chain retries past its budget. Checked on each
  // side independently so a defect that silently drops a chain (the
  // kDropRetry self-test) is caught even where the sides happen to agree.
  if (c.engine.session.sessions > 0) {
    const auto conservation = [&cmp](const char* side, const RunMetrics& m,
                                     int max_retries) {
      if (m.session_requests != m.session_successes + m.session_abandons) {
        std::ostringstream os;
        os << "session.conservation(" << side
           << "): requests=" << m.session_requests
           << " != successes=" << m.session_successes
           << " + abandons=" << m.session_abandons;
        cmp.Mismatch(os.str());
      }
      const int64_t bound =
          m.session_requests * static_cast<int64_t>(max_retries);
      if (m.session_retries > bound) {
        std::ostringstream os;
        os << "session.retry_bound(" << side
           << "): retries=" << m.session_retries
           << " > requests*max_retries=" << bound;
        cmp.Mismatch(os.str());
      }
    };
    conservation("optimized", a, c.engine.session.max_retries);
    conservation("reference", b, c.engine.session.max_retries);
  }
  cmp.Eq("per_item_accesses.size", a.per_item_accesses.size(),
         b.per_item_accesses.size());
  for (size_t i = 0;
       i < std::min(a.per_item_accesses.size(), b.per_item_accesses.size());
       ++i) {
    cmp.Eq(Idx("per_item_accesses", i, "n"), a.per_item_accesses[i],
           b.per_item_accesses[i]);
  }
  for (size_t i = 0; i < std::min(a.per_item_applied_updates.size(),
                                  b.per_item_applied_updates.size());
       ++i) {
    cmp.Eq(Idx("per_item_applied_updates", i, "n"),
           a.per_item_applied_updates[i], b.per_item_applied_updates[i]);
  }

  // Per-query outcomes, in resolution order.
  cmp.Eq("queries.size", out->optimized.queries.size(),
         out->reference.queries.size());
  const size_t nq =
      std::min(out->optimized.queries.size(), out->reference.queries.size());
  for (size_t i = 0; i < nq; ++i) {
    const QueryRecord& qa = out->optimized.queries[i];
    const QueryRecord& qb = out->reference.queries[i];
    cmp.Eq(Idx("queries", i, "id"), qa.id, qb.id);
    cmp.Eq(Idx("queries", i, "outcome"), static_cast<int>(qa.outcome),
           static_cast<int>(qb.outcome));
    cmp.EqBits(Idx("queries", i, "observed_freshness"),
               qa.observed_freshness, qb.observed_freshness);
    cmp.Eq(Idx("queries", i, "commit_time"), qa.commit_time, qb.commit_time);
    cmp.Eq(Idx("queries", i, "restarts"), qa.restarts, qb.restarts);
    cmp.Eq(Idx("queries", i, "preference_class"), qa.preference_class,
           qb.preference_class);
  }

  // Window series, bit-for-bit, plus the naive per-window USM cross-check.
  if (opts.compare_series) {
    cmp.Eq("series.size", out->optimized.series.size(),
           out->reference.series.size());
    const size_t ns =
        std::min(out->optimized.series.size(), out->reference.series.size());
    for (size_t i = 0; i < ns; ++i) {
      const WindowSample& sa = out->optimized.series[i];
      const WindowSample& sb = out->reference.series[i];
      cmp.EqBits(Idx("series", i, "t_s"), sa.t_s, sb.t_s);
      cmp.Counts(Idx("series", i, "window"), sa.window, sb.window);
      cmp.EqBits(Idx("series", i, "usm.s"), sa.usm.s, sb.usm.s);
      cmp.EqBits(Idx("series", i, "usm.r"), sa.usm.r, sb.usm.r);
      cmp.EqBits(Idx("series", i, "usm.fm"), sa.usm.fm, sb.usm.fm);
      cmp.EqBits(Idx("series", i, "usm.fs"), sa.usm.fs, sb.usm.fs);
      cmp.EqBits(Idx("series", i, "utilization"), sa.utilization,
                 sb.utilization);
      cmp.Eq(Idx("series", i, "ready_queries"), sa.ready_queries,
             sb.ready_queries);
      cmp.Eq(Idx("series", i, "ready_updates"), sa.ready_updates,
             sb.ready_updates);
      cmp.EqBits(Idx("series", i, "udrop_p50"), sa.udrop_p50, sb.udrop_p50);
      cmp.EqBits(Idx("series", i, "udrop_p90"), sa.udrop_p90, sb.udrop_p90);
      cmp.Eq(Idx("series", i, "udrop_max"), sa.udrop_max, sb.udrop_max);
      cmp.EqBits(Idx("series", i, "admission_knob"), sa.admission_knob,
                 sb.admission_knob);
      cmp.Eq(Idx("series", i, "degraded_items"), sa.degraded_items,
             sb.degraded_items);
      cmp.Eq(Idx("series", i, "retries"), sa.retries, sb.retries);
      cmp.Eq(Idx("series", i, "abandons"), sa.abandons, sb.abandons);
      cmp.Eq(Idx("series", i, "shed"), sa.shed, sb.shed);
      cmp.Eq(Idx("series", i, "cache_hits"), sa.cache_hits, sb.cache_hits);
      cmp.Eq(Idx("series", i, "cache_invalidations"), sa.cache_invalidations,
             sb.cache_invalidations);

      // Cross-check the recorder's Eq. 5 decomposition against the naive
      // one-at-a-time accumulation (tolerance: accumulation-order error).
      const UsmBreakdown naive =
          ReferenceUsmDecompose(sb.window, c.weights);
      cmp.Near(Idx("series", i, "usm.s(naive)"), sb.usm.s, naive.s, kUsmEps);
      cmp.Near(Idx("series", i, "usm.r(naive)"), sb.usm.r, naive.r, kUsmEps);
      cmp.Near(Idx("series", i, "usm.fm(naive)"), sb.usm.fm, naive.fm,
               kUsmEps);
      cmp.Near(Idx("series", i, "usm.fs(naive)"), sb.usm.fs, naive.fs,
               kUsmEps);
    }
  }

  // Final-USM cross-check: the production counter formulas against the
  // naive per-outcome enumeration over the reference side's query records.
  std::vector<Outcome> outcomes;
  outcomes.reserve(out->reference.queries.size());
  for (const QueryRecord& q : out->reference.queries) {
    outcomes.push_back(q.outcome);
  }
  const double scale =
      1.0 + static_cast<double>(out->reference.queries.size());
  cmp.Near("usm_total(naive)", UsmTotal(a.counts, c.weights),
           ReferenceUsmTotalFromOutcomes(outcomes, c.weights),
           kUsmEps * scale);
  cmp.Near("usm_average(naive)", UsmAverage(a.counts, c.weights),
           ReferenceUsmAverage(b.counts, c.weights), kUsmEps * scale);
  cmp.Near("usm_average_multi(naive)",
           UsmAverageMulti(a.per_class_counts, {c.weights}),
           ReferenceUsmAverageMulti(b.per_class_counts, {c.weights}),
           kUsmEps * scale);
}

bool Diverges(const DiffCase& c, const DiffOptions& opts) {
  DiffOptions quiet = opts;
  quiet.max_divergence_messages = 0;
  StatusOr<DiffResult> r = RunDiff(c, quiet);
  return r.ok() && !r->equivalent;
}

/// Converts one side of a sharded run into the DiffRun shape the shared
/// Compare understands. Record `id` carries the parent trace position
/// (kInvalidTxn for fault-injected parents), so both sides join on parents.
DiffRun ShardedToDiffRun(ShardedResult&& r) {
  DiffRun run;
  run.metrics = std::move(r.metrics);
  run.queries.reserve(r.queries.size());
  for (const ShardQueryRecord& q : r.queries) {
    QueryRecord rec;
    rec.id = q.trace_id;
    rec.trace_id = q.trace_id;
    rec.outcome = q.outcome;
    rec.observed_freshness = q.observed_freshness;
    rec.commit_time = q.commit_time;
    rec.restarts = q.restarts;
    rec.preference_class = q.preference_class;
    run.queries.push_back(rec);
  }
  run.series = std::move(r.merged_series);
  return run;
}

/// The sharded differential run (DiffCase::shards >= 1). shards == 1 pins
/// the sharded runner bit-for-bit against the monolithic naive reference
/// model; shards > 1 pins the optimized sharded stack against a
/// reference-engine sharded stack and validates the cross-shard parent
/// (Eq. 5) accounting.
StatusOr<DiffResult> RunShardedDiff(const DiffCase& c,
                                    const DiffOptions& opts) {
  FaultSchedule schedule;  // monolithic reference side (shards == 1) only
  const FaultSchedule* schedule_ptr = nullptr;
  if (c.shards == 1 && !c.scenario.empty()) {
    StatusOr<FaultSchedule> compiled =
        FaultSchedule::Compile(c.scenario, c.workload, c.workload_seed);
    if (!compiled.ok()) return compiled.status();
    schedule = std::move(*compiled);
    schedule_ptr = &schedule;
  }

  DiffResult result;

  Workload streamed;
  const Workload* optimized_workload = &c.workload;
  if (c.stream_queries) {
    streamed = c.workload;
    ConvertToStreamingWorkload(&streamed);
    optimized_workload = &streamed;
  }

  ShardedParams sp;
  sp.shards = c.shards;
  sp.jobs = c.shard_jobs;
  sp.engine = c.engine;
  sp.options = PerturbedOptions(c.options, opts.perturb);
  sp.record_series = opts.compare_series;
  sp.scenario = c.scenario.empty() ? nullptr : &c.scenario;
  sp.fault_seed = c.workload_seed;
  sp.perturb_admit_off_by_one = opts.perturb == Perturbation::kAdmitOffByOne;
  sp.engine.session.drop_retry_at =
      opts.perturb == Perturbation::kDropRetry ? 1 : 0;

  auto optimized = RunSharded(*optimized_workload, c.policy, c.weights, sp);
  if (!optimized.ok()) return optimized.status();
  // Conservation checks on the optimized side before it is consumed: every
  // sub-query a shard saw is a split of a parent, fault-injected, or a
  // closed-loop resubmission of one of those, and the merged submitted
  // count is exactly the joined parent count.
  int64_t shard_submitted = 0;
  int64_t shard_injected = 0;
  int64_t shard_retries = 0;
  for (const RunMetrics& m : optimized->per_shard) {
    shard_submitted += m.counts.submitted;
    shard_injected += m.fault_injected_queries;
    shard_retries += m.session_retries;
  }
  const int64_t expected_subs =
      optimized->subqueries + shard_injected + shard_retries;
  const int64_t parent_count =
      static_cast<int64_t>(optimized->queries.size());
  const int64_t merged_submitted = optimized->metrics.counts.submitted;
  result.optimized = ShardedToDiffRun(std::move(*optimized));

  if (c.shards == 1) {
    StatusOr<std::unique_ptr<Policy>> policy =
        MakePolicy(c.policy, c.weights, c.options);
    if (!policy.ok()) return policy.status();
    RecordingPolicy recording(policy->get(), Perturbation::kNone);
    TimeSeriesRecorder series(c.weights);
    EngineParams params = c.engine;
    params.trace = nullptr;
    params.counters = nullptr;
    params.series = opts.compare_series ? &series : nullptr;
    params.faults = schedule_ptr;
    params.session.drop_retry_at = 0;  // perturbations hit optimized only
    ReferenceEngine engine(c.workload, &recording, params);
    result.reference.metrics = engine.Run();
    result.reference.queries = std::move(recording.records);
    result.reference.series = series.samples();

    // Closed-loop runs resolve one monolithic record per *attempt*, while
    // the sharded side joins parents over final attempts only. Collapse the
    // reference records to the last record per parent and subtract the
    // dropped attempts (necessarily non-committed, so the response/freshness
    // stats are untouched) from the aggregate counts, so both sides speak
    // parent-level.
    if (c.engine.session.sessions > 0) {
      std::vector<QueryRecord>& recs = result.reference.queries;
      std::unordered_map<TxnId, size_t> last;
      for (size_t p = 0; p < recs.size(); ++p) {
        if (recs[p].trace_id != kInvalidTxn) last[recs[p].trace_id] = p;
      }
      RunMetrics& rm = result.reference.metrics;
      std::vector<QueryRecord> finals;
      finals.reserve(recs.size());
      for (size_t p = 0; p < recs.size(); ++p) {
        const QueryRecord& r = recs[p];
        if (r.trace_id == kInvalidTxn || last[r.trace_id] == p) {
          finals.push_back(r);
          continue;
        }
        const auto drop = [&r](OutcomeCounts& counts) {
          --counts.submitted;
          switch (r.outcome) {
            case Outcome::kRejected:
              --counts.rejected;
              break;
            case Outcome::kDeadlineMiss:
              --counts.dmf;
              break;
            case Outcome::kDataStale:
              --counts.dsf;
              break;
            case Outcome::kSuccess:
              --counts.success;
              break;
            case Outcome::kPending:
              break;
          }
        };
        drop(rm.counts);
        if (static_cast<size_t>(r.preference_class) <
            rm.per_class_counts.size()) {
          drop(rm.per_class_counts[static_cast<size_t>(r.preference_class)]);
        }
      }
      recs = std::move(finals);
    }

    // Remap the monolithic records' ids to parent trace positions (the
    // identity the sharded side carries): request id -> position in the
    // materialized trace; fault-injected queries stay kInvalidTxn.
    std::unordered_map<TxnId, TxnId> position;
    {
      std::vector<QueryRequest> materialized;
      const std::vector<QueryRequest>* qs = &c.workload.queries;
      if (c.workload.query_source != nullptr) {
        auto cursor = c.workload.query_source->NewCursor();
        QueryRequest q;
        while (cursor->Next(&q)) materialized.push_back(q);
        qs = &materialized;
      }
      for (size_t p = 0; p < qs->size(); ++p) {
        position.emplace((*qs)[p].id, static_cast<TxnId>(p));
      }
    }
    for (QueryRecord& r : result.reference.queries) {
      if (r.trace_id == kInvalidTxn) {
        r.id = kInvalidTxn;
      } else {
        auto it = position.find(r.trace_id);
        r.id = it == position.end() ? kInvalidTxn : it->second;
      }
    }
  } else {
    ShardedParams rp = sp;
    rp.jobs = 1;
    rp.reference_engines = true;
    rp.options = c.options;  // perturbations hit the optimized side only
    rp.perturb_admit_off_by_one = false;
    rp.engine.session.drop_retry_at = 0;
    auto reference = RunSharded(c.workload, c.policy, c.weights, rp);
    if (!reference.ok()) return reference.status();
    result.reference = ShardedToDiffRun(std::move(*reference));
  }

  Compare(c, opts, &result);
  Comparer cmp(&result, opts);
  cmp.Eq("shard.sub_conservation", shard_submitted, expected_subs);
  cmp.Eq("shard.parent_count", merged_submitted, parent_count);
  result.equivalent = result.divergence_count == 0;
  return result;
}

}  // namespace

StatusOr<DiffResult> RunDiff(const DiffCase& c, const DiffOptions& opts) {
  if (c.shards >= 1) return RunShardedDiff(c, opts);
  FaultSchedule schedule;
  const FaultSchedule* schedule_ptr = nullptr;
  if (!c.scenario.empty()) {
    StatusOr<FaultSchedule> compiled =
        FaultSchedule::Compile(c.scenario, c.workload, c.workload_seed);
    if (!compiled.ok()) return compiled.status();
    schedule = std::move(*compiled);
    schedule_ptr = &schedule;
  }

  DiffResult result;

  // When streaming, the optimized side consumes the identical trace through
  // a VectorQuerySource cursor (arrivals pushed lazily, slab slots recycled)
  // while the reference still sees the materialized list. The wrap happens
  // after fault compilation above, so load-step templates were drawn from
  // the same materialized queries for both sides.
  Workload streamed;
  const Workload* optimized_workload = &c.workload;
  if (c.stream_queries) {
    streamed = c.workload;
    ConvertToStreamingWorkload(&streamed);
    optimized_workload = &streamed;
  }

  {
    StatusOr<std::unique_ptr<Policy>> policy = MakePolicy(
        c.policy, c.weights, PerturbedOptions(c.options, opts.perturb));
    if (!policy.ok()) return policy.status();
    RecordingPolicy recording(policy->get(), opts.perturb);
    TimeSeriesRecorder series(c.weights);
    EngineParams params = c.engine;
    params.trace = nullptr;
    params.counters = nullptr;
    params.series = opts.compare_series ? &series : nullptr;
    params.faults = schedule_ptr;
    params.session.drop_retry_at =
        opts.perturb == Perturbation::kDropRetry ? 1 : 0;
    Engine engine(*optimized_workload, &recording, params);
    result.optimized.metrics = engine.Run();
    result.optimized.queries = std::move(recording.records);
    result.optimized.series = series.samples();
  }

  {
    StatusOr<std::unique_ptr<Policy>> policy =
        MakePolicy(c.policy, c.weights, c.options);
    if (!policy.ok()) return policy.status();
    RecordingPolicy recording(policy->get(), Perturbation::kNone);
    TimeSeriesRecorder series(c.weights);
    EngineParams params = c.engine;
    params.trace = nullptr;
    params.counters = nullptr;
    params.series = opts.compare_series ? &series : nullptr;
    params.faults = schedule_ptr;
    params.session.drop_retry_at = 0;  // perturbations hit optimized only
    ReferenceEngine engine(c.workload, &recording, params);
    result.reference.metrics = engine.Run();
    result.reference.queries = std::move(recording.records);
    result.reference.series = series.samples();
  }

  Compare(c, opts, &result);
  result.equivalent = result.divergence_count == 0;
  return result;
}

DiffCase ShrinkCase(const DiffCase& c, const DiffOptions& opts) {
  if (!Diverges(c, opts)) return c;
  DiffCase best = c;
  bool progress = true;
  while (progress) {
    progress = false;

    // Biggest single reduction first: drop the fault layer whole.
    if (!best.scenario.faults.empty()) {
      DiffCase cand = best;
      cand.scenario.faults.clear();
      if (Diverges(cand, opts)) {
        best = std::move(cand);
        progress = true;
        continue;
      }
    }

    // Halve the query-arrival list (keep either half).
    for (const bool drop_front : {true, false}) {
      const size_t half = best.workload.queries.size() / 2;
      if (half == 0) break;
      DiffCase cand = best;
      auto& q = cand.workload.queries;
      if (drop_front) {
        q.erase(q.begin(), q.begin() + static_cast<ptrdiff_t>(half));
      } else {
        q.erase(q.end() - static_cast<ptrdiff_t>(half), q.end());
      }
      if (Diverges(cand, opts)) {
        best = std::move(cand);
        progress = true;
        break;
      }
    }
    if (progress) continue;

    // Halve the fault list.
    for (const bool drop_front : {true, false}) {
      const size_t half = best.scenario.faults.size() / 2;
      if (half == 0) break;
      DiffCase cand = best;
      auto& f = cand.scenario.faults;
      if (drop_front) {
        f.erase(f.begin(), f.begin() + static_cast<ptrdiff_t>(half));
      } else {
        f.erase(f.end() - static_cast<ptrdiff_t>(half), f.end());
      }
      if (Diverges(cand, opts)) {
        best = std::move(cand);
        progress = true;
        break;
      }
    }
  }
  return best;
}

std::string DescribeCase(const DiffCase& c) {
  std::ostringstream os;
  os << "seed=" << c.gen_seed << " case=" << c.gen_index
     << " policy=" << c.policy
     << " index=" << (c.engine.use_admission_index ? 1 : 0)
     << " compact=" << (c.engine.compact_events ? 1 : 0)
     << " faults=" << (c.scenario.empty() ? 0 : 1)
     << " stream=" << (c.stream_queries ? 1 : 0)
     << " shards=" << c.shards << " sjobs=" << c.shard_jobs
     << " sessions=" << c.engine.session.sessions
     << " shed=" << c.engine.shed_watermark
     << " cache=" << c.engine.cache.capacity
     << " queries=" << c.workload.queries.size()
     << " fault_windows=" << c.scenario.faults.size();
  return os.str();
}

}  // namespace unitdb
