#include "unit/model/reference_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "unit/common/logging.h"
#include "unit/faults/schedule.h"
#include "unit/obs/counters.h"
#include "unit/obs/timeseries.h"
#include "unit/workload/query_source.h"

namespace unitdb {

ReferenceEngine::ReferenceEngine(const Workload& workload, Policy* policy,
                                 EngineParams params)
    : workload_(workload),
      policy_(policy),
      params_(params),
      db_(workload.num_items),
      locks_(workload.num_items),
      rng_(params.seed),
      pending_updates_per_item_(workload.num_items, 0) {
  assert(policy_ != nullptr);
  // The reference engine has no trace emission sites; a sink would silently
  // see nothing, so refuse it outright rather than half-support it.
  params_.trace = nullptr;
  db_.SetSourceHorizon(workload.duration);
  Status s = db_.ApplySpecs(workload.updates);
  if (!s.ok()) {
    UNIT_LOG(Error) << "bad workload update specs: " << s.ToString();
  }
  metrics_.duration_s = SimToSeconds(workload.duration);
  if (workload.query_source != nullptr) {
    materialized_queries_.reserve(
        static_cast<size_t>(workload.query_source->count()));
    QueryRequest q;
    auto cursor = workload.query_source->NewCursor();
    while (cursor->Next(&q)) materialized_queries_.push_back(q);
  }
  if (params_.faults != nullptr) {
    item_outage_.assign(workload.num_items, 0);
  }
  if (params_.session.sessions > 0) {
    session_patience_.assign(static_cast<size_t>(params_.session.sessions),
                             params_.session.patience);
  }
}

RunMetrics ReferenceEngine::Run() {
  assert(!ran_ && "ReferenceEngine::Run must be called at most once");
  ran_ = true;
  policy_->Attach(*this);
  ScheduleInitialEvents();
  while (!events_.empty()) {
    const RefEvent e = PopNext();
    assert(e.time >= now_);
    now_ = e.time;
    switch (e.type) {
      case EventType::kQueryArrival:
        HandleQueryArrival(e.payload);
        break;
      case EventType::kUpdateArrival:
        HandleUpdateArrival(static_cast<ItemId>(e.payload));
        break;
      case EventType::kCompletion:
        HandleCompletion(e.payload);
        break;
      case EventType::kQueryDeadline:
        HandleQueryDeadline(e.payload);
        break;
      case EventType::kControlTick:
        HandleControlTick();
        break;
      case EventType::kFaultEdge:
        HandleFaultEdge(e.payload);
        break;
      case EventType::kFaultQueryArrival:
        HandleFaultQueryArrival(e.payload);
        break;
      case EventType::kFaultUpdateArrival:
        HandleFaultUpdateArrival(e.payload);
        break;
      case EventType::kClientResubmit:
        HandleClientResubmit(e.payload);
        break;
    }
  }
  assert(running_ == nullptr);
  assert(ready_.empty());
  if (params_.series != nullptr || params_.counters != nullptr) {
    FinalizeObservability();
  }
  metrics_.per_item_accesses.resize(db_.num_items());
  metrics_.per_item_applied_updates.resize(db_.num_items());
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    metrics_.per_item_accesses[i] = db_.item(i).query_accesses;
    metrics_.per_item_applied_updates[i] = db_.item(i).applied_updates;
  }
  return metrics_;
}

void ReferenceEngine::Push(SimTime time, EventType type, int64_t payload) {
  RefEvent e;
  e.time = time;
  e.seq = next_seq_++;
  e.type = type;
  e.payload = payload;
  events_.push_back(e);
}

ReferenceEngine::RefEvent ReferenceEngine::PopNext() {
  assert(!events_.empty());
  size_t best = 0;
  for (size_t i = 1; i < events_.size(); ++i) {
    const RefEvent& a = events_[i];
    const RefEvent& b = events_[best];
    if (a.time < b.time || (a.time == b.time && a.seq < b.seq)) best = i;
  }
  const RefEvent e = events_[best];
  events_.erase(events_.begin() + static_cast<ptrdiff_t>(best));
  return e;
}

void ReferenceEngine::CancelEvent(EventType type, TxnId id) {
  auto it = std::find_if(events_.begin(), events_.end(),
                         [type, id](const RefEvent& e) {
                           return e.type == type && e.payload == id;
                         });
  if (it != events_.end()) events_.erase(it);
}

bool ReferenceEngine::Before(const Transaction& a,
                             const Transaction& b) const {
  if (params_.discipline == QueueDiscipline::kEdf) {
    if (a.absolute_deadline() != b.absolute_deadline()) {
      return a.absolute_deadline() < b.absolute_deadline();
    }
  }
  return a.id() < b.id();
}

bool ReferenceEngine::HigherPriority(const Transaction& a,
                                     const Transaction& b) const {
  if (a.is_update() != b.is_update()) return a.is_update();
  return Before(a, b);
}

Transaction* ReferenceEngine::ReadyTop() const {
  Transaction* best = nullptr;
  for (Transaction* t : ready_) {
    if (best == nullptr || HigherPriority(*t, *best)) best = t;
  }
  return best;
}

void ReferenceEngine::ReadyInsert(Transaction* t) { ready_.push_back(t); }

void ReferenceEngine::ReadyRemove(Transaction* t) {
  auto it = std::find(ready_.begin(), ready_.end(), t);
  assert(it != ready_.end());
  ready_.erase(it);
}

SimDuration ReferenceEngine::QueuedUpdateWork() const {
  SimDuration total = 0;
  for (const Transaction* t : ready_) {
    if (t->is_update()) total += t->remaining();
  }
  return total;
}

int ReferenceEngine::ReadyQueryCount() const {
  int n = 0;
  for (const Transaction* t : ready_) n += t->is_query() ? 1 : 0;
  return n;
}

int ReferenceEngine::ReadyUpdateCount() const {
  int n = 0;
  for (const Transaction* t : ready_) n += t->is_update() ? 1 : 0;
  return n;
}

void ReferenceEngine::ForEachReadyQueryRaw(ReadyQueryVisitor visit,
                                           void* ctx) const {
  std::vector<const Transaction*> queries;
  for (const Transaction* t : ready_) {
    if (t->is_query()) queries.push_back(t);
  }
  std::sort(queries.begin(), queries.end(),
            [this](const Transaction* a, const Transaction* b) {
              return Before(*a, *b);
            });
  for (const Transaction* t : queries) visit(ctx, *t);
}

Transaction* ReferenceEngine::NewQueryTxn(const QueryRequest& request) {
  const TxnId id = static_cast<TxnId>(txns_.size());
  SimDuration exec = request.exec;
  double freshness_req = request.freshness_req;
  if (params_.faults != nullptr) {
    // Guarded exactly like the optimized engine so an inactive fault layer
    // performs zero divergent operations.
    if (fault_exec_scale_ != 1.0) {
      exec = std::max<SimDuration>(
          1, static_cast<SimDuration>(static_cast<double>(exec) *
                                      fault_exec_scale_));
    }
    if (fault_freshness_shift_ != 0.0) {
      freshness_req = std::min(
          1.0, std::max(0.0, freshness_req + fault_freshness_shift_));
    }
  }
  txns_.push_back(Transaction::MakeQuery(
      id, request.arrival, exec, request.relative_deadline, freshness_req,
      request.items, request.preference_class));
  Transaction* t = &txns_.back();
  t->set_trace_id(request.id);
  if (params_.estimate_noise_sigma > 0.0) {
    const double factor = rng_.LogNormal(0.0, params_.estimate_noise_sigma);
    t->set_estimate(std::max<SimDuration>(
        1, static_cast<SimDuration>(static_cast<double>(t->exec_time()) *
                                    factor)));
  }
  return t;
}

Transaction* ReferenceEngine::NewUpdateTxn(ItemId item,
                                           SimDuration relative_deadline,
                                           bool on_demand) {
  const TxnId id = static_cast<TxnId>(txns_.size());
  SimDuration exec = db_.item(item).update_exec;
  if (params_.faults != nullptr && fault_exec_scale_ != 1.0) {
    exec = std::max<SimDuration>(
        1, static_cast<SimDuration>(static_cast<double>(exec) *
                                    fault_exec_scale_));
  }
  txns_.push_back(Transaction::MakeUpdate(
      id, now_, exec, std::max<SimDuration>(1, relative_deadline), item,
      on_demand));
  ++pending_updates_per_item_[item];
  ++metrics_.updates_generated;
  return &txns_.back();
}

void ReferenceEngine::ScheduleInitialEvents() {
  // Push order is the FIFO tie-break contract shared with the optimized
  // engine: workload events first, then control ticks, then fault events.
  const std::vector<QueryRequest>& queries = Queries();
  for (size_t i = 0; i < queries.size(); ++i) {
    Push(queries[i].arrival, EventType::kQueryArrival,
         static_cast<int64_t>(i));
  }
  if (policy_->UsesPeriodicUpdates()) {
    for (const auto& spec : workload_.updates) {
      if (spec.ideal_period <= 0 || spec.ideal_period >= kNoUpdates) continue;
      if (spec.phase < workload_.duration) {
        Push(spec.phase, EventType::kUpdateArrival, spec.item);
      }
    }
  }
  if (params_.control_period > 0 &&
      params_.control_period <= workload_.duration) {
    Push(params_.control_period, EventType::kControlTick, 0);
  }
  if (params_.faults != nullptr) {
    const FaultSchedule& faults = *params_.faults;
    for (size_t i = 0; i < faults.edges().size(); ++i) {
      Push(faults.edges()[i].time, EventType::kFaultEdge,
           static_cast<int64_t>(i));
    }
    for (size_t i = 0; i < faults.injected_queries().size(); ++i) {
      Push(faults.injected_queries()[i].arrival,
           EventType::kFaultQueryArrival, static_cast<int64_t>(i));
    }
    for (size_t i = 0; i < faults.injected_updates().size(); ++i) {
      Push(faults.injected_updates()[i].time, EventType::kFaultUpdateArrival,
           static_cast<int64_t>(i));
    }
  }
}

void ReferenceEngine::HandleQueryArrival(int64_t query_index) {
  AdmitArrivedQuery(Queries()[query_index]);
}

void ReferenceEngine::AdmitArrivedQuery(const QueryRequest& request,
                                        bool resubmit) {
  Transaction* t = NewQueryTxn(request);
  ++metrics_.counts.submitted;
  if (!resubmit && params_.session.sessions > 0 &&
      t->trace_id() != kInvalidTxn) {
    ++metrics_.session_requests;
    RefChain c;
    c.trace_id = t->trace_id();
    c.request = request;
    chains_.push_back(std::move(c));
  }
  // Result cache sits before admission control, as in the optimized engine:
  // a covered, fresh-enough query is answered immediately and never enters
  // the ready queue (its deadline event is never pushed).
  if (params_.cache.capacity > 0 && TryServeFromCache(t)) return;
  if (!policy_->AdmitQuery(*this, *t)) {
    t->set_state(TxnState::kAborted);
    ResolveQuery(t, Outcome::kRejected);
    return;
  }
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  Push(t->absolute_deadline(), EventType::kQueryDeadline, t->id());
  if (params_.shed_watermark > 0) MaybeShed();
  TryDispatch();
}

void ReferenceEngine::MaybeShed() {
  while (ReadyQueryCount() > params_.shed_watermark) {
    Transaction* victim = nullptr;
    for (Transaction* t : ready_) {
      if (!t->is_query()) continue;
      if (victim == nullptr || t->arrival() < victim->arrival() ||
          (t->arrival() == victim->arrival() && t->id() < victim->id())) {
        victim = t;
      }
    }
    assert(victim != nullptr && "query count > 0 implies a ready query");
    ++metrics_.queries_shed;
    // Erase the victim's pending deadline event eagerly, as the commit path
    // does: a stale deadline left behind would advance this engine's clock
    // (and the final window flush) past the optimized engine's, which skips
    // tombstoned events without touching now_.
    CancelEvent(EventType::kQueryDeadline, victim->id());
    AbortQuery(victim, Outcome::kRejected);
  }
}

bool ReferenceEngine::RefCacheCovers(const Transaction& t) const {
  for (ItemId item : t.items()) {
    if (std::find(cache_items_.begin(), cache_items_.end(), item) ==
        cache_items_.end()) {
      return false;
    }
  }
  return true;
}

void ReferenceEngine::RefCachePopulate(ItemId item) {
  if (std::find(cache_items_.begin(), cache_items_.end(), item) !=
      cache_items_.end()) {
    return;  // present entries keep their original population slot
  }
  if (cache_items_.size() >= static_cast<size_t>(params_.cache.capacity)) {
    cache_items_.erase(cache_items_.begin());  // FIFO: evict the oldest
  }
  cache_items_.push_back(item);
}

bool ReferenceEngine::RefCacheInvalidate(ItemId item) {
  auto it = std::find(cache_items_.begin(), cache_items_.end(), item);
  if (it == cache_items_.end()) return false;
  cache_items_.erase(it);
  return true;
}

bool ReferenceEngine::TryServeFromCache(Transaction* t) {
  if (!RefCacheCovers(*t)) {
    ++metrics_.cache_misses;
    return false;
  }
  // Entries are invalidated on every newer install, so each covered item's
  // live Udrop is exactly the staleness of its cached data (see the
  // optimized Engine::TryServeFromCache).
  int64_t udrop = 0;
  for (ItemId item : t->items()) {
    udrop = std::max(udrop, db_.Udrop(item, now_));
  }
  const double freshness = 1.0 / (1.0 + static_cast<double>(udrop));
  if (freshness < t->freshness_req() ||
      (params_.cache.max_hit_udrop >= 0 &&
       udrop > params_.cache.max_hit_udrop)) {
    ++metrics_.cache_stale_skips;
    return false;
  }
  ++metrics_.cache_hits;
  t->set_observed_freshness(freshness);
  t->set_state(TxnState::kCommitted);
  t->set_commit_time(now_);
  for (ItemId item : t->items()) db_.RecordAccess(item);
  metrics_.query_response_s.Add(SimToSeconds(now_ - t->arrival()));
  metrics_.query_freshness.Add(freshness);
  ResolveQuery(t, Outcome::kSuccess);
  return true;
}

void ReferenceEngine::HandleClientResubmit(int64_t resubmit_index) {
  QueryRequest request =
      resubmits_[static_cast<size_t>(resubmit_index)].request;
  request.arrival = now_;
  AdmitArrivedQuery(request, /*resubmit=*/true);
}

void ReferenceEngine::HandleUpdateArrival(ItemId item) {
  if (now_ >= workload_.duration) return;
  DataItemState& state = db_.mutable_item(item);
  const SimTime next = now_ + state.ideal_period;
  if (next < workload_.duration) {
    Push(next, EventType::kUpdateArrival, item);
  }
  if (params_.faults != nullptr && item_outage_[item] > 0) {
    ++metrics_.fault_suppressed_updates;
    return;
  }
  policy_->OnUpdateSourceArrival(*this, item);
  const bool due = state.last_pull < 0 ||
                   (now_ - state.last_pull) + state.ideal_period / 2 >=
                       state.current_period;
  if (!due) {
    ++metrics_.updates_dropped;
    return;
  }
  state.last_pull = now_;
  Transaction* t = NewUpdateTxn(item, state.current_period,
                                /*on_demand=*/false);
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  TryDispatch();
}

TxnId ReferenceEngine::IssueOnDemandUpdate(ItemId item) {
  const DataItemState& state = db_.item(item);
  Transaction* t =
      NewUpdateTxn(item, std::max<SimDuration>(1, state.update_exec),
                   /*on_demand=*/true);
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  ++metrics_.on_demand_updates;
  return t->id();
}

void ReferenceEngine::HandleCompletion(TxnId id) {
  Transaction* t = &txns_[id];
  // Stale completions are erased eagerly, so a popped one is always live.
  if (t != running_ || t->state() != TxnState::kRunning) {
    assert(false && "stale completion event survived eager cancellation");
    return;
  }
  CompleteRunning(t);
  TryDispatch();
}

void ReferenceEngine::HandleQueryDeadline(TxnId id) {
  Transaction* t = &txns_[id];
  if (t->Terminal()) return;
  AbortQuery(t, Outcome::kDeadlineMiss);
  TryDispatch();
}

void ReferenceEngine::HandleControlTick() {
  policy_->OnControlTick(*this);
  if (params_.series != nullptr) RecordWindowSample();
  const SimTime next = now_ + params_.control_period;
  if (next <= workload_.duration) {
    Push(next, EventType::kControlTick, 0);
  }
}

void ReferenceEngine::HandleFaultEdge(int64_t edge_index) {
  const FaultEdge& edge = params_.faults->edges()[edge_index];
  ++metrics_.fault_edges;
  switch (edge.kind) {
    case FaultKind::kUpdateOutage:
      for (int32_t k = 0; k < edge.item_count; ++k) {
        const ItemId item = params_.faults->items()[edge.item_begin + k];
        item_outage_[item] += edge.start ? 1 : -1;
      }
      break;
    case FaultKind::kServiceSlowdown:
      fault_exec_scale_ = edge.start ? edge.magnitude : 1.0;
      break;
    case FaultKind::kFreshnessShift:
      fault_freshness_shift_ = edge.start ? edge.magnitude : 0.0;
      break;
    case FaultKind::kUpdateBurst:
    case FaultKind::kLoadStep:
    case FaultKind::kRetryStorm:
      break;
  }
}

void ReferenceEngine::HandleFaultQueryArrival(int64_t injected_index) {
  ++metrics_.fault_injected_queries;
  AdmitArrivedQuery(params_.faults->injected_queries()[injected_index]);
}

void ReferenceEngine::HandleFaultUpdateArrival(int64_t injected_index) {
  if (now_ >= workload_.duration) return;
  const ItemId item = params_.faults->injected_updates()[injected_index].item;
  if (item_outage_[item] > 0) {
    ++metrics_.fault_suppressed_updates;
    return;
  }
  DataItemState& state = db_.mutable_item(item);
  policy_->OnUpdateSourceArrival(*this, item);
  state.last_pull = now_;
  Transaction* t = NewUpdateTxn(item, state.current_period,
                                /*on_demand=*/false);
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  ++metrics_.fault_injected_updates;
  TryDispatch();
}

SimDuration ReferenceEngine::RunningRemaining() const {
  if (running_ == nullptr) return 0;
  return running_->remaining() - (now_ - run_start_);
}

void ReferenceEngine::TryDispatch() {
  while (true) {
    Transaction* top = ReadyTop();
    if (running_ != nullptr) {
      if (top == nullptr || !HigherPriority(*top, *running_)) {
        return;
      }
      PreemptRunning();
      continue;
    }
    if (top == nullptr) return;
    ReadyRemove(top);
    if (top->is_query() && !policy_->BeforeQueryDispatch(*this, *top)) {
      top->set_state(TxnState::kReady);
      ReadyInsert(top);
      Transaction* new_top = ReadyTop();
      if (new_top == top) {
        UNIT_LOG(Error) << "policy postponed query " << top->id()
                        << " without enqueueing higher-priority work";
        ReadyRemove(top);
        // Fall through and run it anyway to preserve progress.
      } else {
        continue;
      }
    }
    if (!top->holds_locks() && !AcquireLocks(top)) {
      continue;  // blocked; try the next candidate
    }
    StartRunning(top);
    return;
  }
}

void ReferenceEngine::StartRunning(Transaction* t) {
  t->set_state(TxnState::kRunning);
  t->BumpDispatchGeneration();
  running_ = t;
  run_start_ = now_;
  Push(now_ + t->remaining(), EventType::kCompletion, t->id());
}

void ReferenceEngine::PreemptRunning() {
  Transaction* t = running_;
  const SimDuration ran = now_ - run_start_;
  metrics_.busy_s += SimToSeconds(ran);
  t->set_remaining(t->remaining() - ran);
  CancelEvent(EventType::kCompletion, t->id());
  t->set_state(TxnState::kReady);
  running_ = nullptr;
  ReadyInsert(t);
  ++metrics_.preemptions;
}

bool ReferenceEngine::AcquireLocks(Transaction* t) {
  if (t->is_query()) {
    if (locks_.TryAcquireSharedAll(t->id(), t->items())) {
      t->set_holds_locks(true);
      return true;
    }
    BlockOnLocks(t);
    return false;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    LockManager::XAttempt result =
        locks_.TryAcquireExclusive(t->id(), t->update_item());
    if (result.granted) {
      t->set_holds_locks(true);
      return true;
    }
    if (result.blocked_by_exclusive) {
      BlockOnLocks(t);
      return false;
    }
    for (TxnId victim : result.shared_holders) {
      RestartQuery(&txns_[victim]);
    }
  }
  UNIT_LOG(Error) << "exclusive lock acquisition failed twice for txn "
                  << t->id();
  BlockOnLocks(t);
  return false;
}

void ReferenceEngine::BlockOnLocks(Transaction* t) {
  assert(!t->holds_locks());
  t->set_state(TxnState::kBlocked);
  blocked_.push_back(t);
}

void ReferenceEngine::UnblockAll() {
  if (blocked_.empty()) return;
  for (Transaction* t : blocked_) {
    if (t->Terminal()) continue;  // deadline fired while blocked
    t->set_state(TxnState::kReady);
    ReadyInsert(t);
  }
  blocked_.clear();
}

void ReferenceEngine::RestartQuery(Transaction* t) {
  assert(t->is_query());
  assert(t->state() == TxnState::kReady &&
         "2PL-HP victims sit in the ready queue");
  ReadyRemove(t);
  ReleaseLocksOf(t);
  t->ResetWork();
  t->IncrementRestarts();
  t->BumpDispatchGeneration();
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  ++metrics_.lock_restarts;
}

void ReferenceEngine::AbortQuery(Transaction* t, Outcome outcome) {
  assert(t->is_query());
  if (t == running_) {
    const SimDuration ran = now_ - run_start_;
    metrics_.busy_s += SimToSeconds(ran);
    t->set_remaining(t->remaining() - ran);
    CancelEvent(EventType::kCompletion, t->id());
    running_ = nullptr;
  } else if (t->state() == TxnState::kReady) {
    ReadyRemove(t);
  } else if (t->state() == TxnState::kBlocked) {
    auto it = std::find(blocked_.begin(), blocked_.end(), t);
    if (it != blocked_.end()) blocked_.erase(it);
  }
  ReleaseLocksOf(t);
  t->set_state(TxnState::kAborted);
  ResolveQuery(t, outcome);
}

void ReferenceEngine::ResolveQuery(Transaction* t, Outcome outcome) {
  t->set_outcome(outcome);
  const size_t cls = static_cast<size_t>(t->preference_class());
  if (metrics_.per_class_counts.size() <= cls) {
    metrics_.per_class_counts.resize(cls + 1);
  }
  OutcomeCounts& class_counts = metrics_.per_class_counts[cls];
  ++class_counts.submitted;
  switch (outcome) {
    case Outcome::kSuccess:
      ++metrics_.counts.success;
      ++class_counts.success;
      break;
    case Outcome::kRejected:
      ++metrics_.counts.rejected;
      ++class_counts.rejected;
      break;
    case Outcome::kDeadlineMiss:
      ++metrics_.counts.dmf;
      ++class_counts.dmf;
      break;
    case Outcome::kDataStale:
      ++metrics_.counts.dsf;
      ++class_counts.dsf;
      break;
    case Outcome::kPending:
      assert(false && "resolving with pending outcome");
      break;
  }
  policy_->OnQueryResolved(*this, *t, outcome);
  if (params_.session.sessions > 0 && t->trace_id() != kInvalidTxn) {
    OnSessionOutcome(t, outcome);
  }
}

void ReferenceEngine::OnSessionOutcome(Transaction* t, Outcome outcome) {
  // Naive mirror of SessionPool::OnOutcome (session/session.h): same
  // decision order — done / retries exhausted / patience / defect hook /
  // retry — and the same pure SessionOf / RetryDelay arithmetic, but the
  // chain is found by a linear scan instead of a hash lookup.
  const TxnId trace_id = t->trace_id();
  size_t idx = chains_.size();
  for (size_t i = 0; i < chains_.size(); ++i) {
    if (chains_[i].trace_id == trace_id) {
      idx = i;
      break;
    }
  }
  if (idx == chains_.size()) return;  // chain already dropped
  const SessionParams& sp = params_.session;
  const int session = SessionOf(sp.seed, trace_id, sp.sessions);
  RefChain& c = chains_[idx];
  const auto drop_chain = [this, idx] {
    chains_.erase(chains_.begin() + static_cast<ptrdiff_t>(idx));
  };
  if (outcome == Outcome::kSuccess || outcome == Outcome::kDataStale) {
    ++metrics_.session_successes;
    drop_chain();
    return;
  }
  if (c.retries >= sp.max_retries) {
    ++metrics_.session_abandons;
    drop_chain();
    return;
  }
  const SimDuration delay =
      RetryDelay(sp, session, trace_id, c.retries, c.prev_delay);
  if (sp.patience > 0) {
    SimDuration& budget = session_patience_[static_cast<size_t>(session)];
    if (budget < delay) {
      ++metrics_.session_abandons;
      drop_chain();
      return;
    }
    budget -= delay;
  }
  if (sp.drop_retry_at > 0 && ++retry_decisions_ == sp.drop_retry_at) {
    drop_chain();  // the injected defect: decision silently dropped
    return;
  }
  c.retries += 1;
  c.prev_delay = delay;
  SessionAttempt attempt;
  attempt.request = c.request;
  attempt.attempt = c.retries + 1;
  attempt.prev_delay = delay;
  resubmits_.push_back(std::move(attempt));
  Push(now_ + delay, EventType::kClientResubmit,
       static_cast<int64_t>(resubmits_.size() - 1));
  ++metrics_.session_retries;
  metrics_.session_retry_delay_s.Add(SimToSeconds(delay));
}

void ReferenceEngine::ReleaseLocksOf(Transaction* t) {
  if (!t->holds_locks()) return;
  locks_.ReleaseAll(t->id());
  t->set_holds_locks(false);
  UnblockAll();
}

void ReferenceEngine::CompleteRunning(Transaction* t) {
  const SimDuration ran = now_ - run_start_;
  metrics_.busy_s += SimToSeconds(ran);
  t->set_remaining(0);
  running_ = nullptr;
  t->set_state(TxnState::kCommitted);
  t->set_commit_time(now_);
  if (t->is_update()) {
    db_.ApplyUpdate(t->update_item(), t->arrival());
    --pending_updates_per_item_[t->update_item()];
    ++metrics_.update_commits;
    metrics_.update_latency_s.Add(SimToSeconds(now_ - t->arrival()));
    if (params_.cache.capacity > 0 && RefCacheInvalidate(t->update_item())) {
      ++metrics_.cache_invalidations;
    }
    ReleaseLocksOf(t);
    policy_->OnUpdateCommit(*this, *t);
    return;
  }
  // Query commit: its deadline event is still pending; erase it eagerly
  // (the optimized engine tombstones it instead).
  CancelEvent(EventType::kQueryDeadline, t->id());
  const double freshness = db_.QueryFreshness(t->items(), now_);
  t->set_observed_freshness(freshness);
  for (ItemId item : t->items()) db_.RecordAccess(item);
  if (params_.cache.capacity > 0) {
    for (ItemId item : t->items()) RefCachePopulate(item);
  }
  ReleaseLocksOf(t);
  metrics_.query_response_s.Add(SimToSeconds(now_ - t->arrival()));
  metrics_.query_freshness.Add(freshness);
  const Outcome outcome = freshness >= t->freshness_req()
                              ? Outcome::kSuccess
                              : Outcome::kDataStale;
  ResolveQuery(t, outcome);
}

void ReferenceEngine::RecordWindowSample() {
  WindowSample s;
  s.t_s = SimToSeconds(now_);
  s.window = metrics_.counts - series_last_counts_;
  series_last_counts_ = metrics_.counts;
  const double busy = BusySeconds();
  const double window_s = SimToSeconds(now_ - series_last_sample_);
  s.utilization =
      window_s > 0.0 ? (busy - series_last_busy_) / window_s : 0.0;
  series_last_busy_ = busy;
  series_last_sample_ = now_;
  s.ready_queries = ReadyQueryCount();
  s.ready_updates = ReadyUpdateCount();
  udrop_scratch_.clear();
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    udrop_scratch_.push_back(db_.Udrop(i, now_));
  }
  if (!udrop_scratch_.empty()) {
    std::sort(udrop_scratch_.begin(), udrop_scratch_.end());
    const size_t n = udrop_scratch_.size();
    auto rank = [n](int p) {
      return (static_cast<size_t>(p) * n + 99) / 100 - 1;
    };
    s.udrop_p50 = static_cast<double>(udrop_scratch_[rank(50)]);
    s.udrop_p90 = static_cast<double>(udrop_scratch_[rank(90)]);
    s.udrop_max = udrop_scratch_.back();
  }
  s.admission_knob = policy_->AdmissionKnob();
  s.degraded_items = db_.DegradedCount();
  s.retries = metrics_.session_retries - series_last_retries_;
  s.abandons = metrics_.session_abandons - series_last_abandons_;
  s.shed = metrics_.queries_shed - series_last_shed_;
  series_last_retries_ = metrics_.session_retries;
  series_last_abandons_ = metrics_.session_abandons;
  series_last_shed_ = metrics_.queries_shed;
  s.cache_hits = metrics_.cache_hits - series_last_cache_hits_;
  s.cache_invalidations =
      metrics_.cache_invalidations - series_last_cache_invalidations_;
  series_last_cache_hits_ = metrics_.cache_hits;
  series_last_cache_invalidations_ = metrics_.cache_invalidations;
  params_.series->Record(s);
}

void ReferenceEngine::FinalizeObservability() {
  if (params_.series != nullptr && now_ > series_last_sample_) {
    RecordWindowSample();
  }
  if (params_.counters != nullptr) {
    metrics_.obs_counters = params_.counters->CounterSnapshot();
    metrics_.obs_gauges = params_.counters->GaugeSnapshot();
  }
}

}  // namespace unitdb
