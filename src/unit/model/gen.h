#ifndef UNIT_MODEL_GEN_H_
#define UNIT_MODEL_GEN_H_

#include <cstdint>

#include "unit/model/diff.h"

namespace unitdb {

/// Derives one fully-specified differential-test case from (seed, index):
/// a random workload (items, update sources, heavy-tailed query trace), a
/// random fault scenario, random engine tunables (control period, estimate
/// noise, occasionally FCFS dispatch), random USM weights, and random policy
/// options. Deterministic: the same pair always yields the same case, on any
/// platform, so every failure line "seed=S case=I" replays exactly.
///
/// The implementation-knob matrix rotates with `index` so a linear sweep
/// covers {policy x use_admission_index x compact_events x faults on/off}:
///
///   policy              = {unit, imu, odu, qmf}[index % 4]
///   use_admission_index = (index / 4) % 2 == 0
///   compact_events      = (index / 8) % 2 == 0
///   faults attached     = (index / 16) % 2 == 0
///   stream_queries      = (index / 32) % 2 == 0
///   shards              = (index / 64) % 4   (0 = monolithic diff)
///   shard_jobs          = (index / 128) % 2 == 0 ? 1 : 2
///   sessions attached   = (index / 256) % 2 == 1  (closed-loop clients)
///   shed watermark set  = (index / 512) % 2 == 1  (overload shedding)
///   result cache on     = (index / 1024) % 2 == 1 (freshness-aware cache)
///
/// Everything else is drawn from Rng(SplitMix64(seed ^ SplitMix64(index))).
/// The knob rotations are index arithmetic only (no RNG draw), so adding a
/// dimension never changes the workloads of existing (seed, case) pairs.
DiffCase GenerateCase(uint64_t seed, int64_t index);

}  // namespace unitdb

#endif  // UNIT_MODEL_GEN_H_
