#include "unit/model/gen.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "unit/common/rng.h"

namespace unitdb {
namespace {

const char* const kPolicies[] = {"unit", "imu", "odu", "qmf"};

/// Comma-separated selection of 1..3 distinct sourced items, or "*".
std::string DrawItemSelection(Rng& rng, const std::vector<ItemId>& sourced) {
  if (rng.Bernoulli(0.3)) return "*";
  const int n = static_cast<int>(
      rng.UniformInt(1, std::min<int64_t>(3, sourced.size())));
  std::vector<ItemId> picks;
  while (static_cast<int>(picks.size()) < n) {
    ItemId it = sourced[rng.UniformInt(0, sourced.size() - 1)];
    if (std::find(picks.begin(), picks.end(), it) == picks.end()) {
      picks.push_back(it);
    }
  }
  std::ostringstream os;
  for (size_t i = 0; i < picks.size(); ++i) {
    if (i) os << ",";
    os << picks[i];
  }
  return os.str();
}

FaultSpec DrawWindow(Rng& rng, FaultKind kind, double dur_s) {
  FaultSpec f;
  f.kind = kind;
  f.start_s = rng.Uniform(0.05, 0.6) * dur_s;
  f.end_s = f.start_s + rng.Uniform(0.1, 0.35) * dur_s;
  if (f.end_s > dur_s) f.end_s = dur_s;
  return f;
}

}  // namespace

DiffCase GenerateCase(uint64_t seed, int64_t index) {
  DiffCase c;
  c.gen_seed = seed;
  c.gen_index = index;
  Rng rng(SplitMix64(seed ^ SplitMix64(static_cast<uint64_t>(index))));

  // ---- Implementation-knob matrix (rotates with index; see gen.h). ----
  c.policy = kPolicies[index % 4];
  c.engine.use_admission_index = (index / 4) % 2 == 0;
  c.engine.compact_events = (index / 8) % 2 == 0;
  const bool want_faults = (index / 16) % 2 == 0;
  // Pure rotation (no RNG draw): workloads stay identical to pre-streaming
  // corpora, so a replayed seed/case pair reproduces the same trace.
  c.stream_queries = (index / 32) % 2 == 0;
  // Sharded dimension, also a pure rotation: 0 (monolithic diff), 1
  // (sharded-vs-monolithic identity), 2, 3; jobs alternates per 128-block.
  c.shards = static_cast<int>((index / 64) % 4);
  c.shard_jobs = (index / 128) % 2 == 0 ? 1 : 2;

  // ---- Workload. ----
  Workload& w = c.workload;
  w.num_items = static_cast<int>(rng.UniformInt(2, 48));
  const double dur_s = rng.Uniform(8.0, 30.0);
  w.duration = SecondsToSim(dur_s);
  w.query_trace_name = "gen";
  w.update_trace_name = "gen";

  std::vector<ItemId> sourced;
  for (ItemId it = 0; it < w.num_items; ++it) {
    if (!rng.Bernoulli(0.75)) continue;
    ItemUpdateSpec u;
    u.item = it;
    const double period_s = rng.Uniform(0.2, 5.0);
    u.ideal_period = SecondsToSim(period_s);
    u.update_exec = SecondsToSim(rng.Uniform(0.001, 0.060));
    u.phase = std::min<SimTime>(SecondsToSim(rng.Uniform(0.0, period_s)),
                                u.ideal_period - 1);
    w.updates.push_back(u);
    sourced.push_back(it);
  }

  const int nq = static_cast<int>(rng.UniformInt(20, 250));
  for (int i = 0; i < nq; ++i) {
    QueryRequest q;
    q.arrival = SecondsToSim(rng.Uniform(0.0, 0.95 * dur_s));
    const double exec_s = rng.BoundedPareto(1.2, 0.002, 0.300);
    q.exec = std::max<SimDuration>(1, SecondsToSim(exec_s));
    q.relative_deadline = std::max<SimDuration>(
        q.exec + 1,
        SecondsToSim(exec_s * rng.Uniform(2.0, 12.0) +
                     rng.Uniform(0.01, 0.5)));
    q.freshness_req = rng.Uniform(0.5, 0.995);
    const int nitems = static_cast<int>(
        rng.UniformInt(1, std::min<int64_t>(4, w.num_items)));
    while (static_cast<int>(q.items.size()) < nitems) {
      ItemId it = static_cast<ItemId>(rng.UniformInt(0, w.num_items - 1));
      if (std::find(q.items.begin(), q.items.end(), it) == q.items.end()) {
        q.items.push_back(it);
      }
    }
    q.preference_class = static_cast<int>(rng.UniformInt(0, 2));
    w.queries.push_back(q);
  }
  std::stable_sort(
      w.queries.begin(), w.queries.end(),
      [](const QueryRequest& a, const QueryRequest& b) {
        return a.arrival < b.arrival;
      });
  for (size_t i = 0; i < w.queries.size(); ++i) {
    w.queries[i].id = static_cast<TxnId>(i);
  }

  // ---- Fault scenario (compiled by the harness when non-empty). ----
  // At most one window per scalar kind, so the scenario always validates
  // (overlapping same-kind scalar windows are rejected by Compile).
  if (want_faults) {
    c.scenario.name = "fuzz";
    c.scenario.seed = static_cast<uint64_t>(rng.UniformInt(1, 1 << 30));
    if (!sourced.empty() && rng.Bernoulli(0.7)) {
      FaultSpec f = DrawWindow(rng, FaultKind::kUpdateOutage, dur_s);
      f.items = DrawItemSelection(rng, sourced);
      c.scenario.faults.push_back(f);
    }
    if (!sourced.empty() && rng.Bernoulli(0.5)) {
      FaultSpec f = DrawWindow(rng, FaultKind::kUpdateBurst, dur_s);
      f.items = DrawItemSelection(rng, sourced);
      f.rate_hz = rng.Uniform(0.5, 5.0);
      c.scenario.faults.push_back(f);
    }
    if (rng.Bernoulli(0.5)) {
      FaultSpec f = DrawWindow(rng, FaultKind::kLoadStep, dur_s);
      f.rate_hz = rng.Uniform(1.0, 20.0);
      c.scenario.faults.push_back(f);
    }
    if (rng.Bernoulli(0.5)) {
      FaultSpec f = DrawWindow(rng, FaultKind::kServiceSlowdown, dur_s);
      f.factor = rng.Uniform(1.2, 3.0);
      c.scenario.faults.push_back(f);
    }
    if (rng.Bernoulli(0.5)) {
      FaultSpec f = DrawWindow(rng, FaultKind::kFreshnessShift, dur_s);
      f.delta = rng.Uniform(0.05, 0.3) * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
      c.scenario.faults.push_back(f);
    }
    if (c.scenario.faults.empty()) {
      FaultSpec f = DrawWindow(rng, FaultKind::kLoadStep, dur_s);
      f.rate_hz = rng.Uniform(1.0, 20.0);
      c.scenario.faults.push_back(f);
    }
  }

  // ---- Engine tunables. ----
  const double control_periods[] = {1.0, 0.5, 0.25};
  c.engine.control_period =
      SecondsToSim(control_periods[rng.UniformInt(0, 2)]);
  c.engine.estimate_noise_sigma = rng.Bernoulli(0.3) ? 0.3 : 0.0;
  c.engine.seed = rng.NextU64();
  c.engine.discipline =
      rng.Bernoulli(0.15) ? QueueDiscipline::kFcfs : QueueDiscipline::kEdf;
  c.workload_seed = static_cast<uint64_t>(rng.UniformInt(1, 1000000));

  // ---- USM weights and policy options. ----
  if (!rng.Bernoulli(0.25)) {  // 25% naive (all-zero penalties)
    c.weights.c_r = rng.Uniform(0.0, 2.0);
    c.weights.c_fm = rng.Uniform(0.0, 2.0);
    c.weights.c_fs = rng.Uniform(0.0, 2.0);
  }
  c.options.unit.admission.initial_c_flex = rng.Uniform(0.5, 2.0);
  c.options.unit.admission.usm_check_enabled = rng.Bernoulli(0.8);
  c.options.unit.seed = rng.NextU64();

  // ---- Closed-loop session layer. Knobs are drawn unconditionally and
  // strictly after every pre-existing draw, so earlier (seed, case) pairs
  // keep byte-identical workloads and tunables; the pure index rotations
  // only decide whether the drawn values are applied.
  const bool sessions_on = (index / 256) % 2 == 1;
  const bool shed_on = (index / 512) % 2 == 1;
  SessionParams sess;
  sess.sessions = static_cast<int>(rng.UniformInt(1, 8));
  sess.max_retries = static_cast<int>(rng.UniformInt(1, 4));
  sess.think_time = SecondsToSim(rng.Uniform(0.001, 0.02));
  sess.backoff_base = SecondsToSim(rng.Uniform(0.0005, 0.01));
  sess.backoff_cap = SecondsToSim(rng.Uniform(0.05, 0.5));
  sess.jitter = rng.Uniform(0.0, 1.0);
  const SimDuration patience = SecondsToSim(rng.Uniform(0.05, 2.0));
  sess.patience = rng.Bernoulli(0.5) ? patience : 0;
  sess.seed = rng.NextU64();
  const int watermark = static_cast<int>(rng.UniformInt(1, 12));
  if (sessions_on) c.engine.session = sess;
  if (shed_on) c.engine.shed_watermark = watermark;

  // ---- Result cache. Same compatibility discipline as the session layer:
  // knobs are drawn unconditionally after every pre-existing draw, and a
  // pure index rotation decides whether they apply.
  const bool cache_on = (index / 1024) % 2 == 1;
  const int cache_capacity = static_cast<int>(rng.UniformInt(4, 64));
  if (cache_on) c.engine.cache.capacity = cache_capacity;

  return c;
}

}  // namespace unitdb
