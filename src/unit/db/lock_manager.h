#ifndef UNIT_DB_LOCK_MANAGER_H_
#define UNIT_DB_LOCK_MANAGER_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "unit/common/item_span.h"
#include "unit/common/types.h"

namespace unitdb {

/// Item-granularity shared/exclusive lock table implementing the data-access
/// rules of 2PL-HP (Abbott & Garcia-Molina): the *policy* half of 2PL-HP —
/// "a higher-priority requester aborts lower-priority holders" — is driven by
/// the engine, which knows transaction priorities; the lock manager only
/// reports conflicts and tracks ownership.
///
/// Usage pattern enforced by the engine keeps the protocol deadlock-free:
/// queries acquire their whole read set atomically (all-or-nothing S locks),
/// updates acquire a single X lock, and blocked transactions hold nothing.
class LockManager {
 public:
  explicit LockManager(int num_items);

  /// Result of an exclusive-lock attempt.
  struct XAttempt {
    bool granted = false;
    /// Non-empty when the item is share-locked: the engine must abort these
    /// (lower-priority) holders and retry, per 2PL-HP.
    std::vector<TxnId> shared_holders;
    /// True when another transaction holds the X lock; requester must wait.
    bool blocked_by_exclusive = false;
  };

  /// Atomically acquires S locks on all `items` for `txn`. Fails (acquiring
  /// nothing) if any item is X-locked by another transaction. Duplicate item
  /// ids in `items` are allowed and collapse to one lock.
  bool TryAcquireSharedAll(TxnId txn, ItemSpan items);

  /// Attempts the X lock on `item`. Grants only if no other transaction
  /// holds any lock on it; otherwise reports who is in the way.
  XAttempt TryAcquireExclusive(TxnId txn, ItemId item);

  /// Releases everything `txn` holds; returns the freed items (possibly
  /// empty). Safe to call for transactions holding nothing.
  std::vector<ItemId> ReleaseAll(TxnId txn);

  /// True if `txn` holds at least one lock.
  bool HoldsAny(TxnId txn) const;

  /// True if any transaction holds a lock on `item`.
  bool IsLocked(ItemId item) const;

  /// Number of transactions currently holding locks.
  int holder_count() const { return static_cast<int>(held_.size()); }

 private:
  struct ItemLocks {
    TxnId exclusive = kInvalidTxn;
    std::unordered_set<TxnId> shared;
  };

  std::vector<ItemLocks> locks_;                       // per item
  std::unordered_map<TxnId, std::vector<ItemId>> held_;  // txn -> items
};

}  // namespace unitdb

#endif  // UNIT_DB_LOCK_MANAGER_H_
