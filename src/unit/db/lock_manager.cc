#include "unit/db/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace unitdb {

LockManager::LockManager(int num_items) {
  assert(num_items > 0);
  locks_.resize(num_items);
}

bool LockManager::TryAcquireSharedAll(TxnId txn, ItemSpan items) {
  assert(held_.find(txn) == held_.end() && "txn already holds locks");
  for (ItemId id : items) {
    const ItemLocks& l = locks_[id];
    if (l.exclusive != kInvalidTxn && l.exclusive != txn) return false;
  }
  std::vector<ItemId>& held = held_[txn];
  for (ItemId id : items) {
    if (locks_[id].shared.insert(txn).second) {
      held.push_back(id);
    }
  }
  return true;
}

LockManager::XAttempt LockManager::TryAcquireExclusive(TxnId txn,
                                                       ItemId item) {
  XAttempt result;
  ItemLocks& l = locks_[item];
  if (l.exclusive != kInvalidTxn && l.exclusive != txn) {
    result.blocked_by_exclusive = true;
    return result;
  }
  if (!l.shared.empty()) {
    result.shared_holders.assign(l.shared.begin(), l.shared.end());
    // Deterministic order for the engine's abort loop.
    std::sort(result.shared_holders.begin(), result.shared_holders.end());
    return result;
  }
  l.exclusive = txn;
  held_[txn].push_back(item);
  result.granted = true;
  return result;
}

std::vector<ItemId> LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return {};
  std::vector<ItemId> freed = std::move(it->second);
  held_.erase(it);
  for (ItemId id : freed) {
    ItemLocks& l = locks_[id];
    if (l.exclusive == txn) l.exclusive = kInvalidTxn;
    l.shared.erase(txn);
  }
  return freed;
}

bool LockManager::HoldsAny(TxnId txn) const { return held_.count(txn) > 0; }

bool LockManager::IsLocked(ItemId item) const {
  const ItemLocks& l = locks_[item];
  return l.exclusive != kInvalidTxn || !l.shared.empty();
}

}  // namespace unitdb
