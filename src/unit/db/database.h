#ifndef UNIT_DB_DATABASE_H_
#define UNIT_DB_DATABASE_H_

#include <vector>

#include "unit/common/item_span.h"
#include "unit/common/status.h"
#include "unit/common/types.h"
#include "unit/db/data_item.h"

namespace unitdb {

/// The simulated database D = {d_1 ... d_S}: a dense array of data items,
/// each refreshed by a periodic source. The database owns the lag-based
/// freshness accounting of the paper (Eq. 1): `Udrop_j(t)` is the number of
/// source generations of d_j that occurred after the one currently installed
/// and up to time t; item freshness is 1 / (1 + Udrop_j(t)).
///
/// Source generations are purely arithmetic (generation k of item j happens
/// at phase_j + k * pi_j), so tracking freshness costs O(1) per probe and no
/// simulation events.
class Database {
 public:
  /// Builds a database of `num_items` items with no update sources (always
  /// fresh); sources are attached via ApplySpecs or SetSource.
  explicit Database(int num_items);

  /// Freezes every source at `horizon`: no generation occurs later. The
  /// engine sets this to the workload duration so that queries draining
  /// past the arrival horizon are not charged for updates that no longer
  /// arrive.
  void SetSourceHorizon(SimTime horizon) { horizon_ = horizon; }

  /// Attaches update sources from specs. Fails on out-of-range items,
  /// non-positive periods/exec times, or duplicate specs for one item.
  Status ApplySpecs(const std::vector<ItemUpdateSpec>& specs);

  /// Attaches/overwrites a single item's source.
  Status SetSource(const ItemUpdateSpec& spec);

  int num_items() const { return static_cast<int>(items_.size()); }

  const DataItemState& item(ItemId id) const { return items_[id]; }
  DataItemState& mutable_item(ItemId id) { return items_[id]; }

  /// Index of the newest source generation of `id` at time `t`; -1 if the
  /// source has not produced anything yet (item still holds its initial
  /// value, which is fresh by definition).
  int64_t GenerationAt(ItemId id, SimTime t) const;

  /// Number of source generations dropped/not-yet-applied since the
  /// installed one: max(0, GenerationAt(t) - installed_generation).
  int64_t Udrop(ItemId id, SimTime t) const;

  /// Lag-based freshness 1 / (1 + Udrop) in (0, 1].
  double Freshness(ItemId id, SimTime t) const;

  /// Paper Eq. 1: freshness of a query's read set = min over items.
  double QueryFreshness(ItemSpan items, SimTime t) const;

  /// Installs the newest generation available at `value_time` (the moment
  /// the update transaction pulled its value). Also bumps applied_updates.
  void ApplyUpdate(ItemId id, SimTime value_time);

  /// Records a committed query access (bookkeeping for Fig. 3 / policies).
  void RecordAccess(ItemId id) { ++items_[id].query_accesses; }

  /// Sets the modulated period pc_j; clamped to >= pi_j.
  void SetCurrentPeriod(ItemId id, SimDuration period);

  /// Number of items whose current period is stretched beyond ideal.
  int DegradedCount() const;

 private:
  std::vector<DataItemState> items_;
  SimTime horizon_ = kSimTimeMax;
};

}  // namespace unitdb

#endif  // UNIT_DB_DATABASE_H_
