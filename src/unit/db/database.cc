#include "unit/db/database.h"

#include <algorithm>
#include <cassert>

namespace unitdb {

Database::Database(int num_items) {
  assert(num_items > 0);
  items_.resize(num_items);
}

Status Database::ApplySpecs(const std::vector<ItemUpdateSpec>& specs) {
  std::vector<bool> seen(items_.size(), false);
  for (const auto& spec : specs) {
    if (spec.item < 0 || spec.item >= num_items()) {
      return Status::OutOfRange("item id " + std::to_string(spec.item) +
                                " outside [0, " + std::to_string(num_items()) +
                                ")");
    }
    if (seen[spec.item]) {
      return Status::AlreadyExists("duplicate update spec for item " +
                                   std::to_string(spec.item));
    }
    seen[spec.item] = true;
    Status s = SetSource(spec);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status Database::SetSource(const ItemUpdateSpec& spec) {
  if (spec.item < 0 || spec.item >= num_items()) {
    return Status::OutOfRange("item id out of range");
  }
  if (spec.ideal_period <= 0) {
    return Status::InvalidArgument("ideal_period must be positive");
  }
  if (spec.update_exec <= 0) {
    return Status::InvalidArgument("update_exec must be positive");
  }
  if (spec.phase < 0 || spec.phase >= spec.ideal_period) {
    return Status::InvalidArgument("phase must lie in [0, ideal_period)");
  }
  DataItemState& it = items_[spec.item];
  it.ideal_period = spec.ideal_period;
  it.update_exec = spec.update_exec;
  it.phase = spec.phase;
  it.current_period = spec.ideal_period;
  it.installed_generation = -1;
  return Status::Ok();
}

int64_t Database::GenerationAt(ItemId id, SimTime t) const {
  const DataItemState& it = items_[id];
  t = std::min(t, horizon_);
  if (t < it.phase || it.ideal_period >= kNoUpdates) return -1;
  return (t - it.phase) / it.ideal_period;
}

int64_t Database::Udrop(ItemId id, SimTime t) const {
  const DataItemState& it = items_[id];
  const int64_t gen = GenerationAt(id, t);
  return std::max<int64_t>(0, gen - it.installed_generation);
}

double Database::Freshness(ItemId id, SimTime t) const {
  return 1.0 / (1.0 + static_cast<double>(Udrop(id, t)));
}

double Database::QueryFreshness(ItemSpan items, SimTime t) const {
  double f = 1.0;
  for (ItemId id : items) f = std::min(f, Freshness(id, t));
  return f;
}

void Database::ApplyUpdate(ItemId id, SimTime value_time) {
  DataItemState& it = items_[id];
  it.installed_generation =
      std::max(it.installed_generation, GenerationAt(id, value_time));
  ++it.applied_updates;
}

void Database::SetCurrentPeriod(ItemId id, SimDuration period) {
  DataItemState& it = items_[id];
  it.current_period = std::max(period, it.ideal_period);
}

int Database::DegradedCount() const {
  int n = 0;
  for (const auto& it : items_) {
    if (it.ideal_period < kNoUpdates && it.current_period > it.ideal_period) {
      ++n;
    }
  }
  return n;
}

}  // namespace unitdb
