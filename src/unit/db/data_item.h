#ifndef UNIT_DB_DATA_ITEM_H_
#define UNIT_DB_DATA_ITEM_H_

#include <cstdint>

#include "unit/common/types.h"

namespace unitdb {

/// Static description of one data item's update source: the source (e.g. a
/// stock feed) generates a fresh value every `ideal_period` starting at
/// `phase`; applying one of those values costs `update_exec` CPU time.
/// An item with no update source uses kNoUpdates as its period.
struct ItemUpdateSpec {
  ItemId item = kInvalidItem;
  SimDuration ideal_period = 0;  ///< pi_j, > 0 (kNoUpdates => never updated)
  SimDuration update_exec = 0;   ///< ue_j, > 0
  SimTime phase = 0;             ///< first generation instant, in [0, pi_j)
};

/// Sentinel ideal period for items that receive no updates at all.
inline constexpr SimDuration kNoUpdates = kSimTimeMax / 4;

/// Mutable per-item state maintained by the database during a run.
struct DataItemState {
  // Source description (fixed for a run).
  SimDuration ideal_period = kNoUpdates;  ///< pi_j
  SimDuration update_exec = 0;            ///< ue_j
  SimTime phase = 0;

  /// pc_j: the period the server currently polls/applies updates with.
  /// Invariant: current_period >= ideal_period (modulation only stretches).
  SimDuration current_period = kNoUpdates;

  /// Newest source generation whose value has been applied; -1 means the
  /// initial (time-0) value, which counts as fresh until the first source
  /// generation occurs.
  int64_t installed_generation = -1;

  /// Arrival time of the last update transaction the server chose to apply.
  /// Update messages always arrive at the source rate (every ideal_period);
  /// frequency modulation *drops* arrivals so that applications happen about
  /// once per current_period, keeping applied values aligned with source
  /// generations (see Engine::HandleUpdateArrival).
  SimTime last_pull = kSimTimeMax * -1;

  // Bookkeeping for Figure 3 and the modulation policies.
  int64_t applied_updates = 0;  ///< committed update transactions
  int64_t query_accesses = 0;   ///< committed queries that read this item
};

}  // namespace unitdb

#endif  // UNIT_DB_DATA_ITEM_H_
