#ifndef UNIT_CORE_POLICY_H_
#define UNIT_CORE_POLICY_H_

#include <limits>
#include <string>

#include "unit/txn/outcome.h"
#include "unit/txn/transaction.h"

namespace unitdb {

class EngineContext;

/// Extension point through which a transaction-management policy (UNIT, IMU,
/// ODU, QMF, or a user-defined scheme) steers the engine. All hooks run on
/// the simulation thread; the engine passed in is fully usable (database,
/// queue introspection, on-demand updates, period modulation).
class Policy {
 public:
  virtual ~Policy() = default;

  /// Short policy name for reports ("unit", "imu", ...).
  virtual std::string name() const = 0;

  /// Called once before the run starts, after the engine is fully built.
  virtual void Attach(EngineContext& engine) { (void)engine; }

  /// Admission control: called when a user query arrives; returning false
  /// rejects it outright (paper outcome "Rejection").
  virtual bool AdmitQuery(EngineContext& engine, const Transaction& query) {
    (void)engine;
    (void)query;
    return true;
  }

  /// Called when an admitted query is about to occupy the CPU for the first
  /// time (and again after lock restarts / refresh postponements). Returning
  /// false postpones the query — legal only if the hook enqueued at least
  /// one transaction that now outranks it (e.g. ODU's on-demand refreshes);
  /// otherwise the engine would spin.
  virtual bool BeforeQueryDispatch(EngineContext& engine, Transaction& query) {
    (void)engine;
    (void)query;
    return true;
  }

  /// Called exactly once per submitted query when its fortune is decided
  /// (success / rejected / DMF / DSF).
  virtual void OnQueryResolved(EngineContext& engine, const Transaction& query,
                               Outcome outcome) {
    (void)engine;
    (void)query;
    (void)outcome;
  }

  /// Called when an update transaction commits.
  virtual void OnUpdateCommit(EngineContext& engine, const Transaction& update) {
    (void)engine;
    (void)update;
  }

  /// Called on every periodic update *arrival* from the source, including
  /// the ones frequency modulation subsequently drops. "There is an update
  /// on d_j" in the paper's ticket accounting (Eq. 7) is an arrival — tying
  /// it to commits would let degradation starve its own signal.
  virtual void OnUpdateSourceArrival(EngineContext& engine, ItemId item) {
    (void)engine;
    (void)item;
  }

  /// Called every engine control period (EngineParams::control_period).
  virtual void OnControlTick(EngineContext& engine) { (void)engine; }

  /// Current admission-control knob (C_flex for UNIT-style policies), for
  /// telemetry only — the engine samples it into the window time series.
  /// NaN means "this policy has no such knob" and serializes as null.
  virtual double AdmissionKnob() const {
    return std::numeric_limits<double>::quiet_NaN();
  }

  /// Whether the engine should generate periodic update transactions from
  /// the items' (current) periods. ODU turns this off and refreshes data
  /// on demand instead.
  virtual bool UsesPeriodicUpdates() const { return true; }
};

}  // namespace unitdb

#endif  // UNIT_CORE_POLICY_H_
