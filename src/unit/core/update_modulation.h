#ifndef UNIT_CORE_UPDATE_MODULATION_H_
#define UNIT_CORE_UPDATE_MODULATION_H_

#include <cstdint>
#include <vector>

#include "unit/common/rng.h"
#include "unit/common/stats.h"
#include "unit/core/lottery.h"
#include "unit/db/database.h"
#include "unit/obs/trace_sink.h"
#include "unit/txn/transaction.h"

namespace unitdb {

/// Tunables of the paper's Update Frequency Modulation (Section 3.4).
struct ModulationParams {
  double c_forget = 0.9;  ///< forgetting factor on ticket values (Eq. 8)
  /// Forgetting cadence. The paper applies C_forget per ticket *event*,
  /// which couples protection memory to event rates (an item with sparse
  /// updates would stay protected for thousands of seconds after its last
  /// access). Time-based decay — multiply by C_forget once per
  /// forget_interval_s of simulated time, applied lazily — keeps the memory
  /// horizon (~ half-life 66 s at the defaults) independent of rates.
  /// Set time_decay=false for the literal per-event reading (ablation).
  bool time_decay = true;
  double forget_interval_s = 10.0;
  double c_du = 0.25;     ///< degrade step: pc *= (1 + C_du) (Eq. 9)
  /// Upgrade step (Eq. 10). The OCR'd equation is ambiguous between
  /// pc = max(pi, pc - C_uu * pi)  (linear walk-back, the default) and
  /// pc = max(pi, pc * C_uu)       (halving); see DESIGN.md §4 and the
  /// linear_upgrade switch below.
  double c_uu = 0.5;
  /// Selects the linear reading of Eq. 10 (gradual restore); false (default)
  /// selects the multiplicative one, which restores heavily-degraded items
  /// in logarithmically many signals.
  bool linear_upgrade = false;
  /// Calibration factor on Eq. 6's DT = qe/qt. With web-scale deadlines qt
  /// >> qe, raw DT (~0.01) cannot counterweigh IT (~0.5), erasing the
  /// query-protection effect the paper describes. The scale is chosen so a
  /// single access outweighs a typical IT contribution severalfold: one
  /// user observation of an item shields it from degradation until its
  /// update inflow rebuilds the ticket — which is what a freshness
  /// economics argument prescribes (keeping a queried item fresh costs
  /// ue/pi CPU per second, far below the USM value of fresh accesses).
  /// Ablated in bench_ablation_victim.
  double dt_scale = 100.0;
  /// Lottery picks per Degrade-Update signal; 0 = one pick per data item on
  /// average. The paper leaves the batch size unspecified; roughly one pick
  /// per item per signal lets stretches compound faster than upgrade signals
  /// reset them, stratifying items by ticket weight (see DESIGN.md §4 and
  /// the A1/A4 ablations).
  int degrade_batch = 0;
  /// Safety cap: pc <= pi * max_stretch.
  double max_stretch = 1024.0;
  /// Scale of the sigmoid in Eq. 7; <= 0 selects the running stddev of
  /// update execution times (fallback: their mean).
  double sigmoid_scale = 0.0;
  /// Selective upgrades: an Upgrade-Update signal restores only the items
  /// whose staleness users actually observed (DSF read sets) since the last
  /// upgrade, instead of every degraded item. Restoring untouched cold items
  /// would re-create the very load the Degrade signals shed, so the global
  /// variant (false) thrashes; kept for bench_ablation_victim.
  bool selective_upgrade = true;
  /// Lower clamp on ticket values. The lottery weighs items by
  /// (ticket - min ticket); a single deeply negative outlier (one very hot
  /// item) would inflate every weight and flatten selectivity, so actively
  /// queried items bottom out here and carry (near-)zero weight instead.
  /// At 0.0 (default) the min-shift is exact: weight == ticket.
  double ticket_floor = 0.0;
};

/// Ticket-driven update frequency modulation:
///  * every committed query access to d_j lowers its ticket by
///    DT_j = qe_i / qt_i (Eq. 6) — heavily-queried, cpu-hungry readers
///    shield their items from degradation;
///  * every committed update on d_j raises its ticket by a sigmoid of how
///    much longer than average the update runs (Eq. 7) — expensive,
///    frequent updaters attract degradation;
///  * both effects decay with C_forget (Eq. 8).
/// Degrade signals stretch the lottery-chosen victims' current periods
/// (Eq. 9); Upgrade signals walk every degraded period back toward the
/// ideal (Eq. 10).
class UpdateModulator {
 public:
  UpdateModulator(int num_items, const ModulationParams& params);

  /// Marks items without an update source ineligible for the lottery.
  void AttachSources(const Database& db);

  /// Query effect (Eq. 6 + Eq. 8): committed query `q` accessed `item`.
  void OnQueryAccess(ItemId item, const Transaction& q, SimTime now);

  /// Records that a user observed `item` stale (part of a DSF read set);
  /// selective upgrades restore exactly these items.
  void OnStaleAccess(ItemId item);

  /// Records demand for a currently-degraded item (any access, fresh or
  /// not): the next Upgrade signal restores it before more misses accrue.
  void OnDegradedAccess(ItemId item);

  /// Update effect (Eq. 7 + Eq. 8): an update for `item` arrived from the
  /// source (applied or not); its execution time is `exec`.
  void OnUpdateArrival(ItemId item, SimDuration exec, SimTime now);

  /// Emit a "period-change" trace event for every period the modulator
  /// actually changes (nullptr = off; that is the default).
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// One Degrade-Update control signal: `degrade_batch` lottery picks, each
  /// stretching its victim's current period by (1 + C_du). `now` only
  /// timestamps trace events; it does not affect modulation.
  void Degrade(Database& db, Rng& rng, SimTime now = 0);

  /// One Upgrade-Update control signal. Selective mode restores exactly the
  /// items users demanded (stale or degraded read sets) to their source
  /// rate; global mode shrinks every degraded period by C_uu, clamped at
  /// the ideal period. Returns the items whose period was restored/shrunk,
  /// so the caller can re-apply the buffered newest value (push feeds keep
  /// delivering values even while their application is shed). `now` only
  /// timestamps trace events.
  std::vector<ItemId> Upgrade(Database& db, SimTime now = 0);

  double ticket(ItemId item) const { return sampler_.ticket(item); }
  int64_t stale_hits(ItemId item) const { return stale_hits_[item]; }
  const LotterySampler& sampler() const { return sampler_; }
  int64_t degrade_signals() const { return degrade_signals_; }
  int64_t upgrade_signals() const { return upgrade_signals_; }
  int64_t total_picks() const { return total_picks_; }

 private:
  double SigmoidIncrease(double exec_s) const;

  double DecayedTicket(ItemId item, SimTime now);

  void EmitPeriodChange(ItemId item, SimDuration from, SimDuration to,
                        const char* cause, SimTime now);

  TraceSink* trace_ = nullptr;
  ModulationParams params_;
  LotterySampler sampler_;
  std::vector<int64_t> stale_hits_;
  std::vector<SimTime> last_event_;
  RunningStat update_exec_s_;  ///< running stats of update execution times
  int64_t degrade_signals_ = 0;
  int64_t upgrade_signals_ = 0;
  int64_t total_picks_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_CORE_UPDATE_MODULATION_H_
