#include "unit/core/admission.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <vector>

#include "unit/sched/engine_context.h"

namespace unitdb {

// --- AdmissionIndex -------------------------------------------------------

void AdmissionIndex::Init(const Workload& workload,
                          const std::vector<QueryRequest>* injected) {
  const size_t nw = workload.queries.size();
  const size_t n = nw + (injected != nullptr ? injected->size() : 0);
  num_workload_ = nw;
  initialized_ = true;

  // Combined index space: [0, nw) are workload queries, [nw, n) injected
  // ones (fault-schedule order). Request `qi` resolves through this.
  auto request_of = [&workload, injected, nw](size_t qi) -> const QueryRequest& {
    return qi < nw ? workload.queries[qi] : (*injected)[qi - nw];
  };

  // Creation order of query transactions equals arrival order: the event
  // queue breaks time ties by push sequence — workload index order first,
  // then injected index order (ScheduleInitialEvents pushes every workload
  // query arrival before any injected one, so the stable sort's tie-break
  // matches the pop order at equal timestamps).
  std::vector<size_t> creation(n);
  std::iota(creation.begin(), creation.end(), size_t{0});
  std::stable_sort(creation.begin(), creation.end(),
                   [&request_of](size_t a, size_t b) {
                     return request_of(a).arrival < request_of(b).arrival;
                   });

  // Rank order (deadline, creation position) matches the naive scan's EDF
  // (deadline, txn id) order, since query txn ids increase with creation.
  auto deadline_of = [&request_of](size_t qi) {
    return request_of(qi).arrival + request_of(qi).relative_deadline;
  };
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&creation, &deadline_of](size_t a, size_t b) {
              const SimTime da = deadline_of(creation[a]);
              const SimTime db = deadline_of(creation[b]);
              if (da != db) return da < db;
              return a < b;
            });

  ranks_.assign(n, -1);
  rank_deadline_.resize(n);
  for (size_t r = 0; r < n; ++r) {
    const size_t qi = creation[order[r]];
    ranks_[qi] = static_cast<int32_t>(r);
    rank_deadline_[r] = deadline_of(qi);
  }

  work_.Reset(n);
  leaf_count_ = 1;
  while (leaf_count_ < std::max<size_t>(n, 1)) leaf_count_ <<= 1;
  nodes_.assign(2 * leaf_count_, Node{});
}

AdmissionIndex::Node AdmissionIndex::Merge(const Node& l, const Node& r) {
  Node p;
  p.count = l.count + r.count;
  p.work = l.work + r.work;
  if (l.count == 0) {  // l.work == 0, so the right half shifts by nothing
    p.min_m = r.min_m;
    p.max_m = r.max_m;
  } else if (r.count == 0) {
    p.min_m = l.min_m;
    p.max_m = l.max_m;
  } else {
    p.min_m = std::min(l.min_m, r.min_m - l.work);
    p.max_m = std::max(l.max_m, r.max_m - l.work);
  }
  return p;
}

void AdmissionIndex::PullUp(size_t leaf) {
  for (size_t i = leaf >> 1; i >= 1; i >>= 1) {
    nodes_[i] = Merge(nodes_[2 * i], nodes_[2 * i + 1]);
  }
}

void AdmissionIndex::OnInsert(const Transaction& query) {
  assert(query.is_query() && query.admission_rank() >= 0);
  const size_t r = static_cast<size_t>(query.admission_rank());
  const int64_t rem = query.remaining();
  work_.Set(r, rem);
  Node& leaf = nodes_[leaf_count_ + r];
  leaf.count = 1;
  leaf.work = rem;
  leaf.min_m = leaf.max_m = query.absolute_deadline() - rem;
  PullUp(leaf_count_ + r);
}

void AdmissionIndex::OnRemove(const Transaction& query) {
  assert(query.is_query() && query.admission_rank() >= 0);
  const size_t r = static_cast<size_t>(query.admission_rank());
  work_.Set(r, 0);
  nodes_[leaf_count_ + r] = Node{};
  PullUp(leaf_count_ + r);
}

size_t AdmissionIndex::BoundaryRank(SimTime deadline) const {
  return static_cast<size_t>(
      std::upper_bound(rank_deadline_.begin(), rank_deadline_.end(),
                       deadline) -
      rank_deadline_.begin());
}

SimDuration AdmissionIndex::EarlierWork(SimTime deadline) const {
  return work_.PrefixSum(BoundaryRank(deadline));
}

int64_t AdmissionIndex::CountFromRec(size_t idx, size_t l, size_t r,
                                     size_t from) const {
  if (r <= from || nodes_[idx].count == 0) return 0;
  if (l >= from) return nodes_[idx].count;
  const size_t mid = (l + r) / 2;
  return CountFromRec(2 * idx, l, mid, from) +
         CountFromRec(2 * idx + 1, mid, r, from);
}

int64_t AdmissionIndex::LaterCount(SimTime deadline) const {
  if (leaf_count_ == 0) return 0;
  return CountFromRec(1, 0, leaf_count_, BoundaryRank(deadline));
}

int64_t AdmissionIndex::EndangeredRec(size_t idx, size_t l, size_t r,
                                      size_t from, int64_t lo, int64_t hi,
                                      int64_t& acc) const {
  const Node& nd = nodes_[idx];
  if (r <= from || nd.count == 0) return 0;  // out of range / empty: no work
  if (l >= from) {
    // Fully inside the rank range: the subtree's lags, shifted by the work
    // accumulated to its left, span [min_m - acc, max_m - acc].
    const int64_t mn = nd.min_m - acc;
    const int64_t mx = nd.max_m - acc;
    if (mx < lo || mn >= hi) {
      acc += nd.work;
      return 0;
    }
    if (lo <= mn && mx < hi) {
      acc += nd.work;
      return nd.count;
    }
    // A leaf has mn == mx, so it always lands in one of the cases above.
  }
  const size_t mid = (l + r) / 2;
  int64_t c = EndangeredRec(2 * idx, l, mid, from, lo, hi, acc);
  c += EndangeredRec(2 * idx + 1, mid, r, from, lo, hi, acc);
  return c;
}

int64_t AdmissionIndex::CountEndangered(SimTime deadline, int64_t lo,
                                        int64_t hi) const {
  if (leaf_count_ == 0) return 0;
  int64_t acc = 0;
  return EndangeredRec(1, 0, leaf_count_, BoundaryRank(deadline), lo, hi,
                       acc);
}

// --- AdmissionController --------------------------------------------------

AdmissionController::AdmissionController(const AdmissionParams& params,
                                         const UsmWeights& weights)
    : params_(params), weights_(weights), c_flex_(params.initial_c_flex) {}

bool AdmissionController::Admit(const EngineContext& engine,
                                const Transaction& candidate) {
  return Admit(engine, candidate, weights_);
}

bool AdmissionController::Admit(const EngineContext& engine,
                                const Transaction& candidate,
                                const UsmWeights& weights) {
  const AdmissionIndex& index = engine.admission_index();
  if (params_.use_index && index.enabled() &&
      candidate.admission_rank() >= 0) {
    return AdmitIndexed(engine, index, candidate, weights);
  }
  return AdmitNaive(engine, candidate, weights);
}

// 1. Transaction deadline check: C_flex * EST + qe < qt. Rejecting an
// unpromising query only raises user satisfaction when a rejection costs
// no more than the deadline miss it prevents; with C_r > C_fm the
// USM-rational move is to admit and let the firm deadline decide (the
// system USM check still protects the other transactions).
bool AdmissionController::DecideDeadline(const EngineContext& engine,
                                         const Transaction& candidate,
                                         SimDuration est, bool naive,
                                         const UsmWeights& weights) {
  if (!naive && weights.c_r > weights.c_fm) return true;
  const double lhs = c_flex_ * static_cast<double>(est) +
                     static_cast<double>(candidate.estimate());
  const double qt = static_cast<double>(candidate.absolute_deadline() -
                                        engine.now());
  return lhs < qt;
}

bool AdmissionController::AdmitNaive(const EngineContext& engine,
                                     const Transaction& candidate,
                                     const UsmWeights& weights) {
  // One O(N_rq) pass over queued queries gathers both the earlier-deadline
  // work (for EST) and the later-deadline schedule (for the USM check).
  SimDuration earlier_work = 0;
  struct Later {
    SimTime deadline;
    SimDuration remaining;
  };
  std::vector<Later> later;
  engine.ForEachReadyQuery([&](const Transaction& q) {
    if (q.absolute_deadline() <= candidate.absolute_deadline()) {
      earlier_work += q.remaining();
    } else {
      later.push_back({q.absolute_deadline(), q.remaining()});
    }
  });

  const SimDuration est = engine.RunningRemaining() +
                          engine.QueuedUpdateWork() + earlier_work;

  const bool naive = weights.AllZeroPenalties();
  if (!DecideDeadline(engine, candidate, est, naive, weights)) {
    ++rejected_by_deadline_;
    last_reject_reason_ = "deadline";
    return false;
  }

  // 2. System USM check: which later-deadline queries would newly miss if
  // we slot the candidate in? (`later` is already in EDF order.)
  if (params_.usm_check_enabled && !later.empty()) {
    const double dmf_cost =
        naive ? params_.zero_weight_unit_cost : weights.c_fm;
    const double rejection_cost =
        naive ? params_.zero_weight_unit_cost : weights.c_r;
    if (dmf_cost > 0.0) {
      const SimTime start = engine.now() + est;
      SimTime with = start + candidate.estimate();
      SimTime without = start;
      double endangered_cost = 0.0;
      for (const Later& q : later) {
        with += q.remaining;
        without += q.remaining;
        if (with > q.deadline && without <= q.deadline) {
          endangered_cost += dmf_cost;
        }
      }
      if (endangered_cost > rejection_cost) {
        ++rejected_by_usm_;
        last_reject_reason_ = "usm";
        return false;
      }
    }
  }

  ++admitted_;
  last_reject_reason_ = nullptr;
  return true;
}

bool AdmissionController::AdmitIndexed(const EngineContext& engine,
                                       const AdmissionIndex& index,
                                       const Transaction& candidate,
                                       const UsmWeights& weights) {
  // Same two checks as AdmitNaive, answered from the incremental index.
  // All sums are integer SimTime arithmetic, so both the EST and every
  // endangered-set comparison are bit-identical to the naive scan's.
  const SimDuration earlier_work =
      index.EarlierWork(candidate.absolute_deadline());
  const SimDuration est = engine.RunningRemaining() +
                          engine.QueuedUpdateWork() + earlier_work;

  const bool naive = weights.AllZeroPenalties();
  if (!DecideDeadline(engine, candidate, est, naive, weights)) {
    ++rejected_by_deadline_;
    last_reject_reason_ = "deadline";
    return false;
  }

  if (params_.usm_check_enabled &&
      index.LaterCount(candidate.absolute_deadline()) > 0) {
    const double dmf_cost =
        naive ? params_.zero_weight_unit_cost : weights.c_fm;
    const double rejection_cost =
        naive ? params_.zero_weight_unit_cost : weights.c_r;
    if (dmf_cost > 0.0) {
      // Query q (deadline > candidate's) is newly endangered iff
      //   without_q <= deadline_q < without_q + estimate, i.e. its lag
      //   deadline_q - prefix_work_q falls in [start, start + estimate).
      const SimTime start = engine.now() + est;
      const int64_t endangered = index.CountEndangered(
          candidate.absolute_deadline(), start,
          start + candidate.estimate());
      // Accumulate the cost exactly like the naive scan does (repeated
      // addition), so the floating-point comparison matches bit for bit.
      double endangered_cost = 0.0;
      for (int64_t i = 0; i < endangered; ++i) endangered_cost += dmf_cost;
      if (endangered_cost > rejection_cost) {
        ++rejected_by_usm_;
        last_reject_reason_ = "usm";
        return false;
      }
    }
  }

  ++admitted_;
  last_reject_reason_ = nullptr;
  return true;
}

void AdmissionController::Tighten() {
  c_flex_ = std::min(params_.max_c_flex, c_flex_ * (1.0 + params_.adjust_step));
}

void AdmissionController::Loosen() {
  c_flex_ = std::max(params_.min_c_flex, c_flex_ * (1.0 - params_.adjust_step));
}

}  // namespace unitdb
