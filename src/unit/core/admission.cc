#include "unit/core/admission.h"

#include <algorithm>
#include <vector>

#include "unit/sched/engine.h"

namespace unitdb {

AdmissionController::AdmissionController(const AdmissionParams& params,
                                         const UsmWeights& weights)
    : params_(params), weights_(weights), c_flex_(params.initial_c_flex) {}

bool AdmissionController::Admit(const Engine& engine,
                                const Transaction& candidate) {
  return Admit(engine, candidate, weights_);
}

bool AdmissionController::Admit(const Engine& engine,
                                const Transaction& candidate,
                                const UsmWeights& weights) {
  // One O(N_rq) pass over queued queries gathers both the earlier-deadline
  // work (for EST) and the later-deadline schedule (for the USM check).
  SimDuration earlier_work = 0;
  struct Later {
    SimTime deadline;
    SimDuration remaining;
  };
  std::vector<Later> later;
  engine.ForEachReadyQuery([&](const Transaction& q) {
    if (q.absolute_deadline() <= candidate.absolute_deadline()) {
      earlier_work += q.remaining();
    } else {
      later.push_back({q.absolute_deadline(), q.remaining()});
    }
  });

  const SimDuration est = engine.RunningRemaining() +
                          engine.QueuedUpdateWork() + earlier_work;

  // 1. Transaction deadline check: C_flex * EST + qe < qt. Rejecting an
  // unpromising query only raises user satisfaction when a rejection costs
  // no more than the deadline miss it prevents; with C_r > C_fm the
  // USM-rational move is to admit and let the firm deadline decide (the
  // system USM check below still protects the other transactions).
  const bool naive = weights.AllZeroPenalties();
  if (naive || weights.c_r <= weights.c_fm) {
    const double lhs = c_flex_ * static_cast<double>(est) +
                       static_cast<double>(candidate.estimate());
    const double qt = static_cast<double>(candidate.absolute_deadline() -
                                          engine.now());
    if (lhs >= qt) {
      ++rejected_by_deadline_;
      return false;
    }
  }

  // 2. System USM check: which later-deadline queries would newly miss if
  // we slot the candidate in? (`later` is already in EDF order.)
  if (params_.usm_check_enabled && !later.empty()) {
    const double dmf_cost =
        naive ? params_.zero_weight_unit_cost : weights.c_fm;
    const double rejection_cost =
        naive ? params_.zero_weight_unit_cost : weights.c_r;
    if (dmf_cost > 0.0) {
      const SimTime start = engine.now() + est;
      SimTime with = start + candidate.estimate();
      SimTime without = start;
      double endangered_cost = 0.0;
      for (const Later& q : later) {
        with += q.remaining;
        without += q.remaining;
        if (with > q.deadline && without <= q.deadline) {
          endangered_cost += dmf_cost;
        }
      }
      if (endangered_cost > rejection_cost) {
        ++rejected_by_usm_;
        return false;
      }
    }
  }

  ++admitted_;
  return true;
}

void AdmissionController::Tighten() {
  c_flex_ = std::min(params_.max_c_flex, c_flex_ * (1.0 + params_.adjust_step));
}

void AdmissionController::Loosen() {
  c_flex_ = std::max(params_.min_c_flex, c_flex_ * (1.0 - params_.adjust_step));
}

}  // namespace unitdb
