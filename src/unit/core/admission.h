#ifndef UNIT_CORE_ADMISSION_H_
#define UNIT_CORE_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "unit/common/fenwick.h"
#include "unit/common/types.h"
#include "unit/core/usm.h"
#include "unit/txn/transaction.h"
#include "unit/workload/spec.h"

namespace unitdb {

class EngineContext;

/// Tunables of the paper's Query Admission Control (Section 3.3).
struct AdmissionParams {
  double initial_c_flex = 1.0;  ///< lag ratio C_flex (larger = tighter)
  double adjust_step = 0.10;    ///< TAC/LAC adjust C_flex by +/-10%
  double min_c_flex = 0.1;
  double max_c_flex = 16.0;
  /// Enables the system USM check on top of the deadline check.
  bool usm_check_enabled = true;
  /// Effective per-query cost used by the USM check when every weight is
  /// zero (the naive setting): endangered transactions and the candidate are
  /// then compared at unit cost.
  double zero_weight_unit_cost = 1.0;
  /// Answers both admission checks from the engine's incremental admission
  /// index (O(log N_rq) per arrival) instead of the seed's naive ready-queue
  /// scan (O(N_rq)). The two paths make bit-identical decisions; the naive
  /// scan is kept as the oracle for the equivalence property tests and A/B
  /// micro-benchmarks.
  bool use_index = true;
};

/// Incremental EST/admission index, owned by the engine and kept in sync at
/// every ready-queue mutation of a query transaction.
///
/// Every workload query's absolute deadline is known up front, so each query
/// gets a static slot ordered by (deadline, arrival order) — the exact EDF
/// tie-break the ready queue uses, since query transaction ids increase in
/// arrival order. Two aggregates live over the occupied slots:
///
///  - a Fenwick tree of remaining service demand: the deadline check's
///    earlier-deadline work term (EST) is one prefix sum, O(log N);
///  - a segment tree over the per-query "lag" m_k = deadline_k - P_k (P_k =
///    EDF-prefix remaining work through query k within the queried rank
///    suffix), answering "how many queued queries with deadline > d have lag
///    in [lo, hi)" — exactly the set of transactions the candidate would
///    newly endanger. Subtrees whose [min, max] lag window misses [lo, hi)
///    are pruned, so the count is O(log N) except when many queries straddle
///    the window.
///
/// Integer (SimTime) arithmetic end to end, so every comparison matches the
/// naive scan bit for bit.
class AdmissionIndex {
 public:
  /// Precomputes deadline ranks for every query in `workload`, plus the
  /// fault layer's injected queries when a schedule supplies them — injected
  /// arrivals are known up front too (compiled before the run), so they get
  /// static slots like everyone else. Ranks assume EDF dispatch order; do
  /// not enable the index under other disciplines.
  void Init(const Workload& workload,
            const std::vector<QueryRequest>* injected = nullptr);

  bool enabled() const { return initialized_; }

  /// Deadline rank of workload query `query_index` (its slot); the engine
  /// stamps this onto the Transaction at creation.
  int32_t RankOfQuery(size_t query_index) const {
    return ranks_[query_index];
  }

  /// Deadline rank of injected query `injected_index` (fault schedule
  /// order). Only valid when Init saw the injected list.
  int32_t RankOfInjected(size_t injected_index) const {
    return ranks_[num_workload_ + injected_index];
  }

  /// The query entered the ready queue (remaining stays fixed while queued).
  void OnInsert(const Transaction& query);
  /// The query left the ready queue.
  void OnRemove(const Transaction& query);

  /// Sum of remaining demand of queued queries with deadline <= `deadline`.
  SimDuration EarlierWork(SimTime deadline) const;

  /// Number of queued queries with deadline > `deadline`.
  int64_t LaterCount(SimTime deadline) const;

  /// Number of queued queries with deadline > `deadline` whose EDF lag
  /// (deadline minus the prefix work of later-deadline queries through
  /// themselves) falls in [lo, hi) — the candidate's newly endangered set.
  int64_t CountEndangered(SimTime deadline, int64_t lo, int64_t hi) const;

  /// Number of currently indexed (queued) queries.
  int64_t occupied() const { return leaf_count_ == 0 ? 0 : nodes_[1].count; }

 private:
  struct Node {
    int64_t work = 0;    ///< sum of remaining demand in the subtree
    int64_t min_m = 0;   ///< min over subtree of deadline - local prefix work
    int64_t max_m = 0;   ///< max of the same (valid only when count > 0)
    int32_t count = 0;   ///< occupied slots in the subtree
  };

  static Node Merge(const Node& l, const Node& r);
  void PullUp(size_t leaf);
  size_t BoundaryRank(SimTime deadline) const;
  int64_t CountFromRec(size_t idx, size_t l, size_t r, size_t from) const;
  int64_t EndangeredRec(size_t idx, size_t l, size_t r, size_t from,
                        int64_t lo, int64_t hi, int64_t& acc) const;

  bool initialized_ = false;
  size_t num_workload_ = 0;             ///< injected queries rank after these
  std::vector<int32_t> ranks_;          ///< workload query index -> rank
  std::vector<SimTime> rank_deadline_;  ///< rank -> absolute deadline (sorted)
  BasicFenwickTree<int64_t> work_;      ///< rank -> remaining demand
  size_t leaf_count_ = 0;               ///< segment-tree width (power of two)
  std::vector<Node> nodes_;             ///< 1-based segment tree
};

/// The paper's two-stage admission control:
///
///  1. *Transaction deadline check*: the query is promising iff
///     C_flex * EST_i + qe_i < qt_i, where EST_i (earliest possible start)
///     sums the remaining demand of the running transaction, all queued
///     updates, and queued queries with earlier deadlines.
///  2. *System USM check*: simulate inserting the query into the EDF
///     schedule; transactions that would newly miss their deadlines are
///     "endangered". Reject when their total DMF cost exceeds the rejection
///     cost C_r of turning the candidate away.
///
/// Both checks are O(N_rq) in the paper (and in the naive oracle path);
/// with AdmissionParams::use_index they run against the engine's
/// AdmissionIndex in O(log N_rq), with bit-identical decisions.
class AdmissionController {
 public:
  AdmissionController(const AdmissionParams& params,
                      const UsmWeights& weights);

  /// Full admission decision for `candidate` at its arrival instant, using
  /// the controller's default weights.
  bool Admit(const EngineContext& engine, const Transaction& candidate);

  /// Same, valuing the candidate and the endangered transactions with
  /// caller-chosen weights (multi-preference support).
  bool Admit(const EngineContext& engine, const Transaction& candidate,
             const UsmWeights& weights);

  /// TAC signal: tighten (C_flex up by adjust_step).
  void Tighten();
  /// LAC signal: loosen (C_flex down by adjust_step).
  void Loosen();

  double c_flex() const { return c_flex_; }
  int64_t rejected_by_deadline() const { return rejected_by_deadline_; }
  int64_t rejected_by_usm() const { return rejected_by_usm_; }
  int64_t admitted() const { return admitted_; }

  /// Which check failed the most recent Admit call ("deadline" or "usm";
  /// nullptr when it admitted). Static-storage strings — callers may hold
  /// the pointer. Feeds the reject-reason field of obs/ trace events.
  const char* last_reject_reason() const { return last_reject_reason_; }

 private:
  bool AdmitNaive(const EngineContext& engine, const Transaction& candidate,
                  const UsmWeights& weights);
  bool AdmitIndexed(const EngineContext& engine, const AdmissionIndex& index,
                    const Transaction& candidate, const UsmWeights& weights);
  bool DecideDeadline(const EngineContext& engine, const Transaction& candidate,
                      SimDuration est, bool naive, const UsmWeights& weights);

  AdmissionParams params_;
  UsmWeights weights_;
  double c_flex_;
  int64_t rejected_by_deadline_ = 0;
  int64_t rejected_by_usm_ = 0;
  int64_t admitted_ = 0;
  const char* last_reject_reason_ = nullptr;
};

}  // namespace unitdb

#endif  // UNIT_CORE_ADMISSION_H_
