#ifndef UNIT_CORE_ADMISSION_H_
#define UNIT_CORE_ADMISSION_H_

#include <cstdint>

#include "unit/core/usm.h"
#include "unit/txn/transaction.h"

namespace unitdb {

class Engine;

/// Tunables of the paper's Query Admission Control (Section 3.3).
struct AdmissionParams {
  double initial_c_flex = 1.0;  ///< lag ratio C_flex (larger = tighter)
  double adjust_step = 0.10;    ///< TAC/LAC adjust C_flex by +/-10%
  double min_c_flex = 0.1;
  double max_c_flex = 16.0;
  /// Enables the system USM check on top of the deadline check.
  bool usm_check_enabled = true;
  /// Effective per-query cost used by the USM check when every weight is
  /// zero (the naive setting): endangered transactions and the candidate are
  /// then compared at unit cost.
  double zero_weight_unit_cost = 1.0;
};

/// The paper's two-stage admission control:
///
///  1. *Transaction deadline check*: the query is promising iff
///     C_flex * EST_i + qe_i < qt_i, where EST_i (earliest possible start)
///     sums the remaining demand of the running transaction, all queued
///     updates, and queued queries with earlier deadlines.
///  2. *System USM check*: simulate inserting the query into the EDF
///     schedule; transactions that would newly miss their deadlines are
///     "endangered". Reject when their total DMF cost exceeds the rejection
///     cost C_r of turning the candidate away.
///
/// Both checks are O(N_rq) in the ready-queue length, as the paper states.
class AdmissionController {
 public:
  AdmissionController(const AdmissionParams& params,
                      const UsmWeights& weights);

  /// Full admission decision for `candidate` at its arrival instant, using
  /// the controller's default weights.
  bool Admit(const Engine& engine, const Transaction& candidate);

  /// Same, valuing the candidate and the endangered transactions with
  /// caller-chosen weights (multi-preference support).
  bool Admit(const Engine& engine, const Transaction& candidate,
             const UsmWeights& weights);

  /// TAC signal: tighten (C_flex up by adjust_step).
  void Tighten();
  /// LAC signal: loosen (C_flex down by adjust_step).
  void Loosen();

  double c_flex() const { return c_flex_; }
  int64_t rejected_by_deadline() const { return rejected_by_deadline_; }
  int64_t rejected_by_usm() const { return rejected_by_usm_; }
  int64_t admitted() const { return admitted_; }

 private:
  AdmissionParams params_;
  UsmWeights weights_;
  double c_flex_;
  int64_t rejected_by_deadline_ = 0;
  int64_t rejected_by_usm_ = 0;
  int64_t admitted_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_CORE_ADMISSION_H_
