#include "unit/core/usm.h"

#include <algorithm>

namespace unitdb {

double UsmTotal(const OutcomeCounts& c, const UsmWeights& w) {
  return w.gain * static_cast<double>(c.success) -
         w.c_r * static_cast<double>(c.rejected) -
         w.c_fm * static_cast<double>(c.dmf) -
         w.c_fs * static_cast<double>(c.dsf);
}

double UsmAverage(const OutcomeCounts& c, const UsmWeights& w) {
  if (c.submitted <= 0) return 0.0;
  return UsmTotal(c, w) / static_cast<double>(c.submitted);
}

UsmBreakdown UsmDecompose(const OutcomeCounts& c, const UsmWeights& w) {
  UsmBreakdown b;
  if (c.submitted <= 0) return b;
  const double n = static_cast<double>(c.submitted);
  b.s = w.gain * static_cast<double>(c.success) / n;
  b.r = w.c_r * static_cast<double>(c.rejected) / n;
  b.fm = w.c_fm * static_cast<double>(c.dmf) / n;
  b.fs = w.c_fs * static_cast<double>(c.dsf) / n;
  return b;
}

const UsmWeights& WeightsForClass(const std::vector<UsmWeights>& class_weights,
                                  int preference_class) {
  static const UsmWeights kNaive;
  if (class_weights.empty()) return kNaive;
  const size_t i = preference_class < 0
                       ? 0
                       : std::min(static_cast<size_t>(preference_class),
                                  class_weights.size() - 1);
  return class_weights[i];
}

double UsmTotalMulti(const std::vector<OutcomeCounts>& per_class_counts,
                     const std::vector<UsmWeights>& class_weights) {
  double total = 0.0;
  for (size_t c = 0; c < per_class_counts.size(); ++c) {
    total += UsmTotal(per_class_counts[c],
                      WeightsForClass(class_weights, static_cast<int>(c)));
  }
  return total;
}

double UsmAverageMulti(const std::vector<OutcomeCounts>& per_class_counts,
                       const std::vector<UsmWeights>& class_weights) {
  int64_t submitted = 0;
  for (const auto& c : per_class_counts) submitted += c.submitted;
  if (submitted <= 0) return 0.0;
  return UsmTotalMulti(per_class_counts, class_weights) /
         static_cast<double>(submitted);
}

}  // namespace unitdb
