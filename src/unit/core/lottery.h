#ifndef UNIT_CORE_LOTTERY_H_
#define UNIT_CORE_LOTTERY_H_

#include <set>
#include <vector>

#include "unit/common/fenwick.h"
#include "unit/common/rng.h"

namespace unitdb {

/// Lottery-scheduling sampler over data items (Waldspurger '95): each
/// eligible item holds a real-valued *ticket*; sampling picks item j with
/// probability proportional to (ticket_j - min eligible ticket), the paper's
/// non-negativity shift (Section 3.4.1). When every shifted weight is zero
/// (e.g., all tickets equal), sampling falls back to uniform over the
/// eligible items — the natural lottery behaviour for an all-equal pool.
///
/// Ticket updates cost O(log n) via a Fenwick tree plus a multiset that
/// tracks the exact minimum; sampling is O(log n) except when the minimum
/// moved since the last draw, which triggers an O(n) re-anchor (rare in
/// steady state, and amortized across the draws between minimum changes).
class LotterySampler {
 public:
  explicit LotterySampler(int n);

  int size() const { return static_cast<int>(tickets_.size()); }

  /// Marks item i eligible (default) or permanently out of the draw
  /// (e.g. items with no update source).
  void SetEligible(int i, bool eligible);
  bool IsEligible(int i) const { return eligible_[i]; }
  int eligible_count() const { return eligible_count_; }

  void SetTicket(int i, double ticket);
  double ticket(int i) const { return tickets_[i]; }

  /// Sampling weight of item i after the min-shift (0 for ineligible items).
  double WeightOf(int i) const;

  /// Draws one eligible item; returns -1 when nothing is eligible.
  int Sample(Rng& rng) const;

 private:
  void Rebase();
  void RefreshWeight(int i);

  FenwickTree tree_;
  std::vector<double> tickets_;
  std::vector<bool> eligible_;
  std::vector<int> eligible_items_;     ///< for the uniform fallback
  std::multiset<double> min_tracker_;   ///< eligible tickets, for O(log n) min
  double floor_ = 0.0;                  ///< min at the last re-anchor (lazy)
  int eligible_count_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_CORE_LOTTERY_H_
