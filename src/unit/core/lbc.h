#ifndef UNIT_CORE_LBC_H_
#define UNIT_CORE_LBC_H_

#include <cstdint>
#include <vector>

#include "unit/common/rng.h"
#include "unit/common/types.h"
#include "unit/core/usm.h"
#include "unit/txn/outcome.h"

namespace unitdb {

/// Control signals the Load Balancing Controller emits (paper Fig. 2).
enum class ControlSignal {
  kNone = 0,
  /// Rejection cost dominates: Loosen Admission Control (LAC).
  kLoosenAdmission,
  /// DMF cost dominates: Degrade Updates + Tighten Admission Control (TAC).
  kDegradeAndTighten,
  /// DSF cost dominates: Upgrade Updates.
  kUpgradeUpdates,
  /// No failure dominates yet, but the CPU is saturating: shed update load
  /// before queries start missing (the paper's stated aim is to *prevent*
  /// overload rather than react to it — Section 5).
  kPreventiveDegrade,
};

const char* ControlSignalName(ControlSignal s);

/// Full record of one LBC monitoring tick, for telemetry (obs/ trace events
/// carry these fields so tools/trace_check can re-verify the Fig. 2 rule).
/// `evaluated` is true only when the adaptive-allocation pass actually ran —
/// i.e. the grace period elapsed or the USM dropped, and the cohort since
/// the last pass resolved at least one query. The ratios are the post-floor
/// penalty-weighted values the dominant-cost comparison chose between.
struct LbcDecision {
  ControlSignal signal = ControlSignal::kNone;
  bool evaluated = false;
  bool drop_triggered = false;  ///< this pass was caused by a USM drop
  int64_t resolved = 0;         ///< cohort size the ratios are over
  double r = 0.0;               ///< weighted rejection ratio (post-floor)
  double fm = 0.0;              ///< weighted DMF ratio (post-floor)
  double fs = 0.0;              ///< weighted DSF ratio (post-floor)
  double utilization = 0.0;     ///< utilization EWMA the decision saw
  double usm_ewma = 0.0;        ///< smoothed per-tick USM after this tick
};

/// LBC tunables.
struct LbcParams {
  /// Periodic trigger: at least one adaptive-allocation pass per grace
  /// period, even without a USM drop.
  SimDuration grace_period = SecondsToSim(2.0);
  /// Drop trigger: act when the smoothed per-tick USM falls by more than
  /// this fraction of the USM range between consecutive monitoring ticks.
  /// (The paper quotes 1% of the range over far longer windows; per-second
  /// windows need a larger threshold to avoid thrashing.)
  double drop_threshold = 0.05;
  /// Smoothing weight of the per-tick USM monitor.
  double usm_ewma_alpha = 0.2;
  /// Failure ratios below this floor are not actionable: a lone DSF in an
  /// otherwise healthy window must not trigger a global update upgrade that
  /// erases accumulated degradation (and symmetrically for R / F_m).
  double min_actionable_ratio = 0.01;
  /// ... and at least this many failures of the type in the window (small
  /// windows make a single failure look like a large ratio).
  int64_t min_actionable_count = 1;
  /// Preventive trigger: when windowed CPU utilization exceeds this and no
  /// failure cost dominates yet, emit kPreventiveDegrade. Set > 1 to
  /// disable (reactive-only, the literal Fig. 2 algorithm).
  double preventive_utilization = 0.97;
};

/// The paper's Load Balancing Controller: monitors the USM and the outcome
/// ratios, and runs the Adaptive Allocation Algorithm (Fig. 2) whenever the
/// grace period elapses or the (smoothed) USM drops sharply — reduce
/// whichever average penalty (R, F_m, F_s) currently dominates; when every
/// weight is zero, reduce the failure with the highest raw ratio instead.
///
/// Multi-preference support: construct with one UsmWeights per user class
/// and feed Tick the per-class cumulative counters; each class's failures
/// are valued by its own penalties (class indices beyond the table fall
/// back to its last entry).
///
/// Windowing: the controller is fed *cumulative* outcome counters each
/// monitoring tick. Per-tick diffs drive the USM drop detector; decision
/// ratios are computed over everything resolved since the previous
/// adaptive-allocation pass, so each decision looks at a full cohort
/// instead of a noisy one-tick slice.
class LoadBalancingController {
 public:
  LoadBalancingController(const LbcParams& params, const UsmWeights& weights);
  LoadBalancingController(const LbcParams& params,
                          std::vector<UsmWeights> class_weights);

  /// One monitoring tick. `per_class_cumulative` holds the engine's
  /// cumulative per-class outcome counters (a single entry when preference
  /// classes are unused); `tick_utilization` is the CPU utilization
  /// observed over the last tick. Returns the signal to apply (kNone when
  /// not triggered or when nothing is failing).
  ControlSignal Tick(SimTime now,
                     const std::vector<OutcomeCounts>& per_class_cumulative,
                     double tick_utilization, Rng& rng);

  /// Single-class convenience overload.
  ControlSignal Tick(SimTime now, const OutcomeCounts& cumulative,
                     double tick_utilization, Rng& rng);

  /// Like Tick, additionally reporting the evaluation telemetry the signal
  /// was derived from. Tick delegates here; behavior (including RNG
  /// consumption on ties) is identical.
  LbcDecision TickDecision(
      SimTime now, const std::vector<OutcomeCounts>& per_class_cumulative,
      double tick_utilization, Rng& rng);

  /// Number of adaptive-allocation evaluations that produced a signal.
  int64_t triggers() const { return triggers_; }
  /// How many evaluations were caused by a USM drop (vs. the grace period).
  int64_t drop_triggers() const { return drop_triggers_; }

 private:
  bool AllClassesNaive() const;
  double RangeOverClasses() const;

  LbcParams params_;
  std::vector<UsmWeights> class_weights_;

  // Per-tick USM drop monitor.
  std::vector<OutcomeCounts> last_tick_counts_;
  double usm_ewma_ = 0.0;
  bool ewma_initialized_ = false;
  double utilization_ewma_ = 0.0;

  // Decision window (since the previous evaluation).
  std::vector<OutcomeCounts> last_eval_counts_;
  SimTime last_eval_ = 0;

  int64_t triggers_ = 0;
  int64_t drop_triggers_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_CORE_LBC_H_
