#ifndef UNIT_CORE_USM_H_
#define UNIT_CORE_USM_H_

#include <algorithm>
#include <vector>

#include "unit/txn/outcome.h"

namespace unitdb {

/// The User Satisfaction Metric weights (paper Section 2.3): the success
/// gain G_s (normalized to 1) and the three failure penalties, all
/// expressed relative to G_s.
struct UsmWeights {
  double gain = 1.0;  ///< G_s
  double c_r = 0.0;   ///< rejection penalty
  double c_fm = 0.0;  ///< deadline-missed failure penalty
  double c_fs = 0.0;  ///< data-stale failure penalty

  /// True when every penalty is zero: the paper's "naive" setting where
  /// USM degenerates to the plain success ratio.
  bool AllZeroPenalties() const {
    return c_r == 0.0 && c_fm == 0.0 && c_fs == 0.0;
  }

  /// Width of the attainable USM interval [-max penalty, gain].
  double Range() const {
    return gain + std::max({c_r, c_fm, c_fs});
  }

  bool operator==(const UsmWeights&) const = default;
};

/// Per-term decomposition of the average USM (Eq. 5): USM = S - R - Fm - Fs.
struct UsmBreakdown {
  double s = 0.0;   ///< average success gain
  double r = 0.0;   ///< average rejection cost
  double fm = 0.0;  ///< average DMF cost
  double fs = 0.0;  ///< average DSF cost

  double Value() const { return s - r - fm - fs; }
};

/// Total USM over all submitted queries (Eq. 4).
double UsmTotal(const OutcomeCounts& counts, const UsmWeights& weights);

/// Average USM per submitted query (Eq. 5); 0 with no queries.
double UsmAverage(const OutcomeCounts& counts, const UsmWeights& weights);

/// Eq. 5 decomposition.
UsmBreakdown UsmDecompose(const OutcomeCounts& counts,
                          const UsmWeights& weights);

/// Multi-preference extension (the paper assumes one preference class and
/// notes the generalization in Section 3.1): total/average USM over
/// per-class counters, each valued by its own weights. A class index beyond
/// `class_weights` falls back to the last entry; empty weights mean naive.
double UsmTotalMulti(const std::vector<OutcomeCounts>& per_class_counts,
                     const std::vector<UsmWeights>& class_weights);
double UsmAverageMulti(const std::vector<OutcomeCounts>& per_class_counts,
                       const std::vector<UsmWeights>& class_weights);

/// Weights for `preference_class` under the fallback rule above.
const UsmWeights& WeightsForClass(const std::vector<UsmWeights>& class_weights,
                                  int preference_class);

}  // namespace unitdb

#endif  // UNIT_CORE_USM_H_
