#include "unit/core/update_modulation.h"

#include <algorithm>
#include <cmath>

namespace unitdb {

UpdateModulator::UpdateModulator(int num_items,
                                 const ModulationParams& params)
    : params_(params),
      sampler_(num_items),
      stale_hits_(num_items, 0),
      last_event_(num_items, 0) {}

double UpdateModulator::DecayedTicket(ItemId item, SimTime now) {
  double t = sampler_.ticket(item);
  if (params_.time_decay) {
    const double dt_s = SimToSeconds(now - last_event_[item]);
    if (dt_s > 0.0 && params_.forget_interval_s > 0.0) {
      t *= std::pow(params_.c_forget, dt_s / params_.forget_interval_s);
    }
    last_event_[item] = now;
    return t;
  }
  // Literal per-event reading of Eq. 8.
  return t * params_.c_forget;
}

void UpdateModulator::AttachSources(const Database& db) {
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const bool has_source = db.item(i).ideal_period < kNoUpdates;
    sampler_.SetEligible(i, has_source);
  }
}

void UpdateModulator::OnQueryAccess(ItemId item, const Transaction& q,
                                    SimTime now) {
  // Eq. 6: DT_j = qe_i / qt_i (scaled, see ModulationParams::dt_scale);
  // Eq. 8: T_j = T_j * C_forget - DT_j.
  const double dt = params_.dt_scale * q.CpuUtilizationShare();
  sampler_.SetTicket(
      item, std::max(params_.ticket_floor, DecayedTicket(item, now) - dt));
}

double UpdateModulator::SigmoidIncrease(double exec_s) const {
  // Eq. 7 (see DESIGN.md §4 on the OCR ambiguity): logistic of how far this
  // update's execution time sits above the average, scaled to be
  // outlier-robust.
  const double avg = update_exec_s_.mean();
  double scale = params_.sigmoid_scale;
  if (scale <= 0.0) {
    scale = update_exec_s_.stddev();
    if (scale <= 1e-12) scale = std::max(avg, 1e-6);
  }
  return 1.0 / (1.0 + std::exp(-(exec_s - avg) / scale));
}

void UpdateModulator::OnStaleAccess(ItemId item) { ++stale_hits_[item]; }

void UpdateModulator::OnDegradedAccess(ItemId item) { ++stale_hits_[item]; }

void UpdateModulator::OnUpdateArrival(ItemId item, SimDuration exec,
                                      SimTime now) {
  const double exec_s = SimToSeconds(exec);
  update_exec_s_.Add(exec_s);
  const double it_j = SigmoidIncrease(exec_s);
  sampler_.SetTicket(item, DecayedTicket(item, now) + it_j);
}

void UpdateModulator::EmitPeriodChange(ItemId item, SimDuration from,
                                       SimDuration to, const char* cause,
                                       SimTime now) {
  if (trace_ == nullptr || to == from) return;
  TraceEvent e;
  e.time = now;
  e.type = TraceEventType::kPeriodChange;
  e.item = item;
  e.period_from = from;
  e.period_to = to;
  e.set_reason(cause);
  trace_->Emit(e);
}

void UpdateModulator::Degrade(Database& db, Rng& rng, SimTime now) {
  ++degrade_signals_;
  const int batch =
      params_.degrade_batch > 0 ? params_.degrade_batch : sampler_.size();
  for (int k = 0; k < batch; ++k) {
    const int victim = sampler_.Sample(rng);
    if (victim < 0) return;  // nothing eligible
    DataItemState& item = db.mutable_item(victim);
    const SimDuration before = item.current_period;
    const double cap =
        static_cast<double>(item.ideal_period) * params_.max_stretch;
    const double stretched =
        std::min(cap, static_cast<double>(item.current_period) *
                          (1.0 + params_.c_du));
    db.SetCurrentPeriod(victim, static_cast<SimDuration>(stretched));
    EmitPeriodChange(victim, before, db.item(victim).current_period,
                     "degrade", now);
    ++total_picks_;
  }
}

std::vector<ItemId> UpdateModulator::Upgrade(Database& db, SimTime now) {
  ++upgrade_signals_;
  std::vector<ItemId> touched;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const DataItemState& item = db.item(i);
    if (item.ideal_period >= kNoUpdates ||
        item.current_period <= item.ideal_period) {
      stale_hits_[i] = 0;
      continue;
    }
    const SimDuration before = item.current_period;
    if (params_.selective_upgrade) {
      if (stale_hits_[i] == 0) continue;
      stale_hits_[i] = 0;
      if (sampler_.ticket(i) <= 0.0) {
        // Demand-heavy item (accesses outweigh updates): demonstrably live,
        // restore its source rate outright.
        db.SetCurrentPeriod(i, item.ideal_period);
      } else {
        // Over-updated item (updates outweigh accesses — the paper's
        // "inherently stable data needs few updates" holds in reverse
        // here): walk it back gradually per Eq. 10; the buffered newest
        // value the caller applies already repairs the observed staleness.
        db.SetCurrentPeriod(
            i, std::max(item.ideal_period,
                        static_cast<SimDuration>(
                            static_cast<double>(item.current_period) *
                            params_.c_uu)));
      }
      EmitPeriodChange(i, before, item.current_period, "upgrade", now);
      touched.push_back(i);
      continue;
    }
    stale_hits_[i] = 0;
    const double current = static_cast<double>(item.current_period);
    const double ideal = static_cast<double>(item.ideal_period);
    const double next = params_.linear_upgrade
                            ? current - params_.c_uu * ideal
                            : current * params_.c_uu;
    db.SetCurrentPeriod(
        i, std::max(item.ideal_period, static_cast<SimDuration>(next)));
    EmitPeriodChange(i, before, item.current_period, "upgrade", now);
    touched.push_back(i);
  }
  return touched;
}

}  // namespace unitdb
