#include "unit/core/lbc.h"

#include <algorithm>
#include <cassert>

namespace unitdb {

namespace {

// Diffs two cumulative per-class series (the newer one may have grown).
std::vector<OutcomeCounts> Diff(const std::vector<OutcomeCounts>& now,
                                const std::vector<OutcomeCounts>& past) {
  std::vector<OutcomeCounts> window(now.size());
  for (size_t i = 0; i < now.size(); ++i) {
    window[i] = i < past.size() ? now[i] - past[i] : now[i];
  }
  return window;
}

int64_t TotalResolved(const std::vector<OutcomeCounts>& counts) {
  int64_t n = 0;
  for (const auto& c : counts) n += c.resolved();
  return n;
}

// Average USM over a window of *resolved* queries. Windows diff cumulative
// counters, whose `submitted` field is arrival-timed while the outcome
// fields are resolution-timed; normalizing by resolved() keeps the cohorts
// consistent.
double WindowUsm(const std::vector<OutcomeCounts>& window,
                 const std::vector<UsmWeights>& class_weights) {
  const int64_t resolved = TotalResolved(window);
  if (resolved <= 0) return 0.0;
  return UsmTotalMulti(window, class_weights) / static_cast<double>(resolved);
}

}  // namespace

const char* ControlSignalName(ControlSignal s) {
  switch (s) {
    case ControlSignal::kNone:
      return "none";
    case ControlSignal::kLoosenAdmission:
      return "loosen-ac";
    case ControlSignal::kDegradeAndTighten:
      return "degrade+tighten";
    case ControlSignal::kUpgradeUpdates:
      return "upgrade";
    case ControlSignal::kPreventiveDegrade:
      return "preventive-degrade";
  }
  return "?";
}

LoadBalancingController::LoadBalancingController(const LbcParams& params,
                                                 const UsmWeights& weights)
    : LoadBalancingController(params, std::vector<UsmWeights>{weights}) {}

LoadBalancingController::LoadBalancingController(
    const LbcParams& params, std::vector<UsmWeights> class_weights)
    : params_(params), class_weights_(std::move(class_weights)) {
  assert(!class_weights_.empty());
}

bool LoadBalancingController::AllClassesNaive() const {
  for (const auto& w : class_weights_) {
    if (!w.AllZeroPenalties()) return false;
  }
  return true;
}

double LoadBalancingController::RangeOverClasses() const {
  double range = 0.0;
  for (const auto& w : class_weights_) range = std::max(range, w.Range());
  return range;
}

LbcDecision LoadBalancingController::TickDecision(
    SimTime now, const std::vector<OutcomeCounts>& per_class_cumulative,
    double tick_utilization, Rng& rng) {
  utilization_ewma_ = 0.3 * tick_utilization + 0.7 * utilization_ewma_;
  LbcDecision decision;
  decision.utilization = utilization_ewma_;

  // --- per-tick USM monitoring (drop detector) ---
  const std::vector<OutcomeCounts> tick_window =
      Diff(per_class_cumulative, last_tick_counts_);
  last_tick_counts_ = per_class_cumulative;
  bool dropped = false;
  if (TotalResolved(tick_window) > 0) {
    const double usm = WindowUsm(tick_window, class_weights_);
    if (!ewma_initialized_) {
      usm_ewma_ = usm;
      ewma_initialized_ = true;
    } else {
      const double next = params_.usm_ewma_alpha * usm +
                          (1.0 - params_.usm_ewma_alpha) * usm_ewma_;
      dropped =
          (usm_ewma_ - next) > params_.drop_threshold * RangeOverClasses();
      usm_ewma_ = next;
    }
  }
  decision.usm_ewma = usm_ewma_;

  const bool periodic = (now - last_eval_) >= params_.grace_period;
  if (!periodic && !dropped) return decision;

  // --- adaptive allocation over the cohort since the last evaluation ---
  const std::vector<OutcomeCounts> window =
      Diff(per_class_cumulative, last_eval_counts_);
  last_eval_counts_ = per_class_cumulative;
  last_eval_ = now;
  const int64_t resolved = TotalResolved(window);
  if (resolved <= 0) return decision;
  if (dropped) ++drop_triggers_;
  decision.evaluated = true;
  decision.drop_triggered = dropped;
  decision.resolved = resolved;

  // Paper Fig. 2: weigh each failure ratio by its (per-class) penalty; with
  // all-zero penalties the raw ratios themselves drive the decision.
  const bool naive = AllClassesNaive();
  const double n = static_cast<double>(resolved);
  double r = 0.0, fm = 0.0, fs = 0.0;
  int64_t r_count = 0, fm_count = 0, fs_count = 0;
  for (size_t c = 0; c < window.size(); ++c) {
    const UsmWeights& w =
        WeightsForClass(class_weights_, static_cast<int>(c));
    r += static_cast<double>(window[c].rejected) * (naive ? 1.0 : w.c_r);
    fm += static_cast<double>(window[c].dmf) * (naive ? 1.0 : w.c_fm);
    fs += static_cast<double>(window[c].dsf) * (naive ? 1.0 : w.c_fs);
    r_count += window[c].rejected;
    fm_count += window[c].dmf;
    fs_count += window[c].dsf;
  }
  r /= n;
  fm /= n;
  fs /= n;
  // Sub-floor ratios are noise, not a dominant cost; acting on them
  // thrashes (notably: one stray DSF would un-degrade every update).
  const double floor = params_.min_actionable_ratio;
  if (static_cast<double>(r_count) / n < floor ||
      r_count < params_.min_actionable_count) {
    r = 0.0;
  }
  if (static_cast<double>(fm_count) / n < floor ||
      fm_count < params_.min_actionable_count) {
    fm = 0.0;
  }
  if (static_cast<double>(fs_count) / n < floor ||
      fs_count < params_.min_actionable_count) {
    fs = 0.0;
  }
  decision.r = r;
  decision.fm = fm;
  decision.fs = fs;

  const double top = std::max({r, fm, fs});
  if (top <= 0.0) {
    // Nothing is failing (yet). If the CPU is saturating, shed update load
    // preventively instead of waiting for the first deadline misses.
    if (utilization_ewma_ >= params_.preventive_utilization) {
      ++triggers_;
      decision.signal = ControlSignal::kPreventiveDegrade;
    }
    return decision;
  }

  // Break ties randomly among the maximal costs.
  ControlSignal candidates[3];
  int n_candidates = 0;
  if (r == top) candidates[n_candidates++] = ControlSignal::kLoosenAdmission;
  if (fm == top) {
    candidates[n_candidates++] = ControlSignal::kDegradeAndTighten;
  }
  if (fs == top) candidates[n_candidates++] = ControlSignal::kUpgradeUpdates;
  decision.signal =
      candidates[n_candidates == 1 ? 0 : rng.UniformInt(0, n_candidates - 1)];

  ++triggers_;
  return decision;
}

ControlSignal LoadBalancingController::Tick(
    SimTime now, const std::vector<OutcomeCounts>& per_class_cumulative,
    double tick_utilization, Rng& rng) {
  return TickDecision(now, per_class_cumulative, tick_utilization, rng).signal;
}

ControlSignal LoadBalancingController::Tick(SimTime now,
                                            const OutcomeCounts& cumulative,
                                            double tick_utilization,
                                            Rng& rng) {
  return Tick(now, std::vector<OutcomeCounts>{cumulative}, tick_utilization,
              rng);
}

}  // namespace unitdb
