#include "unit/core/policies/imu.h"

// IMU is fully described by the Policy defaults; this translation unit only
// anchors the class for the library archive.
namespace unitdb {}  // namespace unitdb
