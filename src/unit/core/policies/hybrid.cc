#include "unit/core/policies/hybrid.h"

#include "unit/db/database.h"
#include "unit/sched/engine_context.h"

namespace unitdb {

bool HybridPolicy::BeforeQueryDispatch(EngineContext& engine, Transaction& query) {
  if (query.refresh_rounds() >= engine.params().max_refresh_rounds) {
    return true;
  }
  bool issued = false;
  for (ItemId item : query.items()) {
    if (engine.db().Freshness(item, engine.now()) >= query.freshness_req()) {
      continue;
    }
    if (engine.PendingUpdatesForItem(item) > 0) continue;
    engine.IssueOnDemandUpdate(item);  // applies the buffered feed value
    ++repairs_issued_;
    issued = true;
  }
  if (!issued) return true;
  query.IncrementRefreshRounds();
  return false;
}

}  // namespace unitdb
