#include "unit/core/policies/qmf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "unit/db/database.h"
#include "unit/sched/engine_context.h"

namespace unitdb {

QmfPolicy::QmfPolicy(QmfParams params)
    : params_(params), budget_(params.initial_budget) {}

void QmfPolicy::Attach(EngineContext& engine) {
  const int n = engine.db().num_items();
  access_count_.assign(n, 0.0);
  update_count_.assign(n, 0.0);
  window_budget_s_ =
      budget_ * SimToSeconds(engine.params().control_period);
  window_admitted_work_s_ = 0.0;
  last_tick_ = 0;
  last_busy_s_ = 0.0;
}

bool QmfPolicy::AdmitQuery(EngineContext& engine, const Transaction& query) {
  (void)engine;
  const double demand_s = SimToSeconds(query.estimate());
  if (window_admitted_work_s_ + demand_s > window_budget_s_) {
    ++budget_rejections_;
    return false;
  }
  window_admitted_work_s_ += demand_s;
  return true;
}

void QmfPolicy::OnQueryResolved(EngineContext& engine, const Transaction& query,
                                Outcome outcome) {
  (void)engine;
  if (outcome == Outcome::kRejected) return;
  ++window_admitted_resolved_;
  if (outcome == Outcome::kDeadlineMiss) {
    ++window_admitted_missed_;
    return;
  }
  // Committed (success or stale): count perceived freshness and accesses.
  ++window_committed_;
  if (outcome == Outcome::kSuccess) ++window_fresh_;
  for (ItemId item : query.items()) access_count_[item] += 1.0;
}

void QmfPolicy::OnUpdateSourceArrival(EngineContext& engine, ItemId item) {
  (void)engine;
  update_count_[item] += 1.0;
}

void QmfPolicy::OnControlTick(EngineContext& engine) {
  const SimTime now = engine.now();
  const double window_s = SimToSeconds(now - last_tick_);
  last_tick_ = now;

  const double busy = engine.BusySeconds();
  const double utilization =
      window_s > 0.0 ? (busy - last_busy_s_) / window_s : 0.0;
  last_busy_s_ = busy;

  const double freshness =
      window_committed_ > 0 ? static_cast<double>(window_fresh_) /
                                  static_cast<double>(window_committed_)
                            : 1.0;
  const double miss_ratio =
      window_admitted_resolved_ > 0
          ? static_cast<double>(window_admitted_missed_) /
                static_cast<double>(window_admitted_resolved_)
          : 0.0;

  const bool overloaded = utilization >= params_.target_utilization ||
                          miss_ratio > params_.target_miss_ratio;
  if (!overloaded) {
    if (freshness < params_.target_freshness) {
      UpgradeAll(engine);
    } else {
      budget_ = std::min(params_.max_budget,
                         budget_ * (1.0 + params_.budget_step));
    }
  } else {
    if (freshness >= params_.target_freshness) {
      DegradeLowestRatio(engine);
    } else {
      budget_ = std::max(params_.min_budget,
                         budget_ * (1.0 - params_.budget_step));
    }
  }

  // Roll the window.
  window_budget_s_ =
      budget_ * SimToSeconds(engine.params().control_period);
  window_admitted_work_s_ = 0.0;
  window_admitted_resolved_ = 0;
  window_admitted_missed_ = 0;
  window_committed_ = 0;
  window_fresh_ = 0;
  for (auto& c : access_count_) c *= params_.counter_decay;
  for (auto& c : update_count_) c *= params_.counter_decay;
}

void QmfPolicy::DegradeLowestRatio(EngineContext& engine) {
  Database& db = engine.db();
  // Rank update-bearing items by access/update ratio, lowest first: items
  // that are updated a lot but read rarely lose update bandwidth first.
  std::vector<int> order;
  order.reserve(db.num_items());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const DataItemState& item = db.item(i);
    if (item.ideal_period >= kNoUpdates) continue;
    if (static_cast<double>(item.current_period) >=
        static_cast<double>(item.ideal_period) * params_.max_stretch) {
      continue;
    }
    order.push_back(i);
  }
  auto ratio = [this](int i) {
    return access_count_[i] / (update_count_[i] + 1.0);
  };
  const size_t k =
      std::min<size_t>(order.size(), static_cast<size_t>(params_.degrade_batch));
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int a, int b) {
                      const double ra = ratio(a), rb = ratio(b);
                      if (ra != rb) return ra < rb;
                      return a < b;
                    });
  for (size_t j = 0; j < k; ++j) {
    const ItemId i = order[j];
    const DataItemState& item = db.item(i);
    const double cap =
        static_cast<double>(item.ideal_period) * params_.max_stretch;
    const double stretched =
        std::min(cap, static_cast<double>(item.current_period) *
                          params_.degrade_factor);
    db.SetCurrentPeriod(i, static_cast<SimDuration>(stretched));
  }
}

void QmfPolicy::UpgradeAll(EngineContext& engine) {
  Database& db = engine.db();
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const DataItemState& item = db.item(i);
    if (item.ideal_period >= kNoUpdates ||
        item.current_period <= item.ideal_period) {
      continue;
    }
    const SimDuration shrunk = std::max(
        item.ideal_period,
        static_cast<SimDuration>(static_cast<double>(item.current_period) /
                                 params_.degrade_factor));
    db.SetCurrentPeriod(i, shrunk);
  }
}

}  // namespace unitdb
