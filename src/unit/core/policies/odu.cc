#include "unit/core/policies/odu.h"

#include "unit/db/database.h"
#include "unit/sched/engine_context.h"

namespace unitdb {

int OduPolicy::RefreshStaleItems(EngineContext& engine, const Transaction& query) {
  int issued = 0;
  for (ItemId item : query.items()) {
    if (engine.db().Freshness(item, engine.now()) >= query.freshness_req()) {
      continue;
    }
    if (dedupe_in_flight_ && engine.PendingUpdatesForItem(item) > 0) {
      continue;
    }
    engine.IssueOnDemandUpdate(item);
    ++issued;
  }
  refreshes_issued_ += issued;
  return issued;
}

bool OduPolicy::AdmitQuery(EngineContext& engine, const Transaction& query) {
  RefreshStaleItems(engine, query);
  return true;  // ODU never rejects
}

bool OduPolicy::BeforeQueryDispatch(EngineContext& engine, Transaction& query) {
  if (query.refresh_rounds() >= engine.params().max_refresh_rounds) {
    return true;  // stop chasing a source that outruns us; read what we have
  }
  bool stale = false;
  for (ItemId item : query.items()) {
    if (engine.db().Freshness(item, engine.now()) < query.freshness_req()) {
      stale = true;
      break;
    }
  }
  if (!stale) return true;
  // Re-issue for whatever went stale while queued; if another refresh is
  // already in flight (it outranks us), just step aside for it.
  const int issued = RefreshStaleItems(engine, query);
  bool in_flight = issued > 0;
  if (!in_flight) {
    for (ItemId item : query.items()) {
      if (engine.PendingUpdatesForItem(item) > 0) {
        in_flight = true;
        break;
      }
    }
  }
  if (!in_flight) return true;  // nothing we can do; read stale data
  query.IncrementRefreshRounds();
  ++postponements_;
  return false;
}

}  // namespace unitdb
