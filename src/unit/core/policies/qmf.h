#ifndef UNIT_CORE_POLICIES_QMF_H_
#define UNIT_CORE_POLICIES_QMF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "unit/core/policy.h"

namespace unitdb {

/// Tunables of the QMF re-implementation.
struct QmfParams {
  /// CPU utilization set-point separating "underutilized" from "overloaded".
  double target_utilization = 0.90;
  /// Perceived-freshness target (fraction of committed queries meeting their
  /// freshness requirement).
  double target_freshness = 0.90;
  /// Miss-ratio target among admitted queries.
  double target_miss_ratio = 0.05;
  /// Admission budget: fraction of a control window's CPU the estimated
  /// demand of newly admitted queries may claim.
  double initial_budget = 1.0;
  double min_budget = 0.02;
  double max_budget = 2.0;
  /// Relative budget adjustment per control action.
  double budget_step = 0.15;
  /// Items degraded per QoD-degradation action (lowest access/update ratio
  /// first) and the per-action period stretch factor.
  int degrade_batch = 32;
  double degrade_factor = 2.0;
  double max_stretch = 1024.0;
  /// Forgetting factor on the per-item access/update counters.
  double counter_decay = 0.9;
};

/// Re-implementation of QMF (Kang, Son & Stankovic, TKDE'04) as described in
/// the UNIT paper (Sections 4.1 and 4.5): a feedback loop on deadline miss
/// ratio and data freshness.
///
///  * CPU underutilized:  freshness below target -> update more often
///    (restore degraded periods); otherwise -> admit more transactions.
///  * CPU overloaded:     freshness above target -> update less often
///    (degrade the QoD of items with the lowest access/update ratio);
///    otherwise -> drop incoming transactions until the system recovers.
///
/// Admission is a per-window CPU budget on the estimated demand of admitted
/// queries; under bursts the budget exhausts and every further query is
/// rejected — the conservative behaviour the UNIT paper observes ("QMF's
/// rejection ratio [is] very high", Section 4.5).
class QmfPolicy : public Policy {
 public:
  explicit QmfPolicy(QmfParams params = {});

  std::string name() const override { return "qmf"; }
  void Attach(EngineContext& engine) override;
  bool AdmitQuery(EngineContext& engine, const Transaction& query) override;
  void OnQueryResolved(EngineContext& engine, const Transaction& query,
                       Outcome outcome) override;
  void OnUpdateSourceArrival(EngineContext& engine, ItemId item) override;
  void OnControlTick(EngineContext& engine) override;

  double budget() const { return budget_; }
  int64_t budget_rejections() const { return budget_rejections_; }

 private:
  void DegradeLowestRatio(EngineContext& engine);
  void UpgradeAll(EngineContext& engine);

  QmfParams params_;
  double budget_;
  double window_admitted_work_s_ = 0.0;  ///< estimated demand admitted this window
  double window_budget_s_ = 0.0;         ///< CPU seconds the budget allows per window

  // Windowed monitors.
  int64_t window_admitted_resolved_ = 0;
  int64_t window_admitted_missed_ = 0;
  int64_t window_committed_ = 0;
  int64_t window_fresh_ = 0;
  double last_busy_s_ = 0.0;
  SimTime last_tick_ = 0;

  // Per-item decayed access/update counters for QoD degradation.
  std::vector<double> access_count_;
  std::vector<double> update_count_;

  int64_t budget_rejections_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_CORE_POLICIES_QMF_H_
