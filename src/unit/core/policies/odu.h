#ifndef UNIT_CORE_POLICIES_ODU_H_
#define UNIT_CORE_POLICIES_ODU_H_

#include <cstdint>
#include <string>

#include "unit/core/policy.h"

namespace unitdb {

/// Baseline ODU (On-Demand Update, paper Section 4.1): no periodic update
/// stream and no admission control; "updates are executed only when a query
/// finds that a needed data item is stale". The query finds out when it
/// arrives: each arriving query spawns refresh transactions for its stale
/// items, which run at update priority ahead of every queued query. The
/// extra refresh work delays queries — under flash crowds concurrent
/// arrivals re-request items whose refresh is still in flight, producing an
/// avalanche — "the additional update issued may also delay the query and
/// lead to missed deadlines" (paper).
class OduPolicy : public Policy {
 public:
  /// `dedupe_in_flight` suppresses refreshes for items that already have an
  /// update transaction in the system; without it, concurrent arrivals
  /// re-request in-flight items and the refresh stream avalanches under
  /// bursts. Defaults on (matching the paper's IMU~ODU behaviour under
  /// positively correlated updates); bench_ablation_victim quantifies it.
  explicit OduPolicy(bool dedupe_in_flight = true)
      : dedupe_in_flight_(dedupe_in_flight) {}

  std::string name() const override { return "odu"; }

  bool UsesPeriodicUpdates() const override { return false; }

  bool AdmitQuery(EngineContext& engine, const Transaction& query) override;

  /// Safety net: if an item is still stale when the query reaches the CPU
  /// (e.g. a fresh source generation landed while it queued), refresh once
  /// more before reading, bounded by EngineParams::max_refresh_rounds.
  bool BeforeQueryDispatch(EngineContext& engine, Transaction& query) override;

  int64_t refreshes_issued() const { return refreshes_issued_; }
  int64_t postponements() const { return postponements_; }

 private:
  /// Issues refreshes for stale items of `query`; returns how many.
  int RefreshStaleItems(EngineContext& engine, const Transaction& query);

  bool dedupe_in_flight_;
  int64_t refreshes_issued_ = 0;
  int64_t postponements_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_CORE_POLICIES_ODU_H_
