#ifndef UNIT_CORE_POLICIES_IMU_H_
#define UNIT_CORE_POLICIES_IMU_H_

#include <string>

#include "unit/core/policy.h"

namespace unitdb {

/// Baseline IMU (Immediate Update, paper Section 4.1): every update executes
/// at its source rate and no admission control is applied. Freshness is
/// maximal, but update work starves queries under heavy update load.
class ImuPolicy : public Policy {
 public:
  std::string name() const override { return "imu"; }
  // All defaults: admit everything, periodic updates at ideal rate.
};

}  // namespace unitdb

#endif  // UNIT_CORE_POLICIES_IMU_H_
