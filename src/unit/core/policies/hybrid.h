#ifndef UNIT_CORE_POLICIES_HYBRID_H_
#define UNIT_CORE_POLICIES_HYBRID_H_

#include <cstdint>
#include <string>

#include "unit/core/policies/unit_policy.h"

namespace unitdb {

/// UNIT + just-in-time repair — the natural "future work" extension of the
/// paper (discussed in DESIGN.md and EXPERIMENTS.md): keep UNIT's feedback
/// loop, admission control, and lottery-driven update shedding, but when a
/// query is about to read an item whose application was shed, apply the
/// push feed's buffered newest value first (an on-demand update at update
/// priority), exactly like ODU's refresh.
///
/// This combines UNIT's proactive overload prevention with ODU's
/// just-in-time coalescing — the mechanism that lets plain ODU edge UNIT
/// out at extreme update volumes (see EXPERIMENTS.md, Figure 4 deviation).
class HybridPolicy : public UnitPolicy {
 public:
  explicit HybridPolicy(const UsmWeights& weights, UnitParams params = {})
      : UnitPolicy(weights, params) {}

  std::string name() const override { return "unit-hybrid"; }

  /// Issues buffered-value refreshes for stale read-set items before the
  /// query occupies the CPU (bounded by EngineParams::max_refresh_rounds).
  bool BeforeQueryDispatch(EngineContext& engine, Transaction& query) override;

  int64_t repairs_issued() const { return repairs_issued_; }

 private:
  int64_t repairs_issued_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_CORE_POLICIES_HYBRID_H_
