#ifndef UNIT_CORE_POLICIES_UNIT_POLICY_H_
#define UNIT_CORE_POLICIES_UNIT_POLICY_H_

#include <limits>
#include <memory>
#include <string>

#include "unit/common/rng.h"
#include "unit/core/admission.h"
#include "unit/core/lbc.h"
#include "unit/core/policy.h"
#include "unit/core/update_modulation.h"
#include "unit/core/usm.h"

namespace unitdb {

/// Tunables of the full UNIT policy.
struct UnitParams {
  AdmissionParams admission;
  ModulationParams modulation;
  LbcParams lbc;
  uint64_t seed = 99;
  /// Component ablation switches (bench_ablation_components):
  bool enable_admission_control = true;
  bool enable_update_modulation = true;
};

/// The paper's UNIT framework (Section 3): Query Admission Control + Update
/// Frequency Modulation, coordinated by the Load Balancing Controller's
/// Adaptive Allocation Algorithm to maximize the User Satisfaction Metric.
class UnitPolicy : public Policy {
 public:
  explicit UnitPolicy(const UsmWeights& weights, UnitParams params = {});

  /// Multi-preference construction: one UsmWeights per user class (query
  /// `preference_class` indexes the table; out-of-range classes use the
  /// last entry). Admission and the Load Balancing Controller value each
  /// class's failures by its own penalties — the extension Section 3.1 of
  /// the paper sketches.
  UnitPolicy(std::vector<UsmWeights> class_weights, UnitParams params = {});

  std::string name() const override { return "unit"; }
  void Attach(EngineContext& engine) override;
  bool AdmitQuery(EngineContext& engine, const Transaction& query) override;
  void OnQueryResolved(EngineContext& engine, const Transaction& query,
                       Outcome outcome) override;
  void OnUpdateSourceArrival(EngineContext& engine, ItemId item) override;
  void OnControlTick(EngineContext& engine) override;
  double AdmissionKnob() const override {
    return params_.enable_admission_control
               ? admission_.c_flex()
               : std::numeric_limits<double>::quiet_NaN();
  }

  // Introspection (tests / benches).
  const AdmissionController& admission() const { return admission_; }
  const UpdateModulator& modulator() const { return modulator_; }
  const LoadBalancingController& lbc() const { return lbc_; }
  int64_t signals(ControlSignal s) const {
    return signal_counts_[static_cast<int>(s)];
  }

 private:
  std::vector<UsmWeights> class_weights_;
  UnitParams params_;
  AdmissionController admission_;
  UpdateModulator modulator_;  ///< sized at Attach; placeholder before
  LoadBalancingController lbc_;
  Rng rng_;
  double last_busy_s_ = 0.0;
  SimTime last_tick_ = 0;
  int64_t signal_counts_[5] = {0, 0, 0, 0, 0};
};

}  // namespace unitdb

#endif  // UNIT_CORE_POLICIES_UNIT_POLICY_H_
