#include "unit/core/policies/unit_policy.h"

#include "unit/obs/trace_sink.h"
#include "unit/db/database.h"
#include "unit/sched/engine_context.h"

namespace unitdb {

UnitPolicy::UnitPolicy(const UsmWeights& weights, UnitParams params)
    : UnitPolicy(std::vector<UsmWeights>{weights}, params) {}

UnitPolicy::UnitPolicy(std::vector<UsmWeights> class_weights,
                       UnitParams params)
    : class_weights_(std::move(class_weights)),
      params_(params),
      admission_(params.admission, WeightsForClass(class_weights_, 0)),
      modulator_(1, params.modulation),
      lbc_(params.lbc, class_weights_),
      rng_(params.seed) {}

void UnitPolicy::Attach(EngineContext& engine) {
  modulator_ = UpdateModulator(engine.db().num_items(), params_.modulation);
  modulator_.AttachSources(engine.db());
  modulator_.set_trace(engine.params().trace);
}

bool UnitPolicy::AdmitQuery(EngineContext& engine, const Transaction& query) {
  if (!params_.enable_admission_control) return true;
  const bool admit = admission_.Admit(
      engine, query,
      WeightsForClass(class_weights_, query.preference_class()));
  if (!admit) engine.ReportRejectReason(admission_.last_reject_reason());
  return admit;
}

void UnitPolicy::OnQueryResolved(EngineContext& engine, const Transaction& query,
                                 Outcome outcome) {
  // Ticket accounting counts actual data accesses: queries that committed
  // (successfully or stale) read their items; rejected/aborted ones did not.
  if (outcome != Outcome::kSuccess && outcome != Outcome::kDataStale) return;
  for (ItemId item : query.items()) {
    modulator_.OnQueryAccess(item, query, engine.now());
    const DataItemState& state = engine.db().item(item);
    if (outcome == Outcome::kDataStale &&
        engine.db().Freshness(item, engine.now()) < query.freshness_req()) {
      modulator_.OnStaleAccess(item);
      // The push feed has the newest value buffered; repair the observed
      // staleness right away so followers read fresh data.
      if (engine.PendingUpdatesForItem(item) == 0) {
        engine.IssueOnDemandUpdate(item);
      }
    } else if (state.current_period > state.ideal_period &&
               modulator_.ticket(item) <= 0.0) {
      // A user touched a degraded, demand-heavy item: register demand so
      // the next Upgrade signal restores it before a freshness miss
      // accrues. (Over-updated items — positive tickets — are degraded on
      // purpose; touching them is not a reason to restore.)
      modulator_.OnDegradedAccess(item);
    }
  }
}

void UnitPolicy::OnUpdateSourceArrival(EngineContext& engine, ItemId item) {
  modulator_.OnUpdateArrival(item, engine.db().item(item).update_exec,
                             engine.now());
}

void UnitPolicy::OnControlTick(EngineContext& engine) {
  // Windowed CPU utilization over the last tick, for the preventive trigger.
  const double busy = engine.BusySeconds();
  const double window_s = SimToSeconds(engine.now() - last_tick_);
  const double utilization =
      window_s > 0.0 ? (busy - last_busy_s_) / window_s : 0.0;
  last_busy_s_ = busy;
  last_tick_ = engine.now();

  const LbcDecision decision = lbc_.TickDecision(
      engine.now(), engine.per_class_counts(), utilization, rng_);
  const ControlSignal signal = decision.signal;
  ++signal_counts_[static_cast<int>(signal)];
  const double knob_before = AdmissionKnob();
  switch (signal) {
    case ControlSignal::kNone:
      break;
    case ControlSignal::kLoosenAdmission:
      if (params_.enable_admission_control) admission_.Loosen();
      break;
    case ControlSignal::kDegradeAndTighten:
      if (params_.enable_update_modulation) {
        modulator_.Degrade(engine.db(), rng_, engine.now());
      }
      if (params_.enable_admission_control) admission_.Tighten();
      break;
    case ControlSignal::kPreventiveDegrade:
      if (params_.enable_update_modulation) {
        modulator_.Degrade(engine.db(), rng_, engine.now());
      }
      break;
    case ControlSignal::kUpgradeUpdates:
      if (params_.enable_update_modulation) {
        // Push feeds keep delivering values while application is shed; on
        // restore, apply the buffered newest value right away instead of
        // waiting up to a full period for the next arrival.
        for (ItemId item : modulator_.Upgrade(engine.db(), engine.now())) {
          if (engine.db().Udrop(item, engine.now()) > 0 &&
              engine.PendingUpdatesForItem(item) == 0) {
            engine.IssueOnDemandUpdate(item);
          }
        }
      }
      break;
  }
  // One trace record per adaptive-allocation pass (including the "none"
  // verdict): the ratios it weighed, what it chose, and how the admission
  // knob moved. tools/trace_check re-verifies the Fig. 2 rule from these.
  TraceSink* trace = engine.params().trace;
  if (trace != nullptr && decision.evaluated) {
    TraceEvent e;
    e.time = engine.now();
    e.type = TraceEventType::kLbcSignal;
    e.set_reason(ControlSignalName(signal));
    e.r = decision.r;
    e.fm = decision.fm;
    e.fs = decision.fs;
    e.utilization = decision.utilization;
    e.resolved = decision.resolved;
    e.drop_trigger = decision.drop_triggered;
    e.knob_before = knob_before;
    e.knob = AdmissionKnob();
    trace->Emit(e);
  }
}

}  // namespace unitdb
