#include "unit/core/lottery.h"

#include <cassert>
#include <cmath>

namespace unitdb {

LotterySampler::LotterySampler(int n)
    : tree_(static_cast<size_t>(n)),
      tickets_(n, 0.0),
      eligible_(n, true),
      eligible_count_(n) {
  assert(n > 0);
  eligible_items_.reserve(n);
  for (int i = 0; i < n; ++i) {
    eligible_items_.push_back(i);
    min_tracker_.insert(0.0);
  }
  // floor_ == 0 == every ticket: weights start at zero (uniform fallback).
}

void LotterySampler::SetEligible(int i, bool eligible) {
  if (eligible_[i] == eligible) return;
  eligible_[i] = eligible;
  eligible_count_ += eligible ? 1 : -1;
  if (eligible) {
    min_tracker_.insert(tickets_[i]);
  } else {
    min_tracker_.erase(min_tracker_.find(tickets_[i]));
  }
  eligible_items_.clear();
  for (int j = 0; j < size(); ++j) {
    if (eligible_[j]) eligible_items_.push_back(j);
  }
  Rebase();
}

void LotterySampler::SetTicket(int i, double ticket) {
  if (eligible_[i]) {
    min_tracker_.erase(min_tracker_.find(tickets_[i]));
    min_tracker_.insert(ticket);
  }
  tickets_[i] = ticket;
  if (!eligible_[i]) return;
  if (ticket < floor_) {
    // Weights must stay non-negative: re-anchor at the new minimum.
    Rebase();
  } else {
    RefreshWeight(i);
  }
}

double LotterySampler::WeightOf(int i) const {
  return eligible_[i] ? tree_.Get(static_cast<size_t>(i)) : 0.0;
}

int LotterySampler::Sample(Rng& rng) const {
  if (eligible_count_ == 0) return -1;
  // The floor may be stale (above-minimum ticket raises don't re-anchor);
  // re-anchor exactly before drawing so probabilities match the paper's
  // (T_j - T_min) weights. The multiset gives the exact minimum in O(1);
  // the O(n) re-anchor only runs when the minimum actually moved.
  const double true_min = *min_tracker_.begin();
  if (true_min != floor_) {
    const_cast<LotterySampler*>(this)->Rebase();
  }
  const double total = tree_.total();
  if (total <= 1e-12) {
    // All shifted weights are zero: uniform lottery over eligible items.
    const size_t k = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(eligible_items_.size()) - 1));
    return eligible_items_[k];
  }
  const double dart = rng.NextDouble() * total;
  int pick = static_cast<int>(tree_.FindPrefix(dart));
  if (!eligible_[pick]) {
    // Rounding landed on a zero-weight slot; fall back to uniform-eligible.
    const size_t k = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(eligible_items_.size()) - 1));
    pick = eligible_items_[k];
  }
  return pick;
}

void LotterySampler::Rebase() {
  floor_ = min_tracker_.empty() ? 0.0 : *min_tracker_.begin();
  for (int j = 0; j < size(); ++j) {
    if (eligible_[j]) {
      tree_.Set(static_cast<size_t>(j), tickets_[j] - floor_);
    } else {
      tree_.Set(static_cast<size_t>(j), 0.0);
    }
  }
}

void LotterySampler::RefreshWeight(int i) {
  tree_.Set(static_cast<size_t>(i), tickets_[i] - floor_);
}

}  // namespace unitdb
