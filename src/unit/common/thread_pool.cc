#include "unit/common/thread_pool.h"

#include <algorithm>

namespace unitdb {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // packaged_task: exceptions land in the task's future
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

int ResolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace unitdb
