#include "unit/common/config.h"

#include <cstdlib>
#include <sstream>

namespace unitdb {

namespace {

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Status ParseEntry(const std::string& token, Config& config) {
  std::string t = Trim(token);
  if (t.rfind("--", 0) == 0) t = t.substr(2);
  const size_t eq = t.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("expected key=value, got '" + token + "'");
  }
  const std::string key = Trim(t.substr(0, eq));
  // Set() overwrites, but a key appearing twice in one parsed source is a
  // typo (a scenario file silently dropping its first fault0.kind would be
  // miserable to debug), so the parsers reject it.
  if (config.Has(key)) {
    return Status::InvalidArgument("duplicate key '" + key + "'");
  }
  config.Set(key, Trim(t.substr(eq + 1)));
  return Status::Ok();
}

}  // namespace

StatusOr<Config> Config::ParseArgs(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    Status s = ParseEntry(argv[i], config);
    if (!s.ok()) return s;
  }
  return config;
}

StatusOr<Config> Config::ParseString(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (Trim(line).empty()) continue;
    Status s = ParseEntry(line, config);
    if (!s.ok()) return s;
  }
  return config;
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::GetString(const std::string& key,
                              const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Config::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, _] : values_) keys.push_back(k);
  return keys;
}

Status Config::ExpectKeys(const std::vector<std::string>& allowed) const {
  for (const auto& [key, _] : values_) {
    bool known = false;
    for (const std::string& a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (known) continue;
    std::string message = "unknown key '" + key + "' (accepted:";
    for (const std::string& a : allowed) message += " " + a;
    message += ")";
    return Status::InvalidArgument(message);
  }
  return Status::Ok();
}

}  // namespace unitdb
