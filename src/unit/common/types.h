#ifndef UNIT_COMMON_TYPES_H_
#define UNIT_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace unitdb {

/// Simulated time, in microseconds since simulation start. The whole system
/// runs on a deterministic virtual clock; wall-clock time never enters the
/// simulation.
using SimTime = int64_t;

/// A duration on the simulated clock, also in microseconds.
using SimDuration = int64_t;

/// Identifier of a data item in the database, 0-based and dense.
using ItemId = int32_t;

/// Identifier of a transaction (query or update), unique within one run.
using TxnId = int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();
inline constexpr ItemId kInvalidItem = -1;
inline constexpr TxnId kInvalidTxn = -1;

/// Converts seconds (as used throughout the paper's prose) to SimTime.
constexpr SimDuration SecondsToSim(double seconds) {
  return static_cast<SimDuration>(seconds * 1e6);
}

/// Converts milliseconds to SimTime.
constexpr SimDuration MillisToSim(double millis) {
  return static_cast<SimDuration>(millis * 1e3);
}

/// Converts SimTime back to (fractional) seconds for reporting.
constexpr double SimToSeconds(SimDuration t) {
  return static_cast<double>(t) / 1e6;
}

}  // namespace unitdb

#endif  // UNIT_COMMON_TYPES_H_
