#ifndef UNIT_COMMON_FENWICK_H_
#define UNIT_COMMON_FENWICK_H_

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace unitdb {

/// Fenwick (binary indexed) tree over non-negative weights of type T
/// (double for the lottery sampler, int64_t for the admission index's
/// service-demand sums, where integer arithmetic keeps prefix sums exact).
///
/// Supports point assignment, prefix sums, and weighted sampling by prefix
/// search, all in O(log n). This is the data structure behind the
/// lottery-scheduling victim picker (Waldspurger '95 describes an O(log n)
/// tree-based lottery; a Fenwick tree is the compact modern equivalent) and
/// the engine's incremental admission index (core/admission.h).
template <typename T>
class BasicFenwickTree {
 public:
  BasicFenwickTree() = default;
  explicit BasicFenwickTree(size_t n) { Reset(n); }

  /// Resizes to n slots, all weights zero.
  void Reset(size_t n) {
    n_ = n;
    tree_.assign(n + 1, T{0});
    weights_.assign(n, T{0});
    total_ = T{0};
  }

  size_t size() const { return n_; }

  /// Total weight across all slots.
  T total() const { return total_; }

  /// Current weight of slot i.
  T Get(size_t i) const {
    assert(i < n_);
    return weights_[i];
  }

  /// Sets slot i to weight w (w must be >= 0).
  void Set(size_t i, T w) {
    assert(i < n_);
    assert(w >= T{0});
    const T delta = w - weights_[i];
    weights_[i] = w;
    total_ += delta;
    for (size_t j = i + 1; j <= n_; j += j & (~j + 1)) {
      tree_[j] += delta;
    }
    if constexpr (std::is_floating_point_v<T>) {
      if (total_ < T{0}) total_ = T{0};  // guard accumulated rounding error
    }
  }

  /// Adds delta to slot i (result must stay >= 0 up to rounding).
  void Add(size_t i, T delta) { Set(i, weights_[i] + delta); }

  /// Sum of weights in slots [0, i).
  T PrefixSum(size_t i) const {
    assert(i <= n_);
    T s{0};
    for (size_t j = i; j > 0; j -= j & (~j + 1)) {
      s += tree_[j];
    }
    return s;
  }

  /// Returns the smallest index i such that PrefixSum(i+1) > target, i.e.,
  /// the slot a dart thrown at `target` in [0, total()) lands in. If all
  /// weights are zero returns size()-1 (caller should check total() first).
  size_t FindPrefix(T target) const {
    assert(n_ > 0);
    size_t pos = 0;
    size_t mask = HighestPow2(n_);
    T acc{0};
    while (mask != 0) {
      const size_t next = pos + mask;
      if (next <= n_ && acc + tree_[next] <= target) {
        pos = next;
        acc += tree_[next];
      }
      mask >>= 1;
    }
    // pos is the count of slots whose cumulative weight is <= target.
    return pos < n_ ? pos : n_ - 1;
  }

 private:
  static size_t HighestPow2(size_t n) {
    size_t p = 1;
    while ((p << 1) <= n) p <<= 1;
    return p;
  }

  size_t n_ = 0;
  std::vector<T> tree_;     // 1-based internal nodes
  std::vector<T> weights_;  // exact per-slot weights for Get()/Set()
  T total_{0};
};

/// Historical name: the double-weighted tree used by the lottery sampler.
using FenwickTree = BasicFenwickTree<double>;

}  // namespace unitdb

#endif  // UNIT_COMMON_FENWICK_H_
