#ifndef UNIT_COMMON_CSV_H_
#define UNIT_COMMON_CSV_H_

#include <string>
#include <vector>

#include "unit/common/status.h"

namespace unitdb {

/// Minimal CSV writer for traces and experiment output. Fields containing
/// commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Appends one row.
  void AddRow(const std::vector<std::string>& fields);

  /// Serializes all rows.
  std::string ToString() const;

  /// Writes all rows to a file, replacing its contents.
  Status WriteFile(const std::string& path) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV reader matching CsvWriter's output (RFC 4180 quoting).
class CsvReader {
 public:
  /// Parses a whole document. Returns rows of fields.
  static StatusOr<std::vector<std::vector<std::string>>> Parse(
      const std::string& text);

  /// Reads and parses a file.
  static StatusOr<std::vector<std::vector<std::string>>> ReadFile(
      const std::string& path);
};

}  // namespace unitdb

#endif  // UNIT_COMMON_CSV_H_
