#include "unit/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace unitdb {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(n);
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::Clear() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return count_ > 0 ? min_ : 0.0; }

double RunningStat::max() const { return count_ > 0 ? max_ : 0.0; }

double Percentiles::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    ++counts_[static_cast<size_t>((x - lo_) / width_)];
  }
}

double Histogram::BucketLow(int b) const { return lo_ + b * width_; }

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Average-rank transform (ties share the mean of their rank range).
std::vector<double> Ranks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&v](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

}  // namespace unitdb
