#ifndef UNIT_COMMON_STATUS_H_
#define UNIT_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace unitdb {

/// Error codes for fallible library operations. The library does not use
/// exceptions; fallible construction and I/O return Status / StatusOr.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kIoError,
  kInternal,
};

/// Returns a short stable name for a status code ("OK", "INVALID_ARGUMENT"...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A lightweight success-or-error result, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" for logs and error reporting.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error, modeled after absl::StatusOr. Accessing the value of
/// a non-OK result is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status, mirroring absl::StatusOr ergonomics.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace unitdb

#endif  // UNIT_COMMON_STATUS_H_
