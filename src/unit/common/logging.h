#ifndef UNIT_COMMON_LOGGING_H_
#define UNIT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace unitdb {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped. Defaults to
/// kWarning so that library users see problems but simulations stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define UNIT_LOG(level)                                      \
  ::unitdb::internal_logging::LogMessage(                    \
      ::unitdb::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace unitdb

#endif  // UNIT_COMMON_LOGGING_H_
