#include "unit/common/rng.h"

#include <cassert>
#include <cmath>

namespace unitdb {

namespace {

// Advances a SplitMix64 stream: returns SplitMix64(state), steps the state.
uint64_t SplitMix64Next(uint64_t& state) {
  const uint64_t z = SplitMix64(state);
  state += 0x9E3779B97F4A7C15ULL;
  return z;
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64Next(x);
  // Avoid the all-zero state (cannot occur with SplitMix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = NextDouble();
  // Guard log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::BoundedPareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && lo < hi);
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfSampler::ZipfSampler(int n, double s) {
  assert(n >= 1);
  assert(s >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (int k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // exact, despite rounding
}

int ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // First index with cdf_[i] > u.
  int lo = 0;
  int hi = static_cast<int>(cdf_.size()) - 1;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (cdf_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(int k) const {
  assert(k >= 0 && k < static_cast<int>(cdf_.size()));
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace unitdb
