#ifndef UNIT_COMMON_THREAD_POOL_H_
#define UNIT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace unitdb {

/// Fixed-size thread pool for fanning independent experiment cells across
/// cores. Deliberately minimal — no work stealing, no priorities: tasks are
/// drained strictly FIFO from one queue, which keeps scheduling decisions
/// out of the determinism story (each task must be self-contained and seeded
/// deterministically; completion *order* may still vary, so callers collect
/// results by index, not by completion).
///
/// Exceptions thrown by a task are captured in the future returned by
/// `Submit` and rethrown on `.get()`; they never escape a worker thread.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains remaining tasks, then joins the workers (see Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. Thread-safe.
  /// Throws std::runtime_error if the pool has been shut down.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only; std::function needs copyable, so wrap it.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        throw std::runtime_error("ThreadPool::Submit after Shutdown");
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Blocks until the queue is empty and no worker is mid-task. New tasks
  /// may be submitted afterwards; this is a fence, not a shutdown.
  void WaitIdle();

  /// Finishes every queued task, then stops and joins the workers.
  /// Idempotent: extra calls (and the destructor) are no-ops.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;       // signals workers: task ready / shutdown
  std::condition_variable idle_cv_;  // signals WaitIdle: queue drained
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;  // workers currently running a task
  bool shutdown_ = false;
};

/// Worker count for `jobs <= 0` ("use the machine"): hardware concurrency,
/// or 1 when the runtime cannot tell.
int ResolveJobs(int jobs);

}  // namespace unitdb

#endif  // UNIT_COMMON_THREAD_POOL_H_
