#ifndef UNIT_COMMON_STATS_H_
#define UNIT_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace unitdb {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

  /// Removes all observations.
  void Clear();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially-weighted moving average, used by the engine to maintain
/// the per-class "average execution time" estimates that the paper assumes
/// the DBMS already tracks for query optimization.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool initialized() const { return initialized_; }
  /// Current estimate, or `fallback` before the first observation.
  double ValueOr(double fallback) const {
    return initialized_ ? value_ : fallback;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Collects samples and answers percentile queries. Keeps every sample;
/// intended for offline experiment reporting, not hot paths.
class Percentiles {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return samples_.size(); }

  /// p in [0, 100]. Nearest-rank percentile; 0 samples -> 0.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-bucket histogram over [lo, hi) plus overflow/underflow buckets,
/// used for the Figure 3 distribution plots.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  int64_t BucketCount(int b) const { return counts_[b]; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int buckets() const { return static_cast<int>(counts_.size()); }
  double BucketLow(int b) const;
  int64_t total() const { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

/// Pearson correlation coefficient of two equally-sized vectors; 0 if either
/// vector is constant or sizes mismatch. Used to verify that generated
/// update traces hit the paper's +/-0.8 correlation with the query trace.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation of two equally-sized vectors (ties get their
/// average rank).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace unitdb

#endif  // UNIT_COMMON_STATS_H_
