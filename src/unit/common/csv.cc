#include "unit/common/csv.h"

#include <fstream>
#include <sstream>

namespace unitdb {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\r\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::AddRow(const std::vector<std::string>& fields) {
  rows_.push_back(fields);
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += QuoteField(row[i]);
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << ToString();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::vector<std::vector<std::string>>> CsvReader::Parse(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    if (field_started || !field.empty() || !row.empty()) {
      end_field();
      rows.push_back(row);
      row.clear();
    }
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      if (!field.empty()) {
        return Status::InvalidArgument("quote in unquoted field at offset " +
                                       std::to_string(i));
      }
      in_quotes = true;
      field_started = true;
    } else if (c == ',') {
      end_field();
      field_started = true;  // a comma implies a following (possibly empty) field
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // Swallow; handled by the following '\n' (or end of input).
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
  end_row();
  return rows;
}

StatusOr<std::vector<std::vector<std::string>>> CsvReader::ReadFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

}  // namespace unitdb
