#ifndef UNIT_COMMON_CONFIG_H_
#define UNIT_COMMON_CONFIG_H_

#include <map>
#include <string>
#include <vector>

#include "unit/common/status.h"

namespace unitdb {

/// Flat key=value configuration used by the example binaries and benches so
/// experiments can be tweaked from the command line without recompiling.
///
/// Accepted syntax per entry: `key=value`. `ParseArgs` also accepts
/// `--key=value`. Lookup is typed with defaults; callers validate the key
/// set with ExpectKeys so a typo fails loudly instead of silently running
/// with the default value.
class Config {
 public:
  Config() = default;

  /// Parses argv-style arguments (skipping argv[0]). Non `key=value` tokens
  /// produce an error.
  static StatusOr<Config> ParseArgs(int argc, const char* const* argv);

  /// Parses a multi-line "key=value\n" blob; '#' starts a comment.
  static StatusOr<Config> ParseString(const std::string& text);

  void Set(const std::string& key, const std::string& value);
  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// All keys, sorted, for help/debug output.
  std::vector<std::string> Keys() const;

  /// Fails with InvalidArgument if any parsed key is not in `allowed`,
  /// naming the offending key and the accepted set. Every binary that
  /// parses a Config should call this right after parsing — a mistyped
  /// key silently falling back to its default is the worst failure mode
  /// a benchmark CLI can have.
  Status ExpectKeys(const std::vector<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace unitdb

#endif  // UNIT_COMMON_CONFIG_H_
