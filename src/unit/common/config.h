#ifndef UNIT_COMMON_CONFIG_H_
#define UNIT_COMMON_CONFIG_H_

#include <map>
#include <string>
#include <vector>

#include "unit/common/status.h"

namespace unitdb {

/// Flat key=value configuration used by the example binaries and benches so
/// experiments can be tweaked from the command line without recompiling.
///
/// Accepted syntax per entry: `key=value`. `ParseArgs` also accepts
/// `--key=value`. Lookup is typed with defaults; unknown keys can be listed
/// for "did you mean" style validation by the caller.
class Config {
 public:
  Config() = default;

  /// Parses argv-style arguments (skipping argv[0]). Non `key=value` tokens
  /// produce an error.
  static StatusOr<Config> ParseArgs(int argc, const char* const* argv);

  /// Parses a multi-line "key=value\n" blob; '#' starts a comment.
  static StatusOr<Config> ParseString(const std::string& text);

  void Set(const std::string& key, const std::string& value);
  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// All keys, sorted, for help/debug output.
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace unitdb

#endif  // UNIT_COMMON_CONFIG_H_
