#ifndef UNIT_COMMON_RNG_H_
#define UNIT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace unitdb {

/// Stateless SplitMix64 step: mixes `x + golden_ratio` through the finalizer.
/// Useful for deriving well-decorrelated seeds from structured inputs (e.g.
/// base seed + cell index); also the expander behind Rng's state setup.
uint64_t SplitMix64(uint64_t x);

/// Deterministic pseudo-random generator (xoshiro256**) plus the handful of
/// distributions the workload generators need. We own the implementation so
/// that traces are bit-reproducible across platforms and standard-library
/// versions (std::*_distribution is not portable across implementations).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Lognormal: exp(Normal(mu, sigma)) of the underlying normal.
  double LogNormal(double mu, double sigma);

  /// Bounded Pareto on [lo, hi) with tail index alpha > 0.
  double BoundedPareto(double alpha, double lo, double hi);

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Derives an independently-seeded child generator; useful for giving each
  /// workload component its own stream so adding one component does not
  /// perturb the others.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Sampler for a Zipf(s) distribution over ranks {0, 1, ..., n-1}:
/// P(rank k) proportional to 1/(k+1)^s. Precomputes the CDF once and samples
/// by binary search in O(log n). Rank 0 is the most popular.
class ZipfSampler {
 public:
  /// Builds the sampler. n >= 1; s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(int n, double s);

  /// Draws a rank in [0, n).
  int Sample(Rng& rng) const;

  /// Probability mass of rank k.
  double Pmf(int k) const;

  int n() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace unitdb

#endif  // UNIT_COMMON_RNG_H_
