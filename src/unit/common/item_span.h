#ifndef UNIT_COMMON_ITEM_SPAN_H_
#define UNIT_COMMON_ITEM_SPAN_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "unit/common/types.h"

namespace unitdb {

/// Non-owning view of a read set (contiguous ItemIds). The database and lock
/// manager take this instead of `const std::vector<ItemId>&` so transactions
/// can keep their read sets in an inline small-buffer (txn/read_set.h)
/// without a heap vector materializing on every freshness probe or lock
/// acquisition. Implicitly constructible from vectors and initializer lists;
/// the viewed storage must outlive the span (call-expression lifetime is
/// enough for every engine use).
class ItemSpan {
 public:
  constexpr ItemSpan() = default;
  constexpr ItemSpan(const ItemId* data, size_t size)
      : data_(data), size_(size) {}
  ItemSpan(const std::vector<ItemId>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}
  // A span of a braced list is only valid for the full-expression it appears
  // in — exactly like C++26 std::span's initializer_list constructor, and
  // all this class supports (see the class comment). GCC's lifetime warning
  // assumes storage beyond that, so it is suppressed here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  constexpr ItemSpan(std::initializer_list<ItemId> il)  // NOLINT
      : data_(il.begin()), size_(il.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  constexpr const ItemId* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const ItemId* begin() const { return data_; }
  constexpr const ItemId* end() const { return data_ + size_; }
  constexpr ItemId operator[](size_t i) const { return data_[i]; }

 private:
  const ItemId* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_COMMON_ITEM_SPAN_H_
