#ifndef UNIT_CACHE_RESULT_CACHE_H_
#define UNIT_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "unit/common/item_span.h"
#include "unit/common/types.h"

namespace unitdb {

/// Freshness-aware query result cache (per engine, hence per shard).
///
/// The cache is keyed on read-set item ids. An entry for item i means "a
/// committed query read i's currently installed generation, and no newer
/// generation has been installed since" — entries are erased the instant the
/// update applier commits a new version, so the cached answer is always the
/// same stored data engine execution would read. A query whose entire read
/// set is covered by valid entries is answered on arrival (before admission
/// control) as a Success with the items' *live* Eq. 1 freshness
/// 1/(1 + max Udrop): because invalidation tracks installation, the live
/// Udrop is exactly the staleness of the cached generation, and a hit can
/// never report fresher data than execution would have. A `qf_i` check
/// rejects hits whose cached staleness would make the query a DSF (the
/// query falls through to normal execution instead).
///
/// `capacity == 0` (the default) disables the cache and is a strict
/// behavioral no-op: the engine takes zero cache branches, so metrics,
/// traces, and series are bit-identical to a build without the feature —
/// the same contract sessions (session/session.h) and overload shedding
/// (EngineParams::shed_watermark) honor.
struct CacheParams {
  /// Maximum number of item entries (0 disables the cache). Eviction is
  /// FIFO by first population: deterministic, and identical between the
  /// optimized index below and the reference engine's linear-scan mirror.
  int capacity = 0;
  /// Staleness bound for serving a hit: a covered query is still executed
  /// (counted as a stale skip) when the read set's max Udrop exceeds this.
  /// -1 (the default) leaves only the per-query `qf_i` check.
  int64_t max_hit_udrop = -1;

  bool enabled() const { return capacity > 0; }
};

/// The optimized engine's cache index: O(1) expected lookup/populate via a
/// hash map, FIFO eviction through a stamp queue with lazy tombstones (an
/// invalidated entry's queue node is skipped when it surfaces). Observable
/// behavior — which lookups hit, which populate evicts what — is identical
/// to the reference engine's naive flat-vector implementation
/// (model/reference_engine.cc), and the differential oracle pins that.
class ResultCache {
 public:
  ResultCache() = default;
  explicit ResultCache(const CacheParams& params) : params_(params) {}

  const CacheParams& params() const { return params_; }
  bool enabled() const { return params_.enabled(); }
  int64_t size() const { return static_cast<int64_t>(map_.size()); }

  /// True iff every item of `items` has a valid entry. (An empty read set
  /// is trivially covered, matching QueryFreshness's vacuous min of 1.0.)
  bool Covers(ItemSpan items) const {
    for (ItemId item : items) {
      if (map_.find(item) == map_.end()) return false;
    }
    return true;
  }

  /// Records that a committed query read `item`'s installed generation.
  /// Present entries are left in place (their generation is unchanged, or
  /// an invalidation would have erased them); new entries evict the oldest
  /// live entry when the cache is full.
  void Populate(ItemId item) {
    if (map_.find(item) != map_.end()) return;
    if (size() >= params_.capacity) EvictOldest();
    map_.emplace(item, stamp_);
    fifo_.emplace_back(stamp_, item);
    ++stamp_;
  }

  /// Drops `item`'s entry because a newer generation was just installed.
  /// Returns whether an entry was actually present (the caller counts and
  /// traces invalidations only for real erasures).
  bool Invalidate(ItemId item) { return map_.erase(item) > 0; }

 private:
  void EvictOldest() {
    while (!fifo_.empty()) {
      const auto [stamp, item] = fifo_.front();
      fifo_.pop_front();
      auto it = map_.find(item);
      if (it != map_.end() && it->second == stamp) {
        map_.erase(it);
        return;
      }
      // Stale queue node: the entry was invalidated (or re-populated under
      // a newer stamp) after this node was queued. Skip it.
    }
  }

  CacheParams params_;
  /// item -> stamp of its live entry.
  std::unordered_map<ItemId, uint64_t> map_;
  /// (stamp, item) in population order; lazily pruned tombstones.
  std::deque<std::pair<uint64_t, ItemId>> fifo_;
  uint64_t stamp_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_CACHE_RESULT_CACHE_H_
