#ifndef UNIT_SHARD_SHARDED_H_
#define UNIT_SHARD_SHARDED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "unit/common/status.h"
#include "unit/common/types.h"
#include "unit/core/usm.h"
#include "unit/faults/scenario.h"
#include "unit/obs/timeseries.h"
#include "unit/sched/engine_context.h"
#include "unit/sched/metrics.h"
#include "unit/shard/router.h"
#include "unit/sim/server.h"
#include "unit/txn/outcome.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// Sharded multi-engine execution: data items are partitioned across N
/// shards by ShardRouter, each shard runs a full independent server stack
/// (Engine + Database + LockManager + AdmissionIndex + policy controllers)
/// over its sub-workload, and shards execute in parallel on a
/// common/thread_pool. Every per-shard seed derives from the caller's base
/// seeds via ShardSeed, and all merging folds in a deterministic order, so
/// the result is bit-identical for any `jobs` count — and, at shards=1,
/// bit-identical to the monolithic engine (the differential oracle in
/// model/diff.h pins both properties).
struct ShardedParams {
  /// Number of shards (clamped to >= 1). shards=1 is the monolithic
  /// degenerate case: one sub-workload identical to the input.
  int shards = 1;
  /// Worker threads executing shards (<= 1: sequential in shard order).
  /// Purely a wall-clock knob; results are bit-identical for any value.
  int jobs = 1;
  /// Per-shard engine template. `seed` is re-derived per shard via
  /// ShardSeed; the observability and fault pointers are ignored (the
  /// sharded runner wires its own).
  EngineParams engine;
  /// Per-shard policy template. `unit.seed` is re-derived per shard.
  PolicyOptions options;
  /// Run the deliberately naive model/reference_engine.h per shard instead
  /// of the optimized engine — the sharded side of the differential oracle.
  bool reference_engines = false;
  /// Record per-shard window series and the merged series.
  bool record_series = false;
  /// Fault scenario compiled per shard against its sub-workload ("" = no
  /// fault layer). With shards=1 the compiled schedule is identical to the
  /// monolithic compilation (same workload, same seed).
  const FaultScenarioSpec* scenario = nullptr;
  /// Run seed mixed into FaultSchedule::Compile.
  uint64_t fault_seed = 42;
  /// Restrict fault injection to one shard (-1 = all shards). The fault
  /// suite uses this to pin blast-radius isolation: a fault scoped to shard
  /// k must leave every other shard's metrics bit-identical to a fault-free
  /// run.
  int fault_target_shard = -1;
  /// Write shard-tagged JSONL traces here ("" = no tracing): one
  /// shard<k>.jsonl per shard plus merged.jsonl, the global view sorted by
  /// (time, shard, emission order) — deterministic for any jobs count.
  std::string trace_dir;
  /// Self-test defect (differential-harness support): shard 0's policy
  /// wrapper vetoes its 8th admitted query, a guaranteed divergence the
  /// sharded oracle must catch.
  bool perturb_admit_off_by_one = false;
};

/// One joined parent query after the CrossShardJoin barrier.
struct ShardQueryRecord {
  /// Index of the parent query in the (materialized) input trace;
  /// kInvalidTxn for fault-injected queries, which are their own single-sub
  /// parents.
  TxnId trace_id = kInvalidTxn;
  Outcome outcome = Outcome::kPending;
  /// min over sub-query read-set freshness — exactly the monolithic Eq. 1
  /// value, since Database::QueryFreshness is itself a min over items.
  double observed_freshness = -1.0;
  /// max over sub-query commit times (committed parents only).
  SimTime commit_time = -1;
  /// Simulated time the last sub-query resolved (any outcome).
  SimTime resolve_time = -1;
  /// Summed 2PL-HP restarts over all sub-queries.
  int restarts = 0;
  int preference_class = 0;
  /// Sub-queries this parent was split into (1 = single-shard query).
  int subqueries = 1;
};

/// The input workload split into one sub-workload per shard.
struct ShardPartition {
  std::vector<Workload> shards;
  /// Per parent query: how many shards its read set touched.
  std::vector<int> sub_count;
  int64_t cross_shard_queries = 0;  ///< parents with sub_count > 1
  int64_t subqueries = 0;           ///< total sub-queries emitted
};

/// Splits `w` across `router.num_shards()` shards. Every shard keeps the
/// global item-id space (num_items unchanged; non-owned items are simply
/// never updated or read there), updates go to their owning shard in
/// original order, and each query becomes one sub-query per touched shard:
/// read set restricted to the shard's items (original order preserved),
/// arrival / deadline / freshness requirement / preference class copied,
/// service demand divided proportionally to the sub read-set size (each sub
/// clamped to >= 1 tick, remainder on the last touched shard). Sub-query
/// `id` carries the parent's trace index so per-shard results can be joined
/// back. A streaming workload is materialized first. With one shard the
/// single sub-workload is the input workload item for item.
StatusOr<ShardPartition> PartitionWorkload(const Workload& w,
                                           const ShardRouter& router);

/// Dominant-penalty fold of two sub-query outcomes (the paper's Fig. 2
/// order: reject > deadline miss > stale): a parent succeeds only if every
/// sub-query met both its deadline and its freshness bound.
Outcome CrossShardJoin(Outcome a, Outcome b);

/// Everything one sharded run produced: per-shard views plus the merged
/// global view with parent-level (Eq. 5) outcome accounting.
struct ShardedResult {
  /// Merged global view. Outcome counts, per-class counts, and the
  /// response/freshness stats are parent-level (post-join, in deterministic
  /// merged resolution order); scalar counters are summed across shards
  /// (peak_ready_depth: max); per-item arrays are summed elementwise;
  /// busy_s is the aggregate over all shard CPUs (utilization can exceed 1).
  RunMetrics metrics;
  double usm = 0.0;  ///< average USM (Eq. 5) over parent outcomes
  UsmBreakdown breakdown;
  /// Per-shard RunMetrics, sub-query level (shard-local accounting).
  std::vector<RunMetrics> per_shard;
  /// Merged window series (record_series): per window, outcome counts and
  /// depths summed across shards, USM re-derived from the merged window,
  /// utilization summed (aggregate of N CPUs), Udrop percentiles max'd,
  /// admission knob averaged over shards that have one.
  std::vector<WindowSample> merged_series;
  std::vector<std::vector<WindowSample>> per_shard_series;
  /// Joined parent records in merged resolution order (the order the
  /// merged outcome counts and stats were folded in).
  std::vector<ShardQueryRecord> queries;
  int64_t cross_shard_queries = 0;
  int64_t subqueries = 0;
};

/// Partitions `workload`, runs one engine per shard (in parallel when
/// params.jobs > 1), joins split queries at the CrossShardJoin barrier, and
/// merges metrics / series / traces into the global view. Fails on an
/// unknown policy, a fault scenario that does not compile, or trace I/O
/// errors.
StatusOr<ShardedResult> RunSharded(const Workload& workload,
                                   const std::string& policy,
                                   const UsmWeights& weights,
                                   const ShardedParams& params = {});

}  // namespace unitdb

#endif  // UNIT_SHARD_SHARDED_H_
