#include "unit/shard/sharded.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "unit/common/thread_pool.h"
#include "unit/db/data_item.h"
#include "unit/faults/schedule.h"
#include "unit/model/reference_engine.h"
#include "unit/obs/trace_event.h"
#include "unit/obs/trace_sink.h"
#include "unit/sched/engine.h"
#include "unit/workload/query_source.h"

namespace unitdb {
namespace {

/// One resolved sub-query as seen by a shard's recording policy wrapper.
struct SubRecord {
  TxnId trace_id = kInvalidTxn;  ///< parent index (kInvalidTxn: injected)
  Outcome outcome = Outcome::kPending;
  double freshness = -1.0;
  SimTime arrival = 0;
  SimTime commit_time = -1;
  SimTime resolve_time = -1;
  int restarts = 0;
  int pref_class = 0;
};

/// Forwards every hook to the wrapped policy and records one SubRecord per
/// resolved sub-query. Wrapping is behavior-neutral (the same construction
/// the differential harness uses), so a wrapped shards=1 run stays
/// bit-identical to the bare monolithic engine. `perturb` injects the
/// admit-off-by-one defect on this shard for oracle self-tests.
class SubRecordingPolicy final : public Policy {
 public:
  SubRecordingPolicy(Policy* inner, bool perturb)
      : inner_(inner), perturb_(perturb) {}

  std::string name() const override { return inner_->name(); }
  void Attach(EngineContext& engine) override { inner_->Attach(engine); }

  bool AdmitQuery(EngineContext& engine, const Transaction& query) override {
    const bool admit = inner_->AdmitQuery(engine, query);
    if (admit && perturb_ && ++admitted_ == 8) {
      return false;  // the injected defect: shed one admitted query
    }
    return admit;
  }

  bool BeforeQueryDispatch(EngineContext& engine,
                           Transaction& query) override {
    return inner_->BeforeQueryDispatch(engine, query);
  }

  void OnQueryResolved(EngineContext& engine, const Transaction& query,
                       Outcome outcome) override {
    SubRecord r;
    r.trace_id = query.trace_id();
    r.outcome = outcome;
    r.freshness = query.observed_freshness();
    r.arrival = query.arrival();
    r.commit_time = query.commit_time();
    r.resolve_time = engine.now();
    r.restarts = query.restarts();
    r.pref_class = query.preference_class();
    records.push_back(r);
    inner_->OnQueryResolved(engine, query, outcome);
  }

  void OnUpdateCommit(EngineContext& engine,
                      const Transaction& update) override {
    inner_->OnUpdateCommit(engine, update);
  }

  void OnUpdateSourceArrival(EngineContext& engine, ItemId item) override {
    inner_->OnUpdateSourceArrival(engine, item);
  }

  void OnControlTick(EngineContext& engine) override {
    inner_->OnControlTick(engine);
  }

  double AdmissionKnob() const override { return inner_->AdmissionKnob(); }
  bool UsesPeriodicUpdates() const override {
    return inner_->UsesPeriodicUpdates();
  }

  std::vector<SubRecord> records;

 private:
  Policy* inner_;
  bool perturb_;
  int admitted_ = 0;
};

/// Stamps the shard index onto every event, forwards to the shard's own
/// JSONL file, and keeps an in-memory copy for the merged global trace.
class ShardTagSink final : public TraceSink {
 public:
  ShardTagSink(TraceSink* file, int shard, std::vector<TraceEvent>* collect)
      : file_(file), shard_(shard), collect_(collect) {}

  void Emit(const TraceEvent& e) override {
    TraceEvent tagged = e;
    tagged.shard = shard_;
    if (file_ != nullptr) file_->Emit(tagged);
    if (collect_ != nullptr) collect_->push_back(tagged);
  }

  void Flush() override {
    if (file_ != nullptr) file_->Flush();
  }

 private:
  TraceSink* file_;
  int shard_;
  std::vector<TraceEvent>* collect_;
};

/// Everything one shard's run produced.
struct ShardRunOutput {
  RunMetrics metrics;
  std::vector<SubRecord> records;
  std::vector<WindowSample> series;
  std::vector<TraceEvent> events;
};

/// Parses an explicit "a-b" / "a,b,c" item selector (the
/// faults/scenario.h grammar, minus "*"). Returns false on malformed
/// input, in which case the caller keeps the fault verbatim and lets
/// FaultSchedule::Compile report the canonical error.
bool ParseItemSelector(const std::string& items, int num_items,
                       std::vector<ItemId>* out) {
  size_t pos = 0;
  while (pos <= items.size()) {
    size_t comma = items.find(',', pos);
    if (comma == std::string::npos) comma = items.size();
    const std::string token = items.substr(pos, comma - pos);
    if (token.empty()) return false;
    const size_t dash = token.find('-');
    char* end = nullptr;
    const long lo = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str()) return false;
    long hi = lo;
    if (dash != std::string::npos) {
      const char* hs = token.c_str() + dash + 1;
      hi = std::strtol(hs, &end, 10);
      if (end == hs) return false;
    }
    if (lo < 0 || hi < lo || hi >= num_items) return false;
    for (long id = lo; id <= hi; ++id) out->push_back(static_cast<ItemId>(id));
    pos = comma + 1;
    if (comma == items.size()) break;
  }
  return true;
}

/// Scopes a scenario to one shard's sub-workload (shards > 1 only; with one
/// shard the input scenario passes through verbatim so compilation is
/// bit-identical to the monolithic path). Each shard's fault layer draws
/// its own decorrelated injection stream — the sharded analogue of
/// per-replication compilation:
///  - load steps are dropped on a shard whose sub-trace has no queries
///    (there are no templates to clone, and the monolithic compiler
///    rejects that as an error rather than a no-op);
///  - outage/burst item selections are restricted to items this shard owns
///    and sources, and the fault is dropped when nothing remains;
///  - service-slowdown and freshness-shift windows broadcast to all shards.
FaultScenarioSpec ScopeScenario(const FaultScenarioSpec& spec,
                                const Workload& sub) {
  std::vector<char> has_source(static_cast<size_t>(sub.num_items), 0);
  for (const auto& u : sub.updates) {
    if (u.ideal_period <= 0 || u.ideal_period >= kNoUpdates) continue;
    if (u.item >= 0 && u.item < sub.num_items) {
      has_source[static_cast<size_t>(u.item)] = 1;
    }
  }
  const bool any_source =
      std::find(has_source.begin(), has_source.end(), char{1}) !=
      has_source.end();

  FaultScenarioSpec scoped = spec;
  scoped.faults.clear();
  for (const FaultSpec& fault : spec.faults) {
    switch (fault.kind) {
      case FaultKind::kLoadStep:
      case FaultKind::kRetryStorm:
        // Both clone query templates from the sub-trace; drop on a shard
        // with nothing to clone.
        if (!sub.queries.empty()) scoped.faults.push_back(fault);
        break;
      case FaultKind::kUpdateOutage:
      case FaultKind::kUpdateBurst: {
        if (fault.items == "*") {
          if (any_source) scoped.faults.push_back(fault);
          break;
        }
        std::vector<ItemId> selected;
        if (!ParseItemSelector(fault.items, sub.num_items, &selected)) {
          scoped.faults.push_back(fault);  // malformed: let Compile reject
          break;
        }
        std::string owned;
        for (ItemId id : selected) {
          if (!has_source[static_cast<size_t>(id)]) continue;
          if (!owned.empty()) owned += ',';
          owned += std::to_string(id);
        }
        if (owned.empty()) break;  // nothing this shard sources: drop
        FaultSpec f = fault;
        f.items = std::move(owned);
        scoped.faults.push_back(f);
        break;
      }
      case FaultKind::kServiceSlowdown:
      case FaultKind::kFreshnessShift:
        scoped.faults.push_back(fault);
        break;
    }
  }
  return scoped;
}

/// Runs one shard's full server stack over its sub-workload.
StatusOr<ShardRunOutput> RunOneShard(const Workload& sub, int shard,
                                     int num_shards,
                                     const std::string& policy_name,
                                     const UsmWeights& weights,
                                     const ShardedParams& params) {
  PolicyOptions options = params.options;
  options.unit.seed = ShardSeed(params.options.unit.seed, shard, num_shards);
  auto policy = MakePolicy(policy_name, weights, options);
  if (!policy.ok()) return policy.status();
  SubRecordingPolicy recorder(policy.value().get(),
                              params.perturb_admit_off_by_one && shard == 0);

  EngineParams ep = params.engine;
  ep.seed = ShardSeed(params.engine.seed, shard, num_shards);
  ep.trace = nullptr;
  ep.series = nullptr;
  ep.counters = nullptr;
  ep.faults = nullptr;

  FaultSchedule schedule;
  if (params.scenario != nullptr && !params.scenario->empty() &&
      (params.fault_target_shard < 0 || params.fault_target_shard == shard)) {
    const FaultScenarioSpec scoped = num_shards == 1
                                         ? *params.scenario
                                         : ScopeScenario(*params.scenario, sub);
    if (!scoped.empty()) {
      auto compiled = FaultSchedule::Compile(
          scoped, sub, ShardSeed(params.fault_seed, shard, num_shards));
      if (!compiled.ok()) return compiled.status();
      schedule = std::move(compiled).value();
      if (!schedule.empty()) ep.faults = &schedule;
    }
  }

  TimeSeriesRecorder series(weights);
  if (params.record_series) ep.series = &series;

  ShardRunOutput out;
  std::unique_ptr<JsonlTraceSink> file_sink;
  std::unique_ptr<ShardTagSink> tag;
  if (!params.trace_dir.empty() && !params.reference_engines) {
    auto sink = JsonlTraceSink::Open(params.trace_dir + "/shard" +
                                     std::to_string(shard) + ".jsonl");
    if (!sink.ok()) return sink.status();
    file_sink = std::move(sink).value();
    tag = std::make_unique<ShardTagSink>(file_sink.get(), shard, &out.events);
    ep.trace = tag.get();
  }

  if (params.reference_engines) {
    ReferenceEngine engine(sub, &recorder, ep);
    out.metrics = engine.Run();
  } else {
    Engine engine(sub, &recorder, ep);
    out.metrics = engine.Run();
  }
  if (tag != nullptr) tag->Flush();
  out.records = std::move(recorder.records);
  if (params.record_series) out.series = series.samples();
  return out;
}

/// Folds per-shard window series into the merged global series: samples
/// with the same window-end instant are combined (counts / depths /
/// utilization summed, Udrop percentiles max'd, admission knob averaged
/// over shards that have one, USM re-derived from the merged window), in
/// (t, shard, index) order — deterministic for any jobs count.
std::vector<WindowSample> MergeSeries(
    const std::vector<std::vector<WindowSample>>& per_shard,
    const UsmWeights& weights) {
  if (per_shard.size() == 1) return per_shard[0];
  struct Tagged {
    double t;
    int shard;
    size_t idx;
    const WindowSample* s;
  };
  std::vector<Tagged> all;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    for (size_t i = 0; i < per_shard[s].size(); ++i) {
      all.push_back(
          Tagged{per_shard[s][i].t_s, static_cast<int>(s), i, &per_shard[s][i]});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return std::tie(a.t, a.shard, a.idx) < std::tie(b.t, b.shard, b.idx);
  });

  std::vector<WindowSample> merged;
  size_t i = 0;
  while (i < all.size()) {
    WindowSample m = *all[i].s;
    double knob_sum = std::isnan(m.admission_knob) ? 0.0 : m.admission_knob;
    int knob_n = std::isnan(m.admission_knob) ? 0 : 1;
    size_t j = i + 1;
    for (; j < all.size() && all[j].t == all[i].t; ++j) {
      const WindowSample& s = *all[j].s;
      m.window.submitted += s.window.submitted;
      m.window.success += s.window.success;
      m.window.rejected += s.window.rejected;
      m.window.dmf += s.window.dmf;
      m.window.dsf += s.window.dsf;
      m.utilization += s.utilization;  // aggregate over N shard CPUs
      m.ready_queries += s.ready_queries;
      m.ready_updates += s.ready_updates;
      m.degraded_items += s.degraded_items;
      m.retries += s.retries;
      m.abandons += s.abandons;
      m.shed += s.shed;
      m.cache_hits += s.cache_hits;
      m.cache_invalidations += s.cache_invalidations;
      m.udrop_p50 = std::max(m.udrop_p50, s.udrop_p50);
      m.udrop_p90 = std::max(m.udrop_p90, s.udrop_p90);
      m.udrop_max = std::max(m.udrop_max, s.udrop_max);
      if (!std::isnan(s.admission_knob)) {
        knob_sum += s.admission_knob;
        ++knob_n;
      }
    }
    m.admission_knob = knob_n > 0
                           ? knob_sum / static_cast<double>(knob_n)
                           : std::numeric_limits<double>::quiet_NaN();
    m.usm = UsmDecompose(m.window, weights);
    merged.push_back(m);
    i = j;
  }
  return merged;
}

/// Writes the merged global trace: every shard's tagged events, sorted by
/// (time, shard, per-shard emission order).
Status WriteMergedTrace(const std::vector<ShardRunOutput>& outputs,
                        const std::string& dir) {
  struct Tagged {
    SimTime time;
    int shard;
    size_t idx;
    const TraceEvent* e;
  };
  std::vector<Tagged> all;
  for (size_t s = 0; s < outputs.size(); ++s) {
    for (size_t i = 0; i < outputs[s].events.size(); ++i) {
      all.push_back(Tagged{outputs[s].events[i].time, static_cast<int>(s), i,
                           &outputs[s].events[i]});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return std::tie(a.time, a.shard, a.idx) < std::tie(b.time, b.shard, b.idx);
  });
  const std::string path = dir + "/merged.jsonl";
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::Internal("cannot open " + path);
  char buf[512];
  for (const Tagged& t : all) {
    const size_t n = FormatJsonl(*t.e, buf, sizeof(buf));
    f.write(buf, static_cast<std::streamsize>(n));
    f.put('\n');
  }
  f.flush();
  if (!f.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

/// Join state for one parent query while folding sub-records.
struct ParentAgg {
  bool any = false;
  int expected = 1;
  int seen = 0;
  Outcome outcome = Outcome::kPending;
  double freshness = std::numeric_limits<double>::infinity();
  SimTime arrival = 0;
  SimTime commit = -1;
  int restarts = 0;
  int pref_class = 0;
  TxnId trace_id = kInvalidTxn;
  // Merged resolution instant: lexicographic max of (resolve_time, shard,
  // per-shard record index) over the parent's sub-queries. At shards=1 this
  // degenerates to shard 0's resolution order, which is what makes the
  // merged stat fold bit-identical to the monolithic engine's.
  SimTime rt = -1;
  int rt_shard = -1;
  int64_t rt_pos = -1;
};

}  // namespace

StatusOr<ShardPartition> PartitionWorkload(const Workload& w,
                                           const ShardRouter& router) {
  const int n = router.num_shards();
  ShardPartition part;
  part.shards.resize(static_cast<size_t>(n));
  for (Workload& sub : part.shards) {
    sub.num_items = w.num_items;  // global item-id space on every shard
    sub.duration = w.duration;
    sub.query_trace_name = w.query_trace_name;
    sub.update_trace_name = w.update_trace_name;
  }
  for (const auto& u : w.updates) {
    part.shards[static_cast<size_t>(router.ShardOf(u.item))].updates.push_back(
        u);
  }

  // Sub-queries are re-dealt across shards, so a streaming trace is
  // materialized here (the memory-flat path stays available per shard via
  // each sub-workload's own plain vector).
  std::vector<QueryRequest> queries;
  if (w.query_source != nullptr) {
    auto cursor = w.query_source->NewCursor();
    QueryRequest q;
    while (cursor->Next(&q)) queries.push_back(q);
  } else {
    queries = w.queries;
  }

  part.sub_count.resize(queries.size(), 0);
  std::vector<std::vector<ItemId>> groups;
  std::vector<int> touched;
  for (size_t p = 0; p < queries.size(); ++p) {
    const QueryRequest& q = queries[p];
    router.Split(q.items, &groups, &touched);
    if (touched.empty()) touched.push_back(0);  // defensive: empty read set
    const auto total = static_cast<SimDuration>(q.items.size());
    SimDuration assigned = 0;
    for (size_t k = 0; k < touched.size(); ++k) {
      const int s = touched[k];
      QueryRequest sq = q;
      sq.id = static_cast<TxnId>(p);  // parent trace index, for the join
      sq.items = groups[static_cast<size_t>(s)];
      if (touched.size() > 1) {
        // Service demand proportional to the sub read-set size, each sub
        // >= 1 tick, integer remainder on the last touched shard.
        if (k + 1 < touched.size()) {
          sq.exec = std::max<SimDuration>(
              1, q.exec * static_cast<SimDuration>(sq.items.size()) / total);
          assigned += sq.exec;
        } else {
          sq.exec = std::max<SimDuration>(1, q.exec - assigned);
        }
      }
      part.shards[static_cast<size_t>(s)].queries.push_back(std::move(sq));
    }
    part.sub_count[p] = static_cast<int>(touched.size());
    part.subqueries += static_cast<int64_t>(touched.size());
    if (touched.size() > 1) ++part.cross_shard_queries;
  }
  return part;
}

Outcome CrossShardJoin(Outcome a, Outcome b) {
  // Dominant-penalty order (paper Fig. 2): reject > deadline miss > stale.
  // A parent succeeds only if every sub-query succeeded.
  auto rank = [](Outcome o) {
    switch (o) {
      case Outcome::kRejected:
        return 3;
      case Outcome::kDeadlineMiss:
        return 2;
      case Outcome::kDataStale:
        return 1;
      default:
        return 0;
    }
  };
  return rank(a) >= rank(b) ? a : b;
}

StatusOr<ShardedResult> RunSharded(const Workload& workload,
                                   const std::string& policy,
                                   const UsmWeights& weights,
                                   const ShardedParams& params) {
  const int n = params.shards < 1 ? 1 : params.shards;
  const ShardRouter router(n);
  auto part = PartitionWorkload(workload, router);
  if (!part.ok()) return part.status();

  if (!params.trace_dir.empty() && !params.reference_engines) {
    std::error_code ec;
    std::filesystem::create_directories(params.trace_dir, ec);
    if (ec) {
      return Status::Internal("trace_dir " + params.trace_dir + ": " +
                              ec.message());
    }
  }

  // Run the shards — in submission order on the pool; results land by
  // shard index, so completion order is irrelevant to every fold below.
  std::vector<ShardRunOutput> outputs(static_cast<size_t>(n));
  Status first_error = Status::Ok();
  if (params.jobs > 1 && n > 1) {
    ThreadPool pool(std::min(ResolveJobs(params.jobs), n));
    std::vector<std::future<StatusOr<ShardRunOutput>>> futures;
    futures.reserve(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) {
      futures.push_back(pool.Submit([&, s]() {
        return RunOneShard(part.value().shards[static_cast<size_t>(s)], s, n,
                           policy, weights, params);
      }));
    }
    for (int s = 0; s < n; ++s) {  // drain every future even after an error
      auto r = futures[static_cast<size_t>(s)].get();
      if (!r.ok()) {
        if (first_error.ok()) first_error = r.status();
      } else {
        outputs[static_cast<size_t>(s)] = std::move(r).value();
      }
    }
  } else {
    for (int s = 0; s < n; ++s) {
      auto r = RunOneShard(part.value().shards[static_cast<size_t>(s)], s, n,
                           policy, weights, params);
      if (!r.ok()) {
        first_error = r.status();
        break;
      }
      outputs[static_cast<size_t>(s)] = std::move(r).value();
    }
  }
  if (!first_error.ok()) return first_error;

  ShardedResult result;
  result.cross_shard_queries = part.value().cross_shard_queries;
  result.subqueries = part.value().subqueries;
  result.per_shard.reserve(static_cast<size_t>(n));
  for (const auto& o : outputs) result.per_shard.push_back(o.metrics);
  if (params.record_series) {
    result.per_shard_series.reserve(static_cast<size_t>(n));
    for (auto& o : outputs) result.per_shard_series.push_back(o.series);
    result.merged_series = MergeSeries(result.per_shard_series, weights);
  }

  // Scalar counters: shard 0's metrics as the base, every other shard
  // summed in (max for the depth peak). duration_s is per-wall-clock and
  // identical on every shard, so shard 0's copy stands.
  RunMetrics& merged = result.metrics;
  merged = outputs[0].metrics;
  for (int s = 1; s < n; ++s) {
    const RunMetrics& m = outputs[static_cast<size_t>(s)].metrics;
    merged.busy_s += m.busy_s;  // aggregate over N shard CPUs
    merged.events_processed += m.events_processed;
    merged.events_cancelled += m.events_cancelled;
    merged.event_compactions += m.event_compactions;
    merged.events_compacted += m.events_compacted;
    merged.peak_ready_depth = std::max(merged.peak_ready_depth,
                                       m.peak_ready_depth);
    merged.txn_live_peak += m.txn_live_peak;  // aggregate arena footprint
    merged.txn_slots_created += m.txn_slots_created;
    merged.txn_released += m.txn_released;
    merged.readset_inline += m.readset_inline;
    merged.readset_spill += m.readset_spill;
    merged.fault_edges += m.fault_edges;
    merged.fault_injected_queries += m.fault_injected_queries;
    merged.fault_injected_updates += m.fault_injected_updates;
    merged.fault_suppressed_updates += m.fault_suppressed_updates;
    merged.preemptions += m.preemptions;
    merged.lock_restarts += m.lock_restarts;
    merged.update_commits += m.update_commits;
    merged.on_demand_updates += m.on_demand_updates;
    merged.updates_generated += m.updates_generated;
    merged.updates_dropped += m.updates_dropped;
    merged.update_latency_s.Merge(m.update_latency_s);
    merged.session_requests += m.session_requests;
    merged.session_retries += m.session_retries;
    merged.session_successes += m.session_successes;
    merged.session_abandons += m.session_abandons;
    merged.queries_shed += m.queries_shed;
    merged.session_retry_delay_s.Merge(m.session_retry_delay_s);
    merged.cache_hits += m.cache_hits;
    merged.cache_misses += m.cache_misses;
    merged.cache_invalidations += m.cache_invalidations;
    merged.cache_stale_skips += m.cache_stale_skips;
    const size_t items = std::min(merged.per_item_accesses.size(),
                                  m.per_item_accesses.size());
    for (size_t i = 0; i < items; ++i) {
      merged.per_item_accesses[i] += m.per_item_accesses[i];
    }
    const size_t applied = std::min(merged.per_item_applied_updates.size(),
                                    m.per_item_applied_updates.size());
    for (size_t i = 0; i < applied; ++i) {
      merged.per_item_applied_updates[i] += m.per_item_applied_updates[i];
    }
  }
  if (n > 1) {
    // Per-shard registries can't be merged meaningfully (same counter names
    // with different per-shard meanings); the per_shard metrics keep them.
    merged.obs_counters.clear();
    merged.obs_gauges.clear();
  }

  // Join sub-queries back into parents. Workload parents are keyed by the
  // trace index carried in Transaction::trace_id; fault-injected queries
  // (trace_id kInvalidTxn) are their own single-sub parents.
  const std::vector<int>& sub_count = part.value().sub_count;
  std::vector<ParentAgg> parents(sub_count.size());
  std::vector<ParentAgg> injected;
  // Closed-loop runs resolve one sub-record per *attempt* of a parent's
  // sub-query on its home shard. The parent join is over final outcomes, so
  // pre-filter each shard's records to the last record per parent (original
  // positions preserved for the (resolve_time, shard, pos) merge key;
  // injected queries have no sessions and every record kept). When sessions
  // are off the mask is all-ones and the join below is unchanged.
  const bool closed_loop = params.engine.session.sessions > 0;
  for (int s = 0; s < n; ++s) {
    const auto& records = outputs[static_cast<size_t>(s)].records;
    std::vector<char> keep;
    if (closed_loop) {
      keep.assign(records.size(), 0);
      std::unordered_map<TxnId, size_t> last;
      for (size_t pos = 0; pos < records.size(); ++pos) {
        if (records[pos].trace_id == kInvalidTxn) {
          keep[pos] = 1;
        } else {
          last[records[pos].trace_id] = pos;
        }
      }
      for (const auto& [id, pos] : last) keep[pos] = 1;
    }
    for (size_t pos = 0; pos < records.size(); ++pos) {
      if (closed_loop && keep[pos] == 0) continue;
      const SubRecord& rec = records[pos];
      ParentAgg* p;
      if (rec.trace_id == kInvalidTxn) {
        injected.emplace_back();
        p = &injected.back();
      } else {
        if (rec.trace_id < 0 ||
            static_cast<size_t>(rec.trace_id) >= parents.size()) {
          return Status::Internal("sub-query resolved with unknown parent " +
                                  std::to_string(rec.trace_id));
        }
        p = &parents[static_cast<size_t>(rec.trace_id)];
        p->expected = sub_count[static_cast<size_t>(rec.trace_id)];
      }
      p->outcome = p->any ? CrossShardJoin(p->outcome, rec.outcome)
                          : rec.outcome;
      p->any = true;
      ++p->seen;
      if (rec.outcome == Outcome::kSuccess ||
          rec.outcome == Outcome::kDataStale) {
        // Committed sub: parent freshness is the min over committed subs
        // (exactly the monolithic Eq. 1 value — QueryFreshness is itself a
        // min over the read set), commit instant the latest sub commit.
        p->freshness = std::min(p->freshness, rec.freshness);
        p->commit = std::max(p->commit, rec.commit_time);
      }
      p->arrival = rec.arrival;
      p->restarts += rec.restarts;
      p->pref_class = rec.pref_class;
      p->trace_id = rec.trace_id;
      const auto key = std::make_tuple(rec.resolve_time, s,
                                       static_cast<int64_t>(pos));
      if (key > std::make_tuple(p->rt, p->rt_shard, p->rt_pos)) {
        p->rt = rec.resolve_time;
        p->rt_shard = s;
        p->rt_pos = static_cast<int64_t>(pos);
      }
    }
  }
  for (size_t i = 0; i < parents.size(); ++i) {
    if (!parents[i].any || parents[i].seen != parents[i].expected) {
      return Status::Internal(
          "parent " + std::to_string(i) + " joined " +
          std::to_string(parents[i].seen) + "/" +
          std::to_string(parents[i].expected) + " sub-queries");
    }
  }

  // Parent-level accounting, folded in merged resolution order: sort by
  // (last sub resolve time, shard, per-shard index) — a total order over
  // unique keys, identical for every jobs count, and equal to shard 0's
  // resolution order when shards=1 (bit-identical stat folds).
  std::vector<const ParentAgg*> order;
  order.reserve(parents.size() + injected.size());
  for (const ParentAgg& p : parents) order.push_back(&p);
  for (const ParentAgg& p : injected) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [](const ParentAgg* a, const ParentAgg* b) {
              return std::tie(a->rt, a->rt_shard, a->rt_pos) <
                     std::tie(b->rt, b->rt_shard, b->rt_pos);
            });

  merged.counts = OutcomeCounts{};
  merged.per_class_counts.clear();
  merged.query_response_s.Clear();
  merged.query_freshness.Clear();
  result.queries.reserve(order.size());
  for (const ParentAgg* p : order) {
    auto count = [&](OutcomeCounts& c) {
      ++c.submitted;
      switch (p->outcome) {
        case Outcome::kSuccess:
          ++c.success;
          break;
        case Outcome::kRejected:
          ++c.rejected;
          break;
        case Outcome::kDeadlineMiss:
          ++c.dmf;
          break;
        case Outcome::kDataStale:
          ++c.dsf;
          break;
        case Outcome::kPending:
          break;
      }
    };
    count(merged.counts);
    if (static_cast<size_t>(p->pref_class) >= merged.per_class_counts.size()) {
      merged.per_class_counts.resize(
          static_cast<size_t>(p->pref_class) + 1);
    }
    count(merged.per_class_counts[static_cast<size_t>(p->pref_class)]);
    const bool committed = p->outcome == Outcome::kSuccess ||
                           p->outcome == Outcome::kDataStale;
    if (committed) {
      merged.query_response_s.Add(SimToSeconds(p->commit - p->arrival));
      merged.query_freshness.Add(p->freshness);
    }

    ShardQueryRecord rec;
    rec.trace_id = p->trace_id;
    rec.outcome = p->outcome;
    rec.observed_freshness = committed ? p->freshness : -1.0;
    rec.commit_time = committed ? p->commit : -1;
    rec.resolve_time = p->rt;
    rec.restarts = p->restarts;
    rec.preference_class = p->pref_class;
    rec.subqueries = p->seen;
    result.queries.push_back(rec);
  }

  result.usm = UsmAverage(merged.counts, weights);
  result.breakdown = UsmDecompose(merged.counts, weights);

  if (!params.trace_dir.empty() && !params.reference_engines) {
    Status s = WriteMergedTrace(outputs, params.trace_dir);
    if (!s.ok()) return s;
  }
  return result;
}

}  // namespace unitdb
