#include "unit/shard/router.h"

#include <cstddef>

namespace unitdb {

ShardRouter::ShardRouter(int num_shards)
    : num_shards_(num_shards < 1 ? 1 : num_shards) {}

void ShardRouter::Split(const std::vector<ItemId>& items,
                        std::vector<std::vector<ItemId>>* groups,
                        std::vector<int>* touched) const {
  groups->resize(static_cast<size_t>(num_shards_));
  for (auto& g : *groups) g.clear();
  touched->clear();
  for (ItemId item : items) {
    const int s = ShardOf(item);
    auto& g = (*groups)[static_cast<size_t>(s)];
    if (g.empty()) touched->push_back(s);
    g.push_back(item);
  }
}

uint64_t ShardSeed(uint64_t base, int shard, int num_shards) {
  if (num_shards <= 1) return base;
  return SplitMix64(base ^ SplitMix64(static_cast<uint64_t>(shard) + 1));
}

}  // namespace unitdb
