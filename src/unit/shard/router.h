#ifndef UNIT_SHARD_ROUTER_H_
#define UNIT_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "unit/common/rng.h"
#include "unit/common/types.h"

namespace unitdb {

/// Deterministic item -> shard placement for the sharded engine
/// (shard/sharded.h): shard(i) = SplitMix64(i) mod N. The hash is a pure
/// function of the item id and the shard count — no state, no RNG stream —
/// so the same item always lands on the same shard across runs, processes,
/// and job counts, and re-partitioning only happens when N itself changes.
/// With N = 1 every item maps to shard 0 and a partitioned workload is the
/// original workload.
class ShardRouter {
 public:
  /// `num_shards` is clamped to >= 1.
  explicit ShardRouter(int num_shards);

  int num_shards() const { return num_shards_; }

  int ShardOf(ItemId item) const {
    return static_cast<int>(SplitMix64(static_cast<uint64_t>(item)) %
                            static_cast<uint64_t>(num_shards_));
  }

  /// Groups a read set by owning shard. Original read-set order is preserved
  /// inside every group — lock-acquisition order is part of the engine's
  /// deterministic behavior, so a single-shard split must reproduce the
  /// read set exactly. `groups` is resized to num_shards() and every entry
  /// cleared; `touched` receives the shards that own at least one item, in
  /// first-touch order.
  void Split(const std::vector<ItemId>& items,
             std::vector<std::vector<ItemId>>* groups,
             std::vector<int>* touched) const;

 private:
  int num_shards_;
};

/// Per-shard seed derivation. With one shard the base seed passes through
/// untouched so a shards=1 stack is bit-identical to the monolithic engine;
/// with N > 1 every shard gets a SplitMix64-decorrelated stream (the PR-1
/// scheme: mix the shard index through SplitMix64 rather than an affine
/// offset, so neighboring shards share no low-bit structure).
uint64_t ShardSeed(uint64_t base, int shard, int num_shards);

}  // namespace unitdb

#endif  // UNIT_SHARD_ROUTER_H_
