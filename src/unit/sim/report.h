#ifndef UNIT_SIM_REPORT_H_
#define UNIT_SIM_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace unitdb {

/// Fixed-width text table for bench/experiment output (right-aligned
/// numeric-looking cells, left-aligned text).
class TextTable {
 public:
  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  /// Adds a horizontal separator line at the current position.
  void AddSeparator();
  void Print(std::ostream& os) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Formats with fixed decimals ("0.4375").
std::string Fmt(double v, int decimals = 4);
/// Formats as a percentage ("43.8%").
std::string FmtPercent(double v, int decimals = 1);

/// One-line sparkline-style bar of width `width` proportional to
/// value/max_value, e.g. "#######....". Used for ASCII renderings of the
/// paper's bar charts.
std::string Bar(double value, double max_value, int width = 40);

}  // namespace unitdb

#endif  // UNIT_SIM_REPORT_H_
