#include "unit/sim/server.h"

#include "unit/core/policies/hybrid.h"
#include "unit/core/policies/imu.h"
#include "unit/core/policies/odu.h"

namespace unitdb {

StatusOr<std::unique_ptr<Policy>> MakePolicy(const std::string& name,
                                             const UsmWeights& weights,
                                             const PolicyOptions& options) {
  if (name == "unit") {
    return std::unique_ptr<Policy>(new UnitPolicy(weights, options.unit));
  }
  if (name == "imu") {
    return std::unique_ptr<Policy>(new ImuPolicy());
  }
  if (name == "odu") {
    return std::unique_ptr<Policy>(new OduPolicy());
  }
  if (name == "qmf") {
    return std::unique_ptr<Policy>(new QmfPolicy(options.qmf));
  }
  if (name == "unit-hybrid") {
    return std::unique_ptr<Policy>(new HybridPolicy(weights, options.unit));
  }
  if (name == "unit-noac" || name == "unit-noum" || name == "unit-bare") {
    UnitParams params = options.unit;
    params.enable_admission_control = (name == "unit-noum");
    params.enable_update_modulation = (name == "unit-noac");
    return std::unique_ptr<Policy>(new UnitPolicy(weights, params));
  }
  return Status::NotFound("unknown policy '" + name + "'");
}

std::vector<std::string> KnownPolicies() {
  return {"unit", "imu", "odu", "qmf", "unit-hybrid",
          "unit-noac", "unit-noum", "unit-bare"};
}

StatusOr<std::unique_ptr<Server>> Server::Create(const Workload& workload,
                                                 const Config& config) {
  auto policy = MakePolicy(config.policy, config.weights, config.options);
  if (!policy.ok()) return policy.status();
  return std::unique_ptr<Server>(
      new Server(workload, config, std::move(*policy)));
}

Server::Server(const Workload& workload, Config config,
               std::unique_ptr<Policy> policy)
    : workload_(workload),
      config_(std::move(config)),
      policy_(std::move(policy)),
      engine_(workload_, policy_.get(), config_.engine) {}

RunMetrics Server::Run() { return engine_.Run(); }

}  // namespace unitdb
