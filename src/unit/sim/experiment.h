#ifndef UNIT_SIM_EXPERIMENT_H_
#define UNIT_SIM_EXPERIMENT_H_

#include <string>
#include <vector>

#include "unit/common/stats.h"
#include "unit/common/status.h"
#include "unit/core/usm.h"
#include "unit/faults/schedule.h"
#include "unit/faults/settling.h"
#include "unit/model/diff.h"
#include "unit/obs/timeseries.h"
#include "unit/sched/engine.h"
#include "unit/sched/metrics.h"
#include "unit/shard/sharded.h"
#include "unit/sim/server.h"
#include "unit/workload/query_trace.h"
#include "unit/workload/update_trace.h"

namespace unitdb {

/// Everything one (workload, policy, weights) run produced.
struct ExperimentResult {
  std::string trace;   ///< e.g. "med-unif"
  std::string policy;  ///< e.g. "unit"
  UsmWeights weights;
  RunMetrics metrics;
  double usm = 0.0;  ///< average USM (Eq. 5)
  UsmBreakdown breakdown;
  /// Window time series (RunTracedExperiment with ObsOptions::series; empty
  /// otherwise).
  std::vector<WindowSample> series;
  /// Dynamic-response summary (RunFaultedExperiment with a non-empty
  /// schedule and the series recorded; invalid otherwise).
  DisturbanceReport disturbance;
};

/// Runs `policy` on `workload` under `weights`. Fails on an unknown policy.
StatusOr<ExperimentResult> RunExperiment(const Workload& workload,
                                         const std::string& policy,
                                         const UsmWeights& weights,
                                         const EngineParams& engine = {},
                                         const PolicyOptions& options = {});

/// RunExperiment over the sharded multi-engine runner (shard/sharded.h):
/// items and queries are partitioned across `shards` hash-routed shards,
/// each running its own full server stack, executed on `jobs` workers.
/// The headline metrics are the merged global view (parent-level Eq. 5
/// accounting after the CrossShardJoin barrier); results are bit-identical
/// for any `jobs`, and `shards=1` reproduces RunExperiment exactly.
StatusOr<ExperimentResult> RunShardedExperiment(
    const Workload& workload, const std::string& policy,
    const UsmWeights& weights, int shards, int jobs = 1,
    const EngineParams& engine = {}, const PolicyOptions& options = {});

/// Observability attachments for one run. RunTracedExperiment owns the
/// actual sinks/recorders for the duration of the run; the engine only ever
/// sees non-owning pointers (EngineParams::{trace, series, counters}).
struct ObsOptions {
  /// Write the JSONL event trace here ("" = no trace sink).
  std::string trace_path;
  /// Record the per-control-window time series into ExperimentResult::series.
  bool series = false;
  /// Also export the series ("" = don't). Either implies `series`.
  std::string series_csv_path;
  std::string series_json_path;
};

/// RunExperiment with tracing/telemetry attached per `obs`. The counter
/// registry snapshot lands in RunMetrics::obs_counters / obs_gauges. With a
/// default ObsOptions this is exactly RunExperiment (no hooks attached).
StatusOr<ExperimentResult> RunTracedExperiment(
    const Workload& workload, const std::string& policy,
    const UsmWeights& weights, const ObsOptions& obs,
    const EngineParams& engine = {}, const PolicyOptions& options = {});

/// RunTracedExperiment with `schedule` attached (EngineParams::faults).
/// When the series is recorded and the schedule is non-empty, the result's
/// DisturbanceReport (USM dip depth, settling time, per-window
/// decomposition inside the fault envelope) is computed with
/// `settle_epsilon` as the settling band (fraction of the dip). An empty schedule is a strict
/// no-op: metrics are bit-identical to RunTracedExperiment.
StatusOr<ExperimentResult> RunFaultedExperiment(
    const Workload& workload, const std::string& policy,
    const UsmWeights& weights, const FaultSchedule& schedule,
    const ObsOptions& obs = {}, const EngineParams& engine = {},
    const PolicyOptions& options = {}, double settle_epsilon = 0.25);

/// Runs `replications` faulted standard workloads on a `jobs`-worker pool
/// (jobs <= 1: sequential). Replication i builds its workload from
/// ReplicationSeed(base_seed, i) and compiles `scenario` against it with
/// that same seed, so each replication draws its own injection stream and
/// the per-replication results (returned in replication order, series and
/// disturbance included) are bit-identical for any jobs count.
StatusOr<std::vector<ExperimentResult>> RunFaultedReplicated(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights,
    const FaultScenarioSpec& scenario, int replications, int jobs = 1,
    double scale = 1.0, uint64_t base_seed = 42,
    const EngineParams& engine = {}, const PolicyOptions& options = {},
    double settle_epsilon = 0.25);

/// Differential run: executes the optimized engine and the naive reference
/// model (src/unit/model/) on the same case and compares semantic metrics,
/// per-query outcomes, and window series bit-for-bit. Convenience re-export
/// of model/diff.h's RunDiff for experiment drivers; see tools/diff_fuzz.cc
/// for the fuzzing CLI built on top.
StatusOr<DiffResult> RunDifferential(const DiffCase& diff_case,
                                     const DiffOptions& options = {});

/// Runs several policies over one workload (same weights, same engine).
StatusOr<std::vector<ExperimentResult>> RunPolicies(
    const Workload& workload, const std::vector<std::string>& policies,
    const UsmWeights& weights, const EngineParams& engine = {},
    const PolicyOptions& options = {});

/// Builds the paper's standard evaluation workload: the cello-like query
/// trace plus one of Table 1's nine update traces. `scale` multiplies the
/// default 2000 s duration (benches use < 1 for quick runs).
StatusOr<Workload> MakeStandardWorkload(UpdateVolume volume,
                                        UpdateDistribution distribution,
                                        double scale = 1.0,
                                        uint64_t seed = 42);

/// Aggregate of several independent replications (different workload
/// seeds) of one (trace, policy, weights) cell — use for error bars.
struct ReplicatedResult {
  std::string trace;
  std::string policy;
  int replications = 0;
  RunningStat usm;
  RunningStat success_ratio;
  RunningStat rejection_ratio;
  RunningStat dmf_ratio;
  RunningStat dsf_ratio;
};

/// Workload seed of replication `i` of a cell with base seed `base_seed`.
/// Shared by the sequential and parallel runners so that both construct
/// bit-identical workloads; kept as the historical affine derivation
/// (base + 100*i) so published trace numbers stay stable. (SplitMix64 in
/// common/rng.h is the tool of choice when a future derivation needs
/// decorrelated streams rather than continuity.)
uint64_t ReplicationSeed(uint64_t base_seed, int replication);

/// Runs `replications` standard workloads (seeds ReplicationSeed(base, i))
/// through `policy` and aggregates the headline metrics.
StatusOr<ReplicatedResult> RunReplicated(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights, int replications,
    double scale = 1.0, uint64_t base_seed = 42,
    const EngineParams& engine = {}, const PolicyOptions& options = {});

/// Parallel twin of RunReplicated: fans the replications across a
/// fixed-size thread pool of `jobs` workers (jobs <= 0: one per hardware
/// thread). Each replication builds its own Workload/Engine from its
/// ReplicationSeed, and results are aggregated in replication order after
/// all cells finish — so the outcome is bit-identical to RunReplicated
/// regardless of worker count or completion order.
StatusOr<ReplicatedResult> RunReplicatedParallel(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights, int replications,
    int jobs, double scale = 1.0, uint64_t base_seed = 42,
    const EngineParams& engine = {}, const PolicyOptions& options = {});

/// A named UsmWeights setting, e.g. a row of the paper's Table 2.
struct NamedWeights {
  std::string name;
  UsmWeights weights;
};

/// A (trace x weights x policy) sweep: the cross product of every listed
/// volume, distribution, weight setting, and policy, each cell replicated
/// `replications` times. The paper's Table 1 grid is the default trace set.
struct GridSpec {
  std::vector<UpdateVolume> volumes = {UpdateVolume::kLow,
                                       UpdateVolume::kMedium,
                                       UpdateVolume::kHigh};
  std::vector<UpdateDistribution> distributions = {
      UpdateDistribution::kUniform, UpdateDistribution::kPositive,
      UpdateDistribution::kNegative};
  std::vector<std::string> policies = {"unit"};
  /// Weight settings swept per cell; name them for reporting (Fig. 5 uses
  /// Table2Weights*). Empty means one cell with the naive weighting.
  std::vector<NamedWeights> weightings;
  int replications = 1;
  double scale = 1.0;
  uint64_t base_seed = 42;
  EngineParams engine;
  PolicyOptions options;
  /// Shards per cell (shard/sharded.h). 1 = monolithic engine; > 1 routes
  /// every replication through the sharded runner (sequential inside the
  /// cell — grid cells already fan out across the pool).
  int shards = 1;
};

/// One cell of a RunGrid sweep; `result.trace` / `result.policy` identify
/// the cell together with the weight setting it ran under.
struct GridCellResult {
  UpdateVolume volume = UpdateVolume::kLow;
  UpdateDistribution distribution = UpdateDistribution::kUniform;
  std::string weights_name;
  UsmWeights weights;
  ReplicatedResult result;
};

/// Runs the whole grid on a `jobs`-worker pool (jobs <= 0: one per hardware
/// thread). Workloads are generated once per (trace, replication) and shared
/// read-only by every (weights, policy) cell on that trace. Cells are
/// returned in deterministic order — distribution-major, then volume,
/// weighting, policy (the paper's presentation order) — and each cell is
/// bit-identical to RunReplicated(volume, distribution, policy, ...) with
/// the same base seed, independent of `jobs`.
StatusOr<std::vector<GridCellResult>> RunGrid(const GridSpec& spec,
                                              int jobs = 1);

/// The six weight settings of the paper's Table 2 (rows named
/// "high-Cr"/"high-Cfm"/"high-Cfs", first with penalties < 1, then > 1).
std::vector<NamedWeights> Table2WeightsBelowOne();
std::vector<NamedWeights> Table2WeightsAboveOne();

}  // namespace unitdb

#endif  // UNIT_SIM_EXPERIMENT_H_
