#ifndef UNIT_SIM_EXPERIMENT_H_
#define UNIT_SIM_EXPERIMENT_H_

#include <string>
#include <vector>

#include "unit/common/stats.h"
#include "unit/common/status.h"
#include "unit/core/usm.h"
#include "unit/sched/engine.h"
#include "unit/sched/metrics.h"
#include "unit/sim/server.h"
#include "unit/workload/query_trace.h"
#include "unit/workload/update_trace.h"

namespace unitdb {

/// Everything one (workload, policy, weights) run produced.
struct ExperimentResult {
  std::string trace;   ///< e.g. "med-unif"
  std::string policy;  ///< e.g. "unit"
  UsmWeights weights;
  RunMetrics metrics;
  double usm = 0.0;  ///< average USM (Eq. 5)
  UsmBreakdown breakdown;
};

/// Runs `policy` on `workload` under `weights`. Fails on an unknown policy.
StatusOr<ExperimentResult> RunExperiment(const Workload& workload,
                                         const std::string& policy,
                                         const UsmWeights& weights,
                                         const EngineParams& engine = {},
                                         const PolicyOptions& options = {});

/// Runs several policies over one workload (same weights, same engine).
StatusOr<std::vector<ExperimentResult>> RunPolicies(
    const Workload& workload, const std::vector<std::string>& policies,
    const UsmWeights& weights, const EngineParams& engine = {},
    const PolicyOptions& options = {});

/// Builds the paper's standard evaluation workload: the cello-like query
/// trace plus one of Table 1's nine update traces. `scale` multiplies the
/// default 2000 s duration (benches use < 1 for quick runs).
StatusOr<Workload> MakeStandardWorkload(UpdateVolume volume,
                                        UpdateDistribution distribution,
                                        double scale = 1.0,
                                        uint64_t seed = 42);

/// Aggregate of several independent replications (different workload
/// seeds) of one (trace, policy, weights) cell — use for error bars.
struct ReplicatedResult {
  std::string trace;
  std::string policy;
  int replications = 0;
  RunningStat usm;
  RunningStat success_ratio;
  RunningStat rejection_ratio;
  RunningStat dmf_ratio;
  RunningStat dsf_ratio;
};

/// Runs `replications` standard workloads (seeds base_seed, base_seed+100,
/// ...) through `policy` and aggregates the headline metrics.
StatusOr<ReplicatedResult> RunReplicated(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights, int replications,
    double scale = 1.0, uint64_t base_seed = 42,
    const EngineParams& engine = {}, const PolicyOptions& options = {});

/// The six weight settings of the paper's Table 2 (rows named
/// "high-Cr"/"high-Cfm"/"high-Cfs", first with penalties < 1, then > 1).
struct NamedWeights {
  std::string name;
  UsmWeights weights;
};
std::vector<NamedWeights> Table2WeightsBelowOne();
std::vector<NamedWeights> Table2WeightsAboveOne();

}  // namespace unitdb

#endif  // UNIT_SIM_EXPERIMENT_H_
