#include "unit/sim/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace unitdb {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

void TextTable::Print(std::ostream& os) const {
  // Column widths over header + rows.
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << (i == 0 ? "" : "  ");
      // Left-align the first column (labels), right-align the rest.
      if (i == 0) {
        os << cell << std::string(widths[i] - cell.size(), ' ');
      } else {
        os << std::string(widths[i] - cell.size(), ' ') << cell;
      }
    }
    os << '\n';
  };
  auto print_sep = [&] {
    size_t total = 0;
    for (size_t w : widths) total += w;
    if (!widths.empty()) total += 2 * (widths.size() - 1);
    os << std::string(total, '-') << '\n';
  };

  if (!header_.empty()) {
    print_row(header_);
    print_sep();
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_row(row);
    }
  }
}

std::string Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FmtPercent(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, 100.0 * v);
  return buf;
}

std::string Bar(double value, double max_value, int width) {
  if (max_value <= 0.0 || width <= 0) return "";
  const double frac = std::clamp(value / max_value, 0.0, 1.0);
  const int filled = static_cast<int>(std::lround(frac * width));
  return std::string(filled, '#') + std::string(width - filled, '.');
}

}  // namespace unitdb
