#ifndef UNIT_SIM_SERVER_H_
#define UNIT_SIM_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "unit/common/status.h"
#include "unit/core/policies/qmf.h"
#include "unit/core/policies/unit_policy.h"
#include "unit/core/policy.h"
#include "unit/core/usm.h"
#include "unit/sched/engine.h"
#include "unit/sched/metrics.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// Per-policy construction knobs; only the fields relevant to the chosen
/// policy apply.
struct PolicyOptions {
  UnitParams unit;
  QmfParams qmf;
};

/// Builds a policy by name: "unit", "imu", "odu", "qmf", and the ablation
/// variants "unit-noac" (no admission control), "unit-noum" (no update
/// modulation), "unit-bare" (neither). Unknown names fail.
StatusOr<std::unique_ptr<Policy>> MakePolicy(const std::string& name,
                                             const UsmWeights& weights,
                                             const PolicyOptions& options = {});

/// Names accepted by MakePolicy (the paper's four, first).
std::vector<std::string> KnownPolicies();

/// A web-database server instance: one workload, one policy, one engine.
/// Thin convenience wrapper so applications don't wire the pieces by hand.
class Server {
 public:
  struct Config {
    std::string policy = "unit";
    UsmWeights weights;
    EngineParams engine;
    PolicyOptions options;
  };

  /// Fails on an unknown policy name. `workload` must outlive the server.
  static StatusOr<std::unique_ptr<Server>> Create(const Workload& workload,
                                                  const Config& config);

  /// Runs the workload to completion; call at most once.
  RunMetrics Run();

  Policy& policy() { return *policy_; }
  const Config& config() const { return config_; }

 private:
  Server(const Workload& workload, Config config,
         std::unique_ptr<Policy> policy);

  const Workload& workload_;
  Config config_;
  std::unique_ptr<Policy> policy_;
  Engine engine_;
};

}  // namespace unitdb

#endif  // UNIT_SIM_SERVER_H_
