#include "unit/sim/experiment.h"

namespace unitdb {

StatusOr<ExperimentResult> RunExperiment(const Workload& workload,
                                         const std::string& policy,
                                         const UsmWeights& weights,
                                         const EngineParams& engine,
                                         const PolicyOptions& options) {
  Server::Config config;
  config.policy = policy;
  config.weights = weights;
  config.engine = engine;
  config.options = options;
  auto server = Server::Create(workload, config);
  if (!server.ok()) return server.status();

  ExperimentResult result;
  result.trace = workload.update_trace_name.empty()
                     ? workload.query_trace_name
                     : workload.update_trace_name;
  result.policy = policy;
  result.weights = weights;
  result.metrics = (*server)->Run();
  result.usm = UsmAverage(result.metrics.counts, weights);
  result.breakdown = UsmDecompose(result.metrics.counts, weights);
  return result;
}

StatusOr<std::vector<ExperimentResult>> RunPolicies(
    const Workload& workload, const std::vector<std::string>& policies,
    const UsmWeights& weights, const EngineParams& engine,
    const PolicyOptions& options) {
  std::vector<ExperimentResult> results;
  results.reserve(policies.size());
  for (const auto& policy : policies) {
    auto r = RunExperiment(workload, policy, weights, engine, options);
    if (!r.ok()) return r.status();
    results.push_back(std::move(*r));
  }
  return results;
}

StatusOr<Workload> MakeStandardWorkload(UpdateVolume volume,
                                        UpdateDistribution distribution,
                                        double scale, uint64_t seed) {
  if (scale <= 0.0) return Status::InvalidArgument("scale <= 0");
  QueryTraceParams qp;
  qp.seed = seed;
  qp.duration = static_cast<SimDuration>(
      static_cast<double>(qp.duration) * scale);
  auto workload = GenerateQueryTrace(qp);
  if (!workload.ok()) return workload.status();

  UpdateTraceParams up;
  up.volume = volume;
  up.distribution = distribution;
  up.seed = seed + 1;
  Status s = GenerateUpdateTrace(up, *workload);
  if (!s.ok()) return s;
  return workload;
}

StatusOr<ReplicatedResult> RunReplicated(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights, int replications,
    double scale, uint64_t base_seed, const EngineParams& engine,
    const PolicyOptions& options) {
  if (replications <= 0) {
    return Status::InvalidArgument("replications must be positive");
  }
  ReplicatedResult agg;
  agg.policy = policy;
  agg.replications = replications;
  for (int i = 0; i < replications; ++i) {
    auto w = MakeStandardWorkload(volume, distribution, scale,
                                  base_seed + 100 * static_cast<uint64_t>(i));
    if (!w.ok()) return w.status();
    agg.trace = w->update_trace_name;
    auto r = RunExperiment(*w, policy, weights, engine, options);
    if (!r.ok()) return r.status();
    const OutcomeCounts& c = r->metrics.counts;
    agg.usm.Add(r->usm);
    agg.success_ratio.Add(c.SuccessRatio());
    agg.rejection_ratio.Add(c.RejectionRatio());
    agg.dmf_ratio.Add(c.DmfRatio());
    agg.dsf_ratio.Add(c.DsfRatio());
  }
  return agg;
}

// The OCR of the paper's Table 2 lost the numeric weight cells; these values
// follow its structure exactly — three settings per regime, each making one
// penalty dominant — with representative magnitudes (see DESIGN.md §4).
std::vector<NamedWeights> Table2WeightsBelowOne() {
  return {
      {"high-Cr", UsmWeights{1.0, 0.8, 0.2, 0.2}},
      {"high-Cfm", UsmWeights{1.0, 0.2, 0.8, 0.2}},
      {"high-Cfs", UsmWeights{1.0, 0.2, 0.2, 0.8}},
  };
}

std::vector<NamedWeights> Table2WeightsAboveOne() {
  return {
      {"high-Cr", UsmWeights{1.0, 4.0, 2.0, 2.0}},
      {"high-Cfm", UsmWeights{1.0, 2.0, 4.0, 2.0}},
      {"high-Cfs", UsmWeights{1.0, 2.0, 2.0, 4.0}},
  };
}

}  // namespace unitdb
