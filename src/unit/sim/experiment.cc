#include "unit/sim/experiment.h"

#include <algorithm>
#include <future>
#include <memory>
#include <utility>

#include "unit/common/thread_pool.h"
#include "unit/obs/counters.h"
#include "unit/obs/trace_sink.h"

namespace unitdb {

StatusOr<ExperimentResult> RunExperiment(const Workload& workload,
                                         const std::string& policy,
                                         const UsmWeights& weights,
                                         const EngineParams& engine,
                                         const PolicyOptions& options) {
  Server::Config config;
  config.policy = policy;
  config.weights = weights;
  config.engine = engine;
  config.options = options;
  auto server = Server::Create(workload, config);
  if (!server.ok()) return server.status();

  ExperimentResult result;
  result.trace = workload.update_trace_name.empty()
                     ? workload.query_trace_name
                     : workload.update_trace_name;
  result.policy = policy;
  result.weights = weights;
  result.metrics = (*server)->Run();
  result.usm = UsmAverage(result.metrics.counts, weights);
  result.breakdown = UsmDecompose(result.metrics.counts, weights);
  return result;
}

StatusOr<ExperimentResult> RunShardedExperiment(
    const Workload& workload, const std::string& policy,
    const UsmWeights& weights, int shards, int jobs,
    const EngineParams& engine, const PolicyOptions& options) {
  ShardedParams params;
  params.shards = shards;
  params.jobs = jobs;
  params.engine = engine;
  params.options = options;
  auto sharded = RunSharded(workload, policy, weights, params);
  if (!sharded.ok()) return sharded.status();

  ExperimentResult result;
  result.trace = workload.update_trace_name.empty()
                     ? workload.query_trace_name
                     : workload.update_trace_name;
  result.policy = policy;
  result.weights = weights;
  result.metrics = std::move(sharded.value().metrics);
  result.usm = sharded.value().usm;
  result.breakdown = sharded.value().breakdown;
  return result;
}

StatusOr<ExperimentResult> RunTracedExperiment(
    const Workload& workload, const std::string& policy,
    const UsmWeights& weights, const ObsOptions& obs,
    const EngineParams& engine, const PolicyOptions& options) {
  EngineParams ep = engine;
  CounterRegistry counters;
  ep.counters = &counters;

  std::unique_ptr<JsonlTraceSink> sink;
  if (!obs.trace_path.empty()) {
    auto opened = JsonlTraceSink::Open(obs.trace_path, &counters);
    if (!opened.ok()) return opened.status();
    sink = std::move(*opened);
    ep.trace = sink.get();
  }

  const bool want_series = obs.series || !obs.series_csv_path.empty() ||
                           !obs.series_json_path.empty();
  TimeSeriesRecorder recorder(weights);
  if (want_series) ep.series = &recorder;

  auto result = RunExperiment(workload, policy, weights, ep, options);
  if (!result.ok()) return result;
  if (want_series) {
    result->series = recorder.samples();
    if (!obs.series_csv_path.empty()) {
      Status s = recorder.WriteCsv(obs.series_csv_path);
      if (!s.ok()) return s;
    }
    if (!obs.series_json_path.empty()) {
      Status s = recorder.WriteJson(obs.series_json_path);
      if (!s.ok()) return s;
    }
  }
  return result;
}

StatusOr<ExperimentResult> RunFaultedExperiment(
    const Workload& workload, const std::string& policy,
    const UsmWeights& weights, const FaultSchedule& schedule,
    const ObsOptions& obs, const EngineParams& engine,
    const PolicyOptions& options, double settle_epsilon) {
  EngineParams ep = engine;
  ep.faults = &schedule;
  auto result = RunTracedExperiment(workload, policy, weights, obs, ep,
                                    options);
  if (!result.ok()) return result;
  if (!schedule.empty() && !result->series.empty()) {
    result->disturbance =
        ComputeDisturbance(result->series, schedule, settle_epsilon);
  }
  return result;
}

StatusOr<DiffResult> RunDifferential(const DiffCase& diff_case,
                                     const DiffOptions& options) {
  return RunDiff(diff_case, options);
}

StatusOr<std::vector<ExperimentResult>> RunPolicies(
    const Workload& workload, const std::vector<std::string>& policies,
    const UsmWeights& weights, const EngineParams& engine,
    const PolicyOptions& options) {
  std::vector<ExperimentResult> results;
  results.reserve(policies.size());
  for (const auto& policy : policies) {
    auto r = RunExperiment(workload, policy, weights, engine, options);
    if (!r.ok()) return r.status();
    results.push_back(std::move(*r));
  }
  return results;
}

StatusOr<Workload> MakeStandardWorkload(UpdateVolume volume,
                                        UpdateDistribution distribution,
                                        double scale, uint64_t seed) {
  if (scale <= 0.0) return Status::InvalidArgument("scale <= 0");
  QueryTraceParams qp;
  qp.seed = seed;
  qp.duration = static_cast<SimDuration>(
      static_cast<double>(qp.duration) * scale);
  auto workload = GenerateQueryTrace(qp);
  if (!workload.ok()) return workload.status();

  UpdateTraceParams up;
  up.volume = volume;
  up.distribution = distribution;
  up.seed = seed + 1;
  Status s = GenerateUpdateTrace(up, *workload);
  if (!s.ok()) return s;
  return workload;
}

uint64_t ReplicationSeed(uint64_t base_seed, int replication) {
  return base_seed + 100 * static_cast<uint64_t>(replication);
}

namespace {

// Folds one replication's headline metrics into the aggregate. Both the
// sequential and the parallel runner fold in replication order, so their
// floating-point accumulation sequences are identical.
void AccumulateReplication(const ExperimentResult& r, ReplicatedResult& agg) {
  const OutcomeCounts& c = r.metrics.counts;
  agg.trace = r.trace;
  agg.usm.Add(r.usm);
  agg.success_ratio.Add(c.SuccessRatio());
  agg.rejection_ratio.Add(c.RejectionRatio());
  agg.dmf_ratio.Add(c.DmfRatio());
  agg.dsf_ratio.Add(c.DsfRatio());
}

// One fully self-contained replication: builds the workload from its
// derived seed, runs the policy. Safe to call from any thread.
StatusOr<ExperimentResult> RunOneReplication(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights, double scale,
    uint64_t seed, const EngineParams& engine, const PolicyOptions& options) {
  auto w = MakeStandardWorkload(volume, distribution, scale, seed);
  if (!w.ok()) return w.status();
  return RunExperiment(*w, policy, weights, engine, options);
}

}  // namespace

StatusOr<ReplicatedResult> RunReplicated(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights, int replications,
    double scale, uint64_t base_seed, const EngineParams& engine,
    const PolicyOptions& options) {
  if (replications <= 0) {
    return Status::InvalidArgument("replications must be positive");
  }
  ReplicatedResult agg;
  agg.policy = policy;
  agg.replications = replications;
  for (int i = 0; i < replications; ++i) {
    auto r = RunOneReplication(volume, distribution, policy, weights, scale,
                               ReplicationSeed(base_seed, i), engine, options);
    if (!r.ok()) return r.status();
    AccumulateReplication(*r, agg);
  }
  return agg;
}

StatusOr<ReplicatedResult> RunReplicatedParallel(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights, int replications,
    int jobs, double scale, uint64_t base_seed, const EngineParams& engine,
    const PolicyOptions& options) {
  if (replications <= 0) {
    return Status::InvalidArgument("replications must be positive");
  }
  ThreadPool pool(std::min(ResolveJobs(jobs), replications));
  std::vector<std::future<StatusOr<ExperimentResult>>> cells;
  cells.reserve(static_cast<size_t>(replications));
  for (int i = 0; i < replications; ++i) {
    cells.push_back(pool.Submit([=]() {
      return RunOneReplication(volume, distribution, policy, weights, scale,
                               ReplicationSeed(base_seed, i), engine, options);
    }));
  }
  // Barrier + deterministic fold: futures are consumed in submission order,
  // so aggregation never sees completion-order effects.
  ReplicatedResult agg;
  agg.policy = policy;
  agg.replications = replications;
  Status first_error = Status::Ok();
  for (auto& cell : cells) {
    auto r = cell.get();
    if (!r.ok()) {
      if (first_error.ok()) first_error = r.status();
      continue;  // keep draining so every future is consumed
    }
    if (first_error.ok()) AccumulateReplication(*r, agg);
  }
  if (!first_error.ok()) return first_error;
  return agg;
}

namespace {

// One fully self-contained faulted replication: workload and compiled
// schedule both derive from the replication's seed, so a worker thread
// needs nothing but the arguments. The series is always recorded — the
// disturbance report is the whole point of a faulted replication.
StatusOr<ExperimentResult> RunOneFaultedReplication(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights,
    const FaultScenarioSpec& scenario, double scale, uint64_t seed,
    const EngineParams& engine, const PolicyOptions& options,
    double settle_epsilon) {
  auto w = MakeStandardWorkload(volume, distribution, scale, seed);
  if (!w.ok()) return w.status();
  auto schedule = FaultSchedule::Compile(scenario, *w, seed);
  if (!schedule.ok()) return schedule.status();
  ObsOptions obs;
  obs.series = true;
  return RunFaultedExperiment(*w, policy, weights, *schedule, obs, engine,
                              options, settle_epsilon);
}

}  // namespace

StatusOr<std::vector<ExperimentResult>> RunFaultedReplicated(
    UpdateVolume volume, UpdateDistribution distribution,
    const std::string& policy, const UsmWeights& weights,
    const FaultScenarioSpec& scenario, int replications, int jobs,
    double scale, uint64_t base_seed, const EngineParams& engine,
    const PolicyOptions& options, double settle_epsilon) {
  if (replications <= 0) {
    return Status::InvalidArgument("replications must be positive");
  }
  std::vector<ExperimentResult> results;
  results.reserve(static_cast<size_t>(replications));
  if (jobs <= 1) {
    for (int i = 0; i < replications; ++i) {
      auto r = RunOneFaultedReplication(
          volume, distribution, policy, weights, scenario, scale,
          ReplicationSeed(base_seed, i), engine, options, settle_epsilon);
      if (!r.ok()) return r.status();
      results.push_back(std::move(*r));
    }
    return results;
  }
  ThreadPool pool(std::min(ResolveJobs(jobs), replications));
  std::vector<std::future<StatusOr<ExperimentResult>>> cells;
  cells.reserve(static_cast<size_t>(replications));
  for (int i = 0; i < replications; ++i) {
    const uint64_t seed = ReplicationSeed(base_seed, i);
    cells.push_back(pool.Submit([=]() {
      return RunOneFaultedReplication(volume, distribution, policy, weights,
                                      scenario, scale, seed, engine, options,
                                      settle_epsilon);
    }));
  }
  // Futures are consumed in submission order, so the returned vector is in
  // replication order no matter how workers interleave.
  Status first_error = Status::Ok();
  for (auto& cell : cells) {
    auto r = cell.get();
    if (!r.ok()) {
      if (first_error.ok()) first_error = r.status();
      continue;  // keep draining so every future is consumed
    }
    if (first_error.ok()) results.push_back(std::move(*r));
  }
  if (!first_error.ok()) return first_error;
  return results;
}

StatusOr<std::vector<GridCellResult>> RunGrid(const GridSpec& spec,
                                              int jobs) {
  if (spec.replications <= 0) {
    return Status::InvalidArgument("replications must be positive");
  }
  if (spec.volumes.empty() || spec.distributions.empty() ||
      spec.policies.empty()) {
    return Status::InvalidArgument("grid has an empty axis");
  }
  const std::vector<NamedWeights> weightings =
      spec.weightings.empty()
          ? std::vector<NamedWeights>{{"naive", UsmWeights{}}}
          : spec.weightings;

  const size_t num_traces = spec.distributions.size() * spec.volumes.size();
  const size_t reps = static_cast<size_t>(spec.replications);
  ThreadPool pool(ResolveJobs(jobs));

  // Phase 1 — generate each (trace, replication) workload once, in
  // parallel. Every (weights, policy) cell on that trace then shares the
  // workload read-only, exactly like the sequential benches do.
  std::vector<std::future<StatusOr<Workload>>> gen;
  gen.reserve(num_traces * reps);
  for (UpdateDistribution dist : spec.distributions) {
    for (UpdateVolume volume : spec.volumes) {
      for (size_t i = 0; i < reps; ++i) {
        const uint64_t seed =
            ReplicationSeed(spec.base_seed, static_cast<int>(i));
        const double scale = spec.scale;
        gen.push_back(pool.Submit([volume, dist, scale, seed]() {
          return MakeStandardWorkload(volume, dist, scale, seed);
        }));
      }
    }
  }
  std::vector<Workload> workloads;  // trace-major, replication-minor
  workloads.reserve(gen.size());
  Status gen_error = Status::Ok();
  for (auto& g : gen) {
    auto w = g.get();
    if (!w.ok()) {
      if (gen_error.ok()) gen_error = w.status();
      continue;
    }
    if (gen_error.ok()) workloads.push_back(std::move(*w));
  }
  if (!gen_error.ok()) return gen_error;

  // Phase 2 — one task per (trace, weighting, policy) cell; a cell folds
  // its replications in order, so it is bit-identical to RunReplicated on
  // the same axes. Tasks are independent, so completion order is free.
  struct CellAxes {
    UpdateVolume volume;
    UpdateDistribution distribution;
    const NamedWeights* weighting;
    const std::string* policy;
    size_t trace_index;
  };
  std::vector<CellAxes> axes;
  axes.reserve(num_traces * weightings.size() * spec.policies.size());
  size_t trace_index = 0;
  for (UpdateDistribution dist : spec.distributions) {
    for (UpdateVolume volume : spec.volumes) {
      for (const NamedWeights& nw : weightings) {
        for (const std::string& policy : spec.policies) {
          axes.push_back({volume, dist, &nw, &policy, trace_index});
        }
      }
      ++trace_index;
    }
  }
  std::vector<std::future<StatusOr<ReplicatedResult>>> runs;
  runs.reserve(axes.size());
  for (const CellAxes& cell : axes) {
    runs.push_back(pool.Submit([&spec, &workloads, cell, reps]() {
      ReplicatedResult agg;
      agg.policy = *cell.policy;
      agg.replications = static_cast<int>(reps);
      for (size_t i = 0; i < reps; ++i) {
        const Workload& w = workloads[cell.trace_index * reps + i];
        auto r = spec.shards > 1
                     ? RunShardedExperiment(w, *cell.policy,
                                            cell.weighting->weights,
                                            spec.shards, /*jobs=*/1,
                                            spec.engine, spec.options)
                     : RunExperiment(w, *cell.policy, cell.weighting->weights,
                                     spec.engine, spec.options);
        if (!r.ok()) return StatusOr<ReplicatedResult>(r.status());
        AccumulateReplication(*r, agg);
      }
      return StatusOr<ReplicatedResult>(std::move(agg));
    }));
  }
  std::vector<GridCellResult> out;
  out.reserve(axes.size());
  Status run_error = Status::Ok();
  for (size_t i = 0; i < runs.size(); ++i) {
    auto r = runs[i].get();
    if (!r.ok()) {
      if (run_error.ok()) run_error = r.status();
      continue;
    }
    if (!run_error.ok()) continue;
    GridCellResult cell;
    cell.volume = axes[i].volume;
    cell.distribution = axes[i].distribution;
    cell.weights_name = axes[i].weighting->name;
    cell.weights = axes[i].weighting->weights;
    cell.result = std::move(*r);
    out.push_back(std::move(cell));
  }
  if (!run_error.ok()) return run_error;
  return out;
}

// The OCR of the paper's Table 2 lost the numeric weight cells; these values
// follow its structure exactly — three settings per regime, each making one
// penalty dominant — with representative magnitudes (see DESIGN.md §4).
std::vector<NamedWeights> Table2WeightsBelowOne() {
  return {
      {"high-Cr", UsmWeights{1.0, 0.8, 0.2, 0.2}},
      {"high-Cfm", UsmWeights{1.0, 0.2, 0.8, 0.2}},
      {"high-Cfs", UsmWeights{1.0, 0.2, 0.2, 0.8}},
  };
}

std::vector<NamedWeights> Table2WeightsAboveOne() {
  return {
      {"high-Cr", UsmWeights{1.0, 4.0, 2.0, 2.0}},
      {"high-Cfm", UsmWeights{1.0, 2.0, 4.0, 2.0}},
      {"high-Cfs", UsmWeights{1.0, 2.0, 2.0, 4.0}},
  };
}

}  // namespace unitdb
