#include "unit/workload/spec.h"

#include "unit/workload/query_source.h"

namespace unitdb {

int64_t Workload::QueryCount() const {
  if (query_source) return query_source->count();
  return static_cast<int64_t>(queries.size());
}

double Workload::QueryUtilization() const {
  if (duration <= 0) return 0.0;
  double busy = 0.0;
  if (query_source) {
    QueryRequest q;
    auto cursor = query_source->NewCursor();
    while (cursor->Next(&q)) busy += static_cast<double>(q.exec);
  } else {
    for (const auto& q : queries) busy += static_cast<double>(q.exec);
  }
  return busy / static_cast<double>(duration);
}

std::vector<int64_t> Workload::QueryAccessCounts() const {
  std::vector<int64_t> counts(num_items, 0);
  if (query_source) {
    QueryRequest q;
    auto cursor = query_source->NewCursor();
    while (cursor->Next(&q)) {
      for (ItemId it : q.items) ++counts[it];
    }
  } else {
    for (const auto& q : queries) {
      for (ItemId it : q.items) ++counts[it];
    }
  }
  return counts;
}

}  // namespace unitdb
