#ifndef UNIT_WORKLOAD_CORRELATION_H_
#define UNIT_WORKLOAD_CORRELATION_H_

#include <cstdint>
#include <vector>

#include "unit/common/rng.h"
#include "unit/common/status.h"

namespace unitdb {

/// Generates non-negative per-item weights (summing to 1) whose Spearman
/// rank correlation with `reference` approximates `target_rho` in [-1, 1].
///
/// Method: blend a base shape with independent exponential noise,
///   w(lambda) = lambda * base + (1 - lambda) * noise,
/// where base mirrors `reference`'s own (sign-adjusted) shape — for a
/// negative target, the shape is assigned in inverted rank order, producing
/// the "hot-updated vs cold-updated" dichotomy the paper observes in
/// Fig. 3(c). `lambda` is found by monotone bisection on the achieved
/// Spearman correlation. The achievable |rho| is capped by ties in
/// `reference` (many items with identical counts); if the target exceeds the
/// cap, the closest attainable weights (lambda = 1) are returned.
///
/// Fails if `reference` is empty or all-equal, or |target_rho| > 1.
StatusOr<std::vector<double>> CorrelatedWeights(
    const std::vector<int64_t>& reference, double target_rho, Rng& rng);

}  // namespace unitdb

#endif  // UNIT_WORKLOAD_CORRELATION_H_
