#ifndef UNIT_WORKLOAD_TRACE_IO_H_
#define UNIT_WORKLOAD_TRACE_IO_H_

#include <string>

#include "unit/common/status.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// Serializes a workload (queries + update sources) to a CSV document so
/// experiments can be archived and replayed bit-exactly. Row format:
///   M,<num_items>,<duration_us>,<query_trace_name>,<update_trace_name>
///   Q,<id>,<arrival_us>,<exec_us>,<deadline_us>,<freshness_req>,<i1;i2;...>[,<pref_class>]
///   U,<item>,<ideal_period_us>,<exec_us>,<phase_us>
std::string WorkloadToCsv(const Workload& workload);

/// Parses a document produced by WorkloadToCsv.
StatusOr<Workload> WorkloadFromCsv(const std::string& text);

/// Convenience file round-trips.
Status SaveWorkload(const Workload& workload, const std::string& path);
StatusOr<Workload> LoadWorkload(const std::string& path);

}  // namespace unitdb

#endif  // UNIT_WORKLOAD_TRACE_IO_H_
