#ifndef UNIT_WORKLOAD_QUERY_TRACE_H_
#define UNIT_WORKLOAD_QUERY_TRACE_H_

#include <cstdint>

#include "unit/common/status.h"
#include "unit/common/types.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// Parameters of the synthetic query-trace generator.
///
/// The paper drives its evaluation with the HP `cello99a` disk trace
/// (110,035 reads over 3.8M seconds, disk partitioned into 1024 regions =
/// data items, deadlines drawn from [average RT, 10 x max RT], freshness
/// requirement fixed at 90%). The trace itself is proprietary, so we
/// synthesize a workload preserving every property the algorithms react to:
/// skewed item popularity (Fig. 3(a) shows a strongly skewed histogram),
/// bursty arrivals (flash crowds, Section 1), heavy-tailed service times,
/// and the paper's exact deadline/freshness rules. See DESIGN.md §4.
struct QueryTraceParams {
  int num_items = 1024;
  SimDuration duration = SecondsToSim(2000.0);

  /// Arrivals: 2-state Markov-modulated Poisson process.
  double base_rate_hz = 5.0;          ///< arrival rate in the normal state
  double burst_rate_multiplier = 25.0;  ///< flash-crowd rate = base * this
  double mean_normal_sojourn_s = 90.0;
  double mean_burst_sojourn_s = 2.5;

  /// Item popularity: Zipf(s) over num_items ranks; rank r maps to item id r
  /// (item 0 hottest), matching the monotone-looking histogram of Fig. 3(a).
  double zipf_s = 1.3;

  /// Temporal locality: with this probability a query reads from the current
  /// working set (recently touched items) instead of drawing a fresh
  /// Zipf-popular item. Disk traces like cello99a are strongly sessionized;
  /// without locality, no update policy could tell which cold items are safe
  /// to let go stale.
  double locality_p = 0.75;
  int working_set_size = 128;

  /// Number of items read per query: 1 + Geometric(extra_item_p) extras.
  double extra_item_p = 0.25;
  int max_items_per_query = 8;

  /// Service demand: lognormal with the given median and shape, clamped.
  double exec_median_ms = 20.0;
  double exec_sigma = 1.2;
  double exec_min_ms = 0.5;
  double exec_max_ms = 1000.0;

  /// Deadlines: Uniform[deadline_lo_factor * mean_exec,
  ///                    deadline_hi_factor * max_exec] (paper: [avg RT, 10 max RT]).
  double deadline_lo_factor = 1.0;
  double deadline_hi_factor = 10.0;

  double freshness_req = 0.9;  ///< paper fixes qf at 90% for every query

  /// Number of user preference classes; queries are assigned uniformly at
  /// random. 1 = the paper's single-class assumption.
  int num_preference_classes = 1;

  uint64_t seed = 42;
};

/// Parameter validation shared by GenerateQueryTrace and its streaming twin
/// (workload/query_source.h), so both fail on exactly the same inputs.
Status ValidateQueryTraceParams(const QueryTraceParams& params);

/// Generates the query side of a workload (updates attached separately by
/// GenerateUpdateTrace). Fails on nonsensical parameters.
StatusOr<Workload> GenerateQueryTrace(const QueryTraceParams& params);

}  // namespace unitdb

#endif  // UNIT_WORKLOAD_QUERY_TRACE_H_
