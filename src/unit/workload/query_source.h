#ifndef UNIT_WORKLOAD_QUERY_SOURCE_H_
#define UNIT_WORKLOAD_QUERY_SOURCE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "unit/common/rng.h"
#include "unit/common/status.h"
#include "unit/workload/query_trace.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// Forward-only iterator over a query trace. Queries come out in arrival
/// order with ids 0, 1, 2, ...; `Next` reuses `out`'s storage, so a consumer
/// holding one QueryRequest buffer streams an arbitrarily long trace in O(1)
/// memory.
class QueryCursor {
 public:
  virtual ~QueryCursor() = default;

  /// Fills `*out` with the next query; returns false at end of trace.
  virtual bool Next(QueryRequest* out) = 0;
};

/// A replayable query trace the engine can consume without materializing it:
/// the polymorphic query side of a Workload. `NewCursor` starts a fresh
/// deterministic replay — every cursor of one source yields the identical
/// sequence.
class QuerySource {
 public:
  virtual ~QuerySource() = default;

  /// Exact number of queries every cursor will yield.
  virtual int64_t count() const = 0;

  virtual std::unique_ptr<QueryCursor> NewCursor() const = 0;
};

/// QuerySource over an owned materialized vector: adapts any pre-built query
/// list (hand-written, generated, or shrunk) to the streaming interface so
/// the differential harness can replay identical inputs through both paths.
class VectorQuerySource final : public QuerySource {
 public:
  explicit VectorQuerySource(std::vector<QueryRequest> queries)
      : queries_(std::move(queries)) {}

  int64_t count() const override {
    return static_cast<int64_t>(queries_.size());
  }
  std::unique_ptr<QueryCursor> NewCursor() const override;

  const std::vector<QueryRequest>& queries() const { return queries_; }

 private:
  std::vector<QueryRequest> queries_;
};

/// Whole-trace properties the streaming generator needs before the first
/// query: GenerateQueryTrace draws each deadline from Uniform[lo, hi] where
/// lo/hi derive from the mean and max execution time over the *entire*
/// trace. CalibrateQueryStream recovers them in O(1) memory by replaying
/// clones of the arrival and execution RNG streams (same draw and
/// floating-point accumulation order as the materialized generator, so the
/// bounds are bit-identical).
struct QueryStreamCalibration {
  int64_t count = 0;          ///< total arrivals in [0, duration)
  double deadline_lo_ms = 0;  ///< lo_factor * mean exec (ms)
  double deadline_hi_ms = 0;  ///< max(lo + 1e-9, hi_factor * max exec) (ms)
};

/// Computes the calibration for `params` (already-validated parameters).
QueryStreamCalibration CalibrateQueryStream(const QueryTraceParams& params);

/// Streaming twin of GenerateQueryTrace (workload/query_trace.cc): yields
/// the same MMPP arrivals, Zipf/working-set read sets, lognormal service
/// demands, and uniform deadlines bit-for-bit, one query at a time, from
/// O(working_set_size) state. The materialized generator stays the oracle —
/// tests/workload/query_stream_test.cc pins prefix identity for both.
class QueryStream final : public QueryCursor {
 public:
  QueryStream(const QueryTraceParams& params,
              const QueryStreamCalibration& calibration);

  bool Next(QueryRequest* out) override;

  /// Queries yielded so far (== the next query's id).
  int64_t position() const { return index_; }

 private:
  ItemId DrawItem();
  void Touch(ItemId item);
  /// Advances the MMPP to the next arrival; false when the horizon is hit.
  bool NextArrival(SimTime* arrival);

  const QueryTraceParams params_;
  const QueryStreamCalibration calibration_;
  Rng arrival_rng_;
  Rng item_rng_;
  Rng exec_rng_;
  Rng deadline_rng_;
  ZipfSampler zipf_;
  std::vector<ItemId> working_set_;
  size_t ws_cursor_ = 0;
  bool in_burst_ = false;
  double t_s_ = 0.0;
  double state_end_s_ = 0.0;
  double horizon_s_ = 0.0;
  double exec_mu_ = 0.0;
  int64_t index_ = 0;
};

/// QuerySource producing QueryStream cursors: validates and calibrates once,
/// then every cursor replays the identical trace.
class StreamingQuerySource final : public QuerySource {
 public:
  /// Fails on the same parameter errors as GenerateQueryTrace.
  static StatusOr<std::shared_ptr<const StreamingQuerySource>> Make(
      const QueryTraceParams& params);

  int64_t count() const override { return calibration_.count; }
  std::unique_ptr<QueryCursor> NewCursor() const override;

  const QueryTraceParams& params() const { return params_; }
  const QueryStreamCalibration& calibration() const { return calibration_; }

 private:
  StreamingQuerySource(const QueryTraceParams& params,
                       const QueryStreamCalibration& calibration)
      : params_(params), calibration_(calibration) {}

  QueryTraceParams params_;
  QueryStreamCalibration calibration_;
};

/// Builds a workload whose query side streams on demand: num_items /
/// duration / trace name are set as GenerateQueryTrace would, `queries`
/// stays empty, and `query_source` yields the identical trace. Attach
/// updates with GenerateUpdateTrace as usual (correlated distributions make
/// one calibration pass over the stream for access counts).
StatusOr<Workload> MakeStreamingWorkload(const QueryTraceParams& params);

/// Moves `w.queries` into a VectorQuerySource attached as `w.query_source`,
/// leaving `queries` empty: any materialized workload replayed through the
/// streaming engine path (the differential harness's stream configurations).
void ConvertToStreamingWorkload(Workload* w);

}  // namespace unitdb

#endif  // UNIT_WORKLOAD_QUERY_SOURCE_H_
