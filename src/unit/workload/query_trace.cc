#include "unit/workload/query_trace.h"

#include <algorithm>
#include <cmath>

#include "unit/common/rng.h"

namespace unitdb {

Status ValidateQueryTraceParams(const QueryTraceParams& p) {
  if (p.num_items <= 0) return Status::InvalidArgument("num_items <= 0");
  if (p.duration <= 0) return Status::InvalidArgument("duration <= 0");
  if (p.base_rate_hz <= 0.0) return Status::InvalidArgument("base rate <= 0");
  if (p.burst_rate_multiplier < 1.0) {
    return Status::InvalidArgument("burst multiplier < 1");
  }
  if (p.mean_normal_sojourn_s <= 0.0 || p.mean_burst_sojourn_s <= 0.0) {
    return Status::InvalidArgument("sojourn times must be positive");
  }
  if (p.zipf_s < 0.0) return Status::InvalidArgument("zipf_s < 0");
  if (p.locality_p < 0.0 || p.locality_p >= 1.0) {
    return Status::InvalidArgument("locality_p outside [0,1)");
  }
  if (p.extra_item_p < 0.0 || p.extra_item_p >= 1.0) {
    return Status::InvalidArgument("extra_item_p outside [0,1)");
  }
  if (p.max_items_per_query < 1) {
    return Status::InvalidArgument("max_items_per_query < 1");
  }
  if (p.num_preference_classes < 1) {
    return Status::InvalidArgument("num_preference_classes < 1");
  }
  if (p.exec_min_ms <= 0.0 || p.exec_max_ms < p.exec_min_ms ||
      p.exec_median_ms <= 0.0 || p.exec_sigma < 0.0) {
    return Status::InvalidArgument("bad execution-time parameters");
  }
  if (p.deadline_lo_factor <= 0.0 ||
      p.deadline_hi_factor < p.deadline_lo_factor) {
    return Status::InvalidArgument("bad deadline factors");
  }
  if (p.freshness_req < 0.0 || p.freshness_req > 1.0) {
    return Status::InvalidArgument("freshness_req outside [0,1]");
  }
  return Status::Ok();
}

StatusOr<Workload> GenerateQueryTrace(const QueryTraceParams& p) {
  Status s = ValidateQueryTraceParams(p);
  if (!s.ok()) return s;

  Rng rng(p.seed);
  Rng arrival_rng = rng.Fork();
  Rng item_rng = rng.Fork();
  Rng exec_rng = rng.Fork();
  Rng deadline_rng = rng.Fork();

  Workload w;
  w.num_items = p.num_items;
  w.duration = p.duration;
  w.query_trace_name = "cello-like";

  const ZipfSampler zipf(p.num_items, p.zipf_s);

  // Working set for temporal locality: a ring of recently touched items.
  std::vector<ItemId> working_set;
  size_t ws_cursor = 0;
  auto touch = [&](ItemId item) {
    if (p.working_set_size <= 0) return;
    if (static_cast<int>(working_set.size()) < p.working_set_size) {
      working_set.push_back(item);
    } else {
      working_set[ws_cursor] = item;
      ws_cursor = (ws_cursor + 1) % working_set.size();
    }
  };
  auto draw_item = [&]() -> ItemId {
    if (!working_set.empty() && item_rng.Bernoulli(p.locality_p)) {
      return working_set[static_cast<size_t>(item_rng.UniformInt(
          0, static_cast<int64_t>(working_set.size()) - 1))];
    }
    const ItemId fresh = zipf.Sample(item_rng);
    touch(fresh);
    return fresh;
  };

  // --- arrivals: two-state MMPP ---
  const double burst_rate = p.base_rate_hz * p.burst_rate_multiplier;
  bool in_burst = false;
  double t_s = 0.0;  // current time, seconds
  double state_end_s = arrival_rng.Exponential(p.mean_normal_sojourn_s);
  const double horizon_s = SimToSeconds(p.duration);
  std::vector<SimTime> arrivals;
  while (t_s < horizon_s) {
    const double rate = in_burst ? burst_rate : p.base_rate_hz;
    const double gap = arrival_rng.Exponential(1.0 / rate);
    if (t_s + gap >= state_end_s) {
      // State switch; no arrival in the truncated residual (memoryless).
      t_s = state_end_s;
      in_burst = !in_burst;
      state_end_s = t_s + arrival_rng.Exponential(in_burst
                                                      ? p.mean_burst_sojourn_s
                                                      : p.mean_normal_sojourn_s);
      continue;
    }
    t_s += gap;
    if (t_s < horizon_s) arrivals.push_back(SecondsToSim(t_s));
  }

  // --- per-query attributes ---
  const double exec_mu = std::log(p.exec_median_ms);
  w.queries.reserve(arrivals.size());
  double exec_sum_ms = 0.0;
  double exec_max_ms_seen = 0.0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    QueryRequest q;
    q.id = static_cast<TxnId>(i);
    q.arrival = arrivals[i];
    // Read set: 1 + Geometric(extra_item_p) distinct items, drawn with
    // working-set temporal locality over the Zipf popularity distribution.
    q.items.push_back(draw_item());
    while (static_cast<int>(q.items.size()) < p.max_items_per_query &&
           item_rng.Bernoulli(p.extra_item_p)) {
      const ItemId extra = draw_item();
      if (std::find(q.items.begin(), q.items.end(), extra) == q.items.end()) {
        q.items.push_back(extra);
      }
    }
    const double exec_ms = std::clamp(
        exec_rng.LogNormal(exec_mu, p.exec_sigma), p.exec_min_ms,
        p.exec_max_ms);
    q.exec = std::max<SimDuration>(1, MillisToSim(exec_ms));
    q.freshness_req = p.freshness_req;
    if (p.num_preference_classes > 1) {
      q.preference_class = static_cast<int>(
          item_rng.UniformInt(0, p.num_preference_classes - 1));
    }
    exec_sum_ms += exec_ms;
    exec_max_ms_seen = std::max(exec_max_ms_seen, exec_ms);
    w.queries.push_back(std::move(q));
  }

  // --- deadlines: Uniform[lo_factor * mean exec, hi_factor * max exec] ---
  if (!w.queries.empty()) {
    const double mean_ms = exec_sum_ms / static_cast<double>(w.queries.size());
    const double lo_ms = p.deadline_lo_factor * mean_ms;
    const double hi_ms =
        std::max(lo_ms + 1e-9, p.deadline_hi_factor * exec_max_ms_seen);
    for (auto& q : w.queries) {
      q.relative_deadline = std::max<SimDuration>(
          1, MillisToSim(deadline_rng.Uniform(lo_ms, hi_ms)));
    }
  }
  return w;
}

}  // namespace unitdb
