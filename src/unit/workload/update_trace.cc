#include "unit/workload/update_trace.h"

#include <cmath>

#include "unit/common/rng.h"
#include "unit/workload/correlation.h"

namespace unitdb {

const char* UpdateVolumeName(UpdateVolume v) {
  switch (v) {
    case UpdateVolume::kLow:
      return "low";
    case UpdateVolume::kMedium:
      return "med";
    case UpdateVolume::kHigh:
      return "high";
  }
  return "?";
}

const char* UpdateDistributionName(UpdateDistribution d) {
  switch (d) {
    case UpdateDistribution::kUniform:
      return "unif";
    case UpdateDistribution::kPositive:
      return "pos";
    case UpdateDistribution::kNegative:
      return "neg";
  }
  return "?";
}

double VolumeUtilization(UpdateVolume v) {
  switch (v) {
    case UpdateVolume::kLow:
      return 0.15;
    case UpdateVolume::kMedium:
      return 0.75;
    case UpdateVolume::kHigh:
      return 1.50;
  }
  return 0.0;
}

std::string UpdateTraceName(const UpdateTraceParams& params) {
  return std::string(UpdateVolumeName(params.volume)) + "-" +
         UpdateDistributionName(params.distribution);
}

Status GenerateUpdateTrace(const UpdateTraceParams& p, Workload& w) {
  if (w.num_items <= 0 || w.duration <= 0) {
    return Status::FailedPrecondition("workload has no items/duration");
  }
  if (p.exec_lo_ms <= 0.0 || p.exec_hi_ms < p.exec_lo_ms) {
    return Status::InvalidArgument("bad update exec range");
  }
  const double utilization = p.utilization_override > 0.0
                                 ? p.utilization_override
                                 : VolumeUtilization(p.volume);
  if (utilization <= 0.0) return Status::InvalidArgument("utilization <= 0");

  Rng rng(p.seed);
  Rng exec_rng = rng.Fork();
  Rng weight_rng = rng.Fork();
  Rng phase_rng = rng.Fork();

  const int n = w.num_items;

  // Spatial weights over items.
  std::vector<double> weights;
  if (p.distribution == UpdateDistribution::kUniform) {
    weights.assign(n, 1.0 / n);
  } else {
    if (w.QueryCount() == 0) {
      return Status::FailedPrecondition(
          "correlated update trace requires the query trace first");
    }
    const double rho = p.distribution == UpdateDistribution::kPositive
                           ? p.correlation
                           : -p.correlation;
    auto result = CorrelatedWeights(w.QueryAccessCounts(), rho, weight_rng);
    if (!result.ok()) return result.status();
    weights = std::move(result).value();
  }

  // Per-item execution times, uniform in [lo, hi] ms.
  std::vector<SimDuration> execs(n);
  for (int i = 0; i < n; ++i) {
    execs[i] = std::max<SimDuration>(
        1, MillisToSim(exec_rng.Uniform(p.exec_lo_ms, p.exec_hi_ms)));
  }

  // Total update count T: sum_j (T * w_j) * ue_j = utilization * duration.
  double weighted_exec = 0.0;
  for (int i = 0; i < n; ++i) {
    weighted_exec += weights[i] * static_cast<double>(execs[i]);
  }
  if (weighted_exec <= 0.0) return Status::Internal("degenerate weights");
  const double total_updates =
      utilization * static_cast<double>(w.duration) / weighted_exec;

  w.updates.clear();
  const double duration_d = static_cast<double>(w.duration);
  for (int i = 0; i < n; ++i) {
    const double count = total_updates * weights[i];
    // Items expecting (essentially) zero updates get no source at all.
    if (count < 1e-4) continue;
    const double period_d = duration_d / count;
    ItemUpdateSpec spec;
    spec.item = i;
    spec.update_exec = execs[i];
    spec.ideal_period = std::max<SimDuration>(
        1, static_cast<SimDuration>(std::llround(period_d)));
    // Uniform phase in [0, period): for count < 1 this makes the expected
    // number of in-run generations equal `count`.
    spec.phase = static_cast<SimTime>(
        phase_rng.Uniform(0.0, static_cast<double>(spec.ideal_period)));
    if (spec.phase >= spec.ideal_period) spec.phase = spec.ideal_period - 1;
    w.updates.push_back(spec);
  }
  w.update_trace_name = UpdateTraceName(p);
  return Status::Ok();
}

}  // namespace unitdb
