#include "unit/workload/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "unit/common/stats.h"

namespace unitdb {

namespace {

// Normalizes to sum 1 (input must have a positive sum).
void Normalize(std::vector<double>& v) {
  const double sum = std::accumulate(v.begin(), v.end(), 0.0);
  for (auto& x : v) x /= sum;
}

}  // namespace

StatusOr<std::vector<double>> CorrelatedWeights(
    const std::vector<int64_t>& reference, double target_rho, Rng& rng) {
  const size_t n = reference.size();
  if (n < 2) return Status::InvalidArgument("reference needs >= 2 items");
  if (std::abs(target_rho) > 1.0) {
    return Status::InvalidArgument("|target_rho| > 1");
  }
  const auto [min_it, max_it] =
      std::minmax_element(reference.begin(), reference.end());
  if (*min_it == *max_it) {
    return Status::InvalidArgument("reference is constant; no rank order");
  }

  std::vector<double> ref(n);
  for (size_t i = 0; i < n; ++i) ref[i] = static_cast<double>(reference[i]);

  // Base shape: the reference's own value multiset, assigned in matching
  // (positive target) or inverted (negative target) rank order. Small random
  // jitter breaks ties so the base correlates as strongly as ties permit.
  std::vector<size_t> by_ref(n);
  std::iota(by_ref.begin(), by_ref.end(), 0);
  std::sort(by_ref.begin(), by_ref.end(),
            [&ref](size_t a, size_t b) { return ref[a] < ref[b]; });
  std::vector<double> sorted_vals(n);
  for (size_t r = 0; r < n; ++r) sorted_vals[r] = ref[by_ref[r]] + 1.0;
  std::vector<double> base(n);
  const bool negative = target_rho < 0.0;
  for (size_t r = 0; r < n; ++r) {
    const size_t src_rank = negative ? (n - 1 - r) : r;
    base[by_ref[r]] = sorted_vals[src_rank];
  }
  Normalize(base);

  std::vector<double> noise(n);
  for (auto& x : noise) x = rng.Exponential(1.0);
  Normalize(noise);

  auto blend = [&](double lambda) {
    std::vector<double> w(n);
    for (size_t i = 0; i < n; ++i) {
      w[i] = lambda * base[i] + (1.0 - lambda) * noise[i];
    }
    return w;
  };
  auto rho_of = [&](const std::vector<double>& w) {
    return SpearmanCorrelation(w, ref);
  };

  // |rho(lambda)| grows (approximately monotonically) with lambda; bisect.
  const double want = target_rho;
  double lo = 0.0, hi = 1.0;
  std::vector<double> w_hi = blend(1.0);
  const double rho_hi = rho_of(w_hi);
  // Target beyond what ties allow: return the strongest correlation we have.
  if ((negative && rho_hi >= want) || (!negative && rho_hi <= want)) {
    return w_hi;
  }
  std::vector<double> best = std::move(w_hi);
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    std::vector<double> w = blend(mid);
    const double rho = rho_of(w);
    const bool too_strong = negative ? (rho < want) : (rho > want);
    if (too_strong) {
      hi = mid;
    } else {
      lo = mid;
    }
    if (std::abs(rho - want) < std::abs(rho_of(best) - want)) {
      best = std::move(w);
    }
  }
  return best;
}

}  // namespace unitdb
