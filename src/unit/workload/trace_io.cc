#include "unit/workload/trace_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "unit/common/csv.h"

namespace unitdb {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

StatusOr<int64_t> ParseI64(const std::string& s) {
  char* end = nullptr;
  const int64_t v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer: '" + s + "'");
  }
  return v;
}

StatusOr<double> ParseF64(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad double: '" + s + "'");
  }
  return v;
}

std::string JoinItems(const std::vector<ItemId>& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(items[i]);
  }
  return out;
}

StatusOr<std::vector<ItemId>> SplitItems(const std::string& s) {
  std::vector<ItemId> items;
  std::istringstream in(s);
  std::string part;
  while (std::getline(in, part, ';')) {
    auto v = ParseI64(part);
    if (!v.ok()) return v.status();
    items.push_back(static_cast<ItemId>(*v));
  }
  if (items.empty()) return Status::InvalidArgument("empty item list");
  return items;
}

}  // namespace

std::string WorkloadToCsv(const Workload& w) {
  CsvWriter csv;
  csv.AddRow({"M", std::to_string(w.num_items), std::to_string(w.duration),
              w.query_trace_name, w.update_trace_name});
  for (const auto& q : w.queries) {
    csv.AddRow({"Q", std::to_string(q.id), std::to_string(q.arrival),
                std::to_string(q.exec), std::to_string(q.relative_deadline),
                FormatDouble(q.freshness_req), JoinItems(q.items),
                std::to_string(q.preference_class)});
  }
  for (const auto& u : w.updates) {
    csv.AddRow({"U", std::to_string(u.item), std::to_string(u.ideal_period),
                std::to_string(u.update_exec), std::to_string(u.phase)});
  }
  return csv.ToString();
}

StatusOr<Workload> WorkloadFromCsv(const std::string& text) {
  auto rows = CsvReader::Parse(text);
  if (!rows.ok()) return rows.status();
  Workload w;
  bool saw_meta = false;
  for (const auto& row : *rows) {
    if (row.empty()) continue;
    const std::string& tag = row[0];
    if (tag == "M") {
      if (row.size() != 5) return Status::InvalidArgument("bad M row");
      auto items = ParseI64(row[1]);
      auto dur = ParseI64(row[2]);
      if (!items.ok()) return items.status();
      if (!dur.ok()) return dur.status();
      w.num_items = static_cast<int>(*items);
      w.duration = *dur;
      w.query_trace_name = row[3];
      w.update_trace_name = row[4];
      saw_meta = true;
    } else if (tag == "Q") {
      if (row.size() != 7 && row.size() != 8) {
        return Status::InvalidArgument("bad Q row");
      }
      QueryRequest q;
      auto id = ParseI64(row[1]);
      auto arrival = ParseI64(row[2]);
      auto exec = ParseI64(row[3]);
      auto deadline = ParseI64(row[4]);
      auto fresh = ParseF64(row[5]);
      auto items = SplitItems(row[6]);
      for (const Status& s :
           {id.status(), arrival.status(), exec.status(), deadline.status(),
            fresh.status(), items.status()}) {
        if (!s.ok()) return s;
      }
      q.id = *id;
      q.arrival = *arrival;
      q.exec = *exec;
      q.relative_deadline = *deadline;
      q.freshness_req = *fresh;
      q.items = std::move(*items);
      if (row.size() == 8) {
        auto cls = ParseI64(row[7]);
        if (!cls.ok()) return cls.status();
        q.preference_class = static_cast<int>(*cls);
      }
      w.queries.push_back(std::move(q));
    } else if (tag == "U") {
      if (row.size() != 5) return Status::InvalidArgument("bad U row");
      ItemUpdateSpec u;
      auto item = ParseI64(row[1]);
      auto period = ParseI64(row[2]);
      auto exec = ParseI64(row[3]);
      auto phase = ParseI64(row[4]);
      for (const Status& s : {item.status(), period.status(), exec.status(),
                              phase.status()}) {
        if (!s.ok()) return s;
      }
      u.item = static_cast<ItemId>(*item);
      u.ideal_period = *period;
      u.update_exec = *exec;
      u.phase = *phase;
      w.updates.push_back(u);
    } else {
      return Status::InvalidArgument("unknown row tag '" + tag + "'");
    }
  }
  if (!saw_meta) return Status::InvalidArgument("missing M (meta) row");
  return w;
}

Status SaveWorkload(const Workload& w, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << WorkloadToCsv(w);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Workload> LoadWorkload(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return WorkloadFromCsv(ss.str());
}

}  // namespace unitdb
