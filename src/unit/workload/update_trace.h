#ifndef UNIT_WORKLOAD_UPDATE_TRACE_H_
#define UNIT_WORKLOAD_UPDATE_TRACE_H_

#include <cstdint>
#include <string>

#include "unit/common/status.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// Update volume classes of the paper's Table 1, expressed — as the paper
/// does — as the CPU utilization of executing every update: 15%, 75%, 150%.
enum class UpdateVolume { kLow, kMedium, kHigh };

/// Spatial distribution of updates over data items (Table 1): uniform, or
/// rank-correlated with the query distribution at coefficient ~0.8
/// (positive or negative).
enum class UpdateDistribution { kUniform, kPositive, kNegative };

const char* UpdateVolumeName(UpdateVolume v);        ///< "low"/"med"/"high"
const char* UpdateDistributionName(UpdateDistribution d);  ///< "unif"/"pos"/"neg"

/// Parameters of the update-trace generator.
struct UpdateTraceParams {
  UpdateVolume volume = UpdateVolume::kMedium;
  UpdateDistribution distribution = UpdateDistribution::kUniform;

  /// Overrides the volume's canonical utilization when positive.
  double utilization_override = -1.0;

  /// Correlation magnitude against the query distribution (paper: 0.8).
  double correlation = 0.8;

  /// Per-item update execution times, uniform in [lo, hi] ms (the paper
  /// draws them "randomly in the range of the response time of writes";
  /// an update transaction re-materializes a derived web view, so it is
  /// chunkier than a single point read).
  double exec_lo_ms = 60.0;
  double exec_hi_ms = 600.0;

  uint64_t seed = 7;
};

/// Canonical utilization of a volume class (0.15 / 0.75 / 1.50).
double VolumeUtilization(UpdateVolume v);

/// Canonical trace name, e.g. "med-unif" (Table 1 naming).
std::string UpdateTraceName(const UpdateTraceParams& params);

/// Attaches update sources to `workload` (which must already carry the query
/// trace — correlated distributions derive from its access counts). Replaces
/// any previous update specs and sets update_trace_name.
///
/// Each item's ideal period is duration / count_j where the per-item counts
/// follow the requested spatial distribution and total
/// `sum(count_j * exec_j) = utilization * duration`. Items whose expected
/// count falls below one get a period longer than the run and a random phase
/// such that the expected number of generations still matches.
Status GenerateUpdateTrace(const UpdateTraceParams& params,
                           Workload& workload);

}  // namespace unitdb

#endif  // UNIT_WORKLOAD_UPDATE_TRACE_H_
