#include "unit/workload/query_source.h"

#include <algorithm>
#include <cmath>

namespace unitdb {

namespace {

/// Cursor over a VectorQuerySource's materialized queries.
class VectorCursor final : public QueryCursor {
 public:
  explicit VectorCursor(const std::vector<QueryRequest>* queries)
      : queries_(queries) {}

  bool Next(QueryRequest* out) override {
    if (next_ >= queries_->size()) return false;
    *out = (*queries_)[next_++];
    return true;
  }

 private:
  const std::vector<QueryRequest>* queries_;
  size_t next_ = 0;
};

}  // namespace

std::unique_ptr<QueryCursor> VectorQuerySource::NewCursor() const {
  return std::make_unique<VectorCursor>(&queries_);
}

QueryStreamCalibration CalibrateQueryStream(const QueryTraceParams& p) {
  // Mirrors GenerateQueryTrace exactly, minus storage. The arrival and
  // execution streams are independent forks, so replaying them here does not
  // disturb the item/deadline streams the live cursor will consume, and the
  // draw + accumulation order below matches the materialized generator
  // bit-for-bit (same Exponential sequence; exec_sum_ms accumulated in index
  // order).
  Rng rng(p.seed);
  Rng arrival_rng = rng.Fork();
  rng.Fork();  // item stream: unused during calibration
  Rng exec_rng = rng.Fork();

  // --- count arrivals: two-state MMPP, identical to the materialized loop ---
  const double burst_rate = p.base_rate_hz * p.burst_rate_multiplier;
  bool in_burst = false;
  double t_s = 0.0;
  double state_end_s = arrival_rng.Exponential(p.mean_normal_sojourn_s);
  const double horizon_s = SimToSeconds(p.duration);
  int64_t n = 0;
  while (t_s < horizon_s) {
    const double rate = in_burst ? burst_rate : p.base_rate_hz;
    const double gap = arrival_rng.Exponential(1.0 / rate);
    if (t_s + gap >= state_end_s) {
      t_s = state_end_s;
      in_burst = !in_burst;
      state_end_s = t_s + arrival_rng.Exponential(in_burst
                                                      ? p.mean_burst_sojourn_s
                                                      : p.mean_normal_sojourn_s);
      continue;
    }
    t_s += gap;
    if (t_s < horizon_s) ++n;
  }

  QueryStreamCalibration cal;
  cal.count = n;
  if (n == 0) return cal;

  // --- replay service demands for the deadline bounds ---
  const double exec_mu = std::log(p.exec_median_ms);
  double exec_sum_ms = 0.0;
  double exec_max_ms_seen = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double exec_ms = std::clamp(
        exec_rng.LogNormal(exec_mu, p.exec_sigma), p.exec_min_ms,
        p.exec_max_ms);
    exec_sum_ms += exec_ms;
    exec_max_ms_seen = std::max(exec_max_ms_seen, exec_ms);
  }
  const double mean_ms = exec_sum_ms / static_cast<double>(n);
  cal.deadline_lo_ms = p.deadline_lo_factor * mean_ms;
  cal.deadline_hi_ms =
      std::max(cal.deadline_lo_ms + 1e-9,
               p.deadline_hi_factor * exec_max_ms_seen);
  return cal;
}

QueryStream::QueryStream(const QueryTraceParams& params,
                         const QueryStreamCalibration& calibration)
    : params_(params),
      calibration_(calibration),
      zipf_(params.num_items, params.zipf_s) {
  Rng rng(params_.seed);
  arrival_rng_ = rng.Fork();
  item_rng_ = rng.Fork();
  exec_rng_ = rng.Fork();
  deadline_rng_ = rng.Fork();
  horizon_s_ = SimToSeconds(params_.duration);
  state_end_s_ = arrival_rng_.Exponential(params_.mean_normal_sojourn_s);
  exec_mu_ = std::log(params_.exec_median_ms);
  if (params_.working_set_size > 0) {
    working_set_.reserve(static_cast<size_t>(params_.working_set_size));
  }
}

void QueryStream::Touch(ItemId item) {
  if (params_.working_set_size <= 0) return;
  if (static_cast<int>(working_set_.size()) < params_.working_set_size) {
    working_set_.push_back(item);
  } else {
    working_set_[ws_cursor_] = item;
    ws_cursor_ = (ws_cursor_ + 1) % working_set_.size();
  }
}

ItemId QueryStream::DrawItem() {
  if (!working_set_.empty() && item_rng_.Bernoulli(params_.locality_p)) {
    return working_set_[static_cast<size_t>(item_rng_.UniformInt(
        0, static_cast<int64_t>(working_set_.size()) - 1))];
  }
  const ItemId fresh = zipf_.Sample(item_rng_);
  Touch(fresh);
  return fresh;
}

bool QueryStream::NextArrival(SimTime* arrival) {
  const double burst_rate = params_.base_rate_hz * params_.burst_rate_multiplier;
  while (t_s_ < horizon_s_) {
    const double rate = in_burst_ ? burst_rate : params_.base_rate_hz;
    const double gap = arrival_rng_.Exponential(1.0 / rate);
    if (t_s_ + gap >= state_end_s_) {
      // State switch; no arrival in the truncated residual (memoryless).
      t_s_ = state_end_s_;
      in_burst_ = !in_burst_;
      state_end_s_ =
          t_s_ + arrival_rng_.Exponential(in_burst_
                                              ? params_.mean_burst_sojourn_s
                                              : params_.mean_normal_sojourn_s);
      continue;
    }
    t_s_ += gap;
    if (t_s_ < horizon_s_) {
      *arrival = SecondsToSim(t_s_);
      return true;
    }
  }
  return false;
}

bool QueryStream::Next(QueryRequest* out) {
  SimTime arrival = 0;
  if (!NextArrival(&arrival)) return false;

  out->id = static_cast<TxnId>(index_);
  out->arrival = arrival;
  // Read set: 1 + Geometric(extra_item_p) distinct items, drawn with
  // working-set temporal locality over the Zipf popularity distribution —
  // the same draws, in the same order, as the materialized per-query loop.
  out->items.clear();
  out->items.push_back(DrawItem());
  while (static_cast<int>(out->items.size()) < params_.max_items_per_query &&
         item_rng_.Bernoulli(params_.extra_item_p)) {
    const ItemId extra = DrawItem();
    if (std::find(out->items.begin(), out->items.end(), extra) ==
        out->items.end()) {
      out->items.push_back(extra);
    }
  }
  const double exec_ms = std::clamp(
      exec_rng_.LogNormal(exec_mu_, params_.exec_sigma), params_.exec_min_ms,
      params_.exec_max_ms);
  out->exec = std::max<SimDuration>(1, MillisToSim(exec_ms));
  out->freshness_req = params_.freshness_req;
  out->preference_class = 0;
  if (params_.num_preference_classes > 1) {
    out->preference_class = static_cast<int>(
        item_rng_.UniformInt(0, params_.num_preference_classes - 1));
  }
  // The materialized generator assigns deadlines in a second pass, but from
  // an independent stream — drawing per query here yields the same value.
  out->relative_deadline = std::max<SimDuration>(
      1, MillisToSim(deadline_rng_.Uniform(calibration_.deadline_lo_ms,
                                           calibration_.deadline_hi_ms)));
  ++index_;
  return true;
}

StatusOr<std::shared_ptr<const StreamingQuerySource>> StreamingQuerySource::
    Make(const QueryTraceParams& params) {
  Status s = ValidateQueryTraceParams(params);
  if (!s.ok()) return s;
  return std::shared_ptr<const StreamingQuerySource>(
      new StreamingQuerySource(params, CalibrateQueryStream(params)));
}

std::unique_ptr<QueryCursor> StreamingQuerySource::NewCursor() const {
  return std::make_unique<QueryStream>(params_, calibration_);
}

StatusOr<Workload> MakeStreamingWorkload(const QueryTraceParams& params) {
  auto source = StreamingQuerySource::Make(params);
  if (!source.ok()) return source.status();
  Workload w;
  w.num_items = params.num_items;
  w.duration = params.duration;
  w.query_trace_name = "cello-like (streamed)";
  w.query_source = *source;
  return w;
}

void ConvertToStreamingWorkload(Workload* w) {
  w->query_source =
      std::make_shared<VectorQuerySource>(std::move(w->queries));
  w->queries.clear();
}

}  // namespace unitdb
