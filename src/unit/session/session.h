#ifndef UNIT_SESSION_SESSION_H_
#define UNIT_SESSION_SESSION_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "unit/common/rng.h"
#include "unit/common/types.h"
#include "unit/txn/outcome.h"
#include "unit/workload/spec.h"

namespace unitdb {

/// Closed-loop client-session layer (paper Section 2: UNIT is *user*-centric;
/// real users react to rejections and deadline misses instead of
/// fire-and-forgetting each query). A pool of N sessions sits between the
/// workload trace and the engine: every trace query belongs to a home
/// session, and when its outcome is a rejection or a deadline miss the
/// session retries it with capped exponential backoff plus deterministic
/// jitter, until it either commits, exhausts `max_retries`, or exhausts the
/// session's patience budget and abandons.
///
/// `sessions == 0` (the default) disables the layer entirely and is a strict
/// behavioral no-op: the engine takes zero divergent branches and produces
/// bit-identical RunMetrics to a build without the layer.
struct SessionParams {
  /// Number of user sessions; 0 disables the closed loop.
  int sessions = 0;
  /// Retries per request before the session abandons it.
  int max_retries = 3;
  /// Think time added to every retry delay (the user re-reading the page
  /// before resubmitting).
  SimDuration think_time = MillisToSim(5.0);
  /// First-retry backoff; doubles per attempt up to `backoff_cap`.
  SimDuration backoff_base = MillisToSim(2.0);
  SimDuration backoff_cap = SecondsToSim(0.25);
  /// Jitter amplitude as a fraction of the current backoff, clamped to
  /// [0, 1]. The jitter draw itself is a pure hash (below), not a shared
  /// RNG stream, so shards and engines agree without coordination.
  double jitter = 0.5;
  /// Per-session retry-delay budget: every retry deducts its delay, and a
  /// retry that does not fit the remaining budget abandons instead.
  /// <= 0 means unlimited patience.
  SimDuration patience = 0;
  /// Session-layer seed; feeds the home-session hash and the jitter hash.
  uint64_t seed = 0x5E55101DULL;
  /// Test-only defect hook for the differential oracle's kDropRetry
  /// perturbation: the N-th retry decision (1-based, counted across the
  /// whole run) is silently dropped — no resubmit, no abandon. 0 = off.
  int64_t drop_retry_at = 0;
};

/// Home session of a request: a pure SplitMix64 hash of (seed, trace_id).
/// Router-consistent by construction — every shard (and the naive reference
/// engine) maps a parent's sub-queries to the same session with no shared
/// state, which is what keeps sharded runs bit-identical for any jobs count.
inline int SessionOf(uint64_t seed, TxnId trace_id, int sessions) {
  const uint64_t h =
      SplitMix64(seed ^ SplitMix64(static_cast<uint64_t>(trace_id)));
  return static_cast<int>(h % static_cast<uint64_t>(sessions));
}

/// Jitter fraction in [0, 1) for one retry decision. A pure hash over
/// (seed, session, trace_id, attempt): no mutable generator state, so the
/// draw is independent of resolution interleaving across shards and of the
/// engine implementation.
inline double SessionJitterFraction(uint64_t seed, int session, TxnId trace_id,
                                    int attempt) {
  uint64_t h = SplitMix64(seed + 0x5E55'0000ULL);
  h = SplitMix64(h ^ static_cast<uint64_t>(session));
  h = SplitMix64(h ^ static_cast<uint64_t>(trace_id));
  h = SplitMix64(h ^ static_cast<uint64_t>(attempt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Delay before resubmitting a request whose `retries_done` prior retries
/// have already been spent: think time + capped exponential backoff +
/// jittered slack, clamped so per-attempt delays are non-decreasing
/// (trace_check invariant 7) and strictly positive.
inline SimDuration RetryDelay(const SessionParams& p, int session,
                              TxnId trace_id, int retries_done,
                              SimDuration prev_delay) {
  SimDuration backoff = std::max<SimDuration>(1, p.backoff_base);
  const SimDuration cap = std::max<SimDuration>(backoff, p.backoff_cap);
  for (int i = 0; i < retries_done && backoff < cap; ++i) backoff *= 2;
  backoff = std::min(backoff, cap);
  const double amp = std::clamp(p.jitter, 0.0, 1.0);
  const double jfrac =
      SessionJitterFraction(p.seed, session, trace_id, retries_done + 1);
  SimDuration delay =
      p.think_time + backoff +
      static_cast<SimDuration>(jfrac * amp * static_cast<double>(backoff));
  delay = std::max(delay, prev_delay);
  return std::max<SimDuration>(delay, 1);
}

/// One queued resubmission, owned by the engine and referenced by a
/// kClientResubmit event's payload (an index, so the event stays POD).
/// `request` is the ORIGINAL trace request — fault scaling / freshness
/// shifts are applied per attempt at transaction creation, exactly as they
/// were for the first submission.
struct SessionAttempt {
  QueryRequest request;
  int attempt = 2;            ///< attempt number being submitted (first = 1)
  SimDuration prev_delay = 0; ///< delay that scheduled this attempt
};

/// What the pool decided about one resolved attempt.
struct SessionDecision {
  enum Kind {
    kNone,     ///< not session-managed (or dropped by the defect hook)
    kRetry,    ///< resubmit after `delay`
    kAbandon,  ///< give up: retries or patience exhausted
    kDone,     ///< request committed (success or stale-but-served)
  };
  Kind kind = kNone;
  int session = -1;
  int attempt = 0;       ///< attempt number that just resolved (first = 1)
  SimDuration delay = 0; ///< kRetry only
};

/// The session state machines, one per user session, plus the per-request
/// retry chains. Purely deterministic: all randomness is the pure jitter
/// hash above. One pool per engine (per shard); the hash map only ever
/// holds in-flight requests, so memory stays bounded by concurrency, not by
/// trace length. The naive reference engine does NOT use this class — it
/// mirrors the same arithmetic with one-at-a-time linear scans
/// (model/reference_engine.cc), which is what lets the differential oracle
/// cover the session loop itself.
class SessionPool {
 public:
  SessionPool() = default;
  explicit SessionPool(const SessionParams& params) : params_(params) {
    if (params_.sessions > 0) {
      patience_.assign(static_cast<size_t>(params_.sessions),
                       params_.patience);
    }
  }

  bool enabled() const { return params_.sessions > 0; }

  /// Fault-injected queries (trace_id == kInvalidTxn) have no user behind
  /// them and are never retried.
  bool Eligible(TxnId trace_id) const {
    return enabled() && trace_id != kInvalidTxn;
  }

  /// Registers the first submission of a trace request.
  void OnSubmit(TxnId trace_id, const QueryRequest& original) {
    Chain c;
    c.request = original;
    chains_.emplace(trace_id, std::move(c));
  }

  /// Applies one resolved attempt to the owning session's state machine.
  /// On kRetry the chain advances (retries + 1, delay remembered for the
  /// monotonicity clamp); on kAbandon / kDone the chain is dropped.
  SessionDecision OnOutcome(TxnId trace_id, Outcome outcome) {
    SessionDecision d;
    auto it = chains_.find(trace_id);
    if (it == chains_.end()) return d;
    Chain& c = it->second;
    d.session = SessionOf(params_.seed, trace_id, params_.sessions);
    d.attempt = c.retries + 1;
    if (outcome == Outcome::kSuccess || outcome == Outcome::kDataStale) {
      d.kind = SessionDecision::kDone;
      chains_.erase(it);
      return d;
    }
    if (c.retries >= params_.max_retries) {
      d.kind = SessionDecision::kAbandon;
      chains_.erase(it);
      return d;
    }
    const SimDuration delay =
        RetryDelay(params_, d.session, trace_id, c.retries, c.prev_delay);
    if (params_.patience > 0) {
      SimDuration& budget = patience_[static_cast<size_t>(d.session)];
      if (budget < delay) {
        d.kind = SessionDecision::kAbandon;
        chains_.erase(it);
        return d;
      }
      budget -= delay;
    }
    if (params_.drop_retry_at > 0 &&
        ++retry_decisions_ == params_.drop_retry_at) {
      chains_.erase(it);  // the injected defect: decision silently dropped
      return d;
    }
    c.retries += 1;
    c.prev_delay = delay;
    d.kind = SessionDecision::kRetry;
    d.delay = delay;
    return d;
  }

  /// Original request of an in-flight chain (null once resolved/abandoned).
  const QueryRequest* Request(TxnId trace_id) const {
    auto it = chains_.find(trace_id);
    return it == chains_.end() ? nullptr : &it->second.request;
  }

 private:
  struct Chain {
    QueryRequest request;
    int retries = 0;
    SimDuration prev_delay = 0;
  };

  SessionParams params_;
  std::unordered_map<TxnId, Chain> chains_;
  std::vector<SimDuration> patience_;
  int64_t retry_decisions_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_SESSION_SESSION_H_
