#ifndef UNIT_TXN_TRANSACTION_H_
#define UNIT_TXN_TRANSACTION_H_

#include <cstdint>

#include "unit/common/item_span.h"
#include "unit/common/types.h"
#include "unit/txn/outcome.h"
#include "unit/txn/read_set.h"

namespace unitdb {

/// Transaction class. Updates always have strictly higher dispatch priority
/// than queries (the paper's dual-priority ready queue).
enum class TxnClass { kQuery = 0, kUpdate = 1 };

/// Life-cycle states. Queries: kCreated -> (kRejected | kReady) ->
/// kRunning/kBlocked/kReady cycles -> (kCommitted | kAborted). Updates never
/// reach kRejected/kAborted.
enum class TxnState {
  kCreated = 0,
  kReady,      ///< in the ready queue (may or may not hold locks)
  kRunning,    ///< occupying the CPU
  kBlocked,    ///< waiting for a lock
  kCommitted,  ///< finished successfully (outcome set for queries)
  kAborted,    ///< query terminated (rejected or firm-deadline abort)
};

/// One transaction instance managed by the engine: either a user query
/// (reads `items`, carries deadline + freshness requirement) or an update
/// (writes exactly one item).
class Transaction {
 public:
  /// Builds a user query transaction.
  static Transaction MakeQuery(TxnId id, SimTime arrival, SimDuration exec,
                               SimDuration relative_deadline,
                               double freshness_req, ItemSpan items,
                               int preference_class = 0);

  /// Builds an update transaction for `item`. `relative_deadline` is used
  /// only for EDF ordering among updates (updates are never aborted).
  /// `on_demand` marks updates issued by ODU-style policies.
  static Transaction MakeUpdate(TxnId id, SimTime arrival, SimDuration exec,
                                SimDuration relative_deadline, ItemId item,
                                bool on_demand);

  TxnId id() const { return id_; }
  TxnClass cls() const { return cls_; }
  bool is_query() const { return cls_ == TxnClass::kQuery; }
  bool is_update() const { return cls_ == TxnClass::kUpdate; }
  SimTime arrival() const { return arrival_; }
  SimDuration exec_time() const { return exec_; }
  SimDuration relative_deadline() const { return relative_deadline_; }
  SimTime absolute_deadline() const { return arrival_ + relative_deadline_; }
  double freshness_req() const { return freshness_req_; }
  const ReadSet& items() const { return items_; }
  /// The single written item of an update.
  ItemId update_item() const { return items_[0]; }
  bool on_demand() const { return on_demand_; }
  /// User preference class of a query (0 when unused).
  int preference_class() const { return preference_class_; }

  /// The estimated execution time qe_i used by admission control. Defaults
  /// to the true demand; the engine may overwrite it with a noisy estimate.
  SimDuration estimate() const { return estimate_; }
  void set_estimate(SimDuration e) { estimate_ = e; }

  /// The QueryRequest::id this query transaction was built from — purely
  /// observational (never read by the engine or any policy). The sharded
  /// runner (shard/sharded.h) threads the parent query's trace index
  /// through it so per-shard sub-query results can be joined back;
  /// kInvalidTxn for updates and fault-injected queries.
  TxnId trace_id() const { return trace_id_; }
  void set_trace_id(TxnId id) { trace_id_ = id; }

  /// CPU utilization share qe_i / qt_i of the query (Eq. 6's DT).
  double CpuUtilizationShare() const;

  // --- engine-managed runtime state ---

  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }
  Outcome outcome() const { return outcome_; }
  void set_outcome(Outcome o) { outcome_ = o; }
  bool Terminal() const {
    return state_ == TxnState::kCommitted || state_ == TxnState::kAborted;
  }

  SimDuration remaining() const { return remaining_; }
  void set_remaining(SimDuration r) { remaining_ = r; }
  /// Resets remaining work to the full demand (2PL-HP restart).
  void ResetWork() { remaining_ = exec_; }

  bool holds_locks() const { return holds_locks_; }
  void set_holds_locks(bool h) { holds_locks_ = h; }

  int restarts() const { return restarts_; }
  void IncrementRestarts() { ++restarts_; }

  int refresh_rounds() const { return refresh_rounds_; }
  void IncrementRefreshRounds() { ++refresh_rounds_; }

  /// Generation counter invalidating stale completion events after
  /// preemption or abort.
  uint64_t dispatch_generation() const { return dispatch_gen_; }
  void BumpDispatchGeneration() { ++dispatch_gen_; }

  SimTime commit_time() const { return commit_time_; }
  void set_commit_time(SimTime t) { commit_time_ = t; }

  /// Slot of this transaction in its ReadyQueue's intrusive heap (-1 when
  /// not queued). Owned by the ReadyQueue; a transaction can sit in at most
  /// one ready queue at a time.
  int32_t ready_pos() const { return ready_pos_; }
  void set_ready_pos(int32_t pos) { ready_pos_ = pos; }

  /// Static deadline rank of a workload query in the engine's admission
  /// index (-1 for updates, or when the index is disabled). Assigned once
  /// at query creation.
  int32_t admission_rank() const { return admission_rank_; }
  void set_admission_rank(int32_t rank) { admission_rank_ = rank; }

  /// Freshness of the read set at commit (queries only; -1 before commit).
  double observed_freshness() const { return observed_freshness_; }
  void set_observed_freshness(double f) { observed_freshness_ = f; }

  /// Packed {slot index, generation} handle of this transaction in its
  /// owning TxnSlab (txn/txn_slab.h); 0 when the transaction does not live
  /// in a slab (reference engine, tests). Stamped by the slab on allocation
  /// and carried by completion/deadline events so a recycled slot turns
  /// stale events into no-ops.
  int64_t slab_handle() const { return slab_handle_; }
  void set_slab_handle(int64_t h) { slab_handle_ = h; }

 private:
  friend class TxnSlab;  // constructs empty slot objects, re-stamps handles
  Transaction() = default;

  TxnId id_ = kInvalidTxn;
  TxnClass cls_ = TxnClass::kQuery;
  SimTime arrival_ = 0;
  SimDuration exec_ = 0;
  SimDuration relative_deadline_ = 0;
  double freshness_req_ = 0.0;
  ReadSet items_;
  bool on_demand_ = false;
  int preference_class_ = 0;
  SimDuration estimate_ = 0;
  TxnId trace_id_ = kInvalidTxn;

  TxnState state_ = TxnState::kCreated;
  Outcome outcome_ = Outcome::kPending;
  SimDuration remaining_ = 0;
  bool holds_locks_ = false;
  int restarts_ = 0;
  int refresh_rounds_ = 0;
  uint64_t dispatch_gen_ = 0;
  SimTime commit_time_ = -1;
  double observed_freshness_ = -1.0;
  int32_t ready_pos_ = -1;
  int32_t admission_rank_ = -1;
  int64_t slab_handle_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_TXN_TRANSACTION_H_
