#ifndef UNIT_TXN_READ_SET_H_
#define UNIT_TXN_READ_SET_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "unit/common/item_span.h"
#include "unit/common/types.h"

namespace unitdb {

/// A transaction's read set with small-buffer storage: up to kInlineCapacity
/// items live inside the object (matching QueryTraceParams::
/// max_items_per_query = 8, so standard workloads never touch the heap);
/// larger sets spill to one heap block. This removes the dominant per-query
/// allocation the old `std::vector<ItemId> items_` paid in NewQueryTxn and
/// keeps the whole read set on the transaction's cache line during lock
/// acquisition and freshness probes.
class ReadSet {
 public:
  static constexpr int kInlineCapacity = 8;

  ReadSet() = default;
  explicit ReadSet(ItemSpan items) { Assign(items); }

  ReadSet(const ReadSet& other) { Assign(other.span()); }
  ReadSet& operator=(const ReadSet& other) {
    if (this != &other) Assign(other.span());
    return *this;
  }
  ReadSet(ReadSet&& other) noexcept { MoveFrom(std::move(other)); }
  ReadSet& operator=(ReadSet&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  void Assign(ItemSpan items) {
    spill_.reset();
    size_ = static_cast<int32_t>(items.size());
    ItemId* dst = inline_;
    if (size_ > kInlineCapacity) {
      spill_.reset(new ItemId[size_]);
      dst = spill_.get();
    }
    for (int32_t i = 0; i < size_; ++i) dst[i] = items[i];
  }

  int32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool inlined() const { return spill_ == nullptr; }

  const ItemId* data() const { return spill_ ? spill_.get() : inline_; }
  const ItemId* begin() const { return data(); }
  const ItemId* end() const { return data() + size_; }
  ItemId operator[](int32_t i) const {
    assert(i >= 0 && i < size_);
    return data()[i];
  }

  ItemSpan span() const { return ItemSpan(data(), static_cast<size_t>(size_)); }
  operator ItemSpan() const { return span(); }  // NOLINT(runtime/explicit)

 private:
  void MoveFrom(ReadSet&& other) {
    spill_ = std::move(other.spill_);
    size_ = other.size_;
    if (spill_ == nullptr) {
      for (int32_t i = 0; i < size_; ++i) inline_[i] = other.inline_[i];
    }
    other.size_ = 0;
  }

  ItemId inline_[kInlineCapacity] = {};
  std::unique_ptr<ItemId[]> spill_;  ///< used only when size_ > capacity
  int32_t size_ = 0;
};

inline bool operator==(const ReadSet& a, const std::vector<ItemId>& b) {
  if (static_cast<size_t>(a.size()) != b.size()) return false;
  for (int32_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace unitdb

#endif  // UNIT_TXN_READ_SET_H_
