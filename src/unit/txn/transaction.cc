#include "unit/txn/transaction.h"

#include <cassert>
#include <utility>

namespace unitdb {

Transaction Transaction::MakeQuery(TxnId id, SimTime arrival, SimDuration exec,
                                   SimDuration relative_deadline,
                                   double freshness_req, ItemSpan items,
                                   int preference_class) {
  assert(id >= 0);
  assert(exec > 0);
  assert(relative_deadline > 0);
  assert(freshness_req >= 0.0 && freshness_req <= 1.0);
  assert(!items.empty());
  Transaction t;
  t.id_ = id;
  t.cls_ = TxnClass::kQuery;
  t.arrival_ = arrival;
  t.exec_ = exec;
  t.relative_deadline_ = relative_deadline;
  t.freshness_req_ = freshness_req;
  t.items_.Assign(items);
  t.preference_class_ = preference_class < 0 ? 0 : preference_class;
  t.estimate_ = exec;
  t.remaining_ = exec;
  return t;
}

Transaction Transaction::MakeUpdate(TxnId id, SimTime arrival,
                                    SimDuration exec,
                                    SimDuration relative_deadline, ItemId item,
                                    bool on_demand) {
  assert(id >= 0);
  assert(exec > 0);
  assert(relative_deadline > 0);
  assert(item >= 0);
  Transaction t;
  t.id_ = id;
  t.cls_ = TxnClass::kUpdate;
  t.arrival_ = arrival;
  t.exec_ = exec;
  t.relative_deadline_ = relative_deadline;
  t.items_.Assign({item});
  t.on_demand_ = on_demand;
  t.estimate_ = exec;
  t.remaining_ = exec;
  return t;
}

double Transaction::CpuUtilizationShare() const {
  if (relative_deadline_ <= 0) return 0.0;
  return static_cast<double>(estimate_) /
         static_cast<double>(relative_deadline_);
}

}  // namespace unitdb
