#ifndef UNIT_TXN_OUTCOME_H_
#define UNIT_TXN_OUTCOME_H_

#include <cstdint>

namespace unitdb {

/// The four user-query fortunes of the paper (Section 2.1) plus kPending for
/// queries still in flight.
enum class Outcome {
  kPending = 0,
  kSuccess,       ///< met both deadline and freshness requirement
  kRejected,      ///< turned away by admission control
  kDeadlineMiss,  ///< admitted but missed its firm deadline (DMF)
  kDataStale,     ///< met the deadline but not the freshness requirement (DSF)
};

/// Short stable name for reports ("success", "rejected", "dmf", "dsf").
inline const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kPending:
      return "pending";
    case Outcome::kSuccess:
      return "success";
    case Outcome::kRejected:
      return "rejected";
    case Outcome::kDeadlineMiss:
      return "dmf";
    case Outcome::kDataStale:
      return "dsf";
  }
  return "?";
}

/// Cumulative outcome counters over submitted user queries. Policies diff two
/// snapshots to obtain per-control-window ratios.
struct OutcomeCounts {
  int64_t submitted = 0;  ///< every query that arrived (success+rejected+dmf+dsf+pending)
  int64_t success = 0;
  int64_t rejected = 0;
  int64_t dmf = 0;
  int64_t dsf = 0;

  int64_t resolved() const { return success + rejected + dmf + dsf; }

  /// Success ratio over all submitted queries (the paper's naive USM).
  double SuccessRatio() const {
    return submitted > 0 ? static_cast<double>(success) /
                               static_cast<double>(submitted)
                         : 0.0;
  }
  double RejectionRatio() const {
    return submitted > 0 ? static_cast<double>(rejected) /
                               static_cast<double>(submitted)
                         : 0.0;
  }
  double DmfRatio() const {
    return submitted > 0 ? static_cast<double>(dmf) /
                               static_cast<double>(submitted)
                         : 0.0;
  }
  double DsfRatio() const {
    return submitted > 0 ? static_cast<double>(dsf) /
                               static_cast<double>(submitted)
                         : 0.0;
  }

  OutcomeCounts operator-(const OutcomeCounts& rhs) const {
    return OutcomeCounts{submitted - rhs.submitted, success - rhs.success,
                         rejected - rhs.rejected, dmf - rhs.dmf,
                         dsf - rhs.dsf};
  }
  bool operator==(const OutcomeCounts&) const = default;
};

}  // namespace unitdb

#endif  // UNIT_TXN_OUTCOME_H_
