#ifndef UNIT_TXN_TXN_SLAB_H_
#define UNIT_TXN_TXN_SLAB_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "unit/txn/transaction.h"

namespace unitdb {

/// Generation-tagged handle of a slot in a TxnSlab, packed into one int64 so
/// engine events (kCompletion / kQueryDeadline payloads) can carry it. The
/// generation disambiguates reuse: releasing a slot bumps its generation, so
/// a handle minted before the release no longer resolves.
struct TxnSlot {
  uint32_t index = 0;
  uint32_t generation = 0;

  int64_t Pack() const {
    return static_cast<int64_t>(
        (static_cast<uint64_t>(generation) << 32) | index);
  }
  static TxnSlot Unpack(int64_t handle) {
    const uint64_t h = static_cast<uint64_t>(handle);
    return TxnSlot{static_cast<uint32_t>(h & 0xFFFFFFFFu),
                   static_cast<uint32_t>(h >> 32)};
  }
};

/// Fixed-slot arena of Transaction objects with a free list, replacing the
/// engine's old append-only `std::deque<Transaction>`: resolved transactions
/// return their slot (and their read-set storage) for reuse, so a run's
/// memory footprint is O(peak live transactions) instead of O(total
/// transactions). Slots live in fixed-size chunks so Transaction* stays
/// stable for the lifetime of its slot (the ready queue, blocked list, and
/// running pointer all hold raw pointers).
///
/// Handles, not pointers, go into events: Get() returns nullptr once the
/// slot was released (generation mismatch), which is exactly the staleness
/// test EventIsDead needs after a slot is recycled by a later transaction.
class TxnSlab {
 public:
  TxnSlab() = default;
  TxnSlab(const TxnSlab&) = delete;
  TxnSlab& operator=(const TxnSlab&) = delete;

  /// Moves `proto` into a free slot (reusing a released one when available)
  /// and stamps its slab handle. The returned pointer is valid until
  /// Release.
  Transaction* Create(Transaction&& proto) {
    uint32_t index;
    if (free_head_ != kNone) {
      index = free_head_;
      free_head_ = next_free_[index];
    } else {
      index = static_cast<uint32_t>(slots_created_);
      ++slots_created_;
      if ((index & kChunkMask) == 0) {
        chunks_.emplace_back(new Transaction[kChunkSize]);
      }
      generation_.push_back(0);
      next_free_.push_back(kNone);
    }
    Transaction* t = Slot(index);
    *t = std::move(proto);
    t->slab_handle_ = TxnSlot{index, generation_[index]}.Pack();
    ++live_;
    if (live_ > high_water_) high_water_ = live_;
    return t;
  }

  /// Returns `t`'s slot to the free list and invalidates every outstanding
  /// handle to it. `t` must be the live occupant of its slot.
  void Release(Transaction* t) {
    const TxnSlot slot = TxnSlot::Unpack(t->slab_handle());
    assert(Get(t->slab_handle()) == t && "releasing a stale transaction");
    ++generation_[slot.index];
    next_free_[slot.index] = free_head_;
    free_head_ = slot.index;
    --live_;
    ++released_;
  }

  /// Resolves a packed handle; nullptr when the slot has been released
  /// (and possibly reused) since the handle was minted.
  Transaction* Get(int64_t handle) {
    const TxnSlot slot = TxnSlot::Unpack(handle);
    if (slot.index >= generation_.size() ||
        generation_[slot.index] != slot.generation) {
      return nullptr;
    }
    return Slot(slot.index);
  }
  const Transaction* Get(int64_t handle) const {
    return const_cast<TxnSlab*>(this)->Get(handle);
  }

  /// Transactions currently occupying slots.
  int64_t live() const { return live_; }
  /// Largest number of simultaneously live transactions seen. Equals
  /// slots_created(): a new slot is cut only when the free list is empty.
  int64_t high_water() const { return high_water_; }
  /// Distinct slots ever created (the slab's memory footprint).
  int64_t slots_created() const { return slots_created_; }
  /// Slots released back to the free list over the run.
  int64_t released() const { return released_; }

 private:
  static constexpr uint32_t kChunkSize = 256;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  Transaction* Slot(uint32_t index) {
    return &chunks_[index / kChunkSize][index & kChunkMask];
  }

  std::vector<std::unique_ptr<Transaction[]>> chunks_;
  std::vector<uint32_t> generation_;  ///< per slot; bumped on Release
  std::vector<uint32_t> next_free_;   ///< free-list links (kNone = live/end)
  uint32_t free_head_ = kNone;
  int64_t slots_created_ = 0;
  int64_t live_ = 0;
  int64_t high_water_ = 0;
  int64_t released_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_TXN_TXN_SLAB_H_
