#ifndef UNIT_SCHED_ENGINE_H_
#define UNIT_SCHED_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "unit/common/rng.h"
#include "unit/common/types.h"
#include "unit/core/admission.h"
#include "unit/core/policy.h"
#include "unit/db/database.h"
#include "unit/db/lock_manager.h"
#include "unit/sched/engine_context.h"
#include "unit/sched/event_queue.h"
#include "unit/sched/metrics.h"
#include "unit/sched/ready_queue.h"
#include "unit/session/session.h"
#include "unit/txn/transaction.h"
#include "unit/txn/txn_slab.h"
#include "unit/workload/query_source.h"
#include "unit/workload/spec.h"

namespace unitdb {

class CounterRegistry;
class FaultSchedule;
struct FaultEdge;
class TimeSeriesRecorder;
class TraceSink;
enum class TraceEventType : uint8_t;

/// Single-CPU discrete-event web-database server: dual-priority preemptive
/// EDF dispatch, 2PL-HP concurrency control, firm query deadlines, lag-based
/// freshness, and policy hooks for admission control and update frequency
/// modulation. Deterministic for a fixed (workload, policy, params) triple.
///
/// This is the optimized EngineContext implementation (admission index,
/// intrusive ready-queue heaps, lazy event cancellation); the semantically
/// identical naive implementation lives in model/reference_engine.h.
class Engine final : public EngineContext {
 public:
  /// `workload` and `policy` must outlive the engine; neither is owned.
  Engine(const Workload& workload, Policy* policy, EngineParams params);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the whole workload to completion and returns the collected
  /// metrics. Call at most once.
  RunMetrics Run();

  // --- introspection for policies (valid during hooks) ---

  SimTime now() const override { return now_; }
  const Workload& workload() const override { return workload_; }
  Database& db() override { return db_; }
  const Database& db() const override { return db_; }
  Rng& rng() override { return rng_; }
  const EngineParams& params() const override { return params_; }

  /// Cumulative outcome counters (policies diff snapshots for windows).
  const OutcomeCounts& counts() const override { return metrics_.counts; }

  /// Cumulative per-preference-class outcome counters (empty until the
  /// first query resolves; index = preference_class).
  const std::vector<OutcomeCounts>& per_class_counts() const override {
    return metrics_.per_class_counts;
  }

  /// CPU busy time so far, seconds, including the in-progress slice of the
  /// currently running transaction (feedback controllers diff snapshots to
  /// measure windowed utilization).
  double BusySeconds() const override {
    double busy = metrics_.busy_s;
    if (running_ != nullptr) busy += SimToSeconds(now_ - run_start_);
    return busy;
  }

  /// Remaining service demand of the transaction on the CPU (0 if idle).
  SimDuration RunningRemaining() const override;
  /// Whether the CPU is currently executing an update.
  bool RunningIsUpdate() const override {
    return running_ != nullptr && running_->is_update();
  }
  /// Total remaining demand of queued (not running) update transactions.
  SimDuration QueuedUpdateWork() const override {
    return ready_.TotalUpdateWork();
  }
  /// Number of queued queries.
  int ReadyQueryCount() const override { return ready_.query_count(); }
  /// Number of queued updates.
  int ReadyUpdateCount() const override { return ready_.update_count(); }
  /// Visits queued queries in EDF order (admission control's O(N_rq) scan).
  void ForEachReadyQueryRaw(ReadyQueryVisitor visit,
                            void* ctx) const override {
    ready_.ForEachQuery([visit, ctx](const Transaction& q) { visit(ctx, q); });
  }

  /// Incremental admission index; enabled when EngineParams asks for it and
  /// dispatch is EDF (empty/disabled otherwise).
  const AdmissionIndex& admission_index() const override {
    return admission_index_;
  }

  /// Update transactions for `item` currently in the system (queued,
  /// blocked, or running) — lets ODU avoid issuing duplicate refreshes.
  int64_t PendingUpdatesForItem(ItemId item) const override {
    return pending_updates_per_item_[item];
  }

  /// Creates an on-demand update transaction for `item` right now, with an
  /// urgent internal deadline so it outranks queued periodic updates.
  /// Returns its transaction id.
  TxnId IssueOnDemandUpdate(ItemId item) override;

  /// Records why the policy is about to reject the arriving query ("deadline"
  /// / "usm"; must point at static storage). Consumed by the reject trace
  /// event of the next ResolveQuery; policies without a reason stay silent
  /// and the event carries "policy". No-op when tracing is off.
  void ReportRejectReason(const char* reason) override {
    if (params_.trace != nullptr) pending_reject_reason_ = reason;
  }

 private:
  /// Creates the query transaction for `request` with precomputed admission
  /// rank `rank` (-1: not indexed), applying any active fault adjustments
  /// (service slowdown, freshness shift). Shared by workload and injected
  /// arrivals.
  Transaction* NewQueryTxn(const QueryRequest& request, int32_t rank);
  Transaction* NewUpdateTxn(ItemId item, SimDuration relative_deadline,
                            bool on_demand);

  /// Ready-queue mutations go through these so the admission index stays in
  /// sync with the set of queued queries.
  void ReadyInsert(Transaction* t);
  void ReadyRemove(Transaction* t);

  /// Whether a scheduled event's handler would no-op if popped now; the
  /// predicate compaction uses to drop tombstones. Mirrors the staleness
  /// checks in HandleCompletion / HandleQueryDeadline exactly.
  bool EventIsDead(const Event& e) const;

  bool tracing() const { return params_.trace != nullptr; }
  /// Trace emission helpers, one per event kind. Each is called only when
  /// tracing is on, and all are defined noinline/cold in engine.cc so the
  /// ~170-byte TraceEvent construction never bloats a hot handler's frame
  /// on trace-off runs (measurably ~4% engine throughput).
  /// End-of-run obs epilogue (final window sample, sink flush, registry
  /// snapshot); called from Run() only when some hook is attached.
  void FinalizeObservability();
  void TraceQueryArrival(const Transaction& t);
  void TraceSimpleEvent(TraceEventType type, TxnId txn);
  void TraceItemEvent(TraceEventType type, ItemId item);
  void TraceUpdateApply(const Transaction& t);
  /// Emits the terminal trace event (reject / deadline-miss / commit / shed)
  /// for a query being resolved.
  void TraceQueryResolution(const Transaction& t, Outcome outcome);
  /// Emits a kSessionRetry / kSessionAbandon event for a session decision.
  void TraceSessionEvent(TraceEventType type, const Transaction& t,
                         const SessionDecision& d);
  /// Emits the kCacheInvalidate event for an erased cache entry.
  void TraceCacheInvalidate(ItemId item, TxnId txn);
  /// Emits the kFaultStart / kFaultStop event for a processed edge.
  void TraceFaultEdge(const FaultEdge& edge);
  /// Appends one WindowSample to params_.series (no-op when unset).
  void RecordWindowSample();

  void ScheduleInitialEvents();
  void HandleQueryArrival(int64_t query_index);
  void HandleUpdateArrival(ItemId item);
  /// `handle` is the transaction's packed slab handle (TxnSlot), not its id:
  /// a stale handle (slot released, possibly reused) resolves to nullptr and
  /// the event is dead — the same staleness test EventIsDead applies.
  void HandleCompletion(int64_t handle, uint64_t generation);
  void HandleQueryDeadline(int64_t handle);
  void HandleControlTick();
  /// Flips a fault's effect on (start edge) or off (stop edge).
  void HandleFaultEdge(int64_t edge_index);
  /// Load-step arrival: admits an injected query like a workload one.
  void HandleFaultQueryArrival(int64_t injected_index);
  /// Burst delivery: a forced source message the server must ingest.
  void HandleFaultUpdateArrival(int64_t injected_index);
  /// Session retry firing: resubmits the original request at the current
  /// instant through the shared admission path.
  void HandleClientResubmit(int64_t resubmit_index);
  /// Arrival-side admission path shared by workload arrivals, injected
  /// queries, and session resubmissions (`resubmit` marks the latter so the
  /// request is not re-registered with its session).
  void AdmitArrivedQuery(const QueryRequest& request, int32_t rank,
                         bool resubmit = false);
  /// Overload shedding: while more than EngineParams::shed_watermark queries
  /// sit in the ready queue, evicts the oldest (min (arrival, id)) with a
  /// rejection. Called only when the watermark is set.
  void MaybeShed();
  /// Result-cache arrival check (called only when the cache is enabled,
  /// before admission control): resolves `t` as a Success from cache and
  /// returns true when its whole read set is covered and fresh enough;
  /// otherwise counts the miss / stale skip and returns false.
  bool TryServeFromCache(Transaction* t);

  /// Core dispatch loop: preempts, acquires locks (applying 2PL-HP aborts),
  /// starts the highest-priority runnable transaction.
  void TryDispatch();
  void StartRunning(Transaction* t);
  void PreemptRunning();
  void CompleteRunning(Transaction* t);
  /// Attempts lock acquisition for t; may block t or restart S holders.
  /// Returns true when t holds everything it needs.
  bool AcquireLocks(Transaction* t);
  void BlockOnLocks(Transaction* t);
  /// Moves every blocked transaction back to the ready queue.
  void UnblockAll();
  /// 2PL-HP restart of a lock-holding query displaced by an update.
  void RestartQuery(Transaction* t);
  /// Terminal failure of a query (deadline abort); releases everything.
  void AbortQuery(Transaction* t, Outcome outcome);
  void ResolveQuery(Transaction* t, Outcome outcome);
  void ReleaseLocksOf(Transaction* t);

  const Workload& workload_;
  Policy* policy_;
  EngineParams params_;

  Database db_;
  LockManager locks_;
  ReadyQueue ready_;
  EventQueue events_;
  AdmissionIndex admission_index_;
  Rng rng_;

  /// Slot-recycled transaction arena: resolved transactions return their
  /// slot, so memory is O(peak live transactions), not O(total). Ids stay
  /// monotonic and unique (next_txn_id_), decoupled from slot indices.
  TxnSlab txns_;
  TxnId next_txn_id_ = 0;
  /// Live *query* transactions by id. 2PL-HP hands back victim TxnIds from
  /// the lock manager (shared holders are always queries) and the engine
  /// needs pointers; updates are never looked up by id.
  std::unordered_map<TxnId, Transaction*> live_queries_;
  std::vector<Transaction*> blocked_;
  std::vector<int64_t> pending_updates_per_item_;

  /// Streaming workload state (set iff workload_.query_source != nullptr):
  /// cursor over the source with the next query staged — its arrival event
  /// already sits in the heap under its reserved FIFO sequence.
  std::unique_ptr<QueryCursor> query_cursor_;
  QueryRequest staged_query_;

  Transaction* running_ = nullptr;
  SimTime run_start_ = 0;
  SimTime now_ = 0;
  bool ran_ = false;

  // Closed-loop session state (inert when params_.session.sessions == 0).
  // Resubmissions are parked in resubmits_ and referenced by index from
  // kClientResubmit event payloads, keeping events POD.
  SessionPool sessions_;
  std::vector<SessionAttempt> resubmits_;
  // Overload-shedding state: resolving_shed_ flags the ResolveQuery calls
  // made on shedding victims so their terminal trace event is kShed (with
  // the pre-eviction depth) instead of kReject.
  bool resolving_shed_ = false;
  int shed_depth_ = 0;

  // Result-cache state (inert when params_.cache.capacity == 0).
  // resolving_cache_hit_ flags the ResolveQuery call made on a cache hit so
  // its terminal trace event is kCacheHit (carrying the staleness-dominant
  // item and its Udrop) instead of kCommit.
  ResultCache cache_;
  bool resolving_cache_hit_ = false;
  ItemId cache_hit_item_ = kInvalidItem;
  int64_t cache_hit_udrop_ = 0;

  // Fault-layer state (sized/used only when params_.faults is set). The
  // outage counter nests overlapping windows; the scalars hold the single
  // active slowdown factor / freshness shift (scenario validation forbids
  // overlapping windows of those kinds).
  std::vector<int32_t> item_outage_;
  double fault_exec_scale_ = 1.0;
  double fault_freshness_shift_ = 0.0;

  // Observability bookkeeping (only touched when the hooks are set).
  const char* pending_reject_reason_ = nullptr;
  OutcomeCounts series_last_counts_;
  double series_last_busy_ = 0.0;
  SimTime series_last_sample_ = 0;
  int64_t series_last_retries_ = 0;
  int64_t series_last_abandons_ = 0;
  int64_t series_last_shed_ = 0;
  int64_t series_last_cache_hits_ = 0;
  int64_t series_last_cache_invalidations_ = 0;
  std::vector<int64_t> udrop_scratch_;

  RunMetrics metrics_;
};

}  // namespace unitdb

#endif  // UNIT_SCHED_ENGINE_H_
