#include "unit/sched/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "unit/common/logging.h"
#include "unit/faults/schedule.h"
#include "unit/obs/counters.h"
#include "unit/obs/timeseries.h"
#include "unit/obs/trace_sink.h"

// Trace emission helpers are kept out of line and out of the hot path: a
// TraceEvent is ~170 bytes of zero-initialized struct, and building one
// inline would grow the stack frame and icache footprint of every handler
// even on trace-off runs where the guarded branch is never taken.
#if defined(__GNUC__) || defined(__clang__)
#define UNIT_COLD __attribute__((noinline, cold))
#else
#define UNIT_COLD
#endif

namespace unitdb {

Engine::Engine(const Workload& workload, Policy* policy, EngineParams params)
    : workload_(workload),
      policy_(policy),
      params_(params),
      db_(workload.num_items),
      locks_(workload.num_items),
      ready_(params.discipline),
      rng_(params.seed),
      pending_updates_per_item_(workload.num_items, 0),
      sessions_(params.session),
      cache_(params.cache) {
  assert(policy_ != nullptr);
  db_.SetSourceHorizon(workload.duration);
  Status s = db_.ApplySpecs(workload.updates);
  if (!s.ok()) {
    UNIT_LOG(Error) << "bad workload update specs: " << s.ToString();
  }
  metrics_.duration_s = SimToSeconds(workload.duration);
  // The admission index precomputes ranks from the materialized query list;
  // a streamed workload has none, so fall back to the naive admission scan
  // (bit-identical decisions, just O(N_rq) per arrival). Session
  // resubmissions likewise have no precomputed rank — a single un-indexed
  // ready query would make the index's answers wrong, so the closed loop
  // also falls back to the scan.
  if (params_.use_admission_index && workload.query_source == nullptr &&
      params_.discipline == QueueDiscipline::kEdf &&
      params_.session.sessions == 0) {
    admission_index_.Init(workload, params_.faults != nullptr
                                        ? &params_.faults->injected_queries()
                                        : nullptr);
  }
  if (params_.faults != nullptr) {
    item_outage_.assign(workload.num_items, 0);
  }
}

RunMetrics Engine::Run() {
  assert(!ran_ && "Engine::Run must be called at most once");
  ran_ = true;
  policy_->Attach(*this);
  ScheduleInitialEvents();
  while (!events_.empty()) {
    if (params_.compact_events && events_.ShouldCompact()) {
      const size_t removed =
          events_.CompactIf([this](const Event& ev) { return EventIsDead(ev); });
      ++metrics_.event_compactions;
      metrics_.events_compacted += static_cast<int64_t>(removed);
      if (events_.empty()) break;
    }
    const Event e = events_.Pop();
    ++metrics_.events_processed;
    assert(e.time >= now_);
    // Drop dead (lazily cancelled) events before they advance the clock:
    // their handlers would no-op anyway, and the end-of-run time — which
    // the trailing window sample observes — must not depend on whether a
    // stale completion/deadline tombstone was compacted away earlier.
    if (EventIsDead(e)) continue;
    now_ = e.time;
    switch (e.type) {
      case EventType::kQueryArrival:
        HandleQueryArrival(e.payload);
        break;
      case EventType::kUpdateArrival:
        HandleUpdateArrival(static_cast<ItemId>(e.payload));
        break;
      case EventType::kCompletion:
        HandleCompletion(e.payload, e.generation);
        break;
      case EventType::kQueryDeadline:
        HandleQueryDeadline(e.payload);
        break;
      case EventType::kControlTick:
        HandleControlTick();
        break;
      case EventType::kFaultEdge:
        HandleFaultEdge(e.payload);
        break;
      case EventType::kFaultQueryArrival:
        HandleFaultQueryArrival(e.payload);
        break;
      case EventType::kFaultUpdateArrival:
        HandleFaultUpdateArrival(e.payload);
        break;
      case EventType::kClientResubmit:
        HandleClientResubmit(e.payload);
        break;
    }
  }
  assert(running_ == nullptr);
  assert(ready_.empty());
  metrics_.txn_live_peak = txns_.high_water();
  metrics_.txn_slots_created = txns_.slots_created();
  metrics_.txn_released = txns_.released();
  if (params_.series != nullptr || params_.trace != nullptr ||
      params_.counters != nullptr) {
    FinalizeObservability();
  }
  metrics_.peak_ready_depth = ready_.peak_size();
  // Copy per-item bookkeeping out of the database.
  metrics_.per_item_accesses.resize(db_.num_items());
  metrics_.per_item_applied_updates.resize(db_.num_items());
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    metrics_.per_item_accesses[i] = db_.item(i).query_accesses;
    metrics_.per_item_applied_updates[i] = db_.item(i).applied_updates;
  }
  return metrics_;
}

Transaction* Engine::NewQueryTxn(const QueryRequest& request, int32_t rank) {
  const TxnId id = next_txn_id_++;
  SimDuration exec = request.exec;
  double freshness_req = request.freshness_req;
  if (params_.faults != nullptr) {
    // Both adjustments are guarded so an inactive fault layer performs zero
    // divergent operations (no int -> double -> int round trips): the
    // empty-schedule run stays bit-identical to the fault-free engine.
    if (fault_exec_scale_ != 1.0) {
      exec = std::max<SimDuration>(
          1, static_cast<SimDuration>(static_cast<double>(exec) *
                                      fault_exec_scale_));
    }
    if (fault_freshness_shift_ != 0.0) {
      freshness_req = std::min(
          1.0, std::max(0.0, freshness_req + fault_freshness_shift_));
    }
  }
  Transaction* t = txns_.Create(Transaction::MakeQuery(
      id, request.arrival, exec, request.relative_deadline, freshness_req,
      request.items, request.preference_class));
  t->set_trace_id(request.id);
  live_queries_.emplace(id, t);
  if (t->items().inlined()) {
    ++metrics_.readset_inline;
  } else {
    ++metrics_.readset_spill;
  }
  if (rank >= 0) t->set_admission_rank(rank);
  if (params_.estimate_noise_sigma > 0.0) {
    const double factor =
        rng_.LogNormal(0.0, params_.estimate_noise_sigma);
    t->set_estimate(std::max<SimDuration>(
        1, static_cast<SimDuration>(
               static_cast<double>(t->exec_time()) * factor)));
  }
  return t;
}

Transaction* Engine::NewUpdateTxn(ItemId item, SimDuration relative_deadline,
                                  bool on_demand) {
  const TxnId id = next_txn_id_++;
  SimDuration exec = db_.item(item).update_exec;
  if (params_.faults != nullptr && fault_exec_scale_ != 1.0) {
    exec = std::max<SimDuration>(
        1, static_cast<SimDuration>(static_cast<double>(exec) *
                                    fault_exec_scale_));
  }
  Transaction* t = txns_.Create(Transaction::MakeUpdate(
      id, now_, exec, std::max<SimDuration>(1, relative_deadline), item,
      on_demand));
  ++metrics_.readset_inline;  // single-item read set always fits inline
  ++pending_updates_per_item_[item];
  ++metrics_.updates_generated;
  return t;
}

void Engine::ScheduleInitialEvents() {
  if (workload_.query_source != nullptr) {
    // Streaming path: the materialized schedule would push all n arrivals
    // first, giving them FIFO tie-break sequences 0..n-1. Reserve exactly
    // those, push only the first arrival, and let each arrival handler stage
    // the next one under its reserved sequence — the pop order (and thus the
    // whole simulation) is bit-identical while only one pending arrival
    // event and one staged QueryRequest exist at a time.
    events_.ReserveSequences(
        static_cast<uint64_t>(workload_.query_source->count()));
    query_cursor_ = workload_.query_source->NewCursor();
    if (query_cursor_->Next(&staged_query_)) {
      events_.PushWithSeq(staged_query_.arrival, 0, EventType::kQueryArrival,
                          0);
    } else {
      query_cursor_.reset();
    }
  } else {
    for (size_t i = 0; i < workload_.queries.size(); ++i) {
      events_.Push(workload_.queries[i].arrival, EventType::kQueryArrival,
                   static_cast<int64_t>(i));
    }
  }
  if (policy_->UsesPeriodicUpdates()) {
    for (const auto& spec : workload_.updates) {
      if (spec.ideal_period <= 0 || spec.ideal_period >= kNoUpdates) continue;
      if (spec.phase < workload_.duration) {
        events_.Push(spec.phase, EventType::kUpdateArrival, spec.item);
      }
    }
  }
  if (params_.control_period > 0 &&
      params_.control_period <= workload_.duration) {
    events_.Push(params_.control_period, EventType::kControlTick, 0);
  }
  // Fault events are pushed after every workload event so that, at equal
  // timestamps, workload arrivals pop first — the admission index's
  // creation-order assumption (workload queries before injected ones)
  // depends on this FIFO tie-break.
  if (params_.faults != nullptr) {
    const FaultSchedule& faults = *params_.faults;
    for (size_t i = 0; i < faults.edges().size(); ++i) {
      events_.Push(faults.edges()[i].time, EventType::kFaultEdge,
                   static_cast<int64_t>(i));
    }
    for (size_t i = 0; i < faults.injected_queries().size(); ++i) {
      events_.Push(faults.injected_queries()[i].arrival,
                   EventType::kFaultQueryArrival, static_cast<int64_t>(i));
    }
    for (size_t i = 0; i < faults.injected_updates().size(); ++i) {
      events_.Push(faults.injected_updates()[i].time,
                   EventType::kFaultUpdateArrival, static_cast<int64_t>(i));
    }
  }
}

void Engine::HandleQueryArrival(int64_t query_index) {
  if (query_cursor_ != nullptr) {
    assert(staged_query_.id == static_cast<TxnId>(query_index));
    AdmitArrivedQuery(staged_query_, /*rank=*/-1);
    // Stage arrival query_index + 1 under its reserved sequence. Arrivals
    // are non-decreasing in time, so the event is never in the past.
    if (query_cursor_->Next(&staged_query_)) {
      events_.PushWithSeq(staged_query_.arrival,
                          static_cast<uint64_t>(query_index) + 1,
                          EventType::kQueryArrival, query_index + 1);
    } else {
      query_cursor_.reset();
    }
    return;
  }
  const QueryRequest& request = workload_.queries[query_index];
  const int32_t rank =
      admission_index_.enabled()
          ? admission_index_.RankOfQuery(static_cast<size_t>(query_index))
          : -1;
  AdmitArrivedQuery(request, rank);
}

void Engine::AdmitArrivedQuery(const QueryRequest& request, int32_t rank,
                               bool resubmit) {
  Transaction* t = NewQueryTxn(request, rank);
  ++metrics_.counts.submitted;
  if (!resubmit && sessions_.Eligible(t->trace_id())) {
    ++metrics_.session_requests;
    sessions_.OnSubmit(t->trace_id(), request);
  }
  if (tracing()) TraceQueryArrival(*t);
  // Result cache sits before admission control: a covered, fresh-enough
  // query is answered immediately and never enters the ready queue (no
  // deadline event is pushed, so the event clock is untouched).
  if (cache_.enabled() && TryServeFromCache(t)) return;
  if (!policy_->AdmitQuery(*this, *t)) {
    t->set_state(TxnState::kAborted);
    ResolveQuery(t, Outcome::kRejected);
    return;
  }
  if (tracing()) TraceSimpleEvent(TraceEventType::kAdmit, t->id());
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  events_.Push(t->absolute_deadline(), EventType::kQueryDeadline,
               t->slab_handle());
  if (params_.shed_watermark > 0) MaybeShed();
  TryDispatch();
}

void Engine::MaybeShed() {
  while (ready_.query_count() > params_.shed_watermark) {
    // Victim: oldest ready query under the total order (arrival, id) — a
    // unique key, so the pick is deterministic regardless of the hash map's
    // iteration order. The query admitted just now carries the largest id
    // among equal arrivals and is therefore never the victim.
    Transaction* victim = nullptr;
    for (const auto& [id, q] : live_queries_) {
      if (q->state() != TxnState::kReady) continue;
      if (victim == nullptr || q->arrival() < victim->arrival() ||
          (q->arrival() == victim->arrival() && q->id() < victim->id())) {
        victim = q;
      }
    }
    if (victim == nullptr) return;  // defensive: depth counts say otherwise
    shed_depth_ = ready_.query_count();
    resolving_shed_ = true;
    ++metrics_.queries_shed;
    AbortQuery(victim, Outcome::kRejected);
    resolving_shed_ = false;
  }
}

bool Engine::TryServeFromCache(Transaction* t) {
  if (!cache_.Covers(t->items())) {
    ++metrics_.cache_misses;
    return false;
  }
  // Entries are invalidated whenever a newer generation is installed, so
  // the live Udrop of each covered item is exactly the staleness of its
  // cached data: the hit reports the same Eq. 1 freshness an instantaneous
  // execution would observe on the same stored generations.
  int64_t udrop = 0;
  ItemId dominant = kInvalidItem;
  for (ItemId item : t->items()) {
    const int64_t u = db_.Udrop(item, now_);
    if (dominant == kInvalidItem || u > udrop) {
      udrop = u;
      dominant = item;
    }
  }
  const double freshness = 1.0 / (1.0 + static_cast<double>(udrop));
  // qf_i check (plus the optional staleness bound): serving a hit that
  // fails the query's freshness requirement would manufacture a DSF the
  // engine might have avoided, so execute it instead.
  if (freshness < t->freshness_req() ||
      (params_.cache.max_hit_udrop >= 0 &&
       udrop > params_.cache.max_hit_udrop)) {
    ++metrics_.cache_stale_skips;
    return false;
  }
  ++metrics_.cache_hits;
  t->set_observed_freshness(freshness);
  t->set_state(TxnState::kCommitted);
  t->set_commit_time(now_);
  for (ItemId item : t->items()) db_.RecordAccess(item);
  metrics_.query_response_s.Add(SimToSeconds(now_ - t->arrival()));
  metrics_.query_freshness.Add(freshness);
  resolving_cache_hit_ = true;
  cache_hit_item_ = dominant;
  cache_hit_udrop_ = udrop;
  ResolveQuery(t, Outcome::kSuccess);
  resolving_cache_hit_ = false;
  return true;
}

void Engine::HandleClientResubmit(int64_t resubmit_index) {
  QueryRequest request =
      resubmits_[static_cast<size_t>(resubmit_index)].request;
  // The retry arrives now: its deadline clock restarts, and any active
  // fault adjustments (slowdown, freshness shift) apply to this attempt
  // exactly as they would to a fresh arrival.
  request.arrival = now_;
  AdmitArrivedQuery(request, /*rank=*/-1, /*resubmit=*/true);
}

void Engine::HandleUpdateArrival(ItemId item) {
  if (now_ >= workload_.duration) return;
  DataItemState& state = db_.mutable_item(item);
  // Update messages stream in at the source rate (one per ideal period,
  // aligned with generations). Frequency modulation drops arrivals: the
  // server only turns an arrival into an update *transaction* when the
  // current (possibly stretched) period has elapsed since the last one it
  // applied. Dropped arrivals cost no CPU — that is the load shed.
  const SimTime next = now_ + state.ideal_period;
  if (next < workload_.duration) {
    events_.Push(next, EventType::kUpdateArrival, item);
  }
  if (params_.faults != nullptr && item_outage_[item] > 0) {
    // Source outage: the message never reaches the server — no trace, no
    // policy hook, no transaction. The arrival chain keeps ticking so
    // deliveries resume when the outage window closes, and the source's
    // generations keep advancing, so the installed value decays.
    ++metrics_.fault_suppressed_updates;
    return;
  }
  if (tracing()) TraceItemEvent(TraceEventType::kUpdateArrival, item);
  policy_->OnUpdateSourceArrival(*this, item);
  const bool due = state.last_pull < 0 ||
                   (now_ - state.last_pull) + state.ideal_period / 2 >=
                       state.current_period;
  if (!due) {
    ++metrics_.updates_dropped;
    if (tracing()) TraceItemEvent(TraceEventType::kUpdateDrop, item);
    return;
  }
  state.last_pull = now_;
  Transaction* t = NewUpdateTxn(item, state.current_period,
                                /*on_demand=*/false);
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  TryDispatch();
}

TxnId Engine::IssueOnDemandUpdate(ItemId item) {
  const DataItemState& state = db_.item(item);
  // Urgent internal deadline: outranks queued periodic updates under EDF.
  Transaction* t = NewUpdateTxn(item, std::max<SimDuration>(1, state.update_exec),
                                /*on_demand=*/true);
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  ++metrics_.on_demand_updates;
  return t->id();
}

void Engine::HandleCompletion(int64_t handle, uint64_t generation) {
  Transaction* t = txns_.Get(handle);
  if (t == nullptr || t != running_ || t->state() != TxnState::kRunning ||
      t->dispatch_generation() != generation) {
    return;  // stale completion (preempted, aborted, or slot recycled)
  }
  CompleteRunning(t);
  TryDispatch();
}

void Engine::HandleQueryDeadline(int64_t handle) {
  Transaction* t = txns_.Get(handle);
  if (t == nullptr || t->Terminal()) return;  // resolved; slot maybe recycled
  AbortQuery(t, Outcome::kDeadlineMiss);
  TryDispatch();
}

void Engine::HandleControlTick() {
  policy_->OnControlTick(*this);
  if (params_.series != nullptr) RecordWindowSample();
  const SimTime next = now_ + params_.control_period;
  if (next <= workload_.duration) {
    events_.Push(next, EventType::kControlTick, 0);
  }
  // A control action (e.g. admission loosening) never needs an immediate
  // dispatch, but period upgrades may have added update arrivals only at the
  // next arrival event; nothing to do here.
}

void Engine::HandleFaultEdge(int64_t edge_index) {
  const FaultEdge& edge = params_.faults->edges()[edge_index];
  ++metrics_.fault_edges;
  switch (edge.kind) {
    case FaultKind::kUpdateOutage:
      for (int32_t k = 0; k < edge.item_count; ++k) {
        const ItemId item = params_.faults->items()[edge.item_begin + k];
        item_outage_[item] += edge.start ? 1 : -1;
      }
      break;
    case FaultKind::kServiceSlowdown:
      fault_exec_scale_ = edge.start ? edge.magnitude : 1.0;
      break;
    case FaultKind::kFreshnessShift:
      fault_freshness_shift_ = edge.start ? edge.magnitude : 0.0;
      break;
    case FaultKind::kUpdateBurst:
    case FaultKind::kLoadStep:
    case FaultKind::kRetryStorm:
      // Injection is pre-materialized; the edges only mark the window for
      // the trace (and the checker's response-direction invariant).
      break;
  }
  if (tracing()) TraceFaultEdge(edge);
}

void Engine::HandleFaultQueryArrival(int64_t injected_index) {
  const QueryRequest& request =
      params_.faults->injected_queries()[injected_index];
  const int32_t rank =
      admission_index_.enabled()
          ? admission_index_.RankOfInjected(
                static_cast<size_t>(injected_index))
          : -1;
  ++metrics_.fault_injected_queries;
  AdmitArrivedQuery(request, rank);
}

void Engine::HandleFaultUpdateArrival(int64_t injected_index) {
  if (now_ >= workload_.duration) return;
  const ItemId item = params_.faults->injected_updates()[injected_index].item;
  if (item_outage_[item] > 0) {
    // A concurrent outage swallows forced deliveries too.
    ++metrics_.fault_suppressed_updates;
    return;
  }
  DataItemState& state = db_.mutable_item(item);
  if (tracing()) TraceItemEvent(TraceEventType::kUpdateArrival, item);
  policy_->OnUpdateSourceArrival(*this, item);
  // A burst models the source pushing extra versions the server must
  // ingest, so the delivery bypasses frequency modulation's due-check.
  state.last_pull = now_;
  Transaction* t = NewUpdateTxn(item, state.current_period,
                                /*on_demand=*/false);
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  ++metrics_.fault_injected_updates;
  TryDispatch();
}

SimDuration Engine::RunningRemaining() const {
  if (running_ == nullptr) return 0;
  return running_->remaining() - (now_ - run_start_);
}

void Engine::TryDispatch() {
  while (true) {
    Transaction* top = ready_.Top();
    if (running_ != nullptr) {
      if (top == nullptr || !ready_.HigherPriority(*top, *running_)) {
        return;
      }
      PreemptRunning();
      continue;
    }
    if (top == nullptr) return;
    ReadyRemove(top);
    if (top->is_query() && !policy_->BeforeQueryDispatch(*this, *top)) {
      // The policy issued refreshes that now outrank this query; requeue it.
      top->set_state(TxnState::kReady);
      ReadyInsert(top);
      Transaction* new_top = ready_.Top();
      if (new_top == top) {
        UNIT_LOG(Error) << "policy postponed query " << top->id()
                        << " without enqueueing higher-priority work";
        ReadyRemove(top);
        // Fall through and run it anyway to preserve progress.
      } else {
        continue;
      }
    }
    if (!top->holds_locks() && !AcquireLocks(top)) {
      continue;  // blocked; try the next candidate
    }
    StartRunning(top);
    return;
  }
}

void Engine::StartRunning(Transaction* t) {
  t->set_state(TxnState::kRunning);
  t->BumpDispatchGeneration();
  running_ = t;
  run_start_ = now_;
  events_.Push(now_ + t->remaining(), EventType::kCompletion,
               t->slab_handle(), t->dispatch_generation());
}

void Engine::PreemptRunning() {
  Transaction* t = running_;
  const SimDuration ran = now_ - run_start_;
  metrics_.busy_s += SimToSeconds(ran);
  t->set_remaining(t->remaining() - ran);
  t->BumpDispatchGeneration();  // the pending completion event goes stale
  events_.NoteCancelled();
  ++metrics_.events_cancelled;
  t->set_state(TxnState::kReady);
  running_ = nullptr;
  ReadyInsert(t);
  ++metrics_.preemptions;
  // Only query preemptions are traced: update transactions have no arrival
  // event, so the lifecycle checker could not account for them.
  if (tracing() && t->is_query()) {
    TraceSimpleEvent(TraceEventType::kPreempt, t->id());
  }
}

bool Engine::AcquireLocks(Transaction* t) {
  if (t->is_query()) {
    if (locks_.TryAcquireSharedAll(t->id(), t->items())) {
      t->set_holds_locks(true);
      return true;
    }
    BlockOnLocks(t);
    return false;
  }
  // Update: X lock on its single item, applying the 2PL-HP rule against
  // lower-priority shared holders (queries).
  for (int attempt = 0; attempt < 2; ++attempt) {
    LockManager::XAttempt result =
        locks_.TryAcquireExclusive(t->id(), t->update_item());
    if (result.granted) {
      t->set_holds_locks(true);
      return true;
    }
    if (result.blocked_by_exclusive) {
      BlockOnLocks(t);
      return false;
    }
    // Shared holders are queries (strictly lower priority class): abort and
    // restart them, then retry — the retry must succeed.
    for (TxnId victim : result.shared_holders) {
      auto it = live_queries_.find(victim);
      assert(it != live_queries_.end() && "lock holder must be live");
      RestartQuery(it->second);
    }
  }
  UNIT_LOG(Error) << "exclusive lock acquisition failed twice for txn "
                  << t->id();
  BlockOnLocks(t);
  return false;
}

void Engine::BlockOnLocks(Transaction* t) {
  assert(!t->holds_locks());
  t->set_state(TxnState::kBlocked);
  blocked_.push_back(t);
}

void Engine::UnblockAll() {
  if (blocked_.empty()) return;
  for (Transaction* t : blocked_) {
    if (t->Terminal()) continue;  // deadline fired while blocked
    t->set_state(TxnState::kReady);
    ReadyInsert(t);
  }
  blocked_.clear();
}

void Engine::RestartQuery(Transaction* t) {
  assert(t->is_query());
  assert(t->state() == TxnState::kReady && "2PL-HP victims sit in the ready queue");
  ReadyRemove(t);
  ReleaseLocksOf(t);
  t->ResetWork();
  t->IncrementRestarts();
  t->BumpDispatchGeneration();
  t->set_state(TxnState::kReady);
  ReadyInsert(t);
  ++metrics_.lock_restarts;
  if (tracing()) TraceSimpleEvent(TraceEventType::kLockRestart, t->id());
}

void Engine::AbortQuery(Transaction* t, Outcome outcome) {
  assert(t->is_query());
  if (t == running_) {
    const SimDuration ran = now_ - run_start_;
    metrics_.busy_s += SimToSeconds(ran);
    t->set_remaining(t->remaining() - ran);
    t->BumpDispatchGeneration();  // the pending completion event goes stale
    events_.NoteCancelled();
    ++metrics_.events_cancelled;
    running_ = nullptr;
  } else if (t->state() == TxnState::kReady) {
    ReadyRemove(t);
  } else if (t->state() == TxnState::kBlocked) {
    auto it = std::find(blocked_.begin(), blocked_.end(), t);
    if (it != blocked_.end()) blocked_.erase(it);
  }
  ReleaseLocksOf(t);
  t->set_state(TxnState::kAborted);
  ResolveQuery(t, outcome);
}

void Engine::ResolveQuery(Transaction* t, Outcome outcome) {
  t->set_outcome(outcome);
  if (tracing()) TraceQueryResolution(*t, outcome);
  const size_t cls = static_cast<size_t>(t->preference_class());
  if (metrics_.per_class_counts.size() <= cls) {
    metrics_.per_class_counts.resize(cls + 1);
  }
  OutcomeCounts& class_counts = metrics_.per_class_counts[cls];
  ++class_counts.submitted;
  switch (outcome) {
    case Outcome::kSuccess:
      ++metrics_.counts.success;
      ++class_counts.success;
      break;
    case Outcome::kRejected:
      ++metrics_.counts.rejected;
      ++class_counts.rejected;
      break;
    case Outcome::kDeadlineMiss:
      ++metrics_.counts.dmf;
      ++class_counts.dmf;
      break;
    case Outcome::kDataStale:
      ++metrics_.counts.dsf;
      ++class_counts.dsf;
      break;
    case Outcome::kPending:
      assert(false && "resolving with pending outcome");
      break;
  }
  policy_->OnQueryResolved(*this, *t, outcome);
  if (sessions_.Eligible(t->trace_id())) {
    const SessionDecision d = sessions_.OnOutcome(t->trace_id(), outcome);
    switch (d.kind) {
      case SessionDecision::kRetry: {
        const QueryRequest* original = sessions_.Request(t->trace_id());
        assert(original != nullptr && "retry decision keeps the chain");
        resubmits_.push_back(
            SessionAttempt{*original, d.attempt + 1, d.delay});
        events_.Push(now_ + d.delay, EventType::kClientResubmit,
                     static_cast<int64_t>(resubmits_.size() - 1));
        ++metrics_.session_retries;
        metrics_.session_retry_delay_s.Add(SimToSeconds(d.delay));
        if (tracing()) {
          TraceSessionEvent(TraceEventType::kSessionRetry, *t, d);
        }
        break;
      }
      case SessionDecision::kAbandon:
        ++metrics_.session_abandons;
        if (tracing()) {
          TraceSessionEvent(TraceEventType::kSessionAbandon, *t, d);
        }
        break;
      case SessionDecision::kDone:
        ++metrics_.session_successes;
        break;
      case SessionDecision::kNone:
        break;
    }
  }
  // Terminal: recycle the slot (and the read set's storage). Outstanding
  // deadline/completion events carry the now-stale slab handle and resolve
  // to nullptr.
  live_queries_.erase(t->id());
  txns_.Release(t);
}

void Engine::ReleaseLocksOf(Transaction* t) {
  if (!t->holds_locks()) return;
  locks_.ReleaseAll(t->id());
  t->set_holds_locks(false);
  UnblockAll();
}

void Engine::CompleteRunning(Transaction* t) {
  const SimDuration ran = now_ - run_start_;
  metrics_.busy_s += SimToSeconds(ran);
  t->set_remaining(0);
  running_ = nullptr;
  t->set_state(TxnState::kCommitted);
  t->set_commit_time(now_);
  if (t->is_update()) {
    // Install the newest source value available when this update was pulled.
    db_.ApplyUpdate(t->update_item(), t->arrival());
    --pending_updates_per_item_[t->update_item()];
    ++metrics_.update_commits;
    metrics_.update_latency_s.Add(SimToSeconds(now_ - t->arrival()));
    if (tracing()) TraceUpdateApply(*t);
    if (cache_.enabled() && cache_.Invalidate(t->update_item())) {
      ++metrics_.cache_invalidations;
      if (tracing()) TraceCacheInvalidate(t->update_item(), t->id());
    }
    ReleaseLocksOf(t);
    policy_->OnUpdateCommit(*this, *t);
    txns_.Release(t);  // updates are terminal at commit
    return;
  }
  // Query commit: evaluate read-set freshness at commit time (Eq. 1).
  // The query's deadline event is still pending (at an equal timestamp the
  // deadline, pushed at arrival, would have popped first and aborted us) and
  // its handler will now no-op — tombstone it.
  events_.NoteCancelled();
  ++metrics_.events_cancelled;
  const double freshness = db_.QueryFreshness(t->items(), now_);
  t->set_observed_freshness(freshness);
  for (ItemId item : t->items()) db_.RecordAccess(item);
  // The commit read each item's installed generation: cache the read set so
  // later queries over these items can be served on arrival.
  if (cache_.enabled()) {
    for (ItemId item : t->items()) cache_.Populate(item);
  }
  ReleaseLocksOf(t);
  metrics_.query_response_s.Add(SimToSeconds(now_ - t->arrival()));
  metrics_.query_freshness.Add(freshness);
  const Outcome outcome = freshness >= t->freshness_req()
                              ? Outcome::kSuccess
                              : Outcome::kDataStale;
  ResolveQuery(t, outcome);
}

UNIT_COLD void Engine::FinalizeObservability() {
  // Trailing partial control window (runs whose duration is not a multiple
  // of the control period, or with control ticks disabled).
  if (params_.series != nullptr && now_ > series_last_sample_) {
    RecordWindowSample();
  }
  if (params_.trace != nullptr) params_.trace->Flush();
  if (params_.counters != nullptr) {
    // Slab/read-set telemetry joins the registry snapshot, but only when a
    // sink or recorder is attached: a run with tracing off must leave the
    // registry empty (the trace-off overhead test keys off that), and the
    // plain RunMetrics fields carry the same numbers unconditionally.
    if (params_.trace != nullptr || params_.series != nullptr) {
      CounterRegistry& reg = *params_.counters;
      reg.Counter("engine.txn_slots_created") = metrics_.txn_slots_created;
      reg.Counter("engine.txn_released") = metrics_.txn_released;
      reg.Counter("engine.readset_inline") = metrics_.readset_inline;
      reg.Counter("engine.readset_spill") = metrics_.readset_spill;
      reg.Gauge("engine.txn_live_peak") =
          static_cast<double>(metrics_.txn_live_peak);
      reg.Gauge("engine.txn_live") = static_cast<double>(txns_.live());
    }
    metrics_.obs_counters = params_.counters->CounterSnapshot();
    metrics_.obs_gauges = params_.counters->GaugeSnapshot();
  }
}

UNIT_COLD void Engine::TraceQueryArrival(const Transaction& t) {
  TraceEvent e;
  e.time = now_;
  e.type = TraceEventType::kQueryArrival;
  e.txn = t.id();
  e.pref_class = t.preference_class();
  e.deadline = t.absolute_deadline();
  e.estimate = t.estimate();
  params_.trace->Emit(e);
}

UNIT_COLD void Engine::TraceSimpleEvent(TraceEventType type, TxnId txn) {
  TraceEvent e;
  e.time = now_;
  e.type = type;
  e.txn = txn;
  params_.trace->Emit(e);
}

UNIT_COLD void Engine::TraceItemEvent(TraceEventType type, ItemId item) {
  TraceEvent e;
  e.time = now_;
  e.type = type;
  e.item = item;
  params_.trace->Emit(e);
}

UNIT_COLD void Engine::TraceUpdateApply(const Transaction& t) {
  TraceEvent e;
  e.time = now_;
  e.type = TraceEventType::kUpdateApply;
  e.txn = t.id();
  e.item = t.update_item();
  e.lag = now_ - t.arrival();
  e.set_reason(t.on_demand() ? "on-demand" : "periodic");
  params_.trace->Emit(e);
}

UNIT_COLD
void Engine::TraceQueryResolution(const Transaction& t, Outcome outcome) {
  TraceEvent e;
  e.time = now_;
  e.txn = t.id();
  switch (outcome) {
    case Outcome::kRejected:
      if (resolving_shed_) {
        // Overload-shedding eviction: same outcome accounting as a reject,
        // distinct trace kind carrying the pre-eviction ready depth and the
        // watermark so the checker can verify depth > watermark.
        e.type = TraceEventType::kShed;
        e.set_reason("shed");
        e.resolved = shed_depth_;
        e.magnitude = static_cast<double>(params_.shed_watermark);
        break;
      }
      e.type = TraceEventType::kReject;
      e.set_reason(pending_reject_reason_ != nullptr ? pending_reject_reason_
                                                     : "policy");
      break;
    case Outcome::kDeadlineMiss:
      e.type = TraceEventType::kDeadlineMiss;
      break;
    case Outcome::kSuccess:
    case Outcome::kDataStale: {
      if (resolving_cache_hit_) {
        // Cache hit: distinct trace kind carrying the staleness-dominant
        // read-set item and its Udrop at hit time (which invariant 8
        // re-verifies against the item's update history), plus the active
        // capacity so a hit with the cache off is checkable.
        e.type = TraceEventType::kCacheHit;
        e.set_reason("success");
        e.freshness = t.observed_freshness();
        e.freshness_req = t.freshness_req();
        e.udrop = cache_hit_udrop_;
        e.item = cache_hit_item_;
        e.resolved = params_.cache.capacity;
        break;
      }
      e.type = TraceEventType::kCommit;
      e.set_reason(outcome == Outcome::kSuccess ? "success" : "dsf");
      e.freshness = t.observed_freshness();
      e.freshness_req = t.freshness_req();
      // Udrop of the staleness-dominant item: freshness is the min over the
      // read set of 1/(1 + Udrop), i.e. 1/(1 + max Udrop) — the checker
      // re-verifies Eq. 1 from this.
      int64_t udrop = 0;
      for (ItemId item : t.items()) {
        udrop = std::max(udrop, db_.Udrop(item, now_));
      }
      e.udrop = udrop;
      break;
    }
    case Outcome::kPending:
      return;  // unreachable (ResolveQuery asserts)
  }
  pending_reject_reason_ = nullptr;
  params_.trace->Emit(e);
}

UNIT_COLD void Engine::TraceSessionEvent(TraceEventType type,
                                         const Transaction& t,
                                         const SessionDecision& d) {
  TraceEvent e;
  e.time = now_;
  e.type = type;
  e.txn = t.id();
  e.session = d.session;
  e.request = t.trace_id();
  e.resolved = d.attempt;
  if (type == TraceEventType::kSessionRetry) e.lag = d.delay;
  params_.trace->Emit(e);
}

UNIT_COLD void Engine::TraceCacheInvalidate(ItemId item, TxnId txn) {
  TraceEvent e;
  e.time = now_;
  e.type = TraceEventType::kCacheInvalidate;
  e.item = item;
  e.txn = txn;
  params_.trace->Emit(e);
}

UNIT_COLD void Engine::TraceFaultEdge(const FaultEdge& edge) {
  TraceEvent e;
  e.time = now_;
  e.type = edge.start ? TraceEventType::kFaultStart : TraceEventType::kFaultStop;
  e.txn = edge.fault;
  e.set_reason(FaultKindName(edge.kind));
  e.item = edge.item_count > 0 ? params_.faults->items()[edge.item_begin]
                               : kInvalidItem;
  e.resolved = edge.item_count;
  e.magnitude = edge.magnitude;
  params_.trace->Emit(e);
}

void Engine::RecordWindowSample() {
  WindowSample s;
  s.t_s = SimToSeconds(now_);
  s.window = metrics_.counts - series_last_counts_;
  series_last_counts_ = metrics_.counts;
  const double busy = BusySeconds();
  const double window_s = SimToSeconds(now_ - series_last_sample_);
  s.utilization =
      window_s > 0.0 ? (busy - series_last_busy_) / window_s : 0.0;
  series_last_busy_ = busy;
  series_last_sample_ = now_;
  s.ready_queries = ready_.query_count();
  s.ready_updates = ready_.update_count();
  udrop_scratch_.clear();
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    udrop_scratch_.push_back(db_.Udrop(i, now_));
  }
  if (!udrop_scratch_.empty()) {
    std::sort(udrop_scratch_.begin(), udrop_scratch_.end());
    const size_t n = udrop_scratch_.size();
    // Nearest-rank percentiles: ceil(p * n) - 1.
    auto rank = [n](int p) { return (static_cast<size_t>(p) * n + 99) / 100 - 1; };
    s.udrop_p50 = static_cast<double>(udrop_scratch_[rank(50)]);
    s.udrop_p90 = static_cast<double>(udrop_scratch_[rank(90)]);
    s.udrop_max = udrop_scratch_.back();
  }
  s.admission_knob = policy_->AdmissionKnob();
  s.degraded_items = db_.DegradedCount();
  s.retries = metrics_.session_retries - series_last_retries_;
  s.abandons = metrics_.session_abandons - series_last_abandons_;
  s.shed = metrics_.queries_shed - series_last_shed_;
  series_last_retries_ = metrics_.session_retries;
  series_last_abandons_ = metrics_.session_abandons;
  series_last_shed_ = metrics_.queries_shed;
  s.cache_hits = metrics_.cache_hits - series_last_cache_hits_;
  s.cache_invalidations =
      metrics_.cache_invalidations - series_last_cache_invalidations_;
  series_last_cache_hits_ = metrics_.cache_hits;
  series_last_cache_invalidations_ = metrics_.cache_invalidations;
  params_.series->Record(s);
}

void Engine::ReadyInsert(Transaction* t) {
  ready_.Insert(t);
  if (t->is_query() && t->admission_rank() >= 0) {
    admission_index_.OnInsert(*t);
  }
}

void Engine::ReadyRemove(Transaction* t) {
  ready_.Remove(t);
  if (t->is_query() && t->admission_rank() >= 0) {
    admission_index_.OnRemove(*t);
  }
}

bool Engine::EventIsDead(const Event& e) const {
  switch (e.type) {
    case EventType::kCompletion: {
      const Transaction* t = txns_.Get(e.payload);
      return t == nullptr || t != running_ ||
             t->state() != TxnState::kRunning ||
             t->dispatch_generation() != e.generation;
    }
    case EventType::kQueryDeadline: {
      const Transaction* t = txns_.Get(e.payload);
      return t == nullptr || t->Terminal();
    }
    default:
      return false;
  }
}

}  // namespace unitdb
