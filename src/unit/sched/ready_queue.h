#ifndef UNIT_SCHED_READY_QUEUE_H_
#define UNIT_SCHED_READY_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "unit/common/types.h"
#include "unit/txn/transaction.h"

namespace unitdb {

/// Intra-class ordering of the ready queue. The paper uses EDF within each
/// class; FCFS is provided as the classic baseline discipline for the
/// scheduling ablation (bench_ablation_sched).
enum class QueueDiscipline {
  kEdf = 0,   ///< earliest absolute deadline first (paper)
  kFcfs = 1,  ///< first-come-first-served (by transaction id = arrival order)
};

/// The paper's dispatching discipline: a dual-priority ready queue where
/// update transactions always rank above user queries, with EDF (or FCFS)
/// ordering transactions within each class. Ties break by transaction id
/// (arrival order), making dispatch deterministic.
///
/// Implemented as two intrusive binary heaps: each Transaction carries its
/// heap slot (`ready_pos`), so Insert/Remove/PopTop are O(log n) with zero
/// per-node allocation (the seed used node-allocating std::sets). Dispatch
/// order is identical to the seed's: the comparator is a strict total order
/// (class, then deadline/arrival, then id), so the heap minimum is unique.
///
/// Stores non-owning pointers; the engine owns all transactions.
class ReadyQueue {
 public:
  explicit ReadyQueue(QueueDiscipline discipline = QueueDiscipline::kEdf);

  QueueDiscipline discipline() const { return discipline_; }

  /// Inserts a transaction (must not already be present).
  void Insert(Transaction* txn);

  /// Removes a transaction if present; returns whether it was present.
  bool Remove(const Transaction* txn);

  bool Contains(const Transaction* txn) const;

  /// Highest-priority transaction (first update, else first query), or
  /// nullptr when empty.
  Transaction* Top() const;

  /// Removes and returns Top(); nullptr when empty.
  Transaction* PopTop();

  bool empty() const { return updates_.empty() && queries_.empty(); }
  int update_count() const { return static_cast<int>(updates_.size()); }
  int query_count() const { return static_cast<int>(queries_.size()); }
  int size() const { return update_count() + query_count(); }

  /// Largest size() ever observed (perf telemetry; monotonic).
  int peak_size() const { return peak_size_; }

  /// Sum of remaining service demand of every queued update.
  SimDuration TotalUpdateWork() const { return update_work_; }

  /// Visits queued queries in queue order (EDF order under the default
  /// discipline — what admission control's naive O(N_rq) scan expects).
  /// A template visitor: no std::function dispatch on the hot path. The
  /// heap is unordered, so the visit sorts a reused scratch vector —
  /// O(n log n), paid only by naive-scan callers.
  template <typename Fn>
  void ForEachQuery(Fn&& fn) const {
    VisitOrdered(queries_, fn);
  }

  /// Visits queued updates in queue order.
  template <typename Fn>
  void ForEachUpdate(Fn&& fn) const {
    VisitOrdered(updates_, fn);
  }

  /// True iff `a` should dispatch before `b` under this queue's discipline
  /// (class first, then intra-class order, then id).
  bool HigherPriority(const Transaction& a, const Transaction& b) const;

 private:
  /// Strict total order within one class: EDF deadline (under kEdf), then
  /// transaction id.
  bool Before(const Transaction* a, const Transaction* b) const {
    if (discipline_ == QueueDiscipline::kEdf &&
        a->absolute_deadline() != b->absolute_deadline()) {
      return a->absolute_deadline() < b->absolute_deadline();
    }
    return a->id() < b->id();
  }

  void HeapPush(std::vector<Transaction*>& heap, Transaction* t);
  bool HeapErase(std::vector<Transaction*>& heap, Transaction* t);
  bool HeapContains(const std::vector<Transaction*>& heap,
                    const Transaction* t) const;
  void SiftUp(std::vector<Transaction*>& heap, size_t i);
  void SiftDown(std::vector<Transaction*>& heap, size_t i);
  static void Place(std::vector<Transaction*>& heap, size_t i, Transaction* t);

  template <typename Fn>
  void VisitOrdered(const std::vector<Transaction*>& heap, Fn& fn) const {
    scratch_.assign(heap.begin(), heap.end());
    std::sort(scratch_.begin(), scratch_.end(),
              [this](const Transaction* a, const Transaction* b) {
                return Before(a, b);
              });
    for (const Transaction* t : scratch_) fn(*t);
  }

  QueueDiscipline discipline_;
  std::vector<Transaction*> updates_;
  std::vector<Transaction*> queries_;
  mutable std::vector<Transaction*> scratch_;  ///< reused by VisitOrdered
  SimDuration update_work_ = 0;
  int peak_size_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_SCHED_READY_QUEUE_H_
