#ifndef UNIT_SCHED_READY_QUEUE_H_
#define UNIT_SCHED_READY_QUEUE_H_

#include <functional>
#include <set>

#include "unit/common/types.h"
#include "unit/txn/transaction.h"

namespace unitdb {

/// Intra-class ordering of the ready queue. The paper uses EDF within each
/// class; FCFS is provided as the classic baseline discipline for the
/// scheduling ablation (bench_ablation_sched).
enum class QueueDiscipline {
  kEdf = 0,   ///< earliest absolute deadline first (paper)
  kFcfs = 1,  ///< first-come-first-served (by transaction id = arrival order)
};

/// The paper's dispatching discipline: a dual-priority ready queue where
/// update transactions always rank above user queries, with EDF (or FCFS)
/// ordering transactions within each class. Ties break by transaction id
/// (arrival order), making dispatch deterministic.
///
/// Stores non-owning pointers; the engine owns all transactions.
class ReadyQueue {
 public:
  explicit ReadyQueue(QueueDiscipline discipline = QueueDiscipline::kEdf);

  QueueDiscipline discipline() const { return discipline_; }

  /// Inserts a transaction (must not already be present).
  void Insert(Transaction* txn);

  /// Removes a transaction if present; returns whether it was present.
  bool Remove(const Transaction* txn);

  bool Contains(const Transaction* txn) const;

  /// Highest-priority transaction (first update, else first query), or
  /// nullptr when empty.
  Transaction* Top() const;

  /// Removes and returns Top(); nullptr when empty.
  Transaction* PopTop();

  bool empty() const { return updates_.empty() && queries_.empty(); }
  int update_count() const { return static_cast<int>(updates_.size()); }
  int query_count() const { return static_cast<int>(queries_.size()); }
  int size() const { return update_count() + query_count(); }

  /// Sum of remaining service demand of every queued update.
  SimDuration TotalUpdateWork() const { return update_work_; }

  /// Visits queued queries in queue order (EDF order under the default
  /// discipline — what admission control's O(N_rq) scan expects).
  void ForEachQuery(const std::function<void(const Transaction&)>& fn) const;

  /// Visits queued updates in queue order.
  void ForEachUpdate(const std::function<void(const Transaction&)>& fn) const;

  /// True iff `a` should dispatch before `b` under this queue's discipline
  /// (class first, then intra-class order, then id).
  bool HigherPriority(const Transaction& a, const Transaction& b) const;

 private:
  struct Order {
    QueueDiscipline discipline = QueueDiscipline::kEdf;
    bool operator()(const Transaction* a, const Transaction* b) const {
      if (discipline == QueueDiscipline::kEdf &&
          a->absolute_deadline() != b->absolute_deadline()) {
        return a->absolute_deadline() < b->absolute_deadline();
      }
      return a->id() < b->id();
    }
  };

  QueueDiscipline discipline_;
  std::set<Transaction*, Order> updates_;
  std::set<Transaction*, Order> queries_;
  SimDuration update_work_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_SCHED_READY_QUEUE_H_
