#ifndef UNIT_SCHED_ENGINE_CONTEXT_H_
#define UNIT_SCHED_ENGINE_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "unit/cache/result_cache.h"
#include "unit/common/types.h"
#include "unit/sched/ready_queue.h"
#include "unit/session/session.h"
#include "unit/txn/outcome.h"
#include "unit/txn/transaction.h"

namespace unitdb {

class AdmissionIndex;
class CounterRegistry;
class Database;
class FaultSchedule;
class Rng;
class TimeSeriesRecorder;
class TraceSink;
struct Workload;

/// Engine tunables. Shared by the optimized engine (sched/engine.h) and the
/// naive reference engine (model/reference_engine.h); the reference engine
/// ignores the pure implementation knobs (use_admission_index,
/// compact_events) since it has neither an index nor tombstones.
struct EngineParams {
  /// Policy control-tick period (the paper triggers its Load Balancing
  /// Controller periodically; 1 simulated second by default).
  SimDuration control_period = SecondsToSim(1.0);
  /// Multiplicative lognormal noise (sigma of the underlying normal) applied
  /// to the execution-time estimates admission control sees; 0 = exact.
  double estimate_noise_sigma = 0.0;
  /// Engine-internal RNG seed (estimate noise; policies fork their own).
  uint64_t seed = 1;
  /// Cap on ODU-style refresh rounds per query dispatch, preventing a query
  /// from chasing a fast source forever.
  int max_refresh_rounds = 3;
  /// Intra-class dispatch order (EDF per the paper; FCFS for the
  /// scheduling ablation).
  QueueDiscipline discipline = QueueDiscipline::kEdf;
  /// Maintains the incremental admission index (core/admission.h) so
  /// admission control can answer in O(log N_rq). Only takes effect under
  /// EDF dispatch — the index's deadline ranks assume EDF order.
  bool use_admission_index = true;
  /// Periodically compacts tombstoned (lazily cancelled) events out of the
  /// event heap. Pop order of live events is unaffected either way.
  bool compact_events = true;

  /// Closed-loop client sessions (src/unit/session/): retry-with-backoff /
  /// abandon reactions to rejected and deadline-missed queries. The default
  /// (sessions == 0) is a strict behavioral no-op.
  SessionParams session;

  /// Overload shedding in admission: whenever an admitted arrival leaves
  /// more than `shed_watermark` queries in the ready queue, the oldest
  /// ready query (min (arrival, id)) is evicted with a rejection until the
  /// depth is back at the watermark. 0 (the default) disables shedding and
  /// is a strict behavioral no-op.
  int shed_watermark = 0;

  /// Freshness-aware result cache (src/unit/cache/): queries whose entire
  /// read set has valid cache entries are answered on arrival — before
  /// admission control, never entering the ready queue — as a Success with
  /// the items' live Eq. 1 freshness; entries are invalidated when the
  /// update applier installs a new generation. The default
  /// (capacity == 0) disables the cache and is a strict behavioral no-op.
  CacheParams cache;

  // --- observability hooks (src/unit/obs/; all non-owning, may be null) ---
  // Tracing is strictly read-only with respect to engine and policy state:
  // a run produces bit-identical RunMetrics (modulo the obs_* snapshot
  // fields) whether these are set or not. When null, every emission site
  // reduces to one predictable untaken branch.

  /// Typed event stream (arrivals, admits/rejects, preempts, commits,
  /// deadline misses, update lifecycle, LBC signals).
  TraceSink* trace = nullptr;
  /// Per-control-window telemetry (USM decomposition, queue depths, Udrop
  /// percentiles, admission knob), sampled at every control tick plus once
  /// at end of run.
  TimeSeriesRecorder* series = nullptr;
  /// Named counter/gauge registry; its snapshot is merged into
  /// RunMetrics::obs_counters / obs_gauges at end of run.
  CounterRegistry* counters = nullptr;

  /// Compiled fault schedule (src/unit/faults/; non-owning, may be null).
  /// Everything a schedule injects is materialized before the run, so the
  /// hot path pays one predictable branch per site and zero allocations,
  /// and an empty (or null) schedule is a strict behavioral no-op — the
  /// run's RunMetrics are bit-identical either way.
  const FaultSchedule* faults = nullptr;
};

/// The engine surface a transaction-management policy (and the admission
/// controller) programs against: the simulation clock, the database, queue
/// introspection, on-demand updates, and run counters. Two implementations
/// exist — the optimized production engine (sched/engine.h: admission index,
/// intrusive heaps, lazy event cancellation) and the deliberately naive
/// reference engine (model/reference_engine.h: straight-line linear scans).
/// Policies written against this interface run unchanged on both, which is
/// what makes differential testing of the optimized engine possible.
class EngineContext {
 public:
  virtual ~EngineContext() = default;

  /// Current simulated time.
  virtual SimTime now() const = 0;
  virtual const Workload& workload() const = 0;
  virtual Database& db() = 0;
  virtual const Database& db() const = 0;
  virtual Rng& rng() = 0;
  virtual const EngineParams& params() const = 0;

  /// Cumulative outcome counters (policies diff snapshots for windows).
  virtual const OutcomeCounts& counts() const = 0;

  /// Cumulative per-preference-class outcome counters (empty until the
  /// first query resolves; index = preference_class).
  virtual const std::vector<OutcomeCounts>& per_class_counts() const = 0;

  /// CPU busy time so far, seconds, including the in-progress slice of the
  /// currently running transaction (feedback controllers diff snapshots to
  /// measure windowed utilization).
  virtual double BusySeconds() const = 0;

  /// Remaining service demand of the transaction on the CPU (0 if idle).
  virtual SimDuration RunningRemaining() const = 0;
  /// Whether the CPU is currently executing an update.
  virtual bool RunningIsUpdate() const = 0;
  /// Total remaining demand of queued (not running) update transactions.
  virtual SimDuration QueuedUpdateWork() const = 0;
  /// Number of queued queries.
  virtual int ReadyQueryCount() const = 0;
  /// Number of queued updates.
  virtual int ReadyUpdateCount() const = 0;

  /// Incremental admission index; enabled when EngineParams asks for it and
  /// dispatch is EDF. Always disabled on the reference engine, which routes
  /// admission through the naive ready-queue scan.
  virtual const AdmissionIndex& admission_index() const = 0;

  /// Update transactions for `item` currently in the system (queued,
  /// blocked, or running) — lets ODU avoid issuing duplicate refreshes.
  virtual int64_t PendingUpdatesForItem(ItemId item) const = 0;

  /// Creates an on-demand update transaction for `item` right now, with an
  /// urgent internal deadline so it outranks queued periodic updates.
  /// Returns its transaction id.
  virtual TxnId IssueOnDemandUpdate(ItemId item) = 0;

  /// Records why the policy is about to reject the arriving query ("deadline"
  /// / "usm"; must point at static storage). Consumed by the reject trace
  /// event of the next ResolveQuery; policies without a reason stay silent
  /// and the event carries "policy". No-op when tracing is off.
  virtual void ReportRejectReason(const char* reason) = 0;

  /// Type-erased ready-queue visit; implementations call `visit(ctx, q)`
  /// for every queued query in EDF order. Prefer the ForEachReadyQuery
  /// template below, which wraps an arbitrary callable.
  using ReadyQueryVisitor = void (*)(void* ctx, const Transaction& query);
  virtual void ForEachReadyQueryRaw(ReadyQueryVisitor visit,
                                    void* ctx) const = 0;

  /// Visits queued queries in EDF order (admission control's O(N_rq) scan).
  template <typename Fn>
  void ForEachReadyQuery(Fn&& fn) const {
    using F = std::remove_reference_t<Fn>;
    ForEachReadyQueryRaw(
        [](void* ctx, const Transaction& q) { (*static_cast<F*>(ctx))(q); },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }
};

}  // namespace unitdb

#endif  // UNIT_SCHED_ENGINE_CONTEXT_H_
