#include "unit/sched/event_queue.h"

namespace unitdb {

void EventQueue::Push(SimTime time, EventType type, int64_t payload,
                      uint64_t generation) {
  events_.push_back(Event{time, next_seq_++, type, payload, generation});
  std::push_heap(events_.begin(), events_.end(), Later{});
}

void EventQueue::PushWithSeq(SimTime time, uint64_t seq, EventType type,
                             int64_t payload, uint64_t generation) {
  events_.push_back(Event{time, seq, type, payload, generation});
  std::push_heap(events_.begin(), events_.end(), Later{});
}

Event EventQueue::Pop() {
  std::pop_heap(events_.begin(), events_.end(), Later{});
  Event e = events_.back();
  events_.pop_back();
  return e;
}

}  // namespace unitdb
