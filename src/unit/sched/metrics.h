#ifndef UNIT_SCHED_METRICS_H_
#define UNIT_SCHED_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "unit/common/stats.h"
#include "unit/common/types.h"
#include "unit/txn/outcome.h"

namespace unitdb {

/// Everything one engine run records. Outcome counts feed the USM; the rest
/// supports the paper's distribution plots (Fig. 3), the ratio decomposition
/// (Fig. 6), and general sanity reporting.
struct RunMetrics {
  OutcomeCounts counts;
  /// Per-preference-class outcome counters (index = preference_class;
  /// sized to the largest class seen; empty when no query resolved).
  std::vector<OutcomeCounts> per_class_counts;

  /// Response time of committed queries, seconds.
  RunningStat query_response_s;
  /// Observed read-set freshness of committed queries (Eq. 1 value).
  RunningStat query_freshness;
  /// Arrival-to-commit latency of update transactions, seconds.
  RunningStat update_latency_s;

  double duration_s = 0.0;
  double busy_s = 0.0;  ///< CPU busy time
  double Utilization() const {
    return duration_s > 0.0 ? busy_s / duration_s : 0.0;
  }

  // --- engine hot-path telemetry (perf tracking; bench_engine_throughput
  // reports these as BENCH_engine.json fields) ---
  int64_t events_processed = 0;   ///< events popped off the event queue
  int64_t events_cancelled = 0;   ///< events tombstoned by lazy cancellation
  int64_t event_compactions = 0;  ///< event-heap compaction passes
  int64_t events_compacted = 0;   ///< dead events physically removed
  int peak_ready_depth = 0;       ///< largest ready-queue size observed

  // --- transaction-slab / read-set telemetry (memory-flat hot path; the
  // slab recycles slots, so slots_created is the arena's whole footprint
  // and live_peak bounds it regardless of how many transactions a run
  // processes in total) ---
  int64_t txn_live_peak = 0;      ///< max simultaneously live transactions
  int64_t txn_slots_created = 0;  ///< distinct slab slots ever allocated
  int64_t txn_released = 0;       ///< slots recycled over the run
  int64_t readset_inline = 0;     ///< read sets held in the inline buffer
  int64_t readset_spill = 0;      ///< read sets spilled to a heap block

  // --- fault-injection telemetry (src/unit/faults/; all 0 when no fault
  // schedule is attached or the schedule is empty) ---
  int64_t fault_edges = 0;               ///< fault start/stop edges processed
  int64_t fault_injected_queries = 0;    ///< load-step query arrivals injected
  int64_t fault_injected_updates = 0;    ///< burst update deliveries ingested
  int64_t fault_suppressed_updates = 0;  ///< deliveries swallowed by outages

  // --- closed-loop session telemetry (src/unit/session/; all 0 when
  // SessionParams::sessions == 0 and shedding is off) ---
  int64_t session_requests = 0;   ///< distinct trace requests entering a session
  int64_t session_retries = 0;    ///< resubmissions scheduled by sessions
  int64_t session_successes = 0;  ///< requests that eventually committed
  int64_t session_abandons = 0;   ///< requests given up (retries/patience spent)
  int64_t queries_shed = 0;       ///< ready queries evicted by overload shedding
  /// Client-observed retry delay (think + backoff + jitter), seconds.
  RunningStat session_retry_delay_s;

  // --- result-cache telemetry (src/unit/cache/; all 0 when
  // CacheParams::capacity == 0) ---
  int64_t cache_hits = 0;           ///< queries answered from cache on arrival
  int64_t cache_misses = 0;         ///< arrivals with an uncovered read set
  int64_t cache_invalidations = 0;  ///< entries erased by update installs
  int64_t cache_stale_skips = 0;    ///< covered arrivals too stale to serve

  int64_t preemptions = 0;
  int64_t lock_restarts = 0;      ///< 2PL-HP aborts of shared holders
  int64_t update_commits = 0;
  int64_t on_demand_updates = 0;  ///< refresh transactions issued by ODU-style policies
  int64_t updates_generated = 0;  ///< update txns the server created (periodic + on-demand)
  int64_t updates_dropped = 0;    ///< source arrivals shed by frequency modulation

  /// Per-item counters copied from the database at end of run.
  std::vector<int64_t> per_item_accesses;
  std::vector<int64_t> per_item_applied_updates;

  /// Observability registry snapshot (EngineParams::counters), taken at end
  /// of run. Empty unless a registry was attached AND something registered
  /// into it (sinks / recorders only register when tracing is on — the
  /// trace-off overhead test asserts these stay empty). Excluded from
  /// behavior-equivalence comparisons: tracing must not change any other
  /// field of this struct.
  std::vector<std::pair<std::string, int64_t>> obs_counters;
  std::vector<std::pair<std::string, double>> obs_gauges;
};

}  // namespace unitdb

#endif  // UNIT_SCHED_METRICS_H_
