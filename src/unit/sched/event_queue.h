#ifndef UNIT_SCHED_EVENT_QUEUE_H_
#define UNIT_SCHED_EVENT_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "unit/common/types.h"

namespace unitdb {

/// Kinds of events the discrete-event engine processes.
enum class EventType {
  kQueryArrival = 0,   ///< payload: index into the workload's query trace
  kUpdateArrival,      ///< payload: item id
  kCompletion,         ///< payload: txn id + dispatch generation
  kQueryDeadline,      ///< payload: txn id (firm-deadline expiry)
  kControlTick,        ///< periodic policy/monitoring tick
  kFaultEdge,          ///< payload: index into the fault schedule's edges
  kFaultQueryArrival,  ///< payload: index into the injected query list
  kFaultUpdateArrival, ///< payload: index into the injected update list
  kClientResubmit,     ///< payload: index into the engine's resubmit list
};

/// One scheduled event. `seq` breaks time ties deterministically in FIFO
/// order (events scheduled earlier fire earlier at equal timestamps).
struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  EventType type = EventType::kControlTick;
  int64_t payload = 0;      ///< txn id, item id, or query index per type
  uint64_t generation = 0;  ///< dispatch generation for kCompletion
};

/// Deterministic min-heap of events ordered by (time, seq), with lazy
/// cancellation support: the engine tombstones events whose handler would
/// no-op (a query resolved before its deadline event; a completion whose
/// dispatch generation went stale) and periodically compacts the heap so
/// dead events stop paying O(log n) sift costs on heavy update traces.
class EventQueue {
 public:
  /// Out of line (event_queue.cc) on purpose: the inlined push_heap body is
  /// several hundred bytes, and letting the compiler splice it into every
  /// engine handler measurably slows the event loop (icache pressure).
  void Push(SimTime time, EventType type, int64_t payload,
            uint64_t generation = 0);

  /// Push with an explicitly chosen FIFO tie-break sequence instead of the
  /// auto counter. Used by the streaming workload path: arrival i is pushed
  /// lazily (while handling arrival i-1) but must keep the sequence it would
  /// have had if all arrivals were pushed up front — pair with
  /// ReserveSequences so the auto counter never collides.
  void PushWithSeq(SimTime time, uint64_t seq, EventType type, int64_t payload,
                   uint64_t generation = 0);

  /// Pre-advances the auto sequence counter by `n`, reserving sequences
  /// [current, current + n) for PushWithSeq. Call before any Push.
  void ReserveSequences(uint64_t n) { next_seq_ += n; }

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  const Event& Top() const { return events_.front(); }

  /// Out of line like Push, and for the same reason: pop_heap's sift-down
  /// is the other several-hundred-byte heap body, and the engine's Run loop
  /// calls it once per event right next to every inlined handler.
  Event Pop();

  // --- lazy cancellation ---

  /// Records that one scheduled event became a tombstone (its handler will
  /// no-op when popped). The event itself stays in the heap until the owner
  /// compacts; correctness never depends on compaction happening.
  void NoteCancelled() { ++cancelled_; }

  /// Tombstones recorded since the last compaction.
  size_t cancelled() const { return cancelled_; }

  /// Whether enough tombstones accumulated to be worth a compaction pass:
  /// more than kCompactMinDead dead events and at least half the heap.
  bool ShouldCompact() const {
    return cancelled_ > kCompactMinDead && cancelled_ * 2 > events_.size();
  }

  /// Removes every event for which `dead(event)` is true and re-heapifies
  /// in O(n). Survivors keep their sequence numbers, so the pop order of
  /// live events — and therefore the simulation — is unchanged. Returns the
  /// number of events removed.
  template <typename Pred>
  size_t CompactIf(Pred&& dead) {
    const auto live_end = std::remove_if(events_.begin(), events_.end(), dead);
    const size_t removed = static_cast<size_t>(events_.end() - live_end);
    events_.erase(live_end, events_.end());
    std::make_heap(events_.begin(), events_.end(), Later{});
    cancelled_ = 0;
    return removed;
  }

  static constexpr size_t kCompactMinDead = 64;

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> events_;  ///< binary heap under Later
  uint64_t next_seq_ = 0;
  size_t cancelled_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_SCHED_EVENT_QUEUE_H_
