#ifndef UNIT_SCHED_EVENT_QUEUE_H_
#define UNIT_SCHED_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "unit/common/types.h"

namespace unitdb {

/// Kinds of events the discrete-event engine processes.
enum class EventType {
  kQueryArrival = 0,   ///< payload: index into the workload's query trace
  kUpdateArrival,      ///< payload: item id
  kCompletion,         ///< payload: txn id + dispatch generation
  kQueryDeadline,      ///< payload: txn id (firm-deadline expiry)
  kControlTick,        ///< periodic policy/monitoring tick
};

/// One scheduled event. `seq` breaks time ties deterministically in FIFO
/// order (events scheduled earlier fire earlier at equal timestamps).
struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  EventType type = EventType::kControlTick;
  int64_t payload = 0;      ///< txn id, item id, or query index per type
  uint64_t generation = 0;  ///< dispatch generation for kCompletion
};

/// Deterministic min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  void Push(SimTime time, EventType type, int64_t payload,
            uint64_t generation = 0) {
    heap_.push(Event{time, next_seq_++, type, payload, generation});
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  const Event& Top() const { return heap_.top(); }

  Event Pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace unitdb

#endif  // UNIT_SCHED_EVENT_QUEUE_H_
