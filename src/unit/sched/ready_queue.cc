#include "unit/sched/ready_queue.h"

#include <cassert>

namespace unitdb {

ReadyQueue::ReadyQueue(QueueDiscipline discipline) : discipline_(discipline) {}

void ReadyQueue::Insert(Transaction* txn) {
  assert(txn != nullptr);
  assert(!Contains(txn));
  if (txn->is_update()) {
    HeapPush(updates_, txn);
    update_work_ += txn->remaining();
  } else {
    HeapPush(queries_, txn);
  }
  peak_size_ = std::max(peak_size_, size());
}

bool ReadyQueue::Remove(const Transaction* txn) {
  Transaction* t = const_cast<Transaction*>(txn);
  if (t->is_update()) {
    if (HeapErase(updates_, t)) {
      update_work_ -= t->remaining();
      return true;
    }
    return false;
  }
  return HeapErase(queries_, t);
}

bool ReadyQueue::Contains(const Transaction* txn) const {
  return txn->is_update() ? HeapContains(updates_, txn)
                          : HeapContains(queries_, txn);
}

Transaction* ReadyQueue::Top() const {
  if (!updates_.empty()) return updates_.front();
  if (!queries_.empty()) return queries_.front();
  return nullptr;
}

Transaction* ReadyQueue::PopTop() {
  Transaction* top = Top();
  if (top != nullptr) Remove(top);
  return top;
}

bool ReadyQueue::HigherPriority(const Transaction& a,
                                const Transaction& b) const {
  if (a.cls() != b.cls()) return a.is_update();
  return Before(&a, &b);
}

void ReadyQueue::Place(std::vector<Transaction*>& heap, size_t i,
                       Transaction* t) {
  heap[i] = t;
  t->set_ready_pos(static_cast<int32_t>(i));
}

void ReadyQueue::HeapPush(std::vector<Transaction*>& heap, Transaction* t) {
  heap.push_back(t);
  t->set_ready_pos(static_cast<int32_t>(heap.size() - 1));
  SiftUp(heap, heap.size() - 1);
}

bool ReadyQueue::HeapContains(const std::vector<Transaction*>& heap,
                              const Transaction* t) const {
  const int32_t pos = t->ready_pos();
  return pos >= 0 && static_cast<size_t>(pos) < heap.size() &&
         heap[static_cast<size_t>(pos)] == t;
}

bool ReadyQueue::HeapErase(std::vector<Transaction*>& heap, Transaction* t) {
  if (!HeapContains(heap, t)) return false;
  const size_t pos = static_cast<size_t>(t->ready_pos());
  t->set_ready_pos(-1);
  Transaction* last = heap.back();
  heap.pop_back();
  if (pos == heap.size()) return true;  // erased the tail slot
  Place(heap, pos, last);
  SiftDown(heap, pos);
  if (heap[pos] == last) SiftUp(heap, pos);
  return true;
}

void ReadyQueue::SiftUp(std::vector<Transaction*>& heap, size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Before(heap[i], heap[parent])) break;
    Transaction* child = heap[i];
    Place(heap, i, heap[parent]);
    Place(heap, parent, child);
    i = parent;
  }
}

void ReadyQueue::SiftDown(std::vector<Transaction*>& heap, size_t i) {
  const size_t n = heap.size();
  while (true) {
    size_t best = i;
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    if (left < n && Before(heap[left], heap[best])) best = left;
    if (right < n && Before(heap[right], heap[best])) best = right;
    if (best == i) return;
    Transaction* tmp = heap[i];
    Place(heap, i, heap[best]);
    Place(heap, best, tmp);
    i = best;
  }
}

}  // namespace unitdb
