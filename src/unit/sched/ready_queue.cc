#include "unit/sched/ready_queue.h"

#include <cassert>

namespace unitdb {

ReadyQueue::ReadyQueue(QueueDiscipline discipline)
    : discipline_(discipline),
      updates_(Order{discipline}),
      queries_(Order{discipline}) {}

void ReadyQueue::Insert(Transaction* txn) {
  assert(txn != nullptr);
  if (txn->is_update()) {
    const bool inserted = updates_.insert(txn).second;
    assert(inserted);
    (void)inserted;
    update_work_ += txn->remaining();
  } else {
    const bool inserted = queries_.insert(txn).second;
    assert(inserted);
    (void)inserted;
  }
}

bool ReadyQueue::Remove(const Transaction* txn) {
  Transaction* t = const_cast<Transaction*>(txn);
  if (t->is_update()) {
    if (updates_.erase(t) > 0) {
      update_work_ -= t->remaining();
      return true;
    }
    return false;
  }
  return queries_.erase(t) > 0;
}

bool ReadyQueue::Contains(const Transaction* txn) const {
  Transaction* t = const_cast<Transaction*>(txn);
  return t->is_update() ? updates_.count(t) > 0 : queries_.count(t) > 0;
}

Transaction* ReadyQueue::Top() const {
  if (!updates_.empty()) return *updates_.begin();
  if (!queries_.empty()) return *queries_.begin();
  return nullptr;
}

Transaction* ReadyQueue::PopTop() {
  Transaction* top = Top();
  if (top != nullptr) Remove(top);
  return top;
}

void ReadyQueue::ForEachQuery(
    const std::function<void(const Transaction&)>& fn) const {
  for (const Transaction* t : queries_) fn(*t);
}

void ReadyQueue::ForEachUpdate(
    const std::function<void(const Transaction&)>& fn) const {
  for (const Transaction* t : updates_) fn(*t);
}

bool ReadyQueue::HigherPriority(const Transaction& a,
                                const Transaction& b) const {
  if (a.cls() != b.cls()) return a.is_update();
  return Order{discipline_}(const_cast<Transaction*>(&a),
                             const_cast<Transaction*>(&b));
}

}  // namespace unitdb
