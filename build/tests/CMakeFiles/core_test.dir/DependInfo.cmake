
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/admission_test.cc" "tests/CMakeFiles/core_test.dir/core/admission_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/admission_test.cc.o.d"
  "/root/repo/tests/core/lbc_test.cc" "tests/CMakeFiles/core_test.dir/core/lbc_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/lbc_test.cc.o.d"
  "/root/repo/tests/core/lottery_test.cc" "tests/CMakeFiles/core_test.dir/core/lottery_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/lottery_test.cc.o.d"
  "/root/repo/tests/core/multi_preference_test.cc" "tests/CMakeFiles/core_test.dir/core/multi_preference_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/multi_preference_test.cc.o.d"
  "/root/repo/tests/core/update_modulation_test.cc" "tests/CMakeFiles/core_test.dir/core/update_modulation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/update_modulation_test.cc.o.d"
  "/root/repo/tests/core/usm_test.cc" "tests/CMakeFiles/core_test.dir/core/usm_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/usm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/unitdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
