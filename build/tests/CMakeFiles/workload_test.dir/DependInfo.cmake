
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/correlation_test.cc" "tests/CMakeFiles/workload_test.dir/workload/correlation_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/correlation_test.cc.o.d"
  "/root/repo/tests/workload/query_trace_test.cc" "tests/CMakeFiles/workload_test.dir/workload/query_trace_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/query_trace_test.cc.o.d"
  "/root/repo/tests/workload/spec_test.cc" "tests/CMakeFiles/workload_test.dir/workload/spec_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/spec_test.cc.o.d"
  "/root/repo/tests/workload/trace_io_test.cc" "tests/CMakeFiles/workload_test.dir/workload/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/trace_io_test.cc.o.d"
  "/root/repo/tests/workload/update_trace_test.cc" "tests/CMakeFiles/workload_test.dir/workload/update_trace_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/update_trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/unitdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
