# Empty compiler generated dependencies file for bench_ablation_forget.
# This may be replaced when dependencies are built.
