file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_forget.dir/bench_ablation_forget.cc.o"
  "CMakeFiles/bench_ablation_forget.dir/bench_ablation_forget.cc.o.d"
  "bench_ablation_forget"
  "bench_ablation_forget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_forget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
