file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_penalties.dir/bench_fig5_penalties.cc.o"
  "CMakeFiles/bench_fig5_penalties.dir/bench_fig5_penalties.cc.o.d"
  "bench_fig5_penalties"
  "bench_fig5_penalties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_penalties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
