# Empty dependencies file for bench_ablation_cdu.
# This may be replaced when dependencies are built.
