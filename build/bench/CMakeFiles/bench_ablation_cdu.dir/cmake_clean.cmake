file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cdu.dir/bench_ablation_cdu.cc.o"
  "CMakeFiles/bench_ablation_cdu.dir/bench_ablation_cdu.cc.o.d"
  "bench_ablation_cdu"
  "bench_ablation_cdu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cdu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
