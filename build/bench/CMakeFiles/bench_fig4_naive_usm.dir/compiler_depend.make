# Empty compiler generated dependencies file for bench_fig4_naive_usm.
# This may be replaced when dependencies are built.
