file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_naive_usm.dir/bench_fig4_naive_usm.cc.o"
  "CMakeFiles/bench_fig4_naive_usm.dir/bench_fig4_naive_usm.cc.o.d"
  "bench_fig4_naive_usm"
  "bench_fig4_naive_usm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_naive_usm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
