# Empty dependencies file for mixed_preferences.
# This may be replaced when dependencies are built.
