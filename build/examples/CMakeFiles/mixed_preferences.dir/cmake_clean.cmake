file(REMOVE_RECURSE
  "CMakeFiles/mixed_preferences.dir/mixed_preferences.cpp.o"
  "CMakeFiles/mixed_preferences.dir/mixed_preferences.cpp.o.d"
  "mixed_preferences"
  "mixed_preferences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_preferences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
