
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unit/common/config.cc" "src/CMakeFiles/unitdb.dir/unit/common/config.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/common/config.cc.o.d"
  "/root/repo/src/unit/common/csv.cc" "src/CMakeFiles/unitdb.dir/unit/common/csv.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/common/csv.cc.o.d"
  "/root/repo/src/unit/common/logging.cc" "src/CMakeFiles/unitdb.dir/unit/common/logging.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/common/logging.cc.o.d"
  "/root/repo/src/unit/common/rng.cc" "src/CMakeFiles/unitdb.dir/unit/common/rng.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/common/rng.cc.o.d"
  "/root/repo/src/unit/common/stats.cc" "src/CMakeFiles/unitdb.dir/unit/common/stats.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/common/stats.cc.o.d"
  "/root/repo/src/unit/core/admission.cc" "src/CMakeFiles/unitdb.dir/unit/core/admission.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/admission.cc.o.d"
  "/root/repo/src/unit/core/lbc.cc" "src/CMakeFiles/unitdb.dir/unit/core/lbc.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/lbc.cc.o.d"
  "/root/repo/src/unit/core/lottery.cc" "src/CMakeFiles/unitdb.dir/unit/core/lottery.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/lottery.cc.o.d"
  "/root/repo/src/unit/core/policies/hybrid.cc" "src/CMakeFiles/unitdb.dir/unit/core/policies/hybrid.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/policies/hybrid.cc.o.d"
  "/root/repo/src/unit/core/policies/imu.cc" "src/CMakeFiles/unitdb.dir/unit/core/policies/imu.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/policies/imu.cc.o.d"
  "/root/repo/src/unit/core/policies/odu.cc" "src/CMakeFiles/unitdb.dir/unit/core/policies/odu.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/policies/odu.cc.o.d"
  "/root/repo/src/unit/core/policies/qmf.cc" "src/CMakeFiles/unitdb.dir/unit/core/policies/qmf.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/policies/qmf.cc.o.d"
  "/root/repo/src/unit/core/policies/unit_policy.cc" "src/CMakeFiles/unitdb.dir/unit/core/policies/unit_policy.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/policies/unit_policy.cc.o.d"
  "/root/repo/src/unit/core/update_modulation.cc" "src/CMakeFiles/unitdb.dir/unit/core/update_modulation.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/update_modulation.cc.o.d"
  "/root/repo/src/unit/core/usm.cc" "src/CMakeFiles/unitdb.dir/unit/core/usm.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/core/usm.cc.o.d"
  "/root/repo/src/unit/db/database.cc" "src/CMakeFiles/unitdb.dir/unit/db/database.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/db/database.cc.o.d"
  "/root/repo/src/unit/db/lock_manager.cc" "src/CMakeFiles/unitdb.dir/unit/db/lock_manager.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/db/lock_manager.cc.o.d"
  "/root/repo/src/unit/sched/engine.cc" "src/CMakeFiles/unitdb.dir/unit/sched/engine.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/sched/engine.cc.o.d"
  "/root/repo/src/unit/sched/ready_queue.cc" "src/CMakeFiles/unitdb.dir/unit/sched/ready_queue.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/sched/ready_queue.cc.o.d"
  "/root/repo/src/unit/sim/experiment.cc" "src/CMakeFiles/unitdb.dir/unit/sim/experiment.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/sim/experiment.cc.o.d"
  "/root/repo/src/unit/sim/report.cc" "src/CMakeFiles/unitdb.dir/unit/sim/report.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/sim/report.cc.o.d"
  "/root/repo/src/unit/sim/server.cc" "src/CMakeFiles/unitdb.dir/unit/sim/server.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/sim/server.cc.o.d"
  "/root/repo/src/unit/txn/transaction.cc" "src/CMakeFiles/unitdb.dir/unit/txn/transaction.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/txn/transaction.cc.o.d"
  "/root/repo/src/unit/workload/correlation.cc" "src/CMakeFiles/unitdb.dir/unit/workload/correlation.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/workload/correlation.cc.o.d"
  "/root/repo/src/unit/workload/query_trace.cc" "src/CMakeFiles/unitdb.dir/unit/workload/query_trace.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/workload/query_trace.cc.o.d"
  "/root/repo/src/unit/workload/trace_io.cc" "src/CMakeFiles/unitdb.dir/unit/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/workload/trace_io.cc.o.d"
  "/root/repo/src/unit/workload/update_trace.cc" "src/CMakeFiles/unitdb.dir/unit/workload/update_trace.cc.o" "gcc" "src/CMakeFiles/unitdb.dir/unit/workload/update_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
