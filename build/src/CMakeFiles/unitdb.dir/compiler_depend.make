# Empty compiler generated dependencies file for unitdb.
# This may be replaced when dependencies are built.
