file(REMOVE_RECURSE
  "libunitdb.a"
)
