#include "unit/common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace unitdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllFactoriesMapToCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out.size(), 3u);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<int> v = 1;
  *v = 7;
  EXPECT_EQ(v.value(), 7);
}

}  // namespace
}  // namespace unitdb
