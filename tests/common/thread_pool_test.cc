#include "unit/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace unitdb {
namespace {

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  auto sum = pool.Submit([]() { return 19 + 23; });
  auto text = pool.Submit([]() { return std::string("done"); });
  EXPECT_EQ(sum.get(), 42);
  EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPoolTest, ThreadCountIsClampedToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).num_threads(), 1);
  EXPECT_EQ(ThreadPool(-3).num_threads(), 1);
  EXPECT_EQ(ThreadPool(4).num_threads(), 4);
}

TEST(ThreadPoolTest, SingleWorkerDrainsFifo) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> done;
  for (int i = 0; i < 100; ++i) {
    done.push_back(pool.Submit([i, &order]() { order.push_back(i); }));
  }
  for (auto& f : done) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto boom = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WorkerSurvivesThrowingTask) {
  ThreadPool pool(1);
  auto boom = pool.Submit([]() { throw std::runtime_error("first"); });
  auto after = pool.Submit([]() { return 7; });
  EXPECT_THROW(boom.get(), std::runtime_error);
  EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPoolTest, WaitIdleIsABarrierNotAShutdown) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&ran]() { ++ran; });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 50);
  // Still usable afterwards.
  auto again = pool.Submit([]() { return 1; });
  EXPECT_EQ(again.get(), 1);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.Submit([]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    for (int i = 0; i < 25; ++i) {
      pool.Submit([&ran]() { ++ran; });
    }
    pool.Shutdown();  // must finish everything already queued
  }
  EXPECT_EQ(ran.load(), 25);
}

TEST(ThreadPoolTest, DoubleShutdownAndDestructorAreSafe) {
  ThreadPool pool(2);
  pool.Submit([]() {}).get();
  pool.Shutdown();
  pool.Shutdown();  // idempotent; destructor adds a third call
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([]() {}), std::runtime_error);
}

TEST(ThreadPoolTest, StressManyProducersManyTasks) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 2500;
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran]() {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&ran]() { ++ran; });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolTest, DestructorAloneDrainsQueuedBacklog) {
  // No explicit Shutdown: the destructor must finish a deep queue behind a
  // slow task, not abandon it.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.Submit([]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&ran]() { ++ran; });
    }
  }
  EXPECT_EQ(ran.load(), 40);
}

TEST(ThreadPoolTest, ShutdownMakesEveryQueuedFutureReady) {
  ThreadPool pool(1);
  std::vector<std::future<int>> results;
  pool.Submit([]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  for (int i = 0; i < 30; ++i) {
    results.push_back(pool.Submit([i]() { return i; }));
  }
  pool.Shutdown();
  // Shutdown drains rather than cancels, so no future is left dangling in
  // a broken-promise state.
  for (int i = 0; i < 30; ++i) EXPECT_EQ(results[i].get(), i);
}

TEST(ThreadPoolTest, ConcurrentSubmitDuringShutdownNeverLosesATask) {
  // Producers race Shutdown: every Submit either enqueues (and the task
  // runs before Shutdown returns) or throws; nothing is silently dropped.
  std::atomic<int> accepted{0};
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&pool, &accepted, &ran]() {
      for (int i = 0; i < 500; ++i) {
        try {
          pool.Submit([&ran]() { ++ran; });
          ++accepted;
        } catch (const std::runtime_error&) {
          return;  // pool shut down under us; later submits would throw too
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  pool.Shutdown();
  for (auto& t : producers) t.join();
  EXPECT_EQ(ran.load(), accepted.load());
}

TEST(ThreadPoolTest, ZeroJobsPoolRunsTasksOnItsClampedWorker) {
  // jobs=0 is what callers pass straight from a config default; the clamp
  // must yield a functional single-worker pool, not a silent no-op.
  ThreadPool pool(0);
  ASSERT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  std::vector<std::future<void>> done;
  for (int i = 0; i < 10; ++i) {
    done.push_back(pool.Submit([i, &order]() { order.push_back(i); }));
  }
  for (auto& f : done) f.get();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // nothing queued, no worker active: must not block
  EXPECT_EQ(pool.Submit([]() { return 3; }).get(), 3);
}

TEST(ThreadPoolTest, ResolveJobsPicksHardwareForNonPositive) {
  EXPECT_GE(ResolveJobs(0), 1);
  EXPECT_GE(ResolveJobs(-1), 1);
  EXPECT_EQ(ResolveJobs(6), 6);
}

}  // namespace
}  // namespace unitdb
