// Property tests of the CSV layer: random documents must round-trip
// losslessly, and random garbage must never crash the parser.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "unit/common/csv.h"
#include "unit/common/rng.h"

namespace unitdb {
namespace {

std::string RandomField(Rng& rng) {
  static const char kAlphabet[] =
      "abcXYZ012 ,\"\n\r;=%\t_-";
  const int len = static_cast<int>(rng.UniformInt(0, 12));
  std::string s;
  for (int i = 0; i < len; ++i) {
    s += kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)];
  }
  return s;
}

class CsvRoundTripFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripFuzzTest, RandomDocumentsRoundTrip) {
  Rng rng(GetParam());
  for (int doc = 0; doc < 50; ++doc) {
    CsvWriter writer;
    std::vector<std::vector<std::string>> rows;
    const int n_rows = 1 + static_cast<int>(rng.UniformInt(0, 6));
    for (int r = 0; r < n_rows; ++r) {
      std::vector<std::string> row;
      const int n_fields = 1 + static_cast<int>(rng.UniformInt(0, 5));
      for (int f = 0; f < n_fields; ++f) row.push_back(RandomField(rng));
      // A row whose single field is empty is indistinguishable from a blank
      // line; make the first field non-empty in that case. push_back instead
      // of assigning "x": string::operator=(const char*) trips a GCC 12
      // -Wrestrict false positive at -O2, which the werror CI job rejects.
      if (row.size() == 1 && row[0].empty()) row[0].push_back('x');
      writer.AddRow(row);
      rows.push_back(std::move(row));
    }
    auto parsed = CsvReader::Parse(writer.ToString());
    ASSERT_TRUE(parsed.ok()) << "doc " << doc;
    // '\r' normalizes away (RFC 4180 line endings); apply the same rule to
    // the expectation for unquoted fields... CsvWriter quotes any field
    // containing \r, so round-trips are exact.
    ASSERT_EQ(*parsed, rows) << "doc " << doc;
  }
}

TEST_P(CsvRoundTripFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(GetParam() + 1000);
  static const char kNoise[] = "a,\"\n\r,,\"\"x";
  for (int doc = 0; doc < 200; ++doc) {
    std::string text;
    const int len = static_cast<int>(rng.UniformInt(0, 64));
    for (int i = 0; i < len; ++i) {
      text += kNoise[rng.UniformInt(0, sizeof(kNoise) - 2)];
    }
    auto parsed = CsvReader::Parse(text);  // ok or error, never UB
    if (parsed.ok()) {
      // Whatever parsed must re-serialize and re-parse to the same rows —
      // modulo the one representational asymmetry: a row holding exactly
      // one empty field serializes to a blank line, which parsing drops.
      std::vector<std::vector<std::string>> canonical;
      for (const auto& row : *parsed) {
        if (row.size() == 1 && row[0].empty()) continue;
        canonical.push_back(row);
      }
      CsvWriter w;
      for (const auto& row : canonical) w.AddRow(row);
      auto again = CsvReader::Parse(w.ToString());
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again, canonical);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripFuzzTest,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace unitdb
