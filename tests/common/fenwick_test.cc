#include "unit/common/fenwick.h"

#include <gtest/gtest.h>

#include <vector>

#include "unit/common/rng.h"

namespace unitdb {
namespace {

TEST(FenwickTest, EmptyAfterReset) {
  FenwickTree t(8);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
  for (size_t i = 0; i <= 8; ++i) {
    EXPECT_DOUBLE_EQ(t.PrefixSum(i), 0.0);
  }
}

TEST(FenwickTest, SetAndGet) {
  FenwickTree t(5);
  t.Set(2, 3.5);
  EXPECT_DOUBLE_EQ(t.Get(2), 3.5);
  EXPECT_DOUBLE_EQ(t.total(), 3.5);
  t.Set(2, 1.0);
  EXPECT_DOUBLE_EQ(t.Get(2), 1.0);
  EXPECT_DOUBLE_EQ(t.total(), 1.0);
}

TEST(FenwickTest, AddAccumulates) {
  FenwickTree t(4);
  t.Add(1, 2.0);
  t.Add(1, 3.0);
  EXPECT_DOUBLE_EQ(t.Get(1), 5.0);
}

TEST(FenwickTest, PrefixSumsMatchBruteForce) {
  const size_t n = 37;  // deliberately not a power of two
  FenwickTree t(n);
  std::vector<double> ref(n, 0.0);
  Rng rng(61);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t i = rng.UniformInt(0, n - 1);
    const double w = rng.Uniform(0.0, 10.0);
    t.Set(i, w);
    ref[i] = w;
    const size_t q = rng.UniformInt(0, n);
    double expect = 0.0;
    for (size_t j = 0; j < q; ++j) expect += ref[j];
    ASSERT_NEAR(t.PrefixSum(q), expect, 1e-9);
  }
}

TEST(FenwickTest, FindPrefixLandsInCorrectSlot) {
  FenwickTree t(6);
  const double w[] = {1.0, 0.0, 2.0, 0.5, 0.0, 1.5};
  for (size_t i = 0; i < 6; ++i) t.Set(i, w[i]);
  // Cumulative boundaries: [0,1) -> 0, [1,3) -> 2, [3,3.5) -> 3, [3.5,5) -> 5.
  EXPECT_EQ(t.FindPrefix(0.0), 0u);
  EXPECT_EQ(t.FindPrefix(0.999), 0u);
  EXPECT_EQ(t.FindPrefix(1.0), 2u);
  EXPECT_EQ(t.FindPrefix(2.999), 2u);
  EXPECT_EQ(t.FindPrefix(3.0), 3u);
  EXPECT_EQ(t.FindPrefix(3.499), 3u);
  EXPECT_EQ(t.FindPrefix(3.5), 5u);
  EXPECT_EQ(t.FindPrefix(4.999), 5u);
}

TEST(FenwickTest, FindPrefixSamplingIsProportional) {
  FenwickTree t(4);
  t.Set(0, 1.0);
  t.Set(1, 2.0);
  t.Set(2, 0.0);
  t.Set(3, 1.0);
  Rng rng(67);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[t.FindPrefix(rng.NextDouble() * t.total())];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.50, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.25, 0.01);
}

TEST(FenwickTest, ResetClears) {
  FenwickTree t(3);
  t.Set(0, 1.0);
  t.Reset(10);
  EXPECT_EQ(t.size(), 10u);
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(FenwickTest, SingleSlot) {
  FenwickTree t(1);
  t.Set(0, 5.0);
  EXPECT_EQ(t.FindPrefix(2.5), 0u);
  EXPECT_DOUBLE_EQ(t.PrefixSum(1), 5.0);
}

}  // namespace
}  // namespace unitdb
