#include "unit/common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace unitdb {
namespace {

TEST(CsvWriterTest, SimpleRows) {
  CsvWriter w;
  w.AddRow({"a", "b", "c"});
  w.AddRow({"1", "2", "3"});
  EXPECT_EQ(w.ToString(), "a,b,c\n1,2,3\n");
  EXPECT_EQ(w.rows(), 2u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter w;
  w.AddRow({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(w.ToString(),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvRoundTripTest, PreservesFields) {
  CsvWriter w;
  w.AddRow({"a,b", "c\"d", "e\nf", "", "plain"});
  w.AddRow({"second", "row", "", "x", "y"});
  auto rows = CsvReader::Parse(w.ToString());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0],
            (std::vector<std::string>{"a,b", "c\"d", "e\nf", "", "plain"}));
  EXPECT_EQ((*rows)[1],
            (std::vector<std::string>{"second", "row", "", "x", "y"}));
}

TEST(CsvReaderTest, HandlesCrLf) {
  auto rows = CsvReader::Parse("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  auto rows = CsvReader::Parse("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvReaderTest, EmptyFieldsPreserved) {
  auto rows = CsvReader::Parse(",,\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvReaderTest, RejectsUnterminatedQuote) {
  auto rows = CsvReader::Parse("\"abc\n");
  EXPECT_FALSE(rows.ok());
}

TEST(CsvReaderTest, RejectsQuoteInUnquotedField) {
  auto rows = CsvReader::Parse("ab\"c,d\n");
  EXPECT_FALSE(rows.ok());
}

TEST(CsvReaderTest, EmptyDocument) {
  auto rows = CsvReader::Parse("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/unitdb_csv_test.csv";
  CsvWriter w;
  w.AddRow({"x", "y,z"});
  ASSERT_TRUE(w.WriteFile(path).ok());
  auto rows = CsvReader::ReadFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"x", "y,z"}));
  std::remove(path.c_str());
}

TEST(CsvFileTest, ReadMissingFileFails) {
  auto rows = CsvReader::ReadFile("/nonexistent/definitely/not/here.csv");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace unitdb
