#include "unit/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace unitdb {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    if (i % 2 == 0) a.Add(x);
    else b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  RunningStat c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(RunningStatTest, ClearResets) {
  RunningStat s;
  s.Add(5.0);
  s.Clear();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(EwmaTest, FirstObservationInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.ValueOr(42.0), 42.0);
  e.Add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.ValueOr(42.0), 10.0);
}

TEST(EwmaTest, Converges) {
  Ewma e(0.5);
  e.Add(0.0);
  for (int i = 0; i < 50; ++i) e.Add(8.0);
  EXPECT_NEAR(e.ValueOr(0.0), 8.0, 1e-9);
}

TEST(EwmaTest, WeightsNewest) {
  Ewma e(0.25);
  e.Add(0.0);
  e.Add(4.0);
  EXPECT_DOUBLE_EQ(e.ValueOr(0.0), 1.0);
}

TEST(PercentilesTest, EmptyIsZero) {
  Percentiles p;
  EXPECT_EQ(p.Percentile(50.0), 0.0);
}

TEST(PercentilesTest, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_DOUBLE_EQ(p.Percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(p.Percentile(95.0), 95.0);
  EXPECT_DOUBLE_EQ(p.Percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(p.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Median(), 50.0);
}

TEST(PercentilesTest, EmptyIsZeroAtEveryP) {
  // No samples: every percentile, including the p = 0 / p = 100 bounds,
  // answers 0 rather than reading past an empty buffer.
  Percentiles p;
  EXPECT_EQ(p.Percentile(0.0), 0.0);
  EXPECT_EQ(p.Percentile(100.0), 0.0);
  EXPECT_EQ(p.Median(), 0.0);
}

TEST(PercentilesTest, SingleSampleIsEveryPercentile) {
  Percentiles p;
  p.Add(7.5);
  EXPECT_DOUBLE_EQ(p.Percentile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(p.Percentile(1.0), 7.5);
  EXPECT_DOUBLE_EQ(p.Percentile(50.0), 7.5);
  EXPECT_DOUBLE_EQ(p.Percentile(99.0), 7.5);
  EXPECT_DOUBLE_EQ(p.Percentile(100.0), 7.5);
}

TEST(PercentilesTest, BoundsClampOutOfRangeP) {
  Percentiles p;
  p.Add(1.0);
  p.Add(2.0);
  p.Add(3.0);
  // p below 0 clamps to the minimum sample; p above 100 to the maximum.
  EXPECT_DOUBLE_EQ(p.Percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Percentile(100.0), 3.0);
  EXPECT_DOUBLE_EQ(p.Percentile(250.0), 3.0);
}

TEST(PercentilesTest, TwoSampleRankBoundaries) {
  // Nearest-rank with n = 2: ceil(p/100 * 2) flips from rank 1 to rank 2
  // strictly above p = 50.
  Percentiles p;
  p.Add(10.0);
  p.Add(20.0);
  EXPECT_DOUBLE_EQ(p.Percentile(50.0), 10.0);
  EXPECT_DOUBLE_EQ(p.Percentile(50.1), 20.0);
}

TEST(PercentilesTest, AddAfterQuery) {
  Percentiles p;
  p.Add(10.0);
  EXPECT_DOUBLE_EQ(p.Median(), 10.0);
  p.Add(1.0);
  p.Add(2.0);
  EXPECT_DOUBLE_EQ(p.Median(), 2.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(0.0);
  h.Add(1.9);
  h.Add(2.0);
  h.Add(9.999);
  h.Add(10.0);
  h.Add(100.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(4), 1);
  EXPECT_EQ(h.total(), 7);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 2.0);
}

TEST(CorrelationTest, PerfectPositive) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(CorrelationTest, PerfectNegative) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(x, y), -1.0, 1e-12);
}

TEST(CorrelationTest, ConstantVectorGivesZero) {
  std::vector<double> x = {1, 1, 1, 1};
  std::vector<double> y = {1, 2, 3, 4};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
  EXPECT_EQ(SpearmanCorrelation(x, y), 0.0);
}

TEST(CorrelationTest, SizeMismatchGivesZero) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {1, 2};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(CorrelationTest, SpearmanIsRankBased) {
  // A monotone nonlinear relation: Spearman 1, Pearson < 1.
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
  EXPECT_GT(PearsonCorrelation(x, y), 0.8);
}

TEST(CorrelationTest, SpearmanHandlesTies) {
  std::vector<double> x = {1, 1, 2, 2};
  std::vector<double> y = {1, 1, 2, 2};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace unitdb
