#include "unit/common/config.h"

#include <gtest/gtest.h>

namespace unitdb {
namespace {

TEST(ConfigTest, ParseArgsBasic) {
  const char* argv[] = {"prog", "alpha=1", "--beta=2.5", "name=unit"};
  auto c = Config::ParseArgs(4, argv);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->GetInt("alpha", 0), 1);
  EXPECT_DOUBLE_EQ(c->GetDouble("beta", 0.0), 2.5);
  EXPECT_EQ(c->GetString("name"), "unit");
}

TEST(ConfigTest, ParseArgsRejectsBareToken) {
  const char* argv[] = {"prog", "oops"};
  auto c = Config::ParseArgs(2, argv);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, ParseArgsRejectsEmptyKey) {
  const char* argv[] = {"prog", "=value"};
  auto c = Config::ParseArgs(2, argv);
  EXPECT_FALSE(c.ok());
}

TEST(ConfigTest, ParseStringWithCommentsAndBlanks) {
  auto c = Config::ParseString(
      "# a comment\n"
      "a = 1\n"
      "\n"
      "b=two # trailing comment\n");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->GetInt("a", 0), 1);
  EXPECT_EQ(c->GetString("b"), "two");
}

TEST(ConfigTest, DefaultsWhenMissing) {
  Config c;
  EXPECT_EQ(c.GetInt("nope", -7), -7);
  EXPECT_DOUBLE_EQ(c.GetDouble("nope", 1.5), 1.5);
  EXPECT_EQ(c.GetString("nope", "d"), "d");
  EXPECT_TRUE(c.GetBool("nope", true));
  EXPECT_FALSE(c.Has("nope"));
}

TEST(ConfigTest, BoolParsing) {
  Config c;
  c.Set("t1", "true");
  c.Set("t2", "1");
  c.Set("t3", "yes");
  c.Set("t4", "on");
  c.Set("f1", "false");
  c.Set("f2", "0");
  EXPECT_TRUE(c.GetBool("t1", false));
  EXPECT_TRUE(c.GetBool("t2", false));
  EXPECT_TRUE(c.GetBool("t3", false));
  EXPECT_TRUE(c.GetBool("t4", false));
  EXPECT_FALSE(c.GetBool("f1", true));
  EXPECT_FALSE(c.GetBool("f2", true));
}

TEST(ConfigTest, SetOverwrites) {
  Config c;
  c.Set("k", "1");
  c.Set("k", "2");
  EXPECT_EQ(c.GetInt("k", 0), 2);
}

TEST(ConfigTest, KeysAreSorted) {
  Config c;
  c.Set("zebra", "1");
  c.Set("apple", "2");
  auto keys = c.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "apple");
  EXPECT_EQ(keys[1], "zebra");
}

TEST(ConfigTest, ValueMayContainEquals) {
  auto c = Config::ParseString("expr=a=b\n");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->GetString("expr"), "a=b");
}

TEST(ConfigTest, ParseArgsRejectsDuplicateKey) {
  const char* argv[] = {"prog", "scale=1", "--scale=2"};
  auto c = Config::ParseArgs(3, argv);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(c.status().ToString().find("duplicate"), std::string::npos)
      << c.status().ToString();
  EXPECT_NE(c.status().ToString().find("scale"), std::string::npos);
}

TEST(ConfigTest, ParseStringRejectsDuplicateKey) {
  auto c = Config::ParseString(
      "fault0.kind = update-outage\n"
      "fault0.kind = load-step\n");
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.status().ToString().find("fault0.kind"), std::string::npos)
      << c.status().ToString();
  // Programmatic Set() still overwrites (see SetOverwrites above); only the
  // parsed sources reject duplicates.
}

TEST(ConfigTest, EmptyValueIsLegal) {
  auto c = Config::ParseString(
      "empty=\n"
      "blank =   \n");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->Has("empty"));
  EXPECT_TRUE(c->Has("blank"));
  EXPECT_EQ(c->GetString("empty", "default"), "");
  EXPECT_EQ(c->GetString("blank", "default"), "");
  EXPECT_FALSE(c->GetBool("empty", false));
}

TEST(ConfigTest, ExpectKeysAcceptsKnownSubset) {
  Config c;
  c.Set("scale", "0.5");
  c.Set("seed", "7");
  EXPECT_TRUE(c.ExpectKeys({"scale", "seed", "jobs"}).ok());
  // An empty config is fine under any allowed set.
  EXPECT_TRUE(Config().ExpectKeys({"scale"}).ok());
  EXPECT_TRUE(Config().ExpectKeys({}).ok());
}

TEST(ConfigTest, ExpectKeysRejectsUnknownKey) {
  Config c;
  c.Set("scale", "0.5");
  c.Set("sede", "7");  // typo'd "seed"
  Status s = c.ExpectKeys({"scale", "seed"});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The message names the offender and lists the accepted keys.
  EXPECT_NE(s.ToString().find("sede"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("seed"), std::string::npos) << s.ToString();
}

}  // namespace
}  // namespace unitdb
