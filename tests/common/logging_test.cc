#include "unit/common/logging.h"

#include <gtest/gtest.h>

namespace unitdb {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, SuppressedMessagesAreCheap) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Streaming into a suppressed message must be safe (and not crash).
  for (int i = 0; i < 1000; ++i) {
    UNIT_LOG(Debug) << "suppressed " << i << " " << 3.14;
  }
  SetLogLevel(before);
}

TEST(LoggingTest, EnabledMessageStreams) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  // Goes to stderr; just exercise the path with mixed types.
  UNIT_LOG(Info) << "test message " << 42 << " " << 1.5 << " " << "str";
  SetLogLevel(before);
}

}  // namespace
}  // namespace unitdb
