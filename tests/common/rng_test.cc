#include "unit/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace unitdb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(5);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformIntIsUnbiased) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(0, 9)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ExponentialIsNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Exponential(0.5), 0.0);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(31);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, LogNormalMedianMatches) {
  Rng rng(37);
  std::vector<double> xs;
  const int n = 100001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.LogNormal(std::log(20.0), 1.0));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 20.0, 1.0);
}

TEST(RngTest, BoundedParetoStaysInRange) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.BoundedPareto(1.1, 1.0, 100.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(47);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  Rng b(99);
  b.Fork();
  // The child must not replay its parent's (identically-seeded) stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  ZipfSampler zipf(4, 0.0);
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.25, 1e-12);
  }
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.2);
  double sum = 0.0;
  for (int k = 0; k < 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, PmfIsDecreasing) {
  ZipfSampler zipf(50, 0.9);
  for (int k = 1; k < 50; ++k) {
    EXPECT_LT(zipf.Pmf(k), zipf.Pmf(k - 1));
  }
}

TEST(ZipfSamplerTest, SampleFrequenciesMatchPmf) {
  ZipfSampler zipf(8, 1.0);
  Rng rng(53);
  std::vector<int> counts(8, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int k = 0; k < 8; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfSamplerTest, SingleItem) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(59);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace unitdb
