#include "unit/sched/ready_queue.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "unit/txn/transaction.h"

namespace unitdb {
namespace {

Transaction Query(TxnId id, double deadline_s, double exec_ms = 10.0) {
  return Transaction::MakeQuery(id, /*arrival=*/0, MillisToSim(exec_ms),
                                SecondsToSim(deadline_s), 0.9, {0});
}

Transaction Update(TxnId id, double deadline_s, double exec_ms = 10.0) {
  return Transaction::MakeUpdate(id, /*arrival=*/0, MillisToSim(exec_ms),
                                 SecondsToSim(deadline_s), 0, false);
}

TEST(ReadyQueueTest, EmptyQueue) {
  ReadyQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.Top(), nullptr);
  EXPECT_EQ(q.PopTop(), nullptr);
  EXPECT_EQ(q.size(), 0);
}

TEST(ReadyQueueTest, UpdatesOutrankQueries) {
  ReadyQueue q;
  Transaction query = Query(1, 0.001);   // much earlier deadline
  Transaction update = Update(2, 100.0);  // much later deadline
  q.Insert(&query);
  q.Insert(&update);
  EXPECT_EQ(q.Top(), &update);
  EXPECT_EQ(q.update_count(), 1);
  EXPECT_EQ(q.query_count(), 1);
}

TEST(ReadyQueueTest, EdfWithinClass) {
  ReadyQueue q;
  Transaction a = Query(1, 5.0);
  Transaction b = Query(2, 2.0);
  Transaction c = Query(3, 9.0);
  q.Insert(&a);
  q.Insert(&b);
  q.Insert(&c);
  EXPECT_EQ(q.PopTop(), &b);
  EXPECT_EQ(q.PopTop(), &a);
  EXPECT_EQ(q.PopTop(), &c);
}

TEST(ReadyQueueTest, DeadlineTiesBreakById) {
  ReadyQueue q;
  Transaction a = Query(7, 5.0);
  Transaction b = Query(3, 5.0);
  q.Insert(&a);
  q.Insert(&b);
  EXPECT_EQ(q.PopTop(), &b);
  EXPECT_EQ(q.PopTop(), &a);
}

TEST(ReadyQueueTest, RemoveAndContains) {
  ReadyQueue q;
  Transaction a = Query(1, 5.0);
  Transaction u = Update(2, 5.0);
  q.Insert(&a);
  q.Insert(&u);
  EXPECT_TRUE(q.Contains(&a));
  EXPECT_TRUE(q.Remove(&a));
  EXPECT_FALSE(q.Contains(&a));
  EXPECT_FALSE(q.Remove(&a));
  EXPECT_EQ(q.size(), 1);
}

TEST(ReadyQueueTest, UpdateWorkAccounting) {
  ReadyQueue q;
  Transaction u1 = Update(1, 5.0, 100.0);
  Transaction u2 = Update(2, 6.0, 50.0);
  Transaction query = Query(3, 5.0, 400.0);  // queries don't count
  q.Insert(&u1);
  q.Insert(&u2);
  q.Insert(&query);
  EXPECT_EQ(q.TotalUpdateWork(), MillisToSim(150.0));
  q.Remove(&u1);
  EXPECT_EQ(q.TotalUpdateWork(), MillisToSim(50.0));
  q.PopTop();  // pops u2
  EXPECT_EQ(q.TotalUpdateWork(), 0);
}

TEST(ReadyQueueTest, ForEachQueryVisitsInEdfOrder) {
  ReadyQueue q;
  Transaction a = Query(1, 9.0), b = Query(2, 3.0), c = Query(3, 6.0);
  q.Insert(&a);
  q.Insert(&b);
  q.Insert(&c);
  std::vector<TxnId> order;
  q.ForEachQuery([&](const Transaction& t) { order.push_back(t.id()); });
  EXPECT_EQ(order, (std::vector<TxnId>{2, 3, 1}));
}

TEST(ReadyQueueTest, HigherPriorityRules) {
  ReadyQueue q;
  Transaction q1 = Query(1, 1.0), q2 = Query(2, 2.0);
  Transaction u1 = Update(3, 50.0);
  EXPECT_TRUE(q.HigherPriority(u1, q1));
  EXPECT_FALSE(q.HigherPriority(q1, u1));
  EXPECT_TRUE(q.HigherPriority(q1, q2));
  EXPECT_FALSE(q.HigherPriority(q2, q1));
}

TEST(ReadyQueueTest, FcfsDisciplineOrdersByArrival) {
  ReadyQueue q(QueueDiscipline::kFcfs);
  EXPECT_EQ(q.discipline(), QueueDiscipline::kFcfs);
  // Under FCFS the later-id query never outranks an earlier one, no matter
  // the deadlines.
  Transaction a = Query(1, 9.0);
  Transaction b = Query(2, 0.5);  // much tighter deadline, later arrival
  q.Insert(&a);
  q.Insert(&b);
  EXPECT_EQ(q.PopTop(), &a);
  EXPECT_EQ(q.PopTop(), &b);
  EXPECT_TRUE(q.HigherPriority(a, b));
}

TEST(ReadyQueueTest, FcfsStillRanksUpdatesAboveQueries) {
  ReadyQueue q(QueueDiscipline::kFcfs);
  Transaction query = Query(1, 0.1);
  Transaction update = Update(2, 100.0);
  q.Insert(&query);
  q.Insert(&update);
  EXPECT_EQ(q.Top(), &update);
}

TEST(ReadyQueueTest, PeakSizeIsMonotonicHighWaterMark) {
  ReadyQueue q;
  Transaction a = Query(1, 1.0), b = Query(2, 2.0), c = Query(3, 3.0);
  EXPECT_EQ(q.peak_size(), 0);
  q.Insert(&a);
  q.Insert(&b);
  EXPECT_EQ(q.peak_size(), 2);
  q.PopTop();
  q.PopTop();
  EXPECT_EQ(q.peak_size(), 2);  // draining doesn't lower the mark
  q.Insert(&c);
  EXPECT_EQ(q.peak_size(), 2);
}

/// Randomized model check: the intrusive heaps must agree with the seed's
/// std::set representation — same Top, same membership, same EDF visit
/// order, same update-work sum — through arbitrary insert/remove/pop mixes.
TEST(ReadyQueueTest, RandomizedMatchesSetModel) {
  for (QueueDiscipline discipline :
       {QueueDiscipline::kEdf, QueueDiscipline::kFcfs}) {
    std::mt19937_64 rng(discipline == QueueDiscipline::kEdf ? 1u : 2u);
    const int kTxns = 64;
    std::vector<Transaction> txns;
    txns.reserve(kTxns);
    for (int i = 0; i < kTxns; ++i) {
      const double deadline_s = 0.001 * static_cast<double>(1 + rng() % 5000);
      const double exec_ms = static_cast<double>(1 + rng() % 200);
      txns.push_back(i % 3 == 0 ? Update(i, deadline_s, exec_ms)
                                : Query(i, deadline_s, exec_ms));
    }

    ReadyQueue q(discipline);
    // Reference model: the seed's ordered-set comparator (class, then
    // deadline under EDF, then id).
    auto before = [&](const Transaction* a, const Transaction* b) {
      if (discipline == QueueDiscipline::kEdf &&
          a->absolute_deadline() != b->absolute_deadline()) {
        return a->absolute_deadline() < b->absolute_deadline();
      }
      return a->id() < b->id();
    };
    std::set<Transaction*, decltype(before)> updates(before);
    std::set<Transaction*, decltype(before)> queries(before);

    auto model_top = [&]() -> Transaction* {
      if (!updates.empty()) return *updates.begin();
      if (!queries.empty()) return *queries.begin();
      return nullptr;
    };

    for (int step = 0; step < 4000; ++step) {
      Transaction* t = &txns[rng() % kTxns];
      auto& model = t->is_update() ? updates : queries;
      switch (rng() % 3) {
        case 0:  // insert if absent
          if (model.insert(t).second) q.Insert(t);
          break;
        case 1:  // remove (possibly absent)
          EXPECT_EQ(q.Remove(t), model.erase(t) > 0);
          break;
        default: {  // pop
          Transaction* want = model_top();
          if (want != nullptr) {
            (want->is_update() ? updates : queries).erase(want);
          }
          EXPECT_EQ(q.PopTop(), want);
          break;
        }
      }
      ASSERT_EQ(q.Top(), model_top()) << "step " << step;
      ASSERT_EQ(q.update_count(), static_cast<int>(updates.size()));
      ASSERT_EQ(q.query_count(), static_cast<int>(queries.size()));
      ASSERT_EQ(q.Contains(t), (t->is_update() ? updates : queries).count(t) > 0);

      SimDuration update_work = 0;
      for (const Transaction* u : updates) update_work += u->remaining();
      ASSERT_EQ(q.TotalUpdateWork(), update_work);

      if (step % 97 == 0) {  // visit order matches the set's iteration order
        std::vector<TxnId> got, want;
        q.ForEachQuery([&](const Transaction& v) { got.push_back(v.id()); });
        for (const Transaction* v : queries) want.push_back(v->id());
        ASSERT_EQ(got, want) << "step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace unitdb
