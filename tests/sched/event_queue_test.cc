#include "unit/sched/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace unitdb {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  q.Push(30, EventType::kControlTick, 3);
  q.Push(10, EventType::kControlTick, 1);
  q.Push(20, EventType::kControlTick, 2);
  EXPECT_EQ(q.Pop().payload, 1);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.Push(5, EventType::kQueryArrival, i);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.Pop().payload, i);
  }
}

TEST(EventQueueTest, CarriesTypeAndGeneration) {
  EventQueue q;
  q.Push(1, EventType::kCompletion, 42, 7);
  const Event e = q.Pop();
  EXPECT_EQ(e.type, EventType::kCompletion);
  EXPECT_EQ(e.payload, 42);
  EXPECT_EQ(e.generation, 7u);
  EXPECT_EQ(e.time, 1);
}

TEST(EventQueueTest, SizeTracksContents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.Push(1, EventType::kControlTick, 0);
  q.Push(2, EventType::kControlTick, 0);
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.Push(10, EventType::kControlTick, 1);
  q.Push(5, EventType::kControlTick, 0);
  EXPECT_EQ(q.Pop().payload, 0);
  q.Push(7, EventType::kControlTick, 2);
  q.Push(12, EventType::kControlTick, 3);
  std::vector<int64_t> rest;
  while (!q.empty()) rest.push_back(q.Pop().payload);
  EXPECT_EQ(rest, (std::vector<int64_t>{2, 1, 3}));
}

TEST(EventQueueTest, TopPeeksWithoutRemoving) {
  EventQueue q;
  q.Push(3, EventType::kControlTick, 9);
  EXPECT_EQ(q.Top().payload, 9);
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace unitdb
