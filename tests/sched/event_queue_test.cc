#include "unit/sched/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace unitdb {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  q.Push(30, EventType::kControlTick, 3);
  q.Push(10, EventType::kControlTick, 1);
  q.Push(20, EventType::kControlTick, 2);
  EXPECT_EQ(q.Pop().payload, 1);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.Push(5, EventType::kQueryArrival, i);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.Pop().payload, i);
  }
}

TEST(EventQueueTest, CarriesTypeAndGeneration) {
  EventQueue q;
  q.Push(1, EventType::kCompletion, 42, 7);
  const Event e = q.Pop();
  EXPECT_EQ(e.type, EventType::kCompletion);
  EXPECT_EQ(e.payload, 42);
  EXPECT_EQ(e.generation, 7u);
  EXPECT_EQ(e.time, 1);
}

TEST(EventQueueTest, SizeTracksContents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.Push(1, EventType::kControlTick, 0);
  q.Push(2, EventType::kControlTick, 0);
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.Push(10, EventType::kControlTick, 1);
  q.Push(5, EventType::kControlTick, 0);
  EXPECT_EQ(q.Pop().payload, 0);
  q.Push(7, EventType::kControlTick, 2);
  q.Push(12, EventType::kControlTick, 3);
  std::vector<int64_t> rest;
  while (!q.empty()) rest.push_back(q.Pop().payload);
  EXPECT_EQ(rest, (std::vector<int64_t>{2, 1, 3}));
}

TEST(EventQueueTest, TopPeeksWithoutRemoving) {
  EventQueue q;
  q.Push(3, EventType::kControlTick, 9);
  EXPECT_EQ(q.Top().payload, 9);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, ShouldCompactNeedsManyDeadAndHalfTheHeap) {
  EventQueue q;
  for (int i = 0; i < 200; ++i) q.Push(i, EventType::kControlTick, i);
  for (size_t i = 0; i <= EventQueue::kCompactMinDead; ++i) q.NoteCancelled();
  // 65 tombstones out of 200 events: above the floor but not half the heap.
  EXPECT_FALSE(q.ShouldCompact());
  for (int i = 0; i < 40; ++i) q.NoteCancelled();
  EXPECT_TRUE(q.ShouldCompact());  // 105 * 2 > 200
  EXPECT_EQ(q.cancelled(), 105u);
}

TEST(EventQueueTest, CompactIfDropsDeadAndPreservesLiveOrder) {
  EventQueue q;
  // Interleave live and dead events, with ties at equal timestamps so the
  // FIFO seq tie-break is also exercised across a re-heapify.
  for (int i = 0; i < 100; ++i) {
    q.Push(/*time=*/i / 2, EventType::kControlTick, /*payload=*/i);
  }
  auto dead = [](const Event& e) { return e.payload % 3 == 0; };
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) q.NoteCancelled();
  }
  const size_t removed = q.CompactIf(dead);
  EXPECT_EQ(removed, 34u);
  EXPECT_EQ(q.size(), 66u);
  EXPECT_EQ(q.cancelled(), 0u);  // counter resets with the pass

  std::vector<int64_t> got;
  while (!q.empty()) got.push_back(q.Pop().payload);
  std::vector<int64_t> want;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 != 0) want.push_back(i);  // original (time, seq) order
  }
  EXPECT_EQ(got, want);
}

TEST(EventQueueTest, CompactIfCanEmptyTheQueue) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.Push(i, EventType::kQueryDeadline, i);
  EXPECT_EQ(q.CompactIf([](const Event&) { return true; }), 5u);
  EXPECT_TRUE(q.empty());
  q.Push(1, EventType::kControlTick, 7);  // still usable afterwards
  EXPECT_EQ(q.Pop().payload, 7);
}

}  // namespace
}  // namespace unitdb
