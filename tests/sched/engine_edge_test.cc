// Edge cases of the discrete-event engine: lock chains, blocking, boundary
// timing, degenerate workloads.

#include <gtest/gtest.h>

#include "testing/fake_policy.h"
#include "unit/sched/engine.h"
#include "unit/workload/spec.h"

namespace unitdb {
namespace {

using testing_support::FakePolicy;

QueryRequest Query(TxnId id, double arrival_s, double exec_ms,
                   double deadline_s, std::vector<ItemId> items) {
  QueryRequest q;
  q.id = id;
  q.arrival = SecondsToSim(arrival_s);
  q.exec = MillisToSim(exec_ms);
  q.relative_deadline = SecondsToSim(deadline_s);
  q.freshness_req = 0.9;
  q.items = std::move(items);
  return q;
}

ItemUpdateSpec Source(ItemId item, double period_s, double exec_ms,
                      double phase_s = 0.0) {
  ItemUpdateSpec s;
  s.item = item;
  s.ideal_period = SecondsToSim(period_s);
  s.update_exec = MillisToSim(exec_ms);
  s.phase = SecondsToSim(phase_s);
  return s;
}

Workload Empty(int num_items = 4, double duration_s = 5.0) {
  Workload w;
  w.num_items = num_items;
  w.duration = SecondsToSim(duration_s);
  return w;
}

TEST(EngineEdgeTest, EmptyWorkloadTerminates) {
  Workload w = Empty();
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.submitted, 0);
  EXPECT_DOUBLE_EQ(m.busy_s, 0.0);
  EXPECT_GT(policy.control_ticks, 0);  // control loop still runs
}

TEST(EngineEdgeTest, ZeroControlPeriodDisablesTicks) {
  Workload w = Empty();
  w.queries.push_back(Query(0, 1.0, 10.0, 1.0, {0}));
  FakePolicy policy;
  EngineParams params;
  params.control_period = 0;
  Engine engine(w, &policy, params);
  engine.Run();
  EXPECT_EQ(policy.control_ticks, 0);
}

TEST(EngineEdgeTest, UpdateOnlyWorkloadAppliesEverything) {
  Workload w = Empty(2, 10.0);
  w.updates = {Source(0, 2.0, 20.0), Source(1, 3.0, 30.0, 1.0)};
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.update_commits, w.TotalSourceUpdates());
  EXPECT_EQ(m.counts.submitted, 0);
}

TEST(EngineEdgeTest, QueryBlocksBehindUpdateExclusiveLock) {
  // A long update holds the X lock on item 0 from t=1.0 to t=3.0; a query
  // reading item 0 arrives at t=1.5. It cannot abort the higher-priority
  // holder: it blocks and commits right after the update.
  Workload w = Empty(1, 20.0);
  w.queries.push_back(Query(0, 1.5, 100.0, 10.0, {0}));
  w.updates = {Source(0, 100.0, 2000.0, 1.0)};
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 1);
  // Query committed at ~3.1s: waited for the update (until 3.0) then ran.
  EXPECT_NEAR(m.query_response_s.mean(), (3.0 - 1.5) + 0.1, 1e-6);
  EXPECT_EQ(m.lock_restarts, 0);
}

TEST(EngineEdgeTest, UpdatesOnSameItemSerialize) {
  // Two sources... a single item receives periodic updates faster than it
  // can apply them; X locks force serialization, never deadlock.
  Workload w = Empty(1, 4.0);
  w.updates = {Source(0, 0.5, 600.0)};  // 600ms work every 500ms
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  // All generated update txns eventually commit (drain past horizon).
  EXPECT_EQ(m.update_commits, m.updates_generated);
  EXPECT_GT(m.update_commits, 4);
}

TEST(EngineEdgeTest, RestartedQueryCanStillSucceed) {
  // Query (1s of work, deadline 10s) reads two items whose updates land at
  // t=0.1 and t=0.9: two 2PL-HP restarts, then a clean run to commit at
  // ~1.95s — well within the deadline.
  Workload w = Empty(2, 20.0);
  w.queries.push_back(Query(0, 0.0, 1000.0, 10.0, {0, 1}));
  w.updates = {Source(0, 100.0, 50.0, 0.1), Source(1, 100.0, 50.0, 0.9)};
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 1);
  EXPECT_EQ(m.lock_restarts, 2);
  EXPECT_NEAR(m.query_response_s.mean(), 1.95, 1e-6);
}

TEST(EngineEdgeTest, QueryReadingManyItemsLocksAtomically) {
  // Query reads 4 items; update streams touch two of them. The query's
  // all-or-nothing S acquisition plus 2PL-HP restarts must never deadlock.
  Workload w = Empty(4, 30.0);
  w.queries.push_back(Query(0, 0.0, 800.0, 25.0, {0, 1, 2, 3}));
  w.updates = {Source(0, 0.9, 100.0, 0.2), Source(2, 1.1, 100.0, 0.5)};
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.resolved(), 1);
  EXPECT_EQ(m.counts.success + m.counts.dmf + m.counts.dsf, 1);
}

TEST(EngineEdgeTest, DeadlineExactlyAtCompletionCommitsFirst) {
  // Completion and deadline land on the same instant; the completion event
  // was scheduled first (FIFO tie-break), so the query succeeds.
  Workload w = Empty(1, 10.0);
  QueryRequest q = Query(0, 1.0, 100.0, 0.1, {0});
  w.queries.push_back(q);
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.dmf + m.counts.success, 1);
  // Deadline event (scheduled at admission) precedes the completion event
  // (scheduled at dispatch) in the queue for equal timestamps, so the firm
  // deadline wins the tie: this is a DMF, deterministically.
  EXPECT_EQ(m.counts.dmf, 1);
}

TEST(EngineEdgeTest, ArrivalAtHorizonBoundaryIsDropped) {
  // An update phase beyond the duration never generates or applies.
  Workload w = Empty(1, 5.0);
  w.updates = {Source(0, 10.0, 50.0, 7.0)};  // phase after the horizon
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.update_commits, 0);
  EXPECT_EQ(w.TotalSourceUpdates(), 0);
}

TEST(EngineEdgeTest, DuplicateItemsInReadSetAreHarmless) {
  Workload w = Empty(2, 10.0);
  w.queries.push_back(Query(0, 1.0, 50.0, 5.0, {1, 1, 1}));
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 1);
  // Bookkeeping counts each listed access.
  EXPECT_EQ(m.per_item_accesses[1], 3);
}

TEST(EngineEdgeTest, OnDemandUpdateForItemWithoutSourceStillRuns) {
  // ODU-style refresh on a source-less item: the item is always fresh, but
  // issuing an update for it must not crash or wedge the engine... it has
  // no update_exec, so the engine cannot build a transaction for it unless
  // the database carries a spec. Give it one with a far-future phase.
  Workload w = Empty(1, 10.0);
  w.updates = {Source(0, 8.0, 40.0, 6.0)};
  w.queries.push_back(Query(0, 1.0, 50.0, 5.0, {0}));
  FakePolicy policy;
  policy.before_dispatch = [](EngineContext& e, Transaction& q) {
    if (q.refresh_rounds() > 0) return true;
    q.IncrementRefreshRounds();
    e.IssueOnDemandUpdate(0);
    return false;
  };
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 1);
  EXPECT_EQ(m.on_demand_updates, 1);
}

TEST(EngineEdgeTest, ManySimultaneousArrivalsResolveDeterministically) {
  Workload w = Empty(8, 30.0);
  for (int i = 0; i < 50; ++i) {
    w.queries.push_back(Query(i, 1.0, 200.0, 3.0 + (i % 5), {i % 8}));
  }
  auto run = [&w] {
    FakePolicy policy;
    Engine engine(w, &policy, {});
    return engine.Run();
  };
  RunMetrics a = run();
  RunMetrics b = run();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.counts.resolved(), 50);
  EXPECT_GT(a.counts.success, 0);
  EXPECT_GT(a.counts.dmf, 0);  // 5s of work vs <= 8s deadlines: some miss
}

TEST(EngineEdgeTest, PolicyPostponingWithoutWorkIsCaughtNotLooping) {
  // A buggy policy that postpones without enqueueing higher-priority work:
  // the engine logs an error and runs the query anyway (no infinite loop).
  Workload w = Empty(1, 10.0);
  w.queries.push_back(Query(0, 1.0, 50.0, 5.0, {0}));
  FakePolicy policy;
  policy.before_dispatch = [](EngineContext&, Transaction&) { return false; };
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.resolved(), 1);
}

TEST(EngineEdgeTest, BusyAccountingMatchesCommittedWork) {
  // No contention, no aborts: busy time == sum of all demands.
  Workload w = Empty(4, 60.0);
  double expected_s = 0.0;
  for (int i = 0; i < 10; ++i) {
    w.queries.push_back(Query(i, 2.0 * i, 100.0 + i, 20.0, {i % 4}));
    expected_s += (100.0 + i) / 1000.0;
  }
  w.updates = {Source(0, 10.0, 50.0, 0.5)};
  expected_s += 6 * 0.050;  // arrivals at 0.5, 10.5, ..., 50.5
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 10);
  EXPECT_NEAR(m.busy_s, expected_s, 1e-6);
}

}  // namespace
}  // namespace unitdb
