#include "unit/sched/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "testing/fake_policy.h"
#include "unit/workload/spec.h"

namespace unitdb {
namespace {

using testing_support::FakePolicy;

struct QuerySpec {
  double arrival_s;
  double exec_ms;
  double deadline_s;
  std::vector<ItemId> items;
  double freshness_req = 0.9;
};

Workload BuildWorkload(int num_items, double duration_s,
                       const std::vector<QuerySpec>& queries,
                       const std::vector<ItemUpdateSpec>& updates = {}) {
  Workload w;
  w.num_items = num_items;
  w.duration = SecondsToSim(duration_s);
  for (size_t i = 0; i < queries.size(); ++i) {
    const QuerySpec& s = queries[i];
    QueryRequest q;
    q.id = static_cast<TxnId>(i);
    q.arrival = SecondsToSim(s.arrival_s);
    q.exec = MillisToSim(s.exec_ms);
    q.relative_deadline = SecondsToSim(s.deadline_s);
    q.freshness_req = s.freshness_req;
    q.items = s.items;
    w.queries.push_back(q);
  }
  w.updates = updates;
  return w;
}

ItemUpdateSpec Source(ItemId item, double period_s, double exec_ms,
                      double phase_s = 0.0) {
  ItemUpdateSpec s;
  s.item = item;
  s.ideal_period = SecondsToSim(period_s);
  s.update_exec = MillisToSim(exec_ms);
  s.phase = SecondsToSim(phase_s);
  return s;
}

TEST(EngineTest, SingleQuerySucceedsWithExactResponseTime) {
  Workload w = BuildWorkload(2, 10.0, {{1.0, 50.0, 5.0, {0}}});
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.submitted, 1);
  EXPECT_EQ(m.counts.success, 1);
  EXPECT_EQ(m.counts.dmf, 0);
  ASSERT_EQ(policy.resolved.size(), 1u);
  EXPECT_EQ(policy.resolved[0].outcome, Outcome::kSuccess);
  // No contention: response time == execution time.
  EXPECT_NEAR(m.query_response_s.mean(), 0.050, 1e-9);
  EXPECT_NEAR(m.busy_s, 0.050, 1e-9);
}

TEST(EngineTest, QueryMissingDeadlineIsAbortedAsDmf) {
  // 300ms of work but only a 100ms deadline.
  Workload w = BuildWorkload(1, 10.0, {{1.0, 300.0, 0.1, {0}}});
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.dmf, 1);
  EXPECT_EQ(m.counts.success, 0);
  // The CPU ran the query until its firm deadline, then gave up.
  EXPECT_NEAR(m.busy_s, 0.100, 1e-9);
}

TEST(EngineTest, RejectedQueryNeverRuns) {
  Workload w = BuildWorkload(1, 10.0, {{1.0, 50.0, 5.0, {0}}});
  FakePolicy policy;
  policy.admit = [](EngineContext&, const Transaction&) { return false; };
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.rejected, 1);
  EXPECT_EQ(m.counts.success, 0);
  EXPECT_DOUBLE_EQ(m.busy_s, 0.0);
  ASSERT_EQ(policy.resolved.size(), 1u);
  EXPECT_EQ(policy.resolved[0].outcome, Outcome::kRejected);
}

TEST(EngineTest, StaleReadFailsAsDsf) {
  // A source generates at t=0 and every 1s, but no periodic updates are
  // applied (policy disables them), so the query reads stale data.
  Workload w = BuildWorkload(1, 10.0, {{2.0, 50.0, 5.0, {0}}},
                             {Source(0, 1.0, 10.0)});
  FakePolicy policy;
  policy.periodic_updates = false;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.dsf, 1);
  EXPECT_EQ(m.counts.success, 0);
  EXPECT_LT(m.query_freshness.mean(), 0.9);
}

TEST(EngineTest, PeriodicUpdatesKeepDataFresh) {
  Workload w = BuildWorkload(1, 10.0, {{2.5, 50.0, 5.0, {0}}},
                             {Source(0, 1.0, 10.0)});
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 1);
  EXPECT_DOUBLE_EQ(m.query_freshness.mean(), 1.0);
  // Updates at t = 0,1,...,9 (arrival at 10 is outside the duration).
  EXPECT_EQ(m.update_commits, 10);
  EXPECT_EQ(policy.update_commits, 10);
  EXPECT_EQ(policy.source_arrivals, 10);
}

TEST(EngineTest, StretchedPeriodDropsArrivals) {
  Workload w = BuildWorkload(1, 10.0, {}, {Source(0, 1.0, 10.0)});
  FakePolicy policy;
  bool stretched = false;
  policy.on_source_arrival = [&](EngineContext& e, ItemId item) {
    if (!stretched) {
      // Apply one update, then stretch the period 4x.
      e.db().SetCurrentPeriod(item, SecondsToSim(4.0));
      stretched = true;
    }
  };
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  // Arrivals at t=0..9; applications at t=0,4,8 (every 4th generation).
  EXPECT_EQ(policy.source_arrivals, 10);
  EXPECT_EQ(m.update_commits, 3);
  EXPECT_EQ(m.updates_dropped, 7);
}

TEST(EngineTest, UpdatePreemptsRunningQueryWorkConserving) {
  // Query starts at t=0 with 500ms of work; an update source fires at
  // t=0.1s. The update (higher class) preempts; total busy time is exactly
  // the sum of demands and the query still commits in time.
  Workload w = BuildWorkload(2, 10.0, {{0.0, 500.0, 5.0, {1}}},
                             {Source(0, 100.0, 50.0, 0.1)});
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 1);
  EXPECT_EQ(m.update_commits, 1);
  EXPECT_GE(m.preemptions, 1);
  // Query committed after its own 0.5s plus the 50ms preemption.
  EXPECT_NEAR(m.query_response_s.mean(), 0.550, 1e-6);
  EXPECT_NEAR(m.busy_s, 0.550, 1e-6);
}

TEST(EngineTest, TwoPlHpRestartsReaderOnWriteConflict) {
  // The query reads item 0 (the updated item) and takes 500ms; the update
  // arrives mid-flight, aborts the reader (2PL-HP), and the reader restarts
  // from scratch. Response = 50ms (update) + 500ms (full re-run) ... from
  // the query's arrival at t=0 to commit at 0.1+0.05+0.5 = 0.65s.
  Workload w = BuildWorkload(1, 10.0, {{0.0, 500.0, 5.0, {0}, 0.9}},
                             {Source(0, 100.0, 50.0, 0.1)});
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 1);
  EXPECT_EQ(m.lock_restarts, 1);
  EXPECT_NEAR(m.query_response_s.mean(), 0.650, 1e-6);
  // 100ms of the query's first run was wasted by the restart.
  EXPECT_NEAR(m.busy_s, 0.100 + 0.050 + 0.500, 1e-6);
}

TEST(EngineTest, EdfOrdersQueuedQueries) {
  // Three queries arrive while the first is running; they must finish in
  // deadline order, not arrival order.
  Workload w = BuildWorkload(4, 10.0,
                             {{0.0, 300.0, 9.0, {0}},
                              {0.1, 100.0, 8.0, {1}},    // latest deadline
                              {0.15, 100.0, 2.0, {2}},   // earliest deadline
                              {0.2, 100.0, 5.0, {3}}});
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 4);
  std::vector<TxnId> order;
  for (const auto& r : policy.resolved) order.push_back(r.id);
  // Txn ids follow arrival order here (0,1,2,3); EDF must run 2 before 3
  // before 1 once the head query finishes... the head (0) has deadline 9s
  // but runs first non-preemptively among queries w.r.t. later arrivals
  // only if it stays highest priority. Query 2 (deadline 2.15s) preempts.
  EXPECT_EQ(order.front(), 2);
  EXPECT_EQ(order.back(), 0);
}

TEST(EngineTest, OnDemandUpdateRefreshesItem) {
  Workload w = BuildWorkload(1, 10.0, {{2.0, 50.0, 5.0, {0}}},
                             {Source(0, 1.0, 10.0)});
  FakePolicy policy;
  policy.periodic_updates = false;
  policy.before_dispatch = [](EngineContext& e, Transaction& q) {
    bool issued = false;
    for (ItemId item : q.items()) {
      if (e.db().Freshness(item, e.now()) < q.freshness_req() &&
          e.PendingUpdatesForItem(item) == 0) {
        e.IssueOnDemandUpdate(item);
        issued = true;
      }
    }
    return !issued;
  };
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 1);
  EXPECT_EQ(m.on_demand_updates, 1);
  EXPECT_DOUBLE_EQ(m.query_freshness.mean(), 1.0);
}

TEST(EngineTest, ControlTicksFireAtConfiguredPeriod) {
  Workload w = BuildWorkload(1, 10.0, {});
  FakePolicy policy;
  EngineParams params;
  params.control_period = SecondsToSim(1.0);
  Engine engine(w, &policy, params);
  engine.Run();
  // Ticks at t = 1..10 inclusive.
  EXPECT_EQ(policy.control_ticks, 10);
}

TEST(EngineTest, CountsAreConserved) {
  std::vector<QuerySpec> queries;
  for (int i = 0; i < 200; ++i) {
    queries.push_back({0.01 * i, 40.0, 0.5 + 0.01 * (i % 7), {i % 8}});
  }
  Workload w = BuildWorkload(8, 20.0, queries,
                             {Source(0, 0.5, 20.0), Source(3, 0.2, 30.0)});
  FakePolicy policy;
  int rejections = 0;
  policy.admit = [&](EngineContext&, const Transaction& q) {
    return (q.id() % 5) != 0 || (++rejections, false);
  };
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.submitted, 200);
  EXPECT_EQ(m.counts.resolved(), 200);
  EXPECT_EQ(m.counts.rejected, rejections);
  EXPECT_EQ(m.counts.success + m.counts.rejected + m.counts.dmf +
                m.counts.dsf,
            200);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  std::vector<QuerySpec> queries;
  for (int i = 0; i < 100; ++i) {
    queries.push_back({0.05 * i, 30.0 + i % 17, 1.0 + (i % 5), {i % 16}});
  }
  Workload w = BuildWorkload(16, 20.0, queries,
                             {Source(1, 0.3, 25.0), Source(5, 0.7, 45.0)});
  auto run = [&w] {
    FakePolicy policy;
    Engine engine(w, &policy, {});
    return engine.Run();
  };
  RunMetrics a = run();
  RunMetrics b = run();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.lock_restarts, b.lock_restarts);
  EXPECT_DOUBLE_EQ(a.busy_s, b.busy_s);
  EXPECT_EQ(a.per_item_applied_updates, b.per_item_applied_updates);
}

TEST(EngineTest, UtilizationNeverExceedsOne) {
  std::vector<QuerySpec> queries;
  for (int i = 0; i < 300; ++i) {
    queries.push_back({0.01 * i, 100.0, 2.0, {i % 4}});
  }
  Workload w = BuildWorkload(4, 10.0, queries, {Source(0, 0.1, 50.0)});
  FakePolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_GT(m.Utilization(), 0.6);  // heavily loaded
  // Work can drain past the workload duration, so normalize by busy time's
  // own span instead: busy time cannot exceed the last commit instant.
  EXPECT_LE(m.busy_s, m.duration_s + 3.0);
}

TEST(EngineTest, FreshnessEvaluatedAtCommitOverWholeReadSet) {
  // Item 0 fresh (updated), item 1 stale: min rule makes the query DSF.
  Workload w = BuildWorkload(2, 10.0, {{2.5, 50.0, 5.0, {0, 1}}},
                             {Source(0, 1.0, 10.0), Source(1, 1.0, 10.0)});
  FakePolicy policy;
  policy.on_source_arrival = [](EngineContext& e, ItemId item) {
    if (item == 1) e.db().SetCurrentPeriod(1, SecondsToSim(1000.0));
  };
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.dsf, 1);
}

TEST(EngineTest, EstimateNoiseAltersEstimatesOnly) {
  Workload w = BuildWorkload(1, 10.0, {{1.0, 50.0, 5.0, {0}}});
  FakePolicy policy;
  SimDuration seen_estimate = 0;
  policy.admit = [&](EngineContext&, const Transaction& q) {
    seen_estimate = q.estimate();
    return true;
  };
  EngineParams params;
  params.estimate_noise_sigma = 0.5;
  params.seed = 9;
  Engine engine(w, &policy, params);
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.success, 1);
  EXPECT_NE(seen_estimate, MillisToSim(50.0));
  // True demand unchanged.
  EXPECT_NEAR(m.busy_s, 0.050, 1e-9);
}

}  // namespace
}  // namespace unitdb
