// Randomized engine stress: arbitrary small workloads (random read sets,
// deadlines, update sources, policy quirks) must always terminate with
// conserved outcomes and sane accounting — the core invariants, checked far
// from the tuned evaluation workloads.

#include <gtest/gtest.h>

#include <string>

#include "testing/fake_policy.h"
#include "unit/common/rng.h"
#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/sched/engine.h"
#include "unit/workload/spec.h"

namespace unitdb {
namespace {

using testing_support::FakePolicy;

Workload RandomWorkload(uint64_t seed) {
  Rng rng(seed);
  Workload w;
  w.num_items = 1 + static_cast<int>(rng.UniformInt(0, 15));
  w.duration = SecondsToSim(rng.Uniform(1.0, 30.0));

  const int n_queries = static_cast<int>(rng.UniformInt(0, 120));
  for (int i = 0; i < n_queries; ++i) {
    QueryRequest q;
    q.id = i;
    q.arrival = static_cast<SimTime>(
        rng.Uniform(0.0, static_cast<double>(w.duration - 1)));
    q.exec = std::max<SimDuration>(1, MillisToSim(rng.Uniform(0.1, 400.0)));
    q.relative_deadline =
        std::max<SimDuration>(1, MillisToSim(rng.Uniform(1.0, 8000.0)));
    q.freshness_req = rng.Uniform(0.0, 1.0);
    const int n_items = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int k = 0; k < n_items; ++k) {
      q.items.push_back(
          static_cast<ItemId>(rng.UniformInt(0, w.num_items - 1)));
    }
    q.preference_class = static_cast<int>(rng.UniformInt(0, 2));
    w.queries.push_back(std::move(q));
  }
  std::sort(w.queries.begin(), w.queries.end(),
            [](const QueryRequest& a, const QueryRequest& b) {
              return a.arrival < b.arrival;
            });

  std::vector<bool> used(w.num_items, false);
  const int n_sources = static_cast<int>(rng.UniformInt(0, w.num_items));
  for (int k = 0; k < n_sources; ++k) {
    const ItemId item = static_cast<ItemId>(rng.UniformInt(0, w.num_items - 1));
    if (used[item]) continue;
    used[item] = true;
    ItemUpdateSpec s;
    s.item = item;
    s.ideal_period =
        std::max<SimDuration>(1, MillisToSim(rng.Uniform(50.0, 20000.0)));
    s.update_exec =
        std::max<SimDuration>(1, MillisToSim(rng.Uniform(0.5, 500.0)));
    s.phase = static_cast<SimTime>(
        rng.Uniform(0.0, static_cast<double>(s.ideal_period)));
    w.updates.push_back(s);
  }
  return w;
}

class EngineRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineRandomTest, InvariantsHoldOnArbitraryWorkloads) {
  const Workload w = RandomWorkload(GetParam());
  Rng decision_rng(GetParam() * 7 + 1);
  FakePolicy policy;
  // Random admission decisions and occasional on-demand refreshes make the
  // run exercise every outcome path.
  policy.admit = [&decision_rng](EngineContext&, const Transaction&) {
    return !decision_rng.Bernoulli(0.15);
  };
  policy.before_dispatch = [&decision_rng](EngineContext& e, Transaction& q) {
    if (q.refresh_rounds() >= e.params().max_refresh_rounds) return true;
    if (!decision_rng.Bernoulli(0.1)) return true;
    bool issued = false;
    for (ItemId item : q.items()) {
      if (e.PendingUpdatesForItem(item) == 0 &&
          e.db().item(item).ideal_period < kNoUpdates) {
        e.IssueOnDemandUpdate(item);
        issued = true;
      }
    }
    if (issued) q.IncrementRefreshRounds();
    return !issued;
  };

  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();

  // Conservation.
  EXPECT_EQ(m.counts.submitted, static_cast<int64_t>(w.queries.size()));
  EXPECT_EQ(m.counts.resolved(), m.counts.submitted);
  EXPECT_EQ(static_cast<int64_t>(policy.resolved.size()), m.counts.submitted);

  // Per-class partition sums to the aggregate.
  OutcomeCounts sum;
  for (const auto& c : m.per_class_counts) {
    sum.submitted += c.submitted;
    sum.success += c.success;
    sum.rejected += c.rejected;
    sum.dmf += c.dmf;
    sum.dsf += c.dsf;
  }
  EXPECT_EQ(sum, m.counts);

  // Update accounting: every created transaction commits.
  EXPECT_EQ(m.update_commits, m.updates_generated);
  int64_t applied = 0;
  for (int64_t a : m.per_item_applied_updates) applied += a;
  EXPECT_EQ(applied, m.update_commits);

  // Physics.
  EXPECT_GE(m.busy_s, 0.0);
  if (m.query_freshness.count() > 0) {
    EXPECT_GT(m.query_freshness.min(), 0.0);
    EXPECT_LE(m.query_freshness.max(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

/// A seed-derived scenario sized to whatever RandomWorkload produced: a
/// load-step always; an outage and a burst only when the workload has an
/// update source for them to act on.
StatusOr<FaultSchedule> RandomScenario(const Workload& w, uint64_t seed) {
  const double duration_s = SimToSeconds(w.duration);
  Rng rng(seed * 31 + 7);
  std::string text =
      "fault0.kind = load-step\n"
      "fault0.start_s = " + std::to_string(0.25 * duration_s) + "\n"
      "fault0.end_s = " + std::to_string(0.75 * duration_s) + "\n"
      "fault0.rate_hz = " + std::to_string(rng.Uniform(1.0, 30.0)) + "\n";
  if (!w.updates.empty()) {
    text +=
        "fault1.kind = update-outage\n"
        "fault1.start_s = " + std::to_string(0.3 * duration_s) + "\n"
        "fault1.end_s = " + std::to_string(0.5 * duration_s) + "\n"
        "fault1.items = *\n"
        "fault2.kind = update-burst\n"
        "fault2.start_s = " + std::to_string(0.55 * duration_s) + "\n"
        "fault2.end_s = " + std::to_string(0.7 * duration_s) + "\n"
        "fault2.items = *\n"
        "fault2.rate_hz = " + std::to_string(rng.Uniform(0.5, 5.0)) + "\n";
  }
  auto spec = FaultScenarioSpec::Parse(text);
  if (!spec.ok()) return spec.status();
  return FaultSchedule::Compile(*spec, w, seed);
}

TEST_P(EngineRandomTest, InvariantsHoldUnderRandomFaults) {
  const Workload w = RandomWorkload(GetParam());
  auto faults = RandomScenario(w, GetParam());
  ASSERT_TRUE(faults.ok()) << faults.status().ToString();

  Rng decision_rng(GetParam() * 7 + 1);
  FakePolicy policy;
  policy.admit = [&decision_rng](EngineContext&, const Transaction&) {
    return !decision_rng.Bernoulli(0.15);
  };

  EngineParams params;
  params.faults = &*faults;
  Engine engine(w, &policy, params);
  RunMetrics m = engine.Run();

  // Conservation now includes the injected load: every arrival — workload
  // or fault-injected — is resolved exactly once.
  EXPECT_EQ(m.fault_injected_queries,
            static_cast<int64_t>(faults->injected_queries().size()));
  EXPECT_EQ(m.counts.submitted,
            static_cast<int64_t>(w.queries.size()) + m.fault_injected_queries);
  EXPECT_EQ(m.counts.resolved(), m.counts.submitted);
  EXPECT_EQ(static_cast<int64_t>(policy.resolved.size()), m.counts.submitted);

  // Update accounting: bursts add transactions, outages suppress deliveries
  // before a transaction is created — generated always equals committed.
  EXPECT_EQ(m.update_commits, m.updates_generated);
  EXPECT_GE(m.fault_suppressed_updates, 0);
  if (w.updates.empty()) {
    EXPECT_EQ(m.fault_injected_updates, 0);
    EXPECT_EQ(m.fault_suppressed_updates, 0);
  }

  // Every compiled edge fired: windows were clamped to the run at compile
  // time, so none can be lost off the end.
  EXPECT_EQ(m.fault_edges,
            static_cast<int64_t>(2 * faults->spec().faults.size()));

  EXPECT_GE(m.busy_s, 0.0);
  if (m.query_freshness.count() > 0) {
    EXPECT_GT(m.query_freshness.min(), 0.0);
    EXPECT_LE(m.query_freshness.max(), 1.0);
  }
}

}  // namespace
}  // namespace unitdb
