#include <gtest/gtest.h>

#include <cstdio>

#include "unit/sim/experiment.h"
#include "unit/sim/server.h"
#include "unit/workload/trace_io.h"

namespace unitdb {
namespace {

TEST(EndToEndTest, AllFourPoliciesRunTheStandardWorkload) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 0.25, 42);
  ASSERT_TRUE(w.ok());
  auto results = RunPolicies(*w, {"unit", "imu", "odu", "qmf"}, UsmWeights{});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 4u);
  for (const auto& r : *results) {
    EXPECT_EQ(r.metrics.counts.resolved(), r.metrics.counts.submitted)
        << r.policy;
    EXPECT_GE(r.usm, -3.0);
    EXPECT_LE(r.usm, 1.0);
    EXPECT_DOUBLE_EQ(r.usm, r.breakdown.Value());
  }
}

TEST(EndToEndTest, UnknownPolicyFails) {
  auto w = MakeStandardWorkload(UpdateVolume::kLow,
                                UpdateDistribution::kUniform, 0.05, 1);
  ASSERT_TRUE(w.ok());
  auto result = RunExperiment(*w, "definitely-not-a-policy", UsmWeights{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EndToEndTest, ServerFactoryKnowsAllPolicies) {
  auto w = MakeStandardWorkload(UpdateVolume::kLow,
                                UpdateDistribution::kUniform, 0.05, 1);
  ASSERT_TRUE(w.ok());
  for (const auto& name : KnownPolicies()) {
    Server::Config config;
    config.policy = name;
    auto server = Server::Create(*w, config);
    ASSERT_TRUE(server.ok()) << name;
    RunMetrics m = (*server)->Run();
    EXPECT_EQ(m.counts.resolved(), m.counts.submitted) << name;
  }
}

TEST(EndToEndTest, SavedTraceReproducesIdenticalResults) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kNegative, 0.1, 5);
  ASSERT_TRUE(w.ok());
  const std::string path = ::testing::TempDir() + "/unitdb_e2e_trace.csv";
  ASSERT_TRUE(SaveWorkload(*w, path).ok());
  auto loaded = LoadWorkload(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  auto a = RunExperiment(*w, "unit", UsmWeights{});
  auto b = RunExperiment(*loaded, "unit", UsmWeights{});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->metrics.counts, b->metrics.counts);
  EXPECT_EQ(a->metrics.update_commits, b->metrics.update_commits);
  EXPECT_DOUBLE_EQ(a->usm, b->usm);
}

TEST(EndToEndTest, UnitBeatsImuAndQmfOnMediumUniform) {
  // The paper's headline comparison at the default evaluation point.
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0, 42);
  ASSERT_TRUE(w.ok());
  auto results = RunPolicies(*w, {"unit", "imu", "qmf"}, UsmWeights{});
  ASSERT_TRUE(results.ok());
  const double unit = (*results)[0].usm;
  EXPECT_GT(unit, (*results)[1].usm);
  EXPECT_GT(unit, (*results)[2].usm);
}

TEST(EndToEndTest, ImuCollapsesUnderHighUpdateVolume) {
  auto w = MakeStandardWorkload(UpdateVolume::kHigh,
                                UpdateDistribution::kUniform, 0.5, 42);
  ASSERT_TRUE(w.ok());
  auto results = RunPolicies(*w, {"unit", "imu"}, UsmWeights{});
  ASSERT_TRUE(results.ok());
  EXPECT_LT((*results)[1].usm, 0.1);           // IMU near zero
  EXPECT_GT((*results)[0].usm, (*results)[1].usm + 0.3);  // UNIT far above
}

TEST(EndToEndTest, BaselinesIgnoreUsmWeights) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 0.1, 42);
  ASSERT_TRUE(w.ok());
  for (const char* policy : {"imu", "odu", "qmf"}) {
    auto naive = RunExperiment(*w, policy, UsmWeights{});
    auto weighted = RunExperiment(*w, policy, UsmWeights{1.0, 4.0, 2.0, 2.0});
    ASSERT_TRUE(naive.ok() && weighted.ok());
    EXPECT_EQ(naive->metrics.counts, weighted->metrics.counts) << policy;
  }
}

TEST(EndToEndTest, ComponentAblationsBracketFullUnit) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0, 42);
  ASSERT_TRUE(w.ok());
  auto results =
      RunPolicies(*w, {"unit", "unit-noac", "unit-noum", "unit-bare"},
                  UsmWeights{});
  ASSERT_TRUE(results.ok());
  const double full = (*results)[0].usm;
  const double bare = (*results)[3].usm;
  EXPECT_GT(full, bare);
  // Each single component alone helps over bare.
  EXPECT_GT((*results)[1].usm, bare - 0.02);
  EXPECT_GT((*results)[2].usm, bare - 0.02);
}

TEST(EndToEndTest, Table2WeightSetsAreWellFormed) {
  for (const auto& nw : Table2WeightsBelowOne()) {
    EXPECT_FALSE(nw.weights.AllZeroPenalties());
    EXPECT_LT(std::max({nw.weights.c_r, nw.weights.c_fm, nw.weights.c_fs}),
              1.0);
  }
  for (const auto& nw : Table2WeightsAboveOne()) {
    EXPECT_GT(std::max({nw.weights.c_r, nw.weights.c_fm, nw.weights.c_fs}),
              1.0);
  }
  EXPECT_EQ(Table2WeightsBelowOne().size(), 3u);
  EXPECT_EQ(Table2WeightsAboveOne().size(), 3u);
}

}  // namespace
}  // namespace unitdb
