// Property-style sweeps over (policy x volume x distribution x seed): the
// invariants every run of the system must satisfy, regardless of parameters.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

using PropertyParams =
    std::tuple<std::string, UpdateVolume, UpdateDistribution, uint64_t>;

class RunInvariantsTest : public ::testing::TestWithParam<PropertyParams> {
 protected:
  ExperimentResult Run() {
    const auto& [policy, volume, dist, seed] = GetParam();
    auto w = MakeStandardWorkload(volume, dist, /*scale=*/0.15, seed);
    EXPECT_TRUE(w.ok());
    workload_ = *w;
    auto r = RunExperiment(workload_, policy, UsmWeights{1.0, 0.5, 1.0, 0.5});
    EXPECT_TRUE(r.ok());
    return *r;
  }

  Workload workload_;
};

TEST_P(RunInvariantsTest, OutcomesAreConserved) {
  ExperimentResult r = Run();
  const OutcomeCounts& c = r.metrics.counts;
  EXPECT_EQ(c.submitted, static_cast<int64_t>(workload_.queries.size()));
  EXPECT_EQ(c.success + c.rejected + c.dmf + c.dsf, c.submitted);
}

TEST_P(RunInvariantsTest, UsmWithinTheoreticalRange) {
  ExperimentResult r = Run();
  // USM lies in [-max penalty, gain] (Section 2.3.2 of the paper).
  EXPECT_LE(r.usm, r.weights.gain + 1e-12);
  EXPECT_GE(r.usm, -(r.weights.Range() - r.weights.gain) - 1e-12);
}

TEST_P(RunInvariantsTest, FreshnessObservationsAreValid) {
  ExperimentResult r = Run();
  if (r.metrics.query_freshness.count() > 0) {
    EXPECT_GT(r.metrics.query_freshness.min(), 0.0);
    EXPECT_LE(r.metrics.query_freshness.max(), 1.0);
  }
}

TEST_P(RunInvariantsTest, ResponseTimesRespectDeadlines) {
  ExperimentResult r = Run();
  if (r.metrics.query_response_s.count() > 0) {
    EXPECT_GT(r.metrics.query_response_s.min(), 0.0);
    // Committed queries never outlive the longest relative deadline.
    double max_deadline_s = 0.0;
    for (const auto& q : workload_.queries) {
      max_deadline_s =
          std::max(max_deadline_s, SimToSeconds(q.relative_deadline));
    }
    EXPECT_LE(r.metrics.query_response_s.max(), max_deadline_s + 1e-6);
  }
}

TEST_P(RunInvariantsTest, CpuAccountingIsSane) {
  ExperimentResult r = Run();
  EXPECT_GE(r.metrics.busy_s, 0.0);
  // The CPU cannot do more work than wall-clock time permits. Work may
  // drain past the arrival horizon: under the worst offered load in the
  // sweep (150% updates + queries) the backlog at the horizon is under one
  // extra duration.
  EXPECT_LE(r.metrics.busy_s, 2.0 * r.metrics.duration_s);
}

TEST_P(RunInvariantsTest, UpdateAccountingBalances) {
  ExperimentResult r = Run();
  // Applications + sheds never exceed what the sources offered, plus any
  // on-demand refreshes the policy issued.
  EXPECT_LE(r.metrics.update_commits,
            workload_.TotalSourceUpdates() + r.metrics.on_demand_updates);
  EXPECT_EQ(r.metrics.update_commits, r.metrics.updates_generated);
  int64_t applied_total = 0;
  for (int64_t a : r.metrics.per_item_applied_updates) applied_total += a;
  EXPECT_EQ(applied_total, r.metrics.update_commits);
}

TEST_P(RunInvariantsTest, PerItemAccessesMatchCommittedReads) {
  ExperimentResult r = Run();
  int64_t access_total = 0;
  for (int64_t a : r.metrics.per_item_accesses) access_total += a;
  // Every committed (success or DSF) query contributes >= 1 item access;
  // rejected/DMF queries contribute none.
  const int64_t committed = r.metrics.counts.success + r.metrics.counts.dsf;
  EXPECT_GE(access_total, committed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RunInvariantsTest,
    ::testing::Combine(
        ::testing::Values(std::string("unit"), std::string("imu"),
                          std::string("odu"), std::string("qmf")),
        ::testing::Values(UpdateVolume::kLow, UpdateVolume::kMedium,
                          UpdateVolume::kHigh),
        ::testing::Values(UpdateDistribution::kUniform,
                          UpdateDistribution::kPositive,
                          UpdateDistribution::kNegative),
        ::testing::Values(42u, 1234u)),
    [](const ::testing::TestParamInfo<PropertyParams>& param_info) {
      return std::get<0>(param_info.param) + "_" +
             UpdateVolumeName(std::get<1>(param_info.param)) + "_" +
             UpdateDistributionName(std::get<2>(param_info.param)) + "_s" +
             std::to_string(std::get<3>(param_info.param));
    });

// Determinism is checked separately on a smaller sweep (it doubles runs).
class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalMetrics) {
  const std::string policy = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 0.1, seed);
  ASSERT_TRUE(w.ok());
  auto a = RunExperiment(*w, policy, UsmWeights{});
  auto b = RunExperiment(*w, policy, UsmWeights{});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->metrics.counts, b->metrics.counts);
  EXPECT_EQ(a->metrics.update_commits, b->metrics.update_commits);
  EXPECT_EQ(a->metrics.preemptions, b->metrics.preemptions);
  EXPECT_EQ(a->metrics.lock_restarts, b->metrics.lock_restarts);
  EXPECT_DOUBLE_EQ(a->metrics.busy_s, b->metrics.busy_s);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeterminismTest,
    ::testing::Combine(::testing::Values(std::string("unit"),
                                         std::string("imu"),
                                         std::string("odu"),
                                         std::string("qmf")),
                       ::testing::Values(42u, 7u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>&
           param_info) {
      return std::get<0>(param_info.param) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

// The paper's headline ordering — UNIT's USM at least matches both naive
// baselines on every Table 1 cell — must survive when the nine cells are
// swept through the parallel grid runner at reduced scale. The ordering is
// a penalty-regime claim (Fig. 5): under naive zero-penalty weights ODU's
// free deadline misses can outscore UNIT on high-volume traces, so the
// sweep pins the high-Cfm weighting, where deadline misses are priciest.
// Below scale ~0.6 UNIT's feedback controllers have not converged and the
// ordering genuinely breaks; 0.6 is the smallest sturdy scale.
TEST(GridPropertyTest, UnitAtLeastMatchesImuAndOduOnEveryTable1Cell) {
  GridSpec spec;  // default axes: the full Table 1 trace grid
  spec.policies = {"unit", "imu", "odu"};
  spec.weightings = {{"high-Cfm", UsmWeights{1.0, 0.2, 0.8, 0.2}}};
  spec.scale = 0.6;
  auto grid = RunGrid(spec, /*jobs=*/4);
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid->size(), 27u);  // 9 traces x 3 policies
  for (size_t t = 0; t < 9; ++t) {
    double unit = 0.0, imu = 0.0, odu = 0.0;
    std::string trace;
    for (size_t p = 0; p < 3; ++p) {
      const GridCellResult& cell = (*grid)[t * 3 + p];
      trace = cell.result.trace;
      const double usm = cell.result.usm.mean();
      if (cell.result.policy == "unit") unit = usm;
      if (cell.result.policy == "imu") imu = usm;
      if (cell.result.policy == "odu") odu = usm;
    }
    // Wins-or-ties slack, as the full-scale figure pins use.
    EXPECT_GE(unit, imu - 0.01) << trace;
    EXPECT_GE(unit, odu - 0.01) << trace;
  }
}

}  // namespace
}  // namespace unitdb
