// Regression pins on the reproduced figures' *shapes* (EXPERIMENTS.md):
// the qualitative orderings the paper reports must survive refactoring.
// These run the real evaluation workloads (scale 1.0 where the shape needs
// the full trace, smaller where it doesn't).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

std::map<std::string, double> RunCell(UpdateVolume volume,
                                      UpdateDistribution dist,
                                      const UsmWeights& weights = {}) {
  auto w = MakeStandardWorkload(volume, dist, 1.0, 42);
  EXPECT_TRUE(w.ok());
  auto results =
      RunPolicies(*w, {"unit", "imu", "odu", "qmf"}, weights);
  EXPECT_TRUE(results.ok());
  std::map<std::string, double> usm;
  for (const auto& r : *results) usm[r.policy] = r.usm;
  return usm;
}

TEST(FigureShapeTest, Fig4MedUnif_UnitWinsQmfTrailsOdu) {
  auto usm = RunCell(UpdateVolume::kMedium, UpdateDistribution::kUniform);
  EXPECT_GT(usm["unit"], usm["imu"]);
  EXPECT_GT(usm["unit"], usm["qmf"]);
  EXPECT_GT(usm["unit"], usm["odu"] - 0.01);  // wins or ties
  EXPECT_GT(usm["odu"], usm["qmf"]);          // "QMF worse than ODU"
}

TEST(FigureShapeTest, Fig4HighVolume_ImuCollapses) {
  for (UpdateDistribution dist :
       {UpdateDistribution::kUniform, UpdateDistribution::kPositive,
        UpdateDistribution::kNegative}) {
    auto usm = RunCell(UpdateVolume::kHigh, dist);
    EXPECT_LT(usm["imu"], 0.05) << UpdateDistributionName(dist);
    EXPECT_GT(usm["unit"], usm["imu"] + 0.1) << UpdateDistributionName(dist);
  }
}

TEST(FigureShapeTest, Fig4MedPos_ImuApproachesOdu) {
  auto usm = RunCell(UpdateVolume::kMedium, UpdateDistribution::kPositive);
  // "IMU performs almost identical to ODU" under positive correlation.
  EXPECT_NEAR(usm["imu"], usm["odu"], 0.05);
}

TEST(FigureShapeTest, Fig4Neg_OduCloseToUnit) {
  for (UpdateVolume volume :
       {UpdateVolume::kLow, UpdateVolume::kMedium, UpdateVolume::kHigh}) {
    auto usm = RunCell(volume, UpdateDistribution::kNegative);
    EXPECT_NEAR(usm["unit"], usm["odu"], 0.02) << UpdateVolumeName(volume);
  }
}

TEST(FigureShapeTest, Fig4LowVolume_UnitLeads) {
  for (UpdateDistribution dist :
       {UpdateDistribution::kUniform, UpdateDistribution::kPositive}) {
    auto usm = RunCell(UpdateVolume::kLow, dist);
    EXPECT_GE(usm["unit"], usm["imu"] - 0.005) << UpdateDistributionName(dist);
    EXPECT_GE(usm["unit"], usm["odu"] - 0.005) << UpdateDistributionName(dist);
    EXPECT_GE(usm["unit"], usm["qmf"] - 0.005) << UpdateDistributionName(dist);
  }
}

TEST(FigureShapeTest, Fig5UnitStableAcrossWeightRegimes) {
  double lo = 1e9, hi = -1e9;
  for (const auto& nw : Table2WeightsBelowOne()) {
    auto usm = RunCell(UpdateVolume::kMedium, UpdateDistribution::kUniform,
                       nw.weights);
    lo = std::min(lo, usm["unit"]);
    hi = std::max(hi, usm["unit"]);
    // UNIT beats IMU and QMF in every weighting.
    EXPECT_GT(usm["unit"], usm["imu"]) << nw.name;
    EXPECT_GT(usm["unit"], usm["qmf"]) << nw.name;
  }
  EXPECT_LT(hi - lo, 0.15);  // the paper's stability claim
}

TEST(FigureShapeTest, Fig6UnitShiftsFailureMixWithWeights) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0, 42);
  ASSERT_TRUE(w.ok());
  auto high_cr = RunExperiment(*w, "unit", UsmWeights{1.0, 0.8, 0.2, 0.2});
  auto high_cfm = RunExperiment(*w, "unit", UsmWeights{1.0, 0.2, 0.8, 0.2});
  ASSERT_TRUE(high_cr.ok() && high_cfm.ok());
  // Rejections smallest when rejections are priciest; DMF smallest when
  // deadline misses are priciest.
  EXPECT_LT(high_cr->metrics.counts.RejectionRatio(),
            high_cfm->metrics.counts.RejectionRatio());
  EXPECT_LT(high_cfm->metrics.counts.DmfRatio(),
            high_cr->metrics.counts.DmfRatio());
}

TEST(FigureShapeTest, QmfRejectionShareIsLargestAmongBaselines) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0, 42);
  ASSERT_TRUE(w.ok());
  auto qmf = RunExperiment(*w, "qmf", UsmWeights{});
  auto imu = RunExperiment(*w, "imu", UsmWeights{});
  auto odu = RunExperiment(*w, "odu", UsmWeights{});
  ASSERT_TRUE(qmf.ok() && imu.ok() && odu.ok());
  EXPECT_GT(qmf->metrics.counts.RejectionRatio(), 0.1);
  EXPECT_EQ(imu->metrics.counts.rejected, 0);
  EXPECT_EQ(odu->metrics.counts.rejected, 0);
}

TEST(FigureShapeTest, Fig3UnitFollowsQueryDistribution) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kNegative, 1.0, 42);
  ASSERT_TRUE(w.ok());
  auto r = RunExperiment(*w, "unit", UsmWeights{});
  ASSERT_TRUE(r.ok());
  const auto src = w->SourceUpdateCounts();
  const auto accesses = w->QueryAccessCounts();
  double kept_hot = 0, src_hot = 0, kept_cold = 0, src_cold = 0;
  for (int i = 0; i < w->num_items; ++i) {
    if (accesses[i] > 0) {
      kept_hot += static_cast<double>(r->metrics.per_item_applied_updates[i]);
      src_hot += static_cast<double>(src[i]);
    } else {
      kept_cold +=
          static_cast<double>(r->metrics.per_item_applied_updates[i]);
      src_cold += static_cast<double>(src[i]);
    }
  }
  ASSERT_GT(src_hot, 0);
  ASSERT_GT(src_cold, 0);
  // med-neg: queried items keep (nearly) everything, unqueried items lose
  // most of their updates (paper: >95% dropped overall).
  EXPECT_GT(kept_hot / src_hot, 0.9);
  EXPECT_LT(kept_cold / src_cold, 0.3);
}

TEST(FigureShapeTest, UnitRobustToNoisyExecutionEstimates) {
  // The paper assumes monitored average execution times; real estimates are
  // noisy. UNIT's USM must degrade gracefully under 30% lognormal noise.
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0, 42);
  ASSERT_TRUE(w.ok());
  auto exact = RunExperiment(*w, "unit", UsmWeights{});
  EngineParams noisy;
  noisy.estimate_noise_sigma = 0.3;
  auto noised = RunExperiment(*w, "unit", UsmWeights{}, noisy);
  ASSERT_TRUE(exact.ok() && noised.ok());
  EXPECT_GT(noised->usm, exact->usm - 0.05);
}

}  // namespace
}  // namespace unitdb
