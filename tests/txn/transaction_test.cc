#include "unit/txn/transaction.h"

#include <gtest/gtest.h>

namespace unitdb {
namespace {

TEST(TransactionTest, QueryFactorySetsEverything) {
  Transaction t = Transaction::MakeQuery(7, SecondsToSim(1.0),
                                         MillisToSim(50.0), SecondsToSim(2.0),
                                         0.9, {3, 1});
  EXPECT_EQ(t.id(), 7);
  EXPECT_TRUE(t.is_query());
  EXPECT_FALSE(t.is_update());
  EXPECT_EQ(t.arrival(), SecondsToSim(1.0));
  EXPECT_EQ(t.exec_time(), MillisToSim(50.0));
  EXPECT_EQ(t.relative_deadline(), SecondsToSim(2.0));
  EXPECT_EQ(t.absolute_deadline(), SecondsToSim(3.0));
  EXPECT_DOUBLE_EQ(t.freshness_req(), 0.9);
  EXPECT_EQ(t.items(), (std::vector<ItemId>{3, 1}));
  EXPECT_EQ(t.state(), TxnState::kCreated);
  EXPECT_EQ(t.outcome(), Outcome::kPending);
  EXPECT_EQ(t.remaining(), t.exec_time());
  EXPECT_EQ(t.estimate(), t.exec_time());
  EXPECT_FALSE(t.holds_locks());
  EXPECT_FALSE(t.Terminal());
}

TEST(TransactionTest, UpdateFactory) {
  Transaction t = Transaction::MakeUpdate(9, SecondsToSim(2.0),
                                          MillisToSim(30.0),
                                          SecondsToSim(5.0), 4, true);
  EXPECT_TRUE(t.is_update());
  EXPECT_EQ(t.update_item(), 4);
  EXPECT_TRUE(t.on_demand());
  EXPECT_EQ(t.items().size(), 1u);
}

TEST(TransactionTest, CpuUtilizationShare) {
  Transaction t = Transaction::MakeQuery(1, 0, MillisToSim(100.0),
                                         SecondsToSim(1.0), 0.9, {0});
  EXPECT_NEAR(t.CpuUtilizationShare(), 0.1, 1e-9);
  t.set_estimate(MillisToSim(500.0));
  EXPECT_NEAR(t.CpuUtilizationShare(), 0.5, 1e-9);
}

TEST(TransactionTest, WorkAccounting) {
  Transaction t = Transaction::MakeQuery(1, 0, MillisToSim(100.0),
                                         SecondsToSim(1.0), 0.9, {0});
  t.set_remaining(MillisToSim(40.0));
  EXPECT_EQ(t.remaining(), MillisToSim(40.0));
  t.ResetWork();
  EXPECT_EQ(t.remaining(), MillisToSim(100.0));
  EXPECT_EQ(t.restarts(), 0);
  t.IncrementRestarts();
  EXPECT_EQ(t.restarts(), 1);
}

TEST(TransactionTest, DispatchGenerationInvalidation) {
  Transaction t = Transaction::MakeQuery(1, 0, MillisToSim(10.0),
                                         SecondsToSim(1.0), 0.9, {0});
  const uint64_t g0 = t.dispatch_generation();
  t.BumpDispatchGeneration();
  EXPECT_EQ(t.dispatch_generation(), g0 + 1);
}

TEST(TransactionTest, TerminalStates) {
  Transaction t = Transaction::MakeQuery(1, 0, MillisToSim(10.0),
                                         SecondsToSim(1.0), 0.9, {0});
  t.set_state(TxnState::kRunning);
  EXPECT_FALSE(t.Terminal());
  t.set_state(TxnState::kCommitted);
  EXPECT_TRUE(t.Terminal());
  t.set_state(TxnState::kAborted);
  EXPECT_TRUE(t.Terminal());
}

TEST(OutcomeTest, Names) {
  EXPECT_STREQ(OutcomeName(Outcome::kSuccess), "success");
  EXPECT_STREQ(OutcomeName(Outcome::kRejected), "rejected");
  EXPECT_STREQ(OutcomeName(Outcome::kDeadlineMiss), "dmf");
  EXPECT_STREQ(OutcomeName(Outcome::kDataStale), "dsf");
  EXPECT_STREQ(OutcomeName(Outcome::kPending), "pending");
}

TEST(OutcomeCountsTest, Arithmetic) {
  OutcomeCounts a{10, 5, 1, 2, 1};
  OutcomeCounts b{4, 2, 1, 1, 0};
  OutcomeCounts d = a - b;
  EXPECT_EQ(d.submitted, 6);
  EXPECT_EQ(d.success, 3);
  EXPECT_EQ(d.rejected, 0);
  EXPECT_EQ(d.dmf, 1);
  EXPECT_EQ(d.dsf, 1);
  EXPECT_EQ(d.resolved(), 5);
}

TEST(TimeConversionTest, RoundTrips) {
  EXPECT_EQ(SecondsToSim(1.5), 1500000);
  EXPECT_EQ(MillisToSim(2.5), 2500);
  EXPECT_DOUBLE_EQ(SimToSeconds(SecondsToSim(3.25)), 3.25);
}

}  // namespace
}  // namespace unitdb
