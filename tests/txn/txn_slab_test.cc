#include "unit/txn/txn_slab.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "unit/common/rng.h"
#include "unit/txn/transaction.h"

namespace unitdb {
namespace {

Transaction Query(TxnId id) {
  return Transaction::MakeQuery(id, /*arrival=*/id, /*exec=*/10,
                                /*relative_deadline=*/100,
                                /*freshness_req=*/0.9, {ItemId{0}});
}

TEST(TxnSlabTest, CreateStampsAResolvableHandle) {
  TxnSlab slab;
  Transaction* t = slab.Create(Query(1));
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->id(), 1);
  EXPECT_EQ(slab.Get(t->slab_handle()), t);
  EXPECT_EQ(slab.live(), 1);
  EXPECT_EQ(slab.high_water(), 1);
  EXPECT_EQ(slab.slots_created(), 1);
}

TEST(TxnSlabTest, ReleaseInvalidatesTheHandle) {
  TxnSlab slab;
  Transaction* t = slab.Create(Query(1));
  const int64_t handle = t->slab_handle();
  slab.Release(t);
  EXPECT_EQ(slab.Get(handle), nullptr);
  EXPECT_EQ(slab.live(), 0);
  EXPECT_EQ(slab.released(), 1);
}

TEST(TxnSlabTest, ReusedSlotRejectsTheStaleGeneration) {
  TxnSlab slab;
  Transaction* a = slab.Create(Query(1));
  const int64_t stale = a->slab_handle();
  slab.Release(a);
  Transaction* b = slab.Create(Query(2));
  // Same slot, new generation: the old handle must not resolve to b.
  EXPECT_EQ(slab.slots_created(), 1);
  EXPECT_NE(b->slab_handle(), stale);
  EXPECT_EQ(slab.Get(stale), nullptr);
  EXPECT_EQ(slab.Get(b->slab_handle()), b);
  EXPECT_EQ(b->id(), 2);
}

TEST(TxnSlabTest, PackUnpackRoundTripsIndexAndGeneration) {
  const TxnSlot slot{/*index=*/123456u, /*generation=*/0xDEADBEEFu};
  const TxnSlot back = TxnSlot::Unpack(slot.Pack());
  EXPECT_EQ(back.index, slot.index);
  EXPECT_EQ(back.generation, slot.generation);
}

TEST(TxnSlabTest, PointersStayStableAcrossChunkGrowth) {
  TxnSlab slab;
  std::vector<Transaction*> ptrs;
  // Cross several 256-slot chunk boundaries without releasing anything.
  for (TxnId id = 0; id < 1000; ++id) ptrs.push_back(slab.Create(Query(id)));
  for (TxnId id = 0; id < 1000; ++id) {
    EXPECT_EQ(ptrs[id]->id(), id);
    EXPECT_EQ(slab.Get(ptrs[id]->slab_handle()), ptrs[id]);
  }
  EXPECT_EQ(slab.high_water(), 1000);
}

// The memory-flat property: footprint tracks peak live population, not the
// total number of transactions pushed through the slab. Growing the workload
// 10x must not grow slots_created at all when the live bound is unchanged.
TEST(TxnSlabTest, HighWaterStaysBoundedUnderTenfoldChurn) {
  constexpr int kMaxLive = 32;
  for (const int total : {2000, 20000}) {
    TxnSlab slab;
    Rng rng(99);
    std::vector<Transaction*> live;
    for (TxnId id = 0; id < total; ++id) {
      live.push_back(slab.Create(Query(id)));
      if (static_cast<int>(live.size()) == kMaxLive) {
        const size_t pick =
            static_cast<size_t>(rng.UniformInt(0, kMaxLive - 1));
        slab.Release(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    EXPECT_LE(slab.high_water(), kMaxLive);
    EXPECT_EQ(slab.slots_created(), slab.high_water());
    EXPECT_EQ(slab.released() + slab.live(), total);
  }
}

// Randomized churn: interleave creates and releases, tracking every handle
// ever minted. Live handles must resolve to the right transaction; every
// retired handle must resolve to nullptr even after its slot is reused.
TEST(TxnSlabTest, RandomChurnNeverResolvesAStaleHandle) {
  TxnSlab slab;
  Rng rng(7);
  std::unordered_map<int64_t, TxnId> live;     // handle -> expected id
  std::vector<int64_t> stale_handles;
  TxnId next_id = 0;
  for (int step = 0; step < 50000; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      Transaction* t = slab.Create(Query(next_id));
      live[t->slab_handle()] = next_id;
      ++next_id;
    } else {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      Transaction* t = slab.Get(it->first);
      ASSERT_NE(t, nullptr);
      ASSERT_EQ(t->id(), it->second);
      slab.Release(t);
      stale_handles.push_back(it->first);
      live.erase(it);
    }
  }
  for (const auto& [handle, id] : live) {
    Transaction* t = slab.Get(handle);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->id(), id);
  }
  for (const int64_t handle : stale_handles) {
    EXPECT_EQ(slab.Get(handle), nullptr);
  }
  EXPECT_EQ(slab.live(), static_cast<int64_t>(live.size()));
  EXPECT_EQ(slab.high_water(), slab.slots_created());
}

}  // namespace
}  // namespace unitdb
