#ifndef UNIT_TESTS_TESTING_FAKE_POLICY_H_
#define UNIT_TESTS_TESTING_FAKE_POLICY_H_

#include <functional>
#include <string>
#include <vector>

#include "unit/core/policy.h"
#include "unit/txn/outcome.h"

namespace unitdb::testing_support {

/// Scriptable policy for engine tests: every hook can be overridden with a
/// std::function; unset hooks fall back to the Policy defaults (admit all,
/// periodic updates). Also records every resolved query outcome.
class FakePolicy : public Policy {
 public:
  std::string name() const override { return "fake"; }

  bool UsesPeriodicUpdates() const override { return periodic_updates; }

  bool AdmitQuery(EngineContext& engine, const Transaction& query) override {
    if (admit) return admit(engine, query);
    return true;
  }

  bool BeforeQueryDispatch(EngineContext& engine, Transaction& query) override {
    if (before_dispatch) return before_dispatch(engine, query);
    return true;
  }

  void OnQueryResolved(EngineContext& engine, const Transaction& query,
                       Outcome outcome) override {
    resolved.push_back({query.id(), outcome});
    if (on_resolved) on_resolved(engine, query, outcome);
  }

  void OnUpdateCommit(EngineContext& engine, const Transaction& update) override {
    ++update_commits;
    if (on_update_commit) on_update_commit(engine, update);
  }

  void OnUpdateSourceArrival(EngineContext& engine, ItemId item) override {
    ++source_arrivals;
    if (on_source_arrival) on_source_arrival(engine, item);
  }

  void OnControlTick(EngineContext& engine) override {
    ++control_ticks;
    if (on_tick) on_tick(engine);
  }

  // Scriptable hooks.
  std::function<bool(EngineContext&, const Transaction&)> admit;
  std::function<bool(EngineContext&, Transaction&)> before_dispatch;
  std::function<void(EngineContext&, const Transaction&, Outcome)> on_resolved;
  std::function<void(EngineContext&, const Transaction&)> on_update_commit;
  std::function<void(EngineContext&, ItemId)> on_source_arrival;
  std::function<void(EngineContext&)> on_tick;
  bool periodic_updates = true;

  // Recorded observations.
  struct Resolved {
    TxnId id;
    Outcome outcome;
  };
  std::vector<Resolved> resolved;
  int update_commits = 0;
  int source_arrivals = 0;
  int control_ticks = 0;
};

}  // namespace unitdb::testing_support

#endif  // UNIT_TESTS_TESTING_FAKE_POLICY_H_
