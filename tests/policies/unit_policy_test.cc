#include "unit/core/policies/unit_policy.h"

#include <gtest/gtest.h>

#include "unit/core/policies/imu.h"
#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

Workload StandardWorkload(UpdateVolume volume, UpdateDistribution dist,
                          double scale = 0.25) {
  auto w = MakeStandardWorkload(volume, dist, scale, /*seed=*/42);
  EXPECT_TRUE(w.ok());
  return *w;
}

RunMetrics RunUnit(const Workload& w, UnitPolicy& policy) {
  Engine engine(w, &policy, {});
  return engine.Run();
}

TEST(UnitPolicyTest, ResolvesEveryQuery) {
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform);
  UnitPolicy policy((UsmWeights()));
  RunMetrics m = RunUnit(w, policy);
  EXPECT_EQ(m.counts.resolved(), m.counts.submitted);
  EXPECT_GT(m.counts.success, 0);
}

TEST(UnitPolicyTest, BeatsImuOnMediumUniform) {
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0);
  UnitPolicy unit((UsmWeights()));
  ImuPolicy imu;
  Engine e1(w, &unit, {});
  Engine e2(w, &imu, {});
  const double unit_usm = e1.Run().counts.SuccessRatio();
  const double imu_usm = e2.Run().counts.SuccessRatio();
  EXPECT_GT(unit_usm, imu_usm + 0.05);
}

TEST(UnitPolicyTest, ShedsUpdateLoadUnderPressure) {
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0);
  UnitPolicy policy((UsmWeights()));
  RunMetrics m = RunUnit(w, policy);
  // A large share of the offered update stream must be shed.
  EXPECT_GT(m.updates_dropped, w.TotalSourceUpdates() / 4);
  EXPECT_GT(policy.modulator().total_picks(), 0);
  EXPECT_GT(policy.signals(ControlSignal::kDegradeAndTighten), 0);
}

TEST(UnitPolicyTest, ShedsColdItemsMoreThanHotOnes) {
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0);
  UnitPolicy policy((UsmWeights()));
  RunMetrics m = RunUnit(w, policy);
  auto src = w.SourceUpdateCounts();
  auto accesses = w.QueryAccessCounts();
  double hot_keep_num = 0, hot_keep_den = 0, cold_keep_num = 0,
         cold_keep_den = 0;
  for (int i = 0; i < w.num_items; ++i) {
    if (src[i] == 0) continue;
    if (accesses[i] >= 20) {
      hot_keep_num += static_cast<double>(m.per_item_applied_updates[i]);
      hot_keep_den += static_cast<double>(src[i]);
    } else if (accesses[i] == 0) {
      cold_keep_num += static_cast<double>(m.per_item_applied_updates[i]);
      cold_keep_den += static_cast<double>(src[i]);
    }
  }
  ASSERT_GT(hot_keep_den, 0);
  ASSERT_GT(cold_keep_den, 0);
  // Keep-rate of hot (frequently queried) items must exceed cold items'.
  EXPECT_GT(hot_keep_num / hot_keep_den, 1.5 * cold_keep_num / cold_keep_den);
}

TEST(UnitPolicyTest, AdmissionControlRejectsUnderOverload) {
  Workload w = StandardWorkload(UpdateVolume::kHigh,
                                UpdateDistribution::kPositive, 1.0);
  UnitPolicy policy((UsmWeights()));
  RunMetrics m = RunUnit(w, policy);
  EXPECT_GT(m.counts.rejected, 0);
  EXPECT_GT(policy.admission().rejected_by_deadline() +
                policy.admission().rejected_by_usm(),
            0);
}

TEST(UnitPolicyTest, NoAdmissionControlAblationNeverRejects) {
  Workload w = StandardWorkload(UpdateVolume::kHigh,
                                UpdateDistribution::kUniform);
  UnitParams params;
  params.enable_admission_control = false;
  UnitPolicy policy(UsmWeights{}, params);
  RunMetrics m = RunUnit(w, policy);
  EXPECT_EQ(m.counts.rejected, 0);
}

TEST(UnitPolicyTest, NoModulationAblationAppliesEverything) {
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform);
  UnitParams params;
  params.enable_update_modulation = false;
  UnitPolicy policy(UsmWeights{}, params);
  RunMetrics m = RunUnit(w, policy);
  EXPECT_EQ(m.updates_dropped, 0);
  EXPECT_EQ(m.update_commits, w.TotalSourceUpdates());
}

TEST(UnitPolicyTest, WeightsSteerTheOutcomeMix) {
  // A punishing rejection cost should push UNIT to reject less than a
  // punishing DMF cost does.
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0);
  UnitPolicy high_cr(UsmWeights{1.0, 4.0, 2.0, 2.0});
  UnitPolicy high_cfm(UsmWeights{1.0, 2.0, 4.0, 2.0});
  Engine e1(w, &high_cr, {});
  Engine e2(w, &high_cfm, {});
  RunMetrics m_cr = e1.Run();
  RunMetrics m_cfm = e2.Run();
  EXPECT_LT(m_cr.counts.RejectionRatio(), m_cfm.counts.RejectionRatio());
}

TEST(UnitPolicyTest, StableUsmAcrossWeightSettings) {
  // The paper's Section 4.4 headline: UNIT's USM stays in a tight band even
  // when the penalty structure changes drastically.
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0);
  double lo = 1e9, hi = -1e9;
  for (const auto& nw : Table2WeightsBelowOne()) {
    UnitPolicy policy(nw.weights);
    Engine engine(w, &policy, {});
    const double usm = UsmAverage(engine.Run().counts, nw.weights);
    lo = std::min(lo, usm);
    hi = std::max(hi, usm);
  }
  EXPECT_LT(hi - lo, 0.35);
  EXPECT_GT(lo, 0.0);
}

TEST(UnitPolicyTest, DeterministicRun) {
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kNegative);
  UnitPolicy p1((UsmWeights())), p2((UsmWeights()));
  Engine e1(w, &p1, {}), e2(w, &p2, {});
  RunMetrics a = e1.Run(), b = e2.Run();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.update_commits, b.update_commits);
  EXPECT_EQ(a.updates_dropped, b.updates_dropped);
}

}  // namespace
}  // namespace unitdb
