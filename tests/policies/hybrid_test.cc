#include "unit/core/policies/hybrid.h"

#include <gtest/gtest.h>

#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

Workload StandardWorkload(UpdateVolume volume, UpdateDistribution dist,
                          double scale = 0.25) {
  auto w = MakeStandardWorkload(volume, dist, scale, /*seed=*/42);
  EXPECT_TRUE(w.ok());
  return *w;
}

TEST(HybridPolicyTest, ResolvesEveryQuery) {
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform);
  HybridPolicy policy((UsmWeights()));
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.resolved(), m.counts.submitted);
}

TEST(HybridPolicyTest, IssuesJustInTimeRepairs) {
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0);
  HybridPolicy policy((UsmWeights()));
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_GT(policy.repairs_issued(), 0);
  EXPECT_GT(m.on_demand_updates, 0);
}

TEST(HybridPolicyTest, NearZeroStaleFailures) {
  // The just-in-time repair is exactly a staleness eliminator.
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0);
  HybridPolicy policy((UsmWeights()));
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_LT(m.counts.DsfRatio(), 0.01);
}

TEST(HybridPolicyTest, AtLeastMatchesPlainUnit) {
  Workload w = StandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 1.0);
  HybridPolicy hybrid((UsmWeights()));
  Engine e1(w, &hybrid, {});
  const double hybrid_usm =
      UsmAverage(e1.Run().counts, UsmWeights{});
  auto unit = RunExperiment(w, "unit", UsmWeights{});
  ASSERT_TRUE(unit.ok());
  EXPECT_GE(hybrid_usm, unit->usm - 0.01);
}

TEST(HybridPolicyTest, ClosesTheHighPosGapToOdu) {
  // The Fig. 4 deviation (EXPERIMENTS.md): plain UNIT trails ODU badly at
  // high-pos (0.17 vs 0.32); the hybrid must land within a few points.
  Workload w = StandardWorkload(UpdateVolume::kHigh,
                                UpdateDistribution::kPositive, 1.0);
  auto results =
      RunPolicies(w, {"unit-hybrid", "odu", "unit"}, UsmWeights{});
  ASSERT_TRUE(results.ok());
  EXPECT_GE((*results)[0].usm, (*results)[1].usm - 0.05);  // ~ ODU
  EXPECT_GT((*results)[0].usm, (*results)[2].usm + 0.05);  // >> plain UNIT
}

TEST(HybridPolicyTest, AvailableFromTheFactory) {
  Workload w = StandardWorkload(UpdateVolume::kLow,
                                UpdateDistribution::kUniform, 0.05);
  auto r = RunExperiment(w, "unit-hybrid", UsmWeights{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->policy, "unit-hybrid");
}

}  // namespace
}  // namespace unitdb
