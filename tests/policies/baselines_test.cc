#include <gtest/gtest.h>

#include "unit/core/policies/imu.h"
#include "unit/core/policies/odu.h"
#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

Workload SmallStandardWorkload(UpdateVolume volume) {
  auto w = MakeStandardWorkload(volume, UpdateDistribution::kUniform,
                                /*scale=*/0.1, /*seed=*/21);
  EXPECT_TRUE(w.ok());
  return *w;
}

TEST(ImuPolicyTest, AppliesEveryUpdateAndNeverRejects) {
  Workload w = SmallStandardWorkload(UpdateVolume::kLow);
  ImuPolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.rejected, 0);
  EXPECT_EQ(m.updates_dropped, 0);
  EXPECT_EQ(m.update_commits, w.TotalSourceUpdates());
  // Immediate updates: perfect freshness, zero DSF.
  EXPECT_EQ(m.counts.dsf, 0);
}

TEST(ImuPolicyTest, UpdateLoadStarvesQueriesAtHighVolume) {
  Workload low = SmallStandardWorkload(UpdateVolume::kLow);
  Workload high = SmallStandardWorkload(UpdateVolume::kHigh);
  ImuPolicy p1, p2;
  Engine e1(low, &p1, {});
  Engine e2(high, &p2, {});
  const double low_success = e1.Run().counts.SuccessRatio();
  const double high_success = e2.Run().counts.SuccessRatio();
  EXPECT_GT(low_success, high_success + 0.3);
  EXPECT_LT(high_success, 0.2);
}

TEST(OduPolicyTest, NoPeriodicUpdatesOnlyOnDemand) {
  Workload w = SmallStandardWorkload(UpdateVolume::kMedium);
  OduPolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.rejected, 0);
  // Every executed update was an on-demand refresh.
  EXPECT_EQ(m.update_commits, m.on_demand_updates);
  EXPECT_GT(policy.refreshes_issued(), 0);
  // On-demand refreshing applies far fewer updates than the source offers.
  EXPECT_LT(m.update_commits, w.TotalSourceUpdates() / 2);
}

TEST(OduPolicyTest, KeepsFreshnessHigh) {
  Workload w = SmallStandardWorkload(UpdateVolume::kMedium);
  OduPolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  // ODU refreshes before reading: almost no data-stale failures.
  EXPECT_LT(m.counts.DsfRatio(), 0.03);
}

TEST(OduPolicyTest, DedupeReducesRefreshes) {
  Workload w = SmallStandardWorkload(UpdateVolume::kMedium);
  OduPolicy dedup(/*dedupe_in_flight=*/true);
  OduPolicy nodedup(/*dedupe_in_flight=*/false);
  Engine e1(w, &dedup, {});
  Engine e2(w, &nodedup, {});
  RunMetrics m1 = e1.Run();
  RunMetrics m2 = e2.Run();
  EXPECT_LE(m1.on_demand_updates, m2.on_demand_updates);
}

TEST(OduPolicyTest, OutperformsImuUnderHeavyUpdateLoad) {
  Workload w = SmallStandardWorkload(UpdateVolume::kHigh);
  OduPolicy odu;
  ImuPolicy imu;
  Engine e1(w, &odu, {});
  Engine e2(w, &imu, {});
  EXPECT_GT(e1.Run().counts.SuccessRatio(), e2.Run().counts.SuccessRatio());
}

TEST(OduPolicyTest, RefreshRoundsAreBounded) {
  Workload w = SmallStandardWorkload(UpdateVolume::kMedium);
  OduPolicy policy;
  EngineParams params;
  params.max_refresh_rounds = 1;
  Engine engine(w, &policy, params);
  RunMetrics m = engine.Run();
  // Still terminates and resolves everything.
  EXPECT_EQ(m.counts.resolved(), m.counts.submitted);
}

}  // namespace
}  // namespace unitdb
