#include "unit/core/policies/qmf.h"

#include <gtest/gtest.h>

#include "unit/core/policies/imu.h"
#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

Workload StandardWorkload(UpdateVolume volume, double scale = 0.25) {
  auto w = MakeStandardWorkload(volume, UpdateDistribution::kUniform, scale,
                                /*seed=*/42);
  EXPECT_TRUE(w.ok());
  return *w;
}

TEST(QmfPolicyTest, ResolvesEveryQuery) {
  Workload w = StandardWorkload(UpdateVolume::kMedium);
  QmfPolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_EQ(m.counts.resolved(), m.counts.submitted);
}

TEST(QmfPolicyTest, BudgetRejectsDuringBursts) {
  Workload w = StandardWorkload(UpdateVolume::kMedium, 1.0);
  QmfPolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_GT(m.counts.rejected, 0);
  EXPECT_GT(policy.budget_rejections(), 0);
}

TEST(QmfPolicyTest, DegradesUpdatesWhenOverloaded) {
  Workload w = StandardWorkload(UpdateVolume::kHigh, 1.0);
  QmfPolicy policy;
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_GT(m.updates_dropped, 0);
}

TEST(QmfPolicyTest, KeepsEverythingWhenIdle) {
  // A lightly loaded system should neither reject nor shed updates much.
  auto w = MakeStandardWorkload(UpdateVolume::kLow,
                                UpdateDistribution::kUniform, 0.25, 7);
  ASSERT_TRUE(w.ok());
  QmfPolicy policy;
  Engine engine(*w, &policy, {});
  RunMetrics m = engine.Run();
  EXPECT_LT(m.counts.RejectionRatio(), 0.25);
  EXPECT_LT(static_cast<double>(m.updates_dropped),
            0.5 * static_cast<double>(w->TotalSourceUpdates()));
}

TEST(QmfPolicyTest, RejectsMoreAggressivelyThanImuMisses) {
  // The paper's observation: QMF trades rejections for a low miss ratio
  // among admitted queries.
  Workload w = StandardWorkload(UpdateVolume::kMedium, 1.0);
  QmfPolicy qmf;
  Engine e(w, &qmf, {});
  RunMetrics m = e.Run();
  const double admitted =
      static_cast<double>(m.counts.submitted - m.counts.rejected);
  const double miss_ratio_admitted =
      admitted > 0 ? static_cast<double>(m.counts.dmf) / admitted : 0.0;
  ImuPolicy imu;
  Engine e2(w, &imu, {});
  RunMetrics m2 = e2.Run();
  EXPECT_LT(miss_ratio_admitted, m2.counts.DmfRatio());
  EXPECT_GT(m.counts.RejectionRatio(), m2.counts.RejectionRatio());
}

TEST(QmfPolicyTest, BudgetStaysWithinBounds) {
  Workload w = StandardWorkload(UpdateVolume::kHigh, 0.5);
  QmfParams params;
  params.min_budget = 0.05;
  params.max_budget = 1.5;
  QmfPolicy policy(params);
  Engine engine(w, &policy, {});
  engine.Run();
  EXPECT_GE(policy.budget(), 0.05);
  EXPECT_LE(policy.budget(), 1.5);
}

TEST(QmfPolicyTest, WeightInsensitivity) {
  // QMF ignores USM weights entirely: identical runs regardless.
  Workload w = StandardWorkload(UpdateVolume::kMedium);
  QmfPolicy p1, p2;
  Engine e1(w, &p1, {}), e2(w, &p2, {});
  RunMetrics a = e1.Run(), b = e2.Run();
  EXPECT_EQ(a.counts, b.counts);
}

}  // namespace
}  // namespace unitdb
