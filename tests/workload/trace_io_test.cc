#include "unit/workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "unit/workload/query_trace.h"
#include "unit/workload/update_trace.h"

namespace unitdb {
namespace {

Workload SampleWorkload() {
  QueryTraceParams qp;
  qp.num_items = 32;
  qp.duration = SecondsToSim(60.0);
  qp.seed = 5;
  auto w = GenerateQueryTrace(qp);
  EXPECT_TRUE(w.ok());
  UpdateTraceParams up;
  up.seed = 6;
  EXPECT_TRUE(GenerateUpdateTrace(up, *w).ok());
  return *w;
}

void ExpectEqualWorkloads(const Workload& a, const Workload& b) {
  EXPECT_EQ(a.num_items, b.num_items);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.query_trace_name, b.query_trace_name);
  EXPECT_EQ(a.update_trace_name, b.update_trace_name);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].id, b.queries[i].id);
    EXPECT_EQ(a.queries[i].arrival, b.queries[i].arrival);
    EXPECT_EQ(a.queries[i].exec, b.queries[i].exec);
    EXPECT_EQ(a.queries[i].relative_deadline, b.queries[i].relative_deadline);
    EXPECT_DOUBLE_EQ(a.queries[i].freshness_req, b.queries[i].freshness_req);
    EXPECT_EQ(a.queries[i].items, b.queries[i].items);
  }
  ASSERT_EQ(a.updates.size(), b.updates.size());
  for (size_t i = 0; i < a.updates.size(); ++i) {
    EXPECT_EQ(a.updates[i].item, b.updates[i].item);
    EXPECT_EQ(a.updates[i].ideal_period, b.updates[i].ideal_period);
    EXPECT_EQ(a.updates[i].update_exec, b.updates[i].update_exec);
    EXPECT_EQ(a.updates[i].phase, b.updates[i].phase);
  }
}

TEST(TraceIoTest, CsvRoundTripIsLossless) {
  Workload w = SampleWorkload();
  auto back = WorkloadFromCsv(WorkloadToCsv(w));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectEqualWorkloads(w, *back);
}

TEST(TraceIoTest, FileRoundTrip) {
  Workload w = SampleWorkload();
  const std::string path = ::testing::TempDir() + "/unitdb_trace_test.csv";
  ASSERT_TRUE(SaveWorkload(w, path).ok());
  auto back = LoadWorkload(path);
  ASSERT_TRUE(back.ok());
  ExpectEqualWorkloads(w, *back);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingMetaRowFails) {
  auto w = WorkloadFromCsv("Q,0,0,1000,2000,0.9,1\n");
  EXPECT_FALSE(w.ok());
}

TEST(TraceIoTest, UnknownTagFails) {
  auto w = WorkloadFromCsv("M,4,1000000,a,b\nZ,1,2\n");
  EXPECT_FALSE(w.ok());
}

TEST(TraceIoTest, MalformedQueryRowFails) {
  EXPECT_FALSE(WorkloadFromCsv("M,4,1000000,a,b\nQ,0,0,1000\n").ok());
  EXPECT_FALSE(
      WorkloadFromCsv("M,4,1000000,a,b\nQ,x,0,1000,2000,0.9,1\n").ok());
  EXPECT_FALSE(
      WorkloadFromCsv("M,4,1000000,a,b\nQ,0,0,1000,2000,0.9,\n").ok());
}

TEST(TraceIoTest, MalformedUpdateRowFails) {
  EXPECT_FALSE(WorkloadFromCsv("M,4,1000000,a,b\nU,1,2\n").ok());
  EXPECT_FALSE(WorkloadFromCsv("M,4,1000000,a,b\nU,1,abc,3,4\n").ok());
}

TEST(TraceIoTest, ParsesMinimalDocument) {
  auto w = WorkloadFromCsv(
      "M,4,1000000,cello-like,med-unif\n"
      "Q,0,5,1000,2000,0.9,1;3\n"
      "U,2,500000,7000,100\n");
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_items, 4);
  EXPECT_EQ(w->duration, 1000000);
  ASSERT_EQ(w->queries.size(), 1u);
  EXPECT_EQ(w->queries[0].items, (std::vector<ItemId>{1, 3}));
  ASSERT_EQ(w->updates.size(), 1u);
  EXPECT_EQ(w->updates[0].item, 2);
  EXPECT_EQ(w->updates[0].phase, 100);
}

TEST(TraceIoTest, NamesWithCommasSurviveQuoting) {
  Workload w;
  w.num_items = 1;
  w.duration = 1;
  w.query_trace_name = "weird,name";
  w.update_trace_name = "with \"quotes\"";
  auto back = WorkloadFromCsv(WorkloadToCsv(w));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->query_trace_name, "weird,name");
  EXPECT_EQ(back->update_trace_name, "with \"quotes\"");
}

TEST(TraceIoTest, WorkloadAccountingHelpers) {
  Workload w;
  w.num_items = 2;
  w.duration = SecondsToSim(10.0);
  ItemUpdateSpec u;
  u.item = 0;
  u.ideal_period = SecondsToSim(1.0);
  u.update_exec = MillisToSim(100.0);
  u.phase = 0;
  w.updates.push_back(u);
  // Generations at t=0..9: ten updates, each 0.1s -> 10% utilization.
  EXPECT_EQ(w.TotalSourceUpdates(), 10);
  EXPECT_NEAR(w.UpdateUtilization(), 0.10, 1e-9);
  EXPECT_EQ(w.SourceUpdateCounts()[0], 10);
  EXPECT_EQ(w.SourceUpdateCounts()[1], 0);
}

}  // namespace
}  // namespace unitdb
