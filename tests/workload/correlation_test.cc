#include "unit/workload/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "unit/common/stats.h"

namespace unitdb {
namespace {

std::vector<int64_t> ZipfishCounts(int n, Rng& rng) {
  std::vector<int64_t> counts(n);
  for (int i = 0; i < n; ++i) {
    counts[i] = static_cast<int64_t>(5000.0 / std::pow(i + 1, 1.1)) +
                rng.UniformInt(0, 2);
  }
  return counts;
}

std::vector<double> ToDouble(const std::vector<int64_t>& v) {
  return std::vector<double>(v.begin(), v.end());
}

TEST(CorrelatedWeightsTest, RejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_FALSE(CorrelatedWeights({}, 0.8, rng).ok());
  EXPECT_FALSE(CorrelatedWeights({5}, 0.8, rng).ok());
  EXPECT_FALSE(CorrelatedWeights({3, 3, 3}, 0.8, rng).ok());
  EXPECT_FALSE(CorrelatedWeights({1, 2, 3}, 1.5, rng).ok());
}

TEST(CorrelatedWeightsTest, WeightsAreNormalizedAndNonNegative) {
  Rng rng(2);
  auto counts = ZipfishCounts(256, rng);
  auto w = CorrelatedWeights(counts, 0.8, rng);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->size(), counts.size());
  double sum = 0.0;
  for (double x : *w) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

class CorrelatedWeightsTargetTest : public ::testing::TestWithParam<double> {};

TEST_P(CorrelatedWeightsTargetTest, HitsTargetCorrelation) {
  const double target = GetParam();
  Rng rng(3);
  auto counts = ZipfishCounts(512, rng);
  auto w = CorrelatedWeights(counts, target, rng);
  ASSERT_TRUE(w.ok());
  const double rho = SpearmanCorrelation(*w, ToDouble(counts));
  EXPECT_NEAR(rho, target, 0.1) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, CorrelatedWeightsTargetTest,
                         ::testing::Values(0.8, 0.5, 0.3, -0.3, -0.5, -0.8));

TEST(CorrelatedWeightsTest, ZeroTargetIsUncorrelated) {
  Rng rng(4);
  auto counts = ZipfishCounts(512, rng);
  auto w = CorrelatedWeights(counts, 0.0, rng);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(SpearmanCorrelation(*w, ToDouble(counts)), 0.0, 0.15);
}

TEST(CorrelatedWeightsTest, NegativeTargetInvertsRankOrder) {
  Rng rng(5);
  auto counts = ZipfishCounts(128, rng);
  auto w = CorrelatedWeights(counts, -0.8, rng);
  ASSERT_TRUE(w.ok());
  // The most-referenced item should carry far less weight than the median.
  double median = 0.0;
  std::vector<double> sorted = *w;
  std::nth_element(sorted.begin(), sorted.begin() + 64, sorted.end());
  median = sorted[64];
  EXPECT_LT((*w)[0], median);
}

TEST(CorrelatedWeightsTest, DeterministicGivenRngState) {
  Rng a(6), b(6);
  auto counts = ZipfishCounts(64, a);
  Rng a2(7), b2(7);
  auto wa = CorrelatedWeights(counts, 0.8, a2);
  auto wb = CorrelatedWeights(counts, 0.8, b2);
  ASSERT_TRUE(wa.ok() && wb.ok());
  EXPECT_EQ(*wa, *wb);
}

}  // namespace
}  // namespace unitdb
