#include "unit/workload/update_trace.h"

#include <gtest/gtest.h>

#include <tuple>

#include "unit/common/stats.h"
#include "unit/workload/query_trace.h"

namespace unitdb {
namespace {

Workload BaseWorkload() {
  QueryTraceParams p;
  p.num_items = 256;
  p.duration = SecondsToSim(500.0);
  p.seed = 11;
  auto w = GenerateQueryTrace(p);
  EXPECT_TRUE(w.ok());
  return *w;
}

TEST(UpdateTraceTest, NamesFollowTable1) {
  UpdateTraceParams p;
  p.volume = UpdateVolume::kLow;
  p.distribution = UpdateDistribution::kUniform;
  EXPECT_EQ(UpdateTraceName(p), "low-unif");
  p.volume = UpdateVolume::kHigh;
  p.distribution = UpdateDistribution::kNegative;
  EXPECT_EQ(UpdateTraceName(p), "high-neg");
  p.volume = UpdateVolume::kMedium;
  p.distribution = UpdateDistribution::kPositive;
  EXPECT_EQ(UpdateTraceName(p), "med-pos");
}

TEST(UpdateTraceTest, CanonicalUtilizations) {
  EXPECT_DOUBLE_EQ(VolumeUtilization(UpdateVolume::kLow), 0.15);
  EXPECT_DOUBLE_EQ(VolumeUtilization(UpdateVolume::kMedium), 0.75);
  EXPECT_DOUBLE_EQ(VolumeUtilization(UpdateVolume::kHigh), 1.50);
}

TEST(UpdateTraceTest, ValidatesInput) {
  Workload w = BaseWorkload();
  UpdateTraceParams p;
  p.exec_lo_ms = -1;
  EXPECT_FALSE(GenerateUpdateTrace(p, w).ok());
  p = UpdateTraceParams{};
  p.utilization_override = 0.0;
  // 0.0 is "not overridden"; negative utilization cannot be expressed, and
  // the volume default applies.
  EXPECT_TRUE(GenerateUpdateTrace(p, w).ok());
  Workload empty;
  p = UpdateTraceParams{};
  EXPECT_FALSE(GenerateUpdateTrace(p, empty).ok());
}

TEST(UpdateTraceTest, CorrelatedTraceNeedsQueries) {
  Workload w;
  w.num_items = 16;
  w.duration = SecondsToSim(100.0);
  UpdateTraceParams p;
  p.distribution = UpdateDistribution::kPositive;
  EXPECT_FALSE(GenerateUpdateTrace(p, w).ok());
  // Uniform works without queries.
  p.distribution = UpdateDistribution::kUniform;
  EXPECT_TRUE(GenerateUpdateTrace(p, w).ok());
}

TEST(UpdateTraceTest, SpecsAreWellFormed) {
  Workload w = BaseWorkload();
  UpdateTraceParams p;
  p.seed = 3;
  ASSERT_TRUE(GenerateUpdateTrace(p, w).ok());
  ASSERT_FALSE(w.updates.empty());
  for (const auto& u : w.updates) {
    EXPECT_GE(u.item, 0);
    EXPECT_LT(u.item, w.num_items);
    EXPECT_GT(u.ideal_period, 0);
    EXPECT_GE(u.phase, 0);
    EXPECT_LT(u.phase, u.ideal_period);
    EXPECT_GE(u.update_exec, MillisToSim(p.exec_lo_ms));
    EXPECT_LE(u.update_exec, MillisToSim(p.exec_hi_ms) + 1);
  }
}

class UpdateTraceUtilizationTest
    : public ::testing::TestWithParam<
          std::tuple<UpdateVolume, UpdateDistribution>> {};

TEST_P(UpdateTraceUtilizationTest, HitsTargetUtilization) {
  auto [volume, dist] = GetParam();
  Workload w = BaseWorkload();
  UpdateTraceParams p;
  p.volume = volume;
  p.distribution = dist;
  p.seed = 13;
  ASSERT_TRUE(GenerateUpdateTrace(p, w).ok());
  const double target = VolumeUtilization(volume);
  EXPECT_NEAR(w.UpdateUtilization(), target, 0.12 * target + 0.02)
      << UpdateTraceName(p);
}

INSTANTIATE_TEST_SUITE_P(
    AllTraces, UpdateTraceUtilizationTest,
    ::testing::Combine(
        ::testing::Values(UpdateVolume::kLow, UpdateVolume::kMedium,
                          UpdateVolume::kHigh),
        ::testing::Values(UpdateDistribution::kUniform,
                          UpdateDistribution::kPositive,
                          UpdateDistribution::kNegative)));

TEST(UpdateTraceTest, UtilizationOverride) {
  Workload w = BaseWorkload();
  UpdateTraceParams p;
  p.utilization_override = 0.42;
  ASSERT_TRUE(GenerateUpdateTrace(p, w).ok());
  EXPECT_NEAR(w.UpdateUtilization(), 0.42, 0.08);
}

TEST(UpdateTraceTest, PositiveCorrelationMatchesQueries) {
  Workload w = BaseWorkload();
  UpdateTraceParams p;
  p.distribution = UpdateDistribution::kPositive;
  p.volume = UpdateVolume::kMedium;
  ASSERT_TRUE(GenerateUpdateTrace(p, w).ok());
  auto accesses = w.QueryAccessCounts();
  auto updates = w.SourceUpdateCounts();
  std::vector<double> a(accesses.begin(), accesses.end());
  std::vector<double> u(updates.begin(), updates.end());
  EXPECT_GT(SpearmanCorrelation(a, u), 0.55);
}

TEST(UpdateTraceTest, NegativeCorrelationOpposesQueries) {
  Workload w = BaseWorkload();
  UpdateTraceParams p;
  p.distribution = UpdateDistribution::kNegative;
  p.volume = UpdateVolume::kMedium;
  ASSERT_TRUE(GenerateUpdateTrace(p, w).ok());
  auto accesses = w.QueryAccessCounts();
  auto updates = w.SourceUpdateCounts();
  std::vector<double> a(accesses.begin(), accesses.end());
  std::vector<double> u(updates.begin(), updates.end());
  EXPECT_LT(SpearmanCorrelation(a, u), -0.55);
}

TEST(UpdateTraceTest, UniformSpreadsUpdatesEvenly) {
  Workload w = BaseWorkload();
  UpdateTraceParams p;
  p.distribution = UpdateDistribution::kUniform;
  p.volume = UpdateVolume::kHigh;
  ASSERT_TRUE(GenerateUpdateTrace(p, w).ok());
  auto counts = w.SourceUpdateCounts();
  int64_t mn = counts[0], mx = counts[0];
  for (int64_t c : counts) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  // Uniform weights with uniform exec times: per-item counts vary only via
  // the random exec draw, within a factor exec_hi/exec_lo.
  EXPECT_LT(static_cast<double>(mx),
            static_cast<double>(std::max<int64_t>(mn, 1)) * 15.0);
}

TEST(UpdateTraceTest, RegenerationReplacesSpecs) {
  Workload w = BaseWorkload();
  UpdateTraceParams p;
  ASSERT_TRUE(GenerateUpdateTrace(p, w).ok());
  const size_t first = w.updates.size();
  p.volume = UpdateVolume::kLow;
  ASSERT_TRUE(GenerateUpdateTrace(p, w).ok());
  EXPECT_EQ(w.update_trace_name, "low-unif");
  EXPECT_LE(w.updates.size(), first + w.num_items);
  // No duplicate items.
  std::vector<bool> seen(w.num_items, false);
  for (const auto& u : w.updates) {
    EXPECT_FALSE(seen[u.item]);
    seen[u.item] = true;
  }
}

}  // namespace
}  // namespace unitdb
