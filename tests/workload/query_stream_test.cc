#include "unit/workload/query_source.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "testing/fake_policy.h"
#include "unit/sched/engine.h"
#include "unit/workload/query_trace.h"
#include "unit/workload/update_trace.h"

namespace unitdb {
namespace {

using testing_support::FakePolicy;

QueryTraceParams SmallParams() {
  QueryTraceParams p;
  p.num_items = 64;
  p.duration = SecondsToSim(200.0);
  p.seed = 7;
  return p;
}

// The materialized generator is the oracle: every prefix of the stream must
// be bit-identical to GenerateQueryTrace's output, field by field.
void ExpectStreamMatchesTrace(const QueryTraceParams& p) {
  auto oracle = GenerateQueryTrace(p);
  ASSERT_TRUE(oracle.ok());
  auto source = StreamingQuerySource::Make(p);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->count(),
            static_cast<int64_t>(oracle->queries.size()));

  auto cursor = (*source)->NewCursor();
  QueryRequest q;
  size_t i = 0;
  while (cursor->Next(&q)) {
    ASSERT_LT(i, oracle->queries.size());
    const QueryRequest& want = oracle->queries[i];
    ASSERT_EQ(q.id, want.id);
    ASSERT_EQ(q.arrival, want.arrival) << "query " << i;
    ASSERT_EQ(q.exec, want.exec) << "query " << i;
    ASSERT_EQ(q.relative_deadline, want.relative_deadline) << "query " << i;
    ASSERT_EQ(q.freshness_req, want.freshness_req) << "query " << i;
    ASSERT_EQ(q.items, want.items) << "query " << i;
    ASSERT_EQ(q.preference_class, want.preference_class) << "query " << i;
    ++i;
  }
  EXPECT_EQ(i, oracle->queries.size());
}

TEST(QueryStreamTest, MatchesMaterializedTraceBitForBit) {
  ExpectStreamMatchesTrace(SmallParams());
}

TEST(QueryStreamTest, MatchesOracleAcrossParameterVariants) {
  {
    QueryTraceParams p = SmallParams();
    p.num_preference_classes = 3;  // extra item_rng draw per query
    p.seed = 11;
    ExpectStreamMatchesTrace(p);
  }
  {
    QueryTraceParams p = SmallParams();
    p.working_set_size = 0;  // locality disabled: pure Zipf draws
    p.seed = 12;
    ExpectStreamMatchesTrace(p);
  }
  {
    QueryTraceParams p = SmallParams();
    p.locality_p = 0.0;  // working set maintained but never read
    p.zipf_s = 0.0;      // uniform popularity
    p.seed = 13;
    ExpectStreamMatchesTrace(p);
  }
  {
    QueryTraceParams p = SmallParams();
    p.max_items_per_query = 12;  // read sets can exceed the inline buffer
    p.extra_item_p = 0.9;
    p.seed = 14;
    ExpectStreamMatchesTrace(p);
  }
  {
    QueryTraceParams p = SmallParams();
    p.burst_rate_multiplier = 1.0;  // MMPP degenerates to plain Poisson
    p.mean_burst_sojourn_s = 0.5;
    p.seed = 15;
    ExpectStreamMatchesTrace(p);
  }
}

TEST(QueryStreamTest, EveryCursorReplaysTheIdenticalSequence) {
  auto source = StreamingQuerySource::Make(SmallParams());
  ASSERT_TRUE(source.ok());
  auto a = (*source)->NewCursor();
  QueryRequest qa;
  // Consume a short prefix from one cursor first: cursors are independent.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(a->Next(&qa));
  auto b = (*source)->NewCursor();
  QueryRequest qb;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(b->Next(&qb));
  EXPECT_EQ(qa.arrival, qb.arrival);
  EXPECT_EQ(qa.items, qb.items);
  EXPECT_EQ(qa.exec, qb.exec);
  EXPECT_EQ(qa.relative_deadline, qb.relative_deadline);
}

TEST(QueryStreamTest, RejectsTheSameBadParametersAsTheOracle) {
  QueryTraceParams p = SmallParams();
  p.num_items = 0;
  EXPECT_FALSE(StreamingQuerySource::Make(p).ok());
  p = SmallParams();
  p.exec_max_ms = p.exec_min_ms / 2;
  EXPECT_FALSE(StreamingQuerySource::Make(p).ok());
}

TEST(QueryStreamTest, VectorSourceRoundTripsMaterializedQueries) {
  auto w = GenerateQueryTrace(SmallParams());
  ASSERT_TRUE(w.ok());
  const std::vector<QueryRequest> original = w->queries;
  ConvertToStreamingWorkload(&*w);
  EXPECT_TRUE(w->queries.empty());
  ASSERT_NE(w->query_source, nullptr);
  EXPECT_EQ(w->QueryCount(), static_cast<int64_t>(original.size()));

  auto cursor = w->query_source->NewCursor();
  QueryRequest q;
  size_t i = 0;
  while (cursor->Next(&q)) {
    ASSERT_LT(i, original.size());
    EXPECT_EQ(q.arrival, original[i].arrival);
    EXPECT_EQ(q.items, original[i].items);
    ++i;
  }
  EXPECT_EQ(i, original.size());
}

TEST(QueryStreamTest, CursorAwareAccessCountsMatchMaterialized) {
  QueryTraceParams p = SmallParams();
  auto materialized = GenerateQueryTrace(p);
  ASSERT_TRUE(materialized.ok());
  auto streaming = MakeStreamingWorkload(p);
  ASSERT_TRUE(streaming.ok());
  EXPECT_EQ(materialized->QueryAccessCounts(),
            streaming->QueryAccessCounts());
  EXPECT_DOUBLE_EQ(materialized->QueryUtilization(),
                   streaming->QueryUtilization());
  EXPECT_EQ(materialized->QueryCount(), streaming->QueryCount());
}

// End to end: an Engine consuming the streamed workload must produce the
// bit-identical run to one consuming the materialized trace (this also
// exercises the lazy-arrival seq reservation and the slab under churn).
TEST(QueryStreamTest, EngineRunsStreamedWorkloadIdenticallyToMaterialized) {
  QueryTraceParams qp = SmallParams();
  auto materialized = GenerateQueryTrace(qp);
  ASSERT_TRUE(materialized.ok());
  auto streaming = MakeStreamingWorkload(qp);
  ASSERT_TRUE(streaming.ok());

  UpdateTraceParams up;
  up.volume = UpdateVolume::kMedium;
  up.seed = 21;
  ASSERT_TRUE(GenerateUpdateTrace(up, *materialized).ok());
  ASSERT_TRUE(GenerateUpdateTrace(up, *streaming).ok());

  EngineParams params;
  FakePolicy p1;
  Engine e1(*materialized, &p1, params);
  const RunMetrics m1 = e1.Run();
  FakePolicy p2;
  Engine e2(*streaming, &p2, params);
  const RunMetrics m2 = e2.Run();

  EXPECT_EQ(m1.counts.submitted, m2.counts.submitted);
  EXPECT_EQ(m1.counts.success, m2.counts.success);
  EXPECT_EQ(m1.counts.rejected, m2.counts.rejected);
  EXPECT_EQ(m1.counts.dmf, m2.counts.dmf);
  EXPECT_EQ(m1.counts.dsf, m2.counts.dsf);
  EXPECT_EQ(m1.busy_s, m2.busy_s);  // bit-identical FP accumulation
  EXPECT_EQ(m1.query_response_s.mean(), m2.query_response_s.mean());
  EXPECT_EQ(m1.query_freshness.mean(), m2.query_freshness.mean());
  EXPECT_EQ(m1.update_commits, m2.update_commits);
  EXPECT_EQ(m1.preemptions, m2.preemptions);
  EXPECT_EQ(m1.lock_restarts, m2.lock_restarts);
  EXPECT_EQ(m1.per_item_accesses, m2.per_item_accesses);
  EXPECT_EQ(m1.per_item_applied_updates, m2.per_item_applied_updates);

  // The slab recycles: far fewer slots than transactions processed.
  EXPECT_GT(m2.txn_released, 0);
  EXPECT_EQ(m2.txn_slots_created, m2.txn_live_peak);
  EXPECT_LT(m2.txn_live_peak, m2.counts.submitted + m2.updates_generated);
}

}  // namespace
}  // namespace unitdb
