#include "unit/workload/spec.h"

#include <gtest/gtest.h>

namespace unitdb {
namespace {

ItemUpdateSpec Source(ItemId item, double period_s, double exec_ms,
                      double phase_s) {
  ItemUpdateSpec s;
  s.item = item;
  s.ideal_period = SecondsToSim(period_s);
  s.update_exec = MillisToSim(exec_ms);
  s.phase = SecondsToSim(phase_s);
  return s;
}

TEST(WorkloadSpecTest, TotalSourceUpdatesCountsInHorizonGenerations) {
  Workload w;
  w.num_items = 3;
  w.duration = SecondsToSim(10.0);
  w.updates = {Source(0, 2.0, 10.0, 0.0),   // t = 0,2,4,6,8  -> 5
               Source(1, 3.0, 10.0, 1.0),   // t = 1,4,7      -> 3
               Source(2, 20.0, 10.0, 12.0)};  // first gen after horizon -> 0
  EXPECT_EQ(w.TotalSourceUpdates(), 8);
  auto counts = w.SourceUpdateCounts();
  EXPECT_EQ(counts[0], 5);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 0);
}

TEST(WorkloadSpecTest, BoundaryGenerationAtDurationExcluded) {
  Workload w;
  w.num_items = 1;
  w.duration = SecondsToSim(10.0);
  w.updates = {Source(0, 5.0, 10.0, 0.0)};  // t = 0, 5 (10 is outside)
  EXPECT_EQ(w.TotalSourceUpdates(), 2);
}

TEST(WorkloadSpecTest, UpdateUtilizationSumsExecOverDuration) {
  Workload w;
  w.num_items = 2;
  w.duration = SecondsToSim(10.0);
  w.updates = {Source(0, 1.0, 100.0, 0.0),   // 10 gens * 0.1s = 1s
               Source(1, 2.0, 200.0, 0.0)};  // 5 gens  * 0.2s = 1s
  EXPECT_NEAR(w.UpdateUtilization(), 0.2, 1e-9);
}

TEST(WorkloadSpecTest, QueryUtilizationAndAccessCounts) {
  Workload w;
  w.num_items = 4;
  w.duration = SecondsToSim(10.0);
  QueryRequest q;
  q.id = 0;
  q.arrival = 0;
  q.exec = SecondsToSim(1.0);
  q.relative_deadline = SecondsToSim(2.0);
  q.items = {1, 3};
  w.queries.push_back(q);
  q.id = 1;
  q.items = {3};
  w.queries.push_back(q);
  EXPECT_NEAR(w.QueryUtilization(), 0.2, 1e-9);
  auto counts = w.QueryAccessCounts();
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[3], 2);
}

TEST(WorkloadSpecTest, EmptyWorkloadIsZero) {
  Workload w;
  w.num_items = 2;
  w.duration = SecondsToSim(1.0);
  EXPECT_EQ(w.TotalSourceUpdates(), 0);
  EXPECT_DOUBLE_EQ(w.UpdateUtilization(), 0.0);
  EXPECT_DOUBLE_EQ(w.QueryUtilization(), 0.0);
}

TEST(WorkloadSpecTest, NoUpdatesSentinelIsIgnored) {
  Workload w;
  w.num_items = 1;
  w.duration = SecondsToSim(10.0);
  ItemUpdateSpec s;
  s.item = 0;
  s.ideal_period = kNoUpdates;
  s.update_exec = MillisToSim(10.0);
  w.updates.push_back(s);
  EXPECT_EQ(w.TotalSourceUpdates(), 0);
  EXPECT_DOUBLE_EQ(w.UpdateUtilization(), 0.0);
}

}  // namespace
}  // namespace unitdb
