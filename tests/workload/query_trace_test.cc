#include "unit/workload/query_trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace unitdb {
namespace {

QueryTraceParams SmallParams() {
  QueryTraceParams p;
  p.num_items = 64;
  p.duration = SecondsToSim(200.0);
  p.seed = 7;
  return p;
}

TEST(QueryTraceTest, ValidatesParameters) {
  QueryTraceParams p = SmallParams();
  p.num_items = 0;
  EXPECT_FALSE(GenerateQueryTrace(p).ok());
  p = SmallParams();
  p.base_rate_hz = 0.0;
  EXPECT_FALSE(GenerateQueryTrace(p).ok());
  p = SmallParams();
  p.burst_rate_multiplier = 0.5;
  EXPECT_FALSE(GenerateQueryTrace(p).ok());
  p = SmallParams();
  p.freshness_req = 1.5;
  EXPECT_FALSE(GenerateQueryTrace(p).ok());
  p = SmallParams();
  p.locality_p = 1.0;
  EXPECT_FALSE(GenerateQueryTrace(p).ok());
  p = SmallParams();
  p.exec_max_ms = p.exec_min_ms / 2;
  EXPECT_FALSE(GenerateQueryTrace(p).ok());
}

TEST(QueryTraceTest, BasicInvariants) {
  auto w = GenerateQueryTrace(SmallParams());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_items, 64);
  EXPECT_GT(w->queries.size(), 100u);
  SimTime last = -1;
  for (const auto& q : w->queries) {
    EXPECT_GE(q.arrival, 0);
    EXPECT_LT(q.arrival, w->duration);
    EXPECT_GE(q.arrival, last) << "arrivals must be sorted";
    last = q.arrival;
    EXPECT_GT(q.exec, 0);
    EXPECT_GT(q.relative_deadline, 0);
    EXPECT_DOUBLE_EQ(q.freshness_req, 0.9);
    EXPECT_FALSE(q.items.empty());
    for (ItemId item : q.items) {
      EXPECT_GE(item, 0);
      EXPECT_LT(item, w->num_items);
    }
    // Read sets hold distinct items.
    auto items = q.items;
    std::sort(items.begin(), items.end());
    EXPECT_EQ(std::adjacent_find(items.begin(), items.end()), items.end());
  }
}

TEST(QueryTraceTest, DeterministicForSameSeed) {
  auto a = GenerateQueryTrace(SmallParams());
  auto b = GenerateQueryTrace(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->queries.size(), b->queries.size());
  for (size_t i = 0; i < a->queries.size(); ++i) {
    EXPECT_EQ(a->queries[i].arrival, b->queries[i].arrival);
    EXPECT_EQ(a->queries[i].exec, b->queries[i].exec);
    EXPECT_EQ(a->queries[i].items, b->queries[i].items);
  }
}

TEST(QueryTraceTest, SeedChangesTrace) {
  QueryTraceParams p = SmallParams();
  auto a = GenerateQueryTrace(p);
  p.seed = 8;
  auto b = GenerateQueryTrace(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->queries.size(), b->queries.size());
}

TEST(QueryTraceTest, RateScalesQueryCount) {
  QueryTraceParams p = SmallParams();
  p.duration = SecondsToSim(500.0);
  auto lo = GenerateQueryTrace(p);
  p.base_rate_hz *= 3.0;
  auto hi = GenerateQueryTrace(p);
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_GT(hi->queries.size(), 2 * lo->queries.size());
}

TEST(QueryTraceTest, PopularityIsSkewed) {
  QueryTraceParams p = SmallParams();
  p.duration = SecondsToSim(1000.0);
  auto w = GenerateQueryTrace(p);
  ASSERT_TRUE(w.ok());
  auto counts = w->QueryAccessCounts();
  const int64_t total = std::accumulate(counts.begin(), counts.end(), 0LL);
  // Top quarter of item ids (the Zipf head) must dominate the tail half.
  int64_t head = 0, tail = 0;
  for (int i = 0; i < w->num_items / 4; ++i) head += counts[i];
  for (int i = w->num_items / 2; i < w->num_items; ++i) tail += counts[i];
  EXPECT_GT(head, 2 * tail);
  EXPECT_GT(total, 0);
}

TEST(QueryTraceTest, DeadlinesSpanTheConfiguredRange) {
  QueryTraceParams p = SmallParams();
  p.duration = SecondsToSim(2000.0);
  auto w = GenerateQueryTrace(p);
  ASSERT_TRUE(w.ok());
  double mean_exec_ms = 0.0, max_exec_ms = 0.0;
  for (const auto& q : w->queries) {
    mean_exec_ms += SimToSeconds(q.exec) * 1000.0;
    max_exec_ms = std::max(max_exec_ms, SimToSeconds(q.exec) * 1000.0);
  }
  mean_exec_ms /= static_cast<double>(w->queries.size());
  for (const auto& q : w->queries) {
    const double d_ms = SimToSeconds(q.relative_deadline) * 1000.0;
    EXPECT_GE(d_ms, p.deadline_lo_factor * mean_exec_ms - 1e-6);
    EXPECT_LE(d_ms, p.deadline_hi_factor * max_exec_ms + 1e-6);
  }
}

TEST(QueryTraceTest, ArrivalsAreBurstier_ThanPoisson) {
  QueryTraceParams p = SmallParams();
  p.duration = SecondsToSim(2000.0);
  auto w = GenerateQueryTrace(p);
  ASSERT_TRUE(w.ok());
  // Index of dispersion of per-second counts: Poisson ~1; an MMPP with a
  // 25x burst state must be far larger.
  std::vector<int> per_second(2000, 0);
  for (const auto& q : w->queries) {
    ++per_second[static_cast<size_t>(SimToSeconds(q.arrival))];
  }
  double mean = 0.0;
  for (int c : per_second) mean += c;
  mean /= per_second.size();
  double var = 0.0;
  for (int c : per_second) var += (c - mean) * (c - mean);
  var /= per_second.size();
  EXPECT_GT(var / mean, 3.0);
}

TEST(QueryTraceTest, LocalityRepeatsRecentItems) {
  QueryTraceParams with = SmallParams();
  with.num_items = 1024;
  with.duration = SecondsToSim(500.0);
  QueryTraceParams without = with;
  without.locality_p = 0.0;
  auto a = GenerateQueryTrace(with);
  auto b = GenerateQueryTrace(without);
  ASSERT_TRUE(a.ok() && b.ok());
  // Working-set reuse concentrates accesses on fewer distinct items than
  // independent Zipf draws do.
  auto distinct_items = [](const Workload& w) {
    std::vector<bool> seen(w.num_items, false);
    int distinct = 0;
    for (const auto& q : w.queries) {
      for (ItemId item : q.items) {
        if (!seen[item]) {
          seen[item] = true;
          ++distinct;
        }
      }
    }
    return distinct;
  };
  EXPECT_LT(distinct_items(*a), distinct_items(*b) * 3 / 4);
}

TEST(QueryTraceTest, UtilizationIsReasonable) {
  QueryTraceParams p;  // full default parameters
  p.seed = 42;
  auto w = GenerateQueryTrace(p);
  ASSERT_TRUE(w.ok());
  const double util = w->QueryUtilization();
  EXPECT_GT(util, 0.10);
  EXPECT_LT(util, 0.80);
}

}  // namespace
}  // namespace unitdb
