// Retry-storm settling regression: under a canned storm of tight-deadline
// injected queries, (a) the full UNIT stack beats the no-LBC ablation at
// equal shedding — higher USM, faster settling, never more abandoned
// sessions — and (b) overload shedding bounds the USM dip that an unshed
// run takes, while the unshed no-LBC ablation never settles at all. The
// paper's user-centric claim extended to the closed loop, where unshed
// backlog turns into retry amplification that keeps the system depressed
// after the storm passes.

#include <gtest/gtest.h>

#include <string>

#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/faults/settling.h"
#include "unit/obs/trace_check.h"
#include "unit/obs/trace_reader.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

/// Canned retry storm at 40-70% of the run, closed-loop sessions attached —
/// the same shape bench_fig8_closed_loop sweeps.
class RetryStormRegressionTest : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.25;

  ExperimentResult RunVariant(const std::string& policy, int shed_watermark,
                              const std::string& trace_path = "") {
    auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                  UpdateDistribution::kUniform, kScale, 42);
    EXPECT_TRUE(w.ok());
    const double duration_s = SimToSeconds(w->duration);
    auto spec = FaultScenarioSpec::Parse(
        "fault0.kind = retry-storm\n"
        "fault0.start_s = " + std::to_string(0.4 * duration_s) + "\n"
        "fault0.end_s = " + std::to_string(0.7 * duration_s) + "\n"
        "fault0.rate_hz = 40\n");
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto schedule = FaultSchedule::Compile(*spec, *w, 42);
    EXPECT_TRUE(schedule.ok()) << schedule.status().ToString();
    ObsOptions obs;
    obs.series = true;
    obs.trace_path = trace_path;
    EngineParams engine;
    engine.session.sessions = 24;
    engine.session.max_retries = 3;
    engine.session.patience = SecondsToSim(5.0);
    engine.shed_watermark = shed_watermark;
    auto result =
        RunFaultedExperiment(*w, policy, UsmWeights{1.0, 0.5, 1.0, 0.5},
                             *schedule, obs, engine);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }
};

TEST_F(RetryStormRegressionTest, UnitBeatsNoLbcAblationAtEqualShedding) {
  const std::string trace = ::testing::TempDir() + "/retry_storm_unit.jsonl";
  const ExperimentResult unit = RunVariant("unit", /*shed_watermark=*/8,
                                           trace);
  const ExperimentResult bare = RunVariant("unit-bare", /*shed_watermark=*/8);

  ASSERT_TRUE(unit.disturbance.valid);
  ASSERT_TRUE(bare.disturbance.valid);
  // The storm actually closed the loop on both variants.
  EXPECT_GT(unit.metrics.session_retries, 0);
  EXPECT_GT(bare.metrics.session_retries, 0);
  EXPECT_GT(unit.metrics.queries_shed, 0);
  EXPECT_GT(bare.metrics.queries_shed, 0);

  // With the shedding knob held equal, the adaptive stack keeps users
  // better off than the no-LBC ablation: higher USM, recovery no slower
  // (recover_s of -1 means "never settled" and loses to any finite time),
  // and never more abandoned sessions.
  EXPECT_GE(unit.usm, bare.usm);
  ASSERT_GE(unit.disturbance.recover_s, 0.0);
  if (bare.disturbance.recover_s >= 0.0) {
    EXPECT_LE(unit.disturbance.recover_s, bare.disturbance.recover_s);
  }
  EXPECT_LE(unit.metrics.session_abandons, bare.metrics.session_abandons);

  // The stormy closed-loop trace passes every invariant — lifecycle,
  // freshness accounting, and the session discipline (invariant 7).
  auto events = ReadTraceFile(trace);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  const TraceCheckResult check = CheckTrace(*events);
  EXPECT_TRUE(check.ok()) << TraceCheckSummary(check);
  EXPECT_EQ(check.fault_starts, 1);
  EXPECT_EQ(check.fault_stops, 1);
  EXPECT_GT(check.session_retries, 0);
  EXPECT_GT(check.sheds, 0);
}

TEST_F(RetryStormRegressionTest, SheddingBoundsTheDipAndUnshedBareNeverSettles) {
  const ExperimentResult shed = RunVariant("unit", /*shed_watermark=*/8);
  const ExperimentResult unshed = RunVariant("unit", /*shed_watermark=*/0);
  const ExperimentResult bare_unshed =
      RunVariant("unit-bare", /*shed_watermark=*/0);

  ASSERT_TRUE(shed.disturbance.valid);
  ASSERT_TRUE(unshed.disturbance.valid);
  ASSERT_TRUE(bare_unshed.disturbance.valid);
  EXPECT_EQ(unshed.metrics.queries_shed, 0);

  // Drop-oldest shedding absorbs the worst of the storm: the USM dip stays
  // strictly shallower than the unshed run's.
  EXPECT_LT(shed.disturbance.dip_depth, unshed.disturbance.dip_depth);

  // Without LBC or shedding the backlog-plus-retry spiral keeps USM
  // depressed: the run never re-enters the settling band, while the full
  // stack with shedding recovers at a finite time and a far better USM.
  EXPECT_GE(shed.disturbance.recover_s, 0.0);
  EXPECT_LT(bare_unshed.disturbance.recover_s, 0.0);
  EXPECT_GT(shed.usm, bare_unshed.usm);
}

TEST_F(RetryStormRegressionTest, StormMetricsConserveSessions) {
  for (int watermark : {0, 8}) {
    const ExperimentResult r = RunVariant("unit", watermark);
    EXPECT_EQ(r.metrics.session_requests,
              r.metrics.session_successes + r.metrics.session_abandons)
        << "watermark=" << watermark;
    EXPECT_LE(r.metrics.session_retries, r.metrics.session_requests * 3)
        << "watermark=" << watermark;
  }
}

}  // namespace
}  // namespace unitdb
