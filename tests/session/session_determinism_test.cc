// Closed-loop determinism: with sessions, shedding, and a retry storm all
// active, the sharded runner must stay bit-identical for any jobs count —
// merged metrics (session scalars included), per-parent outcome sequences,
// the merged window series, and the shard-tagged trace files byte for byte.
// Retries re-enter each shard through kClientResubmit events ordered by
// (time, seq), and the session/jitter draws are pure hashes of
// (seed, trace_id, attempt), so no interleaving can move a decision.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "unit/faults/scenario.h"
#include "unit/shard/sharded.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

StatusOr<Workload> SmallWorkload() {
  return MakeStandardWorkload(UpdateVolume::kMedium,
                              UpdateDistribution::kUniform, /*scale=*/0.05,
                              /*seed=*/42);
}

StatusOr<FaultScenarioSpec> StormScenario(const Workload& w) {
  const double dur = SimToSeconds(w.duration);
  return FaultScenarioSpec::Parse(
      "fault0.kind = retry-storm\n"
      "fault0.start_s = " + std::to_string(0.4 * dur) + "\n"
      "fault0.end_s = " + std::to_string(0.7 * dur) + "\n"
      "fault0.rate_hz = 60\n");
}

std::string Slurp(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void ExpectIdentical(const ShardedResult& a, const ShardedResult& b,
                     int jobs) {
  EXPECT_EQ(a.metrics.counts.submitted, b.metrics.counts.submitted) << jobs;
  EXPECT_EQ(a.metrics.counts.success, b.metrics.counts.success) << jobs;
  EXPECT_EQ(a.metrics.counts.rejected, b.metrics.counts.rejected) << jobs;
  EXPECT_EQ(a.metrics.counts.dmf, b.metrics.counts.dmf) << jobs;
  EXPECT_EQ(a.metrics.counts.dsf, b.metrics.counts.dsf) << jobs;
  EXPECT_EQ(a.metrics.busy_s, b.metrics.busy_s) << jobs;
  EXPECT_EQ(a.metrics.session_requests, b.metrics.session_requests) << jobs;
  EXPECT_EQ(a.metrics.session_retries, b.metrics.session_retries) << jobs;
  EXPECT_EQ(a.metrics.session_successes, b.metrics.session_successes) << jobs;
  EXPECT_EQ(a.metrics.session_abandons, b.metrics.session_abandons) << jobs;
  EXPECT_EQ(a.metrics.queries_shed, b.metrics.queries_shed) << jobs;
  EXPECT_EQ(a.metrics.session_retry_delay_s.sum(),
            b.metrics.session_retry_delay_s.sum())
      << jobs;
  EXPECT_EQ(a.metrics.query_response_s.sum(), b.metrics.query_response_s.sum())
      << jobs;
  EXPECT_EQ(a.metrics.query_freshness.sum(), b.metrics.query_freshness.sum())
      << jobs;
  EXPECT_EQ(a.usm, b.usm) << jobs;
  EXPECT_EQ(a.subqueries, b.subqueries) << jobs;

  // The per-parent resolution sequence IS the users' view of the run: same
  // parents, same outcomes, same resolve times, in the same merged order.
  ASSERT_EQ(a.queries.size(), b.queries.size()) << jobs;
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].trace_id, b.queries[i].trace_id) << jobs;
    EXPECT_EQ(a.queries[i].outcome, b.queries[i].outcome) << jobs;
    EXPECT_EQ(a.queries[i].resolve_time, b.queries[i].resolve_time) << jobs;
  }

  ASSERT_EQ(a.merged_series.size(), b.merged_series.size()) << jobs;
  for (size_t i = 0; i < a.merged_series.size(); ++i) {
    const WindowSample& x = a.merged_series[i];
    const WindowSample& y = b.merged_series[i];
    EXPECT_EQ(x.t_s, y.t_s) << jobs;
    EXPECT_EQ(x.retries, y.retries) << jobs;
    EXPECT_EQ(x.abandons, y.abandons) << jobs;
    EXPECT_EQ(x.shed, y.shed) << jobs;
    EXPECT_EQ(x.utilization, y.utilization) << jobs;
  }
}

class SessionDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(SessionDeterminismTest, JobsCountNeverChangesClosedLoopRuns) {
  const int shards = GetParam();
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  auto spec = StormScenario(*w);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  const std::filesystem::path root =
      std::filesystem::path(testing::TempDir()) /
      ("session_jobs_invariance_s" + std::to_string(shards));

  ShardedParams base;
  base.shards = shards;
  base.record_series = true;
  base.scenario = &*spec;
  base.engine.session.sessions = 6;
  base.engine.session.max_retries = 3;
  base.engine.session.patience = SecondsToSim(2.0);
  base.engine.shed_watermark = 5;

  ShardedParams ref = base;
  ref.jobs = 1;
  ref.trace_dir = (root / "jobs1").string();
  auto r1 = RunSharded(*w, "unit", weights, ref);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_GT(r1->metrics.session_requests, 0);
  EXPECT_GT(r1->metrics.session_retries, 0) << "storm produced no retries";
  EXPECT_EQ(r1->metrics.session_requests,
            r1->metrics.session_successes + r1->metrics.session_abandons);

  for (int jobs : {2, 8}) {
    ShardedParams p = base;
    p.jobs = jobs;
    p.trace_dir = (root / ("jobs" + std::to_string(jobs))).string();
    auto r = RunSharded(*w, "unit", weights, p);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectIdentical(*r1, *r, jobs);

    for (int s = 0; s < shards; ++s) {
      const std::string name = "shard" + std::to_string(s) + ".jsonl";
      const std::string want =
          Slurp(std::filesystem::path(ref.trace_dir) / name);
      const std::string got = Slurp(std::filesystem::path(p.trace_dir) / name);
      ASSERT_FALSE(want.empty());
      EXPECT_EQ(want, got) << name << " jobs=" << jobs;
    }
    const std::string merged_want =
        Slurp(std::filesystem::path(ref.trace_dir) / "merged.jsonl");
    const std::string merged_got =
        Slurp(std::filesystem::path(p.trace_dir) / "merged.jsonl");
    ASSERT_FALSE(merged_want.empty());
    EXPECT_EQ(merged_want, merged_got) << "merged.jsonl jobs=" << jobs;
  }
  std::filesystem::remove_all(root);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, SessionDeterminismTest,
                         ::testing::Values(1, 4));

TEST(SessionDeterminismTest2, RepeatedClosedLoopRunsAreReproducible) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  auto spec = StormScenario(*w);
  ASSERT_TRUE(spec.ok());
  ShardedParams p;
  p.shards = 3;
  p.jobs = 3;
  p.record_series = true;
  p.scenario = &*spec;
  p.engine.session.sessions = 4;
  p.engine.shed_watermark = 4;
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  auto a = RunSharded(*w, "unit", weights, p);
  auto b = RunSharded(*w, "unit", weights, p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdentical(*a, *b, /*jobs=*/3);
}

}  // namespace
}  // namespace unitdb
