// Closed-loop session layer: pure-hash determinism of the session/jitter
// draws, the per-request state machine (retry, abandon, patience, the
// kDropRetry defect hook), and the run-level conservation properties the
// differential oracle cross-checks — submitted requests equal successes
// plus abandons, and retries never exceed requests times the budget.

#include "unit/session/session.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/obs/trace_check.h"
#include "unit/obs/trace_reader.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

TEST(SessionHashTest, HomeSessionIsStableAndInRange) {
  for (TxnId id = 0; id < 500; ++id) {
    const int s = SessionOf(/*seed=*/7, id, /*sessions=*/8);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
    EXPECT_EQ(s, SessionOf(7, id, 8));  // pure function of (seed, id)
  }
  // Different seeds shuffle the assignment (not a constant function).
  bool any_differs = false;
  for (TxnId id = 0; id < 64 && !any_differs; ++id) {
    any_differs = SessionOf(1, id, 8) != SessionOf(2, id, 8);
  }
  EXPECT_TRUE(any_differs);
}

TEST(SessionHashTest, JitterFractionIsDeterministicAndInUnitInterval) {
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const double f = SessionJitterFraction(42, 3, 17, attempt);
    EXPECT_GE(f, 0.0);
    EXPECT_LT(f, 1.0);
    EXPECT_EQ(f, SessionJitterFraction(42, 3, 17, attempt));
  }
  EXPECT_NE(SessionJitterFraction(42, 3, 17, 1),
            SessionJitterFraction(42, 3, 17, 2));
}

TEST(SessionDelayTest, DelaysAreMonotoneAndPositivePerChain) {
  SessionParams p;
  p.think_time = MillisToSim(5.0);
  p.backoff_base = MillisToSim(2.0);
  p.backoff_cap = MillisToSim(50.0);
  p.jitter = 0.5;
  SimDuration prev = 0;
  for (int retries_done = 0; retries_done < 10; ++retries_done) {
    const SimDuration d = RetryDelay(p, /*session=*/1, /*trace_id=*/9,
                                     retries_done, prev);
    EXPECT_GE(d, 1);
    EXPECT_GE(d, prev);  // trace_check invariant 7's monotonicity rule
    prev = d;
  }
  // Deep chains are bounded by think + cap + full jitter amplitude.
  EXPECT_LE(prev, p.think_time + 2 * p.backoff_cap);
}

TEST(SessionDelayTest, DegenerateKnobsStayPositive) {
  SessionParams p;
  p.think_time = 0;
  p.backoff_base = 0;  // clamped to 1 tick internally
  p.backoff_cap = 0;
  p.jitter = -3.0;  // clamped to [0, 1]
  const SimDuration d = RetryDelay(p, 0, 0, 0, 0);
  EXPECT_GE(d, 1);
}

TEST(SessionPoolTest, SuccessEndsTheChain) {
  SessionParams p;
  p.sessions = 4;
  SessionPool pool(p);
  QueryRequest q;
  pool.OnSubmit(11, q);
  const SessionDecision d = pool.OnOutcome(11, Outcome::kSuccess);
  EXPECT_EQ(d.kind, SessionDecision::kDone);
  EXPECT_EQ(d.attempt, 1);
  // The chain is gone: further outcomes for the id are not session-managed.
  EXPECT_EQ(pool.OnOutcome(11, Outcome::kRejected).kind,
            SessionDecision::kNone);
}

TEST(SessionPoolTest, RetriesThenAbandonsAtBudget) {
  SessionParams p;
  p.sessions = 2;
  p.max_retries = 3;
  SessionPool pool(p);
  QueryRequest q;
  pool.OnSubmit(5, q);
  SimDuration prev = 0;
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const SessionDecision d = pool.OnOutcome(5, Outcome::kDeadlineMiss);
    ASSERT_EQ(d.kind, SessionDecision::kRetry) << attempt;
    EXPECT_EQ(d.attempt, attempt);
    EXPECT_GE(d.delay, prev);
    prev = d.delay;
  }
  const SessionDecision give_up = pool.OnOutcome(5, Outcome::kRejected);
  EXPECT_EQ(give_up.kind, SessionDecision::kAbandon);
  EXPECT_EQ(give_up.attempt, 4);
}

TEST(SessionPoolTest, PatienceBudgetAbandonsEarly) {
  SessionParams p;
  p.sessions = 1;
  p.max_retries = 100;
  p.patience = MillisToSim(8.0);  // roughly one think+backoff delay
  SessionPool pool(p);
  QueryRequest q;
  pool.OnSubmit(1, q);
  int retries = 0;
  while (true) {
    const SessionDecision d = pool.OnOutcome(1, Outcome::kRejected);
    if (d.kind == SessionDecision::kAbandon) break;
    ASSERT_EQ(d.kind, SessionDecision::kRetry);
    ASSERT_LT(++retries, 100) << "patience never exhausted";
  }
  EXPECT_LT(retries, 3);  // the budget covers at most one ~7 ms delay
}

TEST(SessionPoolTest, DropRetryHookSilentlyDropsTheNthDecision) {
  SessionParams p;
  p.sessions = 1;
  p.drop_retry_at = 2;
  SessionPool pool(p);
  QueryRequest q;
  pool.OnSubmit(1, q);
  pool.OnSubmit(2, q);
  EXPECT_EQ(pool.OnOutcome(1, Outcome::kRejected).kind,
            SessionDecision::kRetry);
  // The second retry decision of the run vanishes: no retry, no abandon.
  EXPECT_EQ(pool.OnOutcome(2, Outcome::kRejected).kind,
            SessionDecision::kNone);
  // And its chain is gone for good.
  EXPECT_EQ(pool.OnOutcome(2, Outcome::kRejected).kind,
            SessionDecision::kNone);
}

TEST(SessionPoolTest, FaultInjectedQueriesAreNeverEligible) {
  SessionParams p;
  p.sessions = 4;
  SessionPool pool(p);
  EXPECT_FALSE(pool.Eligible(kInvalidTxn));
  EXPECT_TRUE(pool.Eligible(0));
  SessionPool off{SessionParams{}};
  EXPECT_FALSE(off.Eligible(0));
}

/// Conservation properties over a real engine run under storm pressure.
class SessionConservationTest : public ::testing::Test {
 protected:
  StatusOr<ExperimentResult> Run(const EngineParams& engine,
                                 const std::string& policy = "unit",
                                 const std::string& trace_path = "") {
    auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                  UpdateDistribution::kUniform,
                                  /*scale=*/0.05, /*seed=*/42);
    if (!w.ok()) return w.status();
    const double dur = SimToSeconds(w->duration);
    auto spec = FaultScenarioSpec::Parse(
        "fault0.kind = retry-storm\n"
        "fault0.start_s = " + std::to_string(0.4 * dur) + "\n"
        "fault0.end_s = " + std::to_string(0.7 * dur) + "\n"
        "fault0.rate_hz = 60\n");
    if (!spec.ok()) return spec.status();
    auto schedule = FaultSchedule::Compile(*spec, *w, 42);
    if (!schedule.ok()) return schedule.status();
    ObsOptions obs;
    obs.series = true;
    obs.trace_path = trace_path;
    return RunFaultedExperiment(*w, policy, UsmWeights{1.0, 0.5, 1.0, 0.5},
                                *schedule, obs, engine);
  }
};

TEST_F(SessionConservationTest, RequestsEqualSuccessesPlusAbandons) {
  EngineParams engine;
  engine.session.sessions = 16;
  engine.session.max_retries = 3;
  auto r = Run(engine);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const RunMetrics& m = r->metrics;
  EXPECT_GT(m.session_requests, 0);
  EXPECT_GT(m.session_retries, 0) << "storm produced no retries";
  EXPECT_EQ(m.session_requests, m.session_successes + m.session_abandons);
  EXPECT_LE(m.session_retries,
            m.session_requests *
                static_cast<int64_t>(engine.session.max_retries));
  // Every retry resubmits the request through the front door.
  EXPECT_EQ(m.counts.submitted, m.session_requests + m.session_retries +
                                    m.fault_injected_queries);
}

TEST_F(SessionConservationTest, ConservationHoldsWithSheddingAndPatience) {
  EngineParams engine;
  engine.session.sessions = 8;
  engine.session.max_retries = 4;
  engine.session.patience = SecondsToSim(0.5);
  engine.shed_watermark = 6;
  auto r = Run(engine);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const RunMetrics& m = r->metrics;
  EXPECT_GT(m.queries_shed, 0) << "watermark never crossed under the storm";
  EXPECT_EQ(m.session_requests, m.session_successes + m.session_abandons);
  EXPECT_LE(m.session_retries,
            m.session_requests *
                static_cast<int64_t>(engine.session.max_retries));
}

TEST_F(SessionConservationTest, TracePassesEveryInvariantIncludingSessions) {
  const std::string trace =
      ::testing::TempDir() + "/session_conservation.jsonl";
  EngineParams engine;
  engine.session.sessions = 8;
  engine.shed_watermark = 6;
  auto r = Run(engine, "unit", trace);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto events = ReadTraceFile(trace);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  const TraceCheckResult check = CheckTrace(*events);
  EXPECT_TRUE(check.ok()) << TraceCheckSummary(check);
  EXPECT_GT(check.session_retries, 0);
  EXPECT_GT(check.sheds, 0);
}

TEST_F(SessionConservationTest, SessionsOffIsBitIdenticalToPrePrEngine) {
  // sessions=0 and no watermark must take zero divergent branches: the
  // metrics equal a run with a default-constructed EngineParams, bitwise.
  EngineParams off;
  off.session.sessions = 0;
  off.shed_watermark = 0;
  for (const char* policy : {"unit", "imu", "odu", "qmf"}) {
    auto a = Run(EngineParams{}, policy);
    auto b = Run(off, policy);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->metrics.counts.submitted, b->metrics.counts.submitted);
    EXPECT_EQ(a->metrics.counts.success, b->metrics.counts.success);
    EXPECT_EQ(a->metrics.counts.rejected, b->metrics.counts.rejected);
    EXPECT_EQ(a->metrics.counts.dmf, b->metrics.counts.dmf);
    EXPECT_EQ(a->metrics.busy_s, b->metrics.busy_s);  // exact, not Near
    EXPECT_EQ(a->metrics.query_response_s.sum(),
              b->metrics.query_response_s.sum());
    EXPECT_EQ(a->usm, b->usm);
    EXPECT_EQ(a->metrics.session_requests, 0);
    EXPECT_EQ(a->metrics.queries_shed, 0);
  }
}

}  // namespace
}  // namespace unitdb
