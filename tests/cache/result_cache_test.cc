// Unit tests for the result-cache index (cache/result_cache.h): coverage
// lookups, FIFO-by-first-population eviction, invalidation, and the lazy
// tombstone discipline of the stamp queue. The reference engine mirrors
// these semantics with a flat vector; the differential oracle pins the two
// against each other at run level, so these tests pin the *intended*
// semantics directly.

#include "unit/cache/result_cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace unitdb {
namespace {

TEST(CacheParamsTest, DisabledByDefault) {
  CacheParams p;
  EXPECT_EQ(p.capacity, 0);
  EXPECT_EQ(p.max_hit_udrop, -1);
  EXPECT_FALSE(p.enabled());
  p.capacity = 1;
  EXPECT_TRUE(p.enabled());
}

ResultCache MakeCache(int capacity) {
  CacheParams p;
  p.capacity = capacity;
  return ResultCache(p);
}

TEST(ResultCacheTest, EmptyReadSetIsTriviallyCovered) {
  ResultCache c = MakeCache(4);
  EXPECT_TRUE(c.Covers(ItemSpan{}));
  EXPECT_FALSE(c.Covers({ItemId{1}}));
}

TEST(ResultCacheTest, PopulateMakesItemsCovered) {
  ResultCache c = MakeCache(4);
  c.Populate(1);
  c.Populate(2);
  EXPECT_EQ(c.size(), 2);
  EXPECT_TRUE(c.Covers({ItemId{1}}));
  EXPECT_TRUE(c.Covers({ItemId{1}, ItemId{2}}));
  EXPECT_FALSE(c.Covers({ItemId{1}, ItemId{3}}));  // one uncovered item
}

TEST(ResultCacheTest, EvictionIsFifoByFirstPopulation) {
  ResultCache c = MakeCache(2);
  c.Populate(1);
  c.Populate(2);
  c.Populate(3);  // full: evicts 1, the oldest
  EXPECT_EQ(c.size(), 2);
  EXPECT_FALSE(c.Covers({ItemId{1}}));
  EXPECT_TRUE(c.Covers({ItemId{2}, ItemId{3}}));
}

TEST(ResultCacheTest, RepopulatingAPresentEntryKeepsItsSlot) {
  ResultCache c = MakeCache(2);
  c.Populate(1);
  c.Populate(2);
  c.Populate(1);  // no-op: 1 keeps its original (oldest) position
  c.Populate(3);  // evicts 1, not 2
  EXPECT_FALSE(c.Covers({ItemId{1}}));
  EXPECT_TRUE(c.Covers({ItemId{2}, ItemId{3}}));
}

TEST(ResultCacheTest, InvalidateErasesAndReportsPresence) {
  ResultCache c = MakeCache(4);
  c.Populate(1);
  EXPECT_TRUE(c.Invalidate(1));
  EXPECT_FALSE(c.Covers({ItemId{1}}));
  EXPECT_EQ(c.size(), 0);
  EXPECT_FALSE(c.Invalidate(1));  // already gone
  EXPECT_FALSE(c.Invalidate(9));  // never present
}

TEST(ResultCacheTest, EvictionSkipsInvalidatedTombstones) {
  ResultCache c = MakeCache(2);
  c.Populate(1);
  c.Populate(2);
  c.Invalidate(1);  // leaves a stale node at the front of the queue
  c.Populate(3);    // room available, no eviction
  EXPECT_EQ(c.size(), 2);
  c.Populate(4);  // full again: must evict 2 (oldest live), skipping 1's node
  EXPECT_FALSE(c.Covers({ItemId{2}}));
  EXPECT_TRUE(c.Covers({ItemId{3}, ItemId{4}}));
}

TEST(ResultCacheTest, RepopulationAfterInvalidateIsYoungAgain) {
  ResultCache c = MakeCache(2);
  c.Populate(1);
  c.Populate(2);
  c.Invalidate(1);
  c.Populate(1);  // fresh entry: now the youngest, with a stale old node
  c.Populate(3);  // evicts 2, the oldest live entry
  EXPECT_TRUE(c.Covers({ItemId{1}, ItemId{3}}));
  EXPECT_FALSE(c.Covers({ItemId{2}}));
}

TEST(ResultCacheTest, CapacityOneChurnsDeterministically) {
  ResultCache c = MakeCache(1);
  for (ItemId item = 0; item < 50; ++item) {
    c.Populate(item);
    EXPECT_EQ(c.size(), 1);
    EXPECT_TRUE(c.Covers({item}));
    if (item > 0) {
      EXPECT_FALSE(c.Covers({item - 1}));
    }
  }
}

}  // namespace
}  // namespace unitdb
