// Engine-level behavior of the freshness-aware result cache: the
// capacity=0 no-op contract (bit-identical to a default engine for every
// policy), hit/miss/skip accounting over a real run, the Udrop staleness
// bound, reference-vs-optimized agreement through the differential oracle,
// trace invariant 8 on a cached run, and merged counters under sharding.

#include <string>

#include <gtest/gtest.h>

#include "unit/model/diff.h"
#include "unit/obs/trace_check.h"
#include "unit/obs/trace_reader.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

StatusOr<Workload> StandardWorkload(UpdateVolume volume = UpdateVolume::kMedium) {
  return MakeStandardWorkload(volume, UpdateDistribution::kUniform,
                              /*scale=*/0.05, /*seed=*/42);
}

constexpr UsmWeights kWeights{1.0, 0.5, 1.0, 0.5};

EngineParams CachedEngine(int capacity, int64_t max_hit_udrop = -1) {
  EngineParams e;
  e.cache.capacity = capacity;
  e.cache.max_hit_udrop = max_hit_udrop;
  return e;
}

TEST(CacheEngineTest, CacheOffIsBitIdenticalToDefaultEngine) {
  // capacity=0 must take zero divergent branches: a run with the cache
  // struct explicitly zeroed equals a default-constructed EngineParams run,
  // bitwise, for every policy.
  auto w = StandardWorkload();
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EngineParams off;
  off.cache.capacity = 0;
  off.cache.max_hit_udrop = 5;  // ignored while disabled
  for (const char* policy : {"unit", "imu", "odu", "qmf"}) {
    auto a = RunExperiment(*w, policy, kWeights);
    auto b = RunExperiment(*w, policy, kWeights, off);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->metrics.counts.submitted, b->metrics.counts.submitted);
    EXPECT_EQ(a->metrics.counts.success, b->metrics.counts.success);
    EXPECT_EQ(a->metrics.counts.rejected, b->metrics.counts.rejected);
    EXPECT_EQ(a->metrics.counts.dmf, b->metrics.counts.dmf);
    EXPECT_EQ(a->metrics.counts.dsf, b->metrics.counts.dsf);
    EXPECT_EQ(a->metrics.busy_s, b->metrics.busy_s);  // exact, not Near
    EXPECT_EQ(a->metrics.query_response_s.sum(),
              b->metrics.query_response_s.sum());
    EXPECT_EQ(a->usm, b->usm);
    EXPECT_EQ(b->metrics.cache_hits, 0);
    EXPECT_EQ(b->metrics.cache_misses, 0);
    EXPECT_EQ(b->metrics.cache_invalidations, 0);
    EXPECT_EQ(b->metrics.cache_stale_skips, 0);
  }
}

TEST(CacheEngineTest, CachedRunHitsAndConserves) {
  auto w = StandardWorkload();
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  auto off = RunExperiment(*w, "unit", kWeights);
  auto on = RunExperiment(*w, "unit", kWeights, CachedEngine(64));
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  const RunMetrics& m = on->metrics;
  EXPECT_GT(m.cache_hits, 0) << "cache never hit on the standard workload";
  EXPECT_GT(m.cache_misses, 0);
  EXPECT_GT(m.cache_invalidations, 0) << "updates never invalidated entries";
  // Every query arrival that reached the cache took exactly one of the
  // three branches; arrivals shed before the check take none.
  EXPECT_LE(m.cache_hits + m.cache_misses + m.cache_stale_skips,
            m.counts.submitted);
  EXPECT_GT(m.cache_hits + m.cache_misses + m.cache_stale_skips, 0);
  // Hits resolve as successes, so success count can only grow.
  EXPECT_GE(m.counts.success, m.cache_hits);
  EXPECT_GE(m.counts.success, off->metrics.counts.success);
  EXPECT_EQ(m.counts.submitted, off->metrics.counts.submitted);
}

TEST(CacheEngineTest, UdropBoundForcesStaleSkips) {
  auto w = StandardWorkload(UpdateVolume::kHigh);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  auto loose = RunExperiment(*w, "unit", kWeights, CachedEngine(64, -1));
  auto strict = RunExperiment(*w, "unit", kWeights, CachedEngine(64, 0));
  ASSERT_TRUE(loose.ok()) << loose.status().ToString();
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  // With max_hit_udrop=0 only perfectly fresh read sets are served; the
  // rest of the covered arrivals become stale skips.
  EXPECT_GT(strict->metrics.cache_stale_skips, 0);
  EXPECT_LE(strict->metrics.cache_hits, loose->metrics.cache_hits);
}

TEST(CacheEngineTest, ReferenceModelAgreesWithCacheOn) {
  auto w = StandardWorkload();
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  for (const char* policy : {"unit", "qmf"}) {
    DiffCase c;
    c.workload = *w;
    c.policy = policy;
    c.weights = kWeights;
    c.engine.cache.capacity = 32;
    auto r = RunDiff(c);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->equivalent) << policy << ": "
                               << (r->divergences.empty()
                                       ? std::string("(no messages)")
                                       : r->divergences.front());
    EXPECT_GT(r->optimized.metrics.cache_hits, 0);
  }
}

TEST(CacheEngineTest, TracedCachedRunPassesEveryInvariant) {
  const std::string trace = ::testing::TempDir() + "/cache_engine.jsonl";
  auto w = StandardWorkload();
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  ObsOptions obs;
  obs.trace_path = trace;
  auto r = RunTracedExperiment(*w, "unit", kWeights, obs, CachedEngine(64));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto events = ReadTraceFile(trace);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  const TraceCheckResult check = CheckTrace(*events);
  EXPECT_TRUE(check.ok()) << TraceCheckSummary(check);
  // The invariant-8 staleness leg actually exercised something.
  EXPECT_GT(check.cache_hits, 0);
  EXPECT_GT(check.cache_invalidations, 0);
  EXPECT_EQ(check.cache_hits, r->metrics.cache_hits);
  EXPECT_EQ(check.cache_invalidations, r->metrics.cache_invalidations);
}

TEST(CacheEngineTest, ShardedRunMergesCacheCounters) {
  auto w = StandardWorkload();
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  auto mono = RunShardedExperiment(*w, "unit", kWeights, /*shards=*/1,
                                   /*jobs=*/1, CachedEngine(32));
  auto sharded = RunShardedExperiment(*w, "unit", kWeights, /*shards=*/4,
                                      /*jobs=*/2, CachedEngine(32));
  ASSERT_TRUE(mono.ok()) << mono.status().ToString();
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  // shards=1 is the identity, so its counters match the monolithic run.
  auto direct = RunExperiment(*w, "unit", kWeights, CachedEngine(32));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(mono->metrics.cache_hits, direct->metrics.cache_hits);
  EXPECT_EQ(mono->metrics.cache_invalidations,
            direct->metrics.cache_invalidations);
  // Per-shard caches still hit; the merged view sums them.
  EXPECT_GT(sharded->metrics.cache_hits, 0);
  EXPECT_GT(sharded->metrics.cache_invalidations, 0);
}

}  // namespace
}  // namespace unitdb
