// Equivalence properties of the incremental admission index (PR's tentpole):
// the Fenwick/segment-tree path must make bit-identical decisions to the
// seed's naive ready-queue scan, on every arrival, across every Table 1
// trace, policy, weight setting, and C_flex.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "testing/fake_policy.h"
#include "unit/core/admission.h"
#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"
#include "unit/workload/spec.h"

namespace unitdb {
namespace {

using testing_support::FakePolicy;

const UpdateVolume kVolumes[] = {UpdateVolume::kLow, UpdateVolume::kMedium,
                                 UpdateVolume::kHigh};
const UpdateDistribution kDists[] = {UpdateDistribution::kUniform,
                                     UpdateDistribution::kPositive,
                                     UpdateDistribution::kNegative};

// --- per-arrival oracle equivalence --------------------------------------

struct ProbeStats {
  int64_t decisions = 0;
  int64_t rejections = 0;
  int64_t nonempty_queue = 0;  ///< decisions taken with queued queries
};

/// Runs one standard workload under a FakePolicy that consults two
/// controllers per arrival — indexed and naive-scan — and asserts they agree
/// on every single decision (the engine proceeds with the indexed one).
ProbeStats RunProbed(const Workload& w, double c_flex,
                     const UsmWeights& weights,
                     const FaultSchedule* faults = nullptr) {
  AdmissionParams indexed_params;
  indexed_params.initial_c_flex = c_flex;
  indexed_params.use_index = true;
  AdmissionParams naive_params = indexed_params;
  naive_params.use_index = false;
  AdmissionController indexed(indexed_params, weights);
  AdmissionController naive(naive_params, weights);

  ProbeStats stats;
  FakePolicy policy;
  policy.admit = [&](EngineContext& engine, const Transaction& q) {
    const bool a = indexed.Admit(engine, q);
    const bool b = naive.Admit(engine, q);
    EXPECT_EQ(a, b) << "decision split for query txn " << q.id() << " at t="
                    << engine.now();
    ++stats.decisions;
    if (!a) ++stats.rejections;
    if (engine.ReadyQueryCount() > 0) ++stats.nonempty_queue;
    return a;
  };
  EngineParams params;
  params.faults = faults;
  Engine engine(w, &policy, params);
  engine.Run();

  // The two controllers saw identical inputs, so their counters must agree.
  EXPECT_EQ(indexed.admitted(), naive.admitted());
  EXPECT_EQ(indexed.rejected_by_deadline(), naive.rejected_by_deadline());
  EXPECT_EQ(indexed.rejected_by_usm(), naive.rejected_by_usm());
  return stats;
}

TEST(AdmissionIndexEquivalenceTest, MatchesNaiveOnEveryArrival) {
  const double c_flexes[] = {0.5, 1.0, 4.0};
  const UsmWeights weight_sets[] = {
      UsmWeights{},                  // naive: unit-cost USM check
      UsmWeights{1.0, 0.5, 1.0, 0.5},  // C_fm > C_r: both checks live
      UsmWeights{1.0, 2.0, 1.0, 0.5},  // C_r > C_fm: deadline check skipped
  };
  ProbeStats total;
  for (UpdateVolume volume : kVolumes) {
    for (UpdateDistribution dist : kDists) {
      auto w = MakeStandardWorkload(volume, dist, /*scale=*/0.02, /*seed=*/42);
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      for (double c_flex : c_flexes) {
        for (const UsmWeights& weights : weight_sets) {
          const ProbeStats s = RunProbed(*w, c_flex, weights);
          total.decisions += s.decisions;
          total.rejections += s.rejections;
          total.nonempty_queue += s.nonempty_queue;
        }
      }
    }
  }
  // The sweep must actually exercise both checks: decisions with a
  // non-trivial queue and real rejections, not just vacuous agreement.
  EXPECT_GT(total.decisions, 0);
  EXPECT_GT(total.rejections, 0);
  EXPECT_GT(total.nonempty_queue, 0);
}

// --- full-run equivalence across every policy ----------------------------

void ExpectSameOutcome(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.metrics.counts.submitted, b.metrics.counts.submitted);
  EXPECT_EQ(a.metrics.counts.success, b.metrics.counts.success);
  EXPECT_EQ(a.metrics.counts.rejected, b.metrics.counts.rejected);
  EXPECT_EQ(a.metrics.counts.dmf, b.metrics.counts.dmf);
  EXPECT_EQ(a.metrics.counts.dsf, b.metrics.counts.dsf);
  EXPECT_EQ(a.metrics.preemptions, b.metrics.preemptions);
  EXPECT_EQ(a.metrics.lock_restarts, b.metrics.lock_restarts);
  EXPECT_EQ(a.metrics.update_commits, b.metrics.update_commits);
  EXPECT_EQ(a.usm, b.usm);  // bit-identical, not approximately equal
}

TEST(AdmissionIndexEquivalenceTest, FullRunsMatchOnAllTracesAndPolicies) {
  const std::vector<std::string> policies = {"imu", "odu", "qmf", "unit"};
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  EngineParams indexed_engine;
  EngineParams naive_engine;
  naive_engine.use_admission_index = false;
  PolicyOptions indexed_options;
  PolicyOptions naive_options;
  naive_options.unit.admission.use_index = false;
  for (UpdateVolume volume : kVolumes) {
    for (UpdateDistribution dist : kDists) {
      auto w = MakeStandardWorkload(volume, dist, /*scale=*/0.02, /*seed=*/42);
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      for (const std::string& policy : policies) {
        auto a = RunExperiment(*w, policy, weights, indexed_engine,
                               indexed_options);
        auto b =
            RunExperiment(*w, policy, weights, naive_engine, naive_options);
        ASSERT_TRUE(a.ok() && b.ok());
        SCOPED_TRACE(w->update_trace_name + " / " + policy);
        ExpectSameOutcome(*a, *b);
      }
    }
  }
}

// A burst-plus-outage-plus-load-step schedule: injected queries enter the
// ready queue through RankOfInjected, so the indexed controller must agree
// with the naive scan while the queue holds a mix of workload and injected
// transactions.
StatusOr<FaultSchedule> StressSchedule(const Workload& w) {
  const double duration_s = SimToSeconds(w.duration);
  auto spec = FaultScenarioSpec::Parse(
      "fault0.kind = load-step\n"
      "fault0.start_s = " + std::to_string(0.25 * duration_s) + "\n"
      "fault0.end_s = " + std::to_string(0.75 * duration_s) + "\n"
      "fault0.rate_hz = 25\n"
      "fault1.kind = update-burst\n"
      "fault1.start_s = " + std::to_string(0.3 * duration_s) + "\n"
      "fault1.end_s = " + std::to_string(0.5 * duration_s) + "\n"
      "fault1.items = *\nfault1.rate_hz = 2\n"
      "fault2.kind = update-outage\n"
      "fault2.start_s = " + std::to_string(0.55 * duration_s) + "\n"
      "fault2.end_s = " + std::to_string(0.7 * duration_s) + "\n"
      "fault2.items = *\n");
  if (!spec.ok()) return spec.status();
  return FaultSchedule::Compile(*spec, w, 42);
}

TEST(AdmissionIndexEquivalenceTest, FaultLadenArrivalsMatchNaive) {
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  ProbeStats total;
  for (UpdateDistribution dist : kDists) {
    auto w = MakeStandardWorkload(UpdateVolume::kMedium, dist,
                                  /*scale=*/0.02, /*seed=*/42);
    ASSERT_TRUE(w.ok());
    auto faults = StressSchedule(*w);
    ASSERT_TRUE(faults.ok()) << faults.status().ToString();
    ASSERT_FALSE(faults->injected_queries().empty());
    for (double c_flex : {0.5, 1.0}) {
      const ProbeStats s = RunProbed(*w, c_flex, weights, &*faults);
      // Injected queries face the same admission decision as workload ones.
      EXPECT_GT(s.decisions, static_cast<int64_t>(w->queries.size()));
      total.decisions += s.decisions;
      total.rejections += s.rejections;
      total.nonempty_queue += s.nonempty_queue;
    }
  }
  EXPECT_GT(total.rejections, 0);
  EXPECT_GT(total.nonempty_queue, 0);
}

TEST(AdmissionIndexEquivalenceTest, FaultLadenFullRunsMatch) {
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  EngineParams naive_engine;
  naive_engine.use_admission_index = false;
  PolicyOptions naive_options;
  naive_options.unit.admission.use_index = false;
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform,
                                /*scale=*/0.02, /*seed=*/42);
  ASSERT_TRUE(w.ok());
  auto faults = StressSchedule(*w);
  ASSERT_TRUE(faults.ok()) << faults.status().ToString();
  for (const char* policy : {"imu", "odu", "qmf", "unit"}) {
    auto a = RunFaultedExperiment(*w, policy, weights, *faults, {}, {}, {});
    auto b = RunFaultedExperiment(*w, policy, weights, *faults, {},
                                  naive_engine, naive_options);
    ASSERT_TRUE(a.ok() && b.ok());
    SCOPED_TRACE(policy);
    ExpectSameOutcome(*a, *b);
    EXPECT_GT(a->metrics.fault_injected_queries, 0);
    EXPECT_EQ(a->metrics.fault_injected_queries,
              b->metrics.fault_injected_queries);
    EXPECT_EQ(a->metrics.fault_suppressed_updates,
              b->metrics.fault_suppressed_updates);
  }
}

TEST(AdmissionIndexEquivalenceTest, EventCompactionDoesNotChangeOutcomes) {
  EngineParams compacting;
  EngineParams lazy_only;
  lazy_only.compact_events = false;
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  for (UpdateVolume volume : {UpdateVolume::kMedium, UpdateVolume::kHigh}) {
    auto w = MakeStandardWorkload(volume, UpdateDistribution::kNegative,
                                  /*scale=*/0.05, /*seed=*/42);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    for (const char* policy : {"unit", "qmf"}) {
      auto a = RunExperiment(*w, policy, weights, compacting);
      auto b = RunExperiment(*w, policy, weights, lazy_only);
      ASSERT_TRUE(a.ok() && b.ok());
      SCOPED_TRACE(w->update_trace_name + " / " + policy);
      ExpectSameOutcome(*a, *b);
      // Tombstones accumulate either way; only the compacting run removes
      // them from the heap.
      EXPECT_GT(a->metrics.events_cancelled, 0);
      EXPECT_EQ(a->metrics.events_cancelled, b->metrics.events_cancelled);
      EXPECT_EQ(b->metrics.events_compacted, 0);
      EXPECT_LE(a->metrics.events_processed, b->metrics.events_processed);
    }
  }
}

TEST(AdmissionIndexTest, DisabledUnderFcfsDispatch) {
  auto w = MakeStandardWorkload(UpdateVolume::kLow, UpdateDistribution::kUniform,
                                /*scale=*/0.01, /*seed=*/42);
  ASSERT_TRUE(w.ok());
  FakePolicy policy;
  EngineParams params;
  params.discipline = QueueDiscipline::kFcfs;
  Engine engine(*w, &policy, params);
  EXPECT_FALSE(engine.admission_index().enabled());
  engine.Run();  // and the run itself stays well-formed
}

// --- randomized structural check against brute force ---------------------

TEST(AdmissionIndexTest, RandomizedMatchesBruteForce) {
  std::mt19937_64 rng(20260805);
  const int kQueries = 200;

  Workload w;
  w.num_items = 4;
  w.duration = SecondsToSim(1000.0);
  SimTime arrival = 0;
  for (int i = 0; i < kQueries; ++i) {
    QueryRequest q;
    q.id = i;
    arrival += static_cast<SimTime>(rng() % MillisToSim(50));
    q.arrival = arrival;  // already arrival-sorted: creation order == index
    q.exec = 1 + static_cast<SimDuration>(rng() % MillisToSim(200));
    q.relative_deadline = 1 + static_cast<SimDuration>(rng() % SecondsToSim(2.0));
    q.freshness_req = 0.9;
    q.items = {0};
    w.queries.push_back(q);
  }

  AdmissionIndex index;
  index.Init(w);

  std::vector<Transaction> txns;
  txns.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    const QueryRequest& q = w.queries[i];
    txns.push_back(Transaction::MakeQuery(i, q.arrival, q.exec,
                                          q.relative_deadline,
                                          q.freshness_req, q.items));
    ASSERT_GE(index.RankOfQuery(i), 0);
    txns.back().set_admission_rank(index.RankOfQuery(i));
  }

  std::vector<bool> queued(kQueries, false);
  // Reference answers come from re-simulating the naive scan over the queued
  // set in EDF (deadline, id) order.
  auto brute = [&](SimTime d, int64_t lo, int64_t hi, SimDuration* earlier,
                   int64_t* later_count) -> int64_t {
    std::vector<const Transaction*> later;
    *earlier = 0;
    for (int i = 0; i < kQueries; ++i) {
      if (!queued[i]) continue;
      if (txns[i].absolute_deadline() <= d) {
        *earlier += txns[i].remaining();
      } else {
        later.push_back(&txns[i]);
      }
    }
    std::sort(later.begin(), later.end(),
              [](const Transaction* a, const Transaction* b) {
                if (a->absolute_deadline() != b->absolute_deadline())
                  return a->absolute_deadline() < b->absolute_deadline();
                return a->id() < b->id();
              });
    *later_count = static_cast<int64_t>(later.size());
    int64_t prefix = 0;
    int64_t endangered = 0;
    for (const Transaction* t : later) {
      prefix += t->remaining();
      const int64_t m = t->absolute_deadline() - prefix;
      if (m >= lo && m < hi) ++endangered;
    }
    return endangered;
  };

  for (int step = 0; step < 3000; ++step) {
    const int i = static_cast<int>(rng() % kQueries);
    if (queued[i]) {
      index.OnRemove(txns[i]);
      queued[i] = false;
    } else {
      // Remaining work only changes while a query is out of the queue.
      txns[i].set_remaining(1 + static_cast<SimDuration>(
                                    rng() % txns[i].exec_time()));
      index.OnInsert(txns[i]);
      queued[i] = true;
    }

    // Probe with a deadline near a random query's and a random lag window.
    const int probe = static_cast<int>(rng() % kQueries);
    const SimTime d = txns[probe].absolute_deadline() +
                      static_cast<SimTime>(rng() % MillisToSim(10)) -
                      MillisToSim(5);
    const int64_t lo = static_cast<int64_t>(rng() % SecondsToSim(3.0));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng() % SecondsToSim(1.0));
    SimDuration want_earlier = 0;
    int64_t want_later = 0;
    const int64_t want_endangered = brute(d, lo, hi, &want_earlier, &want_later);
    ASSERT_EQ(index.EarlierWork(d), want_earlier) << "step " << step;
    ASSERT_EQ(index.LaterCount(d), want_later) << "step " << step;
    ASSERT_EQ(index.CountEndangered(d, lo, hi), want_endangered)
        << "step " << step << " d=" << d << " lo=" << lo << " hi=" << hi;
  }
}

TEST(AdmissionIndexTest, RanksFollowDeadlineThenArrivalOrder) {
  Workload w;
  w.num_items = 1;
  w.duration = SecondsToSim(10.0);
  // Arrivals 0,1,2,3 with deadlines 5s, 2s, 5s, 1s.
  const double deadlines_s[] = {5.0, 2.0, 5.0, 1.0};
  for (int i = 0; i < 4; ++i) {
    QueryRequest q;
    q.id = i;
    q.arrival = SecondsToSim(static_cast<double>(i) * 0.1);
    q.exec = MillisToSim(10);
    q.relative_deadline =
        SecondsToSim(deadlines_s[i]) - q.arrival;  // absolute = deadlines_s
    q.freshness_req = 0.9;
    q.items = {0};
    w.queries.push_back(q);
  }
  AdmissionIndex index;
  index.Init(w);
  EXPECT_EQ(index.RankOfQuery(3), 0);  // 1s
  EXPECT_EQ(index.RankOfQuery(1), 1);  // 2s
  EXPECT_EQ(index.RankOfQuery(0), 2);  // 5s, earlier arrival
  EXPECT_EQ(index.RankOfQuery(2), 3);  // 5s, later arrival
}

}  // namespace
}  // namespace unitdb
