#include "unit/core/update_modulation.h"

#include <gtest/gtest.h>

#include "unit/txn/transaction.h"

namespace unitdb {
namespace {

ItemUpdateSpec Source(ItemId item, double period_s, double exec_ms) {
  ItemUpdateSpec s;
  s.item = item;
  s.ideal_period = SecondsToSim(period_s);
  s.update_exec = MillisToSim(exec_ms);
  s.phase = 0;
  return s;
}

Transaction Query(double exec_ms, double deadline_s) {
  return Transaction::MakeQuery(1, 0, MillisToSim(exec_ms),
                                SecondsToSim(deadline_s), 0.9, {0});
}

ModulationParams EventDecayParams() {
  ModulationParams p;
  p.time_decay = false;  // literal per-event Eq. 8 for predictable math
  return p;
}

TEST(UpdateModulatorTest, ArrivalsRaiseTickets) {
  UpdateModulator um(4, EventDecayParams());
  const double before = um.ticket(2);
  um.OnUpdateArrival(2, MillisToSim(100.0), SecondsToSim(1.0));
  EXPECT_GT(um.ticket(2), before);
}

TEST(UpdateModulatorTest, AccessesLowerTickets) {
  ModulationParams p = EventDecayParams();
  UpdateModulator um(4, p);
  um.OnUpdateArrival(1, MillisToSim(100.0), SecondsToSim(1.0));
  const double before = um.ticket(1);
  um.OnQueryAccess(1, Query(50.0, 1.0), SecondsToSim(2.0));
  EXPECT_LT(um.ticket(1), before);
}

TEST(UpdateModulatorTest, TicketsClampAtFloor) {
  ModulationParams p = EventDecayParams();
  p.ticket_floor = -1.0;
  p.dt_scale = 1000.0;
  UpdateModulator um(2, p);
  for (int i = 0; i < 10; ++i) {
    um.OnQueryAccess(0, Query(100.0, 1.0), SecondsToSim(i));
  }
  EXPECT_DOUBLE_EQ(um.ticket(0), -1.0);
}

TEST(UpdateModulatorTest, PerEventForgettingDiscountsHistory) {
  ModulationParams p = EventDecayParams();
  p.c_forget = 0.5;
  UpdateModulator um(2, p);
  um.OnUpdateArrival(0, MillisToSim(100.0), 0);
  const double t1 = um.ticket(0);
  um.OnUpdateArrival(0, MillisToSim(100.0), 0);
  const double t2 = um.ticket(0);
  // Second ticket = 0.5 * t1 + IT, with IT == t1 (same execution time).
  EXPECT_NEAR(t2, 1.5 * t1, 1e-9);
}

TEST(UpdateModulatorTest, TimeDecayForgetsIndependentlyOfEventRate) {
  ModulationParams p;
  p.time_decay = true;
  p.forget_interval_s = 10.0;
  p.c_forget = 0.9;
  UpdateModulator um(2, p);
  um.OnUpdateArrival(0, MillisToSim(100.0), SecondsToSim(0.0));
  const double t0 = um.ticket(0);
  // 100 seconds of silence: decay 0.9^10 ~ 0.349 before the new IT lands.
  um.OnUpdateArrival(0, MillisToSim(100.0), SecondsToSim(100.0));
  const double t1 = um.ticket(0);
  EXPECT_NEAR(t1, t0 * 0.3487 + t0, t0 * 0.01);
}

TEST(UpdateModulatorTest, SigmoidGrowsWithExecutionTime) {
  ModulationParams p = EventDecayParams();
  UpdateModulator um(3, p);
  // Seed the running average with a mix of execution times.
  um.OnUpdateArrival(0, MillisToSim(50.0), 0);
  um.OnUpdateArrival(0, MillisToSim(150.0), 0);
  UpdateModulator cheap(1, p), costly(1, p);
  cheap.OnUpdateArrival(0, MillisToSim(50.0), 0);
  costly.OnUpdateArrival(0, MillisToSim(150.0), 0);
  // Within one modulator, a longer update adds a larger IT than a shorter
  // one relative to the same running average.
  UpdateModulator um2(2, p);
  um2.OnUpdateArrival(0, MillisToSim(100.0), 0);  // sets avg = 100ms
  um2.OnUpdateArrival(1, MillisToSim(100.0), 0);
  const double base0 = um2.ticket(0);
  um2.OnUpdateArrival(0, MillisToSim(300.0), 0);   // longer than average
  um2.OnUpdateArrival(1, MillisToSim(10.0), 0);    // shorter than average
  EXPECT_GT(um2.ticket(0) - base0 * p.c_forget,
            um2.ticket(1) - base0 * p.c_forget);
}

TEST(UpdateModulatorTest, DegradeStretchesVictimPeriods) {
  Database db(4);
  ASSERT_TRUE(db.ApplySpecs({Source(0, 10, 50), Source(1, 10, 50)}).ok());
  ModulationParams p = EventDecayParams();
  p.degrade_batch = 64;
  UpdateModulator um(4, p);
  um.AttachSources(db);
  EXPECT_EQ(um.sampler().eligible_count(), 2);
  Rng rng(3);
  um.Degrade(db, rng);
  EXPECT_EQ(um.degrade_signals(), 1);
  EXPECT_EQ(um.total_picks(), 64);
  EXPECT_GT(db.DegradedCount(), 0);
  const SimDuration pc0 = db.item(0).current_period;
  const SimDuration pc1 = db.item(1).current_period;
  EXPECT_GE(pc0, db.item(0).ideal_period);
  EXPECT_GE(pc1, db.item(1).ideal_period);
  EXPECT_GT(pc0 + pc1, 2 * db.item(0).ideal_period);
}

TEST(UpdateModulatorTest, DegradeRespectsMaxStretch) {
  Database db(1);
  ASSERT_TRUE(db.SetSource(Source(0, 10, 50)).ok());
  ModulationParams p = EventDecayParams();
  p.max_stretch = 4.0;
  p.c_du = 1.0;  // double per pick
  p.degrade_batch = 16;
  UpdateModulator um(1, p);
  um.AttachSources(db);
  Rng rng(5);
  for (int i = 0; i < 5; ++i) um.Degrade(db, rng);
  EXPECT_LE(db.item(0).current_period, SecondsToSim(40.0));
}

TEST(UpdateModulatorTest, ItemsWithoutSourcesAreNeverVictims) {
  Database db(3);
  ASSERT_TRUE(db.SetSource(Source(1, 10, 50)).ok());
  ModulationParams p = EventDecayParams();
  p.degrade_batch = 32;
  UpdateModulator um(3, p);
  um.AttachSources(db);
  Rng rng(7);
  um.Degrade(db, rng);
  EXPECT_EQ(db.item(0).current_period, kNoUpdates);
  EXPECT_GT(db.item(1).current_period, db.item(1).ideal_period);
}

TEST(UpdateModulatorTest, SelectiveUpgradeRestoresOnlyDemandedItems) {
  Database db(3);
  ASSERT_TRUE(db.ApplySpecs({Source(0, 10, 50), Source(1, 10, 50),
                             Source(2, 10, 50)}).ok());
  ModulationParams p = EventDecayParams();
  p.selective_upgrade = true;
  UpdateModulator um(3, p);
  um.AttachSources(db);
  db.SetCurrentPeriod(0, SecondsToSim(40.0));
  db.SetCurrentPeriod(1, SecondsToSim(40.0));
  um.OnStaleAccess(1);  // only item 1 was observed stale
  auto touched = um.Upgrade(db);
  EXPECT_EQ(touched, (std::vector<ItemId>{1}));
  EXPECT_EQ(db.item(0).current_period, SecondsToSim(40.0));  // untouched
  // Item 1's ticket is <= 0 (no arrivals recorded): full restore.
  EXPECT_EQ(db.item(1).current_period, SecondsToSim(10.0));
}

TEST(UpdateModulatorTest, SelectiveUpgradeHalvesOverUpdatedItems) {
  Database db(1);
  ASSERT_TRUE(db.SetSource(Source(0, 10, 50)).ok());
  ModulationParams p = EventDecayParams();
  p.selective_upgrade = true;
  p.c_uu = 0.5;
  UpdateModulator um(1, p);
  um.AttachSources(db);
  // Build a clearly positive ticket: many update arrivals, no accesses.
  for (int i = 0; i < 10; ++i) {
    um.OnUpdateArrival(0, MillisToSim(50.0), SecondsToSim(i * 10.0));
  }
  ASSERT_GT(um.ticket(0), 0.0);
  db.SetCurrentPeriod(0, SecondsToSim(80.0));
  um.OnStaleAccess(0);
  um.Upgrade(db);
  EXPECT_EQ(db.item(0).current_period, SecondsToSim(40.0));
}

TEST(UpdateModulatorTest, GlobalUpgradeWalksEveryDegradedItem) {
  Database db(2);
  ASSERT_TRUE(db.ApplySpecs({Source(0, 10, 50), Source(1, 10, 50)}).ok());
  ModulationParams p = EventDecayParams();
  p.selective_upgrade = false;
  p.linear_upgrade = false;
  p.c_uu = 0.5;
  UpdateModulator um(2, p);
  um.AttachSources(db);
  db.SetCurrentPeriod(0, SecondsToSim(40.0));
  db.SetCurrentPeriod(1, SecondsToSim(15.0));
  auto touched = um.Upgrade(db);
  EXPECT_EQ(touched.size(), 2u);
  EXPECT_EQ(db.item(0).current_period, SecondsToSim(20.0));
  EXPECT_EQ(db.item(1).current_period, SecondsToSim(10.0));  // clamped
}

TEST(UpdateModulatorTest, GlobalLinearUpgradeSubtractsHalfPeriod) {
  Database db(1);
  ASSERT_TRUE(db.SetSource(Source(0, 10, 50)).ok());
  ModulationParams p = EventDecayParams();
  p.selective_upgrade = false;
  p.linear_upgrade = true;
  p.c_uu = 0.5;
  UpdateModulator um(1, p);
  um.AttachSources(db);
  db.SetCurrentPeriod(0, SecondsToSim(18.0));
  um.Upgrade(db);
  EXPECT_EQ(db.item(0).current_period, SecondsToSim(13.0));
  um.Upgrade(db);
  EXPECT_EQ(db.item(0).current_period, SecondsToSim(10.0));  // clamped
}

TEST(UpdateModulatorTest, StaleHitsAccumulateAndClear) {
  Database db(1);
  ASSERT_TRUE(db.SetSource(Source(0, 10, 50)).ok());
  ModulationParams p = EventDecayParams();
  UpdateModulator um(1, p);
  um.AttachSources(db);
  db.SetCurrentPeriod(0, SecondsToSim(40.0));
  um.OnStaleAccess(0);
  um.OnDegradedAccess(0);
  EXPECT_EQ(um.stale_hits(0), 2);
  um.Upgrade(db);
  EXPECT_EQ(um.stale_hits(0), 0);
}

}  // namespace
}  // namespace unitdb
