#include "unit/core/lbc.h"

#include <gtest/gtest.h>

namespace unitdb {
namespace {

OutcomeCounts Cumulative(int64_t success, int64_t rejected, int64_t dmf,
                         int64_t dsf) {
  OutcomeCounts c;
  c.success = success;
  c.rejected = rejected;
  c.dmf = dmf;
  c.dsf = dsf;
  c.submitted = success + rejected + dmf + dsf;
  return c;
}

LbcParams FastParams() {
  LbcParams p;
  p.grace_period = SecondsToSim(2.0);
  p.min_actionable_ratio = 0.01;
  p.min_actionable_count = 1;
  return p;
}

TEST(LbcTest, SilentBeforeGracePeriod) {
  LoadBalancingController lbc(FastParams(), UsmWeights{});
  Rng rng(1);
  // t=1s: inside the grace period, no USM drop yet.
  EXPECT_EQ(lbc.Tick(SecondsToSim(1.0), Cumulative(5, 0, 5, 0), 0.5, rng),
            ControlSignal::kNone);
}

TEST(LbcTest, GracePeriodTriggersDominantFailure) {
  LoadBalancingController lbc(FastParams(), UsmWeights{});
  Rng rng(2);
  EXPECT_EQ(lbc.Tick(SecondsToSim(2.0), Cumulative(5, 1, 7, 2), 0.5, rng),
            ControlSignal::kDegradeAndTighten);
  EXPECT_EQ(lbc.triggers(), 1);
}

TEST(LbcTest, NothingFailingMeansNoSignal) {
  LoadBalancingController lbc(FastParams(), UsmWeights{});
  Rng rng(3);
  EXPECT_EQ(lbc.Tick(SecondsToSim(2.0), Cumulative(10, 0, 0, 0), 0.5, rng),
            ControlSignal::kNone);
  EXPECT_EQ(lbc.triggers(), 0);
}

TEST(LbcTest, EmptyWindowIsIgnored) {
  LoadBalancingController lbc(FastParams(), UsmWeights{});
  Rng rng(4);
  EXPECT_EQ(lbc.Tick(SecondsToSim(5.0), OutcomeCounts{}, 0.5, rng),
            ControlSignal::kNone);
}

TEST(LbcTest, RejectionDominantLoosensAdmission) {
  LoadBalancingController lbc(FastParams(), UsmWeights{});
  Rng rng(5);
  EXPECT_EQ(lbc.Tick(SecondsToSim(2.0), Cumulative(5, 9, 2, 1), 0.5, rng),
            ControlSignal::kLoosenAdmission);
}

TEST(LbcTest, DsfDominantUpgradesUpdates) {
  LoadBalancingController lbc(FastParams(), UsmWeights{});
  Rng rng(6);
  EXPECT_EQ(lbc.Tick(SecondsToSim(2.0), Cumulative(5, 1, 2, 9), 0.5, rng),
            ControlSignal::kUpgradeUpdates);
}

TEST(LbcTest, WeightsFlipTheDominantCost) {
  // Raw ratios say DMF dominates; a heavy rejection penalty says otherwise.
  UsmWeights weights{1.0, 10.0, 0.1, 0.1};
  LoadBalancingController lbc(FastParams(), weights);
  Rng rng(7);
  EXPECT_EQ(lbc.Tick(SecondsToSim(2.0), Cumulative(5, 2, 6, 1), 0.5, rng),
            ControlSignal::kLoosenAdmission);
}

TEST(LbcTest, WindowResetsAfterEvaluation) {
  LoadBalancingController lbc(FastParams(), UsmWeights{});
  Rng rng(8);
  // First evaluation consumes the DMF-heavy cohort.
  EXPECT_EQ(lbc.Tick(SecondsToSim(2.0), Cumulative(5, 0, 7, 0), 0.5, rng),
            ControlSignal::kDegradeAndTighten);
  // Next window adds only rejections on top of the consumed cohort.
  EXPECT_EQ(lbc.Tick(SecondsToSim(4.0), Cumulative(5, 6, 7, 0), 0.5, rng),
            ControlSignal::kLoosenAdmission);
}

TEST(LbcTest, FloorsSuppressNoise) {
  LbcParams params = FastParams();
  params.min_actionable_count = 3;
  LoadBalancingController lbc(params, UsmWeights{});
  Rng rng(9);
  // Two DSFs among 100 resolved: below both floors -> no action.
  EXPECT_EQ(lbc.Tick(SecondsToSim(2.0), Cumulative(98, 0, 0, 2), 0.5, rng),
            ControlSignal::kNone);
}

TEST(LbcTest, RatioFloorSuppressesTinyFractions) {
  LbcParams params = FastParams();
  params.min_actionable_ratio = 0.05;
  LoadBalancingController lbc(params, UsmWeights{});
  Rng rng(10);
  // 2% DMF ratio is under the 5% floor.
  EXPECT_EQ(lbc.Tick(SecondsToSim(2.0), Cumulative(98, 0, 2, 0), 0.5, rng),
            ControlSignal::kNone);
}

TEST(LbcTest, UsmDropTriggersBeforeGracePeriod) {
  LbcParams params;
  params.grace_period = SecondsToSim(1000.0);  // periodic path disabled
  params.drop_threshold = 0.05;
  params.usm_ewma_alpha = 1.0;  // no smoothing: per-tick USM directly
  params.min_actionable_ratio = 0.01;
  params.min_actionable_count = 1;
  LoadBalancingController lbc(params, UsmWeights{});
  Rng rng(11);
  // Tick 1: all good (initializes the monitor).
  EXPECT_EQ(lbc.Tick(SecondsToSim(1.0), Cumulative(10, 0, 0, 0), 0.5, rng),
            ControlSignal::kNone);
  // Tick 2: the window collapses to 50% success: a huge USM drop.
  EXPECT_EQ(lbc.Tick(SecondsToSim(2.0), Cumulative(15, 0, 5, 0), 0.5, rng),
            ControlSignal::kDegradeAndTighten);
  EXPECT_EQ(lbc.drop_triggers(), 1);
}

TEST(LbcTest, TieBreaksAmongMaximaAreValid) {
  LoadBalancingController lbc(FastParams(), UsmWeights{});
  Rng rng(12);
  const ControlSignal s =
      lbc.Tick(SecondsToSim(2.0), Cumulative(4, 3, 3, 3), 0.5, rng);
  EXPECT_TRUE(s == ControlSignal::kLoosenAdmission ||
              s == ControlSignal::kDegradeAndTighten ||
              s == ControlSignal::kUpgradeUpdates);
}

TEST(LbcTest, PreventiveDegradeFiresOnSaturationWithoutFailures) {
  LbcParams params = FastParams();
  params.preventive_utilization = 0.9;
  LoadBalancingController lbc(params, UsmWeights{});
  Rng rng(13);
  // All queries succeed, but the CPU is pinned: shed load preventively.
  // (The utilization EWMA needs a few ticks to cross the threshold.)
  ControlSignal s = ControlSignal::kNone;
  for (int i = 1; i <= 12; ++i) {
    s = lbc.Tick(SecondsToSim(2.0 * i), Cumulative(10 * i, 0, 0, 0), 0.99,
                 rng);
    if (s != ControlSignal::kNone) break;
  }
  EXPECT_EQ(s, ControlSignal::kPreventiveDegrade);
}

TEST(LbcTest, PreventiveDegradeCanBeDisabled) {
  LbcParams params = FastParams();
  params.preventive_utilization = 2.0;  // unreachable
  LoadBalancingController lbc(params, UsmWeights{});
  Rng rng(14);
  for (int i = 1; i <= 12; ++i) {
    EXPECT_EQ(lbc.Tick(SecondsToSim(2.0 * i), Cumulative(10 * i, 0, 0, 0),
                       0.99, rng),
              ControlSignal::kNone);
  }
}

TEST(LbcTest, IdleSystemNeverDegradesPreventively) {
  LoadBalancingController lbc(FastParams(), UsmWeights{});
  Rng rng(15);
  for (int i = 1; i <= 12; ++i) {
    EXPECT_EQ(lbc.Tick(SecondsToSim(2.0 * i), Cumulative(10 * i, 0, 0, 0),
                       0.3, rng),
              ControlSignal::kNone);
  }
}

TEST(LbcTest, SignalNames) {
  EXPECT_STREQ(ControlSignalName(ControlSignal::kNone), "none");
  EXPECT_STREQ(ControlSignalName(ControlSignal::kLoosenAdmission),
               "loosen-ac");
  EXPECT_STREQ(ControlSignalName(ControlSignal::kDegradeAndTighten),
               "degrade+tighten");
  EXPECT_STREQ(ControlSignalName(ControlSignal::kUpgradeUpdates), "upgrade");
  EXPECT_STREQ(ControlSignalName(ControlSignal::kPreventiveDegrade),
               "preventive-degrade");
}

}  // namespace
}  // namespace unitdb
