#include "unit/core/lottery.h"

#include <gtest/gtest.h>

#include <vector>

namespace unitdb {
namespace {

std::vector<int> SampleMany(const LotterySampler& s, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> counts(s.size(), 0);
  for (int i = 0; i < n; ++i) {
    const int pick = s.Sample(rng);
    if (pick >= 0) ++counts[pick];
  }
  return counts;
}

TEST(LotterySamplerTest, UniformFallbackWhenAllTicketsEqual) {
  LotterySampler s(4);
  auto counts = SampleMany(s, 40000, 71);
  for (int c : counts) {
    EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
  }
}

TEST(LotterySamplerTest, ProportionalToShiftedTickets) {
  LotterySampler s(3);
  s.SetTicket(0, 1.0);
  s.SetTicket(1, 3.0);
  s.SetTicket(2, 5.0);
  // Weights after the min-shift: 0, 2, 4.
  auto counts = SampleMany(s, 60000, 73);
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[1] / 60000.0, 1.0 / 3.0, 0.02);
  EXPECT_NEAR(counts[2] / 60000.0, 2.0 / 3.0, 0.02);
}

TEST(LotterySamplerTest, WeightsTrackMinShift) {
  LotterySampler s(3);
  s.SetTicket(0, 2.0);
  s.SetTicket(1, 5.0);
  s.SetTicket(2, 4.0);
  // Force the exact re-anchor that Sample() performs.
  Rng rng(79);
  s.Sample(rng);
  EXPECT_DOUBLE_EQ(s.WeightOf(0), 0.0);
  EXPECT_DOUBLE_EQ(s.WeightOf(1), 3.0);
  EXPECT_DOUBLE_EQ(s.WeightOf(2), 2.0);
}

TEST(LotterySamplerTest, LoweringTheMinimumRebases) {
  LotterySampler s(2);
  s.SetTicket(0, 1.0);
  s.SetTicket(1, 2.0);
  Rng rng(83);
  s.Sample(rng);
  EXPECT_DOUBLE_EQ(s.WeightOf(1), 1.0);
  s.SetTicket(0, -3.0);  // new minimum: weights shift by 4
  EXPECT_DOUBLE_EQ(s.WeightOf(0), 0.0);
  EXPECT_DOUBLE_EQ(s.WeightOf(1), 5.0);
}

TEST(LotterySamplerTest, IneligibleItemsNeverSampled) {
  LotterySampler s(4);
  s.SetTicket(0, 10.0);
  s.SetEligible(0, false);
  s.SetTicket(1, 1.0);
  s.SetTicket(2, 2.0);
  s.SetTicket(3, 3.0);
  EXPECT_EQ(s.eligible_count(), 3);
  auto counts = SampleMany(s, 30000, 89);
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[3], counts[2]);
}

TEST(LotterySamplerTest, NoEligibleReturnsMinusOne) {
  LotterySampler s(2);
  s.SetEligible(0, false);
  s.SetEligible(1, false);
  Rng rng(97);
  EXPECT_EQ(s.Sample(rng), -1);
}

TEST(LotterySamplerTest, ReEnablingItemRestoresIt) {
  LotterySampler s(2);
  s.SetEligible(0, false);
  s.SetTicket(0, 100.0);
  s.SetTicket(1, 1.0);
  auto counts = SampleMany(s, 1000, 101);
  EXPECT_EQ(counts[0], 0);
  s.SetEligible(0, true);
  counts = SampleMany(s, 10000, 103);
  EXPECT_GT(counts[0], 9000);
}

TEST(LotterySamplerTest, TicketAccessorsRoundTrip) {
  LotterySampler s(3);
  s.SetTicket(1, -2.5);
  EXPECT_DOUBLE_EQ(s.ticket(1), -2.5);
  EXPECT_DOUBLE_EQ(s.ticket(0), 0.0);
}

TEST(LotterySamplerTest, SingleEligibleAlwaysPicked) {
  LotterySampler s(3);
  s.SetEligible(0, false);
  s.SetEligible(2, false);
  Rng rng(107);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s.Sample(rng), 1);
  }
}

TEST(LotterySamplerTest, LargePopulationProportions) {
  const int n = 1024;
  LotterySampler s(n);
  // First half weight 1 (after shift), second half weight 3.
  for (int i = 0; i < n; ++i) {
    s.SetTicket(i, i < n / 2 ? 1.0 : 3.0);
  }
  // Min is 1.0 -> weights 0 and 2: only the second half can be picked.
  auto counts = SampleMany(s, 50000, 109);
  int first_half = 0, second_half = 0;
  for (int i = 0; i < n / 2; ++i) first_half += counts[i];
  for (int i = n / 2; i < n; ++i) second_half += counts[i];
  EXPECT_EQ(first_half, 0);
  EXPECT_EQ(second_half, 50000);
}

}  // namespace
}  // namespace unitdb
