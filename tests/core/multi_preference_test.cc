// Tests of the multi-preference-class extension (paper Section 3.1 sketch):
// per-class USM accounting, per-class admission weighting, and the
// multi-class Load Balancing Controller.

#include <gtest/gtest.h>

#include "unit/core/policies/unit_policy.h"
#include "unit/core/usm.h"
#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"
#include "unit/workload/query_trace.h"
#include "unit/workload/trace_io.h"
#include "unit/workload/update_trace.h"

namespace unitdb {
namespace {

TEST(WeightsForClassTest, FallbackRules) {
  const std::vector<UsmWeights> table = {{1.0, 0.1, 0.2, 0.3},
                                         {1.0, 0.4, 0.5, 0.6}};
  EXPECT_DOUBLE_EQ(WeightsForClass(table, 0).c_r, 0.1);
  EXPECT_DOUBLE_EQ(WeightsForClass(table, 1).c_r, 0.4);
  EXPECT_DOUBLE_EQ(WeightsForClass(table, 7).c_r, 0.4);   // clamps to last
  EXPECT_DOUBLE_EQ(WeightsForClass(table, -1).c_r, 0.1);  // clamps to first
  EXPECT_TRUE(WeightsForClass({}, 0).AllZeroPenalties());
}

TEST(UsmMultiTest, SumsPerClassTotals) {
  std::vector<OutcomeCounts> per_class(2);
  per_class[0].submitted = 10;
  per_class[0].success = 8;
  per_class[0].dmf = 2;
  per_class[1].submitted = 10;
  per_class[1].success = 5;
  per_class[1].dsf = 5;
  const std::vector<UsmWeights> weights = {{1.0, 0.0, 1.0, 0.0},
                                           {1.0, 0.0, 0.0, 2.0}};
  // Class 0: 8 - 2*1 = 6. Class 1: 5 - 5*2 = -5. Total 1 over 20 queries.
  EXPECT_DOUBLE_EQ(UsmTotalMulti(per_class, weights), 1.0);
  EXPECT_DOUBLE_EQ(UsmAverageMulti(per_class, weights), 0.05);
}

TEST(UsmMultiTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(UsmAverageMulti({}, {UsmWeights{}}), 0.0);
}

Workload TwoClassWorkload(double scale = 0.25, uint64_t seed = 42) {
  QueryTraceParams qp;
  qp.num_preference_classes = 2;
  qp.duration =
      static_cast<SimDuration>(static_cast<double>(qp.duration) * scale);
  qp.seed = seed;
  auto w = GenerateQueryTrace(qp);
  EXPECT_TRUE(w.ok());
  UpdateTraceParams up;
  up.seed = seed + 1;
  EXPECT_TRUE(GenerateUpdateTrace(up, *w).ok());
  return *w;
}

TEST(MultiPreferenceTest, GeneratorAssignsBothClasses) {
  Workload w = TwoClassWorkload();
  int per_class[2] = {0, 0};
  for (const auto& q : w.queries) {
    ASSERT_GE(q.preference_class, 0);
    ASSERT_LT(q.preference_class, 2);
    ++per_class[q.preference_class];
  }
  EXPECT_GT(per_class[0], static_cast<int>(w.queries.size()) / 4);
  EXPECT_GT(per_class[1], static_cast<int>(w.queries.size()) / 4);
}

TEST(MultiPreferenceTest, EnginePartitionsCountsByClass) {
  Workload w = TwoClassWorkload();
  UnitPolicy policy((UsmWeights()));
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  ASSERT_EQ(m.per_class_counts.size(), 2u);
  OutcomeCounts sum;
  for (const auto& c : m.per_class_counts) {
    sum.submitted += c.submitted;
    sum.success += c.success;
    sum.rejected += c.rejected;
    sum.dmf += c.dmf;
    sum.dsf += c.dsf;
  }
  EXPECT_EQ(sum, m.counts);
}

TEST(MultiPreferenceTest, SingleClassWorkloadHasOneBucket) {
  auto w = MakeStandardWorkload(UpdateVolume::kLow,
                                UpdateDistribution::kUniform, 0.05, 7);
  ASSERT_TRUE(w.ok());
  UnitPolicy policy((UsmWeights()));
  Engine engine(*w, &policy, {});
  RunMetrics m = engine.Run();
  ASSERT_EQ(m.per_class_counts.size(), 1u);
  EXPECT_EQ(m.per_class_counts[0], m.counts);
}

TEST(MultiPreferenceTest, PerClassWeightsSteerPerClassOutcomes) {
  // Class 0 hates rejections, class 1 hates deadline misses. Under the
  // multi-class controller, class 0 must end with a lower rejection ratio
  // than class 1 (the admission controller only turns away class-0 queries
  // when the endangered-DMF cost clearly exceeds the steep C_r).
  Workload w = TwoClassWorkload(1.0);
  const std::vector<UsmWeights> weights = {{1.0, 4.0, 1.0, 1.0},
                                           {1.0, 1.0, 4.0, 1.0}};
  UnitPolicy policy(weights);
  Engine engine(w, &policy, {});
  RunMetrics m = engine.Run();
  ASSERT_EQ(m.per_class_counts.size(), 2u);
  EXPECT_LT(m.per_class_counts[0].RejectionRatio(),
            m.per_class_counts[1].RejectionRatio());
}

TEST(MultiPreferenceTest, MultiWeightedControllerBeatsMismatchedOne) {
  // Evaluate with the true mixed preferences; the controller that knows
  // them should not lose to one optimizing a single (wrong for half the
  // users) preference.
  Workload w = TwoClassWorkload(1.0);
  const UsmWeights trader{1.0, 2.0, 4.0, 2.0};
  const UsmWeights analyst{1.0, 2.0, 2.0, 4.0};
  const std::vector<UsmWeights> mixed = {trader, analyst};

  auto run = [&w](const std::vector<UsmWeights>& controller_weights) {
    UnitPolicy policy(controller_weights);
    Engine engine(w, &policy, {});
    return engine.Run();
  };
  const double multi =
      UsmAverageMulti(run(mixed).per_class_counts, mixed);
  const double all_trader =
      UsmAverageMulti(run({trader}).per_class_counts, mixed);
  const double all_analyst =
      UsmAverageMulti(run({analyst}).per_class_counts, mixed);
  EXPECT_GE(multi, std::min(all_trader, all_analyst) - 0.02);
  EXPECT_GE(multi, std::max(all_trader, all_analyst) - 0.05);
}

TEST(MultiPreferenceTest, TraceIoPersistsClasses) {
  Workload w = TwoClassWorkload(0.05);
  auto back = WorkloadFromCsv(WorkloadToCsv(w));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->queries.size(), w.queries.size());
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(back->queries[i].preference_class,
              w.queries[i].preference_class);
  }
}

}  // namespace
}  // namespace unitdb
