#include "unit/core/admission.h"

#include <gtest/gtest.h>

#include <optional>

#include "testing/fake_policy.h"
#include "unit/sched/engine.h"
#include "unit/workload/spec.h"

namespace unitdb {
namespace {

using testing_support::FakePolicy;

QueryRequest Query(TxnId id, double arrival_s, double exec_ms,
                   double deadline_s, std::vector<ItemId> items = {0}) {
  QueryRequest q;
  q.id = id;
  q.arrival = SecondsToSim(arrival_s);
  q.exec = MillisToSim(exec_ms);
  q.relative_deadline = SecondsToSim(deadline_s);
  q.freshness_req = 0.9;
  q.items = std::move(items);
  return q;
}

Workload ThreeQueryWorkload(double candidate_deadline_s,
                            double queued_deadline_s = 10.0,
                            double queued_exec_ms = 100.0,
                            double candidate_exec_ms = 100.0) {
  Workload w;
  w.num_items = 4;
  w.duration = SecondsToSim(30.0);
  // q0 occupies the CPU for 1s; its deadline (0.9s, the earliest in play)
  // keeps it highest-priority so no later arrival preempts it. q1 waits in
  // the ready queue; q2 (the candidate) arrives at t=0.2 with 0.8s of q0
  // still running.
  w.queries.push_back(Query(0, 0.0, 1000.0, 0.9, {0}));
  w.queries.push_back(Query(1, 0.1, queued_exec_ms, queued_deadline_s, {1}));
  w.queries.push_back(Query(2, 0.2, candidate_exec_ms, candidate_deadline_s, {2}));
  return w;
}

/// Runs the workload, applying `controller` only to the third query, and
/// returns that admission decision.
bool DecideForCandidate(const Workload& w, AdmissionController& controller) {
  FakePolicy policy;
  std::optional<bool> decision;
  int seen = 0;
  policy.admit = [&](EngineContext& engine, const Transaction& q) {
    if (++seen < 3) return true;
    decision = controller.Admit(engine, q);
    return *decision;
  };
  Engine engine(w, &policy, {});
  engine.Run();
  EXPECT_TRUE(decision.has_value());
  return decision.value_or(false);
}

TEST(AdmissionTest, DeadlineCheckRejectsInfeasibleQuery) {
  // EST = 0.8s of q0; candidate needs 0.1s but has only 0.5s to live.
  Workload w = ThreeQueryWorkload(/*candidate_deadline_s=*/0.5);
  AdmissionController ac({}, UsmWeights{});
  EXPECT_FALSE(DecideForCandidate(w, ac));
  EXPECT_EQ(ac.rejected_by_deadline(), 1);
  EXPECT_EQ(ac.admitted(), 0);
}

TEST(AdmissionTest, DeadlineCheckAdmitsFeasibleQuery) {
  Workload w = ThreeQueryWorkload(/*candidate_deadline_s=*/2.0);
  AdmissionController ac({}, UsmWeights{});
  EXPECT_TRUE(DecideForCandidate(w, ac));
  EXPECT_EQ(ac.admitted(), 1);
}

TEST(AdmissionTest, CFlexScalesTheDeadlineCheck) {
  // Feasible at C_flex=1 (0.8 + 0.1 < 1.0) but not at C_flex=2
  // (1.6 + 0.1 >= 1.0).
  Workload w = ThreeQueryWorkload(/*candidate_deadline_s=*/1.0);
  AdmissionParams params;
  AdmissionController loose(params, UsmWeights{});
  EXPECT_TRUE(DecideForCandidate(w, loose));

  params.initial_c_flex = 2.0;
  AdmissionController tight(params, UsmWeights{});
  EXPECT_FALSE(DecideForCandidate(w, tight));
}

TEST(AdmissionTest, UsmCheckRejectsWhenEndangeringCostsMore) {
  // q1: exec 0.5s, absolute deadline 1.65s; finishes at 1.5s without the
  // candidate but at 1.7s with it -> endangered. C_fm(1.0) > C_r(0.5):
  // reject the candidate.
  Workload w = ThreeQueryWorkload(/*candidate_deadline_s=*/1.1,
                                  /*queued_deadline_s=*/1.55,
                                  /*queued_exec_ms=*/500.0,
                                  /*candidate_exec_ms=*/200.0);
  UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  AdmissionController ac({}, weights);
  EXPECT_FALSE(DecideForCandidate(w, ac));
  EXPECT_EQ(ac.rejected_by_usm(), 1);
}

TEST(AdmissionTest, UsmCheckAdmitsWhenRejectionCostsMore) {
  Workload w = ThreeQueryWorkload(1.1, 1.55, 500.0, 200.0);
  UsmWeights weights{1.0, 2.0, 1.0, 0.5};  // rejecting is worse than one DMF
  AdmissionController ac({}, weights);
  EXPECT_TRUE(DecideForCandidate(w, ac));
}

TEST(AdmissionTest, UsmCheckCanBeDisabled) {
  Workload w = ThreeQueryWorkload(1.1, 1.55, 500.0, 200.0);
  UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  AdmissionParams params;
  params.usm_check_enabled = false;
  AdmissionController ac(params, weights);
  EXPECT_TRUE(DecideForCandidate(w, ac));
}

TEST(AdmissionTest, NaiveWeightsUseUnitCosts) {
  // With all-zero penalties the USM check compares at unit cost: one
  // endangered transaction (cost 1) is not *greater* than the rejection
  // cost (1), so the candidate is admitted.
  Workload w = ThreeQueryWorkload(1.1, 1.55, 500.0, 200.0);
  AdmissionController ac({}, UsmWeights{});
  EXPECT_TRUE(DecideForCandidate(w, ac));
}

TEST(AdmissionTest, TightenAndLoosenAdjustCFlexWithinBounds) {
  AdmissionParams params;
  params.initial_c_flex = 1.0;
  params.adjust_step = 0.1;
  params.min_c_flex = 0.9;
  params.max_c_flex = 1.25;
  AdmissionController ac(params, UsmWeights{});
  ac.Tighten();
  EXPECT_NEAR(ac.c_flex(), 1.1, 1e-12);
  ac.Tighten();
  EXPECT_NEAR(ac.c_flex(), 1.21, 1e-12);
  ac.Tighten();  // capped
  EXPECT_NEAR(ac.c_flex(), 1.25, 1e-12);
  for (int i = 0; i < 10; ++i) ac.Loosen();
  EXPECT_NEAR(ac.c_flex(), 0.9, 1e-12);  // floored
}

TEST(AdmissionTest, EarlierDeadlineQueuedWorkCountsTowardEst) {
  // Same as the feasible case, but the queued query q1 now has an earlier
  // deadline than the candidate, adding its 0.5s to the candidate's EST:
  // 0.8 + 0.5 + 0.2 >= 1.4 -> reject.
  Workload w = ThreeQueryWorkload(/*candidate_deadline_s=*/1.4,
                                  /*queued_deadline_s=*/0.9,
                                  /*queued_exec_ms=*/500.0,
                                  /*candidate_exec_ms=*/200.0);
  AdmissionController ac({}, UsmWeights{});
  EXPECT_FALSE(DecideForCandidate(w, ac));
  EXPECT_EQ(ac.rejected_by_deadline(), 1);
}

}  // namespace
}  // namespace unitdb
