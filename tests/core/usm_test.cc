#include "unit/core/usm.h"

#include <gtest/gtest.h>

namespace unitdb {
namespace {

OutcomeCounts Counts(int64_t success, int64_t rejected, int64_t dmf,
                     int64_t dsf) {
  OutcomeCounts c;
  c.success = success;
  c.rejected = rejected;
  c.dmf = dmf;
  c.dsf = dsf;
  c.submitted = success + rejected + dmf + dsf;
  return c;
}

TEST(UsmTest, AllSuccessGivesGain) {
  UsmWeights w;  // naive: penalties zero
  OutcomeCounts c = Counts(10, 0, 0, 0);
  EXPECT_DOUBLE_EQ(UsmTotal(c, w), 10.0);
  EXPECT_DOUBLE_EQ(UsmAverage(c, w), 1.0);
}

TEST(UsmTest, NaiveUsmEqualsSuccessRatio) {
  UsmWeights w;
  OutcomeCounts c = Counts(6, 2, 1, 1);
  EXPECT_DOUBLE_EQ(UsmAverage(c, w), c.SuccessRatio());
  EXPECT_DOUBLE_EQ(UsmAverage(c, w), 0.6);
}

TEST(UsmTest, PenaltiesSubtractPerEquation4) {
  UsmWeights w{1.0, 0.5, 2.0, 0.25};
  OutcomeCounts c = Counts(10, 4, 3, 8);
  // 10*1 - 4*0.5 - 3*2 - 8*0.25 = 10 - 2 - 6 - 2 = 0.
  EXPECT_DOUBLE_EQ(UsmTotal(c, w), 0.0);
  EXPECT_DOUBLE_EQ(UsmAverage(c, w), 0.0);
}

TEST(UsmTest, DecompositionMatchesEquation5) {
  UsmWeights w{1.0, 0.8, 0.2, 0.4};
  OutcomeCounts c = Counts(5, 2, 2, 1);
  UsmBreakdown b = UsmDecompose(c, w);
  EXPECT_DOUBLE_EQ(b.s, 0.5);
  EXPECT_DOUBLE_EQ(b.r, 0.16);
  EXPECT_DOUBLE_EQ(b.fm, 0.04);
  EXPECT_DOUBLE_EQ(b.fs, 0.04);
  EXPECT_DOUBLE_EQ(b.Value(), UsmAverage(c, w));
}

TEST(UsmTest, EmptyCountsAreZero) {
  UsmWeights w{1.0, 2.0, 3.0, 4.0};
  OutcomeCounts c;
  EXPECT_DOUBLE_EQ(UsmTotal(c, w), 0.0);
  EXPECT_DOUBLE_EQ(UsmAverage(c, w), 0.0);
  EXPECT_DOUBLE_EQ(UsmDecompose(c, w).Value(), 0.0);
}

TEST(UsmTest, RangeSpansGainPlusWorstPenalty) {
  EXPECT_DOUBLE_EQ((UsmWeights{1.0, 0.0, 0.0, 0.0}).Range(), 1.0);
  EXPECT_DOUBLE_EQ((UsmWeights{1.0, 0.5, 2.0, 0.25}).Range(), 3.0);
  EXPECT_DOUBLE_EQ((UsmWeights{1.0, 4.0, 2.0, 2.0}).Range(), 5.0);
}

TEST(UsmTest, WorstCaseIsNegativeMaxPenalty) {
  UsmWeights w{1.0, 0.5, 2.0, 0.25};
  OutcomeCounts c = Counts(0, 0, 7, 0);  // every query hits the worst case
  EXPECT_DOUBLE_EQ(UsmAverage(c, w), -2.0);
}

TEST(UsmTest, AllZeroPenaltiesDetection) {
  EXPECT_TRUE((UsmWeights{}).AllZeroPenalties());
  EXPECT_FALSE((UsmWeights{1.0, 0.0, 0.1, 0.0}).AllZeroPenalties());
}

TEST(UsmTest, OutcomeRatiosSumToOneWhenResolved) {
  OutcomeCounts c = Counts(5, 3, 1, 1);
  EXPECT_DOUBLE_EQ(c.SuccessRatio() + c.RejectionRatio() + c.DmfRatio() +
                       c.DsfRatio(),
                   1.0);
  EXPECT_EQ(c.resolved(), c.submitted);
}

}  // namespace
}  // namespace unitdb
