// Differential-oracle harness tests: the naive reference model must agree
// bit-for-bit with the optimized engine on the canned bench configurations
// (Table 1 cells, Fig. 4-7 style setups), the generator must be
// deterministic, and an intentionally perturbed engine must be caught and
// shrunk to a small replayable case.

#include "unit/model/diff.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "unit/model/gen.h"
#include "unit/model/reference_usm.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

UsmWeights Table2ishWeights() {
  UsmWeights w;
  w.c_r = 0.5;
  w.c_fm = 1.0;
  w.c_fs = 1.0;
  return w;
}

DiffCase StandardCase(UpdateVolume volume, UpdateDistribution distribution,
                      const std::string& policy, const UsmWeights& weights,
                      double scale = 0.02) {
  auto workload = MakeStandardWorkload(volume, distribution, scale, 42);
  EXPECT_TRUE(workload.ok());
  DiffCase c;
  c.workload = *workload;
  c.policy = policy;
  c.weights = weights;
  return c;
}

void ExpectEquivalent(const DiffCase& c, const DiffOptions& opts = {}) {
  auto result = RunDiff(c, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->equivalent)
      << DescribeCase(c) << ": " << result->divergence_count
      << " divergences"
      << (result->divergences.empty() ? "" : "; first: " +
                                                 result->divergences[0]);
}

// --- Reference USM re-derivations ---------------------------------------

TEST(ReferenceUsmTest, PerOutcomeValues) {
  const UsmWeights w = Table2ishWeights();
  EXPECT_DOUBLE_EQ(ReferenceUsmValue(Outcome::kSuccess, w), 1.0);
  EXPECT_DOUBLE_EQ(ReferenceUsmValue(Outcome::kRejected, w), -0.5);
  EXPECT_DOUBLE_EQ(ReferenceUsmValue(Outcome::kDeadlineMiss, w), -1.0);
  EXPECT_DOUBLE_EQ(ReferenceUsmValue(Outcome::kDataStale, w), -1.0);
  EXPECT_DOUBLE_EQ(ReferenceUsmValue(Outcome::kPending, w), 0.0);
}

TEST(ReferenceUsmTest, AgreesWithProductionFormulas) {
  const UsmWeights w = Table2ishWeights();
  OutcomeCounts c;
  c.submitted = 100;
  c.success = 61;
  c.rejected = 17;
  c.dmf = 13;
  c.dsf = 9;
  EXPECT_NEAR(ReferenceUsmTotal(c, w), UsmTotal(c, w), 1e-9);
  EXPECT_NEAR(ReferenceUsmAverage(c, w), UsmAverage(c, w), 1e-9);
  const UsmBreakdown naive = ReferenceUsmDecompose(c, w);
  const UsmBreakdown prod = UsmDecompose(c, w);
  EXPECT_NEAR(naive.s, prod.s, 1e-9);
  EXPECT_NEAR(naive.r, prod.r, 1e-9);
  EXPECT_NEAR(naive.fm, prod.fm, 1e-9);
  EXPECT_NEAR(naive.fs, prod.fs, 1e-9);
}

TEST(ReferenceUsmTest, EmptyCountsAreZero) {
  const UsmWeights w = Table2ishWeights();
  OutcomeCounts c;
  EXPECT_EQ(ReferenceUsmTotal(c, w), 0.0);
  EXPECT_EQ(ReferenceUsmAverage(c, w), 0.0);
  EXPECT_EQ(ReferenceUsmDecompose(c, w).Value(), 0.0);
}

TEST(ReferenceUsmTest, OutcomeEnumerationMatchesCounterPath) {
  const UsmWeights w = Table2ishWeights();
  const std::vector<Outcome> outcomes = {
      Outcome::kSuccess, Outcome::kSuccess, Outcome::kRejected,
      Outcome::kDeadlineMiss, Outcome::kDataStale};
  OutcomeCounts c;
  c.submitted = 5;
  c.success = 2;
  c.rejected = 1;
  c.dmf = 1;
  c.dsf = 1;
  EXPECT_NEAR(ReferenceUsmTotalFromOutcomes(outcomes, w),
              ReferenceUsmTotal(c, w), 1e-12);
}

// --- Generator determinism ----------------------------------------------

TEST(GenTest, SameSeedSameCase) {
  const DiffCase a = GenerateCase(123, 17);
  const DiffCase b = GenerateCase(123, 17);
  EXPECT_EQ(DescribeCase(a), DescribeCase(b));
  ASSERT_EQ(a.workload.queries.size(), b.workload.queries.size());
  for (size_t i = 0; i < a.workload.queries.size(); ++i) {
    EXPECT_EQ(a.workload.queries[i].arrival, b.workload.queries[i].arrival);
    EXPECT_EQ(a.workload.queries[i].exec, b.workload.queries[i].exec);
    EXPECT_EQ(a.workload.queries[i].freshness_req,
              b.workload.queries[i].freshness_req);
  }
  EXPECT_EQ(a.engine.seed, b.engine.seed);
  EXPECT_EQ(a.scenario.faults.size(), b.scenario.faults.size());
}

TEST(GenTest, DifferentIndexDifferentCase) {
  const DiffCase a = GenerateCase(123, 17);
  const DiffCase b = GenerateCase(123, 18);
  EXPECT_NE(DescribeCase(a), DescribeCase(b));
}

TEST(GenTest, IndexRotatesTheImplementationMatrix) {
  EXPECT_EQ(GenerateCase(1, 0).policy, "unit");
  EXPECT_EQ(GenerateCase(1, 1).policy, "imu");
  EXPECT_EQ(GenerateCase(1, 2).policy, "odu");
  EXPECT_EQ(GenerateCase(1, 3).policy, "qmf");
  EXPECT_TRUE(GenerateCase(1, 0).engine.use_admission_index);
  EXPECT_FALSE(GenerateCase(1, 4).engine.use_admission_index);
  EXPECT_TRUE(GenerateCase(1, 0).engine.compact_events);
  EXPECT_FALSE(GenerateCase(1, 8).engine.compact_events);
  EXPECT_FALSE(GenerateCase(1, 0).scenario.empty());
  EXPECT_TRUE(GenerateCase(1, 16).scenario.empty());
}

TEST(GenTest, QueriesAreSortedAndSane) {
  const DiffCase c = GenerateCase(7, 3);
  const Workload& w = c.workload;
  ASSERT_FALSE(w.queries.empty());
  for (size_t i = 1; i < w.queries.size(); ++i) {
    EXPECT_LE(w.queries[i - 1].arrival, w.queries[i].arrival);
  }
  for (const QueryRequest& q : w.queries) {
    EXPECT_GT(q.exec, 0);
    EXPECT_GT(q.relative_deadline, q.exec);
    EXPECT_FALSE(q.items.empty());
    for (ItemId it : q.items) {
      EXPECT_GE(it, 0);
      EXPECT_LT(it, w.num_items);
    }
  }
}

// --- Canned bench configurations ----------------------------------------

TEST(DiffEquivalenceTest, Table1CellsAcrossPolicies) {
  const char* policies[] = {"unit", "imu", "odu", "qmf"};
  const UpdateVolume volumes[] = {UpdateVolume::kLow, UpdateVolume::kMedium,
                                  UpdateVolume::kHigh};
  const UpdateDistribution dists[] = {UpdateDistribution::kUniform,
                                      UpdateDistribution::kPositive,
                                      UpdateDistribution::kNegative};
  int i = 0;
  for (UpdateVolume v : volumes) {
    for (UpdateDistribution d : dists) {
      ExpectEquivalent(
          StandardCase(v, d, policies[i % 4], Table2ishWeights()));
      ++i;
    }
  }
}

TEST(DiffEquivalenceTest, Fig4NaiveWeightsAllPolicies) {
  for (const char* policy : {"unit", "imu", "odu", "qmf"}) {
    ExpectEquivalent(StandardCase(UpdateVolume::kMedium,
                                  UpdateDistribution::kUniform, policy,
                                  UsmWeights{}));
  }
}

TEST(DiffEquivalenceTest, Fig5PenaltyWeightSettings) {
  for (const NamedWeights& nw : Table2WeightsBelowOne()) {
    ExpectEquivalent(StandardCase(UpdateVolume::kMedium,
                                  UpdateDistribution::kUniform, "unit",
                                  nw.weights));
  }
  for (const NamedWeights& nw : Table2WeightsAboveOne()) {
    ExpectEquivalent(StandardCase(UpdateVolume::kHigh,
                                  UpdateDistribution::kNegative, "unit",
                                  nw.weights));
  }
}

TEST(DiffEquivalenceTest, Fig6AblationVariants) {
  for (const char* policy : {"unit-noac", "unit-noum", "unit-bare"}) {
    ExpectEquivalent(StandardCase(UpdateVolume::kMedium,
                                  UpdateDistribution::kPositive, policy,
                                  Table2ishWeights()));
  }
}

TEST(DiffEquivalenceTest, Fig7FaultScenario) {
  for (const char* policy : {"unit", "qmf"}) {
    DiffCase c = StandardCase(UpdateVolume::kMedium,
                              UpdateDistribution::kUniform, policy,
                              Table2ishWeights());
    c.scenario.name = "fig7ish";
    FaultSpec outage;
    outage.kind = FaultKind::kUpdateOutage;
    outage.start_s = 10.0;
    outage.end_s = 25.0;
    outage.items = "*";
    c.scenario.faults.push_back(outage);
    FaultSpec burst;
    burst.kind = FaultKind::kLoadStep;
    burst.start_s = 12.0;
    burst.end_s = 20.0;
    burst.rate_hz = 10.0;
    c.scenario.faults.push_back(burst);
    ExpectEquivalent(c);
  }
}

TEST(DiffEquivalenceTest, EngineKnobToggles) {
  // FCFS dispatch, no index, no compaction, fast control ticks.
  DiffCase c = StandardCase(UpdateVolume::kHigh, UpdateDistribution::kUniform,
                            "unit", Table2ishWeights());
  c.engine.discipline = QueueDiscipline::kFcfs;
  c.engine.use_admission_index = false;
  c.engine.compact_events = false;
  c.engine.control_period = SecondsToSim(0.25);
  c.engine.estimate_noise_sigma = 0.3;
  ExpectEquivalent(c);
}

TEST(DiffEquivalenceTest, RunDifferentialWrapper) {
  const DiffCase c = StandardCase(UpdateVolume::kLow,
                                  UpdateDistribution::kUniform, "unit",
                                  Table2ishWeights());
  auto result = RunDifferential(c);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->equivalent);
  EXPECT_GT(result->optimized.metrics.counts.submitted, 0);
  EXPECT_FALSE(result->optimized.queries.empty());
}

TEST(DiffEquivalenceTest, SeriesComparisonCanBeDisabled) {
  DiffOptions opts;
  opts.compare_series = false;
  ExpectEquivalent(StandardCase(UpdateVolume::kLow,
                                UpdateDistribution::kNegative, "odu",
                                Table2ishWeights()),
                   opts);
}

TEST(DiffEquivalenceTest, UnknownPolicyFailsCleanly) {
  DiffCase c = StandardCase(UpdateVolume::kLow, UpdateDistribution::kUniform,
                            "unit", Table2ishWeights());
  c.policy = "no-such-policy";
  EXPECT_FALSE(RunDiff(c).ok());
}

// --- Harness self-test: a perturbed engine must be caught and shrunk ----

TEST(PerturbationTest, AdmitOffByOneIsCaught) {
  // gen(3, 0) is a unit-policy case with hundreds of queries; rejecting the
  // 8th admitted query must diverge on any such case.
  const DiffCase c = GenerateCase(3, 0);
  DiffOptions opts;
  opts.perturb = Perturbation::kAdmitOffByOne;
  auto result = RunDiff(c, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equivalent);
  EXPECT_FALSE(result->divergences.empty());
}

TEST(PerturbationTest, CFlexStepIsCaught) {
  // gen(5, 0) is a unit-policy case whose LBC moves C_flex; an 11% step on
  // the optimized side drifts the admission knob series.
  const DiffCase c = GenerateCase(5, 0);
  DiffOptions opts;
  opts.perturb = Perturbation::kCFlexStep;
  auto result = RunDiff(c, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equivalent);
}

TEST(PerturbationTest, ShrinksToMinimalReplayableCase) {
  const DiffCase c = GenerateCase(3, 0);
  DiffOptions opts;
  opts.perturb = Perturbation::kAdmitOffByOne;
  const DiffCase shrunk = ShrinkCase(c, opts);
  // Still diverges...
  auto result = RunDiff(shrunk, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->equivalent);
  // ...but is much smaller: halving can reach 8 queries (the fewest that
  // still contain an 8th admission) but never below.
  EXPECT_LT(shrunk.workload.queries.size(), c.workload.queries.size());
  EXPECT_GE(shrunk.workload.queries.size(), 8u);
  EXPECT_LE(shrunk.workload.queries.size(), 16u);
  // The replay line survives shrinking.
  const std::string line = DescribeCase(shrunk);
  EXPECT_NE(line.find("seed=3"), std::string::npos) << line;
  EXPECT_NE(line.find("case=0"), std::string::npos) << line;
}

TEST(PerturbationTest, ShrinkReturnsCleanCaseUnchanged) {
  const DiffCase c = GenerateCase(3, 0);
  const DiffCase shrunk = ShrinkCase(c);  // no perturbation: no divergence
  EXPECT_EQ(shrunk.workload.queries.size(), c.workload.queries.size());
  EXPECT_EQ(shrunk.scenario.faults.size(), c.scenario.faults.size());
}

TEST(DescribeCaseTest, MentionsEveryMatrixAxis) {
  const std::string line = DescribeCase(GenerateCase(9, 21));
  for (const char* key :
       {"seed=9", "case=21", "policy=", "index=", "compact=", "faults=",
        "queries="}) {
    EXPECT_NE(line.find(key), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace unitdb
