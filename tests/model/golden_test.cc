// Golden pins: one canonical configuration per policy with exact committed
// RunMetrics values. These runs are fully deterministic (fixed workload
// seed, fixed engine seed, sequential execution), so any drift — a changed
// tie-break, a reordered event, a float reassociation — fails here with
// the precise field that moved. Update the pins only for an intentional,
// explained semantic change.
//
// Canonical cell: MakeStandardWorkload(kMedium, kUniform, scale=0.05,
// seed=42), Table-2-style weights (c_r=0.5, c_fm=1.0, c_fs=1.0), default
// EngineParams and PolicyOptions.

#include <gtest/gtest.h>

#include <string>

#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

struct GoldenPin {
  const char* policy;
  int64_t submitted, success, rejected, dmf, dsf;
  int64_t update_commits, updates_dropped, preemptions, lock_restarts;
  int64_t on_demand_updates;
  double busy_s;
  double freshness_mean;
  double response_mean;
  double usm;
};

// Values captured from the engine at the commit that introduced this test;
// doubles are round-trip exact (%.17g).
constexpr GoldenPin kPins[] = {
    {"unit", 598, 423, 57, 118, 0, 227, 0, 75, 0, 0,
     91.254100999999949, 1.0, 1.9121974917257676, 0.46237458193979936},
    {"imu", 598, 425, 0, 173, 0, 227, 0, 75, 0, 0,
     91.335194999999928, 1.0, 1.9790263882352936, 0.42140468227424749},
    {"odu", 598, 596, 0, 2, 0, 12, 0, 65, 0, 12,
     27.349625000000024, 1.0, 0.31782207214765085, 0.99331103678929766},
    {"qmf", 598, 422, 11, 165, 0, 227, 0, 92, 0, 0,
     91.223163999999926, 1.0, 1.9503783507109, 0.4205685618729097},
};

class GoldenPinTest : public ::testing::TestWithParam<GoldenPin> {};

TEST_P(GoldenPinTest, CanonicalRunMatchesCommittedMetrics) {
  const GoldenPin& pin = GetParam();
  auto workload = MakeStandardWorkload(UpdateVolume::kMedium,
                                       UpdateDistribution::kUniform, 0.05, 42);
  ASSERT_TRUE(workload.ok());
  UsmWeights w;
  w.c_r = 0.5;
  w.c_fm = 1.0;
  w.c_fs = 1.0;
  auto result = RunExperiment(*workload, pin.policy, w);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunMetrics& m = result->metrics;
  EXPECT_EQ(m.counts.submitted, pin.submitted);
  EXPECT_EQ(m.counts.success, pin.success);
  EXPECT_EQ(m.counts.rejected, pin.rejected);
  EXPECT_EQ(m.counts.dmf, pin.dmf);
  EXPECT_EQ(m.counts.dsf, pin.dsf);
  EXPECT_EQ(m.update_commits, pin.update_commits);
  EXPECT_EQ(m.updates_dropped, pin.updates_dropped);
  EXPECT_EQ(m.preemptions, pin.preemptions);
  EXPECT_EQ(m.lock_restarts, pin.lock_restarts);
  EXPECT_EQ(m.on_demand_updates, pin.on_demand_updates);
  EXPECT_DOUBLE_EQ(m.busy_s, pin.busy_s);
  EXPECT_DOUBLE_EQ(m.query_freshness.mean(), pin.freshness_mean);
  EXPECT_DOUBLE_EQ(m.query_response_s.mean(), pin.response_mean);
  EXPECT_DOUBLE_EQ(result->usm, pin.usm);
}

TEST_P(GoldenPinTest, ReferenceModelReproducesTheSamePin) {
  const GoldenPin& pin = GetParam();
  auto workload = MakeStandardWorkload(UpdateVolume::kMedium,
                                       UpdateDistribution::kUniform, 0.05, 42);
  ASSERT_TRUE(workload.ok());
  DiffCase c;
  c.workload = *workload;
  c.policy = pin.policy;
  c.weights.c_r = 0.5;
  c.weights.c_fm = 1.0;
  c.weights.c_fs = 1.0;
  auto diff = RunDifferential(c);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_TRUE(diff->equivalent) << diff->divergence_count << " divergences";
  EXPECT_EQ(diff->reference.metrics.counts.success, pin.success);
  EXPECT_EQ(diff->reference.metrics.counts.rejected, pin.rejected);
  EXPECT_EQ(diff->reference.metrics.counts.dmf, pin.dmf);
  EXPECT_DOUBLE_EQ(diff->reference.metrics.busy_s, pin.busy_s);
}

std::string PinName(const ::testing::TestParamInfo<GoldenPin>& pin_info) {
  return pin_info.param.policy;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, GoldenPinTest,
                         ::testing::ValuesIn(kPins), PinName);

}  // namespace
}  // namespace unitdb
