// Fuzzed differential equivalence: >= 200 generated cases per policy must
// agree bit-for-bit between the optimized engine and the naive reference
// model. Runs under the `fuzz` ctest label so sanitizer jobs can opt in.

#include <gtest/gtest.h>

#include <string>

#include "unit/model/diff.h"
#include "unit/model/gen.h"

namespace unitdb {
namespace {

// One fixed seed so failures replay exactly via
//   diff_fuzz seed=20060402 case=INDEX
constexpr uint64_t kFuzzSeed = 20060402;  // ICDE 2006 vintage

// GenerateCase rotates policy = [unit, imu, odu, qmf][index % 4], so a
// contiguous index range [base, base + 4 * kCasesPerPolicy) covers every
// policy kCasesPerPolicy times, with the index/compaction/fault toggles
// rotating independently underneath.
constexpr int kCasesPerPolicy = 200;

class DiffFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DiffFuzzTest, GeneratedCaseIsEquivalent) {
  const int policy_slot = GetParam();
  for (int i = 0; i < kCasesPerPolicy; ++i) {
    const int index = 4 * i + policy_slot;
    const DiffCase c = GenerateCase(kFuzzSeed, index);
    auto result = RunDiff(c);
    ASSERT_TRUE(result.ok())
        << DescribeCase(c) << ": " << result.status().ToString();
    ASSERT_TRUE(result->equivalent)
        << DescribeCase(c) << ": " << result->divergence_count
        << " divergences; first: "
        << (result->divergences.empty() ? std::string("<none>")
                                        : result->divergences[0])
        << "\nreplay: diff_fuzz seed=" << kFuzzSeed << " case=" << index;
  }
}

std::string PolicySlotName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"unit", "imu", "odu", "qmf"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DiffFuzzTest,
                         ::testing::Values(0, 1, 2, 3), PolicySlotName);

}  // namespace
}  // namespace unitdb
