#include "unit/shard/sharded.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "unit/shard/router.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

StatusOr<Workload> SmallWorkload(uint64_t seed = 42) {
  return MakeStandardWorkload(UpdateVolume::kMedium,
                              UpdateDistribution::kUniform, /*scale=*/0.05,
                              seed);
}

TEST(CrossShardJoinTest, ParentSucceedsOnlyIfEverySubSucceeds) {
  EXPECT_EQ(CrossShardJoin(Outcome::kSuccess, Outcome::kSuccess),
            Outcome::kSuccess);
  EXPECT_EQ(CrossShardJoin(Outcome::kSuccess, Outcome::kDataStale),
            Outcome::kDataStale);
  EXPECT_EQ(CrossShardJoin(Outcome::kSuccess, Outcome::kDeadlineMiss),
            Outcome::kDeadlineMiss);
  EXPECT_EQ(CrossShardJoin(Outcome::kSuccess, Outcome::kRejected),
            Outcome::kRejected);
}

TEST(CrossShardJoinTest, DominantPenaltyOrderIsRejectOverDmfOverDsf) {
  // Fig. 2 dominance: reject > deadline miss > stale.
  EXPECT_EQ(CrossShardJoin(Outcome::kRejected, Outcome::kDeadlineMiss),
            Outcome::kRejected);
  EXPECT_EQ(CrossShardJoin(Outcome::kRejected, Outcome::kDataStale),
            Outcome::kRejected);
  EXPECT_EQ(CrossShardJoin(Outcome::kDeadlineMiss, Outcome::kDataStale),
            Outcome::kDeadlineMiss);
}

TEST(CrossShardJoinTest, JoinIsCommutative) {
  const Outcome all[] = {Outcome::kSuccess, Outcome::kRejected,
                         Outcome::kDeadlineMiss, Outcome::kDataStale};
  for (Outcome a : all) {
    for (Outcome b : all) {
      EXPECT_EQ(CrossShardJoin(a, b), CrossShardJoin(b, a));
    }
  }
}

TEST(PartitionWorkloadTest, SingleShardIsTheIdentity) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  auto part = PartitionWorkload(*w, ShardRouter(1));
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->shards.size(), 1u);
  EXPECT_EQ(part->cross_shard_queries, 0);
  EXPECT_EQ(part->subqueries, static_cast<int64_t>(w->queries.size()));

  const Workload& sub = part->shards[0];
  ASSERT_EQ(sub.queries.size(), w->queries.size());
  ASSERT_EQ(sub.updates.size(), w->updates.size());
  for (size_t i = 0; i < w->queries.size(); ++i) {
    EXPECT_EQ(sub.queries[i].arrival, w->queries[i].arrival);
    EXPECT_EQ(sub.queries[i].exec, w->queries[i].exec);
    EXPECT_EQ(sub.queries[i].items, w->queries[i].items);
    // Sub id carries the parent trace index.
    EXPECT_EQ(sub.queries[i].id, static_cast<TxnId>(i));
  }
}

TEST(PartitionWorkloadTest, RoutesEveryUpdateToItsOwningShard) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  ShardRouter router(4);
  auto part = PartitionWorkload(*w, router);
  ASSERT_TRUE(part.ok());
  size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    for (const auto& u : part->shards[static_cast<size_t>(s)].updates) {
      EXPECT_EQ(router.ShardOf(u.item), s);
      ++total;
    }
    EXPECT_EQ(part->shards[static_cast<size_t>(s)].num_items, w->num_items);
  }
  EXPECT_EQ(total, w->updates.size());
}

TEST(PartitionWorkloadTest, SubQueriesConserveReadSetsAndBoundExec) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  ShardRouter router(4);
  auto part = PartitionWorkload(*w, router);
  ASSERT_TRUE(part.ok());

  // Regroup sub-queries by parent trace index.
  struct Parent {
    size_t items = 0;
    SimDuration exec = 0;
    int subs = 0;
  };
  std::map<TxnId, Parent> joined;
  for (const Workload& sub : part->shards) {
    for (const QueryRequest& q : sub.queries) {
      Parent& p = joined[q.id];
      p.items += q.items.size();
      p.exec += q.exec;
      ++p.subs;
    }
  }
  ASSERT_EQ(joined.size(), w->queries.size());
  int64_t cross = 0;
  int64_t subs = 0;
  for (size_t i = 0; i < w->queries.size(); ++i) {
    const QueryRequest& q = w->queries[i];
    const Parent& p = joined[static_cast<TxnId>(i)];
    EXPECT_EQ(p.items, q.items.size());
    EXPECT_EQ(p.subs, part->sub_count[i]);
    subs += p.subs;
    if (p.subs > 1) ++cross;
    if (p.subs == 1) {
      EXPECT_EQ(p.exec, q.exec);  // untouched service demand
    } else {
      // Proportional split: conserved up to the >= 1-tick clamp per sub.
      EXPECT_GE(p.exec, q.exec);
      EXPECT_LE(p.exec, q.exec + p.subs);
    }
  }
  EXPECT_EQ(cross, part->cross_shard_queries);
  EXPECT_EQ(subs, part->subqueries);
}

TEST(ShardedEngineTest, SingleShardMatchesMonolithicBitForBit) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  for (const char* policy : {"unit", "imu", "odu", "qmf"}) {
    auto mono = RunExperiment(*w, policy, weights);
    ASSERT_TRUE(mono.ok()) << mono.status().ToString();
    ShardedParams params;
    params.shards = 1;
    auto sharded = RunSharded(*w, policy, weights, params);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    const RunMetrics& a = mono->metrics;
    const RunMetrics& b = sharded->metrics;
    EXPECT_EQ(a.counts.submitted, b.counts.submitted) << policy;
    EXPECT_EQ(a.counts.success, b.counts.success) << policy;
    EXPECT_EQ(a.counts.rejected, b.counts.rejected) << policy;
    EXPECT_EQ(a.counts.dmf, b.counts.dmf) << policy;
    EXPECT_EQ(a.counts.dsf, b.counts.dsf) << policy;
    EXPECT_EQ(a.busy_s, b.busy_s) << policy;
    EXPECT_EQ(a.preemptions, b.preemptions) << policy;
    EXPECT_EQ(a.lock_restarts, b.lock_restarts) << policy;
    EXPECT_EQ(a.update_commits, b.update_commits) << policy;
    EXPECT_EQ(a.query_response_s.sum(), b.query_response_s.sum()) << policy;
    EXPECT_EQ(a.query_freshness.sum(), b.query_freshness.sum()) << policy;
    EXPECT_EQ(mono->usm, sharded->usm) << policy;
    EXPECT_EQ(sharded->cross_shard_queries, 0) << policy;
  }
}

TEST(ShardedEngineTest, ParentAccountingConservesTheTrace) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  ShardedParams params;
  params.shards = 4;
  auto r = RunSharded(*w, "unit", UsmWeights{1.0, 0.5, 1.0, 0.5}, params);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Merged outcome counts are parent-level: one resolution per input query.
  EXPECT_EQ(r->metrics.counts.submitted,
            static_cast<int64_t>(w->queries.size()));
  EXPECT_EQ(r->metrics.counts.resolved(), r->metrics.counts.submitted);
  EXPECT_EQ(r->queries.size(), w->queries.size());

  // Sub-query accounting: per-shard submissions sum to the split volume.
  int64_t shard_submitted = 0;
  for (const RunMetrics& m : r->per_shard) {
    shard_submitted += m.counts.submitted;
  }
  EXPECT_EQ(shard_submitted, r->subqueries);
  EXPECT_GT(r->cross_shard_queries, 0);
  EXPECT_GT(r->subqueries, static_cast<int64_t>(w->queries.size()));

  // Every parent record joins at least one sub, committed parents carry a
  // freshness in [0, 1], and the merged USM is the Eq. 5 average.
  for (const ShardQueryRecord& q : r->queries) {
    EXPECT_GE(q.subqueries, 1);
    EXPECT_NE(q.outcome, Outcome::kPending);
    if (q.outcome == Outcome::kSuccess || q.outcome == Outcome::kDataStale) {
      EXPECT_GE(q.observed_freshness, 0.0);
      EXPECT_LE(q.observed_freshness, 1.0);
      EXPECT_GE(q.commit_time, 0);
    }
  }
  EXPECT_GE(r->usm, -1.0);
  EXPECT_LE(r->usm, 1.0);
}

TEST(ShardedEngineTest, ShardedExperimentWrapperMatchesRunSharded) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  ShardedParams params;
  params.shards = 2;
  auto direct = RunSharded(*w, "unit", weights, params);
  ASSERT_TRUE(direct.ok());
  auto wrapped = RunShardedExperiment(*w, "unit", weights, /*shards=*/2);
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(wrapped->usm, direct->usm);
  EXPECT_EQ(wrapped->metrics.counts.success, direct->metrics.counts.success);
  EXPECT_EQ(wrapped->trace, w->update_trace_name);
}

}  // namespace
}  // namespace unitdb
