// Blast-radius isolation: a fault scenario scoped to one shard via
// ShardedParams::fault_target_shard must leave every other shard's run
// bit-identical to a fault-free run — shards share no state, so the only
// coupling would be a harness bug.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "unit/faults/schedule.h"
#include "unit/shard/router.h"
#include "unit/shard/sharded.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

StatusOr<Workload> SmallWorkload() {
  return MakeStandardWorkload(UpdateVolume::kMedium,
                              UpdateDistribution::kUniform, /*scale=*/0.05,
                              /*seed=*/42);
}

void ExpectShardBitIdentical(const RunMetrics& a, const RunMetrics& b,
                             int shard) {
  EXPECT_EQ(a.counts.submitted, b.counts.submitted) << shard;
  EXPECT_EQ(a.counts.success, b.counts.success) << shard;
  EXPECT_EQ(a.counts.rejected, b.counts.rejected) << shard;
  EXPECT_EQ(a.counts.dmf, b.counts.dmf) << shard;
  EXPECT_EQ(a.counts.dsf, b.counts.dsf) << shard;
  EXPECT_EQ(a.busy_s, b.busy_s) << shard;
  EXPECT_EQ(a.events_processed, b.events_processed) << shard;
  EXPECT_EQ(a.preemptions, b.preemptions) << shard;
  EXPECT_EQ(a.lock_restarts, b.lock_restarts) << shard;
  EXPECT_EQ(a.update_commits, b.update_commits) << shard;
  EXPECT_EQ(a.query_response_s.sum(), b.query_response_s.sum()) << shard;
  EXPECT_EQ(a.query_freshness.sum(), b.query_freshness.sum()) << shard;
  EXPECT_EQ(a.fault_injected_queries, b.fault_injected_queries) << shard;
}

TEST(ShardFaultTest, LoadStepScopedToOneShardLeavesOthersBitIdentical) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  const double dur_s = SimToSeconds(w->duration);

  ShardedParams clean;
  clean.shards = 3;
  auto base = RunSharded(*w, "unit", weights, clean);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  FaultScenarioSpec scenario;
  scenario.name = "scoped-load-step";
  scenario.seed = 7;
  FaultSpec f;
  f.kind = FaultKind::kLoadStep;
  f.start_s = 0.2 * dur_s;
  f.end_s = 0.6 * dur_s;
  f.rate_hz = 40.0;
  scenario.faults.push_back(f);

  ShardedParams faulted = clean;
  faulted.scenario = &scenario;
  faulted.fault_target_shard = 1;
  auto hit = RunSharded(*w, "unit", weights, faulted);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();

  ASSERT_EQ(base->per_shard.size(), 3u);
  ASSERT_EQ(hit->per_shard.size(), 3u);
  // Non-target shards: bit-identical to the fault-free run.
  ExpectShardBitIdentical(base->per_shard[0], hit->per_shard[0], 0);
  ExpectShardBitIdentical(base->per_shard[2], hit->per_shard[2], 2);
  // Target shard: the load step really landed there.
  EXPECT_GT(hit->per_shard[1].fault_injected_queries, 0);
  EXPECT_EQ(hit->metrics.fault_injected_queries,
            hit->per_shard[1].fault_injected_queries);
  EXPECT_EQ(base->per_shard[1].fault_injected_queries, 0);
}

TEST(ShardFaultTest, ItemSelectorOnlyPerturbsTheOwningShard) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  ASSERT_FALSE(w->updates.empty());
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  const double dur_s = SimToSeconds(w->duration);
  const int kShards = 3;

  // An update outage pinned to one sourced item: only the shard owning the
  // item compiles a non-empty schedule; the others must run clean. At this
  // scale each source delivers only a few times (first at its phase), so
  // pick the earliest-phase source and cover the whole run to guarantee the
  // outage swallows a delivery.
  const auto earliest = std::min_element(
      w->updates.begin(), w->updates.end(),
      [](const ItemUpdateSpec& a, const ItemUpdateSpec& b) {
        return a.phase < b.phase;
      });
  ASSERT_LT(earliest->phase, w->duration);
  const ItemId item = earliest->item;
  const int owner = ShardRouter(kShards).ShardOf(item);

  ShardedParams clean;
  clean.shards = kShards;
  auto base = RunSharded(*w, "unit", weights, clean);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  FaultScenarioSpec scenario;
  scenario.name = "item-outage";
  scenario.seed = 7;
  FaultSpec f;
  f.kind = FaultKind::kUpdateOutage;
  f.start_s = 0.0;
  f.end_s = 0.99 * dur_s;
  f.items = std::to_string(item);
  scenario.faults.push_back(f);

  ShardedParams faulted = clean;
  faulted.scenario = &scenario;
  auto hit = RunSharded(*w, "unit", weights, faulted);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();

  for (int s = 0; s < kShards; ++s) {
    if (s == owner) continue;
    ExpectShardBitIdentical(base->per_shard[static_cast<size_t>(s)],
                            hit->per_shard[static_cast<size_t>(s)], s);
  }
  // The owning shard had that item's deliveries swallowed for most of the
  // run (outages suppress the freshness effect, not the update txns).
  EXPECT_GT(hit->per_shard[static_cast<size_t>(owner)].fault_suppressed_updates,
            0);
  EXPECT_EQ(base->per_shard[static_cast<size_t>(owner)]
                .fault_suppressed_updates,
            0);
}

TEST(ShardFaultTest, SingleShardScenarioMatchesMonolithicCompilation) {
  // At shards=1 the scenario is passed through verbatim, so the sharded
  // faulted run must equal the monolithic faulted run bit for bit.
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  const double dur_s = SimToSeconds(w->duration);

  FaultScenarioSpec scenario;
  scenario.name = "verbatim";
  scenario.seed = 11;
  FaultSpec f;
  f.kind = FaultKind::kServiceSlowdown;
  f.start_s = 0.2 * dur_s;
  f.end_s = 0.7 * dur_s;
  f.factor = 2.0;
  scenario.faults.push_back(f);

  auto schedule = FaultSchedule::Compile(scenario, *w, /*workload_seed=*/42);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  auto mono = RunFaultedExperiment(*w, "unit", weights, *schedule);
  ASSERT_TRUE(mono.ok()) << mono.status().ToString();

  ShardedParams p;
  p.shards = 1;
  p.scenario = &scenario;
  p.fault_seed = 42;
  auto sharded = RunSharded(*w, "unit", weights, p);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  EXPECT_EQ(mono->metrics.counts.success, sharded->metrics.counts.success);
  EXPECT_EQ(mono->metrics.counts.rejected, sharded->metrics.counts.rejected);
  EXPECT_EQ(mono->metrics.fault_injected_queries,
            sharded->metrics.fault_injected_queries);
  EXPECT_EQ(mono->metrics.busy_s, sharded->metrics.busy_s);
  EXPECT_EQ(mono->usm, sharded->usm);
}

}  // namespace
}  // namespace unitdb
