// The sharded arms of the differential oracle: shards=1 pins "sharding is
// the identity" against the monolithic reference model, shards>1 pins the
// optimized sharded stack against a reference-engine sharded stack, and the
// injected-defect self-tests prove the comparison actually bites.

#include <gtest/gtest.h>

#include <string>

#include "unit/model/diff.h"
#include "unit/model/gen.h"

namespace unitdb {
namespace {

DiffCase CaseWithShards(uint64_t seed, int64_t index, int shards, int jobs) {
  DiffCase c = GenerateCase(seed, index);
  c.shards = shards;
  c.shard_jobs = jobs;
  return c;
}

TEST(ShardDiffTest, ShardsOneIsBitIdenticalToMonolithic) {
  for (int64_t index : {0, 1, 2, 3, 17, 35}) {
    DiffCase c = CaseWithShards(7, index, /*shards=*/1, /*jobs=*/1);
    auto r = RunDiff(c);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->equivalent)
        << DescribeCase(c) << "\n"
        << (r->divergences.empty() ? "" : r->divergences.front());
  }
}

TEST(ShardDiffTest, MultiShardStackMatchesReferenceSharding) {
  for (int shards : {2, 3}) {
    DiffCase c = CaseWithShards(7, /*index=*/1, shards, /*jobs=*/2);
    auto r = RunDiff(c);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->equivalent)
        << DescribeCase(c) << "\n"
        << (r->divergences.empty() ? "" : r->divergences.front());
  }
}

TEST(ShardDiffTest, InjectedAdmissionDefectIsCaughtAtEveryShardCount) {
  DiffOptions opts;
  opts.perturb = Perturbation::kAdmitOffByOne;
  for (int shards : {1, 2}) {
    DiffCase c = CaseWithShards(7, /*index=*/0, shards, /*jobs=*/1);
    auto r = RunDiff(c, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->equivalent) << "shards=" << shards;
    EXPECT_GT(r->divergence_count, 0) << "shards=" << shards;
  }
}

TEST(ShardDiffTest, ShrinkingAShardedCasePreservesTheDivergence) {
  DiffOptions opts;
  opts.perturb = Perturbation::kAdmitOffByOne;
  DiffCase c = CaseWithShards(7, /*index=*/0, /*shards=*/2, /*jobs=*/1);
  DiffCase small = ShrinkCase(c, opts);
  EXPECT_LE(small.workload.queries.size(), c.workload.queries.size());
  auto r = RunDiff(small, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->equivalent) << DescribeCase(small);
}

TEST(ShardDiffTest, DescribeCaseCarriesTheShardDimensions) {
  DiffCase c = CaseWithShards(7, /*index=*/0, /*shards=*/3, /*jobs=*/2);
  const std::string line = DescribeCase(c);
  EXPECT_NE(line.find("shards=3"), std::string::npos) << line;
  EXPECT_NE(line.find("sjobs=2"), std::string::npos) << line;
}

}  // namespace
}  // namespace unitdb
