#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "unit/shard/sharded.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

StatusOr<Workload> SmallWorkload() {
  return MakeStandardWorkload(UpdateVolume::kMedium,
                              UpdateDistribution::kUniform, /*scale=*/0.05,
                              /*seed=*/42);
}

std::string Slurp(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

// Every semantically meaningful merged field, plus the full window series.
// EXPECT_EQ on doubles is exact equality — the determinism contract is
// bit-identical, not approximately equal.
void ExpectIdentical(const ShardedResult& a, const ShardedResult& b,
                     int jobs) {
  EXPECT_EQ(a.metrics.counts.submitted, b.metrics.counts.submitted) << jobs;
  EXPECT_EQ(a.metrics.counts.success, b.metrics.counts.success) << jobs;
  EXPECT_EQ(a.metrics.counts.rejected, b.metrics.counts.rejected) << jobs;
  EXPECT_EQ(a.metrics.counts.dmf, b.metrics.counts.dmf) << jobs;
  EXPECT_EQ(a.metrics.counts.dsf, b.metrics.counts.dsf) << jobs;
  EXPECT_EQ(a.metrics.busy_s, b.metrics.busy_s) << jobs;
  EXPECT_EQ(a.metrics.events_processed, b.metrics.events_processed) << jobs;
  EXPECT_EQ(a.metrics.preemptions, b.metrics.preemptions) << jobs;
  EXPECT_EQ(a.metrics.lock_restarts, b.metrics.lock_restarts) << jobs;
  EXPECT_EQ(a.metrics.update_commits, b.metrics.update_commits) << jobs;
  EXPECT_EQ(a.metrics.txn_live_peak, b.metrics.txn_live_peak) << jobs;
  EXPECT_EQ(a.metrics.query_response_s.sum(), b.metrics.query_response_s.sum())
      << jobs;
  EXPECT_EQ(a.metrics.query_freshness.sum(), b.metrics.query_freshness.sum())
      << jobs;
  EXPECT_EQ(a.usm, b.usm) << jobs;
  EXPECT_EQ(a.cross_shard_queries, b.cross_shard_queries) << jobs;
  EXPECT_EQ(a.subqueries, b.subqueries) << jobs;

  ASSERT_EQ(a.queries.size(), b.queries.size()) << jobs;
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].trace_id, b.queries[i].trace_id) << jobs;
    EXPECT_EQ(a.queries[i].outcome, b.queries[i].outcome) << jobs;
    EXPECT_EQ(a.queries[i].observed_freshness, b.queries[i].observed_freshness)
        << jobs;
    EXPECT_EQ(a.queries[i].resolve_time, b.queries[i].resolve_time) << jobs;
  }

  ASSERT_EQ(a.merged_series.size(), b.merged_series.size()) << jobs;
  for (size_t i = 0; i < a.merged_series.size(); ++i) {
    const WindowSample& x = a.merged_series[i];
    const WindowSample& y = b.merged_series[i];
    EXPECT_EQ(x.t_s, y.t_s) << jobs;
    EXPECT_EQ(x.window.success, y.window.success) << jobs;
    EXPECT_EQ(x.utilization, y.utilization) << jobs;
    EXPECT_EQ(x.udrop_max, y.udrop_max) << jobs;
    if (std::isnan(x.admission_knob)) {
      EXPECT_TRUE(std::isnan(y.admission_knob)) << jobs;
    } else {
      EXPECT_EQ(x.admission_knob, y.admission_knob) << jobs;
    }
  }
}

TEST(ShardedDeterminismTest, JobsCountNeverChangesMergedMetricsOrTraces) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  const std::filesystem::path root =
      std::filesystem::path(testing::TempDir()) / "shard_jobs_invariance";

  ShardedParams base;
  base.shards = 4;
  base.record_series = true;

  // jobs=1 is the sequential reference; 2/4/8 exercise fewer, equal, and
  // more workers than shards.
  ShardedParams ref = base;
  ref.jobs = 1;
  ref.trace_dir = (root / "jobs1").string();
  auto r1 = RunSharded(*w, "unit", weights, ref);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  for (int jobs : {2, 4, 8}) {
    ShardedParams p = base;
    p.jobs = jobs;
    p.trace_dir = (root / ("jobs" + std::to_string(jobs))).string();
    auto r = RunSharded(*w, "unit", weights, p);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectIdentical(*r1, *r, jobs);

    // The shard-tagged trace files — per shard and the merged global view —
    // must be byte-identical too.
    for (int s = 0; s < 4; ++s) {
      const std::string name = "shard" + std::to_string(s) + ".jsonl";
      const std::string want = Slurp(std::filesystem::path(ref.trace_dir) /
                                     name);
      const std::string got =
          Slurp(std::filesystem::path(p.trace_dir) / name);
      ASSERT_FALSE(want.empty());
      EXPECT_EQ(want, got) << name << " jobs=" << jobs;
    }
    const std::string merged_want =
        Slurp(std::filesystem::path(ref.trace_dir) / "merged.jsonl");
    const std::string merged_got =
        Slurp(std::filesystem::path(p.trace_dir) / "merged.jsonl");
    ASSERT_FALSE(merged_want.empty());
    EXPECT_EQ(merged_want, merged_got) << "merged.jsonl jobs=" << jobs;
  }
  std::filesystem::remove_all(root);
}

TEST(ShardedDeterminismTest, RepeatedRunsAreReproducible) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  ShardedParams p;
  p.shards = 3;
  p.jobs = 3;
  p.record_series = true;
  auto a = RunSharded(*w, "unit", weights, p);
  auto b = RunSharded(*w, "unit", weights, p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdentical(*a, *b, /*jobs=*/3);
}

TEST(ShardedDeterminismTest, MergedTraceInterleavesEveryShardTimeOrdered) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  const std::filesystem::path root =
      std::filesystem::path(testing::TempDir()) / "shard_merged_trace";
  ShardedParams p;
  p.shards = 2;
  p.trace_dir = root.string();
  auto r = RunSharded(*w, "unit", UsmWeights{1.0, 0.5, 1.0, 0.5}, p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::ifstream merged(root / "merged.jsonl");
  ASSERT_TRUE(merged.good());
  std::string line;
  double last_t = -1.0;
  bool saw_shard[2] = {false, false};
  int64_t lines = 0;
  while (std::getline(merged, line)) {
    ++lines;
    // Every merged event carries its shard tag.
    const auto pos = line.find("\"shard\":");
    ASSERT_NE(pos, std::string::npos) << line;
    const int shard = std::stoi(line.substr(pos + 8));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 2);
    saw_shard[shard] = true;
    const auto tpos = line.find("\"t\":");
    ASSERT_NE(tpos, std::string::npos) << line;
    const double t = std::stod(line.substr(tpos + 4));
    EXPECT_GE(t, last_t) << "merged trace not time-sorted: " << line;
    last_t = t;
  }
  EXPECT_GT(lines, 0);
  EXPECT_TRUE(saw_shard[0]);
  EXPECT_TRUE(saw_shard[1]);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace unitdb
