#include "unit/shard/router.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace unitdb {
namespace {

TEST(ShardRouterTest, ShardCountIsClampedToAtLeastOne) {
  EXPECT_EQ(ShardRouter(0).num_shards(), 1);
  EXPECT_EQ(ShardRouter(-4).num_shards(), 1);
  EXPECT_EQ(ShardRouter(8).num_shards(), 8);
}

TEST(ShardRouterTest, ShardOfIsDeterministicAcrossInstances) {
  ShardRouter a(4);
  ShardRouter b(4);
  for (ItemId item = 0; item < 512; ++item) {
    EXPECT_EQ(a.ShardOf(item), b.ShardOf(item));
    EXPECT_GE(a.ShardOf(item), 0);
    EXPECT_LT(a.ShardOf(item), 4);
  }
}

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  ShardRouter r(1);
  for (ItemId item = 0; item < 64; ++item) EXPECT_EQ(r.ShardOf(item), 0);
}

TEST(ShardRouterTest, HashSpreadsItemsOverEveryShard) {
  // Not a uniformity proof — just that SplitMix64 doesn't collapse a
  // contiguous id range onto a strict subset of shards.
  ShardRouter r(8);
  std::set<int> hit;
  for (ItemId item = 0; item < 256; ++item) hit.insert(r.ShardOf(item));
  EXPECT_EQ(hit.size(), 8u);
}

TEST(ShardRouterTest, SplitPreservesReadSetOrderWithinEachShard) {
  ShardRouter r(4);
  std::vector<ItemId> items;
  for (ItemId i = 0; i < 40; ++i) items.push_back(i);
  std::vector<std::vector<ItemId>> groups;
  std::vector<int> touched;
  r.Split(items, &groups, &touched);

  ASSERT_EQ(groups.size(), 4u);
  size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    const auto& g = groups[static_cast<size_t>(s)];
    total += g.size();
    for (size_t i = 0; i < g.size(); ++i) {
      EXPECT_EQ(r.ShardOf(g[i]), s);
      if (i > 0) {
        // Relative input order survives the split: both items keep their
        // original positions' order.
        auto p0 = std::find(items.begin(), items.end(), g[i - 1]);
        auto p1 = std::find(items.begin(), items.end(), g[i]);
        EXPECT_LT(p0, p1);
      }
    }
  }
  EXPECT_EQ(total, items.size());
}

TEST(ShardRouterTest, SplitReportsShardsInFirstTouchOrder) {
  ShardRouter r(4);
  std::vector<ItemId> items = {17, 3, 17, 9, 3, 25};
  std::vector<std::vector<ItemId>> groups;
  std::vector<int> touched;
  r.Split(items, &groups, &touched);

  std::vector<int> expected;
  for (ItemId it : items) {
    const int s = r.ShardOf(it);
    if (std::find(expected.begin(), expected.end(), s) == expected.end()) {
      expected.push_back(s);
    }
  }
  EXPECT_EQ(touched, expected);
}

TEST(ShardSeedTest, MonolithicRunKeepsTheBaseSeed) {
  EXPECT_EQ(ShardSeed(42, 0, 1), 42u);
  EXPECT_EQ(ShardSeed(7, 0, 0), 7u);
}

TEST(ShardSeedTest, ShardsGetDistinctDeterministicSeeds) {
  std::set<uint64_t> seeds;
  for (int s = 0; s < 16; ++s) {
    const uint64_t v = ShardSeed(42, s, 16);
    EXPECT_EQ(v, ShardSeed(42, s, 16));  // pure function
    seeds.insert(v);
    EXPECT_NE(v, 42u);  // derived, not the base
  }
  EXPECT_EQ(seeds.size(), 16u);
}

}  // namespace
}  // namespace unitdb
