// Engine <-> observability integration: tracing must be a pure observer
// (bit-identical metrics on or off), the registry must stay empty with
// tracing off, and real engine output must satisfy trace_check's invariants.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "unit/obs/counters.h"
#include "unit/obs/trace_check.h"
#include "unit/obs/trace_reader.h"
#include "unit/obs/trace_sink.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

constexpr double kScale = 0.02;

StatusOr<Workload> SmallWorkload() {
  return MakeStandardWorkload(UpdateVolume::kMedium,
                              UpdateDistribution::kUniform, kScale, 42);
}

void ExpectSameMetrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.per_class_counts, b.per_class_counts);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.events_cancelled, b.events_cancelled);
  EXPECT_EQ(a.events_compacted, b.events_compacted);
  EXPECT_EQ(a.peak_ready_depth, b.peak_ready_depth);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.lock_restarts, b.lock_restarts);
  EXPECT_EQ(a.update_commits, b.update_commits);
  EXPECT_EQ(a.on_demand_updates, b.on_demand_updates);
  EXPECT_EQ(a.updates_generated, b.updates_generated);
  EXPECT_EQ(a.updates_dropped, b.updates_dropped);
  EXPECT_EQ(a.busy_s, b.busy_s);
  EXPECT_EQ(a.query_response_s.count(), b.query_response_s.count());
  EXPECT_EQ(a.query_response_s.mean(), b.query_response_s.mean());
  EXPECT_EQ(a.query_freshness.mean(), b.query_freshness.mean());
  EXPECT_EQ(a.update_latency_s.mean(), b.update_latency_s.mean());
}

TEST(EngineObsTest, TraceOffLeavesTheRegistryEmpty) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  CounterRegistry reg;
  EngineParams ep;
  ep.counters = &reg;  // registry attached, but no sink or recorder
  auto r = RunExperiment(*w, "unit", UsmWeights{}, ep);
  ASSERT_TRUE(r.ok());
  // Nothing may register into the registry on a trace-off run — this is
  // the zero-overhead-when-off contract (no counters, no allocations, no
  // branches taken on behalf of the obs layer).
  EXPECT_TRUE(reg.empty());
  EXPECT_TRUE(r->metrics.obs_counters.empty());
  EXPECT_TRUE(r->metrics.obs_gauges.empty());
}

// The tentpole guarantee: attaching every obs hook changes nothing about
// the simulation itself. Same workload, same policy, same seed -> the
// RunMetrics agree field for field (obs_* excluded by construction).
TEST(EngineObsTest, TracingDoesNotPerturbTheRun) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  for (const char* policy : {"imu", "odu", "qmf", "unit"}) {
    auto plain = RunExperiment(*w, policy, UsmWeights{});
    ASSERT_TRUE(plain.ok());

    std::ostringstream trace_out;
    CounterRegistry reg;
    JsonlTraceSink sink(trace_out, &reg);
    TimeSeriesRecorder recorder;
    EngineParams ep;
    ep.trace = &sink;
    ep.series = &recorder;
    ep.counters = &reg;
    auto traced = RunExperiment(*w, policy, UsmWeights{}, ep);
    ASSERT_TRUE(traced.ok());

    SCOPED_TRACE(policy);
    ExpectSameMetrics(plain->metrics, traced->metrics);
    EXPECT_EQ(plain->usm, traced->usm);
    EXPECT_GT(sink.emitted(), 0);
    EXPECT_FALSE(recorder.samples().empty());
    EXPECT_FALSE(traced->metrics.obs_counters.empty());
  }
}

TEST(EngineObsTest, EngineTracePassesTheChecker) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  for (const char* policy : {"imu", "odu", "qmf", "unit"}) {
    std::ostringstream trace_out;
    JsonlTraceSink sink(trace_out);
    EngineParams ep;
    ep.trace = &sink;
    auto r = RunExperiment(*w, policy, UsmWeights{}, ep);
    ASSERT_TRUE(r.ok());

    std::istringstream in(trace_out.str());
    auto events = ReadTrace(in);
    ASSERT_TRUE(events.ok()) << events.status().ToString();
    const TraceCheckResult check = CheckTrace(*events);
    SCOPED_TRACE(policy);
    EXPECT_TRUE(check.ok()) << TraceCheckSummary(check);

    // The trace retells the run the metrics summarize.
    const OutcomeCounts& c = r->metrics.counts;
    EXPECT_EQ(check.arrivals, c.submitted);
    EXPECT_EQ(check.rejects, c.rejected);
    EXPECT_EQ(check.admits, c.submitted - c.rejected);
    EXPECT_EQ(check.commits, c.success + c.dsf);
    EXPECT_EQ(check.success, c.success);
    EXPECT_EQ(check.stale, c.dsf);
    EXPECT_EQ(check.deadline_misses, c.dmf);
    EXPECT_EQ(check.update_drops, r->metrics.updates_dropped);
    EXPECT_EQ(check.update_applies, r->metrics.update_commits);
  }
}

TEST(EngineObsTest, SeriesWindowsSumToTheRunTotals) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  TimeSeriesRecorder recorder;
  EngineParams ep;
  ep.series = &recorder;
  auto r = RunExperiment(*w, "unit", UsmWeights{}, ep);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(recorder.samples().empty());

  OutcomeCounts total;
  double prev_t = 0.0;
  for (const WindowSample& s : recorder.samples()) {
    EXPECT_GT(s.t_s, prev_t);  // strictly advancing sample times
    prev_t = s.t_s;
    total.submitted += s.window.submitted;
    total.success += s.window.success;
    total.rejected += s.window.rejected;
    total.dmf += s.window.dmf;
    total.dsf += s.window.dsf;
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_GE(s.udrop_p90, s.udrop_p50);
    EXPECT_GE(static_cast<double>(s.udrop_max), s.udrop_p90);
  }
  EXPECT_EQ(total, r->metrics.counts);
}

TEST(EngineObsTest, RingBufferKeepsTheTailOfTheRun) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  RingBufferTraceSink ring(128);
  EngineParams ep;
  ep.trace = &ring;
  auto r = RunExperiment(*w, "unit", UsmWeights{}, ep);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(ring.size(), 128u);
  EXPECT_GT(ring.overwritten(), 0);
  // Retained events are the newest, still in chronological order.
  const auto events = ring.Events();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST(EngineObsTest, RunTracedExperimentWritesTheArtifacts) {
  auto w = SmallWorkload();
  ASSERT_TRUE(w.ok());
  ObsOptions obs;
  obs.trace_path = ::testing::TempDir() + "/obs_run.jsonl";
  obs.series_csv_path = ::testing::TempDir() + "/obs_run.csv";
  auto r = RunTracedExperiment(*w, "unit", UsmWeights{}, obs);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->series.empty());
  EXPECT_FALSE(r->metrics.obs_counters.empty());

  auto events = ReadTraceFile(obs.trace_path);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_TRUE(CheckTrace(*events).ok());
  std::remove(obs.trace_path.c_str());
  std::remove(obs.series_csv_path.c_str());
}

}  // namespace
}  // namespace unitdb
