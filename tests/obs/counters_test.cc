#include "unit/obs/counters.h"

#include <gtest/gtest.h>

namespace unitdb {
namespace {

TEST(CounterRegistryTest, StartsEmpty) {
  CounterRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_TRUE(reg.CounterSnapshot().empty());
  EXPECT_TRUE(reg.GaugeSnapshot().empty());
  // Value lookups do not create entries.
  EXPECT_EQ(reg.CounterValue("nope"), 0);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("nope"), 0.0);
  EXPECT_TRUE(reg.empty());
}

TEST(CounterRegistryTest, CounterReferenceIsStable) {
  CounterRegistry reg;
  int64_t& a = reg.Counter("a");
  a = 7;
  // Registering more names must not move the earlier node.
  for (int i = 0; i < 100; ++i) {
    reg.Counter("filler." + std::to_string(i));
  }
  a += 1;
  EXPECT_EQ(reg.CounterValue("a"), 8);
  EXPECT_EQ(&reg.Counter("a"), &a);
}

TEST(CounterRegistryTest, GaugeLastWriteWins) {
  CounterRegistry reg;
  double& g = reg.Gauge("depth");
  g = 3.5;
  g = 1.25;
  EXPECT_DOUBLE_EQ(reg.GaugeValue("depth"), 1.25);
}

TEST(CounterRegistryTest, SnapshotsAreSortedByName) {
  CounterRegistry reg;
  reg.Counter("zeta") = 1;
  reg.Counter("alpha") = 2;
  reg.Counter("mid") = 3;
  reg.Gauge("b") = 0.5;
  reg.Gauge("a") = 0.25;
  const auto counters = reg.CounterSnapshot();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "mid");
  EXPECT_EQ(counters[2].first, "zeta");
  const auto gauges = reg.GaugeSnapshot();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0].first, "a");
  EXPECT_EQ(gauges[1].first, "b");
}

}  // namespace
}  // namespace unitdb
