#include "unit/obs/trace_check.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace unitdb {
namespace {

TraceEvent Ev(SimTime t, TraceEventType type, TxnId txn = kInvalidTxn) {
  TraceEvent e;
  e.time = t;
  e.type = type;
  e.txn = txn;
  return e;
}

TraceEvent Arrival(SimTime t, TxnId txn) {
  TraceEvent e = Ev(t, TraceEventType::kQueryArrival, txn);
  e.deadline = t + 1000;
  e.estimate = 10;
  return e;
}

TraceEvent Commit(SimTime t, TxnId txn, int64_t udrop, double freshness_req,
                  const char* outcome) {
  TraceEvent e = Ev(t, TraceEventType::kCommit, txn);
  e.set_reason(outcome);
  e.udrop = udrop;
  e.freshness = 1.0 / (1.0 + static_cast<double>(udrop));
  e.freshness_req = freshness_req;
  return e;
}

TraceEvent Lbc(SimTime t, const char* signal, double r, double fm, double fs,
               double knob_before, double knob) {
  TraceEvent e = Ev(t, TraceEventType::kLbcSignal);
  e.set_reason(signal);
  e.r = r;
  e.fm = fm;
  e.fs = fs;
  e.resolved = 10;
  e.knob_before = knob_before;
  e.knob = knob;
  return e;
}

// A small but complete run: two queries (one success, one DMF), one
// rejection, an update cycle, a degrade/upgrade pair, and LBC signals of
// every kind.
std::vector<TraceEvent> ValidTrace() {
  std::vector<TraceEvent> t;
  t.push_back(Arrival(10, 0));
  t.push_back(Ev(10, TraceEventType::kAdmit, 0));
  t.push_back(Arrival(20, 1));
  t.push_back(Ev(20, TraceEventType::kAdmit, 1));
  TraceEvent reject = Ev(30, TraceEventType::kReject, 2);
  reject.set_reason("deadline");
  t.push_back(Arrival(30, 2));
  t.push_back(reject);

  TraceEvent up = Ev(40, TraceEventType::kUpdateArrival);
  up.item = 5;
  t.push_back(up);
  TraceEvent apply = Ev(45, TraceEventType::kUpdateApply, 100);
  apply.item = 5;
  apply.lag = 5;
  apply.set_reason("periodic");
  t.push_back(apply);
  TraceEvent drop = Ev(50, TraceEventType::kUpdateDrop);
  drop.item = 5;
  t.push_back(drop);

  t.push_back(Ev(55, TraceEventType::kPreempt, 1));
  t.push_back(Ev(56, TraceEventType::kLockRestart, 1));

  t.push_back(Commit(60, 0, 0, 0.9, "success"));
  t.push_back(Ev(1020, TraceEventType::kDeadlineMiss, 1));

  TraceEvent degrade = Ev(1100, TraceEventType::kPeriodChange);
  degrade.item = 5;
  degrade.period_from = 1000;
  degrade.period_to = 1800;
  degrade.set_reason("degrade");
  t.push_back(degrade);
  TraceEvent upgrade = degrade;
  upgrade.time = 1200;
  upgrade.period_from = 1800;
  upgrade.period_to = 1000;
  upgrade.set_reason("upgrade");
  t.push_back(upgrade);

  t.push_back(Lbc(1300, "loosen-ac", 0.5, 0.2, 0.1, 1.21, 1.1));
  t.push_back(Lbc(1400, "degrade+tighten", 0.2, 0.5, 0.1, 1.1, 1.21));
  t.push_back(Lbc(1500, "upgrade", 0.1, 0.2, 0.5, 1.21, 1.21));
  t.push_back(Lbc(1600, "preventive-degrade", 0.0, 0.0, 0.0, 1.21, 1.21));
  t.push_back(Lbc(1700, "none", 0.0, 0.0, 0.0, 1.21, 1.21));
  return t;
}

TEST(TraceCheckTest, ValidTracePasses) {
  const TraceCheckResult r = CheckTrace(ValidTrace());
  EXPECT_TRUE(r.ok()) << TraceCheckSummary(r);
  EXPECT_EQ(r.arrivals, 3);
  EXPECT_EQ(r.admits, 2);
  EXPECT_EQ(r.rejects, 1);
  EXPECT_EQ(r.commits, 1);
  EXPECT_EQ(r.success, 1);
  EXPECT_EQ(r.deadline_misses, 1);
  EXPECT_EQ(r.update_arrivals, 1);
  EXPECT_EQ(r.update_applies, 1);
  EXPECT_EQ(r.update_drops, 1);
  EXPECT_EQ(r.lbc_signals, 5);
}

TEST(TraceCheckTest, EmptyTracePasses) {
  EXPECT_TRUE(CheckTrace({}).ok());
}

TEST(TraceCheckTest, FlagsTimeRegression) {
  auto t = ValidTrace();
  t.back().time = 0;  // earlier than its predecessor
  EXPECT_FALSE(CheckTrace(t).ok());
}

TEST(TraceCheckTest, FlagsDuplicateArrival) {
  auto t = ValidTrace();
  t.push_back(Arrival(2000, 0));
  EXPECT_FALSE(CheckTrace(t).ok());
}

TEST(TraceCheckTest, FlagsAdmitWithoutArrival) {
  std::vector<TraceEvent> t = {Ev(1, TraceEventType::kAdmit, 77)};
  EXPECT_FALSE(CheckTrace(t).ok());
}

TEST(TraceCheckTest, FlagsSecondTerminalOutcome) {
  auto t = ValidTrace();
  t.push_back(Commit(2000, 0, 0, 0.9, "success"));  // txn 0 already done
  EXPECT_FALSE(CheckTrace(t).ok());
}

TEST(TraceCheckTest, FlagsAdmittedQueryWithoutTerminal) {
  std::vector<TraceEvent> t = {Arrival(1, 0),
                               Ev(1, TraceEventType::kAdmit, 0)};
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_FALSE(r.ok());
}

TEST(TraceCheckTest, RejectedQueryNeedsNoTerminal) {
  TraceEvent reject = Ev(1, TraceEventType::kReject, 0);
  reject.set_reason("usm");
  std::vector<TraceEvent> t = {Arrival(1, 0), reject};
  EXPECT_TRUE(CheckTrace(t).ok());
}

TEST(TraceCheckTest, FlagsEq1FreshnessMismatch) {
  auto t = ValidTrace();
  TraceEvent bad = Commit(2000, 3, 4, 0.5, "dsf");
  bad.freshness = 0.3;  // should be 1/(1+4) = 0.2
  t.insert(t.begin(), Arrival(1, 3));
  t.insert(t.begin() + 1, Ev(1, TraceEventType::kAdmit, 3));
  t.push_back(bad);
  EXPECT_FALSE(CheckTrace(t).ok());
}

TEST(TraceCheckTest, FlagsSuccessBelowRequiredFreshness) {
  std::vector<TraceEvent> t = {Arrival(1, 0),
                               Ev(1, TraceEventType::kAdmit, 0)};
  // freshness 1/(1+4) = 0.2 < req 0.5, yet labeled success.
  t.push_back(Commit(10, 0, 4, 0.5, "success"));
  EXPECT_FALSE(CheckTrace(t).ok());
}

TEST(TraceCheckTest, FlagsStaleOutcomeMeetingRequirement) {
  std::vector<TraceEvent> t = {Arrival(1, 0),
                               Ev(1, TraceEventType::kAdmit, 0)};
  // freshness 1.0 >= req 0.9, yet labeled dsf.
  t.push_back(Commit(10, 0, 0, 0.9, "dsf"));
  EXPECT_FALSE(CheckTrace(t).ok());
}

TEST(TraceCheckTest, FlagsNegativeApplyLag) {
  TraceEvent apply = Ev(1, TraceEventType::kUpdateApply, 100);
  apply.item = 1;
  apply.lag = -3;
  apply.set_reason("periodic");
  EXPECT_FALSE(CheckTrace({apply}).ok());
}

TEST(TraceCheckTest, FlagsDegradeThatShrinksThePeriod) {
  TraceEvent e = Ev(1, TraceEventType::kPeriodChange);
  e.item = 1;
  e.period_from = 1800;
  e.period_to = 1000;
  e.set_reason("degrade");
  EXPECT_FALSE(CheckTrace({e}).ok());
}

TEST(TraceCheckTest, FlagsUpgradeThatStretchesThePeriod) {
  TraceEvent e = Ev(1, TraceEventType::kPeriodChange);
  e.item = 1;
  e.period_from = 1000;
  e.period_to = 1800;
  e.set_reason("upgrade");
  EXPECT_FALSE(CheckTrace({e}).ok());
}

// Fig. 2 dominance: the emitted signal must match the largest positive
// post-floor weighted ratio.
TEST(TraceCheckTest, FlagsLoosenAcWithoutDominantR) {
  EXPECT_FALSE(
      CheckTrace({Lbc(1, "loosen-ac", 0.2, 0.5, 0.1, 1.21, 1.1)}).ok());
  EXPECT_FALSE(
      CheckTrace({Lbc(1, "loosen-ac", 0.0, 0.0, 0.0, 1.21, 1.1)}).ok());
}

TEST(TraceCheckTest, FlagsDegradeTightenWithoutDominantFm) {
  EXPECT_FALSE(
      CheckTrace({Lbc(1, "degrade+tighten", 0.5, 0.2, 0.1, 1.1, 1.21)})
          .ok());
}

TEST(TraceCheckTest, FlagsUpgradeWithoutDominantFs) {
  EXPECT_FALSE(
      CheckTrace({Lbc(1, "upgrade", 0.5, 0.2, 0.1, 1.1, 1.1)}).ok());
}

TEST(TraceCheckTest, FlagsNoneWithPositiveRatios) {
  EXPECT_FALSE(
      CheckTrace({Lbc(1, "none", 0.5, 0.2, 0.1, 1.1, 1.1)}).ok());
}

// C_flex is larger-is-tighter: loosen-ac must not raise the knob and
// degrade+tighten must not lower it; other signals leave it unchanged.
TEST(TraceCheckTest, FlagsLoosenAcThatTightensTheKnob) {
  EXPECT_FALSE(
      CheckTrace({Lbc(1, "loosen-ac", 0.5, 0.2, 0.1, 1.1, 1.21)}).ok());
}

TEST(TraceCheckTest, FlagsDegradeTightenThatLoosensTheKnob) {
  EXPECT_FALSE(
      CheckTrace({Lbc(1, "degrade+tighten", 0.2, 0.5, 0.1, 1.21, 1.1)})
          .ok());
}

TEST(TraceCheckTest, FlagsKnobDriftOnNone) {
  EXPECT_FALSE(
      CheckTrace({Lbc(1, "none", 0.0, 0.0, 0.0, 1.1, 1.21)}).ok());
}

TEST(TraceCheckTest, NanKnobSkipsKnobChecks) {
  // Policies without admission control report NaN knobs; direction checks
  // must not fire on them.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(
      CheckTrace({Lbc(1, "loosen-ac", 0.5, 0.2, 0.1, nan, nan)}).ok());
}

TEST(TraceCheckTest, ViolationRecordingIsCapped) {
  std::vector<TraceEvent> t;
  const int n = 2 * TraceCheckResult::kMaxRecordedViolations;
  for (int i = 0; i < n; ++i) {
    t.push_back(Ev(i, TraceEventType::kAdmit, i));  // all unknown txns
  }
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(r.violation_count, static_cast<int64_t>(n));
  EXPECT_LE(static_cast<int64_t>(r.violations.size()),
            TraceCheckResult::kMaxRecordedViolations);
}

TEST(TraceCheckTest, SummaryMentionsViolations) {
  std::vector<TraceEvent> t = {Ev(1, TraceEventType::kAdmit, 77)};
  const TraceCheckResult r = CheckTrace(t);
  const std::string summary = TraceCheckSummary(r);
  EXPECT_NE(summary.find("violation"), std::string::npos) << summary;
}

// --- Per-invariant tagging and exit codes -------------------------------
// tools/trace_check exits with the number of the lowest violated invariant;
// these tests pin the violation -> invariant mapping end to end.

TEST(TraceCheckExitCodeTest, CleanTraceIsZero) {
  const TraceCheckResult r = CheckTrace(ValidTrace());
  EXPECT_EQ(TraceCheckExitCode(r), 0);
  EXPECT_EQ(r.FirstViolatedInvariant(), 0);
  for (int i = 1; i <= 8; ++i) EXPECT_EQ(r.invariant_violations[i], 0);
}

TEST(TraceCheckExitCodeTest, TimestampRegressionIsInvariant1) {
  auto t = ValidTrace();
  t.back().time = 0;
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[1], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 1);
}

TEST(TraceCheckExitCodeTest, LifecycleLeakIsInvariant2) {
  const TraceCheckResult r =
      CheckTrace({Ev(1, TraceEventType::kAdmit, 77)});
  EXPECT_GT(r.invariant_violations[2], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 2);
}

TEST(TraceCheckExitCodeTest, AdmittedWithoutTerminalIsInvariant2) {
  const TraceCheckResult r =
      CheckTrace({Arrival(1, 0), Ev(1, TraceEventType::kAdmit, 0)});
  EXPECT_GT(r.invariant_violations[2], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 2);
}

TEST(TraceCheckExitCodeTest, FreshnessAccountingIsInvariant3) {
  // freshness 1/(1+4) = 0.2 < req 0.5, yet labeled success.
  const TraceCheckResult r =
      CheckTrace({Arrival(1, 0), Ev(1, TraceEventType::kAdmit, 0),
                  Commit(10, 0, 4, 0.5, "success")});
  EXPECT_GT(r.invariant_violations[3], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 3);
}

TEST(TraceCheckExitCodeTest, LbcRuleIsInvariant4) {
  const TraceCheckResult r =
      CheckTrace({Lbc(1, "none", 0.5, 0.2, 0.1, 1.1, 1.1)});
  EXPECT_GT(r.invariant_violations[4], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 4);
}

TEST(TraceCheckExitCodeTest, UpdateSanityIsInvariant5) {
  TraceEvent apply = Ev(1, TraceEventType::kUpdateApply, 100);
  apply.item = 1;
  apply.lag = -3;
  apply.set_reason("periodic");
  const TraceCheckResult r = CheckTrace({apply});
  EXPECT_GT(r.invariant_violations[5], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 5);
}

TEST(TraceCheckExitCodeTest, FaultPairingIsInvariant6) {
  TraceEvent stop = Ev(1, TraceEventType::kFaultStop, 5);
  stop.set_reason("update-outage");
  const TraceCheckResult r = CheckTrace({stop});
  EXPECT_GT(r.invariant_violations[6], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 6);
}

TEST(TraceCheckExitCodeTest, LowestViolatedInvariantWins) {
  // One invariant-5 violation followed by an invariant-2 violation: the
  // exit code reports 2, the lower invariant number.
  TraceEvent apply = Ev(1, TraceEventType::kUpdateApply, 100);
  apply.item = 1;
  apply.lag = -3;
  apply.set_reason("periodic");
  const TraceCheckResult r =
      CheckTrace({apply, Ev(2, TraceEventType::kAdmit, 77)});
  EXPECT_GT(r.invariant_violations[5], 0);
  EXPECT_GT(r.invariant_violations[2], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 2);
}

TEST(TraceCheckExitCodeTest, PerInvariantCountsSumToTotal) {
  auto t = ValidTrace();
  t.back().time = 0;                                // invariant 1
  t.push_back(Ev(2000, TraceEventType::kAdmit, 77));  // invariant 2 (+ 1)
  const TraceCheckResult r = CheckTrace(t);
  int64_t sum = 0;
  for (int i = 1; i <= 8; ++i) sum += r.invariant_violations[i];
  EXPECT_EQ(sum, r.violation_count);
}

TEST(TraceCheckExitCodeTest, MessagesCarryTheInvariantTag) {
  const TraceCheckResult r =
      CheckTrace({Ev(1, TraceEventType::kAdmit, 77)});
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].find("[invariant 2]"), std::string::npos)
      << r.violations[0];
}

// --- Invariant 7: closed-loop session discipline ------------------------

TraceEvent Retry(SimTime t, TxnId txn, TxnId request, int64_t attempt,
                 SimDuration delay) {
  TraceEvent e = Ev(t, TraceEventType::kSessionRetry, txn);
  e.session = 0;
  e.request = request;
  e.resolved = attempt;
  e.lag = delay;
  return e;
}

TraceEvent Abandon(SimTime t, TxnId txn, TxnId request, int64_t attempt) {
  TraceEvent e = Ev(t, TraceEventType::kSessionAbandon, txn);
  e.session = 0;
  e.request = request;
  e.resolved = attempt;
  return e;
}

TraceEvent Shed(SimTime t, TxnId txn, int64_t depth, int64_t watermark) {
  TraceEvent e = Ev(t, TraceEventType::kShed, txn);
  e.resolved = depth;
  e.magnitude = static_cast<double>(watermark);
  return e;
}

TraceEvent Reject(SimTime t, TxnId txn) {
  TraceEvent e = Ev(t, TraceEventType::kReject, txn);
  e.set_reason("deadline");
  return e;
}

// One request chain: attempt 1 rejected -> retry, attempt 2 (txn 1) misses
// its deadline -> retry with a longer delay, attempt 3 (txn 2) is shed ->
// the session abandons.
std::vector<TraceEvent> SessionTrace() {
  std::vector<TraceEvent> t;
  t.push_back(Arrival(10, 0));
  t.push_back(Reject(10, 0));
  t.push_back(Retry(10, 0, 0, 1, 100));
  t.push_back(Arrival(110, 1));
  t.push_back(Ev(110, TraceEventType::kAdmit, 1));
  t.push_back(Ev(1110, TraceEventType::kDeadlineMiss, 1));
  t.push_back(Retry(1110, 1, 0, 2, 150));
  t.push_back(Arrival(1260, 2));
  t.push_back(Ev(1260, TraceEventType::kAdmit, 2));
  t.push_back(Shed(1300, 2, 5, 4));
  t.push_back(Abandon(1300, 2, 0, 3));
  return t;
}

TEST(TraceCheckSessionTest, ValidSessionTracePasses) {
  const TraceCheckResult r = CheckTrace(SessionTrace());
  EXPECT_TRUE(r.ok()) << TraceCheckSummary(r);
  EXPECT_EQ(r.session_retries, 2);
  EXPECT_EQ(r.session_abandons, 1);
  EXPECT_EQ(r.sheds, 1);
}

TEST(TraceCheckSessionTest, ShedIsATerminalOutcome) {
  // An admitted query evicted by shedding needs no further terminal event
  // (invariant 2), and a second terminal for it is flagged.
  std::vector<TraceEvent> t = {Arrival(1, 0), Ev(1, TraceEventType::kAdmit, 0),
                               Shed(5, 0, 3, 2)};
  EXPECT_TRUE(CheckTrace(t).ok());
  t.push_back(Commit(10, 0, 0, 0.9, "success"));
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[2], 0);
}

TEST(TraceCheckSessionTest, RetryWithoutFailureIsInvariant7) {
  // txn 0 committed successfully; a retry for it has no failed attempt to
  // pair with.
  std::vector<TraceEvent> t = {Arrival(1, 0), Ev(1, TraceEventType::kAdmit, 0),
                               Commit(10, 0, 0, 0.9, "success"),
                               Retry(10, 0, 0, 1, 100)};
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[7], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 7);
}

TEST(TraceCheckSessionTest, AbandonWithoutFailureIsInvariant7) {
  const TraceCheckResult r = CheckTrace({Abandon(1, 0, 0, 1)});
  EXPECT_GT(r.invariant_violations[7], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 7);
}

TEST(TraceCheckSessionTest, AttemptNumberMustIncrement) {
  auto t = SessionTrace();
  t[6].resolved = 3;  // second retry claims attempt 3 after attempt 1
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[7], 0);
}

TEST(TraceCheckSessionTest, BackoffDelayMustNotShrink) {
  auto t = SessionTrace();
  t[6].lag = 50;  // second retry delay below the first's 100
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[7], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 7);
}

TEST(TraceCheckSessionTest, RetryDelayMustBePositive) {
  std::vector<TraceEvent> t = {Arrival(1, 0), Reject(1, 0),
                               Retry(1, 0, 0, 1, 0)};
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[7], 0);
}

TEST(TraceCheckSessionTest, ShedAtOrBelowWatermarkIsInvariant7) {
  std::vector<TraceEvent> t = {Arrival(1, 0), Ev(1, TraceEventType::kAdmit, 0),
                               Shed(5, 0, 2, 2)};  // depth == watermark
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[7], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 7);
}

TEST(TraceCheckSessionTest, ShedWithInactiveWatermarkIsInvariant7) {
  std::vector<TraceEvent> t = {Arrival(1, 0), Ev(1, TraceEventType::kAdmit, 0),
                               Shed(5, 0, 3, 0)};  // watermark off => no sheds
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[7], 0);
}

TEST(TraceCheckSessionTest, AbandonAttemptMustFollowChain) {
  auto t = SessionTrace();
  t.back().resolved = 5;  // abandon claims attempt 5 after attempt 2
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[7], 0);
}

// --- Invariant 8: result-cache discipline -------------------------------

TraceEvent CacheHit(SimTime t, TxnId txn, int64_t udrop, double freshness_req,
                    ItemId item, int64_t capacity) {
  TraceEvent e = Ev(t, TraceEventType::kCacheHit, txn);
  e.set_reason("success");
  e.udrop = udrop;
  e.freshness = 1.0 / (1.0 + static_cast<double>(udrop));
  e.freshness_req = freshness_req;
  e.item = item;
  e.resolved = capacity;
  return e;
}

TraceEvent UpdateArrival(SimTime t, ItemId item) {
  TraceEvent e = Ev(t, TraceEventType::kUpdateArrival);
  e.item = item;
  return e;
}

TraceEvent UpdateApply(SimTime t, TxnId txn, ItemId item, SimDuration lag) {
  TraceEvent e = Ev(t, TraceEventType::kUpdateApply, txn);
  e.item = item;
  e.lag = lag;
  e.set_reason("periodic");
  return e;
}

TraceEvent CacheInvalidate(SimTime t, ItemId item, TxnId txn) {
  TraceEvent e = Ev(t, TraceEventType::kCacheInvalidate, txn);
  e.item = item;
  return e;
}

// Item 5's ideal grid is {100, 200, 300}. Generation 0 is installed at
// t=110 (value time 100) and generation 2 at t=310 (value time 300), so a
// hit at t=250 sees Udrop 1 (generation 1 live, 0 installed) and a hit at
// t=400 sees Udrop 0 again.
std::vector<TraceEvent> CacheTrace() {
  std::vector<TraceEvent> t;
  t.push_back(UpdateArrival(100, 5));
  t.push_back(UpdateApply(110, 100, 5, 10));  // installs generation 0
  t.push_back(Arrival(120, 0));
  t.push_back(Ev(120, TraceEventType::kAdmit, 0));
  t.push_back(Commit(150, 0, 0, 0.5, "success"));  // populates item 5
  t.push_back(UpdateArrival(200, 5));
  t.push_back(Arrival(250, 1));
  t.push_back(CacheHit(250, 1, 1, 0.4, 5, 8));
  t.push_back(UpdateArrival(300, 5));
  t.push_back(UpdateApply(310, 101, 5, 10));  // installs generation 2
  t.push_back(CacheInvalidate(310, 5, 101));
  t.push_back(Arrival(400, 2));
  t.push_back(CacheHit(400, 2, 0, 0.9, 5, 8));
  return t;
}

TEST(TraceCheckCacheTest, ValidCacheTracePasses) {
  const TraceCheckResult r = CheckTrace(CacheTrace());
  EXPECT_TRUE(r.ok()) << TraceCheckSummary(r);
  EXPECT_EQ(r.cache_hits, 2);
  EXPECT_EQ(r.cache_invalidations, 1);
}

TEST(TraceCheckCacheTest, CacheHitIsATerminalOutcome) {
  // A hit resolves its txn; a second terminal for it is an invariant-2
  // lifecycle violation.
  auto t = CacheTrace();
  t.push_back(Commit(500, 1, 0, 0.4, "success"));
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[2], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 2);
}

TEST(TraceCheckCacheTest, CacheHitOfAnAdmittedTxnIsInvariant2) {
  // Hits are served on arrival, before admission control ever sees the
  // query; a hit for an already-admitted txn is a lifecycle violation.
  std::vector<TraceEvent> t = {Arrival(1, 0),
                               Ev(1, TraceEventType::kAdmit, 0),
                               CacheHit(5, 0, 0, 0.5, -1, 8)};
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[2], 0);
}

TEST(TraceCheckCacheTest, HitUnderreportingStalenessIsInvariant8) {
  // The t=250 hit claims Udrop 0 (freshness 1.0) while generation 1 is live
  // and only generation 0 installed — fresher than the engine could serve.
  auto t = CacheTrace();
  t[7].udrop = 0;
  t[7].freshness = 1.0;
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[8], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 8);
}

TEST(TraceCheckCacheTest, HitIgnoringAnInstallIsInvariant8) {
  // The t=400 hit claims Udrop 2 as if the t=310 install (and its
  // invalidation) never happened.
  auto t = CacheTrace();
  t[12].udrop = 2;
  t[12].freshness = 1.0 / 3.0;
  t[12].freshness_req = 0.2;
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[8], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 8);
}

TEST(TraceCheckCacheTest, HitWithCacheDisabledIsInvariant8) {
  auto t = CacheTrace();
  t[7].resolved = 0;  // capacity 0: the cache is off, yet a hit was served
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[8], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 8);
}

TEST(TraceCheckCacheTest, HitBelowRequiredFreshnessIsInvariant8) {
  // freshness 1/(1+4) = 0.2 < req 0.5: the qf check should have skipped it.
  std::vector<TraceEvent> t = {Arrival(1, 0),
                               CacheHit(1, 0, 4, 0.5, -1, 8)};
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[8], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 8);
}

TEST(TraceCheckCacheTest, HitFreshnessUdropMismatchIsInvariant8) {
  auto t = CacheTrace();
  t[7].freshness = 0.9;  // != 1/(1+1)
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[8], 0);
}

TEST(TraceCheckCacheTest, HitWithNonSuccessOutcomeIsInvariant8) {
  auto t = CacheTrace();
  t[7].set_reason("dsf");
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[8], 0);
}

TEST(TraceCheckCacheTest, InvalidateWithoutApplyIsInvariant8) {
  const TraceCheckResult r = CheckTrace({CacheInvalidate(10, 5, 100)});
  EXPECT_GT(r.invariant_violations[8], 0);
  EXPECT_EQ(TraceCheckExitCode(r), 8);
}

TEST(TraceCheckCacheTest, InvalidateByADifferentTxnIsInvariant8) {
  auto t = CacheTrace();
  t[10].txn = 999;  // not the txn whose apply installed the new version
  const TraceCheckResult r = CheckTrace(t);
  EXPECT_GT(r.invariant_violations[8], 0);
}

TEST(TraceCheckCacheTest, FaultWindowsDisableTheHistoryLeg) {
  // With a fault window in the trace the arrival grid is unreliable, so the
  // history cross-check must not fire — but the inline hit checks still do.
  auto t = CacheTrace();
  t[7].udrop = 0;  // would contradict the history in a fault-free trace
  t[7].freshness = 1.0;
  TraceEvent start = Ev(500, TraceEventType::kFaultStart, 0);
  start.set_reason("service-slowdown");
  start.magnitude = 1.5;
  TraceEvent stop = Ev(600, TraceEventType::kFaultStop, 0);
  stop.set_reason("service-slowdown");
  t.push_back(start);
  t.push_back(stop);
  EXPECT_TRUE(CheckTrace(t).ok()) << TraceCheckSummary(CheckTrace(t));
}

}  // namespace
}  // namespace unitdb
