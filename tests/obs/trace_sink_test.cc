#include "unit/obs/trace_sink.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "unit/obs/counters.h"

// Allocation counter: every (unaligned) global new in this test binary bumps
// g_allocs. The obs emission paths advertise "allocation-free per event";
// the tests below hold them to it. Sanitizer builds intercept global
// new/delete themselves — replacing them there mismatches the sanitizer's
// allocator, so the counter (and the assertions built on it) compiles away.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define UNIT_COUNTS_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define UNIT_COUNTS_ALLOCS 0
#endif
#endif
#ifndef UNIT_COUNTS_ALLOCS
#define UNIT_COUNTS_ALLOCS 1
#endif

namespace {
std::atomic<int64_t> g_allocs{0};
}  // namespace

#if UNIT_COUNTS_ALLOCS
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace unitdb {
namespace {

TraceEvent Admit(SimTime t, TxnId txn) {
  TraceEvent e;
  e.time = t;
  e.type = TraceEventType::kAdmit;
  e.txn = txn;
  return e;
}

TEST(JsonlTraceSinkTest, GoldenLines) {
  std::ostringstream out;
  CounterRegistry reg;
  JsonlTraceSink sink(out, &reg);

  TraceEvent arrival;
  arrival.time = 5;
  arrival.type = TraceEventType::kQueryArrival;
  arrival.txn = 1;
  arrival.pref_class = 0;
  arrival.deadline = 900;
  arrival.estimate = 40;
  sink.Emit(arrival);
  sink.Emit(Admit(5, 1));
  sink.Flush();

  const std::string expected =
      "{\"t\":5,\"ev\":\"query-arrival\",\"txn\":1,\"class\":0,"
      "\"deadline\":900,\"est\":40}\n"
      "{\"t\":5,\"ev\":\"admit\",\"txn\":1}\n";
  EXPECT_EQ(out.str(), expected);
  EXPECT_EQ(sink.emitted(), 2);
  EXPECT_EQ(reg.CounterValue("sink.jsonl.events"), 2);
  EXPECT_EQ(reg.CounterValue("sink.jsonl.bytes"),
            static_cast<int64_t>(expected.size()));
}

TEST(JsonlTraceSinkTest, OpenFailsOnBadPath) {
  auto sink = JsonlTraceSink::Open("/nonexistent-dir/trace.jsonl");
  EXPECT_FALSE(sink.ok());
}

TEST(RingBufferTraceSinkTest, KeepsEverythingBelowCapacity) {
  RingBufferTraceSink ring(4);
  for (int i = 0; i < 3; ++i) ring.Emit(Admit(i, i));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.emitted(), 3);
  EXPECT_EQ(ring.overwritten(), 0);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ring.at(i).time, static_cast<SimTime>(i));
  }
}

TEST(RingBufferTraceSinkTest, OverwritesOldestFirst) {
  CounterRegistry reg;
  RingBufferTraceSink ring(3, &reg);
  for (int i = 0; i < 7; ++i) ring.Emit(Admit(i, i));
  // Events 0..3 fell off; 4,5,6 remain, oldest first.
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.emitted(), 7);
  EXPECT_EQ(ring.overwritten(), 4);
  const auto events = ring.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 4);
  EXPECT_EQ(events[1].time, 5);
  EXPECT_EQ(events[2].time, 6);
  EXPECT_EQ(reg.CounterValue("sink.ring.events"), 7);
  EXPECT_EQ(reg.CounterValue("sink.ring.overwrites"), 4);
}

TEST(RingBufferTraceSinkTest, EmitNeverAllocates) {
  RingBufferTraceSink ring(64);  // all storage preallocated here
  TraceEvent e = Admit(0, 0);
  const int64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    e.time = i;
    ring.Emit(e);
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
}

TEST(TraceEventFormatTest, FormatJsonlNeverAllocates) {
  TraceEvent e;
  e.type = TraceEventType::kLbcSignal;
  e.set_reason("degrade+tighten");
  e.r = 0.125;
  e.fm = 0.5;
  e.fs = 0.25;
  e.utilization = 0.75;
  e.resolved = 100;
  e.knob_before = 1.0;
  e.knob = 1.1;
  char buf[640];
  const int64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    e.time = i;
    FormatJsonl(e, buf, sizeof(buf));
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace unitdb
