#include "unit/obs/trace_event.h"

#include <gtest/gtest.h>

#include <string>

namespace unitdb {
namespace {

std::string Format(const TraceEvent& e) {
  char buf[640];
  const size_t n = FormatJsonl(e, buf, sizeof(buf));
  return std::string(buf, n);
}

TEST(TraceEventTest, TypeNamesRoundTrip) {
  const TraceEventType all[] = {
      TraceEventType::kQueryArrival, TraceEventType::kAdmit,
      TraceEventType::kReject,       TraceEventType::kPreempt,
      TraceEventType::kLockRestart,  TraceEventType::kCommit,
      TraceEventType::kDeadlineMiss, TraceEventType::kUpdateArrival,
      TraceEventType::kUpdateDrop,   TraceEventType::kUpdateApply,
      TraceEventType::kPeriodChange, TraceEventType::kLbcSignal,
  };
  for (TraceEventType t : all) {
    TraceEventType back;
    ASSERT_TRUE(TraceEventTypeFromName(TraceEventTypeName(t), &back))
        << TraceEventTypeName(t);
    EXPECT_EQ(back, t);
  }
  TraceEventType unused;
  EXPECT_FALSE(TraceEventTypeFromName("not-an-event", &unused));
}

TEST(TraceEventTest, ReasonTruncatesSafely) {
  TraceEvent e;
  e.set_reason("this-reason-is-much-longer-than-the-buffer");
  EXPECT_EQ(e.reason[sizeof(e.reason) - 1], '\0');
  EXPECT_EQ(std::string(e.reason).size(), sizeof(e.reason) - 1);
  e.set_reason(nullptr);
  EXPECT_EQ(std::string(e.reason), "");
  // The longest real reason must fit without truncation.
  e.set_reason("preventive-degrade");
  EXPECT_EQ(std::string(e.reason), "preventive-degrade");
}

TEST(TraceEventGoldenTest, QueryArrival) {
  TraceEvent e;
  e.time = 549139;
  e.type = TraceEventType::kQueryArrival;
  e.txn = 7;
  e.pref_class = 2;
  e.deadline = 1909620;
  e.estimate = 19543;
  EXPECT_EQ(Format(e),
            "{\"t\":549139,\"ev\":\"query-arrival\",\"txn\":7,\"class\":2,"
            "\"deadline\":1909620,\"est\":19543}");
}

TEST(TraceEventGoldenTest, Admit) {
  TraceEvent e;
  e.time = 10;
  e.type = TraceEventType::kAdmit;
  e.txn = 3;
  EXPECT_EQ(Format(e), "{\"t\":10,\"ev\":\"admit\",\"txn\":3}");
}

TEST(TraceEventGoldenTest, RejectCarriesReason) {
  TraceEvent e;
  e.time = 11;
  e.type = TraceEventType::kReject;
  e.txn = 4;
  e.set_reason("usm");
  EXPECT_EQ(Format(e), "{\"t\":11,\"ev\":\"reject\",\"txn\":4,"
                       "\"reason\":\"usm\"}");
}

TEST(TraceEventGoldenTest, CommitDoublesRoundTripExactly) {
  TraceEvent e;
  e.time = 568682;
  e.type = TraceEventType::kCommit;
  e.txn = 0;
  e.set_reason("success");
  e.freshness = 0.1;  // not exactly representable: %.17g must round-trip
  e.freshness_req = 0.9;
  e.udrop = 9;
  const std::string line = Format(e);
  EXPECT_EQ(line,
            "{\"t\":568682,\"ev\":\"commit\",\"txn\":0,"
            "\"outcome\":\"success\",\"freshness\":0.10000000000000001,"
            "\"freq\":0.90000000000000002,\"udrop\":9}");
}

TEST(TraceEventGoldenTest, PeriodChange) {
  TraceEvent e;
  e.time = 99;
  e.type = TraceEventType::kPeriodChange;
  e.item = 12;
  e.period_from = 1000;
  e.period_to = 2000;
  e.set_reason("degrade");
  EXPECT_EQ(Format(e),
            "{\"t\":99,\"ev\":\"period-change\",\"item\":12,"
            "\"from\":1000,\"to\":2000,\"reason\":\"degrade\"}");
}

TEST(TraceEventGoldenTest, TruncationIsBounded) {
  TraceEvent e;
  e.type = TraceEventType::kLbcSignal;
  e.set_reason("degrade+tighten");
  e.resolved = 123456789;
  char tiny[16];
  const size_t n = FormatJsonl(e, tiny, sizeof(tiny));
  EXPECT_LT(n, sizeof(tiny));
  EXPECT_EQ(tiny[n], '\0');
}

}  // namespace
}  // namespace unitdb
