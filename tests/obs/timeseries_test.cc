#include "unit/obs/timeseries.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace unitdb {
namespace {

WindowSample Sample(double t_s) {
  WindowSample s;
  s.t_s = t_s;
  s.window.submitted = 10;
  s.window.success = 6;
  s.window.rejected = 2;
  s.window.dmf = 1;
  s.window.dsf = 1;
  s.utilization = 0.5;
  s.ready_queries = 3;
  s.ready_updates = 1;
  s.udrop_p50 = 0.0;
  s.udrop_p90 = 2.0;
  s.udrop_max = 5;
  s.admission_knob = 1.1;
  s.degraded_items = 4;
  return s;
}

TEST(TimeSeriesRecorderTest, ColumnNamesAreStable) {
  const auto& cols = TimeSeriesRecorder::ColumnNames();
  ASSERT_EQ(cols.size(), 23u);
  EXPECT_EQ(cols.front(), "t_s");
  EXPECT_EQ(cols[6], "usm_s");
  EXPECT_EQ(cols[17], "degraded_items");
  EXPECT_EQ(cols[18], "retries");
  EXPECT_EQ(cols[19], "abandons");
  EXPECT_EQ(cols[20], "shed");
  EXPECT_EQ(cols[21], "cache_hits");
  EXPECT_EQ(cols.back(), "cache_inval");
}

TEST(TimeSeriesRecorderTest, RecordDerivesTheUsmDecomposition) {
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  TimeSeriesRecorder rec(weights);
  rec.Record(Sample(1.0));
  ASSERT_EQ(rec.samples().size(), 1u);
  const UsmBreakdown expected =
      UsmDecompose(rec.samples()[0].window, weights);
  EXPECT_DOUBLE_EQ(rec.samples()[0].usm.s, expected.s);
  EXPECT_DOUBLE_EQ(rec.samples()[0].usm.r, expected.r);
  EXPECT_DOUBLE_EQ(rec.samples()[0].usm.fm, expected.fm);
  EXPECT_DOUBLE_EQ(rec.samples()[0].usm.fs, expected.fs);
  EXPECT_GT(rec.samples()[0].usm.s, 0.0);
}

TEST(TimeSeriesRecorderTest, CsvHasHeaderAndOneRowPerSample) {
  TimeSeriesRecorder rec;
  rec.Record(Sample(1.0));
  rec.Record(Sample(2.0));
  const std::string csv = rec.ToCsv();
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("t_s,submitted,", 0), 0u) << line;
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    // Every row has exactly as many comma-separated cells as columns.
    size_t commas = 0;
    for (char c : line) commas += (c == ',');
    EXPECT_EQ(commas + 1, TimeSeriesRecorder::ColumnNames().size()) << line;
  }
  EXPECT_EQ(rows, 2);
}

TEST(TimeSeriesRecorderTest, JsonEncodesNanKnobAsNull) {
  TimeSeriesRecorder rec;
  WindowSample s = Sample(1.0);
  s.admission_knob = std::numeric_limits<double>::quiet_NaN();
  rec.Record(s);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"c_flex\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST(TimeSeriesRecorderTest, WritesCsvAndJsonFiles) {
  TimeSeriesRecorder rec;
  rec.Record(Sample(1.0));
  const std::string csv_path = ::testing::TempDir() + "/obs_series.csv";
  const std::string json_path = ::testing::TempDir() + "/obs_series.json";
  ASSERT_TRUE(rec.WriteCsv(csv_path).ok());
  ASSERT_TRUE(rec.WriteJson(json_path).ok());
  std::ifstream csv(csv_path);
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_EQ(header.rfind("t_s,", 0), 0u);
  std::ifstream json(json_path);
  std::stringstream buf;
  buf << json.rdbuf();
  EXPECT_NE(buf.str().find("\"t_s\""), std::string::npos);
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

TEST(TimeSeriesRecorderTest, WriteFailsOnBadPath) {
  TimeSeriesRecorder rec;
  rec.Record(Sample(1.0));
  EXPECT_FALSE(rec.WriteCsv("/nonexistent-dir/series.csv").ok());
  EXPECT_FALSE(rec.WriteJson("/nonexistent-dir/series.json").ok());
}

}  // namespace
}  // namespace unitdb
