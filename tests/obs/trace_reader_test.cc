#include "unit/obs/trace_reader.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace unitdb {
namespace {

std::string Format(const TraceEvent& e) {
  char buf[640];
  const size_t n = FormatJsonl(e, buf, sizeof(buf));
  return std::string(buf, n);
}

// Every event kind must survive writer -> reader with all serialized fields
// intact: trace_check re-evaluates the producer's comparisons on the parsed
// values, so lossy parsing would mean spurious violations.
TEST(TraceReaderTest, RoundTripsEveryEventKind) {
  std::vector<TraceEvent> events;

  TraceEvent arrival;
  arrival.time = 100;
  arrival.type = TraceEventType::kQueryArrival;
  arrival.txn = 1;
  arrival.pref_class = 3;
  arrival.deadline = 5000;
  arrival.estimate = 77;
  events.push_back(arrival);

  for (TraceEventType t :
       {TraceEventType::kAdmit, TraceEventType::kPreempt,
        TraceEventType::kLockRestart, TraceEventType::kDeadlineMiss}) {
    TraceEvent e;
    e.time = 101;
    e.type = t;
    e.txn = 1;
    events.push_back(e);
  }

  TraceEvent reject;
  reject.time = 102;
  reject.type = TraceEventType::kReject;
  reject.txn = 2;
  reject.set_reason("deadline");
  events.push_back(reject);

  TraceEvent commit;
  commit.time = 103;
  commit.type = TraceEventType::kCommit;
  commit.txn = 1;
  commit.set_reason("dsf");
  commit.freshness = 1.0 / 3.0;
  commit.freshness_req = 0.9;
  commit.udrop = 2;
  events.push_back(commit);

  TraceEvent up_arrival;
  up_arrival.time = 104;
  up_arrival.type = TraceEventType::kUpdateArrival;
  up_arrival.item = 17;
  events.push_back(up_arrival);

  TraceEvent drop = up_arrival;
  drop.time = 105;
  drop.type = TraceEventType::kUpdateDrop;
  events.push_back(drop);

  TraceEvent apply;
  apply.time = 106;
  apply.type = TraceEventType::kUpdateApply;
  apply.txn = 9;
  apply.item = 17;
  apply.lag = 1234;
  apply.set_reason("periodic");
  events.push_back(apply);

  TraceEvent period;
  period.time = 107;
  period.type = TraceEventType::kPeriodChange;
  period.item = 17;
  period.period_from = 1000;
  period.period_to = 1500;
  period.set_reason("degrade");
  events.push_back(period);

  TraceEvent lbc;
  lbc.time = 108;
  lbc.type = TraceEventType::kLbcSignal;
  lbc.set_reason("loosen-ac");
  lbc.r = 0.375;
  lbc.fm = 0.1;
  lbc.fs = 0.2;
  lbc.utilization = 0.83;
  lbc.resolved = 42;
  lbc.drop_trigger = true;
  lbc.knob_before = 1.21;
  lbc.knob = 1.1;
  events.push_back(lbc);

  for (const TraceEvent& e : events) {
    auto parsed = ParseTraceLine(Format(e));
    ASSERT_TRUE(parsed.ok()) << Format(e) << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(parsed->time, e.time);
    EXPECT_EQ(parsed->type, e.type);
    EXPECT_EQ(parsed->txn, e.txn) << Format(e);
    EXPECT_EQ(parsed->item, e.item) << Format(e);
    EXPECT_EQ(parsed->pref_class, e.pref_class);
    EXPECT_EQ(parsed->deadline, e.deadline);
    EXPECT_EQ(parsed->estimate, e.estimate);
    EXPECT_EQ(parsed->lag, e.lag);
    EXPECT_EQ(parsed->period_from, e.period_from);
    EXPECT_EQ(parsed->period_to, e.period_to);
    EXPECT_STREQ(parsed->reason, e.reason);
    // Doubles round-trip bit-exactly through %.17g.
    EXPECT_EQ(parsed->freshness, e.freshness) << Format(e);
    EXPECT_EQ(parsed->freshness_req, e.freshness_req);
    EXPECT_EQ(parsed->udrop, e.udrop);
    EXPECT_EQ(parsed->r, e.r);
    EXPECT_EQ(parsed->fm, e.fm);
    EXPECT_EQ(parsed->fs, e.fs);
    EXPECT_EQ(parsed->utilization, e.utilization);
    EXPECT_EQ(parsed->resolved, e.resolved);
    EXPECT_EQ(parsed->drop_trigger, e.drop_trigger);
    EXPECT_EQ(parsed->knob_before, e.knob_before);
    EXPECT_EQ(parsed->knob, e.knob);
  }
}

TEST(TraceReaderTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTraceLine("not json").ok());
  EXPECT_FALSE(ParseTraceLine("{\"t\":1").ok());
  EXPECT_FALSE(ParseTraceLine("").ok());
}

TEST(TraceReaderTest, RejectsUnknownKey) {
  // Unknown keys are schema drift, not extensibility.
  auto r = ParseTraceLine("{\"t\":1,\"ev\":\"admit\",\"txn\":1,\"zzz\":2}");
  EXPECT_FALSE(r.ok());
}

TEST(TraceReaderTest, RejectsUnknownOrMissingEventType) {
  EXPECT_FALSE(ParseTraceLine("{\"t\":1,\"ev\":\"warp\",\"txn\":1}").ok());
  EXPECT_FALSE(ParseTraceLine("{\"t\":1,\"txn\":1}").ok());
}

TEST(TraceReaderTest, ReadTraceReportsLineNumber) {
  std::istringstream in(
      "{\"t\":1,\"ev\":\"admit\",\"txn\":1}\n"
      "\n"
      "{\"t\":2,\"ev\":\"bogus\",\"txn\":1}\n");
  auto r = ReadTrace(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(TraceReaderTest, ReadTraceSkipsBlankLines) {
  std::istringstream in(
      "{\"t\":1,\"ev\":\"admit\",\"txn\":1}\n"
      "\n"
      "{\"t\":2,\"ev\":\"deadline-miss\",\"txn\":1}\n");
  auto r = ReadTrace(in);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST(TraceReaderTest, ReadTraceFileFailsOnMissingFile) {
  EXPECT_FALSE(ReadTraceFile("/nonexistent/trace.jsonl").ok());
}

}  // namespace
}  // namespace unitdb
