// Golden determinism suite for the parallel experiment runner: whatever the
// worker count and completion order, the parallel entry points must produce
// results bit-identical to the sequential RunReplicated path (same derived
// seeds, same fold order => the same doubles to the last bit).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

// Exact (bitwise, via ==) comparison of every aggregated statistic.
void ExpectStatIdentical(const RunningStat& a, const RunningStat& b,
                         const std::string& what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.sum(), b.sum()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void ExpectReplicatedIdentical(const ReplicatedResult& a,
                               const ReplicatedResult& b) {
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.replications, b.replications);
  ExpectStatIdentical(a.usm, b.usm, a.trace + "/" + a.policy + " usm");
  ExpectStatIdentical(a.success_ratio, b.success_ratio,
                      a.trace + "/" + a.policy + " success_ratio");
  ExpectStatIdentical(a.rejection_ratio, b.rejection_ratio,
                      a.trace + "/" + a.policy + " rejection_ratio");
  ExpectStatIdentical(a.dmf_ratio, b.dmf_ratio,
                      a.trace + "/" + a.policy + " dmf_ratio");
  ExpectStatIdentical(a.dsf_ratio, b.dsf_ratio,
                      a.trace + "/" + a.policy + " dsf_ratio");
}

constexpr double kScale = 0.05;

TEST(ReplicationSeedTest, MatchesTheHistoricalSequentialDerivation) {
  EXPECT_EQ(ReplicationSeed(42, 0), 42u);
  EXPECT_EQ(ReplicationSeed(42, 3), 342u);
  EXPECT_EQ(ReplicationSeed(7, 1), 107u);
}

TEST(RunReplicatedParallelTest, BitIdenticalToSequentialAcrossWorkerCounts) {
  for (const char* policy : {"unit", "qmf"}) {
    auto seq = RunReplicated(UpdateVolume::kMedium,
                             UpdateDistribution::kUniform, policy,
                             UsmWeights{1.0, 0.5, 1.0, 0.5}, 4, kScale);
    ASSERT_TRUE(seq.ok());
    for (int jobs : {1, 2, 8}) {
      auto par = RunReplicatedParallel(
          UpdateVolume::kMedium, UpdateDistribution::kUniform, policy,
          UsmWeights{1.0, 0.5, 1.0, 0.5}, 4, jobs, kScale);
      ASSERT_TRUE(par.ok()) << "jobs=" << jobs;
      ExpectReplicatedIdentical(*seq, *par);
    }
  }
}

TEST(RunReplicatedParallelTest, CellCountNotDivisibleByWorkers) {
  auto seq = RunReplicated(UpdateVolume::kLow, UpdateDistribution::kNegative,
                           "imu", UsmWeights{}, 5, kScale);
  ASSERT_TRUE(seq.ok());
  auto par = RunReplicatedParallel(UpdateVolume::kLow,
                                   UpdateDistribution::kNegative, "imu",
                                   UsmWeights{}, 5, /*jobs=*/2, kScale);
  ASSERT_TRUE(par.ok());
  ExpectReplicatedIdentical(*seq, *par);
}

TEST(RunReplicatedParallelTest, SingleCellEdgeCase) {
  auto seq = RunReplicated(UpdateVolume::kHigh, UpdateDistribution::kPositive,
                           "odu", UsmWeights{}, 1, kScale);
  ASSERT_TRUE(seq.ok());
  for (int jobs : {1, 8}) {
    auto par = RunReplicatedParallel(UpdateVolume::kHigh,
                                     UpdateDistribution::kPositive, "odu",
                                     UsmWeights{}, 1, jobs, kScale);
    ASSERT_TRUE(par.ok()) << "jobs=" << jobs;
    ExpectReplicatedIdentical(*seq, *par);
  }
}

TEST(RunReplicatedParallelTest, RejectsBadInputsLikeSequential) {
  EXPECT_FALSE(RunReplicatedParallel(UpdateVolume::kLow,
                                     UpdateDistribution::kUniform, "imu",
                                     UsmWeights{}, 0, 2)
                   .ok());
  EXPECT_FALSE(RunReplicatedParallel(UpdateVolume::kLow,
                                     UpdateDistribution::kUniform,
                                     "no-such-policy", UsmWeights{}, 3, 2,
                                     kScale)
                   .ok());
}

TEST(RunGridTest, Table1GridBitIdenticalToSequentialPerCell) {
  GridSpec spec;  // default axes: the full Table 1 trace grid
  spec.policies = {"unit"};
  spec.replications = 2;
  spec.scale = kScale;
  auto grid = RunGrid(spec, /*jobs=*/8);
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid->size(), 9u);
  size_t cell = 0;
  for (UpdateDistribution dist : spec.distributions) {
    for (UpdateVolume volume : spec.volumes) {
      auto seq = RunReplicated(volume, dist, "unit", UsmWeights{}, 2, kScale);
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ((*grid)[cell].volume, volume);
      EXPECT_EQ((*grid)[cell].distribution, dist);
      ExpectReplicatedIdentical(*seq, (*grid)[cell].result);
      ++cell;
    }
  }
}

TEST(RunGridTest, WorkerCountDoesNotChangeAnyCell) {
  GridSpec spec;
  spec.volumes = {UpdateVolume::kLow, UpdateVolume::kMedium};
  spec.distributions = {UpdateDistribution::kUniform,
                        UpdateDistribution::kNegative};
  spec.policies = {"unit", "imu"};
  spec.weightings = {{"naive", UsmWeights{}},
                     {"high-Cr", UsmWeights{1.0, 0.8, 0.2, 0.2}}};
  spec.replications = 3;  // 4 traces x 2 weightings x 2 policies, 3 reps
  spec.scale = kScale;
  auto one = RunGrid(spec, 1);
  auto eight = RunGrid(spec, 8);
  ASSERT_TRUE(one.ok() && eight.ok());
  ASSERT_EQ(one->size(), 16u);
  ASSERT_EQ(one->size(), eight->size());
  for (size_t i = 0; i < one->size(); ++i) {
    EXPECT_EQ((*one)[i].volume, (*eight)[i].volume);
    EXPECT_EQ((*one)[i].distribution, (*eight)[i].distribution);
    EXPECT_EQ((*one)[i].weights_name, (*eight)[i].weights_name);
    ExpectReplicatedIdentical((*one)[i].result, (*eight)[i].result);
  }
}

TEST(RunGridTest, RejectsEmptyAxesAndUnknownPolicies) {
  GridSpec empty;
  empty.policies = {};
  EXPECT_FALSE(RunGrid(empty, 2).ok());

  GridSpec bad;
  bad.policies = {"no-such-policy"};
  bad.scale = kScale;
  EXPECT_FALSE(RunGrid(bad, 2).ok());

  GridSpec zero_reps;
  zero_reps.replications = 0;
  EXPECT_FALSE(RunGrid(zero_reps, 2).ok());
}

}  // namespace
}  // namespace unitdb
