#include "unit/sim/experiment.h"

#include <gtest/gtest.h>

namespace unitdb {
namespace {

TEST(MakeStandardWorkloadTest, RejectsBadScale) {
  EXPECT_FALSE(MakeStandardWorkload(UpdateVolume::kLow,
                                    UpdateDistribution::kUniform, 0.0)
                   .ok());
  EXPECT_FALSE(MakeStandardWorkload(UpdateVolume::kLow,
                                    UpdateDistribution::kUniform, -1.0)
                   .ok());
}

TEST(MakeStandardWorkloadTest, ScaleShortensTheTrace) {
  auto full = MakeStandardWorkload(UpdateVolume::kLow,
                                   UpdateDistribution::kUniform, 0.2, 5);
  auto tenth = MakeStandardWorkload(UpdateVolume::kLow,
                                    UpdateDistribution::kUniform, 0.02, 5);
  ASSERT_TRUE(full.ok() && tenth.ok());
  EXPECT_EQ(full->duration, 10 * tenth->duration);
  EXPECT_GT(full->queries.size(), tenth->queries.size());
}

TEST(MakeStandardWorkloadTest, NamesTheTrace) {
  auto w = MakeStandardWorkload(UpdateVolume::kHigh,
                                UpdateDistribution::kPositive, 0.05, 5);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->update_trace_name, "high-pos");
  EXPECT_EQ(w->query_trace_name, "cello-like");
}

TEST(RunReplicatedTest, AggregatesSeveralSeeds) {
  auto r = RunReplicated(UpdateVolume::kLow, UpdateDistribution::kUniform,
                         "imu", UsmWeights{}, /*replications=*/3,
                         /*scale=*/0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->replications, 3);
  EXPECT_EQ(r->usm.count(), 3);
  EXPECT_EQ(r->trace, "low-unif");
  EXPECT_EQ(r->policy, "imu");
  EXPECT_GT(r->usm.mean(), 0.0);
  EXPECT_LE(r->usm.max(), 1.0);
  // Different seeds => (almost surely) different workloads => spread.
  EXPECT_GT(r->usm.max() - r->usm.min(), 0.0);
  // Ratio means stay consistent with each other.
  EXPECT_NEAR(r->success_ratio.mean() + r->rejection_ratio.mean() +
                  r->dmf_ratio.mean() + r->dsf_ratio.mean(),
              1.0, 1e-9);
}

TEST(RunReplicatedTest, RejectsBadInputs) {
  EXPECT_FALSE(RunReplicated(UpdateVolume::kLow,
                             UpdateDistribution::kUniform, "imu",
                             UsmWeights{}, 0)
                   .ok());
  EXPECT_FALSE(RunReplicated(UpdateVolume::kLow,
                             UpdateDistribution::kUniform, "no-such-policy",
                             UsmWeights{}, 1, 0.05)
                   .ok());
}

TEST(RunReplicatedTest, EngineParamsPropagate) {
  EngineParams fcfs;
  fcfs.discipline = QueueDiscipline::kFcfs;
  auto edf = RunReplicated(UpdateVolume::kMedium,
                           UpdateDistribution::kUniform, "imu", UsmWeights{},
                           2, 0.1);
  auto fcfs_r = RunReplicated(UpdateVolume::kMedium,
                              UpdateDistribution::kUniform, "imu",
                              UsmWeights{}, 2, 0.1, 42, fcfs);
  ASSERT_TRUE(edf.ok() && fcfs_r.ok());
  // Firm deadlines + overload: EDF completes at least as much as FCFS.
  EXPECT_GE(edf->usm.mean(), fcfs_r->usm.mean());
}

}  // namespace
}  // namespace unitdb
