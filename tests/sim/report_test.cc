#include "unit/sim/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace unitdb {
namespace {

TEST(FmtTest, FixedDecimals) {
  EXPECT_EQ(Fmt(0.4375), "0.4375");
  EXPECT_EQ(Fmt(0.4375, 2), "0.44");
  EXPECT_EQ(Fmt(-1.5, 1), "-1.5");
  EXPECT_EQ(Fmt(3.0, 0), "3");
}

TEST(FmtPercentTest, Formats) {
  EXPECT_EQ(FmtPercent(0.4375), "43.8%");
  EXPECT_EQ(FmtPercent(1.0, 0), "100%");
  EXPECT_EQ(FmtPercent(0.0), "0.0%");
}

TEST(BarTest, Proportions) {
  EXPECT_EQ(Bar(0.5, 1.0, 10), "#####.....");
  EXPECT_EQ(Bar(0.0, 1.0, 4), "....");
  EXPECT_EQ(Bar(1.0, 1.0, 4), "####");
  EXPECT_EQ(Bar(2.0, 1.0, 4), "####");   // clamped
  EXPECT_EQ(Bar(-1.0, 1.0, 4), "....");  // clamped
}

TEST(BarTest, DegenerateInputs) {
  EXPECT_EQ(Bar(1.0, 0.0, 10), "");
  EXPECT_EQ(Bar(1.0, 1.0, 0), "");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "12345"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // First column left-aligned, second right-aligned.
  EXPECT_NE(out.find("a              1"), std::string::npos);
  EXPECT_NE(out.find("long-name  12345"), std::string::npos);
}

TEST(TextTableTest, SeparatorsAndRaggedRows) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});  // ragged: missing cells print as blanks
  t.AddSeparator();
  t.AddRow({"2", "3", "4"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("2  3  4"), std::string::npos);
}

TEST(TextTableTest, NoHeader) {
  TextTable t;
  t.AddRow({"x", "y"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str(), "x  y\n");
}

}  // namespace
}  // namespace unitdb
