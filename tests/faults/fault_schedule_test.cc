// Scenario grammar and schedule compilation: the fault layer's contract is
// that a (spec, workload, seed) triple always compiles to the bit-identical
// pre-materialized schedule, and that every malformed spec fails loudly at
// parse or compile time rather than injecting silently wrong disturbances.

#include <gtest/gtest.h>

#include <string>

#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/workload/spec.h"

namespace unitdb {
namespace {

/// 4 items, sources on items 0 and 1 only, a query every 0.5 s, 100 s run.
Workload SmallWorkload() {
  Workload w;
  w.num_items = 4;
  w.duration = SecondsToSim(100.0);
  for (int i = 0; i < 200; ++i) {
    QueryRequest q;
    q.id = i;
    q.arrival = SecondsToSim(0.5 * i);
    q.exec = MillisToSim(20);
    q.relative_deadline = SecondsToSim(1.0);
    q.freshness_req = 0.6;
    q.items = {static_cast<ItemId>(i % 2)};
    w.queries.push_back(q);
  }
  for (ItemId item : {0, 1}) {
    ItemUpdateSpec s;
    s.item = item;
    s.ideal_period = SecondsToSim(1.0);
    s.update_exec = MillisToSim(10);
    s.phase = MillisToSim(100 * (item + 1));
    w.updates.push_back(s);
  }
  return w;
}

TEST(FaultKindTest, NamesRoundTrip) {
  for (FaultKind kind :
       {FaultKind::kUpdateOutage, FaultKind::kUpdateBurst,
        FaultKind::kLoadStep, FaultKind::kServiceSlowdown,
        FaultKind::kFreshnessShift}) {
    FaultKind back;
    ASSERT_TRUE(FaultKindFromName(FaultKindName(kind), &back))
        << FaultKindName(kind);
    EXPECT_EQ(back, kind);
  }
  FaultKind ignored;
  EXPECT_FALSE(FaultKindFromName("power-failure", &ignored));
}

TEST(FaultScenarioSpecTest, ParsesAllFiveKinds) {
  auto spec = FaultScenarioSpec::Parse(
      "name = everything\n"
      "seed = 99\n"
      "fault0.kind = update-outage\n"
      "fault0.start_s = 10\nfault0.end_s = 20\nfault0.items = 0-1\n"
      "fault1.kind = update-burst\n"
      "fault1.start_s = 25\nfault1.end_s = 30\nfault1.items = 0,1\n"
      "fault1.rate_hz = 4\n"
      "fault2.kind = load-step\n"
      "fault2.start_s = 35\nfault2.end_s = 45\nfault2.rate_hz = 20\n"
      "fault3.kind = service-slowdown\n"
      "fault3.start_s = 50\nfault3.end_s = 55\nfault3.factor = 2.5\n"
      "fault4.kind = freshness-shift\n"
      "fault4.start_s = 60\nfault4.end_s = 70\nfault4.delta = 0.3\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "everything");
  EXPECT_EQ(spec->seed, 99u);
  ASSERT_EQ(spec->faults.size(), 5u);
  EXPECT_EQ(spec->faults[0].kind, FaultKind::kUpdateOutage);
  EXPECT_EQ(spec->faults[0].items, "0-1");
  EXPECT_EQ(spec->faults[1].kind, FaultKind::kUpdateBurst);
  EXPECT_DOUBLE_EQ(spec->faults[1].rate_hz, 4.0);
  EXPECT_EQ(spec->faults[2].kind, FaultKind::kLoadStep);
  EXPECT_DOUBLE_EQ(spec->faults[3].factor, 2.5);
  EXPECT_DOUBLE_EQ(spec->faults[4].delta, 0.3);
}

TEST(FaultScenarioSpecTest, EmptySpecIsValidAndEmpty) {
  auto spec = FaultScenarioSpec::Parse("name = quiet\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->empty());
}

TEST(FaultScenarioSpecTest, RejectsMalformedSpecs) {
  const struct {
    const char* what;
    const char* text;
  } cases[] = {
      {"unknown top-level key", "bogus = 1\n"},
      {"unknown kind",
       "fault0.kind = meteor\nfault0.start_s = 1\nfault0.end_s = 2\n"},
      {"missing start/end", "fault0.kind = load-step\nfault0.rate_hz = 5\n"},
      {"inverted window",
       "fault0.kind = load-step\nfault0.start_s = 5\nfault0.end_s = 5\n"
       "fault0.rate_hz = 5\n"},
      {"negative start",
       "fault0.kind = load-step\nfault0.start_s = -1\nfault0.end_s = 5\n"
       "fault0.rate_hz = 5\n"},
      {"burst without rate",
       "fault0.kind = update-burst\nfault0.start_s = 1\nfault0.end_s = 2\n"
       "fault0.items = 0\n"},
      {"outage without items",
       "fault0.kind = update-outage\nfault0.start_s = 1\nfault0.end_s = 2\n"},
      {"outage with stray factor",
       "fault0.kind = update-outage\nfault0.start_s = 1\nfault0.end_s = 2\n"
       "fault0.items = 0\nfault0.factor = 2\n"},
      {"slowdown with stray items",
       "fault0.kind = service-slowdown\nfault0.start_s = 1\n"
       "fault0.end_s = 2\nfault0.factor = 2\nfault0.items = 0\n"},
      {"zero freshness delta",
       "fault0.kind = freshness-shift\nfault0.start_s = 1\nfault0.end_s = 2\n"
       "fault0.delta = 0\n"},
      {"non-dense index (fault1 without fault0)",
       "fault1.kind = load-step\nfault1.start_s = 1\nfault1.end_s = 2\n"
       "fault1.rate_hz = 5\n"},
      {"overlapping slowdown windows",
       "fault0.kind = service-slowdown\nfault0.start_s = 10\n"
       "fault0.end_s = 30\nfault0.factor = 2\n"
       "fault1.kind = service-slowdown\nfault1.start_s = 20\n"
       "fault1.end_s = 40\nfault1.factor = 3\n"},
  };
  for (const auto& c : cases) {
    auto spec = FaultScenarioSpec::Parse(c.text);
    EXPECT_FALSE(spec.ok()) << c.what;
  }
  // Back-to-back scalar windows (no overlap) are fine.
  EXPECT_TRUE(FaultScenarioSpec::Parse(
                  "fault0.kind = service-slowdown\nfault0.start_s = 10\n"
                  "fault0.end_s = 20\nfault0.factor = 2\n"
                  "fault1.kind = service-slowdown\nfault1.start_s = 20\n"
                  "fault1.end_s = 30\nfault1.factor = 3\n")
                  .ok());
}

TEST(FaultScheduleTest, EmptySpecCompilesToEmptySchedule) {
  const Workload w = SmallWorkload();
  auto s = FaultSchedule::Compile(FaultScenarioSpec{}, w, 42);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
  EXPECT_TRUE(s->edges().empty());
  EXPECT_TRUE(s->injected_queries().empty());
  EXPECT_TRUE(s->injected_updates().empty());
}

TEST(FaultScheduleTest, WindowOutsideRunFailsAndOverhangClamps) {
  const Workload w = SmallWorkload();  // 100 s
  auto past_end = FaultScenarioSpec::Parse(
      "fault0.kind = load-step\nfault0.start_s = 150\nfault0.end_s = 160\n"
      "fault0.rate_hz = 5\n");
  ASSERT_TRUE(past_end.ok());
  EXPECT_FALSE(FaultSchedule::Compile(*past_end, w, 42).ok());

  auto overhang = FaultScenarioSpec::Parse(
      "fault0.kind = load-step\nfault0.start_s = 90\nfault0.end_s = 160\n"
      "fault0.rate_hz = 5\n");
  ASSERT_TRUE(overhang.ok());
  auto s = FaultSchedule::Compile(*overhang, w, 42);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->edges().size(), 2u);
  EXPECT_EQ(s->edges()[1].time, w.duration);  // clamped stop edge
  EXPECT_EQ(s->envelope_end(), w.duration);
}

TEST(FaultScheduleTest, ItemSelectorsResolveAgainstSources) {
  const Workload w = SmallWorkload();  // sources on items 0, 1 of 4
  const auto outage = [](const std::string& items) {
    return FaultScenarioSpec::Parse("fault0.kind = update-outage\n"
                                    "fault0.start_s = 10\nfault0.end_s = 20\n"
                                    "fault0.items = " + items + "\n");
  };
  auto range = FaultSchedule::Compile(*outage("0-1"), w, 42);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->items(), (std::vector<ItemId>{0, 1}));

  auto list = FaultSchedule::Compile(*outage("1,0"), w, 42);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->items(), (std::vector<ItemId>{1, 0}));

  // '*' matches only items that actually have an update source.
  auto star = FaultSchedule::Compile(*outage("*"), w, 42);
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->items(), (std::vector<ItemId>{0, 1}));

  // Items 2/3 exist but have no source; an outage there would be a no-op.
  EXPECT_FALSE(FaultSchedule::Compile(*outage("2"), w, 42).ok());
  EXPECT_FALSE(FaultSchedule::Compile(*outage("0-3"), w, 42).ok());
  EXPECT_FALSE(FaultSchedule::Compile(*outage("7"), w, 42).ok());
  EXPECT_FALSE(FaultSchedule::Compile(*outage("x"), w, 42).ok());
}

TEST(FaultScheduleTest, LoadStepInjectsSeededQueriesInsideWindow) {
  const Workload w = SmallWorkload();
  auto spec = FaultScenarioSpec::Parse(
      "fault0.kind = load-step\nfault0.start_s = 10\nfault0.end_s = 30\n"
      "fault0.rate_hz = 10\n");
  ASSERT_TRUE(spec.ok());
  auto s = FaultSchedule::Compile(*spec, w, 42);
  ASSERT_TRUE(s.ok());
  // ~10 Hz over 20 s: Poisson, but far from 0 and from 2x the mean.
  EXPECT_GT(s->injected_queries().size(), 100u);
  EXPECT_LT(s->injected_queries().size(), 400u);
  SimTime prev = 0;
  for (const QueryRequest& q : s->injected_queries()) {
    EXPECT_EQ(q.id, kInvalidTxn);  // engine assigns transaction ids
    EXPECT_GE(q.arrival, SecondsToSim(10.0));
    EXPECT_LT(q.arrival, SecondsToSim(30.0));
    EXPECT_GE(q.arrival, prev);  // sorted
    EXPECT_FALSE(q.items.empty());  // cloned from a real template
    prev = q.arrival;
  }
}

TEST(FaultScheduleTest, BurstInjectsPerItemDeliveries) {
  const Workload w = SmallWorkload();
  auto spec = FaultScenarioSpec::Parse(
      "fault0.kind = update-burst\nfault0.start_s = 10\nfault0.end_s = 20\n"
      "fault0.items = 0-1\nfault0.rate_hz = 2\n");
  ASSERT_TRUE(spec.ok());
  auto s = FaultSchedule::Compile(*spec, w, 42);
  ASSERT_TRUE(s.ok());
  // 2 Hz x 10 s x 2 items = 40 deliveries (each item's phase may trim one).
  EXPECT_GE(s->injected_updates().size(), 38u);
  EXPECT_LE(s->injected_updates().size(), 40u);
  SimTime prev = 0;
  for (const InjectedUpdate& u : s->injected_updates()) {
    EXPECT_TRUE(u.item == 0 || u.item == 1);
    EXPECT_GE(u.time, SecondsToSim(10.0));
    EXPECT_LT(u.time, SecondsToSim(20.0));
    EXPECT_GE(u.time, prev);
    prev = u.time;
  }
}

TEST(FaultScheduleTest, EdgesSortStopsBeforeStartsAtEqualTimes) {
  const Workload w = SmallWorkload();
  auto spec = FaultScenarioSpec::Parse(
      "fault0.kind = service-slowdown\nfault0.start_s = 10\n"
      "fault0.end_s = 20\nfault0.factor = 2\n"
      "fault1.kind = service-slowdown\nfault1.start_s = 20\n"
      "fault1.end_s = 30\nfault1.factor = 3\n");
  ASSERT_TRUE(spec.ok());
  auto s = FaultSchedule::Compile(*spec, w, 42);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->edges().size(), 4u);
  // At t = 20 s the stop of fault0 must precede the start of fault1 so the
  // engine restores the baseline scale before applying the next factor.
  EXPECT_EQ(s->edges()[1].time, SecondsToSim(20.0));
  EXPECT_FALSE(s->edges()[1].start);
  EXPECT_EQ(s->edges()[1].fault, 0);
  EXPECT_EQ(s->edges()[2].time, SecondsToSim(20.0));
  EXPECT_TRUE(s->edges()[2].start);
  EXPECT_EQ(s->edges()[2].fault, 1);
  EXPECT_EQ(s->envelope_start(), SecondsToSim(10.0));
  EXPECT_EQ(s->envelope_end(), SecondsToSim(30.0));
}

TEST(FaultScheduleTest, CompilationIsDeterministicPerSeedPair) {
  const Workload w = SmallWorkload();
  auto spec = FaultScenarioSpec::Parse(
      "fault0.kind = load-step\nfault0.start_s = 10\nfault0.end_s = 40\n"
      "fault0.rate_hz = 8\n"
      "fault1.kind = update-burst\nfault1.start_s = 15\nfault1.end_s = 25\n"
      "fault1.items = *\nfault1.rate_hz = 3\n");
  ASSERT_TRUE(spec.ok());
  auto a = FaultSchedule::Compile(*spec, w, 42);
  auto b = FaultSchedule::Compile(*spec, w, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->injected_queries().size(), b->injected_queries().size());
  for (size_t i = 0; i < a->injected_queries().size(); ++i) {
    EXPECT_EQ(a->injected_queries()[i].arrival,
              b->injected_queries()[i].arrival);
    EXPECT_EQ(a->injected_queries()[i].items, b->injected_queries()[i].items);
  }
  ASSERT_EQ(a->injected_updates().size(), b->injected_updates().size());
  for (size_t i = 0; i < a->injected_updates().size(); ++i) {
    EXPECT_EQ(a->injected_updates()[i].time, b->injected_updates()[i].time);
    EXPECT_EQ(a->injected_updates()[i].item, b->injected_updates()[i].item);
  }

  // A different workload seed (new replication) draws a different injection
  // stream from the same scenario.
  auto c = FaultSchedule::Compile(*spec, w, 43);
  ASSERT_TRUE(c.ok());
  bool differs = c->injected_queries().size() != a->injected_queries().size();
  for (size_t i = 0; !differs && i < a->injected_queries().size(); ++i) {
    differs = a->injected_queries()[i].arrival !=
              c->injected_queries()[i].arrival;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace unitdb
