// Engine-side fault semantics on a hand-built workload: outages suppress
// deliveries, bursts force ingestion, load steps inject admissible queries,
// scalar faults apply only inside their windows — and an attached-but-empty
// schedule is a strict behavioral no-op.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "testing/fake_policy.h"
#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"
#include "unit/workload/spec.h"

namespace unitdb {
namespace {

using testing_support::FakePolicy;

/// 2 items, source on item 0 (1 s period), a query every 0.5 s, 60 s run.
Workload TinyWorkload() {
  Workload w;
  w.num_items = 2;
  w.duration = SecondsToSim(60.0);
  for (int i = 0; i < 120; ++i) {
    QueryRequest q;
    q.id = i;
    q.arrival = SecondsToSim(0.5 * i);
    q.exec = MillisToSim(20);
    q.relative_deadline = SecondsToSim(1.0);
    q.freshness_req = 0.6;
    q.items = {0};
    w.queries.push_back(q);
  }
  ItemUpdateSpec s;
  s.item = 0;
  s.ideal_period = SecondsToSim(1.0);
  s.update_exec = MillisToSim(5);
  s.phase = MillisToSim(100);
  w.updates.push_back(s);
  return w;
}

StatusOr<FaultSchedule> Compiled(const std::string& text, const Workload& w) {
  auto spec = FaultScenarioSpec::Parse(text);
  if (!spec.ok()) return spec.status();
  return FaultSchedule::Compile(*spec, w, 42);
}

RunMetrics RunWith(const Workload& w, const FaultSchedule* faults,
                   FakePolicy* policy = nullptr) {
  FakePolicy fallback;
  EngineParams params;
  params.faults = faults;
  Engine engine(w, policy != nullptr ? policy : &fallback, params);
  return engine.Run();
}

TEST(FaultEngineTest, EmptyScheduleIsStrictNoOp) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 0.02, 42);
  ASSERT_TRUE(w.ok());
  auto empty = FaultSchedule::Compile(FaultScenarioSpec{}, *w, 42);
  ASSERT_TRUE(empty.ok());
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  for (const char* policy : {"unit", "qmf", "imu"}) {
    auto plain = RunExperiment(*w, policy, weights);
    auto faulted = RunFaultedExperiment(*w, policy, weights, *empty);
    ASSERT_TRUE(plain.ok() && faulted.ok());
    SCOPED_TRACE(policy);
    EXPECT_EQ(plain->usm, faulted->usm);  // bitwise
    EXPECT_EQ(plain->metrics.counts, faulted->metrics.counts);
    EXPECT_EQ(plain->metrics.events_processed,
              faulted->metrics.events_processed);
    EXPECT_EQ(plain->metrics.events_cancelled,
              faulted->metrics.events_cancelled);
    EXPECT_EQ(plain->metrics.busy_s, faulted->metrics.busy_s);
    EXPECT_EQ(plain->metrics.preemptions, faulted->metrics.preemptions);
    EXPECT_EQ(plain->metrics.update_commits, faulted->metrics.update_commits);
    EXPECT_EQ(faulted->metrics.fault_edges, 0);
    EXPECT_EQ(faulted->metrics.fault_injected_queries, 0);
    EXPECT_EQ(faulted->metrics.fault_injected_updates, 0);
    EXPECT_EQ(faulted->metrics.fault_suppressed_updates, 0);
    EXPECT_FALSE(faulted->disturbance.valid);
  }
}

TEST(FaultEngineTest, OutageSuppressesDeliveries) {
  const Workload w = TinyWorkload();
  auto outage = Compiled(
      "fault0.kind = update-outage\nfault0.start_s = 20\n"
      "fault0.end_s = 40\nfault0.items = 0\n", w);
  ASSERT_TRUE(outage.ok()) << outage.status().ToString();

  const RunMetrics base = RunWith(w, nullptr);
  const RunMetrics faulted = RunWith(w, &*outage);
  EXPECT_EQ(faulted.fault_edges, 2);
  // One delivery per second for the 20 s window never reaches the server.
  EXPECT_GE(faulted.fault_suppressed_updates, 18);
  EXPECT_LE(faulted.fault_suppressed_updates, 21);
  EXPECT_LT(faulted.update_commits, base.update_commits);
  // The arrival chain keeps ticking through the window, so deliveries (and
  // update transactions) resume after it closes.
  EXPECT_GT(faulted.update_commits,
            base.update_commits - faulted.fault_suppressed_updates - 1);
  // Staleness rises while installed values decay behind the live source.
  EXPECT_GE(faulted.counts.dsf, base.counts.dsf);
}

TEST(FaultEngineTest, BurstForcesIngestion) {
  const Workload w = TinyWorkload();
  auto burst = Compiled(
      "fault0.kind = update-burst\nfault0.start_s = 20\n"
      "fault0.end_s = 30\nfault0.items = 0\nfault0.rate_hz = 5\n", w);
  ASSERT_TRUE(burst.ok()) << burst.status().ToString();
  ASSERT_FALSE(burst->injected_updates().empty());

  const RunMetrics base = RunWith(w, nullptr);
  const RunMetrics faulted = RunWith(w, &*burst);
  // Every pre-materialized delivery bypasses the due-check and becomes an
  // update transaction. Each forced pull also refreshes the item's
  // last-pull time, so some periodic deliveries inside the window stop
  // being due — total generation rises, but by less than the burst size.
  EXPECT_EQ(faulted.fault_injected_updates,
            static_cast<int64_t>(burst->injected_updates().size()));
  EXPECT_GT(faulted.updates_generated, base.updates_generated);
  EXPECT_LE(faulted.updates_generated,
            base.updates_generated + faulted.fault_injected_updates);
  EXPECT_EQ(faulted.update_commits, faulted.updates_generated);
}

TEST(FaultEngineTest, ConcurrentOutageSwallowsBurstDeliveries) {
  const Workload w = TinyWorkload();
  auto both = Compiled(
      "fault0.kind = update-outage\nfault0.start_s = 15\n"
      "fault0.end_s = 35\nfault0.items = 0\n"
      "fault1.kind = update-burst\nfault1.start_s = 20\n"
      "fault1.end_s = 30\nfault1.items = 0\nfault1.rate_hz = 5\n", w);
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  const RunMetrics m = RunWith(w, &*both);
  EXPECT_EQ(m.fault_injected_updates, 0);
  // Periodic (~20) plus forced (~50) deliveries all hit the outage.
  EXPECT_GE(m.fault_suppressed_updates,
            static_cast<int64_t>(both->injected_updates().size()));
}

TEST(FaultEngineTest, LoadStepInjectsAdmissibleQueries) {
  const Workload w = TinyWorkload();
  auto step = Compiled(
      "fault0.kind = load-step\nfault0.start_s = 20\n"
      "fault0.end_s = 40\nfault0.rate_hz = 10\n", w);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  ASSERT_FALSE(step->injected_queries().empty());

  FakePolicy policy;
  const RunMetrics m = RunWith(w, &*step, &policy);
  EXPECT_EQ(m.fault_injected_queries,
            static_cast<int64_t>(step->injected_queries().size()));
  // Conservation: every injected query is submitted and resolved like a
  // workload query.
  EXPECT_EQ(m.counts.submitted,
            static_cast<int64_t>(w.queries.size()) + m.fault_injected_queries);
  EXPECT_EQ(m.counts.resolved(), m.counts.submitted);
  EXPECT_EQ(static_cast<int64_t>(policy.resolved.size()), m.counts.submitted);
}

TEST(FaultEngineTest, SlowdownScalesServiceDemandInsideWindow) {
  const Workload w = TinyWorkload();
  auto slow = Compiled(
      "fault0.kind = service-slowdown\nfault0.start_s = 20\n"
      "fault0.end_s = 40\nfault0.factor = 3\n", w);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  const RunMetrics base = RunWith(w, nullptr);
  const RunMetrics faulted = RunWith(w, &*slow);
  EXPECT_GT(faulted.busy_s, base.busy_s);
}

TEST(FaultEngineTest, FreshnessShiftAppliesOnlyInsideWindow) {
  const Workload w = TinyWorkload();
  auto shift = Compiled(
      "fault0.kind = freshness-shift\nfault0.start_s = 20\n"
      "fault0.end_s = 40\nfault0.delta = 0.3\n", w);
  ASSERT_TRUE(shift.ok()) << shift.status().ToString();

  std::map<SimTime, double> req_at_arrival;
  FakePolicy policy;
  policy.admit = [&](EngineContext& engine, const Transaction& q) {
    req_at_arrival[engine.now()] = q.freshness_req();
    return true;
  };
  RunWith(w, &*shift, &policy);
  ASSERT_FALSE(req_at_arrival.empty());
  // A query arriving at exactly the window edge was pushed before the fault
  // edge, so the FIFO tie-break admits it under the *old* regime: the shift
  // covers (start, end] for same-instant arrivals.
  int inside = 0;
  for (const auto& [t, req] : req_at_arrival) {
    if (t > SecondsToSim(20.0) && t <= SecondsToSim(40.0)) {
      EXPECT_DOUBLE_EQ(req, 0.9) << "t=" << t;  // 0.6 + 0.3
      ++inside;
    } else {
      EXPECT_DOUBLE_EQ(req, 0.6) << "t=" << t;
    }
  }
  EXPECT_GT(inside, 0);
}

TEST(FaultEngineTest, FreshnessShiftClampsToOne) {
  const Workload w = TinyWorkload();  // base requirement 0.6
  auto shift = Compiled(
      "fault0.kind = freshness-shift\nfault0.start_s = 20\n"
      "fault0.end_s = 40\nfault0.delta = 0.7\n", w);
  ASSERT_TRUE(shift.ok());
  double max_req = 0.0;
  FakePolicy policy;
  policy.admit = [&](EngineContext&, const Transaction& q) {
    max_req = std::max(max_req, q.freshness_req());
    return true;
  };
  RunWith(w, &*shift, &policy);
  EXPECT_DOUBLE_EQ(max_req, 1.0);
}

}  // namespace
}  // namespace unitdb
