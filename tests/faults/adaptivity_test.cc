// Settling-time regression: the disturbance report recovers the textbook
// step-response quantities from synthetic series, and under a canned update
// outage the full UNIT policy dips less and recovers faster than the
// no-LBC ablation — with the trace confirming the controller actually
// pushed in the relieving direction.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/faults/settling.h"
#include "unit/obs/trace_check.h"
#include "unit/obs/trace_reader.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

/// One window per second; usm.s carries the whole per-window USM value.
std::vector<WindowSample> SyntheticSeries(const std::vector<double>& usm) {
  std::vector<WindowSample> series;
  for (size_t i = 0; i < usm.size(); ++i) {
    WindowSample s;
    s.t_s = static_cast<double>(i + 1);
    s.usm.s = usm[i];
    series.push_back(s);
  }
  return series;
}

TEST(DisturbanceTest, StepDipAndRecoveryAreMeasured) {
  // 100 s healthy at 1.0, a 20 s fault driving USM to 0, 80 s recovered.
  std::vector<double> usm(100, 1.0);
  usm.insert(usm.end(), 20, 0.0);
  usm.insert(usm.end(), 80, 1.0);
  const auto report =
      ComputeDisturbance(SyntheticSeries(usm), /*fault_start_s=*/100.0,
                         /*fault_end_s=*/120.0);
  ASSERT_TRUE(report.valid);
  EXPECT_DOUBLE_EQ(report.baseline_usm, 1.0);
  // Smoothing keeps the measured dip below the raw unit drop but it must
  // capture most of it.
  EXPECT_GT(report.dip_depth, 0.5);
  EXPECT_LE(report.dip_depth, 1.0);
  EXPECT_EQ(report.during.size(), 20u);
  // The tail returns to baseline, so the run settles at a finite time.
  EXPECT_GE(report.recover_s, 0.0);
  EXPECT_LT(report.recover_s, 80.0);
}

TEST(DisturbanceTest, FlatSeriesHasNoDipAndInstantRecovery) {
  const auto report = ComputeDisturbance(
      SyntheticSeries(std::vector<double>(200, 0.7)), 100.0, 120.0);
  ASSERT_TRUE(report.valid);
  EXPECT_NEAR(report.baseline_usm, 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(report.dip_depth, 0.0);
  EXPECT_DOUBLE_EQ(report.recover_s, 0.0);
}

TEST(DisturbanceTest, NeverRecoveringRunReportsMinusOne) {
  std::vector<double> usm(100, 1.0);
  usm.insert(usm.end(), 100, 0.0);  // dips and stays down past the window
  const auto report =
      ComputeDisturbance(SyntheticSeries(usm), 100.0, 120.0);
  ASSERT_TRUE(report.valid);
  EXPECT_GT(report.dip_depth, 0.0);
  EXPECT_DOUBLE_EQ(report.recover_s, -1.0);
}

TEST(DisturbanceTest, NoPreFaultHistoryIsInvalid) {
  // Fault starts before the first window closes: no baseline to measure
  // against.
  const auto report = ComputeDisturbance(
      SyntheticSeries(std::vector<double>(50, 1.0)), 0.5, 10.0);
  EXPECT_FALSE(report.valid);
  EXPECT_FALSE(
      ComputeDisturbance(std::vector<WindowSample>{}, 10.0, 20.0).valid);
}

TEST(DisturbanceTest, EmptyScheduleOverloadIsInvalid) {
  Workload w;
  w.num_items = 1;
  w.duration = SecondsToSim(10.0);
  auto empty = FaultSchedule::Compile(FaultScenarioSpec{}, w, 42);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(
      ComputeDisturbance(SyntheticSeries(std::vector<double>(50, 1.0)), *empty)
          .valid);
}

/// Canned update outage over the bulk of the hot items, window at 40-70% of
/// the run — the same shape bench_fig7_adaptivity uses.
class AdaptivityRegressionTest : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.25;

  ExperimentResult RunPolicy(const std::string& policy,
                             const std::string& trace_path = "") {
    auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                  UpdateDistribution::kUniform, kScale, 42);
    EXPECT_TRUE(w.ok());
    const double duration_s = SimToSeconds(w->duration);
    auto spec = FaultScenarioSpec::Parse(
        "fault0.kind = update-outage\n"
        "fault0.start_s = " + std::to_string(0.4 * duration_s) + "\n"
        "fault0.end_s = " + std::to_string(0.7 * duration_s) + "\n"
        "fault0.items = 0-63\n");
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto schedule = FaultSchedule::Compile(*spec, *w, 42);
    EXPECT_TRUE(schedule.ok()) << schedule.status().ToString();
    ObsOptions obs;
    obs.series = true;
    obs.trace_path = trace_path;
    auto result = RunFaultedExperiment(*w, policy, UsmWeights{1.0, 0.5, 1.0, 0.5},
                                       *schedule, obs);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }
};

TEST_F(AdaptivityRegressionTest, UnitBeatsNoLbcAblationUnderOutage) {
  const std::string trace = ::testing::TempDir() + "/adaptivity_unit.jsonl";
  const ExperimentResult unit = RunPolicy("unit", trace);
  const ExperimentResult bare = RunPolicy("unit-bare");

  ASSERT_TRUE(unit.disturbance.valid);
  ASSERT_TRUE(bare.disturbance.valid);
  // The adaptive stack absorbs the outage: shallower dip, better overall
  // USM, and a finite settling time.
  EXPECT_LT(unit.disturbance.dip_depth, bare.disturbance.dip_depth);
  EXPECT_GT(unit.usm, bare.usm);
  EXPECT_GE(unit.disturbance.recover_s, 0.0);

  // The faulted trace passes every checker invariant, including the
  // LBC-response-direction rule, and the controller demonstrably reacted
  // inside the fault window.
  auto events = ReadTraceFile(trace);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  const TraceCheckResult check = CheckTrace(*events);
  EXPECT_TRUE(check.ok()) << TraceCheckSummary(check);
  EXPECT_EQ(check.fault_starts, 1);
  EXPECT_EQ(check.fault_stops, 1);
  EXPECT_GT(check.fault_window_lbc_signals, 0);
  EXPECT_GT(check.fault_window_relief_signals, 0);
}

}  // namespace
}  // namespace unitdb
