// Fault trace events: JSONL round-trip fidelity and the checker's invariant
// 6 (window pairing plus the LBC response-direction rule), on both synthetic
// event sequences and a real faulted engine trace.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/obs/trace_check.h"
#include "unit/obs/trace_event.h"
#include "unit/obs/trace_reader.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

TraceEvent FaultEvent(TraceEventType type, SimTime t, int64_t fault,
                      const char* kind, ItemId item, int64_t items,
                      double magnitude) {
  TraceEvent e;
  e.type = type;
  e.time = t;
  e.txn = fault;
  std::strncpy(e.reason, kind, sizeof(e.reason) - 1);
  e.item = item;
  e.resolved = items;
  e.magnitude = magnitude;
  return e;
}

TraceEvent LbcEvent(SimTime t, const char* signal, double r, double fm,
                    double fs) {
  TraceEvent e;
  e.type = TraceEventType::kLbcSignal;
  e.time = t;
  std::strncpy(e.reason, signal, sizeof(e.reason) - 1);
  e.r = r;
  e.fm = fm;
  e.fs = fs;
  return e;
}

TEST(FaultTraceTest, FaultEventsRoundTripThroughJsonl) {
  const TraceEvent orig =
      FaultEvent(TraceEventType::kFaultStart, MillisToSim(1234), 3,
                 "update-burst", 17, 64, 0.12345678901234567);
  char buf[512];
  const size_t n = FormatJsonl(orig, buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  auto parsed = ParseTraceLine(std::string(buf, n));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, TraceEventType::kFaultStart);
  EXPECT_EQ(parsed->time, orig.time);
  EXPECT_EQ(parsed->txn, 3);
  EXPECT_STREQ(parsed->reason, "update-burst");
  EXPECT_EQ(parsed->item, 17);
  EXPECT_EQ(parsed->resolved, 64);
  EXPECT_EQ(parsed->magnitude, orig.magnitude);  // %.17g: bit-exact

  const TraceEvent stop =
      FaultEvent(TraceEventType::kFaultStop, MillisToSim(5678), 3,
                 "update-burst", 17, 64, 0.12345678901234567);
  const size_t m = FormatJsonl(stop, buf, sizeof(buf));
  auto parsed_stop = ParseTraceLine(std::string(buf, m));
  ASSERT_TRUE(parsed_stop.ok());
  EXPECT_EQ(parsed_stop->type, TraceEventType::kFaultStop);
}

TEST(FaultTraceCheckTest, WellFormedWindowPasses) {
  std::vector<TraceEvent> events;
  events.push_back(FaultEvent(TraceEventType::kFaultStart, 100, 0,
                              "update-outage", 0, 4, 0.0));
  events.push_back(FaultEvent(TraceEventType::kFaultStop, 200, 0,
                              "update-outage", 0, 4, 0.0));
  const TraceCheckResult r = CheckTrace(events);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_EQ(r.fault_starts, 1);
  EXPECT_EQ(r.fault_stops, 1);
}

TEST(FaultTraceCheckTest, FlagsMalformedWindows) {
  // Unclosed window.
  {
    std::vector<TraceEvent> events = {FaultEvent(
        TraceEventType::kFaultStart, 100, 0, "load-step", kInvalidItem, 0,
        20.0)};
    EXPECT_FALSE(CheckTrace(events).ok());
  }
  // Stop without start.
  {
    std::vector<TraceEvent> events = {FaultEvent(
        TraceEventType::kFaultStop, 100, 0, "load-step", kInvalidItem, 0,
        20.0)};
    EXPECT_FALSE(CheckTrace(events).ok());
  }
  // Duplicate start.
  {
    std::vector<TraceEvent> events = {
        FaultEvent(TraceEventType::kFaultStart, 100, 0, "load-step",
                   kInvalidItem, 0, 20.0),
        FaultEvent(TraceEventType::kFaultStart, 150, 0, "load-step",
                   kInvalidItem, 0, 20.0)};
    EXPECT_FALSE(CheckTrace(events).ok());
  }
  // Kind changes between start and stop.
  {
    std::vector<TraceEvent> events = {
        FaultEvent(TraceEventType::kFaultStart, 100, 0, "load-step",
                   kInvalidItem, 0, 20.0),
        FaultEvent(TraceEventType::kFaultStop, 150, 0, "service-slowdown",
                   kInvalidItem, 0, 20.0)};
    EXPECT_FALSE(CheckTrace(events).ok());
  }
  // Unknown kind.
  {
    std::vector<TraceEvent> events = {
        FaultEvent(TraceEventType::kFaultStart, 100, 0, "meteor",
                   kInvalidItem, 0, 1.0),
        FaultEvent(TraceEventType::kFaultStop, 150, 0, "meteor",
                   kInvalidItem, 0, 1.0)};
    EXPECT_FALSE(CheckTrace(events).ok());
  }
  // Item-scoped fault with no items.
  {
    std::vector<TraceEvent> events = {
        FaultEvent(TraceEventType::kFaultStart, 100, 0, "update-outage",
                   kInvalidItem, 0, 0.0),
        FaultEvent(TraceEventType::kFaultStop, 150, 0, "update-outage",
                   kInvalidItem, 0, 0.0)};
    EXPECT_FALSE(CheckTrace(events).ok());
  }
  // Global fault carrying an item span.
  {
    std::vector<TraceEvent> events = {
        FaultEvent(TraceEventType::kFaultStart, 100, 0, "service-slowdown", 0,
                   3, 2.0),
        FaultEvent(TraceEventType::kFaultStop, 150, 0, "service-slowdown", 0,
                   3, 2.0)};
    EXPECT_FALSE(CheckTrace(events).ok());
  }
  // Zero magnitude on a kind that requires one.
  {
    std::vector<TraceEvent> events = {
        FaultEvent(TraceEventType::kFaultStart, 100, 0, "service-slowdown",
                   kInvalidItem, 0, 0.0),
        FaultEvent(TraceEventType::kFaultStop, 150, 0, "service-slowdown",
                   kInvalidItem, 0, 0.0)};
    EXPECT_FALSE(CheckTrace(events).ok());
  }
}

TEST(FaultTraceCheckTest, CountsReliefSignalsDuringPressuredWindows) {
  // An outage pressures Fs; an in-window LBC evaluation whose fs ratio is
  // the strict maximum must answer "upgrade", and the checker counts it as
  // a relieving response.
  std::vector<TraceEvent> events;
  events.push_back(FaultEvent(TraceEventType::kFaultStart, 100, 0,
                              "update-outage", 0, 4, 0.0));
  events.push_back(LbcEvent(150, "upgrade", 0.1, 0.2, 0.9));
  events.push_back(FaultEvent(TraceEventType::kFaultStop, 200, 0,
                              "update-outage", 0, 4, 0.0));
  // Outside the window: not counted.
  events.push_back(LbcEvent(250, "upgrade", 0.1, 0.2, 0.9));
  const TraceCheckResult r = CheckTrace(events);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_EQ(r.fault_window_lbc_signals, 1);
  EXPECT_EQ(r.fault_window_relief_signals, 1);
  EXPECT_EQ(r.lbc_signals, 2);
}

TEST(FaultTraceCheckTest, FlagsNonRelievingSignalDuringPressuredWindow) {
  std::vector<TraceEvent> events;
  events.push_back(FaultEvent(TraceEventType::kFaultStart, 100, 0,
                              "update-outage", 0, 4, 0.0));
  // fs is the strict maximum but the controller answered the miss penalty.
  events.push_back(LbcEvent(150, "degrade+tighten", 0.1, 0.2, 0.9));
  events.push_back(FaultEvent(TraceEventType::kFaultStop, 200, 0,
                              "update-outage", 0, 4, 0.0));
  const TraceCheckResult r = CheckTrace(events);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.fault_window_relief_signals, 0);
}

TEST(FaultTraceCheckTest, LoadStepWindowSuspendsDirectionCheck) {
  // A load step pressures R and Fm together, so no single action relieves
  // it: in-window signals are tallied but carry no direction obligation.
  std::vector<TraceEvent> events;
  events.push_back(FaultEvent(TraceEventType::kFaultStart, 100, 0,
                              "load-step", kInvalidItem, 0, 20.0));
  events.push_back(LbcEvent(150, "upgrade", 0.1, 0.2, 0.9));
  events.push_back(FaultEvent(TraceEventType::kFaultStop, 200, 0,
                              "load-step", kInvalidItem, 0, 20.0));
  const TraceCheckResult r = CheckTrace(events);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_EQ(r.fault_window_lbc_signals, 1);
  EXPECT_EQ(r.fault_window_relief_signals, 0);
}

TEST(FaultTraceCheckTest, TieAmongRatiosCarriesNoObligation) {
  // LBC tie-breaking is randomized, so a non-strict maximum must not force
  // a direction: fm == fs and the controller picked the miss side.
  std::vector<TraceEvent> events;
  events.push_back(FaultEvent(TraceEventType::kFaultStart, 100, 0,
                              "update-outage", 0, 4, 0.0));
  events.push_back(LbcEvent(150, "degrade+tighten", 0.1, 0.9, 0.9));
  events.push_back(FaultEvent(TraceEventType::kFaultStop, 200, 0,
                              "update-outage", 0, 4, 0.0));
  const TraceCheckResult r = CheckTrace(events);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0]);
}

TEST(FaultTraceTest, RealFaultedTracePassesChecker) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 0.05, 42);
  ASSERT_TRUE(w.ok());
  auto spec = FaultScenarioSpec::Parse(
      "fault0.kind = update-outage\nfault0.start_s = 40\n"
      "fault0.end_s = 60\nfault0.items = *\n"
      "fault1.kind = load-step\nfault1.start_s = 50\n"
      "fault1.end_s = 70\nfault1.rate_hz = 15\n");
  ASSERT_TRUE(spec.ok());
  auto schedule = FaultSchedule::Compile(*spec, *w, 42);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();

  const std::string path = ::testing::TempDir() + "/faulted_trace.jsonl";
  ObsOptions obs;
  obs.trace_path = path;
  auto result = RunFaultedExperiment(*w, "unit", UsmWeights{1.0, 0.5, 1.0, 0.5},
                                     *schedule, obs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto events = ReadTraceFile(path);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  const TraceCheckResult r = CheckTrace(*events);
  EXPECT_TRUE(r.ok()) << TraceCheckSummary(r);
  EXPECT_EQ(r.fault_starts, 2);
  EXPECT_EQ(r.fault_stops, 2);
  // The injected load-step queries appear as ordinary arrivals.
  EXPECT_EQ(r.arrivals, result->metrics.counts.submitted);
  EXPECT_GT(result->metrics.fault_injected_queries, 0);
}

}  // namespace
}  // namespace unitdb
