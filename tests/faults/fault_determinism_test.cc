// Golden determinism for the fault layer: a faulted run is a pure function
// of (scenario, workload seed) — re-running reproduces the RunMetrics and
// the JSONL trace byte-for-byte, and the jobs=N replicated runner returns
// results bit-identical to the sequential path.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/sim/experiment.h"

namespace unitdb {
namespace {

constexpr double kScale = 0.05;  // 100 s runs

FaultScenarioSpec MixedScenario() {
  auto spec = FaultScenarioSpec::Parse(
      "name = mixed\n"
      "fault0.kind = update-outage\nfault0.start_s = 40\n"
      "fault0.end_s = 60\nfault0.items = *\n"
      "fault1.kind = load-step\nfault1.start_s = 45\n"
      "fault1.end_s = 65\nfault1.rate_hz = 15\n");
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return *spec;
}

void ExpectResultIdentical(const ExperimentResult& a,
                           const ExperimentResult& b) {
  EXPECT_EQ(a.usm, b.usm);  // bitwise
  EXPECT_EQ(a.metrics.counts, b.metrics.counts);
  EXPECT_EQ(a.metrics.events_processed, b.metrics.events_processed);
  EXPECT_EQ(a.metrics.busy_s, b.metrics.busy_s);
  EXPECT_EQ(a.metrics.fault_edges, b.metrics.fault_edges);
  EXPECT_EQ(a.metrics.fault_injected_queries,
            b.metrics.fault_injected_queries);
  EXPECT_EQ(a.metrics.fault_injected_updates,
            b.metrics.fault_injected_updates);
  EXPECT_EQ(a.metrics.fault_suppressed_updates,
            b.metrics.fault_suppressed_updates);
  EXPECT_EQ(a.disturbance.valid, b.disturbance.valid);
  EXPECT_EQ(a.disturbance.baseline_usm, b.disturbance.baseline_usm);
  EXPECT_EQ(a.disturbance.dip_depth, b.disturbance.dip_depth);
  EXPECT_EQ(a.disturbance.recover_s, b.disturbance.recover_s);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].t_s, b.series[i].t_s);
    EXPECT_EQ(a.series[i].usm.Value(), b.series[i].usm.Value());
  }
}

TEST(FaultDeterminismTest, ReplicatedBitIdenticalAcrossWorkerCounts) {
  const FaultScenarioSpec scenario = MixedScenario();
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  auto seq = RunFaultedReplicated(UpdateVolume::kMedium,
                                  UpdateDistribution::kUniform, "unit",
                                  weights, scenario, /*replications=*/4,
                                  /*jobs=*/1, kScale);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_EQ(seq->size(), 4u);
  // Replications must actually differ (each draws its own workload and
  // injection stream) or the parallel comparison proves nothing.
  EXPECT_NE((*seq)[0].usm, (*seq)[1].usm);
  for (int jobs : {2, 4, 8}) {
    auto par = RunFaultedReplicated(UpdateVolume::kMedium,
                                    UpdateDistribution::kUniform, "unit",
                                    weights, scenario, 4, jobs, kScale);
    ASSERT_TRUE(par.ok()) << "jobs=" << jobs;
    ASSERT_EQ(par->size(), seq->size());
    for (size_t i = 0; i < seq->size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " replication " +
                   std::to_string(i));
      ExpectResultIdentical((*seq)[i], (*par)[i]);
    }
  }
}

TEST(FaultDeterminismTest, SameSeedReproducesMetricsAndTrace) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, kScale, 42);
  ASSERT_TRUE(w.ok());
  auto schedule = FaultSchedule::Compile(MixedScenario(), *w, 42);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  ASSERT_FALSE(schedule->empty());

  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  const std::string path_a = ::testing::TempDir() + "/fault_det_a.jsonl";
  const std::string path_b = ::testing::TempDir() + "/fault_det_b.jsonl";
  ObsOptions obs_a;
  obs_a.series = true;
  obs_a.trace_path = path_a;
  ObsOptions obs_b = obs_a;
  obs_b.trace_path = path_b;

  auto a = RunFaultedExperiment(*w, "unit", weights, *schedule, obs_a);
  auto b = RunFaultedExperiment(*w, "unit", weights, *schedule, obs_b);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectResultIdentical(*a, *b);
  EXPECT_GT(a->metrics.fault_edges, 0);
  EXPECT_TRUE(a->disturbance.valid);

  const auto slurp = [](const std::string& path) {
    std::ifstream f(path);
    std::ostringstream text;
    text << f.rdbuf();
    return text.str();
  };
  const std::string trace_a = slurp(path_a);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, slurp(path_b));  // byte-identical trace
  EXPECT_NE(trace_a.find("fault-start"), std::string::npos);
  EXPECT_NE(trace_a.find("fault-stop"), std::string::npos);
}

TEST(FaultDeterminismTest, ScenarioSeedDecorrelatesInjection) {
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, kScale, 42);
  ASSERT_TRUE(w.ok());
  FaultScenarioSpec a = MixedScenario();
  FaultScenarioSpec b = a;
  b.seed = a.seed + 1;
  auto sa = FaultSchedule::Compile(a, *w, 42);
  auto sb = FaultSchedule::Compile(b, *w, 42);
  ASSERT_TRUE(sa.ok() && sb.ok());
  bool differs =
      sa->injected_queries().size() != sb->injected_queries().size();
  for (size_t i = 0; !differs && i < sa->injected_queries().size(); ++i) {
    differs =
        sa->injected_queries()[i].arrival != sb->injected_queries()[i].arrival;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace unitdb
